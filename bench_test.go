// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (regenerating it and reporting its headline metrics via
// b.ReportMetric), plus micro-benchmarks of the hot paths. Run with:
//
//	go test -bench=. -benchmem
package moloc_test

import (
	"fmt"
	"sync"
	"testing"

	"moloc/internal/core"
	"moloc/internal/exp"
	"moloc/internal/fingerprint"
	"moloc/internal/floorplan"
	"moloc/internal/localizer"
	"moloc/internal/motion"
	"moloc/internal/rf"
	"moloc/internal/sensors"
	"moloc/internal/stats"
)

var (
	benchCtxOnce sync.Once
	benchCtx     *exp.Context
	benchCtxErr  error
)

// expContext builds the paper-scale experiment context once and shares
// it across benchmarks; building it is itself measured by
// BenchmarkPipelineBuild.
func expContext(b *testing.B) *exp.Context {
	b.Helper()
	benchCtxOnce.Do(func() {
		benchCtx, benchCtxErr = exp.NewDefaultContext(3)
	})
	if benchCtxErr != nil {
		b.Fatalf("building experiment context: %v", benchCtxErr)
	}
	return benchCtx
}

// reportMetrics forwards an experiment's scalar outcomes to the
// benchmark framework.
func reportMetrics(b *testing.B, r *exp.Result) {
	b.Helper()
	for k, v := range r.Metrics {
		b.ReportMetric(v, k)
	}
}

func BenchmarkFig4StepDetection(b *testing.B) {
	ctx := expContext(b)
	for i := 0; i < b.N; i++ {
		r, err := ctx.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportMetrics(b, r)
		}
	}
}

func BenchmarkFig6MotionDB(b *testing.B) {
	ctx := expContext(b)
	for i := 0; i < b.N; i++ {
		r, err := ctx.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportMetrics(b, r)
		}
	}
}

func BenchmarkFig7Overall(b *testing.B) {
	ctx := expContext(b)
	for i := 0; i < b.N; i++ {
		r, err := ctx.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportMetrics(b, r)
		}
	}
}

func BenchmarkFig8LargeErrors(b *testing.B) {
	ctx := expContext(b)
	for i := 0; i < b.N; i++ {
		r, err := ctx.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportMetrics(b, r)
		}
	}
}

func BenchmarkTable1Convergence(b *testing.B) {
	ctx := expContext(b)
	for i := 0; i < b.N; i++ {
		r, err := ctx.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportMetrics(b, r)
		}
	}
}

func BenchmarkAblationCSCvsDSC(b *testing.B) {
	ctx := expContext(b)
	for i := 0; i < b.N; i++ {
		r, err := ctx.AblationCSC()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportMetrics(b, r)
		}
	}
}

func BenchmarkAblationSanitation(b *testing.B) {
	ctx := expContext(b)
	for i := 0; i < b.N; i++ {
		r, err := ctx.AblationSanitation()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportMetrics(b, r)
		}
	}
}

func BenchmarkAblationCandidateK(b *testing.B) {
	ctx := expContext(b)
	for i := 0; i < b.N; i++ {
		r, err := ctx.AblationCandidateK()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportMetrics(b, r)
		}
	}
}

func BenchmarkAblationHMM(b *testing.B) {
	ctx := expContext(b)
	for i := 0; i < b.N; i++ {
		r, err := ctx.AblationBaselines()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportMetrics(b, r)
		}
	}
}

func BenchmarkAblationMapFallback(b *testing.B) {
	ctx := expContext(b)
	for i := 0; i < b.N; i++ {
		r, err := ctx.AblationMapFallback()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportMetrics(b, r)
		}
	}
}

// BenchmarkPipelineBuild measures the end-to-end system construction:
// survey, trace generation, and motion-database training at paper
// scale.
func BenchmarkPipelineBuild(b *testing.B) {
	cfg := core.NewConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks of the hot paths ---

func benchDeployment(b *testing.B) (*exp.Context, *core.Deployment) {
	b.Helper()
	ctx := expContext(b)
	dep, err := ctx.Deployment(6)
	if err != nil {
		b.Fatal(err)
	}
	return ctx, dep
}

// BenchmarkFingerprintKNN compares the k-NN candidate query's two
// implementations: the sort-based reference (KNearestRef) and the
// bounded selection scan into a reused buffer (KNearestAppend), which
// is what the serving path runs.
func BenchmarkFingerprintKNN(b *testing.B) {
	_, dep := benchDeployment(b)
	fp := dep.TestData[0].StartFP
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dep.FDB.KNearestRef(fp, 8)
		}
	})
	b.Run("compiled", func(b *testing.B) {
		var buf []fingerprint.Candidate
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = dep.FDB.KNearestAppend(buf, fp, 8)
		}
	})
}

// BenchmarkMotionMatchProb compares one Eq. 5 evaluation: the exact
// Entry.Prob (four erf calls) against the compiled edge's table
// interpolation.
func BenchmarkMotionMatchProb(b *testing.B) {
	ctx, _ := benchDeployment(b)
	e, ok := ctx.Sys.MDB.Lookup(1, 2)
	if !ok {
		b.Fatal("entry 1-2 missing")
	}
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.Prob(92, 5.5, 20, 1)
		}
	})
	b.Run("compiled", func(b *testing.B) {
		cmp, err := ctx.Sys.MDB.Compile(20, 1)
		if err != nil {
			b.Fatal(err)
		}
		lo, hi := cmp.Row(1)
		k := lo
		for ; k < hi; k++ {
			if cmp.Col(k) == 2 {
				break
			}
		}
		if k == hi {
			b.Fatal("edge 1->2 missing")
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cmp.EdgeProb(k, 92, 5.5)
		}
	})
}

func BenchmarkMoLocLocalize(b *testing.B) {
	ctx, dep := benchDeployment(b)
	ml, err := localizer.NewMoLoc(dep.FDB, ctx.Sys.MDB, ctx.Sys.Config.MoLoc)
	if err != nil {
		b.Fatal(err)
	}
	td := dep.TestData[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ml.Reset()
		ml.Localize(localizer.Observation{FP: td.StartFP})
		for _, ld := range td.Legs {
			ml.Localize(localizer.Observation{FP: ld.FP, Motion: ld.RLM})
		}
	}
}

// BenchmarkMoLocLocalizeReference is the uncompiled localizer on the
// same trace, the "before" side of BenchmarkMoLocLocalize.
func BenchmarkMoLocLocalizeReference(b *testing.B) {
	ctx, dep := benchDeployment(b)
	ml, err := localizer.NewMoLocReference(dep.FDB, ctx.Sys.MDB, ctx.Sys.Config.MoLoc)
	if err != nil {
		b.Fatal(err)
	}
	td := dep.TestData[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ml.Reset()
		ml.Localize(localizer.Observation{FP: td.StartFP})
		for _, ld := range td.Legs {
			ml.Localize(localizer.Observation{FP: ld.FP, Motion: ld.RLM})
		}
	}
}

func BenchmarkStepDetection(b *testing.B) {
	gen, err := sensors.NewGenerator(sensors.NewParams())
	if err != nil {
		b.Fatal(err)
	}
	samples, _ := gen.Walk(nil, 0, 60, 1.8, 90, sensors.Device{}, 0, stats.NewRNG(1))
	cfg := motion.NewConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		motion.DetectSteps(cfg, samples)
	}
}

func BenchmarkRLMExtract(b *testing.B) {
	gen, err := sensors.NewGenerator(sensors.NewParams())
	if err != nil {
		b.Fatal(err)
	}
	samples, _ := gen.Walk(nil, 0, 4, 1.8, 90, sensors.Device{}, 0, stats.NewRNG(1))
	cfg := motion.NewConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		motion.Extract(cfg, samples, 0, 4, 0.75, nil)
	}
}

func BenchmarkRFSample(b *testing.B) {
	model, err := rf.NewModel(floorplan.OfficeHall(), rf.NewParams(), 1)
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewRNG(1)
	pos := floorplan.OfficeHall().LocPos(13)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Sample(pos, rng)
	}
}

func BenchmarkWalkGraphShortestPath(b *testing.B) {
	plan := floorplan.OfficeHall()
	graph := floorplan.BuildWalkGraph(plan, floorplan.OfficeHallAdjDist)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := graph.ShortestPath(1, 28); !ok {
			b.Fatal("no path")
		}
	}
}

func BenchmarkRadioMapBuild(b *testing.B) {
	model, err := rf.NewModel(floorplan.OfficeHall(), rf.NewParams(), 1)
	if err != nil {
		b.Fatal(err)
	}
	survey, err := fingerprint.Survey(model, fingerprint.NewSurveyConfig(), stats.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := survey.BuildDB(fingerprint.Euclidean{}, model.NumAPs()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationFingerprintType(b *testing.B) {
	ctx := expContext(b)
	for i := 0; i < b.N; i++ {
		r, err := ctx.AblationFingerprintType()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportMetrics(b, r)
		}
	}
}

func BenchmarkAblationGyro(b *testing.B) {
	ctx := expContext(b)
	for i := 0; i < b.N; i++ {
		r, err := ctx.AblationGyro()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportMetrics(b, r)
		}
	}
}

func BenchmarkAblationAPOutage(b *testing.B) {
	ctx := expContext(b)
	for i := 0; i < b.N; i++ {
		r, err := ctx.AblationAPOutage()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportMetrics(b, r)
		}
	}
}

func BenchmarkAblationPoisonedCrowd(b *testing.B) {
	ctx := expContext(b)
	for i := 0; i < b.N; i++ {
		r, err := ctx.AblationPoisonedCrowd()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportMetrics(b, r)
		}
	}
}

func BenchmarkAblationParticle(b *testing.B) {
	ctx := expContext(b)
	for i := 0; i < b.N; i++ {
		r, err := ctx.AblationParticle()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportMetrics(b, r)
		}
	}
}

func BenchmarkAblationZeroSurvey(b *testing.B) {
	ctx := expContext(b)
	for i := 0; i < b.N; i++ {
		r, err := ctx.AblationZeroSurvey()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportMetrics(b, r)
		}
	}
}

// scalabilityDeployment builds a grid-plan system sized for the
// scalability sweep.
func scalabilityDeployment(b *testing.B, cols, rows, trainTraces, testTraces int) (*core.System, *core.Deployment) {
	b.Helper()
	o := floorplan.GridOptions{
		Cols: cols, Rows: rows,
		SpacingX: 5, SpacingY: 4, Margin: 3, APs: 12,
	}
	plan, err := floorplan.Grid(o)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.NewConfig()
	cfg.Plan = plan
	cfg.AdjDist = floorplan.GridAdjDist(o)
	cfg.NumTrainTraces = trainTraces
	cfg.NumTestTraces = testTraces
	sys, err := core.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	dep, err := sys.Deploy(sys.AllAPs())
	if err != nil {
		b.Fatal(err)
	}
	return sys, dep
}

// BenchmarkScalability sweeps the environment size: end-to-end MoLoc
// localization cost per trace replay as the reference grid grows well
// beyond the paper's 28 locations.
func BenchmarkScalability(b *testing.B) {
	for _, size := range []struct{ cols, rows int }{{7, 4}, {16, 10}, {32, 16}} {
		n := size.cols * size.rows
		b.Run(fmt.Sprintf("locs_%d", n), func(b *testing.B) {
			_, dep := scalabilityDeployment(b, size.cols, size.rows, 80, 8)
			ml, err := dep.NewMoLoc()
			if err != nil {
				b.Fatal(err)
			}
			td := dep.TestData[0]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ml.Reset()
				ml.Localize(localizer.Observation{FP: td.StartFP})
				for _, ld := range td.Legs {
					ml.Localize(localizer.Observation{FP: ld.FP, Motion: ld.RLM})
				}
			}
		})
	}

	// The 1000+-location tier runs the reachability-gated steady state
	// (one warmed session, per-fix cost): the quantized masked scan plus
	// the motion posterior, the serving configuration the sub-10 µs/fix
	// target is pinned against. The map fallback seeds every adjacent
	// pair, so a thin training set still yields full gating adjacency.
	for _, size := range []struct{ cols, rows, train int }{{32, 32, 32}, {64, 64, 16}} {
		n := size.cols * size.rows
		b.Run(fmt.Sprintf("locs_%d", n), func(b *testing.B) {
			sys, dep := scalabilityDeployment(b, size.cols, size.rows, size.train, 2)
			cfg := sys.Config.MoLoc
			cfg.Gate = true
			ml, err := localizer.NewMoLoc(dep.FDB, sys.MDB, cfg)
			if err != nil {
				b.Fatal(err)
			}
			td := dep.TestData[0]
			// Warm the session: the first observation takes the full scan
			// and sizes every reused buffer; after it the gated path serves.
			ml.Localize(localizer.Observation{FP: td.StartFP})
			var legs []int
			for i, ld := range td.Legs {
				ml.Localize(localizer.Observation{FP: ld.FP, Motion: ld.RLM})
				if ld.RLM != nil {
					legs = append(legs, i)
				}
			}
			if len(legs) == 0 {
				b.Fatal("test trace has no walking legs")
			}
			gatedBefore := ml.GatedScans()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ld := &td.Legs[legs[i%len(legs)]]
				ml.Localize(localizer.Observation{FP: ld.FP, Motion: ld.RLM})
			}
			b.StopTimer()
			if gated := ml.GatedScans() - gatedBefore; gated != b.N {
				b.Fatalf("gated scans = %d of %d fixes: steady state fell off the gated path", gated, b.N)
			}
		})
	}
}

func BenchmarkExtensionSelfHealing(b *testing.B) {
	ctx := expContext(b)
	for i := 0; i < b.N; i++ {
		r, err := ctx.ExtensionSelfHealing()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportMetrics(b, r)
		}
	}
}

func BenchmarkExtensionAging(b *testing.B) {
	ctx := expContext(b)
	for i := 0; i < b.N; i++ {
		r, err := ctx.ExtensionAging()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportMetrics(b, r)
		}
	}
}

func BenchmarkExtensionPeerAssist(b *testing.B) {
	ctx := expContext(b)
	for i := 0; i < b.N; i++ {
		r, err := ctx.ExtensionPeerAssist()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportMetrics(b, r)
		}
	}
}

func BenchmarkAblationSurveyDensity(b *testing.B) {
	ctx := expContext(b)
	for i := 0; i < b.N; i++ {
		r, err := ctx.AblationSurveyDensity()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportMetrics(b, r)
		}
	}
}
