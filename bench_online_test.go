// Online-training benchmarks (PR 4): crowd ingestion serial vs
// parallel, incremental edge recompilation vs the full compile it
// replaces, and server-level ingest throughput under concurrent
// retrains. These pin the perf trajectory of the live-refresh path in
// BENCH_PR4.json alongside the serving-path numbers.
package moloc_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"moloc/internal/core"
	"moloc/internal/crowd"
	"moloc/internal/fingerprint"
	"moloc/internal/floorplan"
	"moloc/internal/geom"
	"moloc/internal/motion"
	"moloc/internal/motiondb"
	"moloc/internal/rf"
	"moloc/internal/sensors"
	"moloc/internal/server"
	"moloc/internal/stats"
	"moloc/internal/trace"
)

type crowdBench struct {
	pipe   *crowd.Pipeline
	graph  *floorplan.WalkGraph
	traces []*trace.Trace
}

var (
	crowdBenchOnce sync.Once
	crowdBenchVal  *crowdBench
	crowdBenchErr  error
)

// crowdBenchFixture builds the crowd-ingestion input once: the paper's
// floor plan, a surveyed fingerprint database, and a batch of raw
// crowd traces ready for the trace-processing pipeline.
func crowdBenchFixture(b *testing.B) *crowdBench {
	b.Helper()
	crowdBenchOnce.Do(func() {
		crowdBenchErr = func() error {
			plan := floorplan.OfficeHall()
			graph := floorplan.BuildWalkGraph(plan, floorplan.OfficeHallAdjDist)
			model, err := rf.NewModel(plan, rf.NewParams(), 1)
			if err != nil {
				return err
			}
			survey, err := fingerprint.Survey(model, fingerprint.NewSurveyConfig(), stats.NewRNG(1))
			if err != nil {
				return err
			}
			fdb, err := survey.BuildDB(fingerprint.Euclidean{}, model.NumAPs())
			if err != nil {
				return err
			}
			pipe, err := crowd.NewPipeline(plan, fdb, survey.MotionEst, motion.NewConfig())
			if err != nil {
				return err
			}
			sg, err := sensors.NewGenerator(sensors.NewParams())
			if err != nil {
				return err
			}
			tcfg := trace.NewConfig()
			tcfg.NumLegs = 10
			tg, err := trace.NewGenerator(plan, graph, sg, motion.NewConfig(), tcfg)
			if err != nil {
				return err
			}
			crowdBenchVal = &crowdBench{
				pipe:   pipe,
				graph:  graph,
				traces: tg.GenerateBatch(trace.DefaultUsers(), 64, stats.NewRNG(3)),
			}
			return nil
		}()
	})
	if crowdBenchErr != nil {
		b.Fatalf("building crowd fixture: %v", crowdBenchErr)
	}
	return crowdBenchVal
}

// BenchmarkMotionTrain measures crowd ingestion end to end — trace
// processing, sanitation, and streaming moment accumulation — serial
// against the sharded parallel build. The worker-invariance test
// (internal/crowd) pins that both produce bit-identical databases; the
// benchmark pins what the parallelism buys.
func BenchmarkMotionTrain(b *testing.B) {
	fx := crowdBenchFixture(b)
	cfg := motiondb.NewBuilderConfig()
	var serialNs, parallelNs float64
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := crowd.BuildMotionDB(fx.pipe, fx.graph, fx.traces, cfg, stats.NewRNG(17)); err != nil {
				b.Fatal(err)
			}
		}
		serialNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := crowd.BuildMotionDBParallel(fx.pipe, fx.graph, fx.traces, cfg, stats.NewRNG(17), 8); err != nil {
				b.Fatal(err)
			}
		}
		parallelNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	// The point of sharding is that it never costs time: with per-worker
	// scratch + fast per-trace reseeding the parallel build must be no
	// slower than the serial one even at GOMAXPROCS=1 (10% timer noise
	// allowance). A regression here means per-trace churn crept back in.
	if serialNs > 0 && parallelNs > serialNs*1.10 {
		b.Errorf("MotionTrain/parallel (8 workers) %.0f ns/op is slower than serial %.0f ns/op",
			parallelNs, serialNs)
	}
}

// benchGridDB is the 512-location (32x16 grid, 976 trained pairs)
// database the incremental recompile is sized against, mirroring the
// equivalence test's fixture in internal/motiondb.
func benchGridDB() *motiondb.DB {
	const cols, rows = 32, 16
	db := motiondb.New(cols * rows)
	id := func(r, c int) int { return r*cols + c + 1 }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			i := id(r, c)
			e := func(j int) motiondb.Entry {
				return motiondb.Entry{
					MeanDir: float64((i*37 + j*11) % 360),
					StdDir:  5 + float64(i%7),
					MeanOff: 2 + float64(j%9),
					StdOff:  0.2 + 0.05*float64(i%5),
					N:       10 + i%13,
				}
			}
			if c+1 < cols {
				db.Set(i, id(r, c+1), e(id(r, c+1)))
			}
			if r+1 < rows {
				db.Set(i, id(r+1, c), e(id(r+1, c)))
			}
		}
	}
	return db
}

// BenchmarkRecompileEdges is the tentpole's cost comparison at 512
// locations: a full Compile of the whole database (what every retrain
// used to pay) against RecompileEdges over a ~5% dirty set (what the
// online retrainer pays now). The "full" variant re-Sets one entry per
// iteration so the (alpha, beta) compile memo cannot serve a cached
// view.
func BenchmarkRecompileEdges(b *testing.B) {
	const alpha, beta = 20, 1
	db := benchGridDB()
	base, err := db.Compile(alpha, beta)
	if err != nil {
		b.Fatal(err)
	}
	pairs := db.Pairs()
	var dirty [][2]int
	for k := 0; k < len(pairs); k += 20 { // ~5% of 976 pairs
		dirty = append(dirty, pairs[k])
	}
	touch, _ := db.Lookup(dirty[0][0], dirty[0][1])

	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			db.Set(dirty[0][0], dirty[0][1], touch) // invalidate the memo
			if _, err := db.Compile(alpha, beta); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dirty", func(b *testing.B) {
		b.ReportAllocs()
		b.ReportMetric(float64(len(dirty)), "dirty-edges")
		for i := 0; i < b.N; i++ {
			if _, err := base.RecompileEdges(db, dirty); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkIngestUnderLoad drives the server's online-training surface
// at the handler level: each iteration posts one observation batch,
// one IMU batch, one scan, and one tick for a live session, with a
// retrain (snapshot republication) folded in every eighth iteration —
// the steady-state mix of a deployment learning while it serves.
func BenchmarkIngestUnderLoad(b *testing.B) {
	cfg := core.NewConfig()
	cfg.NumTrainTraces = 50
	cfg.NumTestTraces = 2
	sys, err := core.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	fdb, err := sys.Survey.BuildDB(fingerprint.Euclidean{}, sys.Model.NumAPs())
	if err != nil {
		b.Fatal(err)
	}
	srv, err := server.New(sys.Plan, fdb, sys.Model.NumAPs(), sys.MDB, sys.Config.Motion)
	if err != nil {
		b.Fatal(err)
	}
	handler := srv.Handler()

	do := func(method, path string, body interface{}) *httptest.ResponseRecorder {
		data, err := json.Marshal(body)
		if err != nil {
			b.Fatal(err)
		}
		req := httptest.NewRequest(method, path, bytes.NewReader(data))
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		return rec
	}

	rec := do(http.MethodPost, "/v1/sessions", map[string]float64{"height_m": 1.7, "weight_kg": 70})
	if rec.Code != http.StatusCreated {
		b.Fatalf("create session: status %d body %s", rec.Code, rec.Body.String())
	}
	var created struct {
		SessionID string `json:"session_id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &created); err != nil {
		b.Fatal(err)
	}
	base := "/v1/sessions/" + created.SessionID

	pairs := sys.MDB.Pairs()
	batches := make([][]motiondb.Observation, len(pairs))
	for k, p := range pairs {
		gtDir, gtOff := floorplan.GroundTruthRLM(sys.Plan, p[0], p[1])
		obs := make([]motiondb.Observation, 8)
		for n := range obs {
			obs[n] = motiondb.Observation{
				From: p[0], To: p[1],
				RLM: motion.RLM{
					Dir: geom.NormalizeDeg(gtDir + float64(n%5) - 2),
					Off: gtOff + 0.1*float64(n%3),
				},
			}
		}
		batches[k] = obs
	}
	rss := make([]float64, sys.Model.NumAPs())
	for i := range rss {
		rss[i] = -60
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rec := do(http.MethodPost, "/v1/observations",
			map[string]interface{}{"observations": batches[i%len(batches)]}); rec.Code != http.StatusAccepted && rec.Code != http.StatusTooManyRequests {
			b.Fatalf("ingest: status %d body %s", rec.Code, rec.Body.String())
		}
		t := float64(i+1) * 0.3
		if rec := do(http.MethodPost, base+"/imu",
			map[string]interface{}{"samples": []sensors.Sample{{T: t, Accel: 9.8, Compass: 90}}}); rec.Code >= 400 {
			b.Fatalf("imu: status %d body %s", rec.Code, rec.Body.String())
		}
		if rec := do(http.MethodPost, base+"/scan",
			map[string]interface{}{"t": t, "rss": rss}); rec.Code >= 400 {
			b.Fatalf("scan: status %d body %s", rec.Code, rec.Body.String())
		}
		if rec := do(http.MethodPost, base+"/tick",
			map[string]float64{"t": t}); rec.Code >= 400 {
			b.Fatalf("tick: status %d body %s", rec.Code, rec.Body.String())
		}
		if i%8 == 7 {
			if _, err := srv.RetrainNow(); err != nil {
				b.Fatal(err)
			}
		}
	}
}
