// Replication benchmark (PR 10): the follower-side apply path end to
// end — WAL tail shipping over the wire, verbatim local appends through
// the group committer, and the retrainer enqueue — measured as the time
// for a blank follower to replicate a leader's b.N-record WAL. Pinned
// in BENCH_PR10.json; `make bench-diff` gates it against later PRs.
package moloc_test

import (
	"net"
	"runtime"
	"testing"
	"time"

	"moloc/internal/server"
	"moloc/internal/wal"
	"moloc/internal/wire"
)

// BenchmarkReplApply preloads a leader's WAL with b.N observation
// batches off the clock, then measures a follower replicating all of
// them: ns/op is the per-record cost of the whole follower apply chain
// (frame decode, dedup/gap check, WAL append, amortized covering fsync,
// retrain enqueue, cumulative ack). The leader never checkpoints, so
// its WAL is never truncated and the follower exercises pure tail
// streaming — the steady-state replication path, not checkpoint
// bootstrap.
func BenchmarkReplApply(b *testing.B) {
	sys, src := streamBenchSys(b)
	// The leader never retrains (Start is not called and the queue cap
	// absorbs the whole preload), so nothing checkpoints, nothing
	// truncates, FirstSeq stays 1, and the blank follower always takes
	// the tail path. Small sealed segments keep the leader's per-burst
	// WAL read bounded by one segment instead of the whole log.
	leader, err := server.NewWithOptions(sys.Plan, src, sys.Model.NumAPs(), sys.MDB, sys.Config.Motion,
		server.Options{
			DataDir:         b.TempDir(),
			FsyncPolicy:     wal.SyncAlways,
			WALSegmentBytes: 64 << 10,
			ObsQueueCap:     1 << 22,
		})
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- leader.ServeStreams(ln) }()
	defer func() {
		leader.Close()
		if err := <-errc; err != nil {
			b.Fatal(err)
		}
	}()
	addr := ln.Addr().String()

	c, err := wire.DialStream(addr, "bench-repl", wire.ClientOptions{})
	if err != nil {
		b.Fatal(err)
	}
	batch := streamBenchBatch(b, sys)
	for i := 0; i < b.N; i++ {
		if err := c.SendObservations(batch); err != nil {
			b.Fatal(err)
		}
	}
	if err := c.WaitAcked(); err != nil {
		b.Fatal(err)
	}
	if err := c.Close(); err != nil {
		b.Fatal(err)
	}

	// The follower retrains on a short period: replicated observations
	// fold on another core while the apply loop streams, exactly the
	// steady state a real read replica runs in — and the queue never
	// backpressures the stream.
	fol, err := server.NewWithOptions(sys.Plan, src, sys.Model.NumAPs(), sys.MDB, sys.Config.Motion,
		server.Options{
			DataDir:         b.TempDir(),
			FsyncPolicy:     wal.SyncAlways,
			ObsQueueCap:     1 << 22,
			RetrainInterval: 100 * time.Millisecond,
			FollowAddr:      "bench-leader",
			ReplDial:        func() (net.Conn, error) { return net.Dial("tcp", addr) },
		})
	if err != nil {
		b.Fatal(err)
	}
	defer fol.Close()

	b.ReportAllocs()
	b.ResetTimer()
	fol.Start()
	var lastApplied uint64
	stall := time.Now()
	for {
		applied := fol.ReplicationStatus().Applied
		if applied >= uint64(b.N) {
			break
		}
		if applied != lastApplied {
			lastApplied, stall = applied, time.Now()
		} else if time.Since(stall) > 30*time.Second {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			b.Fatalf("replication stalled at %d/%d records: %+v\n%s", applied, b.N, fol.ReplicationStatus(), buf)
		}
		time.Sleep(200 * time.Microsecond)
	}
	b.StopTimer()
}
