// Mall runs MoLoc on a larger environment than the paper's office hall:
// a two-corridor shopping mall with 31 reference locations and 8 APs.
// It sweeps the AP count to show how MoLoc keeps accuracy up as radio
// evidence thins out, and prints the mall's twin locations.
//
// Run with:
//
//	go run ./examples/mall
package main

import (
	"fmt"
	"os"

	"moloc"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mall:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := moloc.NewConfig()
	cfg.Plan = moloc.Mall()
	cfg.AdjDist = moloc.MallAdjDist
	cfg.NumTrainTraces = 200 // the mall is bigger; give the crowd more walks
	cfg.NumTestTraces = 40

	sys, err := moloc.Build(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("mall: %d locations, %d aisles, %d APs, %d train / %d test traces\n",
		sys.Plan.NumLocs(), sys.Graph.NumEdges(), sys.Model.NumAPs(),
		len(sys.TrainTraces), len(sys.TestTraces))

	fmt.Printf("%-6s %-7s %9s %9s %8s\n", "APs", "method", "accuracy", "mean(m)", "max(m)")
	for _, n := range []int{4, 6, 8} {
		dep, err := sys.Deploy(sys.AllAPs()[:n])
		if err != nil {
			return err
		}
		ml, err := dep.NewMoLoc()
		if err != nil {
			return err
		}
		wifiRes := dep.Evaluate(dep.NewWiFi())
		w := moloc.Summarize(wifiRes)
		m := moloc.Summarize(dep.Evaluate(ml))
		fmt.Printf("%-6d %-7s %8.1f%% %9.2f %8.2f\n", n, "WiFi", w.Accuracy*100, w.MeanErr, w.MaxErr)
		fmt.Printf("%-6d %-7s %8.1f%% %9.2f %8.2f\n", n, "MoLoc", m.Accuracy*100, m.MeanErr, m.MaxErr)

		if n == len(sys.AllAPs()) {
			twins := moloc.LargeErrorLocs(wifiRes, 6, 0.5)
			fmt.Printf("twin victims at full AP set: %v\n", twins)
			if len(twins) > 0 {
				tw := moloc.FilterByTrueLoc(wifiRes, twins)
				tm := moloc.FilterByTrueLoc(dep.Evaluate(ml), twins)
				fmt.Printf("at those locations, WiFi mean %.2f m vs MoLoc %.2f m\n",
					tw.MeanErr, tm.MeanErr)
			}
		}
	}
	return nil
}
