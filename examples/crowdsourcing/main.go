// Crowdsourcing inspects the motion-database construction pipeline on
// the museum plan: how many crowdsourced RLMs each sanitation stage
// drops, how the trained Gaussians compare with the map ground truth
// (the paper's Fig. 6 view), and why the consistency principle matters
// in a building with walls and doorways.
//
// Run with:
//
//	go run ./examples/crowdsourcing
package main

import (
	"fmt"
	"os"
	"sort"

	"moloc"
	"moloc/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "crowdsourcing:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := moloc.NewConfig()
	cfg.Plan = moloc.Museum()
	cfg.AdjDist = moloc.MuseumAdjDist
	cfg.NumTrainTraces = 120
	cfg.NumTestTraces = 20

	sys, err := moloc.Build(cfg)
	if err != nil {
		return err
	}

	selfLoops, nonAdj, coarse, fine := sys.MDBBuilder.Dropped()
	fmt.Printf("museum: %d locations, %d aisles\n", sys.Plan.NumLocs(), sys.Graph.NumEdges())
	fmt.Println("sanitation drops during motion-DB training:")
	fmt.Printf("  self-loops (endpoint estimates agree): %d\n", selfLoops)
	fmt.Printf("  non-adjacent pairs (consistency filter): %d\n", nonAdj)
	fmt.Printf("  coarse map filter (>20 deg or >3 m off): %d\n", coarse)
	fmt.Printf("  fine 2-sigma filter:                     %d\n", fine)
	fmt.Printf("trained entries: %d (map-seeded: %d)\n",
		sys.MDB.NumEntries(), sys.MDBBuilder.MapSeeded())

	dirErrs, offErrs := sys.MotionDBErrors()
	dc, oc := stats.NewCDF(dirErrs), stats.NewCDF(offErrs)
	fmt.Printf("validity vs map (Fig. 6 view): direction median %.1f deg (max %.1f), offset median %.2f m (max %.2f)\n",
		dc.Median(), dc.Max(), oc.Median(), oc.Max())

	// The consistency principle: pairs that look adjacent on paper but
	// are separated by walls. Straight-line versus walkable distance.
	fmt.Println("walls the map alone would miss:")
	printed := 0
	type severed struct {
		i, j           int
		straight, walk float64
	}
	var cases []severed
	for i := 1; i <= sys.Plan.NumLocs(); i++ {
		for j := i + 1; j <= sys.Plan.NumLocs(); j++ {
			if sys.Plan.LocDist(i, j) <= cfg.AdjDist && !sys.Graph.Adjacent(i, j) {
				if _, d, ok := sys.Graph.ShortestPath(i, j); ok {
					cases = append(cases, severed{i, j, sys.Plan.LocDist(i, j), d})
				}
			}
		}
	}
	sort.Slice(cases, func(a, b int) bool {
		return cases[a].walk-cases[a].straight > cases[b].walk-cases[b].straight
	})
	for _, c := range cases {
		fmt.Printf("  %d and %d: %.1f m apart on the map, %.1f m on foot\n",
			c.i, c.j, c.straight, c.walk)
		printed++
		if printed == 5 {
			break
		}
	}
	if printed == 0 {
		fmt.Println("  (none in this plan)")
	}
	return nil
}
