// Zeroeffort builds a fingerprint database with no manual site survey —
// the WILL/LiFS/Zee direction the paper defers — and compares
// localization over it against the surveyed radio map.
//
// The pipeline: unlabeled walks (raw compass, step counts,
// fingerprints) are decoded against the floor plan's walk graph with a
// Viterbi search over the unknown phone-placement offset; one round of
// EM with the bootstrapped radio map as emission model snaps the labels
// into place.
//
// Run with:
//
//	go run ./examples/zeroeffort
package main

import (
	"fmt"
	"os"

	"moloc"
	"moloc/internal/eval"
	"moloc/internal/fingerprint"
	"moloc/internal/localizer"
	"moloc/internal/stats"
	"moloc/internal/zerosurvey"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "zeroeffort:", err)
		os.Exit(1)
	}
}

func run() error {
	sys, err := moloc.Build(moloc.NewConfig())
	if err != nil {
		return err
	}

	// The same crowdsourced walks that trained the motion database,
	// stripped of labels: only raw compass means, step-count offsets,
	// and fingerprints.
	walks, err := zerosurvey.PrepareWalks(sys.TrainTraces, sys.Survey.MotionEst,
		sys.Config.Motion, stats.NewRNG(7))
	if err != nil {
		return err
	}
	fmt.Printf("decoding %d unlabeled walks over the %s walk graph\n",
		len(walks), sys.Plan.Name)

	res, err := zerosurvey.Infer(sys.Plan, sys.Graph, walks, zerosurvey.NewConfig())
	if err != nil {
		return err
	}
	for i, acc := range res.LabelAccuracy {
		fmt.Printf("  EM round %d: %.1f%% of fingerprints labeled correctly\n", i, acc*100)
	}

	zeroDB, holes, err := zerosurvey.BuildRadioMap(sys.Plan, res,
		fingerprint.Euclidean{}, sys.Model.NumAPs())
	if err != nil {
		return err
	}
	fmt.Printf("zero-effort radio map built (%d locations filled from neighbors)\n", holes)

	// Compare against the manually surveyed deployment.
	dep, err := sys.Deploy(sys.AllAPs())
	if err != nil {
		return err
	}
	surveyedML, err := dep.NewMoLoc()
	if err != nil {
		return err
	}
	zeroML, err := localizer.NewMoLoc(zeroDB, sys.MDB, sys.Config.MoLoc)
	if err != nil {
		return err
	}
	surveyed := moloc.Summarize(dep.Evaluate(surveyedML))
	zero := moloc.Summarize(eval.Run(sys.Plan, zeroML, dep.TestData))
	fmt.Printf("MoLoc over the surveyed map:    accuracy %.1f%%, mean error %.2f m\n",
		surveyed.Accuracy*100, surveyed.MeanErr)
	fmt.Printf("MoLoc over the zero-effort map: accuracy %.1f%%, mean error %.2f m\n",
		zero.Accuracy*100, zero.MeanErr)
	fmt.Println("site survey hours saved: all of them")
	return nil
}
