// Navigation demonstrates the application the paper's introduction
// motivates: guiding a user through a building. A walker strolls the
// office hall; the tracker localizes them every 3 seconds, and a
// navigator recomputes the shortest walkable route to the destination
// from every fix, issuing the next instruction.
//
// Run with:
//
//	go run ./examples/navigation
package main

import (
	"fmt"
	"os"

	"moloc"
	"moloc/internal/fingerprint"
	"moloc/internal/geom"
	"moloc/internal/motion"
	"moloc/internal/sensors"
	"moloc/internal/stats"
	"moloc/internal/trace"
	"moloc/internal/tracker"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "navigation:", err)
		os.Exit(1)
	}
}

func run() error {
	sys, err := moloc.Build(moloc.NewConfig())
	if err != nil {
		return err
	}
	fdb, err := sys.Survey.BuildDB(fingerprint.Euclidean{}, sys.Model.NumAPs())
	if err != nil {
		return err
	}

	const destination = 22 // south-west corner of the hall
	fmt.Printf("guiding a walker to location %d at %v\n",
		destination, sys.Plan.LocPos(destination))

	// The walker wanders; the navigator only sees fixes.
	tcfg := trace.NewConfig()
	tcfg.NumLegs = 12
	tcfg.PauseProb = 0
	sg, err := sensors.NewGenerator(sys.Config.Sensors)
	if err != nil {
		return err
	}
	tg, err := trace.NewGenerator(sys.Plan, sys.Graph, sg, sys.Config.Motion, tcfg)
	if err != nil {
		return err
	}
	user := moloc.DefaultUsers()[3]
	walk := tg.Generate(user, stats.NewRNG(11))

	stepLen := motion.StepLength(sys.Config.Motion, user.HeightM, user.WeightKg)
	tk, err := tracker.New(sys.Plan, fdb, sys.MDB, tracker.NewConfig(stepLen))
	if err != nil {
		return err
	}

	scanRNG := stats.NewRNG(12)
	nextScan := 0.0
	for _, leg := range walk.Legs {
		for _, s := range leg.Samples {
			tk.AddIMU(s)
			if s.T >= nextScan {
				frac := (s.T - leg.T0) / (leg.T1 - leg.T0)
				pos := sys.Plan.LocPos(leg.From).Lerp(sys.Plan.LocPos(leg.To), frac)
				tk.AddScan(s.T, sys.Model.Sample(pos, scanRNG))
				nextScan = s.T + 0.5
			}
			fix, ok := tk.Tick(s.T)
			if !ok {
				continue
			}
			path, dist, reachable := sys.Graph.ShortestPath(fix.Loc, destination)
			if !reachable {
				fmt.Printf("t=%5.1fs at %d: destination unreachable!\n", fix.T, fix.Loc)
				continue
			}
			switch {
			case fix.Loc == destination:
				fmt.Printf("t=%5.1fs at %d: you have arrived\n", fix.T, fix.Loc)
			default:
				next := path[1]
				bearing := sys.Plan.LocBearing(fix.Loc, next)
				fmt.Printf("t=%5.1fs at %2d: head %s to %2d (%.0fm of %.0fm remaining, %d stops)\n",
					fix.T, fix.Loc, compassWord(bearing), next,
					sys.Plan.LocDist(fix.Loc, next), dist, len(path)-1)
			}
		}
	}
	return nil
}

// compassWord names a bearing for human instructions.
func compassWord(deg float64) string {
	dirs := []string{"north", "north-east", "east", "south-east",
		"south", "south-west", "west", "north-west"}
	idx := int(geom.NormalizeDeg(deg+22.5) / 45)
	return dirs[idx%8]
}
