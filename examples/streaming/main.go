// Streaming demonstrates MoLoc's online serving mode: instead of the
// leg-aligned evaluation protocol, a tracking session consumes raw
// 10 Hz IMU samples and ~2 Hz WiFi scans exactly as a phone would
// produce them, and emits a location fix every 3 seconds (the paper's
// localization interval).
//
// Run with:
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"os"

	"moloc"
	"moloc/internal/fingerprint"
	"moloc/internal/motion"
	"moloc/internal/sensors"
	"moloc/internal/stats"
	"moloc/internal/trace"
	"moloc/internal/tracker"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "streaming:", err)
		os.Exit(1)
	}
}

func run() error {
	// Build the office-hall deployment once.
	sys, err := moloc.Build(moloc.NewConfig())
	if err != nil {
		return err
	}
	fdb, err := sys.Survey.BuildDB(fingerprint.Euclidean{}, sys.Model.NumAPs())
	if err != nil {
		return err
	}

	// One walker takes a fresh stroll the system has never seen.
	tcfg := trace.NewConfig()
	tcfg.NumLegs = 10
	tcfg.PauseProb = 0
	sg, err := sensors.NewGenerator(sys.Config.Sensors)
	if err != nil {
		return err
	}
	tg, err := trace.NewGenerator(sys.Plan, sys.Graph, sg, sys.Config.Motion, tcfg)
	if err != nil {
		return err
	}
	user := moloc.DefaultUsers()[2]
	walk := tg.Generate(user, stats.NewRNG(2026))

	// Open a tracking session for this user.
	stepLen := motion.StepLength(sys.Config.Motion, user.HeightM, user.WeightKg)
	tk, err := tracker.New(sys.Plan, fdb, sys.MDB, tracker.NewConfig(stepLen))
	if err != nil {
		return err
	}

	fmt.Printf("streaming a %.0f-second walk by %s (%.2fm/s) through the tracker\n",
		walk.Legs[len(walk.Legs)-1].T1, user.Name, user.SpeedMps)
	fmt.Printf("%8s %6s %28s %s\n", "time", "fix", "true position", "note")

	scanRNG := stats.NewRNG(2027)
	nextScan := 0.0
	for _, leg := range walk.Legs {
		for _, s := range leg.Samples {
			tk.AddIMU(s)
			if s.T >= nextScan {
				frac := (s.T - leg.T0) / (leg.T1 - leg.T0)
				pos := sys.Plan.LocPos(leg.From).Lerp(sys.Plan.LocPos(leg.To), frac)
				tk.AddScan(s.T, sys.Model.Sample(pos, scanRNG))
				nextScan = s.T + 0.5
			}
			if fix, ok := tk.Tick(s.T); ok {
				frac := (fix.T - leg.T0) / (leg.T1 - leg.T0)
				truth := sys.Plan.LocPos(leg.From).Lerp(sys.Plan.LocPos(leg.To), frac)
				note := "fingerprint only"
				if fix.Moved {
					note = "fused with motion"
				}
				fmt.Printf("%7.1fs %6d %20s (%.1fm off) %s\n",
					fix.T, fix.Loc, truth.String(),
					sys.Plan.LocPos(fix.Loc).Dist(truth), note)
			}
		}
	}
	return nil
}
