// Quickstart: build the paper's office-hall experiment end to end and
// compare MoLoc with plain WiFi fingerprinting in a dozen lines.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"moloc"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Build the whole pipeline: office hall, RF model, site survey,
	//    crowdsourced motion database, walking traces.
	sys, err := moloc.Build(moloc.NewConfig())
	if err != nil {
		return err
	}

	// 2. Deploy with all six APs.
	dep, err := sys.Deploy(sys.AllAPs())
	if err != nil {
		return err
	}

	// 3. Evaluate the WiFi baseline and MoLoc on the held-out traces.
	wifi := moloc.Summarize(dep.Evaluate(dep.NewWiFi()))
	ml, err := dep.NewMoLoc()
	if err != nil {
		return err
	}
	molocSum := moloc.Summarize(dep.Evaluate(ml))

	fmt.Printf("office hall, %d test localization attempts\n", wifi.N)
	fmt.Printf("WiFi fingerprinting: accuracy %.0f%%, mean error %.2f m\n",
		wifi.Accuracy*100, wifi.MeanErr)
	fmt.Printf("MoLoc:               accuracy %.0f%%, mean error %.2f m\n",
		molocSum.Accuracy*100, molocSum.MeanErr)
	fmt.Printf("MoLoc improves accuracy by %.1fx and keeps the mean error under 1 m: %v\n",
		molocSum.Accuracy/wifi.Accuracy, molocSum.MeanErr < 1)
	return nil
}
