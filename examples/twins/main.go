// Twins walks through the paper's Fig. 1 scenario with real library
// components: two locations with near-identical fingerprints that plain
// nearest-neighbor matching cannot tell apart, resolved by MoLoc's
// motion matching — even when the initial estimate is wrong.
//
// Run with:
//
//	go run ./examples/twins
package main

import (
	"fmt"
	"os"

	"moloc/internal/fingerprint"
	"moloc/internal/localizer"
	"moloc/internal/motion"
	"moloc/internal/motiondb"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "twins:", err)
		os.Exit(1)
	}
}

func run() error {
	// Three locations on a line, 4 m apart: p (1) in the middle, q (2)
	// to the east, q' (3) to the west. q and q' are fingerprint twins:
	// their radio-map vectors differ by a fraction of a dB.
	samples := [][]fingerprint.Fingerprint{
		{{-40, -70}},     // 1: p, unique fingerprint
		{{-60, -55}},     // 2: q
		{{-60.4, -55.4}}, // 3: q', the twin
	}
	fdb, err := fingerprint.NewDB(fingerprint.Euclidean{}, 2, samples)
	if err != nil {
		return err
	}

	// The motion database knows the walkable geometry: q is 4 m east of
	// p, q' is 4 m west of p, and q' is 8 m west of q.
	mdb := motiondb.New(3)
	mdb.Set(1, 2, motiondb.Entry{MeanDir: 90, StdDir: 6, MeanOff: 4, StdOff: 0.25, N: 20})
	mdb.Set(1, 3, motiondb.Entry{MeanDir: 270, StdDir: 6, MeanOff: 4, StdOff: 0.25, N: 20})
	mdb.Set(2, 3, motiondb.Entry{MeanDir: 270, StdDir: 6, MeanOff: 8, StdOff: 0.4, N: 20})

	cfg := localizer.NewConfig()
	cfg.K = 3
	ml, err := localizer.NewMoLoc(fdb, mdb, cfg)
	if err != nil {
		return err
	}
	nn := localizer.NewWiFiNN(fdb)

	// Scenario of Fig. 1(b): the user starts at p (clear fingerprint),
	// then walks 4 m east to q. The fingerprint scanned at q happens to
	// look marginally more like q' — plain NN picks the wrong twin.
	fmt.Println("-- Fig. 1(b): correct initial location --")
	atP := fingerprint.Fingerprint{-40.5, -69.5}
	ambiguous := fingerprint.Fingerprint{-60.3, -55.3} // between the twins

	fmt.Printf("initial fix: MoLoc=%d NN=%d (truth 1)\n",
		ml.Localize(localizer.Observation{FP: atP}),
		nn.Localize(localizer.Observation{FP: atP}))
	obs := localizer.Observation{
		FP:     ambiguous,
		Motion: &motion.RLM{Dir: 91, Off: 4.1}, // walked ~4 m east
	}
	fmt.Printf("after walking east: MoLoc=%d NN=%d (truth 2: motion breaks the tie)\n",
		ml.Localize(obs), nn.Localize(obs))

	// Scenario of Fig. 1(c): the very first fingerprint is ambiguous and
	// the wrong twin wins. Because MoLoc retains all candidates, the next
	// motion-matched interval still recovers.
	fmt.Println("-- Fig. 1(c): incorrect initial location --")
	ml.Reset()
	first := ml.Localize(localizer.Observation{FP: ambiguous})
	fmt.Printf("initial fix: MoLoc=%d (wrong twin; truth 2)\n", first)
	for _, c := range ml.Candidates() {
		fmt.Printf("  retained candidate %d with probability %.2f\n", c.Loc, c.Prob)
	}
	obs = localizer.Observation{
		FP:     fingerprint.Fingerprint{-60.2, -55.5},
		Motion: &motion.RLM{Dir: 269, Off: 7.9}, // walked ~8 m west: q -> q'
	}
	fmt.Printf("after walking west: MoLoc=%d (truth 3: only the 2->3 transition explains 8 m west)\n",
		ml.Localize(obs))
	return nil
}
