package lint

// AtomicMix enforces the single-discipline rule for shared cells: a
// struct field or package-level variable whose address is ever handed
// to a sync/atomic function must be accessed through sync/atomic
// everywhere. One plain load racing one atomic.AddInt64 is already
// undefined — the obs counters, tracker stats, and the snapshot RCU
// cell all rely on every access agreeing on the discipline, and the
// engine's module-wide field summaries let the check cross package
// boundaries where snapshotguard (annotation-driven, same-package)
// cannot.
//
// Findings flow along the import DAG: when analyzing package P the
// analyzer only consults uses in P and its transitive dependencies, and
// only reports positions inside P. A mix that spans packages is
// therefore reported from the importer — the first package that can see
// both sides — which is also what keeps the driver's per-package
// findings cache sound.

import (
	"fmt"
	"go/token"
	"path/filepath"
)

// AtomicMix reports fields accessed both atomically and plainly.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "a field touched via sync/atomic anywhere must never be accessed plainly elsewhere",
	Run:  runAtomicMix,
}

func runAtomicMix(pass *Pass) {
	for _, ff := range pass.Index.fields {
		var atomics, plains []fieldUse
		for _, u := range ff.Uses {
			if !pass.Index.visible(pass.Path, u.Pkg) {
				continue
			}
			if u.Atomic {
				atomics = append(atomics, u)
			} else {
				plains = append(plains, u)
			}
		}
		if len(atomics) == 0 || len(plains) == 0 {
			continue
		}
		name := ff.Obj.Name()
		localPlain := false
		for _, u := range plains {
			if u.Pkg != pass.Path {
				continue
			}
			localPlain = true
			verb := "read"
			if u.Write {
				verb = "written"
			}
			pass.reportAt(u.Pos, "%s is touched via sync/atomic (%s) but %s plainly here",
				name, shortPos(atomics[0].Pos), verb)
		}
		if localPlain {
			continue
		}
		// The plain side lives in a dependency this package cannot be
		// blamed for; the mix is still real, so the atomic uses here are
		// the reportable half.
		for _, u := range atomics {
			if u.Pkg != pass.Path {
				continue
			}
			pass.reportAt(u.Pos, "%s is accessed plainly (%s) but via sync/atomic here",
				name, shortPos(plains[0].Pos))
		}
	}
}

// shortPos renders a position as basename:line, keeping absolute
// fixture paths out of diagnostic messages.
func shortPos(pos token.Position) string {
	return fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
}
