package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockGuard enforces the repository's mutex-layout convention.
//
// Structs that hold a `mu sync.Mutex` (or sync.RWMutex) field follow
// the standard Go layout in which the fields declared *after* the
// mutex are guarded by it — internal/server.Server is the canonical
// example: plan/src/mdb above the mutex are immutable configuration,
// nextID/sessions below it are mutable shared state. The compiler
// cannot check this; LockGuard does, intraprocedurally: every method
// on such a struct that reads or writes a guarded field must contain a
// mu.Lock/RLock call on the receiver somewhere in its body.
//
// Methods whose name ends in "Locked" are exempt by convention — they
// document that the caller holds the lock. The check is deliberately
// shallow (a lock call anywhere in the body counts, helpers are not
// followed); it catches the common mistake of adding a new accessor
// and forgetting the lock entirely, and `go test -race` backs it up
// dynamically.
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc:  "flags methods touching mutex-guarded struct fields (declared after mu) without locking mu",
	Run:  runLockGuard,
}

// guardedStruct records one struct following the convention.
type guardedStruct struct {
	muName  string
	rwMutex bool
	guarded map[string]bool // field names declared after mu
}

func runLockGuard(pass *Pass) {
	guards := findGuardedStructs(pass)
	if len(guards) == 0 {
		return
	}
	for _, f := range pass.Files {
		if pass.isTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil {
				continue
			}
			checkMethod(pass, guards, fn)
		}
	}
}

// findGuardedStructs scans the package's named struct types for the
// `mu sync.Mutex` + trailing-guarded-fields layout.
func findGuardedStructs(pass *Pass) map[*types.Named]*guardedStruct {
	guards := make(map[*types.Named]*guardedStruct)
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		g := &guardedStruct{guarded: make(map[string]bool)}
		muIdx := -1
		for i := 0; i < st.NumFields(); i++ {
			fld := st.Field(i)
			if muIdx < 0 {
				if rw, ok := isMutexType(fld.Type()); ok && !fld.Embedded() &&
					strings.HasSuffix(strings.ToLower(fld.Name()), "mu") {
					muIdx = i
					g.muName = fld.Name()
					g.rwMutex = rw
				}
				continue
			}
			g.guarded[fld.Name()] = true
		}
		if muIdx >= 0 && len(g.guarded) > 0 {
			guards[named] = g
		}
	}
	return guards
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex, and
// which.
func isMutexType(t types.Type) (rwMutex, ok bool) {
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false, false
	}
	switch obj.Name() {
	case "Mutex":
		return false, true
	case "RWMutex":
		return true, true
	}
	return false, false
}

// checkMethod reports guarded-field accesses in one method that lacks
// any receiver lock call.
func checkMethod(pass *Pass, guards map[*types.Named]*guardedStruct, fn *ast.FuncDecl) {
	if strings.HasSuffix(fn.Name.Name, "Locked") {
		return
	}
	recv := fn.Recv.List[0]
	if len(recv.Names) == 0 {
		return // unnamed receiver cannot touch fields
	}
	recvObj := pass.Info.Defs[recv.Names[0]]
	if recvObj == nil {
		return
	}
	named := namedRecvType(recvObj.Type())
	if named == nil {
		return
	}
	g, ok := guards[named]
	if !ok {
		return
	}

	locked := false
	var accesses []*ast.SelectorExpr
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || pass.Info.Uses[id] != recvObj {
			// recv.mu.Lock() nests the receiver one selector
			// deeper; handled below via the mu selector.
			if isRecvMuSelector(pass, sel, recvObj, g.muName) {
				if name := selectorCallName(sel); name == "Lock" || name == "RLock" {
					locked = true
				}
			}
			return true
		}
		if g.guarded[sel.Sel.Name] {
			accesses = append(accesses, sel)
		}
		return true
	})
	if locked {
		return
	}
	for _, sel := range accesses {
		pass.Reportf(sel.Pos(),
			"%s.%s is guarded by %s.%s but method %s never locks it; add %s.%s.Lock() (or suffix the method name with Locked)",
			recvName(recvObj), sel.Sel.Name, recvName(recvObj), g.muName,
			fn.Name.Name, recvName(recvObj), g.muName)
	}
}

// isRecvMuSelector reports whether sel is `<method>.X = recv.mu`, i.e.
// a selector whose base is the receiver's mutex field.
func isRecvMuSelector(pass *Pass, sel *ast.SelectorExpr, recvObj types.Object, muName string) bool {
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok || inner.Sel.Name != muName {
		return false
	}
	id, ok := ast.Unparen(inner.X).(*ast.Ident)
	return ok && pass.Info.Uses[id] == recvObj
}

// selectorCallName returns the method name of sel when used as a call
// target (Lock, RLock, ...).
func selectorCallName(sel *ast.SelectorExpr) string {
	return sel.Sel.Name
}

// namedRecvType unwraps a (possibly pointer) receiver type to its
// named type.
func namedRecvType(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// recvName returns the receiver variable's name for diagnostics.
func recvName(obj types.Object) string { return obj.Name() }
