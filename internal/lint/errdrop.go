package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop flags discarded error return values in non-test code.
//
// An ignored json.Encoder.Encode in an HTTP handler silently serves a
// truncated body; an ignored file write silently loses a trace. Both
// forms of discard are flagged:
//
//   - a call used as a bare statement whose results include an error
//   - an assignment binding an error result to the blank identifier
//     (`_ = enc.Encode(v)` or `v, _ := f()`)
//
// Deliberate discards must carry a `//lint:ignore errdrop <reason>`
// comment, which doubles as documentation for the reader.
//
// Exempt by contract (they are documented never to return a non-nil
// error, or failure is inconsequential by convention):
//
//   - the fmt print family (fmt.Print/Printf/Println/Fprint*)
//   - methods on bytes.Buffer and strings.Builder
//   - deferred calls (`defer f.Close()` on read paths)
//   - test files
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "flags discarded error return values in non-test code",
	Run:  runErrDrop,
}

func runErrDrop(pass *Pass) {
	for _, f := range pass.Files {
		if pass.isTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				return false // deferred cleanup is exempt
			case *ast.ExprStmt:
				checkBareCall(pass, n)
			case *ast.AssignStmt:
				checkBlankAssign(pass, n)
			}
			return true
		})
	}
}

// checkBareCall flags `f()` statements whose results include an error.
func checkBareCall(pass *Pass, stmt *ast.ExprStmt) {
	call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
	if !ok {
		return
	}
	if !callReturnsError(pass.Info, call) || exemptCallee(pass.Info, call) {
		return
	}
	pass.Reportf(call.Pos(),
		"result of %s includes an error that is silently discarded; handle it or add //lint:ignore errdrop <reason>",
		calleeName(pass.Info, call))
}

// checkBlankAssign flags error results bound to the blank identifier.
func checkBlankAssign(pass *Pass, a *ast.AssignStmt) {
	// Form 1: x, _ := f() — one call, tuple result.
	if len(a.Rhs) == 1 {
		call, ok := ast.Unparen(a.Rhs[0]).(*ast.CallExpr)
		if ok && !exemptCallee(pass.Info, call) {
			if tuple, ok := pass.Info.Types[call].Type.(*types.Tuple); ok && len(a.Lhs) == tuple.Len() {
				for i := 0; i < tuple.Len(); i++ {
					if isBlank(a.Lhs[i]) && isErrorType(tuple.At(i).Type()) {
						pass.Reportf(a.Lhs[i].Pos(),
							"error from %s assigned to _; handle it or add //lint:ignore errdrop <reason>",
							calleeName(pass.Info, call))
					}
				}
				return
			}
		}
	}
	// Form 2: _ = f() or a, _ = f(), g() — 1:1 assignment.
	if len(a.Lhs) != len(a.Rhs) {
		return
	}
	for i, lhs := range a.Lhs {
		if !isBlank(lhs) {
			continue
		}
		rhs := ast.Unparen(a.Rhs[i])
		call, ok := rhs.(*ast.CallExpr)
		if !ok || exemptCallee(pass.Info, call) {
			continue
		}
		if tv, ok := pass.Info.Types[call]; ok && tv.Type != nil && isErrorType(tv.Type) {
			pass.Reportf(lhs.Pos(),
				"error from %s assigned to _; handle it or add //lint:ignore errdrop <reason>",
				calleeName(pass.Info, call))
		}
	}
}

// isBlank reports whether e is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// callReturnsError reports whether any result of the call is an error.
func callReturnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

// exemptCallee reports whether the callee is documented never to fail:
// the fmt print family and the in-memory bytes.Buffer/strings.Builder
// writers.
func exemptCallee(info *types.Info, call *ast.CallExpr) bool {
	fn := funcObj(info, call)
	if fn == nil {
		return false
	}
	full := fn.FullName()
	if strings.HasPrefix(full, "fmt.Print") || strings.HasPrefix(full, "fmt.Fprint") {
		return true
	}
	return strings.HasPrefix(full, "(*bytes.Buffer).") ||
		strings.HasPrefix(full, "(*strings.Builder).")
}

// calleeName renders the callee for diagnostics.
func calleeName(info *types.Info, call *ast.CallExpr) string {
	if fn := funcObj(info, call); fn != nil {
		return fn.FullName()
	}
	return "call"
}
