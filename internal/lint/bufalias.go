package lint

// BufAlias guards the zero-alloc scratch convention. The localizer's
// hot path reuses per-instance buffers (prior/posterior candidate
// slices, the k-NN scratch) across calls; any view into one of them —
// the slice itself, a reslice, an append that extended it in place — is
// silently overwritten by the next Localize. The classic corruption bug
// is returning or storing such a view: the caller sees values mutate
// under it one tick later.
//
// The convention is declared with the //moloc:reuse directive:
//
//   - on a struct field: the field is reused scratch. It must be
//     slice-typed (anything else is reported at the declaration).
//   - on a function or method: its result is a view into reused
//     scratch. Callers must treat the result as borrowed — consume it
//     before the next call, never retain it.
//
// Within each function the analyzer runs a forward taint pass: reuse
// fields, calls to reuse-annotated functions (resolved through the
// module-wide index, so cross-package calls count), and locals assigned
// from them are tainted; reslicing and appending onto a tainted slice
// stay tainted (append may extend in place). Tainted values may flow
// freely through locals and calls — what is reported is *retention*:
//
//   - returning a tainted value from a function not itself annotated
//     //moloc:reuse
//   - assigning a tainted value to a struct field (other than a
//     //moloc:reuse field — publishing scratch into scratch, as the
//     localizer's prior/posterior swap does, is the point) or to a
//     package-level variable
//   - storing a tainted value into a composite literal
//
// Copying out (append(dst, tainted...), copy(dst, tainted)) launders
// the taint: the spread/copy duplicates the elements, so the result
// owns its memory.

import (
	"go/ast"
	"go/types"
)

// BufAlias reports views of //moloc:reuse scratch retained past the call.
var BufAlias = &Analyzer{
	Name: "bufalias",
	Doc:  "values reachable from a //moloc:reuse buffer must not be retained past the call",
	Run:  runBufAlias,
}

func runBufAlias(pass *Pass) {
	checkReuseDecls(pass)
	for _, f := range pass.Files {
		if pass.isTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncAliases(pass, fd)
		}
	}
}

// checkReuseDecls reports //moloc:reuse annotations on non-slice fields
// declared in this package: the directive's whole contract is "the
// backing array is rewritten", which only means something for slices.
func checkReuseDecls(pass *Pass) {
	for _, f := range pass.Files {
		if pass.isTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !fieldDirective(field, "//moloc:reuse") {
					continue
				}
				for _, name := range field.Names {
					obj := pass.Info.Defs[name]
					if obj == nil {
						continue
					}
					if _, isSlice := obj.Type().Underlying().(*types.Slice); !isSlice {
						pass.Reportf(name.Pos(),
							"field %s is annotated //moloc:reuse but is not a slice", name.Name)
					}
				}
			}
			return true
		})
	}
}

// checkFuncAliases runs the forward taint pass over one function body.
func checkFuncAliases(pass *Pass, fd *ast.FuncDecl) {
	selfReuse := hasDirective(fd.Doc, "//moloc:reuse")
	tainted := make(map[types.Object]bool) // locals holding reuse views

	// reuseExpr reports whether e evaluates to a view into reused
	// scratch given the taint state accumulated so far.
	var reuseExpr func(e ast.Expr) bool
	reuseExpr = func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			return tainted[pass.Info.Uses[e]]
		case *ast.SelectorExpr:
			return pass.Index.ReuseField(pass.Info.Uses[e.Sel])
		case *ast.SliceExpr:
			return reuseExpr(e.X)
		case *ast.CallExpr:
			// append(tainted, ...) may extend the reused backing array in
			// place; append(fresh, tainted...) copies the elements out and
			// is clean. The builtin resolves to *types.Builtin, so it is
			// invisible to funcObj.
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin && len(e.Args) > 0 {
					return reuseExpr(e.Args[0])
				}
			}
			if fn := funcObj(pass.Info, e); fn != nil {
				if facts := pass.Index.FuncFacts(fn); facts != nil && facts.ReuseAnnotated {
					return true
				}
			}
		}
		return false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// Evaluate every RHS against the pre-statement taint state
			// (a, b = b, a must see the old b), then apply.
			taint := make([]bool, len(n.Rhs))
			for i, rhs := range n.Rhs {
				taint[i] = reuseExpr(rhs)
			}
			for i, lhs := range n.Lhs {
				// x, y := f() has one RHS feeding every LHS.
				t := taint[0]
				if len(n.Rhs) == len(n.Lhs) {
					t = taint[i]
				}
				recordStore(pass, tainted, lhs, t)
			}
		case *ast.ReturnStmt:
			if selfReuse {
				return true
			}
			for _, res := range n.Results {
				if reuseExpr(res) {
					pass.Reportf(res.Pos(),
						"returns a view into //moloc:reuse scratch from a function not annotated //moloc:reuse")
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if reuseExpr(v) {
					pass.Reportf(v.Pos(),
						"stores a view into //moloc:reuse scratch in a composite literal")
				}
			}
		}
		return true
	})
}

// recordStore applies one assignment: tainting a local, or reporting a
// retention when the destination outlives the call. Only slice-typed
// destinations participate: a view into a reused backing array is a
// slice, so the int in `n, buf = sweep(buf)` cannot carry the taint the
// multi-value rule would otherwise smear onto every LHS.
func recordStore(pass *Pass, tainted map[types.Object]bool, lhs ast.Expr, taint bool) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return
		}
		obj := pass.Info.Defs[lhs]
		if obj == nil {
			obj = pass.Info.Uses[lhs]
		}
		if obj == nil || !sliceTyped(obj) {
			return
		}
		if v, ok := obj.(*types.Var); ok && !v.IsField() &&
			v.Parent() != nil && v.Parent().Parent() == types.Universe {
			if taint {
				pass.Reportf(lhs.Pos(),
					"stores a view into //moloc:reuse scratch in package-level variable %s", lhs.Name)
			}
			return
		}
		tainted[obj] = taint
	case *ast.SelectorExpr:
		obj := pass.Info.Uses[lhs.Sel]
		v, ok := obj.(*types.Var)
		if !ok || !v.IsField() || !sliceTyped(obj) {
			return
		}
		if taint && !pass.Index.ReuseField(obj) {
			pass.Reportf(lhs.Pos(),
				"stores a view into //moloc:reuse scratch in field %s; annotate the field //moloc:reuse or copy the data out", lhs.Sel.Name)
		}
	}
}

// sliceTyped reports whether obj can hold a slice view at all.
func sliceTyped(obj types.Object) bool {
	_, ok := obj.Type().Underlying().(*types.Slice)
	return ok
}
