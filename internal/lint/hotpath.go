package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Hotpath flags allocation- and hashing-prone constructs inside
// functions annotated with a
//
//	//moloc:hotpath
//
// doc-comment directive. The annotation marks the per-fix serving
// path — candidate selection, compiled-index walks, posterior fusion —
// where PR 3's zero-allocation contract is load-bearing and pinned by
// testing.AllocsPerRun tests. Two constructs defeat it silently:
//
//   - map indexing: every access hashes the key; the compiled views
//     exist precisely so hot paths walk slice-backed adjacency instead
//     (motiondb.Compiled vs DB.Lookup).
//   - append onto a buffer that is neither resliced from an existing
//     backing array (buf[:0], buf[:n]) nor made with explicit capacity
//     (make(T, n, c)): such appends grow a fresh allocation per call
//     at steady state.
//
// An append target is accepted when some assignment in the same
// function derives it from a reslice, from such an append chain, or
// from a capacity-explicit make — the reuse idiom the serving buffers
// follow. Findings are suppressed the usual way with //lint:ignore
// hotpath <reason>.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "flags map indexing and non-preallocated appends in //moloc:hotpath functions",
	Run:  runHotpath,
}

func runHotpath(pass *Pass) {
	for _, f := range pass.Files {
		if pass.isTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpathFunc(fd) {
				continue
			}
			checkHotpathBody(pass, fd.Body)
		}
	}
}

// isHotpathFunc reports whether the function's doc comment carries the
// //moloc:hotpath directive.
func isHotpathFunc(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == "//moloc:hotpath" {
			return true
		}
	}
	return false
}

func checkHotpathBody(pass *Pass, body *ast.BlockStmt) {
	reused := reusedBuffers(body)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IndexExpr:
			if tv, ok := pass.Info.Types[n.X]; ok && tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(),
						"map indexing on a hot path hashes per access; walk a compiled slice index instead")
				}
			}
		case *ast.CallExpr:
			if isBuiltinAppend(pass.Info, n) && len(n.Args) > 0 &&
				!isReusedBufferExpr(n.Args[0], reused) {
				pass.Reportf(n.Pos(),
					"append onto a non-preallocated buffer allocates at steady state; append into buf[:0] or make with explicit capacity")
			}
		}
		return true
	})
}

// reusedBuffers collects the names assigned (anywhere in the function)
// from a reslice, a blessed append chain, or a capacity-explicit make —
// the buffer-reuse idiom.
func reusedBuffers(body *ast.BlockStmt) map[string]bool {
	reused := make(map[string]bool)
	// Two passes so an append chain through an intermediate name
	// (a := buf[:0]; b := append(a, ...)) resolves regardless of
	// declaration order.
	for i := 0; i < 2; i++ {
		ast.Inspect(body, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || len(assign.Lhs) != len(assign.Rhs) {
				return true
			}
			for j, lhs := range assign.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if isReuseSource(assign.Rhs[j], reused) {
					reused[id.Name] = true
				}
			}
			return true
		})
	}
	return reused
}

// isReuseSource reports whether an expression yields a slice that
// reuses existing backing: a reslice, an append chain rooted in one,
// or a make with explicit capacity.
func isReuseSource(e ast.Expr, reused map[string]bool) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.SliceExpr:
		return true
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			switch id.Name {
			case "append":
				return len(e.Args) > 0 && isReusedBufferExpr(e.Args[0], reused)
			case "make":
				return len(e.Args) == 3
			}
		}
	}
	return false
}

// isReusedBufferExpr reports whether an append target is acceptable: a
// reslice expression, or a name established as a reused buffer.
func isReusedBufferExpr(e ast.Expr, reused map[string]bool) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.SliceExpr:
		return true
	case *ast.Ident:
		return reused[e.Name]
	}
	return false
}

// isBuiltinAppend reports whether the call is the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name() == "append"
	}
	return false
}
