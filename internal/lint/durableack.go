package lint

// DurableAck machine-checks the ack-after-durable protocol from the
// crash-safety PR: a client must never receive a success it could lose.
// Two orderings encode it:
//
//  1. Ingest handlers annotated //moloc:durable may only write a 2xx
//     status after a call that can reach a WAL append. Reachability is
//     the engine's transitive AppendsWAL fact, so an
//     enqueueDurable-style wrapper three calls above (*Log).Append
//     counts as the guard.
//  2. The same rule for the binary stream plane, where success is an
//     ack frame instead of a status code: a call that can reach an
//     //moloc:ack-annotated primitive (the engine's transitive SendsAck
//     fact, anchored at (*wire.Writer).WriteAck) inside a
//     //moloc:durable function must be preceded by an AppendsWAL call.
//  3. In packages under internal/wal and internal/checkpoint, a Rename
//     call (the atomic publish of a data file) must be preceded by a
//     Sync call in the same function — rename-before-fsync can publish
//     a file whose contents are still in the page cache.
//
// "Preceded" is the lexical approximation documented in flow.go: the
// guard call appears earlier in the same function body, not inside a
// function literal. A 2xx is recognized as any call argument that is an
// integer constant in [200, 299] — which catches both
// w.WriteHeader(http.StatusAccepted) and the repo's
// writeJSON(w, http.StatusAccepted, body) helper.

import (
	"go/ast"
	"go/constant"
)

// DurableAck reports success acks and renames that outrun durability.
var DurableAck = &Analyzer{
	Name: "durableack",
	Doc:  "2xx and stream acks in //moloc:durable handlers must follow a WAL append; Rename must follow Sync",
	Run:  runDurableAck,
}

func runDurableAck(pass *Pass) {
	syncBeforeRename := pkgHasSegments(pass.Path, "internal/wal") ||
		pkgHasSegments(pass.Path, "internal/checkpoint")
	for _, f := range pass.Files {
		if pass.isTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if hasDirective(fd.Doc, "//moloc:durable") {
				checkDurableHandler(pass, fd)
			}
			if syncBeforeRename {
				checkSyncBeforeRename(pass, fd)
			}
		}
	}
}

// checkDurableHandler demands every success release in an annotated
// handler — a 2xx status write on the HTTP side, a SendsAck-reaching
// call on the stream side — be preceded by a call that can reach a WAL
// append.
func checkDurableHandler(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		isAck := carries2xx(pass, call)
		kind := "writes a 2xx status"
		if !isAck {
			if fn := funcObj(pass.Info, call); fn != nil {
				if facts := pass.Index.FuncFacts(fn); facts != nil && facts.SendsAck {
					isAck = true
					kind = "releases a stream ack"
				}
			}
		}
		if !isAck {
			return true
		}
		for _, prev := range precedingCalls(fd.Body, call.Pos()) {
			if fn := funcObj(pass.Info, prev); fn != nil {
				if facts := pass.Index.FuncFacts(fn); facts != nil && facts.AppendsWAL {
					return true
				}
			}
		}
		pass.Reportf(call.Pos(),
			kind+" in a //moloc:durable handler with no preceding WAL append")
		return true
	})
}

// carries2xx reports whether any argument of call is an integer
// constant in [200, 299].
func carries2xx(pass *Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		tv, ok := pass.Info.Types[arg]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
			continue
		}
		if code, exact := constant.Int64Val(tv.Value); exact && code >= 200 && code <= 299 {
			return true
		}
	}
	return false
}

// checkSyncBeforeRename demands every Rename call in the durability
// packages be preceded by a Sync in the same function.
func checkSyncBeforeRename(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := funcObj(pass.Info, call)
		if fn == nil || fn.Name() != "Rename" {
			return true
		}
		for _, prev := range precedingCalls(fd.Body, call.Pos()) {
			if pfn := funcObj(pass.Info, prev); pfn != nil && pfn.Name() == "Sync" {
				return true
			}
		}
		pass.Reportf(call.Pos(),
			"Rename publishes a data file with no preceding Sync in this function (write → fsync → rename)")
		return true
	})
}
