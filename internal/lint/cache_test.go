package lint

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// scratchModule writes a two-package module whose only finding is an
// errdrop in app: app discards lib.Helper's error. The lib→app import
// edge is what the dependency-invalidation test leans on.
func scratchModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	writeFile(t, dir, "go.mod", "module scratch\n\ngo 1.22\n")
	writeFile(t, dir, "lib/lib.go", `package lib

import "errors"

func Helper() error { return errors.New("x") }
`)
	writeFile(t, dir, "app/app.go", `package app

import "scratch/lib"

func use() {
	lib.Helper()
}
`)
	return dir
}

func writeFile(t *testing.T, dir, rel, content string) {
	t.Helper()
	path := filepath.Join(dir, rel)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRunCachedColdWarm pins the cache contract: the first run misses
// and analyzes, the second hits and replays findings identical to the
// cold run — positions, messages, package attribution, order.
func TestRunCachedColdWarm(t *testing.T) {
	dir := scratchModule(t)
	cachePath := filepath.Join(dir, ".cache", "lint.json")

	cold, hit, err := RunCached(dir, "scratch", cachePath, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first run must be a cache miss")
	}
	if len(cold) != 1 || cold[0].Analyzer != "errdrop" {
		t.Fatalf("cold run diagnostics: %v", cold)
	}

	warm, hit, err := RunCached(dir, "scratch", cachePath, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("unchanged module must be a cache hit")
	}
	if !reflect.DeepEqual(dropOffsets(cold), warm) {
		t.Errorf("replayed findings differ from cold run:\ncold: %v\nwarm: %v", cold, warm)
	}
}

// dropOffsets zeroes the byte offsets of freshly-analyzed diagnostics:
// the cache stores file:line:column only (the rendered position), so a
// replay cannot and need not reconstruct offsets.
func dropOffsets(ds []Diagnostic) []Diagnostic {
	out := make([]Diagnostic, len(ds))
	for i, d := range ds {
		d.Pos.Offset = 0
		out[i] = d
	}
	return out
}

// TestRunCachedInvalidation proves edits are seen: touching the package
// itself, and — via the Merkle dep chain — touching only a dependency
// whose change alters the importer's findings.
func TestRunCachedInvalidation(t *testing.T) {
	dir := scratchModule(t)
	cachePath := filepath.Join(dir, ".cache", "lint.json")
	if _, _, err := RunCached(dir, "scratch", cachePath, Analyzers()); err != nil {
		t.Fatal(err)
	}

	// Edit app: a second discarded error appears.
	writeFile(t, dir, "app/app.go", `package app

import "scratch/lib"

func use() {
	lib.Helper()
}

func use2() {
	lib.Helper()
}
`)
	diags, hit, err := RunCached(dir, "scratch", cachePath, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("edited package must miss the cache")
	}
	if len(diags) != 2 {
		t.Fatalf("after edit: %v", diags)
	}

	// Edit only lib: Helper no longer returns an error, so app's
	// finding vanishes even though app.go's bytes are unchanged. A
	// per-package hash without the dep chain would wrongly replay the
	// stale findings here.
	writeFile(t, dir, "lib/lib.go", `package lib

func Helper() {}
`)
	diags, hit, err = RunCached(dir, "scratch", cachePath, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("edited dependency must invalidate the importer's entry")
	}
	if len(diags) != 0 {
		t.Fatalf("after dep edit: %v", diags)
	}
	if _, hit, _ := RunCached(dir, "scratch", cachePath, Analyzers()); !hit {
		t.Error("rewritten cache must hit on the next run")
	}
}

// TestRunCachedRobustness: a corrupt cache file and a changed analyzer
// set both read as misses, never as errors or stale replays.
func TestRunCachedRobustness(t *testing.T) {
	dir := scratchModule(t)
	cachePath := filepath.Join(dir, ".cache", "lint.json")
	if _, _, err := RunCached(dir, "scratch", cachePath, Analyzers()); err != nil {
		t.Fatal(err)
	}

	writeFile(t, dir, ".cache/lint.json", "{torn write")
	diags, hit, err := RunCached(dir, "scratch", cachePath, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("corrupt cache must be a miss")
	}
	if len(diags) != 1 {
		t.Fatalf("corrupt-cache run: %v", diags)
	}

	// A different analyzer list changes every key: findings cached for
	// the full suite must not be replayed for a subset run.
	subset := []*Analyzer{DegNorm, RandSrc}
	diags, hit, err = RunCached(dir, "scratch", cachePath, subset)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("changed analyzer set must miss the cache")
	}
	if len(diags) != 0 {
		t.Fatalf("subset run: %v", diags)
	}
}
