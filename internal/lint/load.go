package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("moloc/internal/geom" for module
	// packages; directory-relative for fixture trees).
	Path string
	// Dir is the absolute directory the package was loaded from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Load parses and type-checks every package under root, in dependency
// order, using only the standard library: stdlib imports are resolved
// by the source importer against GOROOT, intra-module imports against
// the packages loaded so far.
//
// modPath is the module path that prefixes import paths of packages
// under root (read it from go.mod with ModulePath). An empty modPath
// makes import paths directory-relative, which is what the analyzer
// fixture trees under testdata use. Directories named testdata, and
// hidden directories, are skipped; so are _test.go files — every
// analyzer exempts test code, and skipping them keeps external test
// packages (package foo_test) out of the type-checker.
func Load(root, modPath string) ([]*Package, error) {
	return LoadTree(root, modPath, false)
}

// LoadTree is Load with control over _test.go files. Including them
// type-checks in-package test files alongside the rest of the package;
// the analyzer fixtures use this to prove the per-file test exemption.
// External test packages (package foo_test) are not supported.
func LoadTree(root, modPath string, includeTests bool) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	parsed := make(map[string]*parsedPkg) // import path -> parsed files
	var paths []string
	for _, dir := range dirs {
		p, err := parseDir(fset, dir, includeTests)
		if err != nil {
			return nil, err
		}
		if p == nil {
			continue // only test files, or no Go files
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		p.path = importPath(modPath, rel)
		parsed[p.path] = p
		paths = append(paths, p.path)
	}
	sort.Strings(paths)

	order, err := topoSort(parsed, paths)
	if err != nil {
		return nil, err
	}

	checked := make(map[string]*types.Package)
	imp := &moduleImporter{
		std: importer.ForCompiler(fset, "source", nil),
		mod: checked,
	}
	var pkgs []*Package
	for _, path := range order {
		p := parsed[path]
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, fset, p.files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %w", path, err)
		}
		checked[path] = tpkg
		pkgs = append(pkgs, &Package{
			Path:  path,
			Dir:   p.dir,
			Fset:  fset,
			Files: p.files,
			Types: tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}

// ModulePath reads the module path from the go.mod in dir, walking up
// parent directories until one is found.
func ModulePath(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod: no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

type parsedPkg struct {
	path    string
	dir     string
	files   []*ast.File
	imports []string // intra-tree import candidates
}

// packageDirs returns every directory under root that may hold a
// package, in lexical order.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	return dirs, err
}

// parseDir parses the Go files of one directory. It returns nil when
// the directory holds no analyzable Go files.
func parseDir(fset *token.FileSet, dir string, includeTests bool) (*parsedPkg, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	p := &parsedPkg{dir: dir}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		p.files = append(p.files, f)
		for _, spec := range f.Imports {
			if path, err := strconv.Unquote(spec.Path.Value); err == nil {
				p.imports = append(p.imports, path)
			}
		}
	}
	if len(p.files) == 0 {
		return nil, nil
	}
	return p, nil
}

// importPath joins the module path and a root-relative directory.
func importPath(modPath, rel string) string {
	rel = filepath.ToSlash(rel)
	switch {
	case rel == ".":
		return modPath
	case modPath == "":
		return rel
	default:
		return modPath + "/" + rel
	}
}

// topoSort orders package paths so every intra-tree dependency comes
// before its importers, rejecting import cycles.
func topoSort(parsed map[string]*parsedPkg, paths []string) ([]string, error) {
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int, len(paths))
	var order []string
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("import cycle through %s", path)
		}
		state[path] = visiting
		for _, imp := range parsed[path].imports {
			if _, ok := parsed[imp]; ok {
				if err := visit(imp); err != nil {
					return err
				}
			}
		}
		state[path] = done
		order = append(order, path)
		return nil
	}
	for _, path := range paths {
		if err := visit(path); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter resolves intra-module imports from the packages
// type-checked so far and everything else from GOROOT source.
type moduleImporter struct {
	std types.Importer
	mod map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.mod[path]; ok {
		return pkg, nil
	}
	return m.std.Import(path)
}
