package lint

// The cross-function engine. PR 1–4's analyzers were strictly
// per-function: each looked at one body and reported. The invariants
// grown since — ack-after-durable ingest, RCU snapshot cells, reused
// zero-alloc scratch — are properties of call *chains*, not bodies, so
// this file builds the shared substrate they query: one Index over
// every loaded package holding per-function summaries (which calls can
// reach a WAL append, which functions block on a stop signal or retire
// a WaitGroup, which return views into reused scratch) and per-field
// access summaries (atomic vs. plain touches, module-wide).
//
// The Index is built once per RunAll and handed to every Pass; facts
// flow strictly along the import DAG (a package's findings depend only
// on itself and its dependencies), which is what makes the driver's
// per-package findings cache sound.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FuncFacts is the summary of one declared function or method.
type FuncFacts struct {
	// Decl is the syntax; Pkg the package it was declared in.
	Decl *ast.FuncDecl
	Pkg  *Package

	// Calls are the statically resolved callees (declared functions and
	// methods, including interface methods) invoked anywhere in the
	// body, function literals included.
	Calls []*types.Func

	// AppendsWAL reports that the function may reach a WAL append —
	// (*Log).Append or (*Log).AppendNoSync in a package under
	// internal/wal — directly or through any chain of module-internal
	// calls. durableack uses it to accept enqueueDurable-style wrappers
	// as the durability guard.
	AppendsWAL bool

	// SendsAck reports that the function may reach an ack-release
	// primitive — a function annotated //moloc:ack, like the stream
	// plane's (*wire.Writer).WriteAck — directly or transitively.
	// durableack demands such calls in //moloc:durable functions be
	// preceded by an AppendsWAL call, the binary-protocol twin of the
	// 2xx-after-append rule.
	SendsAck bool

	// Blocking reports that the body (or a transitive callee) receives
	// from a channel: a <-ch expression, a select receive case, or
	// ranging over a channel. A goroutine running such a function has
	// its lifetime tied to a signal someone can fire; waitleak accepts
	// it.
	Blocking bool

	// RetiresWG reports that the body (or a transitive callee) calls
	// (*sync.WaitGroup).Done, so a goroutine running it is joinable.
	RetiresWG bool

	// ReuseAnnotated reports the //moloc:reuse doc directive: the
	// function's contract is that its result aliases reused scratch and
	// must not be retained past the next call. bufalias checks callers
	// of annotated functions and bodies returning annotated fields.
	ReuseAnnotated bool
}

// fieldUse is one syntactic access to a tracked field or variable.
type fieldUse struct {
	Pos    token.Position
	Pkg    string // import path of the using package
	Atomic bool   // address passed to a sync/atomic function
	Write  bool   // plain store (assignment or ++/--)
}

// FieldFacts is the module-wide access summary of one struct field or
// package-level variable that is touched through sync/atomic somewhere.
type FieldFacts struct {
	Obj  types.Object
	Uses []fieldUse
}

// Index is the module-wide cross-function fact base.
type Index struct {
	funcs  map[*types.Func]*FuncFacts
	fields map[types.Object]*FieldFacts
	// reuseFields are the struct fields annotated //moloc:reuse: scratch
	// buffers whose backing array is overwritten on the next call.
	reuseFields map[types.Object]bool
	// deps maps a package path to the set of module package paths it
	// can see: itself plus its transitive imports. Analyzers restrict
	// cross-package queries to this set so findings flow only along the
	// import DAG.
	deps map[string]map[string]bool
}

// ReuseField reports whether obj is a //moloc:reuse-annotated field.
func (ix *Index) ReuseField(obj types.Object) bool {
	return ix != nil && ix.reuseFields[obj]
}

// FuncFacts returns the summary of fn, or nil for functions outside the
// indexed packages (stdlib, interface methods without bodies).
func (ix *Index) FuncFacts(fn *types.Func) *FuncFacts {
	if ix == nil || fn == nil {
		return nil
	}
	return ix.funcs[fn]
}

// visible reports whether the package at path `from` can see facts
// originating in package `in` (same package or a transitive import).
func (ix *Index) visible(from, in string) bool {
	return ix.deps[from][in]
}

// BuildIndex runs the shared summary pass over every package, then
// propagates the transitive facts (AppendsWAL, Blocking, RetiresWG)
// over the static call graph to a fixed point.
func BuildIndex(pkgs []*Package) *Index {
	ix := &Index{
		funcs:       make(map[*types.Func]*FuncFacts),
		fields:      make(map[types.Object]*FieldFacts),
		reuseFields: make(map[types.Object]bool),
		deps:        make(map[string]map[string]bool),
	}
	for _, pkg := range pkgs {
		ix.deps[pkg.Path] = reachableImports(pkg.Types)
		for _, f := range pkg.Files {
			if strings.HasSuffix(pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
				continue // test code makes no promises the engine should export
			}
			ix.summarizeFile(pkg, f)
		}
	}
	ix.propagate()
	return ix
}

// reachableImports returns the import paths visible from tpkg: itself
// and everything transitively imported.
func reachableImports(tpkg *types.Package) map[string]bool {
	seen := make(map[string]bool)
	var walk func(p *types.Package)
	walk = func(p *types.Package) {
		if seen[p.Path()] {
			return
		}
		seen[p.Path()] = true
		for _, imp := range p.Imports() {
			walk(imp)
		}
	}
	walk(tpkg)
	return seen
}

// summarizeFile extracts the direct (non-transitive) facts of one file:
// per-function call lists and flags, and field access records.
func (ix *Index) summarizeFile(pkg *Package, f *ast.File) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
		if obj == nil {
			continue
		}
		facts := &FuncFacts{
			Decl: fd, Pkg: pkg,
			ReuseAnnotated: hasDirective(fd.Doc, "//moloc:reuse"),
			SendsAck:       hasDirective(fd.Doc, "//moloc:ack"),
		}
		if isWALAppend(obj) {
			facts.AppendsWAL = true
		}
		if fd.Body != nil {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if callee := funcObj(pkg.Info, n); callee != nil {
						facts.Calls = append(facts.Calls, callee)
						if isWALAppend(callee) {
							facts.AppendsWAL = true
						}
						if isWaitGroupMethod(callee, "Done") {
							facts.RetiresWG = true
						}
					}
				case *ast.UnaryExpr:
					if n.Op == token.ARROW {
						facts.Blocking = true
					}
				case *ast.RangeStmt:
					if tv, ok := pkg.Info.Types[n.X]; ok && tv.Type != nil {
						if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
							facts.Blocking = true
						}
					}
				}
				return true
			})
		}
		ix.funcs[obj] = facts
	}
	ast.Inspect(f, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok {
			return true
		}
		for _, field := range st.Fields.List {
			if !fieldDirective(field, "//moloc:reuse") {
				continue
			}
			for _, name := range field.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					ix.reuseFields[obj] = true
				}
			}
		}
		return true
	})
	ix.recordFieldUses(pkg, f)
}

// fieldDirective reports whether a struct field's doc or line comment
// carries the given //moloc:* directive.
func fieldDirective(field *ast.Field, directive string) bool {
	return hasDirective(field.Doc, directive) || hasDirective(field.Comment, directive)
}

// hasDirective reports whether a comment group carries the given
// //moloc:* directive on a line of its own.
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}

// isWALAppend reports whether fn is a write-ahead log append method —
// Append, or the group-commit split's AppendNoSync — in any package
// under internal/wal, so analyzer fixtures can model it. AppendNoSync
// counts because its records are covered by the committer's fsync
// before any ack releases (the SendsAck side of durableack checks
// exactly that ordering).
func isWALAppend(fn *types.Func) bool {
	return (fn.Name() == "Append" || fn.Name() == "AppendNoSync") && fn.Pkg() != nil &&
		pkgHasSegments(fn.Pkg().Path(), "internal/wal") &&
		fn.Type().(*types.Signature).Recv() != nil
}

// isWaitGroupMethod reports whether fn is the named method of
// sync.WaitGroup.
func isWaitGroupMethod(fn *types.Func, name string) bool {
	if fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "WaitGroup"
}

// propagate closes AppendsWAL, SendsAck, Blocking, and RetiresWG over
// the static call graph: a function inherits each flag from any callee.
// Iterates to a fixed point (the graph is small and cycles are rare).
func (ix *Index) propagate() {
	for changed := true; changed; {
		changed = false
		for _, facts := range ix.funcs {
			for _, callee := range facts.Calls {
				cf := ix.funcs[callee]
				if cf == nil {
					continue
				}
				if cf.AppendsWAL && !facts.AppendsWAL {
					facts.AppendsWAL = true
					changed = true
				}
				if cf.SendsAck && !facts.SendsAck {
					facts.SendsAck = true
					changed = true
				}
				if cf.Blocking && !facts.Blocking {
					facts.Blocking = true
					changed = true
				}
				if cf.RetiresWG && !facts.RetiresWG {
					facts.RetiresWG = true
					changed = true
				}
			}
		}
	}
}

// recordFieldUses files every access to a struct field or package-level
// variable that is *somewhere* handed to sync/atomic: both the atomic
// touches (&x passed to atomic.AddInt64 and friends) and the plain
// reads/writes atomicmix will cross-reference against them.
func (ix *Index) recordFieldUses(pkg *Package, f *ast.File) {
	// Atomic touches first: &obj as an argument of a sync/atomic call.
	atomicArgs := make(map[ast.Expr]bool) // the &x UnaryExpr nodes
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := funcObj(pkg.Info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
			return true
		}
		for _, arg := range call.Args {
			if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && u.Op == token.AND {
				atomicArgs[u] = true
			}
		}
		return true
	})

	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		var id *ast.Ident
		switch n := n.(type) {
		case *ast.SelectorExpr:
			id = n.Sel
		case *ast.Ident:
			// Only package-level variables are tracked by bare name, and
			// only when the Ident is not the Sel of a selector (already
			// handled above).
			if p, ok := nthParent(stack, 2).(*ast.SelectorExpr); ok && p.Sel == n {
				return true
			}
			id = n
		default:
			return true
		}
		obj := pkg.Info.Uses[id]
		if !trackableVar(obj) {
			return true
		}
		use := fieldUse{Pos: pkg.Fset.Position(id.Pos()), Pkg: pkg.Path}
		// The use expression is the node on top of the stack; its parent
		// decides the access shape.
		switch p := nthParent(stack, 2).(type) {
		case *ast.UnaryExpr:
			if p.Op == token.AND && atomicArgs[p] {
				use.Atomic = true
			}
			// Other address-taking aliases the cell; atomicmix treats it
			// as a plain (unknowable) use.
		case *ast.AssignStmt:
			for _, lhs := range p.Lhs {
				if ast.Unparen(lhs) == nthParent(stack, 1) {
					use.Write = true
				}
			}
		case *ast.IncDecStmt:
			use.Write = true
		}
		ff := ix.fields[obj]
		if ff == nil {
			ff = &FieldFacts{Obj: obj}
			ix.fields[obj] = ff
		}
		ff.Uses = append(ff.Uses, use)
		return true
	})
}

// trackableVar reports whether obj is a struct field or a package-level
// variable of a non-atomic type — the objects atomicmix cross-checks.
// Fields of sync/atomic named types enforce atomicity through their
// method set already (and snapshotguard/copylocks cover their misuse).
func trackableVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	if !v.IsField() && (v.Parent() == nil || v.Parent().Parent() != types.Universe) {
		return false // locals and parameters are single-goroutine state
	}
	if named, ok := v.Type().(*types.Named); ok {
		if p := named.Obj().Pkg(); p != nil && p.Path() == "sync/atomic" {
			return false
		}
	}
	return true
}
