package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SnapshotGuard restricts struct fields annotated with a
//
//	//moloc:snapshot
//
// comment to access through their atomic methods. The annotation marks
// the RCU-style published views of the online-training path: the server
// stores each freshly recompiled *motiondb.Compiled into an
// atomic.Pointer, and trackers acquire it with one Load per tick. The
// whole scheme is sound only if every read and write goes through
// Load/Store/Swap/CompareAndSwap — a direct dereference or a value copy
// of the atomic.Pointer bypasses the memory-ordering guarantees and can
// observe a torn swap.
//
// An annotated field must itself be an atomic.Pointer[T] (or a pointer
// to one, for consumers handed the publisher's cell); anything else is
// reported at the declaration. For uses, the analyzer accepts:
//
//   - method calls: f.Load(), f.Store(v), f.Swap(v), f.CompareAndSwap(o, n)
//   - taking the address (&s.snap) to wire a consumer to the
//     publisher's cell
//   - for pointer-typed fields only: nil comparisons (the unwired
//     guard) and assignment as a whole (rewiring which cell is
//     followed, not touching its contents)
//
// Everything else — dereferences, value copies, passing the field by
// value, method values — is flagged. Findings are suppressed the usual
// way with //lint:ignore snapshotguard <reason>.
var SnapshotGuard = &Analyzer{
	Name: "snapshotguard",
	Doc:  "restricts //moloc:snapshot fields to atomic.Pointer Load/Store access",
	Run:  runSnapshotGuard,
}

func runSnapshotGuard(pass *Pass) {
	fields := snapshotFields(pass)
	if len(fields) == 0 {
		return
	}
	for _, f := range pass.Files {
		if pass.isTestFile(f) {
			continue
		}
		checkSnapshotUses(pass, f, fields)
	}
}

// snapshotFields collects the //moloc:snapshot-annotated struct fields
// declared in the pass's package, reporting any whose type is not an
// atomic.Pointer (those are excluded from use checking — the annotation
// itself is the bug).
func snapshotFields(pass *Pass) map[types.Object]bool {
	fields := make(map[types.Object]bool)
	for _, f := range pass.Files {
		if pass.isTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !hasSnapshotDirective(field) {
					continue
				}
				for _, name := range field.Names {
					obj := pass.Info.Defs[name]
					if obj == nil {
						continue
					}
					if !isAtomicPointer(obj.Type()) {
						pass.Reportf(name.Pos(),
							"field %s is annotated //moloc:snapshot but is not an atomic.Pointer", name.Name)
						continue
					}
					fields[obj] = true
				}
			}
			return true
		})
	}
	return fields
}

// hasSnapshotDirective reports whether the field's doc or line comment
// carries the //moloc:snapshot directive.
func hasSnapshotDirective(field *ast.Field) bool {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if strings.TrimSpace(c.Text) == "//moloc:snapshot" {
				return true
			}
		}
	}
	return false
}

// isAtomicPointer reports whether t is sync/atomic.Pointer[T] or a
// pointer to one.
func isAtomicPointer(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Pointer" &&
		obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// checkSnapshotUses walks one file with a parent stack and reports
// every use of an annotated field that is not an allowed access shape.
func checkSnapshotUses(pass *Pass, f *ast.File, fields map[types.Object]bool) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[sel.Sel]
		if obj == nil || !fields[obj] {
			return true
		}
		if !snapshotUseAllowed(sel, stack, obj) {
			pass.Reportf(sel.Pos(),
				"snapshot field %s must be accessed through its atomic Load/Store methods (//moloc:snapshot)",
				sel.Sel.Name)
		}
		return true
	})
}

// atomicAccessors are the sync/atomic.Pointer methods that constitute a
// legitimate snapshot access.
var atomicAccessors = map[string]bool{
	"Load": true, "Store": true, "Swap": true, "CompareAndSwap": true,
}

// snapshotUseAllowed reports whether the selector's enclosing context
// is one of the accepted access shapes. The stack ends with sel itself;
// stack[len-2] is its parent.
func snapshotUseAllowed(sel *ast.SelectorExpr, stack []ast.Node, obj types.Object) bool {
	parent := nthParent(stack, 2)
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		// s.snap.Load() — the method selector must itself be called.
		if p.X != ast.Expr(sel) || !atomicAccessors[p.Sel.Name] {
			return false
		}
		call, ok := nthParent(stack, 3).(*ast.CallExpr)
		return ok && call.Fun == ast.Expr(p)
	case *ast.UnaryExpr:
		// &s.snap — wiring a consumer to the publisher's cell.
		return p.Op == token.AND
	case *ast.BinaryExpr:
		// t.snap == nil — the unwired guard on a pointer-typed field.
		if p.Op != token.EQL && p.Op != token.NEQ {
			return false
		}
		other := p.X
		if other == ast.Expr(sel) {
			other = p.Y
		}
		id, ok := ast.Unparen(other).(*ast.Ident)
		return ok && id.Name == "nil"
	case *ast.AssignStmt:
		// t.snap = cell — rewiring a pointer-typed field as a whole.
		// Assigning over a value-typed atomic.Pointer copies a lock and
		// is never legitimate.
		if _, isPtr := obj.Type().(*types.Pointer); !isPtr {
			return false
		}
		for _, lhs := range p.Lhs {
			if ast.Unparen(lhs) == ast.Expr(sel) {
				return true
			}
		}
	}
	return false
}

// nthParent returns the node n levels up the inspection stack (1 = the
// current node), or nil when the stack is shorter.
func nthParent(stack []ast.Node, n int) ast.Node {
	if len(stack) < n {
		return nil
	}
	return stack[len(stack)-n]
}
