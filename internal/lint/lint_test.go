package lint

import (
	"path/filepath"
	"regexp"
	"testing"
)

// wantRe extracts `// want `regex“ annotations from fixture comments.
var wantRe = regexp.MustCompile("// want `([^`]*)`")

// expectation is one parsed want annotation.
type expectation struct {
	raw     string
	re      *regexp.Regexp
	matched bool
}

// runFixtureTest loads testdata/<analyzer> (including _test.go files,
// to prove the per-file test exemption), runs the analyzer over every
// fixture package, and compares the diagnostics line-by-line against
// the `// want` annotations: every diagnostic must match an annotation
// on its line, and every annotation must be hit exactly once.
func runFixtureTest(t *testing.T, a *Analyzer) {
	t.Helper()
	root := filepath.Join("testdata", a.Name)
	pkgs, err := LoadTree(root, "", true)
	if err != nil {
		t.Fatalf("load fixtures: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no fixture packages under %s", root)
	}

	wants := make(map[string]map[int][]*expectation)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					pos := pkg.Fset.Position(c.Pos())
					for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
						}
						if wants[pos.Filename] == nil {
							wants[pos.Filename] = make(map[int][]*expectation)
						}
						wants[pos.Filename][pos.Line] = append(wants[pos.Filename][pos.Line],
							&expectation{raw: m[1], re: re})
					}
				}
			}
		}
	}

	for _, pkg := range pkgs {
		for _, d := range Run(a, pkg) {
			exps := wants[d.Pos.Filename][d.Pos.Line]
			found := false
			for _, e := range exps {
				if !e.matched && e.re.MatchString(d.Message) {
					e.matched = true
					found = true
					break
				}
			}
			if !found {
				t.Errorf("unexpected diagnostic: %s", d)
			}
		}
	}
	for file, lines := range wants {
		for line, exps := range lines {
			for _, e := range exps {
				if !e.matched {
					t.Errorf("%s:%d: no diagnostic matching `%s`", file, line, e.raw)
				}
			}
		}
	}
}

func TestDegNorm(t *testing.T)   { runFixtureTest(t, DegNorm) }
func TestRandSrc(t *testing.T)   { runFixtureTest(t, RandSrc) }
func TestLockGuard(t *testing.T) { runFixtureTest(t, LockGuard) }
func TestErrDrop(t *testing.T)   { runFixtureTest(t, ErrDrop) }

func TestSnapshotGuard(t *testing.T) { runFixtureTest(t, SnapshotGuard) }

// TestRepoIsClean runs the full suite over the real module and demands
// zero findings — the repository must stay lint-clean. It mirrors the
// `go run ./cmd/moloclint ./...` CI step.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	root, modPath, err := ModulePath(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, modPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range RunAll(pkgs, Analyzers()) {
		t.Errorf("finding: %s", d)
	}
}

func TestAnalyzerRegistry(t *testing.T) {
	names := map[string]bool{}
	for _, a := range Analyzers() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing a name, doc, or run function", a)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
		if AnalyzerByName(a.Name) != a {
			t.Errorf("AnalyzerByName(%q) did not round-trip", a.Name)
		}
	}
	if AnalyzerByName("nope") != nil {
		t.Error("AnalyzerByName should return nil for unknown names")
	}
}

func TestPkgHasSegments(t *testing.T) {
	cases := []struct {
		path, want string
		ok         bool
	}{
		{"internal/geom", "internal/geom", true},
		{"moloc/internal/geom", "internal/geom", true},
		{"moloc/internal/geometry", "internal/geom", false},
		{"geom", "internal/geom", false},
		{"moloc/internal/stats", "internal/stats", true},
		{"a/internal/geom/sub", "internal/geom", true},
	}
	for _, c := range cases {
		if got := pkgHasSegments(c.path, c.want); got != c.ok {
			t.Errorf("pkgHasSegments(%q, %q) = %v, want %v", c.path, c.want, got, c.ok)
		}
	}
}
