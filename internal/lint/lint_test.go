package lint

import (
	"path/filepath"
	"regexp"
	"testing"
)

// wantRe extracts `// want `regex“ annotations from fixture comments.
var wantRe = regexp.MustCompile("// want `([^`]*)`")

// expectation is one parsed want annotation.
type expectation struct {
	raw     string
	re      *regexp.Regexp
	matched bool
}

// runFixtureTest loads testdata/<analyzer> (including _test.go files,
// to prove the per-file test exemption), runs the analyzer over every
// fixture package, and compares the diagnostics line-by-line against
// the `// want` annotations: every diagnostic must match an annotation
// on its line, and every annotation must be hit exactly once.
func runFixtureTest(t *testing.T, a *Analyzer) {
	t.Helper()
	runFixtureSuite(t, a.Name, []*Analyzer{a})
}

// runFixtureSuite is runFixtureTest over a whole analyzer suite: the
// fixture tree is analyzed with RunAll, so the cross-function index
// spans every fixture package (the cross-package cases need it) and
// the staleignore sweep runs when the suite includes it.
func runFixtureSuite(t *testing.T, name string, analyzers []*Analyzer) {
	t.Helper()
	root := filepath.Join("testdata", name)
	pkgs, err := LoadTree(root, "", true)
	if err != nil {
		t.Fatalf("load fixtures: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no fixture packages under %s", root)
	}

	wants := make(map[string]map[int][]*expectation)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					pos := pkg.Fset.Position(c.Pos())
					for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
						}
						if wants[pos.Filename] == nil {
							wants[pos.Filename] = make(map[int][]*expectation)
						}
						wants[pos.Filename][pos.Line] = append(wants[pos.Filename][pos.Line],
							&expectation{raw: m[1], re: re})
					}
				}
			}
		}
	}

	for _, d := range RunAll(pkgs, analyzers) {
		exps := wants[d.Pos.Filename][d.Pos.Line]
		found := false
		for _, e := range exps {
			if !e.matched && e.re.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for file, lines := range wants {
		for line, exps := range lines {
			for _, e := range exps {
				if !e.matched {
					t.Errorf("%s:%d: no diagnostic matching `%s`", file, line, e.raw)
				}
			}
		}
	}
}

func TestDegNorm(t *testing.T)   { runFixtureTest(t, DegNorm) }
func TestRandSrc(t *testing.T)   { runFixtureTest(t, RandSrc) }
func TestLockGuard(t *testing.T) { runFixtureTest(t, LockGuard) }
func TestErrDrop(t *testing.T)   { runFixtureTest(t, ErrDrop) }

func TestSnapshotGuard(t *testing.T) { runFixtureTest(t, SnapshotGuard) }

func TestAtomicMix(t *testing.T)  { runFixtureTest(t, AtomicMix) }
func TestBufAlias(t *testing.T)   { runFixtureTest(t, BufAlias) }
func TestDurableAck(t *testing.T) { runFixtureTest(t, DurableAck) }
func TestWaitLeak(t *testing.T)   { runFixtureTest(t, WaitLeak) }

// TestStaleIgnore runs the full suite over its fixture: staleness is
// "no analyzer matched", so the sweep only means something with the
// other analyzers live to consume the suppressions that still earn
// their keep.
func TestStaleIgnore(t *testing.T) { runFixtureSuite(t, StaleIgnore.Name, Analyzers()) }

// TestRepoIsClean runs the full suite over the real module and demands
// zero findings — the repository must stay lint-clean. It mirrors the
// `go run ./cmd/moloclint ./...` CI step.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	root, modPath, err := ModulePath(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, modPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range RunAll(pkgs, Analyzers()) {
		t.Errorf("finding: %s", d)
	}
}

func TestAnalyzerRegistry(t *testing.T) {
	names := map[string]bool{}
	for _, a := range Analyzers() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing a name, doc, or run function", a)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
		if AnalyzerByName(a.Name) != a {
			t.Errorf("AnalyzerByName(%q) did not round-trip", a.Name)
		}
	}
	if AnalyzerByName("nope") != nil {
		t.Error("AnalyzerByName should return nil for unknown names")
	}
}

// TestIndexTransitiveFacts pins the engine's fixed-point propagation
// over the static call graph, using the fixture trees as input: the
// durableack handler reaches the WAL only through its enqueue wrapper,
// and the waitleak loop carries its Done and channel-blocking facts up
// to every caller.
func TestIndexTransitiveFacts(t *testing.T) {
	factsOf := func(ix *Index, name string) *FuncFacts {
		t.Helper()
		for fn, facts := range ix.funcs {
			if fn.Name() == name {
				return facts
			}
		}
		t.Fatalf("no indexed function named %s", name)
		return nil
	}

	pkgs, err := LoadTree(filepath.Join("testdata", "durableack"), "", false)
	if err != nil {
		t.Fatal(err)
	}
	ix := BuildIndex(pkgs)
	if !factsOf(ix, "Append").AppendsWAL {
		t.Error("(*wal.Log).Append itself must carry AppendsWAL")
	}
	if !factsOf(ix, "enqueue").AppendsWAL {
		t.Error("enqueue calls Append directly; AppendsWAL must propagate")
	}
	if !factsOf(ix, "handleGood").AppendsWAL {
		t.Error("handleGood reaches Append through enqueue; AppendsWAL must be transitive")
	}
	if factsOf(ix, "saveGood").AppendsWAL {
		t.Error("saveGood never reaches a WAL append")
	}
	if !factsOf(ix, "WriteAck").SendsAck {
		t.Error("(*wire.Writer).WriteAck carries //moloc:ack; SendsAck must be set")
	}
	if !factsOf(ix, "commitAcks").SendsAck {
		t.Error("commitAcks calls WriteAck directly; SendsAck must propagate")
	}
	if !factsOf(ix, "serveGood").SendsAck {
		t.Error("serveGood reaches WriteAck through commitAcks; SendsAck must be transitive")
	}
	if factsOf(ix, "enqueueStream").SendsAck {
		t.Error("enqueueStream never reaches an ack primitive")
	}
	if !factsOf(ix, "enqueueStream").AppendsWAL {
		t.Error("enqueueStream calls AppendNoSync; AppendsWAL must cover the group-commit append")
	}

	pkgs, err = LoadTree(filepath.Join("testdata", "waitleak"), "", false)
	if err != nil {
		t.Fatal(err)
	}
	ix = BuildIndex(pkgs)
	loop := factsOf(ix, "loop")
	if !loop.RetiresWG || !loop.Blocking {
		t.Errorf("loop defers wg.Done and ranges a channel; got RetiresWG=%v Blocking=%v",
			loop.RetiresWG, loop.Blocking)
	}
	if !factsOf(ix, "await").Blocking {
		t.Error("await receives from a channel; Blocking must be set")
	}
	if factsOf(ix, "work").Blocking || factsOf(ix, "work").RetiresWG {
		t.Error("work has no concurrency facts")
	}
}

func TestPkgHasSegments(t *testing.T) {
	cases := []struct {
		path, want string
		ok         bool
	}{
		{"internal/geom", "internal/geom", true},
		{"moloc/internal/geom", "internal/geom", true},
		{"moloc/internal/geometry", "internal/geom", false},
		{"geom", "internal/geom", false},
		{"moloc/internal/stats", "internal/stats", true},
		{"a/internal/geom/sub", "internal/geom", true},
	}
	for _, c := range cases {
		if got := pkgHasSegments(c.path, c.want); got != c.ok {
			t.Errorf("pkgHasSegments(%q, %q) = %v, want %v", c.path, c.want, got, c.ok)
		}
	}
}
