package lint

// WaitLeak demands every goroutine in non-test code have a provable
// way to be joined or stopped. The server's drain-on-Close contract —
// Close waits for the sweeper, the retrainer, and the worker pool
// before flushing the WAL — only holds if no code path spawns a
// goroutine outside that discipline; a leaked one keeps ticking against
// freed sessions or a closed store.
//
// A `go` statement is accepted when any of these holds:
//
//  1. Joinable: a WaitGroup.Add call lexically precedes the statement
//     in the same enclosing function, and the spawned body calls
//     WaitGroup.Done — directly, or (for `go s.loop()`) transitively
//     through the engine's RetiresWG fact, which sees the
//     `defer s.wg.Done()` inside the loop body in another function.
//  2. Stoppable: the spawned body blocks on a channel — a receive, a
//     select, or ranging over a work queue — directly or transitively
//     (Blocking fact). Someone holds the other end and can fire it.
//  3. Completion-send: the body is a single channel send
//     (`go func() { errc <- srv.Serve() }()`), the idiom for adapting
//     a blocking call to select; it terminates with the call.
//
// Everything else — including `go` on a function value the engine
// cannot resolve statically — is reported; a deliberate fire-and-forget
// goroutine documents itself with //lint:ignore waitleak <why>.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// WaitLeak reports goroutines with no join or stop discipline.
var WaitLeak = &Analyzer{
	Name: "waitleak",
	Doc:  "every go statement must be tied to a WaitGroup Add/Done pair or a stop-channel",
	Run:  runWaitLeak,
}

func runWaitLeak(pass *Pass) {
	for _, f := range pass.Files {
		if pass.isTestFile(f) {
			continue
		}
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !goStmtAllowed(pass, g, stack) {
				pass.Reportf(g.Pos(),
					"goroutine has no WaitGroup Add/Done pair, stop-channel, or completion send")
			}
			return true
		})
	}
}

// goStmtAllowed checks the three accepted shapes for one go statement.
func goStmtAllowed(pass *Pass, g *ast.GoStmt, stack []ast.Node) bool {
	blocking, done := spawnedFacts(pass, g.Call)
	if blocking {
		return true
	}
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok && isCompletionSend(lit) {
		return true
	}
	return done && addPrecedes(pass, g, stack)
}

// spawnedFacts resolves what the goroutine will run — a function
// literal analyzed inline, or a declared function looked up in the
// index — and returns whether it blocks on a channel or retires a
// WaitGroup, transitively.
func spawnedFacts(pass *Pass, call *ast.CallExpr) (blocking, done bool) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if fn := funcObj(pass.Info, n); fn != nil {
					if isWaitGroupMethod(fn, "Done") {
						done = true
					}
					if facts := pass.Index.FuncFacts(fn); facts != nil {
						blocking = blocking || facts.Blocking
						done = done || facts.RetiresWG
					}
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					blocking = true
				}
			case *ast.RangeStmt:
				if tv, ok := pass.Info.Types[n.X]; ok && tv.Type != nil {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						blocking = true
					}
				}
			}
			return true
		})
		return blocking, done
	}
	if fn := funcObj(pass.Info, call); fn != nil {
		if facts := pass.Index.FuncFacts(fn); facts != nil {
			return facts.Blocking, facts.RetiresWG
		}
	}
	return false, false
}

// isCompletionSend reports whether the literal's body is exactly one
// channel send — the adapt-blocking-call idiom.
func isCompletionSend(lit *ast.FuncLit) bool {
	if len(lit.Body.List) != 1 {
		return false
	}
	_, ok := lit.Body.List[0].(*ast.SendStmt)
	return ok
}

// addPrecedes reports whether a WaitGroup.Add call lexically precedes
// the go statement inside its innermost enclosing function body (a
// FuncLit's body when the spawn happens inside one, as in
// sync.Once-guarded Start methods).
func addPrecedes(pass *Pass, g *ast.GoStmt, stack []ast.Node) bool {
	body := enclosingFuncBody(stack)
	if body == nil {
		return false
	}
	for _, prev := range precedingCalls(body, g.Pos()) {
		if fn := funcObj(pass.Info, prev); fn != nil && isWaitGroupMethod(fn, "Add") {
			return true
		}
	}
	return false
}

// enclosingFuncBody returns the body of the innermost function —
// declaration or literal — the top of the stack sits in.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncLit:
			return fn.Body
		case *ast.FuncDecl:
			return fn.Body
		}
	}
	return nil
}
