package lint

// Lexical-order dataflow helpers shared by the dominance-style checks
// (durableack's Sync-before-Rename and append-before-ack, waitleak's
// Add-before-go).
//
// True CFG dominance is out of reach for a stdlib-only suite, so the
// checks use a deliberate approximation: a guard "precedes" a target
// when its call appears lexically before the target inside the same
// function body, not nested in a function literal. The approximation is
// one-sided in the safe direction for this repository's shapes — a
// guard inside `if err == nil { f.Sync() }` followed by the Rename
// still counts (checkpoint.Save's real ordering), while a guard that
// only appears after the target, or only inside a deferred closure,
// does not. What it cannot see is a guard on a branch the target does
// not take; the fixture tests document that boundary.

import (
	"go/ast"
	"go/token"
)

// precedingCalls returns every call expression that lexically precedes
// pos within body, excluding calls nested inside function literals
// (those run at some other time, so they guard nothing).
func precedingCalls(body *ast.BlockStmt, pos token.Pos) []*ast.CallExpr {
	var calls []*ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && call.End() <= pos {
			calls = append(calls, call)
		}
		return true
	})
	return calls
}

// enclosingFuncDecl returns the function declaration a parent stack is
// currently inside, or nil at file scope.
func enclosingFuncDecl(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}

// inFuncLit reports whether the top of the stack sits inside a function
// literal (closer than any FuncDecl).
func inFuncLit(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncLit:
			return true
		case *ast.FuncDecl:
			return false
		}
	}
	return false
}
