package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// This file implements the driver's incremental findings cache.
//
// Soundness rests on one invariant, stated on Diagnostic.Pkg and
// Pass.Index: a package's findings are a pure function of its own
// sources plus its transitive dependency closure. Analyzers only
// consult cross-function facts along Index.visible (the import DAG)
// and only report positions inside the analyzed package, so a Merkle
// key — the package's file contents hashed together with its
// dependencies' keys — identifies the full input of its analysis. If
// every package's key matches the cache, the stored findings are
// replayed without parsing or type-checking anything; any mismatch
// falls back to a full load-and-analyze and rewrites the cache.
//
// The key also folds in the analyzer list (the staleignore sweep's
// output depends on which analyzers ran) and a cache-format version
// bumped whenever an analyzer's behaviour changes.

// cacheVersion invalidates every cache written by earlier builds of
// the suite. Bump it when an analyzer's behaviour changes in a way
// source hashes cannot see.
const cacheVersion = 1

// cachedDiag is one finding with its position stored relative to the
// module root (forward slashes), so a cache survives a checkout moving.
type cachedDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// cacheEntry is one package's key and findings.
type cacheEntry struct {
	Path  string       `json:"path"`
	Key   string       `json:"key"`
	Diags []cachedDiag `json:"diags,omitempty"`
}

// cacheData is the on-disk cache file, entries sorted by package path
// so the file itself is deterministic.
type cacheData struct {
	Version int          `json:"version"`
	Entries []cacheEntry `json:"entries"`
}

// RunCached executes the analyzers over the whole module rooted at
// root, consulting the findings cache at cachePath. On a full hit —
// every package's Merkle key matches the cached entry and no package
// appeared or disappeared — the stored findings are replayed without
// type-checking and hit is true. Otherwise the module is loaded and
// analyzed as RunAll would, and the cache is rewritten.
func RunCached(root, modPath, cachePath string, analyzers []*Analyzer) (diags []Diagnostic, hit bool, err error) {
	root, err = filepath.Abs(root)
	if err != nil {
		return nil, false, err
	}
	keys, err := cacheKeys(root, modPath, analyzers)
	if err != nil {
		return nil, false, err
	}

	if cached, ok := loadCache(cachePath, keys); ok {
		diags, err := replayDiags(root, cached)
		if err == nil {
			return diags, true, nil
		}
		// A malformed entry is a miss, not a failure.
	}

	pkgs, err := Load(root, modPath)
	if err != nil {
		return nil, false, err
	}
	diags = RunAll(pkgs, analyzers)
	if err := writeCache(cachePath, root, keys, diags); err != nil {
		return nil, false, fmt.Errorf("write cache: %w", err)
	}
	return diags, false, nil
}

// cacheKeys computes every package's Merkle key without type-checking:
// it walks the same directories and files Load would, hashes file
// contents, and parses imports only (parser.ImportsOnly) to chain each
// package's key to its intra-module dependencies' keys.
func cacheKeys(root, modPath string, analyzers []*Analyzer) (map[string]string, error) {
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	parsed := make(map[string]*parsedPkg)
	fileLines := make(map[string][]string) // import path -> "name hash" lines
	var paths []string
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		p := &parsedPkg{dir: dir}
		var lines []string
		for _, e := range entries {
			name := e.Name()
			// Mirror parseDir's selection exactly: the key must cover
			// precisely the files Load analyzes.
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
				continue
			}
			if strings.HasSuffix(name, "_test.go") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				return nil, err
			}
			sum := sha256.Sum256(data)
			lines = append(lines, fmt.Sprintf("%s %s", name, hex.EncodeToString(sum[:])))
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), data, parser.ImportsOnly)
			if err != nil {
				return nil, err
			}
			for _, spec := range f.Imports {
				if ip, err := strconv.Unquote(spec.Path.Value); err == nil {
					p.imports = append(p.imports, ip)
				}
			}
		}
		if len(lines) == 0 {
			continue
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		p.path = importPath(modPath, rel)
		parsed[p.path] = p
		fileLines[p.path] = lines
		paths = append(paths, p.path)
	}
	sort.Strings(paths)
	order, err := topoSort(parsed, paths)
	if err != nil {
		return nil, err
	}

	names := make([]string, len(analyzers))
	for i, a := range analyzers {
		names[i] = a.Name
	}
	suite := strings.Join(names, ",")

	keys := make(map[string]string, len(order))
	for _, path := range order {
		h := sha256.New()
		fmt.Fprintf(h, "moloclint cache v%d\n", cacheVersion)
		fmt.Fprintf(h, "analyzers %s\n", suite)
		fmt.Fprintf(h, "package %s\n", path)
		for _, line := range fileLines[path] {
			fmt.Fprintf(h, "file %s\n", line)
		}
		deps := make([]string, 0, len(parsed[path].imports))
		seen := make(map[string]bool)
		for _, imp := range parsed[path].imports {
			if _, intra := parsed[imp]; intra && !seen[imp] {
				seen[imp] = true
				deps = append(deps, imp)
			}
		}
		sort.Strings(deps)
		for _, dep := range deps {
			// Topological order guarantees keys[dep] is already
			// computed; its own dep hashes make the chain transitive.
			fmt.Fprintf(h, "dep %s %s\n", dep, keys[dep])
		}
		keys[path] = hex.EncodeToString(h.Sum(nil))
	}
	return keys, nil
}

// loadCache reads the cache file and reports whether it covers exactly
// the given key set — same packages, same keys.
func loadCache(cachePath string, keys map[string]string) (*cacheData, bool) {
	data, err := os.ReadFile(cachePath)
	if err != nil {
		return nil, false
	}
	var c cacheData
	if err := json.Unmarshal(data, &c); err != nil || c.Version != cacheVersion {
		return nil, false
	}
	if len(c.Entries) != len(keys) {
		return nil, false
	}
	for _, e := range c.Entries {
		if keys[e.Path] != e.Key {
			return nil, false
		}
	}
	return &c, true
}

// replayDiags reconstructs sorted Diagnostics from a cache, resolving
// stored module-relative paths against the current root.
func replayDiags(root string, c *cacheData) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, e := range c.Entries {
		for _, d := range e.Diags {
			if d.File == "" || d.Analyzer == "" {
				return nil, fmt.Errorf("cache entry %s: malformed diagnostic", e.Path)
			}
			diags = append(diags, Diagnostic{
				Pos: token.Position{
					Filename: filepath.Join(root, filepath.FromSlash(d.File)),
					Line:     d.Line,
					Column:   d.Column,
				},
				Analyzer: d.Analyzer,
				Message:  d.Message,
				Pkg:      e.Path,
			})
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

// writeCache persists per-package entries. The write is not atomic; a
// torn cache file fails to unmarshal in loadCache and reads as a miss,
// which the next run repairs.
func writeCache(cachePath, root string, keys map[string]string, diags []Diagnostic) error {
	byPkg := make(map[string][]cachedDiag)
	for _, d := range diags {
		rel, err := filepath.Rel(root, d.Pos.Filename)
		if err != nil {
			rel = d.Pos.Filename
		}
		byPkg[d.Pkg] = append(byPkg[d.Pkg], cachedDiag{
			File:     filepath.ToSlash(rel),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	c := cacheData{Version: cacheVersion}
	paths := make([]string, 0, len(keys))
	for path := range keys {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		c.Entries = append(c.Entries, cacheEntry{
			Path:  path,
			Key:   keys[path],
			Diags: byPkg[path],
		})
	}
	data, err := json.MarshalIndent(&c, "", "\t")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(cachePath), 0o755); err != nil {
		return err
	}
	return os.WriteFile(cachePath, data, 0o644)
}
