// Fixture: _test.go files are exempt from errdrop. No finding may be
// reported here.
package app

import (
	"encoding/json"
	"os"
)

func testOnlyDrop(v interface{}) {
	enc := json.NewEncoder(os.Stdout)
	enc.Encode(v)
	_ = enc.Encode(v)
}
