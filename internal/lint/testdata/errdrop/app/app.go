// Fixture: true positives and allowed patterns for the errdrop
// analyzer in non-test code.
package app

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

func encode(v interface{}) {
	enc := json.NewEncoder(os.Stdout)
	enc.Encode(v)     // want `silently discarded`
	_ = enc.Encode(v) // want `assigned to _`
}

func read(name string) string {
	f, _ := os.Open(name) // want `assigned to _`
	defer f.Close()       // allowed: deferred cleanup is exempt
	b, _ := os.ReadFile(name) // want `assigned to _`
	return string(b)
}

// Allowed: the fmt print family and in-memory writers are documented
// never to fail.
func report(buf *bytes.Buffer) string {
	fmt.Println("ok")
	fmt.Fprintf(os.Stderr, "done\n")
	buf.WriteString("x")
	var sb strings.Builder
	sb.WriteString("y")
	return sb.String()
}

// Allowed: handled errors are the happy path.
func handled(v interface{}) error {
	if err := json.NewEncoder(os.Stdout).Encode(v); err != nil {
		return err
	}
	return nil
}

func suppressed(v interface{}) {
	enc := json.NewEncoder(os.Stdout)
	//lint:ignore errdrop fixture demonstrates suppression
	enc.Encode(v)
}
