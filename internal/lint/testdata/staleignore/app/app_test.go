// Suppressions in test files are never reported as stale: every
// analyzer exempts test code, so they cannot match by construction.
package app

func dropInTest() {
	//lint:ignore errdrop tests are exempt from every analyzer
	mightFail()
}
