// Package app exercises the staleignore sweep: a //lint:ignore comment
// that matched no finding across the whole suite is itself reported.
// This fixture runs under the full analyzer suite — staleness only
// means something with the other analyzers live.
package app

import "errors"

func mightFail() error { return errors.New("boom") }

// A suppression that earns its keep: errdrop fires on the bare call and
// the comment consumes it.
func deliberateDrop() {
	//lint:ignore errdrop the fixture drops this error on purpose
	mightFail()
}

// Nothing on the next line triggers errdrop: the error is handled. The
// comment is a leftover from a refactor and must be reported.
func handledNow() error {
	//lint:ignore errdrop stale leftover from a refactor // want `//lint:ignore errdrop suppresses nothing; remove the stale comment`
	return mightFail()
}

// A stale suppression may be kept deliberately mid-migration by
// silencing the stale report itself; that staleignore comment is then
// used and neither line is reported.
func keptThroughMigration() error {
	//lint:ignore staleignore suppression kept while the migration is in flight
	//lint:ignore errdrop kept deliberately during the migration
	return mightFail()
}

// A staleignore suppression with no stale report under it suppresses
// nothing and is reported unconditionally — a suppression of a
// suppression of nothing has no defensible reading.
func danglingStaleIgnore() {
	//lint:ignore staleignore nothing stale here // want `//lint:ignore staleignore suppresses nothing; remove the stale comment`
	var n int
	_ = n
}

// A suppression naming an analyzer that is not part of the run proves
// nothing either way and is left alone.
func unknownAnalyzer() {
	//lint:ignore notananalyzer tools other than moloclint read this
	var n int
	_ = n
}
