// Fixture dependency package: Gauge.N is only ever accessed plainly
// here. The mix happens in the importing package (app), which is where
// the finding must be reported — a dependency cannot be blamed for an
// importer it cannot see.
package lib

type Gauge struct {
	N int64
}

func (g *Gauge) Bump() {
	g.N++
}
