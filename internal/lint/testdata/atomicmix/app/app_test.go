// Test files are exempt: plain access to atomically-touched state in a
// test is single-goroutine probing, not a race.
package app

func snapshotForTest(c *counters) int64 {
	return c.hits
}
