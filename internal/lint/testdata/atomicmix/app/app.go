// Package app exercises the atomicmix analyzer: a field or
// package-level variable whose address is ever handed to sync/atomic
// must be accessed through sync/atomic everywhere.
package app

import (
	"sync/atomic"

	"lib"
)

type counters struct {
	hits  int64
	total int64
	plain int64 // never touched atomically; free to use plainly
}

func (c *counters) inc() {
	atomic.AddInt64(&c.hits, 1)
	atomic.AddInt64(&c.total, 1)
}

// Consistent discipline: reads through sync/atomic are fine.
func (c *counters) loadHits() int64 {
	return atomic.LoadInt64(&c.hits)
}

// Mixed read: total is atomic elsewhere but read plainly here.
func (c *counters) snapshot() (int64, int64) {
	return atomic.LoadInt64(&c.hits), c.total // want `total is touched via sync/atomic \(app.go:\d+\) but read plainly here`
}

// Mixed write.
func (c *counters) reset() {
	c.total = 0 // want `total is touched via sync/atomic \(app.go:\d+\) but written plainly here`
}

// Plain-only fields never report.
func (c *counters) bumpPlain() {
	c.plain++
}

// Package-level variables are tracked like fields.
var ops int64

func bumpOps() {
	atomic.AddInt64(&ops, 1)
}

func readOps() int64 {
	return ops // want `ops is touched via sync/atomic \(app.go:\d+\) but read plainly here`
}

// Cross-package mix: lib.Gauge.N is accessed plainly inside lib, which
// cannot see this package. The finding lands here, on the atomic side —
// the first package that can see both halves.
func bumpShared(g *lib.Gauge) {
	atomic.AddInt64(&g.N, 1) // want `N is accessed plainly \(lib.go:\d+\) but via sync/atomic here`
}
