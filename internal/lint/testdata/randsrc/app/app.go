// Fixture: true positives and allowed patterns for the randsrc
// analyzer in a non-exempt package.
package app

import (
	"math/rand" // want `import of math/rand outside internal/stats`
	"time"
)

func seed() int64 {
	return time.Now().UnixNano() // want `wall-clock seed`
}

func draw() float64 {
	return rand.Float64()
}

// Allowed: timing measurements do not touch randomness.
func elapsed() time.Duration {
	start := time.Now()
	return time.Since(start)
}

func suppressedSeed() int64 {
	//lint:ignore randsrc fixture demonstrates suppression
	return time.Now().UnixNano()
}
