// Fixture: the v2 rand package is flagged the same way.
package app

import (
	randv2 "math/rand/v2" // want `import of math/rand/v2 outside internal/stats`
)

func drawV2() float64 {
	return randv2.Float64()
}
