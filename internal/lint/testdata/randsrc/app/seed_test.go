// Fixture: _test.go files are exempt from randsrc — tests may use
// fixed-seed ambient randomness. No finding may be reported here.
package app

import (
	"math/rand"
	"time"
)

func testOnlySeed() int64 {
	_ = rand.Int()
	return time.Now().UnixNano()
}
