// Fixture: internal/stats is the one place allowed to wrap math/rand.
// No finding may be reported here.
package stats

import "math/rand"

type RNG struct{ r *rand.Rand }

func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}
