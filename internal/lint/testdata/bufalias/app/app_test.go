// Test files are exempt: a test may hold the scratch view to assert on
// buffer identity.
package app

func leakForTest(l *localizer) []candidate {
	return l.buf
}
