// Package app exercises the bufalias analyzer: views into
// //moloc:reuse scratch must not be retained past the call.
package app

import "lib"

type candidate struct {
	loc  int
	prob float64
}

type localizer struct {
	//moloc:reuse
	buf []candidate
	//moloc:reuse
	post []candidate

	retained []candidate

	//moloc:reuse
	gen int // want `field gen is annotated //moloc:reuse but is not a slice`
}

// An annotated accessor may hand out the scratch: that is the contract.
//
//moloc:reuse
func (l *localizer) view() []candidate {
	return l.buf
}

// Returning scratch from an unannotated function leaks it.
func (l *localizer) leak() []candidate {
	return l.buf // want `returns a view into //moloc:reuse scratch`
}

// A reslice is the same backing array.
func (l *localizer) leakSub() []candidate {
	return l.buf[:1] // want `returns a view into //moloc:reuse scratch`
}

// Taint flows through locals and reslices of locals.
func (l *localizer) leakFlow() []candidate {
	v := l.buf
	w := v[:0]
	return w // want `returns a view into //moloc:reuse scratch`
}

// append onto scratch may extend it in place: still the same buffer.
func (l *localizer) leakAppend() []candidate {
	out := append(l.buf, candidate{})
	return out // want `returns a view into //moloc:reuse scratch`
}

// append onto a fresh slice copies the elements out: clean.
func (l *localizer) copyOut() []candidate {
	return append([]candidate(nil), l.buf...)
}

// The prior/posterior swap publishes scratch into scratch: the point of
// the annotation, allowed.
func (l *localizer) swap() {
	l.buf, l.post = l.post, l.buf
}

// Storing scratch in an unannotated field retains it past the call.
func (l *localizer) retain() {
	l.retained = l.buf[:0] // want `stores a view into //moloc:reuse scratch in field retained`
}

// Storing a copy is clean.
func (l *localizer) retainCopy() {
	l.retained = append(l.retained[:0], l.buf...)
}

var published []candidate

// Package-level variables outlive everything.
func (l *localizer) publish() {
	published = l.buf // want `stores a view into //moloc:reuse scratch in package-level variable published`
}

// Composite literals escape through whatever holds them.
func (l *localizer) wrap() [][]candidate {
	return [][]candidate{l.buf} // want `stores a view into //moloc:reuse scratch in a composite literal`
}

// Reading scratch in place — indexing, ranging, passing to a consumer —
// is the intended use and stays silent.
func (l *localizer) best() int {
	if len(l.buf) == 0 {
		return 0
	}
	top := l.buf[0]
	for _, c := range l.buf[1:] {
		if c.prob > top.prob {
			top = c
		}
	}
	return top.loc
}

// An annotated sweep returning (count, scratch) — the incremental-
// sweeper shape. The multi-value assignment must taint only the slice
// result; the count is an int and cannot be a view.
//
//moloc:reuse
func (l *localizer) sweep(buf []candidate) (int, []candidate) {
	buf = append(buf[:0], l.buf...)
	return len(buf), buf
}

// Accumulating the counts and returning the total is clean.
func (l *localizer) sweepAll() int {
	total := 0
	var buf []candidate
	for i := 0; i < 3; i++ {
		var n int
		n, buf = l.sweep(buf)
		total += n
	}
	_ = buf
	return total
}

// The slice half of the pair is still a view.
func (l *localizer) sweepLeak() []candidate {
	_, buf := l.sweep(nil)
	return buf // want `returns a view into //moloc:reuse scratch`
}

// Cross-package: lib.Source.Candidates is //moloc:reuse-annotated, and
// the engine's index carries that fact across the import edge.
func drain(s *lib.Source) []lib.Item {
	c := s.Candidates()
	return c // want `returns a view into //moloc:reuse scratch`
}

func drainCopy(s *lib.Source) []lib.Item {
	return append([]lib.Item(nil), s.Candidates()...)
}
