// Fixture dependency: a candidate source with reused scratch, exposed
// through a //moloc:reuse-annotated accessor. Importers must treat its
// result as borrowed.
package lib

type Item struct {
	Loc  int
	Prob float64
}

type Source struct {
	//moloc:reuse
	buf []Item
}

// Candidates returns the current set as a view into reused scratch.
//
//moloc:reuse
func (s *Source) Candidates() []Item {
	return s.buf
}

// Fill rewrites the scratch in place.
func (s *Source) Fill(n int) {
	s.buf = s.buf[:0]
	for i := 0; i < n; i++ {
		s.buf = append(s.buf, Item{Loc: i})
	}
}
