// Fixture stream-frame writer: the //moloc:ack directive marks
// WriteAck as the primitive that releases a client-visible success, so
// the engine's SendsAck fact reaches any wrapper above it — the stream
// plane's analogue of the 2xx status constant.
package wire

type Writer struct {
	acked uint64
}

//moloc:ack
func (wr *Writer) WriteAck(seq uint64, window uint32) {
	wr.acked = seq
}
