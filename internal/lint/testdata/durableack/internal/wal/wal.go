// Fixture write-ahead log: the engine recognizes (*Log).Append in any
// package under internal/wal as the durability anchor, so the fixture
// models the real one's shape.
package wal

type Log struct {
	seq uint64
}

func (l *Log) Append(p []byte) (uint64, error) {
	l.seq++
	return l.seq, nil
}

// AppendNoSync is the group-commit half of the real log's API: append
// under the lock, leave the fsync to the committer. The engine treats
// it as a WAL append anchor just like Append.
func (l *Log) AppendNoSync(p []byte) (uint64, error) {
	l.seq++
	return l.seq, nil
}
