// Package checkpoint exercises the durableack analyzer's second rule:
// in packages under internal/wal and internal/checkpoint, Rename — the
// atomic publish of a data file — must be preceded by a Sync in the
// same function. Rename-before-fsync can publish a file whose contents
// are still in the page cache.
package checkpoint

import "os"

// The crash-safe ordering: write, fsync, then publish.
func saveGood(f *os.File, tmp, final string) error {
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, final)
}

// A Sync behind an error guard still counts: the lexical approximation
// accepts any earlier Sync in the body (this is the real
// checkpoint.Save shape).
func saveGuarded(f *os.File, tmp, final string) error {
	var werr error
	if werr == nil {
		werr = f.Sync()
	}
	if werr != nil {
		return werr
	}
	return os.Rename(tmp, final)
}

// No Sync at all.
func saveUnsynced(tmp, final string) error {
	return os.Rename(tmp, final) // want `Rename publishes a data file with no preceding Sync`
}

// Sync after the rename is too late: the publish already happened.
func saveSyncLate(f *os.File, tmp, final string) error {
	if err := os.Rename(tmp, final); err != nil { // want `Rename publishes a data file with no preceding Sync`
		return err
	}
	return f.Sync()
}

// A Sync inside a deferred closure guards nothing at rename time.
func saveDeferredSync(f *os.File, tmp, final string) error {
	defer func() {
		_ = f.Sync()
	}()
	return os.Rename(tmp, final) // want `Rename publishes a data file with no preceding Sync`
}

// The rule also sees Rename through a filesystem seam (the fault.FS
// shape): callee name, not package, is what identifies the publish.
type fsys interface {
	Rename(oldpath, newpath string) error
}

func saveViaSeam(fs fsys, f *os.File, tmp, final string) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return fs.Rename(tmp, final)
}

func saveViaSeamUnsynced(fs fsys, tmp, final string) error {
	return fs.Rename(tmp, final) // want `Rename publishes a data file with no preceding Sync`
}
