// Package server exercises the durableack analyzer's first rule: a
// function annotated //moloc:durable may only write a 2xx status after
// a call that can reach a WAL append. The guard is the engine's
// transitive AppendsWAL fact, so a wrapper between the handler and
// (*wal.Log).Append still counts.
package server

import (
	"internal/wal"
	"internal/wire"
)

type writer interface {
	WriteHeader(status int)
}

type resp struct {
	Queued int
}

func writeJSON(w writer, status int, v interface{}) {
	w.WriteHeader(status)
}

type store struct {
	log *wal.Log
}

// enqueue reaches the WAL through one level of indirection.
func (s *store) enqueue(p []byte) error {
	_, err := s.log.Append(p)
	return err
}

// The protocol: durable first, then the 202.
//
//moloc:durable
func (s *store) handleGood(w writer, p []byte) {
	if err := s.enqueue(p); err != nil {
		w.WriteHeader(503)
		return
	}
	writeJSON(w, 202, resp{Queued: 1})
}

// Direct WriteHeader after the append is equally fine.
//
//moloc:durable
func (s *store) handleDirect(w writer, p []byte) {
	if err := s.enqueue(p); err != nil {
		return
	}
	w.WriteHeader(202)
}

// Ack before the append: the client can be told "accepted" and the
// batch still die with the process.
//
//moloc:durable
func (s *store) handleAckFirst(w writer, p []byte) {
	writeJSON(w, 202, resp{Queued: 1}) // want `writes a 2xx status in a //moloc:durable handler with no preceding WAL append`
	if err := s.enqueue(p); err != nil {
		return
	}
}

// No append anywhere.
//
//moloc:durable
func (s *store) handleNoAppend(w writer, p []byte) {
	w.WriteHeader(200) // want `writes a 2xx status in a //moloc:durable handler with no preceding WAL append`
}

// Error statuses carry no durability promise.
//
//moloc:durable
func (s *store) handleReject(w writer) {
	w.WriteHeader(429)
}

// Unannotated handlers are out of scope: not every endpoint is an
// ingest path.
func (s *store) handleStatus(w writer) {
	writeJSON(w, 200, resp{})
}

// --- Streaming plane: the ack is a frame, not a status code. ---

// enqueueStream reaches the WAL through the group-commit append.
func (s *store) enqueueStream(p []byte) error {
	_, err := s.log.AppendNoSync(p)
	return err
}

// commitAcks reaches //moloc:ack through one level of indirection, so
// a call to it inherits SendsAck transitively.
func commitAcks(wr *wire.Writer, seq uint64) {
	wr.WriteAck(seq, 1)
}

// The protocol again: append first, ack the frame after.
//
//moloc:durable
func (s *store) serveGood(wr *wire.Writer, p []byte, seq uint64) {
	if err := s.enqueueStream(p); err != nil {
		return
	}
	commitAcks(wr, seq)
}

// Ack frame before the append: the stream-side twin of handleAckFirst.
//
//moloc:durable
func (s *store) serveAckFirst(wr *wire.Writer, p []byte, seq uint64) {
	commitAcks(wr, seq) // want `releases a stream ack in a //moloc:durable handler with no preceding WAL append`
	if err := s.enqueueStream(p); err != nil {
		return
	}
}

// Direct WriteAck with no append anywhere.
//
//moloc:durable
func (s *store) serveNoAppend(wr *wire.Writer, seq uint64) {
	wr.WriteAck(seq, 1) // want `releases a stream ack in a //moloc:durable handler with no preceding WAL append`
}

// Unannotated stream functions are out of scope — the hello ack
// promises nothing about data durability.
func serveHello(wr *wire.Writer) {
	wr.WriteAck(0, 1)
}
