// Test files are exempt: tests spawn short-lived goroutines the test
// binary's exit reaps.
package app

func spawnInTest() {
	go work()
}
