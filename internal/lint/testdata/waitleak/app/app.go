// Package app exercises the waitleak analyzer: every go statement in
// non-test code must be joinable (WaitGroup Add before, Done inside),
// stoppable (the body blocks on a channel someone can fire), or a
// single completion-send.
package app

import "sync"

func work() {}

type worker struct {
	wg   sync.WaitGroup
	done chan struct{}
	q    chan int
}

// Joinable: Add precedes the spawn, the body defers Done.
func (w *worker) spawnJoined() {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		work()
	}()
}

// Joinable across functions: loop carries the Done, the engine's
// RetiresWG fact carries it back to the spawn site.
func (w *worker) start() {
	w.wg.Add(1)
	go w.loop()
}

func (w *worker) loop() {
	defer w.wg.Done()
	for range w.q {
		work()
	}
}

// The sync.Once-guarded Start shape: the Add and the spawns live in a
// closure, and the preceding-Add check scopes to that closure's body.
func (w *worker) startOnce(once *sync.Once) {
	once.Do(func() {
		w.wg.Add(1)
		go w.loop()
	})
}

// Stoppable: the body selects on a stop channel.
func (w *worker) spawnStoppable() {
	go func() {
		for {
			select {
			case <-w.done:
				return
			case v := <-w.q:
				_ = v
			}
		}
	}()
}

// Stoppable through a callee: wait blocks on the stop channel and the
// Blocking fact propagates to the spawned literal.
func (w *worker) await() {
	<-w.done
}

func (w *worker) spawnWaiter() {
	go func() {
		w.await()
		work()
	}()
}

// Completion-send: adapting a blocking call to select.
func run() error { return nil }

func spawnCompletion(errc chan error) {
	go func() { errc <- run() }()
}

// Flagged: Done inside but no Add before the spawn — Wait can return
// before the goroutine is counted.
func (w *worker) spawnNoAdd() {
	go func() { // want `goroutine has no WaitGroup Add/Done pair, stop-channel, or completion send`
		defer w.wg.Done()
		work()
	}()
}

// Flagged: Add before, but nothing ever calls Done — Wait hangs.
func (w *worker) spawnNoDone() {
	w.wg.Add(1)
	go func() { // want `goroutine has no WaitGroup Add/Done pair, stop-channel, or completion send`
		work()
	}()
}

// Flagged: bare fire-and-forget on a named function.
func spawnForgotten() {
	go work() // want `goroutine has no WaitGroup Add/Done pair, stop-channel, or completion send`
}

// A deliberate fire-and-forget documents itself.
func spawnDocumented() {
	//lint:ignore waitleak demo goroutine lives for the process
	go work()
}
