// Package app exercises the snapshotguard analyzer: fields annotated
// //moloc:snapshot may only be touched through their atomic
// Load/Store/Swap/CompareAndSwap methods, taken by address for wiring,
// or — for pointer-typed consumer fields — nil-checked and rewired as a
// whole.
package app

import "sync/atomic"

type view struct{ gen int }

// server is the publisher: it owns the atomic cell by value.
type server struct {
	//moloc:snapshot
	snap atomic.Pointer[view]

	//moloc:snapshot
	plain *view // want `annotated //moloc:snapshot but is not an atomic.Pointer`
}

// client is a consumer: it follows the publisher's cell by pointer.
type client struct {
	//moloc:snapshot
	snap *atomic.Pointer[view]
	cur  *view
}

// Allowed shapes.

func (s *server) publish(v *view) { s.snap.Store(v) }

func (s *server) current() *view { return s.snap.Load() }

func (s *server) replace(v *view) *view { return s.snap.Swap(v) }

func (s *server) install(v *view) bool { return s.snap.CompareAndSwap(nil, v) }

func (s *server) wire(c *client) { c.snap = &s.snap }

func (c *client) acquire() {
	if c.snap == nil {
		return
	}
	c.cur = c.snap.Load()
}

// Flagged shapes.

func (s *server) copyValue() {
	snap := s.snap // want `snapshot field snap must be accessed through its atomic Load/Store methods`
	_ = snap
}

func (s *server) reset() {
	s.snap = atomic.Pointer[view]{} // want `snapshot field snap must be accessed through its atomic Load/Store methods`
}

func (s *server) methodValue() func() *view {
	return s.snap.Load // want `snapshot field snap must be accessed through its atomic Load/Store methods`
}

func (c *client) deref() *view {
	inner := *c.snap // want `snapshot field snap must be accessed through its atomic Load/Store methods`
	return inner.Load()
}

func leak(p *atomic.Pointer[view]) { _ = p }

func (c *client) pass() {
	leak(c.snap) // want `snapshot field snap must be accessed through its atomic Load/Store methods`
}

func (c *client) suppressed() *atomic.Pointer[view] {
	//lint:ignore snapshotguard handing the cell to a trusted helper
	return c.snap
}
