package app

import "sync/atomic"

// Test code is exempt: direct snapshot-field access here must not be
// flagged (tests deliberately poke single-threaded state).

func directAccessInTests(s *server, c *client) {
	cell := c.snap
	_ = cell
	s.snap = atomic.Pointer[view]{}
}
