// Fixture: _test.go files are exempt from lockguard — tests own their
// instances single-threaded. No finding may be reported here.
package app

func (c *Counter) testOnlyPeek() int {
	return c.n
}
