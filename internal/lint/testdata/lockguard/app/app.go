// Fixture: true positives and allowed patterns for the lockguard
// analyzer. Fields declared after `mu sync.Mutex` are guarded by it.
package app

import "sync"

type Counter struct {
	name string // above the mutex: immutable config, unguarded

	mu sync.Mutex
	n  int
	m  map[string]int
}

// Allowed: locks before touching guarded state.
func (c *Counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	c.m["total"]++
}

func (c *Counter) Get() int {
	return c.n // want `guarded by c.mu`
}

func (c *Counter) Reset() {
	c.m = nil // want `guarded by c.mu`
	c.n = 0   // want `guarded by c.mu`
}

// Allowed: fields above the mutex are not guarded.
func (c *Counter) Name() string {
	return c.name
}

// Allowed: the Locked suffix documents that the caller holds mu.
func (c *Counter) sizeLocked() int {
	return c.n
}

// Allowed: suppression with a reason.
func (c *Counter) racyEstimate() int {
	//lint:ignore lockguard fixture demonstrates suppression
	return c.n
}

type Gauge struct {
	mu sync.RWMutex
	v  float64
}

// Allowed: read-locks count.
func (g *Gauge) Load() float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.v
}

func (g *Gauge) Peek() float64 {
	return g.v // want `guarded by g.mu`
}

// Allowed: a struct without the mu convention is not checked.
type Plain struct {
	v int
}

func (p *Plain) Get() int { return p.v }
