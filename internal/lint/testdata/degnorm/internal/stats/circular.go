// Fixture: internal/stats owns circular statistics and is exempt from
// degnorm. No finding may be reported here.
package stats

func wrapMean(deg float64) float64 {
	if deg < 0 {
		deg += 360
	}
	return deg
}
