// Fixture: internal/geom owns the angle helpers and is exempt from
// degnorm. No finding may be reported here.
package geom

import "math"

func NormalizeDeg(d float64) float64 {
	d = math.Mod(d, 360)
	if d < 0 {
		d += 360
	}
	return d
}

func MirrorBearing(d float64) float64 {
	return NormalizeDeg(d + 180)
}
