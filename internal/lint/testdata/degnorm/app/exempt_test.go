// Fixture: _test.go files are exempt from degnorm — tests construct
// raw angles on purpose. No finding may be reported here.
package app

import "math"

func testOnlyWrap(d float64) float64 {
	d = math.Mod(d, 360)
	return d + 180
}
