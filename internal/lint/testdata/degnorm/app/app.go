// Fixture: true positives and allowed patterns for the degnorm
// analyzer in a non-exempt package.
package app

import "math"

func wrap(d float64) float64 {
	return math.Mod(d, 360) // want `use geom.NormalizeDeg`
}

func mirror(d float64) float64 {
	return d + 180 // want `raw ±180/±360 angle arithmetic`
}

func unwrap(d float64) float64 {
	if d < 0 {
		d += 360 // want `raw ±180/±360 angle arithmetic`
	}
	return d
}

func halfDown(d float64) float64 {
	return d - 180 // want `raw ±180/±360 angle arithmetic`
}

func diff(heading, mapBearing float64) float64 {
	return heading - mapBearing // want `direct bearing subtraction`
}

func diffSelector(s struct{ Compass float64 }, refHeading float64) float64 {
	return s.Compass - refHeading // want `direct bearing subtraction`
}

// Allowed: multiplication and division by 360 are unit conversions,
// not wrap arithmetic.
func binCenter(bin, nbins int) float64 {
	return 360 * float64(bin) / float64(nbins)
}

// Allowed: integer arithmetic is not angle math in this codebase.
func offset(i int) int {
	return i + 180
}

// Allowed: subtracting a non-bearing float.
func residual(x, y float64) float64 {
	return x - y
}

func suppressed(d float64) float64 {
	//lint:ignore degnorm fixture demonstrates suppression
	return d + 360
}
