package lint

// StaleIgnore keeps the suppression inventory honest. A //lint:ignore
// comment is a standing claim — "a finding fires here and we accept
// it" — and the claim rots: the flagged code gets refactored away, an
// analyzer gets smarter, and the comment stays behind, silently ready
// to mask the next real finding on that line. This analyzer reports
// every suppression that matched nothing in the current run.
//
// Unlike the other analyzers it cannot run per-package in isolation —
// staleness is "no analyzer in the suite matched", so it executes as a
// sweep inside RunAll after every other analyzer has marked the
// suppressions it consumed. A suppression is a stale candidate only
// when its target analyzer actually ran (under -only a comment for an
// unselected analyzer proves nothing) and it sits in non-test code
// (test files are exempt from every analyzer, so their suppressions
// never match by construction).
//
// The sweep is phased to break the self-reference knot: first
// non-staleignore suppressions are judged, and a stale report may
// itself be silenced with //lint:ignore staleignore <why> — which marks
// that comment used; then staleignore-targeted suppressions that are
// still unused are reported unconditionally (a suppression of a
// suppression of nothing has no defensible reading).

// StaleIgnore reports //lint:ignore comments that suppress nothing. Its
// Run is a no-op: the real logic is the staleSweep RunAll performs
// after the rest of the suite.
var StaleIgnore = &Analyzer{
	Name: "staleignore",
	Doc:  "reports //lint:ignore comments that no longer suppress any finding",
	Run:  func(*Pass) {},
}

// staleSweep reports the unused suppressions of one package after the
// whole suite has run over it.
func staleSweep(pkg *Package, sup *suppressions, analyzers []*Analyzer) []Diagnostic {
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	var diags []Diagnostic
	report := func(s *suppression) {
		diags = append(diags, Diagnostic{
			Pos:      s.pos,
			Analyzer: StaleIgnore.Name,
			Message:  "//lint:ignore " + s.analyzer + " suppresses nothing; remove the stale comment",
			Pkg:      pkg.Path,
		})
	}
	for _, byFile := range sup.byFile {
		for _, s := range byFile {
			if s.used || s.inTest || s.analyzer == StaleIgnore.Name {
				continue
			}
			if s.analyzer != "all" && !ran[s.analyzer] {
				continue
			}
			// The stale report may itself be suppressed; match marks the
			// covering staleignore comment used.
			if sup.match(StaleIgnore.Name, s.pos) {
				continue
			}
			report(s)
		}
	}
	for _, byFile := range sup.byFile {
		for _, s := range byFile {
			if !s.used && !s.inTest && s.analyzer == StaleIgnore.Name {
				report(s)
			}
		}
	}
	return diags
}
