package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
)

// DegNorm flags raw compass-angle arithmetic outside internal/geom.
//
// MoLoc measures bearings in degrees clockwise from north, normalized
// to [0, 360). The paper's RLM reassembling step d' = (d + 180°) mod
// 360° (Sec. IV-B2) is wrong when written with math.Mod, which returns
// values in (-360, 360) for negative inputs, and signed heading
// differences computed by plain subtraction break near the 0°/360°
// seam. All wrap/diff arithmetic must go through geom.NormalizeDeg,
// geom.AngleDiff, and geom.MirrorBearing.
//
// Flagged patterns (outside internal/geom, internal/stats, and test
// files — geom owns the helpers, stats owns circular statistics):
//
//   - math.Mod(x, 360): use geom.NormalizeDeg
//   - float expressions adding or subtracting the literals 180 or 360:
//     use geom.NormalizeDeg / geom.AngleDiff / geom.MirrorBearing
//   - subtracting two bearing-valued expressions (identifier names
//     matching bearing/heading/compass/azimuth): use geom.AngleDiff
var DegNorm = &Analyzer{
	Name: "degnorm",
	Doc:  "flags raw ±180/±360 angle arithmetic outside internal/geom; use the geom helpers",
	Run:  runDegNorm,
}

// bearingNameRe matches identifiers that carry compass bearings.
var bearingNameRe = regexp.MustCompile(`(?i)(bearing|heading|compass|azimuth)`)

func runDegNorm(pass *Pass) {
	if pkgHasSegments(pass.Path, "internal/geom") || pkgHasSegments(pass.Path, "internal/stats") {
		return
	}
	for _, f := range pass.Files {
		if pass.isTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkMathMod(pass, n)
			case *ast.BinaryExpr:
				checkAngleBinary(pass, n)
			case *ast.AssignStmt:
				checkAngleAssign(pass, n)
			}
			return true
		})
	}
}

// checkMathMod flags math.Mod(x, 360) and math.Mod(x, 180).
func checkMathMod(pass *Pass, call *ast.CallExpr) {
	fn := funcObj(pass.Info, call)
	if fn == nil || fn.FullName() != "math.Mod" || len(call.Args) != 2 {
		return
	}
	if isAngleConst(pass.Info, call.Args[1]) {
		pass.Reportf(call.Pos(),
			"math.Mod on a heading does not normalize negative angles; use geom.NormalizeDeg (or geom.AngleDiff for differences)")
	}
}

// checkAngleBinary flags x+180, x-180, x+360, x-360 on floats, and
// bearing - bearing.
func checkAngleBinary(pass *Pass, b *ast.BinaryExpr) {
	if b.Op != token.ADD && b.Op != token.SUB {
		return
	}
	if !isFloatExpr(pass.Info, b) {
		return
	}
	if isAngleConst(pass.Info, b.X) || isAngleConst(pass.Info, b.Y) {
		pass.Reportf(b.Pos(),
			"raw ±180/±360 angle arithmetic; use geom.NormalizeDeg, geom.AngleDiff, or geom.MirrorBearing")
		return
	}
	if b.Op == token.SUB && isBearingExpr(b.X) && isBearingExpr(b.Y) {
		pass.Reportf(b.Pos(),
			"direct bearing subtraction breaks at the 0°/360° seam; use geom.AngleDiff")
	}
}

// checkAngleAssign flags x += 180 and x -= 360 style wrap-arounds.
func checkAngleAssign(pass *Pass, a *ast.AssignStmt) {
	if a.Tok != token.ADD_ASSIGN && a.Tok != token.SUB_ASSIGN {
		return
	}
	if len(a.Lhs) != 1 || len(a.Rhs) != 1 {
		return
	}
	if isFloatExpr(pass.Info, a.Lhs[0]) && isAngleConst(pass.Info, a.Rhs[0]) {
		pass.Reportf(a.Pos(),
			"raw ±180/±360 angle arithmetic; use geom.NormalizeDeg, geom.AngleDiff, or geom.MirrorBearing")
	}
}

// isAngleConst reports whether e is a constant expression equal to 180
// or 360 (the half-turn and full-turn literals in degrees).
func isAngleConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Float && tv.Value.Kind() != constant.Int {
		return false
	}
	v, ok := constant.Float64Val(constant.ToFloat(tv.Value))
	if !ok {
		return false
	}
	return v == 180 || v == 360
}

// isFloatExpr reports whether e has a floating-point type; bearings in
// this codebase are always float64.
func isFloatExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// isBearingExpr reports whether e names a bearing: an identifier,
// field selector, or call whose final name mentions
// bearing/heading/compass/azimuth.
func isBearingExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return bearingNameRe.MatchString(e.Name)
	case *ast.SelectorExpr:
		return bearingNameRe.MatchString(e.Sel.Name)
	case *ast.CallExpr:
		return isBearingExpr(e.Fun)
	}
	return false
}
