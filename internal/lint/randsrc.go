package lint

import (
	"go/ast"
	"strconv"
)

// RandSrc flags randomness that bypasses internal/stats.
//
// Every stochastic component of the reproduction draws from an
// explicitly seeded stats.RNG so that the tables and figures in
// EXPERIMENTS.md are bit-identical run-to-run, and so that forked
// streams (stats.RNG.Fork) keep components independent. Importing
// math/rand directly reintroduces ambient, shared-state randomness;
// seeding anything from the wall clock (time.Now().UnixNano()) makes
// runs unreproducible.
//
// Flagged patterns (outside internal/stats and test files):
//
//   - importing math/rand or math/rand/v2: use stats.NewRNG / Fork
//   - time.Now().UnixNano(): a wall-clock seed; pass an explicit seed
//     (crypto/rand and timing measurements via time.Since are fine)
var RandSrc = &Analyzer{
	Name: "randsrc",
	Doc:  "flags math/rand and wall-clock seeding outside internal/stats; use stats.RNG",
	Run:  runRandSrc,
}

func runRandSrc(pass *Pass) {
	if pkgHasSegments(pass.Path, "internal/stats") {
		return
	}
	for _, f := range pass.Files {
		if pass.isTestFile(f) {
			continue
		}
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(spec.Pos(),
					"import of %s outside internal/stats breaks experiment reproducibility; draw from a seeded stats.RNG", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "UnixNano" {
				return true
			}
			inner, ok := ast.Unparen(sel.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := funcObj(pass.Info, inner); fn != nil && fn.FullName() == "time.Now" {
				pass.Reportf(call.Pos(),
					"time.Now().UnixNano() is a wall-clock seed that breaks run-to-run determinism; use an explicit seed via stats.NewRNG")
			}
			return true
		})
	}
}
