// Package lint implements moloclint, a small static-analysis suite that
// enforces the MoLoc repository's numeric and concurrency invariants —
// conventions the Go compiler cannot check but that the reproduction's
// correctness depends on:
//
//   - degnorm: compass-bearing arithmetic must go through the
//     internal/geom helpers (NormalizeDeg, AngleDiff, MirrorBearing).
//     The paper's RLM reassembling step d' = (d + 180°) mod 360° is
//     wrong when written with raw math.Mod, which returns negative
//     values for negative inputs.
//   - randsrc: all pseudo-randomness must flow through internal/stats
//     so that EXPERIMENTS.md stays reproducible run-to-run. Importing
//     math/rand directly or seeding from the wall clock breaks that.
//   - lockguard: structs that follow the `mu sync.Mutex` + guarded
//     fields layout (fields declared after the mutex are protected by
//     it, as in internal/server) must not have methods that touch
//     guarded fields without taking the lock.
//   - errdrop: error return values must not be silently discarded in
//     non-test code.
//   - hotpath: functions annotated //moloc:hotpath (the per-fix serving
//     path) may not index maps or append onto non-preallocated buffers,
//     which would break the pinned zero-allocation contract.
//   - snapshotguard: fields annotated //moloc:snapshot (the RCU-style
//     published motion-index views) may only be accessed through their
//     atomic.Pointer Load/Store methods; direct dereferences and value
//     copies bypass the memory-ordering guarantees of the snapshot
//     swap.
//
// The suite is built directly on the standard library's go/parser and
// go/types (no golang.org/x/tools dependency): Load type-checks every
// package in the module, and each Analyzer inspects the typed ASTs and
// reports Diagnostics. Findings can be suppressed with a
//
//	//lint:ignore <analyzer> <reason>
//
// comment on the flagged line or on the line immediately above it.
// The cmd/moloclint driver runs the suite over the repository and
// exits non-zero on any unsuppressed finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one invariant checker. Run inspects a type-checked
// package and reports findings through the Pass.
type Analyzer struct {
	// Name is the short identifier used in diagnostics and in
	// //lint:ignore comments.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Run executes the analyzer over one package.
	Run func(*Pass)
}

// Analyzers returns the full moloclint suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{DegNorm, RandSrc, LockGuard, ErrDrop, Hotpath, SnapshotGuard}
}

// AnalyzerByName returns the analyzer with the given name, or nil.
func AnalyzerByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one type-checked package through one analyzer and
// collects its diagnostics. Suppressed findings (//lint:ignore) are
// dropped at report time.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Path is the package import path (module-relative for fixture
	// packages). Exemptions such as internal/geom match on it.
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	diags    []Diagnostic
	suppress map[string][]suppression // file -> line-indexed ignores
}

// suppression is one parsed //lint:ignore comment.
type suppression struct {
	line     int
	analyzer string // name or "all"
}

var ignoreRe = regexp.MustCompile(`^//\s*lint:ignore\s+(\S+)`)

// buildSuppressions indexes every //lint:ignore comment in the pass's
// files by file and line so Reportf can honor them.
func (p *Pass) buildSuppressions() {
	p.suppress = make(map[string][]suppression)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				p.suppress[pos.Filename] = append(p.suppress[pos.Filename],
					suppression{line: pos.Line, analyzer: m[1]})
			}
		}
	}
}

// suppressed reports whether a finding by the pass's analyzer at pos is
// covered by a //lint:ignore comment on the same line or the line
// directly above.
func (p *Pass) suppressed(pos token.Position) bool {
	for _, s := range p.suppress[pos.Filename] {
		if s.line != pos.Line && s.line != pos.Line-1 {
			continue
		}
		if s.analyzer == "all" || s.analyzer == p.Analyzer.Name {
			return true
		}
	}
	return false
}

// Reportf records a finding at pos unless a //lint:ignore comment
// suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	if p.suppressed(position) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// isTestFile reports whether the file containing pos is a _test.go
// file. Test code is exempt from every analyzer: tests deliberately
// construct raw angles, fixed-seed randomness, and single-threaded
// state to probe edge cases.
func (p *Pass) isTestFile(f *ast.File) bool {
	name := p.Fset.Position(f.Pos()).Filename
	return strings.HasSuffix(name, "_test.go")
}

// pkgHasSegments reports whether the slash-separated package path
// contains the given consecutive segments (e.g. "internal/geom"
// matches both "internal/geom" and "moloc/internal/geom").
func pkgHasSegments(path, want string) bool {
	segs := strings.Split(path, "/")
	wsegs := strings.Split(want, "/")
	for i := 0; i+len(wsegs) <= len(segs); i++ {
		ok := true
		for j, w := range wsegs {
			if segs[i+j] != w {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// Run executes the analyzer over one loaded package and returns its
// unsuppressed diagnostics sorted by position.
func Run(a *Analyzer, pkg *Package) []Diagnostic {
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Path:     pkg.Path,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
	}
	pass.buildSuppressions()
	a.Run(pass)
	sortDiagnostics(pass.diags)
	return pass.diags
}

// RunAll executes every analyzer in the suite over every package and
// returns the combined, position-sorted findings.
func RunAll(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var all []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			all = append(all, Run(a, pkg)...)
		}
	}
	sortDiagnostics(all)
	return all
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// funcObj resolves a call expression's callee to its *types.Func, or
// nil when the callee is not a declared function or method (e.g. a
// conversion or a function-typed variable).
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
