// Package lint implements moloclint, a small static-analysis suite that
// enforces the MoLoc repository's numeric and concurrency invariants —
// conventions the Go compiler cannot check but that the reproduction's
// correctness depends on:
//
//   - degnorm: compass-bearing arithmetic must go through the
//     internal/geom helpers (NormalizeDeg, AngleDiff, MirrorBearing).
//     The paper's RLM reassembling step d' = (d + 180°) mod 360° is
//     wrong when written with raw math.Mod, which returns negative
//     values for negative inputs.
//   - randsrc: all pseudo-randomness must flow through internal/stats
//     so that EXPERIMENTS.md stays reproducible run-to-run. Importing
//     math/rand directly or seeding from the wall clock breaks that.
//   - lockguard: structs that follow the `mu sync.Mutex` + guarded
//     fields layout (fields declared after the mutex are protected by
//     it, as in internal/server) must not have methods that touch
//     guarded fields without taking the lock.
//   - errdrop: error return values must not be silently discarded in
//     non-test code.
//   - hotpath: functions annotated //moloc:hotpath (the per-fix serving
//     path) may not index maps or append onto non-preallocated buffers,
//     which would break the pinned zero-allocation contract.
//   - snapshotguard: fields annotated //moloc:snapshot (the RCU-style
//     published motion-index views) may only be accessed through their
//     atomic.Pointer Load/Store methods; direct dereferences and value
//     copies bypass the memory-ordering guarantees of the snapshot
//     swap.
//
// The suite is built directly on the standard library's go/parser and
// go/types (no golang.org/x/tools dependency): Load type-checks every
// package in the module, and each Analyzer inspects the typed ASTs and
// reports Diagnostics. Findings can be suppressed with a
//
//	//lint:ignore <analyzer> <reason>
//
// comment on the flagged line or on the line immediately above it.
// The cmd/moloclint driver runs the suite over the repository and
// exits non-zero on any unsuppressed finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one invariant checker. Run inspects a type-checked
// package and reports findings through the Pass.
type Analyzer struct {
	// Name is the short identifier used in diagnostics and in
	// //lint:ignore comments.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Run executes the analyzer over one package.
	Run func(*Pass)
}

// Analyzers returns the full moloclint suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DegNorm, RandSrc, LockGuard, ErrDrop, Hotpath, SnapshotGuard,
		AtomicMix, BufAlias, DurableAck, WaitLeak, StaleIgnore,
	}
}

// AnalyzerByName returns the analyzer with the given name, or nil.
func AnalyzerByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Pkg is the import path of the package whose analysis produced the
	// finding. Because analyzers only consult facts from the analyzed
	// package and its transitive dependencies, a package's findings are
	// a pure function of its own sources plus its dependency closure —
	// the invariant the driver's incremental cache keys on.
	Pkg string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one type-checked package through one analyzer and
// collects its diagnostics. Suppressed findings (//lint:ignore) are
// dropped at report time.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Path is the package import path (module-relative for fixture
	// packages). Exemptions such as internal/geom match on it.
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Index is the module-wide cross-function fact base (engine.go).
	// Analyzers may query any function's summary but must only report
	// positions inside this pass's package, and must restrict
	// cross-package fact lookups to Index.visible paths — both are what
	// keep the per-package findings cache sound.
	Index *Index

	diags []Diagnostic
	sup   *suppressions
}

// suppression is one parsed //lint:ignore comment.
type suppression struct {
	pos      token.Position // of the comment itself
	analyzer string         // name or "all"
	inTest   bool
	used     bool // matched at least one finding this run
}

// suppressions is the per-package //lint:ignore store. It is shared by
// every analyzer run over the package so the stale sweep can see which
// comments earned their keep across the whole suite.
type suppressions struct {
	byFile map[string][]*suppression
}

var ignoreRe = regexp.MustCompile(`^//\s*lint:ignore\s+(\S+)`)

// buildSuppressions indexes every //lint:ignore comment in the
// package's files by file and line.
func buildSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	sup := &suppressions{byFile: make(map[string][]*suppression)}
	for _, f := range files {
		inTest := strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				sup.byFile[pos.Filename] = append(sup.byFile[pos.Filename],
					&suppression{pos: pos, analyzer: m[1], inTest: inTest})
			}
		}
	}
	return sup
}

// match reports whether a finding by analyzer at pos is covered by a
// //lint:ignore comment on the same line or the line directly above,
// marking any covering comment as used.
func (sup *suppressions) match(analyzer string, pos token.Position) bool {
	hit := false
	for _, s := range sup.byFile[pos.Filename] {
		if s.pos.Line != pos.Line && s.pos.Line != pos.Line-1 {
			continue
		}
		if s.analyzer == "all" || s.analyzer == analyzer {
			s.used = true
			hit = true
		}
	}
	return hit
}

// suppressed reports whether a finding by the pass's analyzer at pos is
// covered by a //lint:ignore comment.
func (p *Pass) suppressed(pos token.Position) bool {
	return p.sup.match(p.Analyzer.Name, pos)
}

// Reportf records a finding at pos unless a //lint:ignore comment
// suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.reportAt(p.Fset.Position(pos), format, args...)
}

// reportAt is Reportf for an already-resolved position (the engine's
// field summaries store positions, not token.Pos).
func (p *Pass) reportAt(position token.Position, format string, args ...interface{}) {
	if p.suppressed(position) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Pkg:      p.Path,
	})
}

// isTestFile reports whether the file containing pos is a _test.go
// file. Test code is exempt from every analyzer: tests deliberately
// construct raw angles, fixed-seed randomness, and single-threaded
// state to probe edge cases.
func (p *Pass) isTestFile(f *ast.File) bool {
	name := p.Fset.Position(f.Pos()).Filename
	return strings.HasSuffix(name, "_test.go")
}

// pkgHasSegments reports whether the slash-separated package path
// contains the given consecutive segments (e.g. "internal/geom"
// matches both "internal/geom" and "moloc/internal/geom").
func pkgHasSegments(path, want string) bool {
	segs := strings.Split(path, "/")
	wsegs := strings.Split(want, "/")
	for i := 0; i+len(wsegs) <= len(segs); i++ {
		ok := true
		for j, w := range wsegs {
			if segs[i+j] != w {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// Run executes the analyzer over one loaded package and returns its
// unsuppressed diagnostics sorted by position. The cross-function index
// covers only this package, so module-wide facts (a WAL append behind a
// helper in another package) are invisible — drivers use RunAll.
func Run(a *Analyzer, pkg *Package) []Diagnostic {
	ix := BuildIndex([]*Package{pkg})
	sup := buildSuppressions(pkg.Fset, pkg.Files)
	diags := runOne(a, pkg, ix, sup)
	sortDiagnostics(diags)
	return diags
}

// runOne executes one analyzer over one package against a shared index
// and suppression store.
func runOne(a *Analyzer, pkg *Package, ix *Index, sup *suppressions) []Diagnostic {
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Path:     pkg.Path,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		Index:    ix,
		sup:      sup,
	}
	a.Run(pass)
	return pass.diags
}

// RunAll executes every given analyzer over every package — building
// the cross-function index once over the whole set — and returns the
// combined, position-sorted findings. When the suite includes
// staleignore, a final sweep reports //lint:ignore comments that
// suppressed nothing.
func RunAll(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	ix := BuildIndex(pkgs)
	var all []Diagnostic
	stores := make(map[*Package]*suppressions, len(pkgs))
	for _, pkg := range pkgs {
		sup := buildSuppressions(pkg.Fset, pkg.Files)
		stores[pkg] = sup
		for _, a := range analyzers {
			if a == StaleIgnore {
				continue // runs as the sweep below, after every analyzer
			}
			all = append(all, runOne(a, pkg, ix, sup)...)
		}
	}
	for _, a := range analyzers {
		if a == StaleIgnore {
			for _, pkg := range pkgs {
				all = append(all, staleSweep(pkg, stores[pkg], analyzers)...)
			}
			break
		}
	}
	sortDiagnostics(all)
	return all
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// funcObj resolves a call expression's callee to its *types.Func, or
// nil when the callee is not a declared function or method (e.g. a
// conversion or a function-typed variable).
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
