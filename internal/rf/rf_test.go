package rf

import (
	"math"
	"testing"
	"testing/quick"

	"moloc/internal/floorplan"
	"moloc/internal/geom"
	"moloc/internal/stats"
)

func newOfficeModel(t *testing.T, params Params, seed int64) *Model {
	t.Helper()
	m, err := NewModel(floorplan.OfficeHall(), params, seed)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	return m
}

// quiet returns parameters with every stochastic term disabled, so only
// deterministic path loss remains.
func quiet() Params {
	p := NewParams()
	p.ShadowSigma = 0
	p.TemporalSigma = 0
	p.BurstProb = 0
	return p
}

func TestParamsValidate(t *testing.T) {
	if err := NewParams().Validate(); err != nil {
		t.Errorf("defaults should validate: %v", err)
	}
	bad := []func(*Params){
		func(p *Params) { p.PathLossExp = 0 },
		func(p *Params) { p.ShadowGridRes = 0 },
		func(p *Params) { p.ShadowSigma = -1 },
		func(p *Params) { p.TemporalSigma = -1 },
		func(p *Params) { p.BurstProb = 1.5 },
	}
	for i, mutate := range bad {
		p := NewParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestNewModelRejectsBadParams(t *testing.T) {
	p := NewParams()
	p.PathLossExp = -1
	if _, err := NewModel(floorplan.OfficeHall(), p, 1); err == nil {
		t.Error("expected error for invalid params")
	}
}

func TestMeanRSSDecaysWithDistance(t *testing.T) {
	m := newOfficeModel(t, quiet(), 1)
	ap := 0 // ap1 at (4, 15)
	near := m.MeanRSS(ap, geom.Pt(5, 14))
	far := m.MeanRSS(ap, geom.Pt(35, 2))
	if near <= far {
		t.Errorf("RSS should decay with distance: near %v, far %v", near, far)
	}
	// Exact free-space check: doubling distance drops 10*n*log10(2) dB.
	p1 := m.MeanRSS(ap, geom.Pt(5, 11.5)) // 2 m, clear path
	p2 := m.MeanRSS(ap, geom.Pt(5, 9.5))  // 4 m, clear path
	wantDrop := 10 * m.Params().PathLossExp * math.Log10(2)
	if math.Abs((p1-p2)-wantDrop) > 1e-9 {
		t.Errorf("doubling distance dropped %v dB, want %v", p1-p2, wantDrop)
	}
}

func TestMeanRSSMinDistanceClamp(t *testing.T) {
	m := newOfficeModel(t, quiet(), 1)
	at := m.plan.APs[0].Pos
	// Standing exactly at the AP must not produce +Inf.
	v := m.MeanRSS(0, at)
	if math.IsInf(v, 0) || math.IsNaN(v) {
		t.Errorf("RSS at AP position = %v", v)
	}
	if v > m.params.RefPower+10 {
		t.Errorf("RSS at AP = %v suspiciously high", v)
	}
}

func TestWallAttenuation(t *testing.T) {
	// The office partition sits between locations 10 and 17; an AP placed
	// north of the partition should be weaker south of it than the
	// distance alone explains.
	plan := floorplan.OfficeHall()
	params := quiet()
	m, err := NewModel(plan, params, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A probe east of ap6 (9.5, 7.5) whose sight line crosses the
	// (13,8)-(16.5,8) partition, and a clear control at equal distance.
	north := geom.Pt(17, 8.5)
	wallCount := plan.WallsBetween(plan.APs[5].Pos, north)
	if wallCount == 0 {
		t.Skip("geometry changed; pick a different probe point")
	}
	d := plan.APs[5].Pos.Dist(north)
	clear := plan.APs[5].Pos.Add(geom.FromBearing(0, d)) // due north, clear
	if plan.WallsBetween(plan.APs[5].Pos, clear) != 0 {
		t.Fatalf("expected clear path for control point")
	}
	got := m.MeanRSS(5, clear) - m.MeanRSS(5, north)
	want := float64(wallCount) * params.WallAtten
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("wall attenuation = %v, want %v", got, want)
	}
}

func TestMaxWallLossCap(t *testing.T) {
	plan := floorplan.Museum() // many walls between far corners
	params := quiet()
	params.WallAtten = 10
	params.MaxWallLoss = 12
	m, err := NewModel(plan, params, 1)
	if err != nil {
		t.Fatal(err)
	}
	// From ap1 (3,18) to the opposite corner room, several walls
	// intervene; loss must cap at 12 regardless.
	pos := geom.Pt(32, 4)
	walls := plan.WallsBetween(plan.APs[0].Pos, pos)
	if walls < 2 {
		t.Skipf("expected >=2 walls, got %d", walls)
	}
	d := math.Max(plan.APs[0].Pos.Dist(pos), 0.5)
	freeSpace := params.RefPower - 10*params.PathLossExp*math.Log10(d)
	if got := m.MeanRSS(0, pos); math.Abs(got-(freeSpace-12)) > 1e-9 {
		t.Errorf("capped wall loss: got %v, want %v", got, freeSpace-12)
	}
}

func TestSampleDeterminism(t *testing.T) {
	m1 := newOfficeModel(t, NewParams(), 42)
	m2 := newOfficeModel(t, NewParams(), 42)
	r1, r2 := stats.NewRNG(7), stats.NewRNG(7)
	pos := geom.Pt(10, 10)
	for i := 0; i < 20; i++ {
		s1 := m1.Sample(pos, r1)
		s2 := m2.Sample(pos, r2)
		for j := range s1 {
			if s1[j] != s2[j] {
				t.Fatalf("sample %d AP %d: %v != %v", i, j, s1[j], s2[j])
			}
		}
	}
}

func TestSeedChangesShadowField(t *testing.T) {
	m1 := newOfficeModel(t, NewParams(), 1)
	m2 := newOfficeModel(t, NewParams(), 2)
	pos := geom.Pt(20, 8)
	if m1.MeanRSS(0, pos) == m2.MeanRSS(0, pos) {
		t.Error("different seeds should change the shadow field")
	}
}

func TestSampleLength(t *testing.T) {
	m := newOfficeModel(t, NewParams(), 1)
	s := m.Sample(geom.Pt(20, 8), stats.NewRNG(1))
	if len(s) != 6 {
		t.Errorf("sample length = %d, want 6", len(s))
	}
}

func TestSensitivityCutoff(t *testing.T) {
	params := quiet()
	params.Sensitivity = -60 // absurdly insensitive radio
	m, err := NewModel(floorplan.OfficeHall(), params, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := m.Sample(geom.Pt(40, 1), stats.NewRNG(1)) // far corner
	sawMissing := false
	for _, v := range s {
		if v == NotDetected {
			sawMissing = true
		}
		if v != NotDetected && v < params.Sensitivity {
			t.Errorf("sub-sensitivity RSS leaked through: %v", v)
		}
	}
	if !sawMissing {
		t.Error("expected at least one AP below the -60 dBm cutoff")
	}
}

func TestTemporalNoiseStatistics(t *testing.T) {
	params := NewParams()
	params.BurstProb = 0 // isolate the Gaussian term
	m, err := NewModel(floorplan.OfficeHall(), params, 1)
	if err != nil {
		t.Fatal(err)
	}
	pos := geom.Pt(20, 8)
	mean := m.MeanRSS(0, pos)
	rng := stats.NewRNG(5)
	var o stats.Online
	for i := 0; i < 5000; i++ {
		s := m.Sample(pos, rng)
		if s[0] != NotDetected {
			o.Add(s[0] - mean)
		}
	}
	if math.Abs(o.Mean()) > 0.2 {
		t.Errorf("noise mean = %v, want ~0", o.Mean())
	}
	if math.Abs(o.StdDev()-params.TemporalSigma) > 0.2 {
		t.Errorf("noise std = %v, want ~%v", o.StdDev(), params.TemporalSigma)
	}
}

func TestShadowFieldSmoothness(t *testing.T) {
	// Nearby points must have nearly identical shadowing; far points
	// should (almost surely) differ.
	f := newShadowField(40, 16, 4, 6, 123)
	a := f.at(geom.Pt(10, 8))
	b := f.at(geom.Pt(10.1, 8))
	if math.Abs(a-b) > 0.5 {
		t.Errorf("field jumps too fast: %v vs %v", a, b)
	}
	c := f.at(geom.Pt(30, 2))
	if a == c {
		t.Error("distant field values identical; field looks constant")
	}
}

func TestShadowFieldInterpolationBounds(t *testing.T) {
	f := newShadowField(40, 16, 4, 6, 9)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range f.vals {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	// Bilinear interpolation never exceeds node extremes, and clamping
	// keeps out-of-range queries finite.
	probe := func(x, y float64) bool {
		v := f.at(geom.Pt(math.Mod(math.Abs(x), 60)-10, math.Mod(math.Abs(y), 30)-7))
		return v >= lo-1e-9 && v <= hi+1e-9
	}
	if err := quick.Check(probe, nil); err != nil {
		t.Error(err)
	}
}

func TestPerAPTxPowerOverride(t *testing.T) {
	plan := floorplan.OfficeHall()
	plan.APs[0].TxPower = -20 // hotter AP
	m, err := NewModel(plan, quiet(), 1)
	if err != nil {
		t.Fatal(err)
	}
	plan2 := floorplan.OfficeHall()
	m2, err := NewModel(plan2, quiet(), 1)
	if err != nil {
		t.Fatal(err)
	}
	pos := geom.Pt(10, 10)
	boost := m.MeanRSS(0, pos) - m2.MeanRSS(0, pos)
	want := -20 - quiet().RefPower
	if math.Abs(boost-want) > 1e-9 {
		t.Errorf("TxPower override boost = %v, want %v", boost, want)
	}
}
