// Package rf simulates indoor WiFi signal propagation for the MoLoc
// reproduction. It replaces the paper's physical testbed with a
// multi-wall log-distance path-loss model plus two noise processes:
//
//   - a static, spatially-correlated shadowing field per AP, which models
//     multipath structure and is what creates "fingerprint twins" — two
//     distant positions whose mean RSS vectors happen to be similar; and
//   - per-sample temporal noise, which models the signal variation the
//     paper cites as a source of fingerprint ambiguity.
//
// Both processes are seeded deterministically so experiments reproduce
// exactly across runs.
package rf

import (
	"fmt"
	"math"

	"moloc/internal/floorplan"
	"moloc/internal/geom"
	"moloc/internal/stats"
)

// NotDetected is the RSS value recorded when an AP is not heard in a
// scan. Real scan lists simply omit the AP; using a floor value keeps
// fingerprints fixed-length, the common practice in fingerprint
// databases.
const NotDetected = -100.0

// Params are the propagation-model constants. NewParams returns the
// defaults used throughout the reproduction; experiments that sweep a
// parameter copy and modify them.
type Params struct {
	// RefPower is the received power in dBm at the 1 m reference
	// distance from an AP with default transmit power.
	RefPower float64
	// PathLossExp is the log-distance path-loss exponent; ~3 for
	// cluttered offices.
	PathLossExp float64
	// WallAtten is the attenuation per crossed wall/obstacle in dB.
	WallAtten float64
	// MaxWallLoss caps the total wall attenuation in dB, mirroring the
	// saturation observed in multi-wall models.
	MaxWallLoss float64
	// ShadowSigma is the standard deviation in dB of the static
	// spatially-correlated shadowing field.
	ShadowSigma float64
	// ShadowGridRes is the grid resolution in meters of the shadowing
	// field; smaller values decorrelate the field faster in space.
	ShadowGridRes float64
	// TemporalSigma is the per-sample noise standard deviation in dB.
	TemporalSigma float64
	// BurstProb is the probability that a sample suffers an extra noise
	// burst (passing crowds, interference).
	BurstProb float64
	// BurstSigma is the standard deviation of the extra burst noise.
	BurstSigma float64
	// Sensitivity is the weakest receivable RSS in dBm; weaker signals
	// are recorded as NotDetected.
	Sensitivity float64
}

// NewParams returns the default propagation parameters. They are
// calibrated so that plain nearest-neighbor fingerprinting on the office
// hall reproduces the accuracy band the paper reports for WiFi (Sec. VI).
func NewParams() Params {
	return Params{
		RefPower:      -42,
		PathLossExp:   2.5,
		WallAtten:     3.5,
		MaxWallLoss:   15,
		ShadowSigma:   3.0,
		ShadowGridRes: 10.0,
		TemporalSigma: 4.2,
		BurstProb:     0.08,
		BurstSigma:    7.0,
		Sensitivity:   -95,
	}
}

// Validate rejects physically meaningless parameter combinations.
func (p Params) Validate() error {
	if p.PathLossExp <= 0 {
		return fmt.Errorf("rf: path-loss exponent must be positive, got %g", p.PathLossExp)
	}
	if p.ShadowGridRes <= 0 {
		return fmt.Errorf("rf: shadow grid resolution must be positive, got %g", p.ShadowGridRes)
	}
	if p.ShadowSigma < 0 || p.TemporalSigma < 0 || p.BurstSigma < 0 {
		return fmt.Errorf("rf: noise sigmas must be non-negative")
	}
	if p.BurstProb < 0 || p.BurstProb > 1 {
		return fmt.Errorf("rf: burst probability must be in [0,1], got %g", p.BurstProb)
	}
	return nil
}

// Model computes RSS values for a plan under Params.
type Model struct {
	plan   *floorplan.Plan
	params Params
	fields []*shadowField // one per AP, indexed like plan.APs
}

// NewModel builds a propagation model for the plan. The seed determines
// the shadowing fields; two models with the same plan, params, and seed
// are identical.
func NewModel(plan *floorplan.Plan, params Params, seed int64) (*Model, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	m := &Model{plan: plan, params: params}
	m.fields = make([]*shadowField, len(plan.APs))
	for i, ap := range plan.APs {
		fieldSeed := stats.HashSeed("shadow", ap.ID) ^ seed
		m.fields[i] = newShadowField(
			plan.Width, plan.Height, params.ShadowGridRes,
			params.ShadowSigma, fieldSeed)
	}
	return m, nil
}

// Plan returns the floor plan the model was built for.
func (m *Model) Plan() *floorplan.Plan { return m.plan }

// Params returns the propagation parameters.
func (m *Model) Params() Params { return m.params }

// NumAPs returns the number of access points.
func (m *Model) NumAPs() int { return len(m.plan.APs) }

// MeanRSS returns the noise-free mean RSS in dBm from AP index ap at
// pos: path loss, wall attenuation, and the static shadowing field, but
// no temporal noise and no sensitivity cutoff.
func (m *Model) MeanRSS(ap int, pos geom.Point) float64 {
	a := m.plan.APs[ap]
	d := math.Max(a.Pos.Dist(pos), 0.5)
	refPower := m.params.RefPower
	if a.TxPower != 0 {
		refPower = a.TxPower
	}
	wallLoss := math.Min(
		float64(m.plan.WallsBetween(a.Pos, pos))*m.params.WallAtten,
		m.params.MaxWallLoss)
	return refPower -
		10*m.params.PathLossExp*math.Log10(d) -
		wallLoss +
		m.fields[ap].at(pos)
}

// Sample draws one RSS scan at pos: the mean RSS per AP plus temporal
// noise, with sub-sensitivity signals reported as NotDetected. The
// result has one entry per AP in plan order.
func (m *Model) Sample(pos geom.Point, rng *stats.RNG) []float64 {
	out := make([]float64, m.NumAPs())
	for ap := range out {
		rss := m.MeanRSS(ap, pos) + rng.Norm(0, m.params.TemporalSigma)
		if m.params.BurstProb > 0 && rng.Bool(m.params.BurstProb) {
			rss += rng.Norm(0, m.params.BurstSigma)
		}
		if rss < m.params.Sensitivity {
			rss = NotDetected
		}
		out[ap] = rss
	}
	return out
}

// shadowField is a static spatially-correlated Gaussian field realized
// on a coarse grid with bilinear interpolation between grid nodes.
type shadowField struct {
	cols, rows int
	res        float64
	vals       []float64 // rows*cols node values
}

func newShadowField(w, h, res, sigma float64, seed int64) *shadowField {
	cols := int(math.Ceil(w/res)) + 2
	rows := int(math.Ceil(h/res)) + 2
	f := &shadowField{cols: cols, rows: rows, res: res}
	f.vals = make([]float64, rows*cols)
	rng := stats.NewRNG(seed)
	for i := range f.vals {
		f.vals[i] = rng.Norm(0, sigma)
	}
	return f
}

// at evaluates the field at a position with bilinear interpolation,
// clamping coordinates to the grid.
func (f *shadowField) at(pos geom.Point) float64 {
	x := pos.X / f.res
	y := pos.Y / f.res
	x = math.Max(0, math.Min(x, float64(f.cols-2)))
	y = math.Max(0, math.Min(y, float64(f.rows-2)))
	cx, cy := int(x), int(y)
	fx, fy := x-float64(cx), y-float64(cy)
	v00 := f.vals[cy*f.cols+cx]
	v10 := f.vals[cy*f.cols+cx+1]
	v01 := f.vals[(cy+1)*f.cols+cx]
	v11 := f.vals[(cy+1)*f.cols+cx+1]
	return v00*(1-fx)*(1-fy) + v10*fx*(1-fy) + v01*(1-fx)*fy + v11*fx*fy
}
