// Reader and Writer wrap the pure frame codec around a connection.
// Both own one reused buffer: after warmup a stream neither allocates
// per frame nor copies payloads more than once (socket → Reader buffer,
// which the decoded Frame aliases).
package wire

import (
	"errors"
	"io"
)

// DefaultMaxPayload bounds frame payloads on both sides. It comfortably
// fits the server's largest observation batch (4096 observations ≈ 96
// KiB) while keeping a hostile length prefix from ballooning the read
// buffer.
const DefaultMaxPayload = 1 << 20

// Reader decodes frames from an io.Reader through one reused buffer.
// Not safe for concurrent use.
type Reader struct {
	src io.Reader
	// buf holds raw bytes from the socket; r:w is the unconsumed
	// window. Frames returned by ReadFrame alias it.
	//
	//moloc:reuse
	buf        []byte
	r, w       int
	maxPayload int
}

// NewReader returns a Reader with the given payload cap (0 =
// DefaultMaxPayload).
func NewReader(src io.Reader, maxPayload int) *Reader {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	return &Reader{src: src, buf: make([]byte, 0, 64<<10), maxPayload: maxPayload}
}

// ReadFrame returns the next frame, blocking until one is fully
// buffered. The frame's payload aliases the reader's buffer and is
// valid only until the next ReadFrame call.
func (rd *Reader) ReadFrame() (Frame, error) {
	for {
		fr, n, err := DecodeFrame(rd.buf[rd.r:rd.w], rd.maxPayload)
		if err == nil {
			rd.r += n
			return fr, nil
		}
		if !errors.Is(err, ErrShort) {
			return Frame{}, err
		}
		if err := rd.fill(); err != nil {
			return Frame{}, err
		}
	}
}

// FrameBuffered reports whether a complete frame is already buffered,
// without reading from the socket. The server's drain-then-commit loop
// uses it to batch every fully-arrived frame under one fsync while
// never blocking on a half-arrived one.
func (rd *Reader) FrameBuffered() bool {
	n, ok := frameSize(rd.buf[rd.r:rd.w], rd.maxPayload)
	return ok && rd.w-rd.r >= n
}

// fill reads more bytes from the source, compacting the consumed prefix
// first so the buffer stops growing once it fits the largest in-flight
// frame.
func (rd *Reader) fill() error {
	if rd.r > 0 {
		rd.w = copy(rd.buf[:cap(rd.buf)], rd.buf[rd.r:rd.w])
		rd.r = 0
	}
	if rd.w == cap(rd.buf) {
		next := make([]byte, 0, 2*cap(rd.buf)+HeaderSize)
		rd.buf = append(next, rd.buf[:rd.w]...)
	}
	n, err := rd.src.Read(rd.buf[rd.w:cap(rd.buf)])
	if n > 0 {
		rd.w += n
		return nil
	}
	if err == nil {
		err = io.ErrUnexpectedEOF
	}
	return err
}

// Writer encodes frames into one reused buffer and flushes it to an
// io.Writer. Not safe for concurrent use.
type Writer struct {
	dst io.Writer
	// buf accumulates encoded frames between flushes.
	//
	//moloc:reuse
	buf []byte
}

// NewWriter returns a Writer.
func NewWriter(dst io.Writer) *Writer {
	return &Writer{dst: dst, buf: make([]byte, 0, 64<<10)}
}

// WriteFrame buffers one frame. Call Flush to put it on the wire.
func (wr *Writer) WriteFrame(typ uint8, seq uint64, payload []byte) {
	wr.buf = AppendFrame(wr.buf, typ, seq, payload)
}

// WriteAck buffers a cumulative ack covering every frame with sequence
// ≤ seq, advertising the given credit window. Callers must not invoke
// this until the covering WAL sync has completed — this is the
// ack-release point the durableack analyzer tracks.
//
//moloc:ack
func (wr *Writer) WriteAck(seq uint64, window uint32) {
	var w [4]byte
	w[0] = byte(window)
	w[1] = byte(window >> 8)
	w[2] = byte(window >> 16)
	w[3] = byte(window >> 24)
	wr.buf = AppendFrame(wr.buf, FrameAck, seq, w[:])
}

// WriteError buffers an error frame whose payload is the message text.
func (wr *Writer) WriteError(seq uint64, msg string) {
	wr.buf = AppendFrame(wr.buf, FrameError, seq, []byte(msg))
}

// Flush writes all buffered frames to the destination and resets the
// buffer.
func (wr *Writer) Flush() error {
	if len(wr.buf) == 0 {
		return nil
	}
	_, err := wr.dst.Write(wr.buf)
	wr.buf = wr.buf[:0]
	return err
}

// Buffered reports the number of bytes waiting for Flush.
func (wr *Writer) Buffered() int { return len(wr.buf) }
