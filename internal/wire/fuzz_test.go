package wire

import (
	"bytes"
	"testing"

	"moloc/internal/motion"
	"moloc/internal/motiondb"
)

// FuzzFrameDecode hammers the frame decoder with torn frames, bit
// flips, hostile length prefixes, and version skew. The invariants: the
// decoder never panics, never reads past the input, and any input it
// accepts re-encodes to the byte-identical frame (so accepting corrupt
// input is impossible without a CRC32C collision).
func FuzzFrameDecode(f *testing.F) {
	f.Add(AppendFrame(nil, FrameObsBatch, 1, []byte("payload")))
	f.Add(AppendFrame(nil, FrameHello, 0, AppendHello(nil, "stream", "sess")))
	f.Add(AppendFrame(nil, FrameAck, 900, AppendWindow(nil, 32)))
	// Torn mid-header and mid-payload.
	whole := AppendFrame(nil, FrameObsBatch, 7, bytes.Repeat([]byte{0xAA}, 64))
	f.Add(whole[:HeaderSize-3])
	f.Add(whole[:len(whole)-9])
	// Version skew.
	skew := append([]byte(nil), whole...)
	skew[0] = Version + 3
	f.Add(skew)
	// Hostile length prefix.
	huge := append([]byte(nil), whole...)
	huge[4], huge[5], huge[6], huge[7] = 0xFF, 0xFF, 0xFF, 0xFF
	f.Add(huge)
	// Back-to-back frames.
	f.Add(AppendFrame(AppendFrame(nil, FrameTick, 1, nil), FrameTick, 2, nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		const maxPayload = 1 << 16
		fr, n, err := DecodeFrame(data, maxPayload)
		if err != nil {
			if n != 0 {
				t.Fatalf("error %v but consumed %d bytes", err, n)
			}
			return
		}
		if n < HeaderSize || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if len(fr.Payload) > maxPayload {
			t.Fatalf("accepted %d-byte payload over the %d cap", len(fr.Payload), maxPayload)
		}
		// Re-encode: every accepted frame must round-trip bit-identically.
		re := AppendFrame(nil, fr.Type, fr.Seq, fr.Payload)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("accepted frame does not re-encode identically")
		}
	})
}

// FuzzObsDecode fuzzes the observation payload codec the same way: no
// panics, no over-reads, accepted payloads round-trip.
func FuzzObsDecode(f *testing.F) {
	f.Add(AppendObservations(nil, []motiondb.Observation{
		{From: 1, To: 2, RLM: motion.RLM{Dir: 90, Off: 5}},
	}))
	f.Add(AppendObservations(nil, nil))
	f.Add([]byte(`[{"from":1,"to":2}]`))
	f.Add([]byte{ObsMagic})

	f.Fuzz(func(t *testing.T, data []byte) {
		obs, err := DecodeObservations(data, nil)
		if err != nil {
			return
		}
		re := AppendObservations(nil, obs)
		if !bytes.Equal(re, data) {
			// NaN direction/offset bits are the one legal asymmetry:
			// float64 round-trips preserve bit patterns, so any
			// difference is a decoder bug.
			t.Fatalf("accepted payload does not re-encode identically")
		}
	})
}
