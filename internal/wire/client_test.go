package wire

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"moloc/internal/motion"
	"moloc/internal/motiondb"
)

var clientTestObs = []motiondb.Observation{{From: 1, To: 2, RLM: motion.RLM{Dir: 90, Off: 3}}}

// scriptedAckServer accepts connections and answers each hello with a
// scripted hello-ack sequence (one entry per connection; the last entry
// repeats). Data frames are acked per the ack function, which returns
// the ack sequence to send (0 = stay silent) and whether to then drop
// the connection.
func scriptedAckServer(t *testing.T, helloAcks []uint64, window uint32,
	ack func(conn int, fr Frame) (uint64, bool)) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for conn := 0; ; conn++ {
			cn, err := ln.Accept()
			if err != nil {
				return
			}
			resume := helloAcks[len(helloAcks)-1]
			if conn < len(helloAcks) {
				resume = helloAcks[conn]
			}
			go func(cn net.Conn, conn int, resume uint64) {
				defer cn.Close()
				rd := NewReader(cn, 0)
				wr := NewWriter(cn)
				if fr, err := rd.ReadFrame(); err != nil || fr.Type != FrameHello {
					return
				}
				wr.WriteFrame(FrameHelloAck, resume, AppendWindow(nil, window))
				wr.Flush()
				for {
					fr, err := rd.ReadFrame()
					if err != nil {
						return
					}
					if ack == nil {
						continue
					}
					seq, drop := ack(conn, fr)
					if seq > 0 {
						wr.WriteAck(seq, window)
						wr.Flush()
					}
					if drop {
						return
					}
				}
			}(cn, conn, resume)
		}
	}()
	return ln
}

// TestClientResumeGap tables the resume handshake's accept/reject
// paths: a server whose hello-ack names frames this client never sent
// is a different stream's history (typed ErrResumeGap), while a server
// that lost its registry (ack regressed below the client's) resumes
// fine — the unacked tail resends, at-least-once.
func TestClientResumeGap(t *testing.T) {
	cases := []struct {
		name string
		// hello-ack per connection: conn 0, then every resume conn.
		helloAcks []uint64
		wantGap   bool
	}{
		// Resume point past everything the client ever sent: refuse.
		{name: "server ahead of client", helloAcks: []uint64{0, 100}, wantGap: true},
		// Restarted server forgot its acks: resend, don't refuse.
		{name: "server regressed", helloAcks: []uint64{0, 0}, wantGap: false},
		// Same position on both sides: plain resume.
		{name: "server matches", helloAcks: []uint64{0, 1}, wantGap: false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ln := scriptedAckServer(t, tc.helloAcks, 8, func(conn int, fr Frame) (uint64, bool) {
				if conn == 0 {
					// Ack the first frame, then drop to force a resume.
					return 1, fr.Seq >= 1
				}
				return fr.Seq, false
			})
			defer ln.Close()

			c, err := DialStream(ln.Addr().String(), "gap-"+tc.name, ClientOptions{
				RedialAttempts: 3, RedialWait: 5 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			var sendErr error
			for i := 0; i < 3 && sendErr == nil; i++ {
				sendErr = c.SendObservations(clientTestObs)
			}
			if sendErr == nil {
				// A send that hit the dying connection returns nil and
				// defers the redial; WaitAcked drives it and surfaces
				// the resume verdict either way.
				sendErr = c.WaitAcked()
			}
			if tc.wantGap {
				if !errors.Is(sendErr, ErrResumeGap) {
					t.Fatalf("err = %v, want ErrResumeGap", sendErr)
				}
				return
			}
			if sendErr != nil {
				t.Fatalf("err = %v, want clean resume", sendErr)
			}
			if c.Acked() != 3 {
				t.Fatalf("acked = %d, want 3", c.Acked())
			}
			if c.Resumes() != 1 {
				t.Fatalf("resumes = %d, want 1", c.Resumes())
			}
		})
	}
}

// TestClientFreshDialAdoptsServerPosition covers stream-ID reuse by a
// restarted sender: the first dial of a fresh client against a stream
// with durable history adopts the server's ack position instead of
// refusing, and new frames extend it.
func TestClientFreshDialAdoptsServerPosition(t *testing.T) {
	ln := scriptedAckServer(t, []uint64{7}, 8, func(_ int, fr Frame) (uint64, bool) {
		return fr.Seq, false
	})
	defer ln.Close()

	c, err := DialStream(ln.Addr().String(), "adopt", ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SendObservations(clientTestObs); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitAcked(); err != nil {
		t.Fatal(err)
	}
	// The new frame went out as seq 8, extending the adopted history.
	if got := c.Acked(); got != 8 {
		t.Fatalf("acked = %d, want 8 (server position 7 + 1 new frame)", got)
	}
}

// TestClientMaxPendingBoundsRetransmitBuffer pins the client-side cap:
// a server advertising an enormous credit window must not make the
// client buffer unbounded retransmit state — sends past MaxPending
// block until acks drain the buffer.
func TestClientMaxPendingBoundsRetransmitBuffer(t *testing.T) {
	// A server that advertises a huge window but withholds acks until
	// told: received frames pile up in the client's retransmit buffer.
	var maxSeq atomic.Uint64
	ackNow := make(chan struct{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		cn, err := ln.Accept()
		if err != nil {
			return
		}
		defer cn.Close()
		rd := NewReader(cn, 0)
		wr := NewWriter(cn)
		if fr, err := rd.ReadFrame(); err != nil || fr.Type != FrameHello {
			return
		}
		wr.WriteFrame(FrameHelloAck, 0, AppendWindow(nil, 1<<20))
		wr.Flush()
		got := make(chan struct{}, 16)
		go func() {
			for {
				fr, err := rd.ReadFrame()
				if err != nil {
					return
				}
				maxSeq.Store(fr.Seq)
				got <- struct{}{}
			}
		}()
		<-ackNow
		// Cumulative ack for everything seen so far, then ack each frame
		// that trickles in afterwards (the sender unblocking).
		for {
			wr.WriteAck(maxSeq.Load(), 1<<20)
			if wr.Flush() != nil {
				return
			}
			select {
			case <-got:
			case <-time.After(50 * time.Millisecond):
			}
		}
	}()

	c, err := DialStream(ln.Addr().String(), "maxpending", ClientOptions{MaxPending: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 2; i++ {
		if err := c.SendObservations(clientTestObs); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Pending(); got != 2 {
		t.Fatalf("pending = %d, want 2", got)
	}

	// The third send must block on the retransmit cap, not the window.
	sent := make(chan error, 1)
	go func() { sent <- c.SendObservations(clientTestObs) }()
	select {
	case err := <-sent:
		t.Fatalf("third send returned (%v) with 2 frames pending and MaxPending=2", err)
	case <-time.After(50 * time.Millisecond):
	}
	if got := c.Pending(); got != 2 {
		t.Fatalf("pending = %d while a send is blocked, want 2", got)
	}

	// Acks drain the buffer: the blocked send completes, delivery
	// finishes, and the buffer never exceeded the cap.
	close(ackNow)
	select {
	case err := <-sent:
		if err != nil {
			t.Fatalf("blocked send failed after acks: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("send still blocked 2s after acks started flowing")
	}
	if err := c.WaitAcked(); err != nil {
		t.Fatal(err)
	}
	if got := c.Acked(); got != 3 {
		t.Fatalf("acked = %d, want 3", got)
	}
}

// TestReplFrameCodecs round-trips the replication payload codecs and
// rejects truncation.
func TestReplFrameCodecs(t *testing.T) {
	lastSeq, window, err := DecodeReplHello(AppendReplHello(nil, 42, 7))
	if err != nil || lastSeq != 42 || window != 7 {
		t.Fatalf("repl hello round trip = (%d, %d, %v)", lastSeq, window, err)
	}
	if _, _, err := DecodeReplHello([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated repl hello decoded")
	}

	ckptSeq, last, chunk, err := DecodeCheckpointChunk(AppendCheckpointChunk(nil, 9, true, []byte("abc")))
	if err != nil || ckptSeq != 9 || !last || string(chunk) != "abc" {
		t.Fatalf("chunk round trip = (%d, %v, %q, %v)", ckptSeq, last, chunk, err)
	}
	if _, _, _, err := DecodeCheckpointChunk([]byte{0}); err == nil {
		t.Fatal("truncated chunk decoded")
	}
	bad := AppendCheckpointChunk(nil, 9, true, nil)
	bad[8] = 7 // corrupt the last-chunk flag
	if _, _, _, err := DecodeCheckpointChunk(bad); err == nil {
		t.Fatal("corrupt last flag decoded")
	}

	tail, ckpt, err := DecodePublish(AppendPublish(nil, 100, 90))
	if err != nil || tail != 100 || ckpt != 90 {
		t.Fatalf("publish round trip = (%d, %d, %v)", tail, ckpt, err)
	}
	if _, _, err := DecodePublish([]byte{1}); err == nil {
		t.Fatal("truncated publish decoded")
	}
}
