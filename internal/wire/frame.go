// Package wire is the binary streaming ingest protocol: length-prefixed,
// versioned, CRC32C-checksummed frames over one persistent connection,
// replacing JSON-per-batch HTTP as the high-volume path by which phones
// feed the motion database. The related work frames every ordinary user
// as a fingerprint contributor (Jiang et al.) and shows accuracy decays
// without a live refresh stream (Tang et al.) — at that volume the
// ingest path must not pay a JSON decode, a per-batch allocation, and a
// per-batch fsync, so this protocol decodes straight into caller-owned
// reused buffers and lets the server amortize one fsync over every
// batch in flight (wal.GroupCommitter).
//
// A stream session opens with a client Hello naming a resumable stream
// ID (and optionally a tracking session for IMU/scan/tick frames); the
// server answers HelloAck carrying the highest frame it has already
// acknowledged durable (the resume point) and a credit window. The
// client then pipelines observation-batch frames with contiguous
// sequence numbers, keeping at most window frames unacknowledged; the
// server acks cumulatively — Ack seq N acknowledges every frame ≤ N —
// and only after the covering fsync, so an acknowledged frame survives
// kill -9. Credit is the backpressure: a loaded server shrinks the
// window advertised in its acks instead of shedding with 429s.
//
// The codec is split in two layers. This file is the pure frame layer
// (byte slices in, byte slices out, no I/O) so FuzzFrameDecode can
// hammer torn frames, bad CRCs, oversized lengths, and version skew
// directly; payload.go encodes the per-type payloads; stream.go wraps
// the frame layer around an io.Reader/io.Writer with reused buffers;
// client.go is the reconnecting client.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Version is the protocol version this package speaks. A Hello carrying
// any other version is refused with a FrameError before anything else
// is read.
const Version = 1

// Frame types. Client→server types are low, server→client high; the
// numbering leaves room and deliberately stays far below 200 so no type
// constant can ever be mistaken for an HTTP 2xx by the durable-ack
// analyzer.
const (
	// FrameHello opens a stream: payload names the resumable stream ID
	// and (optionally) the tracking session the connection is scoped to.
	FrameHello = 1
	// FrameObsBatch carries one crowdsourced observation batch; its Seq
	// is the client's contiguous frame sequence, and its payload bytes
	// double as the WAL record payload (no server-side re-encode).
	FrameObsBatch = 2
	// FrameIMUBatch carries IMU samples for the scoped tracking session.
	// Fire-and-forget: no durability, no ack.
	FrameIMUBatch = 3
	// FrameScan carries one WiFi scan for the scoped tracking session.
	FrameScan = 4
	// FrameTick advances the scoped session's clock; the server answers
	// FrameFix or FrameNoFix with the same Seq.
	FrameTick = 5
	// FrameReplHello opens a replication stream on the same listener: a
	// follower names the highest WAL sequence it has applied and the
	// credit window it will buffer (payload.go: AppendReplHello). The
	// leader answers with checkpoint chunks (bootstrap) and/or WAL
	// segments — never a FrameHelloAck.
	FrameReplHello = 6
	// FrameReplAck acknowledges replicated WAL records cumulatively:
	// Seq is the highest WAL sequence the follower has durably applied,
	// payload the refreshed credit window.
	FrameReplAck = 7
	// FrameHelloAck answers a Hello: Seq is the highest frame sequence
	// already acknowledged durable (the resume point; 0 for an unknown
	// stream), payload is the credit window.
	FrameHelloAck = 65
	// FrameAck acknowledges observation batches cumulatively: Seq is the
	// highest contiguous frame sequence now durable, payload the updated
	// credit window.
	FrameAck = 66
	// FrameFix answers a tick that produced a fix.
	FrameFix = 67
	// FrameNoFix answers a tick that produced none.
	FrameNoFix = 68
	// FrameError reports a protocol or validation error; the server
	// closes the connection after sending one.
	FrameError = 69
	// FrameCheckpointChunk carries one chunk of a checkpoint payload
	// during follower bootstrap; Seq is the zero-based chunk index,
	// payload names the checkpoint's covered WAL sequence and whether
	// this is the final chunk (payload.go: AppendCheckpointChunk).
	FrameCheckpointChunk = 70
	// FrameWALSegment replicates one WAL record: Seq is the record's WAL
	// sequence number and the payload is the record payload verbatim, so
	// the follower's WAL append is a byte-for-byte copy of the leader's.
	FrameWALSegment = 71
	// FramePublish announces the leader's current position (WAL tail and
	// newest checkpoint sequence); doubles as the replication heartbeat
	// from which followers compute lag.
	FramePublish = 72
)

// Frame header layout, little-endian:
//
//	offset 0  uint8   protocol version
//	offset 1  uint8   frame type
//	offset 2  uint16  reserved, must be zero
//	offset 4  uint32  payload length
//	offset 8  uint32  CRC32C over hdr[0:4] + hdr[12:20] + payload
//	offset 12 uint64  sequence number
//	offset 20 []byte  payload
const HeaderSize = 20

// castagnoli is the CRC32C table (hardware-accelerated on every
// deployment target), shared with the WAL's record format.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Decode errors. ErrShort marks a frame that does not fit the given
// bytes — on a socket that just means "read more"; in a fuzzer it is a
// torn frame.
var (
	ErrShort    = errors.New("wire: frame extends past end of data")
	ErrTooBig   = errors.New("wire: frame payload exceeds the cap")
	ErrChecksum = errors.New("wire: frame checksum mismatch")
	ErrVersion  = errors.New("wire: unsupported protocol version")
	ErrReserved = errors.New("wire: reserved header bytes are not zero")
)

// Frame is one decoded frame. Payload aliases the buffer it was decoded
// from; it is only valid until that buffer's next reuse.
type Frame struct {
	Type uint8
	Seq  uint64
	// Payload aliases decode scratch — copy it to retain it.
	//
	//moloc:reuse
	Payload []byte
}

// AppendFrame encodes one frame onto buf and returns the extended
// slice. It is the only encoder: every frame on the wire, client or
// server side, goes through here.
func AppendFrame(buf []byte, typ uint8, seq uint64, payload []byte) []byte {
	var hdr [HeaderSize]byte
	hdr[0] = Version
	hdr[1] = typ
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[12:20], seq)
	crc := crc32.Update(0, castagnoli, hdr[0:4])
	crc = crc32.Update(crc, castagnoli, hdr[12:20])
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[8:12], crc)
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// DecodeFrame reads one frame from the front of b, returning the frame
// (payload aliasing b) and its encoded size. maxPayload bounds the
// length field so a corrupt or hostile prefix cannot demand gigabytes.
func DecodeFrame(b []byte, maxPayload int) (fr Frame, n int, err error) {
	if len(b) < HeaderSize {
		return Frame{}, 0, ErrShort
	}
	if b[0] != Version {
		return Frame{}, 0, fmt.Errorf("%w: got %d, speak %d", ErrVersion, b[0], Version)
	}
	if b[2] != 0 || b[3] != 0 {
		return Frame{}, 0, ErrReserved
	}
	plen := int(binary.LittleEndian.Uint32(b[4:8]))
	if plen > maxPayload {
		return Frame{}, 0, fmt.Errorf("%w: %d bytes (cap %d)", ErrTooBig, plen, maxPayload)
	}
	if len(b) < HeaderSize+plen {
		return Frame{}, 0, ErrShort
	}
	crc := crc32.Update(0, castagnoli, b[0:4])
	crc = crc32.Update(crc, castagnoli, b[12:20])
	crc = crc32.Update(crc, castagnoli, b[HeaderSize:HeaderSize+plen])
	if crc != binary.LittleEndian.Uint32(b[8:12]) {
		return Frame{}, 0, ErrChecksum
	}
	return Frame{
		Type:    b[1],
		Seq:     binary.LittleEndian.Uint64(b[12:20]),
		Payload: b[HeaderSize : HeaderSize+plen],
	}, HeaderSize + plen, nil
}

// frameSize reports the full encoded size of the frame whose header
// starts b, without validating the checksum. It needs only the first 8
// header bytes; ok is false when even those are missing or the length
// exceeds maxPayload.
func frameSize(b []byte, maxPayload int) (int, bool) {
	if len(b) < 8 {
		return 0, false
	}
	plen := int(binary.LittleEndian.Uint32(b[4:8]))
	if plen > maxPayload {
		return 0, false
	}
	return HeaderSize + plen, true
}
