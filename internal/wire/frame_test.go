package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"net"
	"testing"
	"time"

	"moloc/internal/motion"
	"moloc/internal/motiondb"
	"moloc/internal/sensors"
)

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("observation bytes")
	buf := AppendFrame(nil, FrameObsBatch, 42, payload)
	fr, n, err := DecodeFrame(buf, DefaultMaxPayload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if n != len(buf) {
		t.Fatalf("decode consumed %d of %d bytes", n, len(buf))
	}
	if fr.Type != FrameObsBatch || fr.Seq != 42 || !bytes.Equal(fr.Payload, payload) {
		t.Fatalf("round trip mismatch: %+v", fr)
	}
}

func TestFrameDecodeEmptyPayload(t *testing.T) {
	buf := AppendFrame(nil, FrameTick, 7, nil)
	fr, _, err := DecodeFrame(buf, DefaultMaxPayload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if fr.Seq != 7 || len(fr.Payload) != 0 {
		t.Fatalf("got %+v", fr)
	}
}

func TestFrameDecodeTorn(t *testing.T) {
	buf := AppendFrame(nil, FrameObsBatch, 1, []byte("payload"))
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeFrame(buf[:cut], DefaultMaxPayload); !errors.Is(err, ErrShort) {
			t.Fatalf("cut at %d: want ErrShort, got %v", cut, err)
		}
	}
}

func TestFrameDecodeBitFlips(t *testing.T) {
	orig := AppendFrame(nil, FrameObsBatch, 9, []byte("sensitive payload"))
	for i := range orig {
		for bit := 0; bit < 8; bit++ {
			buf := append([]byte(nil), orig...)
			buf[i] ^= 1 << bit
			fr, _, err := DecodeFrame(buf, DefaultMaxPayload)
			if err != nil {
				continue
			}
			// A flip that still decodes must have produced the identical
			// frame (impossible for a single bit) — so reaching here with
			// different content is a checksum hole.
			if fr.Seq != 9 || !bytes.Equal(fr.Payload, []byte("sensitive payload")) {
				t.Fatalf("bit flip at byte %d bit %d decoded silently", i, bit)
			}
		}
	}
}

func TestFrameDecodeVersionSkew(t *testing.T) {
	buf := AppendFrame(nil, FrameHello, 1, nil)
	buf[0] = Version + 1
	if _, _, err := DecodeFrame(buf, DefaultMaxPayload); !errors.Is(err, ErrVersion) {
		t.Fatalf("want ErrVersion, got %v", err)
	}
}

func TestFrameDecodeOversized(t *testing.T) {
	buf := AppendFrame(nil, FrameObsBatch, 1, make([]byte, 100))
	if _, _, err := DecodeFrame(buf, 50); !errors.Is(err, ErrTooBig) {
		t.Fatalf("want ErrTooBig, got %v", err)
	}
	// A hostile length prefix must be refused before any buffer sizing.
	binary.LittleEndian.PutUint32(buf[4:8], math.MaxUint32)
	if _, _, err := DecodeFrame(buf, DefaultMaxPayload); !errors.Is(err, ErrTooBig) {
		t.Fatalf("want ErrTooBig for 4 GiB claim, got %v", err)
	}
}

func TestFrameDecodeReservedBytes(t *testing.T) {
	buf := AppendFrame(nil, FrameHello, 1, nil)
	buf[2] = 1
	if _, _, err := DecodeFrame(buf, DefaultMaxPayload); !errors.Is(err, ErrReserved) {
		t.Fatalf("want ErrReserved, got %v", err)
	}
}

func TestObservationsRoundTrip(t *testing.T) {
	obs := []motiondb.Observation{
		{From: 0, To: 5, RLM: motion.RLM{Dir: 90, Off: 5.5}},
		{From: 12, To: 3, RLM: motion.RLM{Dir: 359.25, Off: 0}},
	}
	payload := AppendObservations(nil, obs)
	if !IsObsPayload(payload) {
		t.Fatal("payload does not self-identify")
	}
	if n, err := ObsCount(payload); err != nil || n != 2 {
		t.Fatalf("ObsCount = %d, %v", n, err)
	}
	got, err := DecodeObservations(payload, nil)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(obs) {
		t.Fatalf("got %d observations, want %d", len(got), len(obs))
	}
	for i := range obs {
		if got[i] != obs[i] {
			t.Fatalf("observation %d: got %+v want %+v", i, got[i], obs[i])
		}
	}
}

func TestObservationsScratchReuse(t *testing.T) {
	obs := []motiondb.Observation{{From: 1, To: 2, RLM: motion.RLM{Dir: 1, Off: 2}}}
	payload := AppendObservations(nil, obs)
	scratch := make([]motiondb.Observation, 0, 8)
	got, err := DecodeObservations(payload, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &scratch[:1][0] {
		t.Fatal("decode did not reuse scratch capacity")
	}
}

func TestObservationsJSONDisjoint(t *testing.T) {
	// The WAL holds both legacy JSON batches and binary ones; the magic
	// byte must cleanly separate them.
	for _, j := range []string{`[{"from":1}]`, `{"observations":[]}`} {
		if IsObsPayload([]byte(j)) {
			t.Fatalf("JSON %q misidentified as binary", j)
		}
	}
}

func TestObservationsRejectsTruncation(t *testing.T) {
	payload := AppendObservations(nil, []motiondb.Observation{{From: 1, To: 2}})
	for cut := 1; cut < len(payload); cut++ {
		if _, err := DecodeObservations(payload[:cut], nil); err == nil {
			t.Fatalf("truncation at %d decoded silently", cut)
		}
	}
}

func TestHelloRoundTrip(t *testing.T) {
	payload := AppendHello(nil, "stream-7", "sess-abc")
	stream, sess, err := DecodeHello(payload)
	if err != nil || stream != "stream-7" || sess != "sess-abc" {
		t.Fatalf("got %q %q %v", stream, sess, err)
	}
	payload = AppendHello(nil, "only-stream", "")
	stream, sess, err = DecodeHello(payload)
	if err != nil || stream != "only-stream" || sess != "" {
		t.Fatalf("got %q %q %v", stream, sess, err)
	}
}

func TestIMUScanTickFixRoundTrip(t *testing.T) {
	samples := []sensors.Sample{{T: 1, Accel: 2, Compass: 3, Gyro: 4}, {T: 1.5, Accel: -2}}
	got, err := DecodeIMU(AppendIMU(nil, samples), nil)
	if err != nil || len(got) != 2 || got[0] != samples[0] || got[1] != samples[1] {
		t.Fatalf("imu: %v %v", got, err)
	}
	ts, rss, err := DecodeScan(AppendScan(nil, 2.5, []float64{-40, -71.5}), nil)
	if err != nil || ts != 2.5 || len(rss) != 2 || rss[1] != -71.5 {
		t.Fatalf("scan: %v %v %v", ts, rss, err)
	}
	tick, err := DecodeTick(AppendTick(nil, 9.75))
	if err != nil || tick != 9.75 {
		t.Fatalf("tick: %v %v", tick, err)
	}
	ft, loc, moved, err := DecodeFix(AppendFix(nil, 3, 17, true))
	if err != nil || ft != 3 || loc != 17 || !moved {
		t.Fatalf("fix: %v %v %v %v", ft, loc, moved, err)
	}
}

func TestWindowRoundTrip(t *testing.T) {
	w, err := DecodeWindow(AppendWindow(nil, 32))
	if err != nil || w != 32 {
		t.Fatalf("got %d %v", w, err)
	}
}

// TestReaderCoalescedFrames streams several frames through one socket
// write and checks the Reader hands them back one at a time, with
// FrameBuffered distinguishing complete from torn buffered frames.
func TestReaderCoalescedFrames(t *testing.T) {
	var wireBytes []byte
	for seq := uint64(1); seq <= 5; seq++ {
		wireBytes = AppendFrame(wireBytes, FrameObsBatch, seq, []byte("batch"))
	}
	a, b := net.Pipe()
	defer a.Close()
	go func() {
		a.Write(wireBytes)
	}()
	rd := NewReader(b, 0)
	for seq := uint64(1); seq <= 5; seq++ {
		fr, err := rd.ReadFrame()
		if err != nil {
			t.Errorf("frame %d: %v", seq, err)
			return
		}
		if fr.Seq != seq {
			t.Errorf("got seq %d want %d", fr.Seq, seq)
		}
		// After frames 1..4, frame 5 onward is still fully buffered.
		if seq < 5 && !rd.FrameBuffered() {
			t.Errorf("after frame %d: FrameBuffered = false, want true", seq)
		}
	}
	if rd.FrameBuffered() {
		t.Error("all frames consumed but FrameBuffered = true")
	}
	b.Close()
}

// TestReaderZeroAllocSteadyState pins the hot claim: once the buffer
// has warmed up, reading a frame allocates nothing.
func TestReaderZeroAllocSteadyState(t *testing.T) {
	const frames = 64
	var wireBytes []byte
	payload := make([]byte, 512)
	for seq := uint64(1); seq <= frames; seq++ {
		wireBytes = AppendFrame(wireBytes, FrameObsBatch, seq, payload)
	}
	rd := NewReader(bytes.NewReader(wireBytes), 0)
	// Warm up: first frames may grow the buffer.
	for i := 0; i < 8; i++ {
		if _, err := rd.ReadFrame(); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(frames-9, func() {
		if _, err := rd.ReadFrame(); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state ReadFrame allocates %.1f/op, want 0", avg)
	}
}

// TestClientResume drives a client against a scripted server: acks a
// few frames, drops the connection, and checks the client reconnects,
// resends only the unacked tail, and converges.
func TestClientResume(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	type obsFrame struct {
		seq   uint64
		count int
	}
	recvd := make(chan obsFrame, 64)
	// Scripted server: conn 1 acks frames through 2 then hangs up; conn
	// 2 resumes from 2 and acks everything.
	go func() {
		for conn := 0; conn < 2; conn++ {
			cn, err := ln.Accept()
			if err != nil {
				return
			}
			rd := NewReader(cn, 0)
			wr := NewWriter(cn)
			fr, err := rd.ReadFrame()
			if err != nil || fr.Type != FrameHello {
				cn.Close()
				return
			}
			var resume uint64
			if conn == 1 {
				resume = 2
			}
			wr.WriteFrame(FrameHelloAck, resume, AppendWindow(nil, 4))
			wr.Flush()
			for {
				fr, err := rd.ReadFrame()
				if err != nil {
					break
				}
				if fr.Type != FrameObsBatch {
					continue
				}
				n, _ := ObsCount(fr.Payload)
				recvd <- obsFrame{seq: fr.Seq, count: n}
				if conn == 0 && fr.Seq >= 2 {
					wr.WriteAck(2, 4)
					wr.Flush()
					cn.Close() // drop mid-stream
					break
				}
				wr.WriteAck(fr.Seq, 4)
				wr.Flush()
			}
			if conn == 1 {
				cn.Close()
			}
		}
	}()

	c, err := DialStream(ln.Addr().String(), "stream-test", ClientOptions{
		RedialAttempts: 20, RedialWait: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	obs := []motiondb.Observation{{From: 1, To: 2, RLM: motion.RLM{Dir: 90, Off: 3}}}
	for i := 0; i < 4; i++ {
		if err := c.SendObservations(obs); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := c.WaitAcked(); err != nil {
		t.Fatal(err)
	}
	if got := c.Acked(); got != 4 {
		t.Fatalf("acked = %d, want 4", got)
	}
	if c.Resumes() != 1 {
		t.Fatalf("resumes = %d, want 1", c.Resumes())
	}
	// The second connection must have seen only the unacked tail (seqs
	// 3, 4 — seq 1 and 2 were acked before the drop).
	close(recvd)
	var seqs []uint64
	for f := range recvd {
		seqs = append(seqs, f.seq)
	}
	for _, s := range seqs[len(seqs)-2:] {
		if s <= 2 {
			t.Fatalf("resumed connection re-sent acked frame %d (all: %v)", s, seqs)
		}
	}
}
