// Per-type payload codecs. The observation codec is the hot one: its
// encoded bytes travel client → frame payload → WAL record payload
// unchanged, so a batch is serialized exactly once on the phone and
// never re-encoded server-side. The codec self-identifies with a magic
// byte so WAL replay (which also sees legacy JSON payloads from the
// HTTP path, first byte '[' or '{') can route each record to the right
// decoder.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"moloc/internal/motion"
	"moloc/internal/motiondb"
	"moloc/internal/sensors"
)

// ObsMagic is the first byte of every binary observation payload. It is
// deliberately outside the ASCII range so no JSON document — which the
// legacy HTTP ingest path also writes into the same WAL — can start
// with it.
const ObsMagic = 0xB1

// obsVersion versions the observation payload independently of the
// frame header, because these bytes outlive the connection: they are
// replayed from the WAL across restarts and upgrades.
const obsVersion = 1

// obsEntrySize is the encoded size of one observation: u32 from, u32
// to, f64 dir, f64 off.
const obsEntrySize = 24

// obsHeaderSize is magic + version + u16 reserved + u32 count.
const obsHeaderSize = 8

var (
	errObsMagic   = errors.New("wire: not a binary observation payload")
	errObsVersion = errors.New("wire: unsupported observation payload version")
	errObsSize    = errors.New("wire: observation payload length does not match its count")
)

// IsObsPayload reports whether payload starts like a binary observation
// batch, distinguishing it from the legacy JSON batches that share the
// WAL.
func IsObsPayload(payload []byte) bool {
	return len(payload) > 0 && payload[0] == ObsMagic
}

// AppendObservations encodes a batch onto buf and returns the extended
// slice.
func AppendObservations(buf []byte, obs []motiondb.Observation) []byte {
	var hdr [obsHeaderSize]byte
	hdr[0] = ObsMagic
	hdr[1] = obsVersion
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(obs)))
	buf = append(buf, hdr[:]...)
	for i := range obs {
		var e [obsEntrySize]byte
		binary.LittleEndian.PutUint32(e[0:4], uint32(obs[i].From))
		binary.LittleEndian.PutUint32(e[4:8], uint32(obs[i].To))
		binary.LittleEndian.PutUint64(e[8:16], math.Float64bits(obs[i].RLM.Dir))
		binary.LittleEndian.PutUint64(e[16:24], math.Float64bits(obs[i].RLM.Off))
		buf = append(buf, e[:]...)
	}
	return buf
}

// DecodeObservations decodes a binary observation payload into scratch
// (reused: the result reuses scratch's capacity, so steady-state
// decodes allocate nothing).
//
//moloc:reuse
func DecodeObservations(payload []byte, scratch []motiondb.Observation) ([]motiondb.Observation, error) {
	if !IsObsPayload(payload) {
		return nil, errObsMagic
	}
	if len(payload) < obsHeaderSize {
		return nil, errObsSize
	}
	if payload[1] != obsVersion {
		return nil, fmt.Errorf("%w: got %d, speak %d", errObsVersion, payload[1], obsVersion)
	}
	if payload[2] != 0 || payload[3] != 0 {
		return nil, errors.New("wire: observation payload reserved bytes are not zero")
	}
	count := int(binary.LittleEndian.Uint32(payload[4:8]))
	if len(payload) != obsHeaderSize+count*obsEntrySize {
		return nil, fmt.Errorf("%w: count %d, %d payload bytes", errObsSize, count, len(payload))
	}
	scratch = scratch[:0]
	for i := 0; i < count; i++ {
		e := payload[obsHeaderSize+i*obsEntrySize:]
		scratch = append(scratch, motiondb.Observation{
			From: int(int32(binary.LittleEndian.Uint32(e[0:4]))),
			To:   int(int32(binary.LittleEndian.Uint32(e[4:8]))),
			RLM: motion.RLM{
				Dir: math.Float64frombits(binary.LittleEndian.Uint64(e[8:16])),
				Off: math.Float64frombits(binary.LittleEndian.Uint64(e[16:24])),
			},
		})
	}
	return scratch, nil
}

// ObsCount reads the batch size out of a binary observation payload
// without decoding the entries (for metrics and replay accounting).
func ObsCount(payload []byte) (int, error) {
	if !IsObsPayload(payload) || len(payload) < obsHeaderSize {
		return 0, errObsMagic
	}
	return int(binary.LittleEndian.Uint32(payload[4:8])), nil
}

// Hello payload: u16-length-prefixed stream ID, then u16-length-prefixed
// tracking session ID (empty when the stream carries only observation
// batches).

// AppendHello encodes a hello payload onto buf.
func AppendHello(buf []byte, streamID, sessionID string) []byte {
	buf = appendString(buf, streamID)
	return appendString(buf, sessionID)
}

// DecodeHello decodes a hello payload. The returned strings are copies;
// hellos are once-per-connection, so this is off the hot path.
func DecodeHello(payload []byte) (streamID, sessionID string, err error) {
	streamID, payload, err = decodeString(payload)
	if err != nil {
		return "", "", fmt.Errorf("wire: hello stream id: %w", err)
	}
	sessionID, payload, err = decodeString(payload)
	if err != nil {
		return "", "", fmt.Errorf("wire: hello session id: %w", err)
	}
	if len(payload) != 0 {
		return "", "", errors.New("wire: hello payload has trailing bytes")
	}
	return streamID, sessionID, nil
}

// Ack/HelloAck payload: u32 credit window.

// AppendWindow encodes an ack's credit-window payload onto buf.
func AppendWindow(buf []byte, window uint32) []byte {
	var w [4]byte
	binary.LittleEndian.PutUint32(w[:], window)
	return append(buf, w[:]...)
}

// DecodeWindow decodes an ack's credit-window payload.
func DecodeWindow(payload []byte) (uint32, error) {
	if len(payload) != 4 {
		return 0, fmt.Errorf("wire: ack window payload is %d bytes, want 4", len(payload))
	}
	return binary.LittleEndian.Uint32(payload), nil
}

// IMU payload: u32 count, then per sample f64 t, accel, compass, gyro.

const imuEntrySize = 32

// AppendIMU encodes an IMU sample batch onto buf.
func AppendIMU(buf []byte, samples []sensors.Sample) []byte {
	var c [4]byte
	binary.LittleEndian.PutUint32(c[:], uint32(len(samples)))
	buf = append(buf, c[:]...)
	for i := range samples {
		var e [imuEntrySize]byte
		binary.LittleEndian.PutUint64(e[0:8], math.Float64bits(samples[i].T))
		binary.LittleEndian.PutUint64(e[8:16], math.Float64bits(samples[i].Accel))
		binary.LittleEndian.PutUint64(e[16:24], math.Float64bits(samples[i].Compass))
		binary.LittleEndian.PutUint64(e[24:32], math.Float64bits(samples[i].Gyro))
		buf = append(buf, e[:]...)
	}
	return buf
}

// DecodeIMU decodes an IMU payload into scratch (reused).
//
//moloc:reuse
func DecodeIMU(payload []byte, scratch []sensors.Sample) ([]sensors.Sample, error) {
	if len(payload) < 4 {
		return nil, errors.New("wire: imu payload shorter than its count")
	}
	count := int(binary.LittleEndian.Uint32(payload[0:4]))
	if len(payload) != 4+count*imuEntrySize {
		return nil, fmt.Errorf("wire: imu payload count %d does not match %d bytes", count, len(payload))
	}
	scratch = scratch[:0]
	for i := 0; i < count; i++ {
		e := payload[4+i*imuEntrySize:]
		scratch = append(scratch, sensors.Sample{
			T:       math.Float64frombits(binary.LittleEndian.Uint64(e[0:8])),
			Accel:   math.Float64frombits(binary.LittleEndian.Uint64(e[8:16])),
			Compass: math.Float64frombits(binary.LittleEndian.Uint64(e[16:24])),
			Gyro:    math.Float64frombits(binary.LittleEndian.Uint64(e[24:32])),
		})
	}
	return scratch, nil
}

// Scan payload: f64 t, u32 count, then per reading u32 AP index + f64
// RSS. Tick payload: f64 t. Fix payload: f64 t, u32 loc, u8 moved.

// AppendScan encodes a scan payload onto buf. rss is indexed by AP.
func AppendScan(buf []byte, t float64, rss []float64) []byte {
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[0:8], math.Float64bits(t))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(rss)))
	buf = append(buf, hdr[:]...)
	for _, v := range rss {
		var e [8]byte
		binary.LittleEndian.PutUint64(e[:], math.Float64bits(v))
		buf = append(buf, e[:]...)
	}
	return buf
}

// DecodeScan decodes a scan payload into scratch (reused).
//
//moloc:reuse
func DecodeScan(payload []byte, scratch []float64) (t float64, rss []float64, err error) {
	if len(payload) < 12 {
		return 0, nil, errors.New("wire: scan payload shorter than its header")
	}
	t = math.Float64frombits(binary.LittleEndian.Uint64(payload[0:8]))
	count := int(binary.LittleEndian.Uint32(payload[8:12]))
	if len(payload) != 12+count*8 {
		return 0, nil, fmt.Errorf("wire: scan payload count %d does not match %d bytes", count, len(payload))
	}
	scratch = scratch[:0]
	for i := 0; i < count; i++ {
		scratch = append(scratch, math.Float64frombits(binary.LittleEndian.Uint64(payload[12+i*8:])))
	}
	return t, scratch, nil
}

// AppendTick encodes a tick payload onto buf.
func AppendTick(buf []byte, t float64) []byte {
	var e [8]byte
	binary.LittleEndian.PutUint64(e[:], math.Float64bits(t))
	return append(buf, e[:]...)
}

// DecodeTick decodes a tick payload.
func DecodeTick(payload []byte) (float64, error) {
	if len(payload) != 8 {
		return 0, fmt.Errorf("wire: tick payload is %d bytes, want 8", len(payload))
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(payload)), nil
}

// AppendFix encodes a fix payload onto buf.
func AppendFix(buf []byte, t float64, loc int, moved bool) []byte {
	var e [13]byte
	binary.LittleEndian.PutUint64(e[0:8], math.Float64bits(t))
	binary.LittleEndian.PutUint32(e[8:12], uint32(loc))
	if moved {
		e[12] = 1
	}
	return append(buf, e[:]...)
}

// DecodeFix decodes a fix payload.
func DecodeFix(payload []byte) (t float64, loc int, moved bool, err error) {
	if len(payload) != 13 {
		return 0, 0, false, fmt.Errorf("wire: fix payload is %d bytes, want 13", len(payload))
	}
	t = math.Float64frombits(binary.LittleEndian.Uint64(payload[0:8]))
	loc = int(int32(binary.LittleEndian.Uint32(payload[8:12])))
	return t, loc, payload[12] != 0, nil
}

func appendString(buf []byte, s string) []byte {
	var l [2]byte
	binary.LittleEndian.PutUint16(l[:], uint16(len(s)))
	buf = append(buf, l[:]...)
	return append(buf, s...)
}

func decodeString(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, errors.New("wire: string shorter than its length prefix")
	}
	n := int(binary.LittleEndian.Uint16(b[0:2]))
	if len(b) < 2+n {
		return "", nil, errors.New("wire: string extends past end of payload")
	}
	return string(b[2 : 2+n]), b[2+n:], nil
}
