// Replication payload codecs. A follower opens a replication stream on
// the leader's stream listener with FrameReplHello naming the highest
// WAL sequence it holds; the leader bootstraps it over FrameCheckpointChunk
// if its cursor has been truncated away, then tails the WAL as
// FrameWALSegment frames (record payloads verbatim, Seq = WAL sequence).
// The follower acks cumulatively with FrameReplAck after its own covering
// fsync, and the leader publishes its position with FramePublish as a
// heartbeat. Same fixed-width little-endian style as payload.go.
package wire

import (
	"encoding/binary"
	"fmt"
)

// replHelloSize is the fixed ReplHello payload: lastSeq u64 + window u32.
const replHelloSize = 12

// AppendReplHello encodes a replication hello: lastSeq is the highest
// WAL sequence the follower has applied (0 for a blank follower),
// window the number of unacked records it will buffer.
func AppendReplHello(buf []byte, lastSeq uint64, window uint32) []byte {
	var b [replHelloSize]byte
	binary.LittleEndian.PutUint64(b[0:8], lastSeq)
	binary.LittleEndian.PutUint32(b[8:12], window)
	return append(buf, b[:]...)
}

// DecodeReplHello decodes a ReplHello payload.
func DecodeReplHello(p []byte) (lastSeq uint64, window uint32, err error) {
	if len(p) != replHelloSize {
		return 0, 0, fmt.Errorf("wire: repl hello payload is %d bytes, want %d", len(p), replHelloSize)
	}
	return binary.LittleEndian.Uint64(p[0:8]), binary.LittleEndian.Uint32(p[8:12]), nil
}

// chunkHeaderSize prefixes every CheckpointChunk payload: the chunked
// checkpoint's covered WAL sequence u64 + last-chunk flag u8.
const chunkHeaderSize = 9

// AppendCheckpointChunk encodes one bootstrap chunk. ckptSeq is the WAL
// sequence the full checkpoint covers (identical across all chunks of
// one transfer — a mismatch means the transfer was interleaved and the
// follower must drop the connection); last marks the final chunk.
func AppendCheckpointChunk(buf []byte, ckptSeq uint64, last bool, chunk []byte) []byte {
	var b [chunkHeaderSize]byte
	binary.LittleEndian.PutUint64(b[0:8], ckptSeq)
	if last {
		b[8] = 1
	}
	buf = append(buf, b[:]...)
	return append(buf, chunk...)
}

// DecodeCheckpointChunk decodes a CheckpointChunk payload. The chunk
// aliases p — copy it to retain it past the read buffer's reuse.
func DecodeCheckpointChunk(p []byte) (ckptSeq uint64, last bool, chunk []byte, err error) {
	if len(p) < chunkHeaderSize {
		return 0, false, nil, fmt.Errorf("wire: checkpoint chunk payload is %d bytes, want >= %d", len(p), chunkHeaderSize)
	}
	if p[8] > 1 {
		return 0, false, nil, fmt.Errorf("wire: checkpoint chunk last flag is %d, want 0 or 1", p[8])
	}
	return binary.LittleEndian.Uint64(p[0:8]), p[8] == 1, p[chunkHeaderSize:], nil
}

// publishSize is the fixed Publish payload: the leader's WAL tail
// sequence u64 + its newest checkpoint's covered sequence u64.
const publishSize = 16

// AppendPublish encodes a leader position announcement: lastSeq is the
// highest sequence in the leader's WAL, ckptSeq the coverage of its
// newest checkpoint (0 when it has none).
func AppendPublish(buf []byte, lastSeq, ckptSeq uint64) []byte {
	var b [publishSize]byte
	binary.LittleEndian.PutUint64(b[0:8], lastSeq)
	binary.LittleEndian.PutUint64(b[8:16], ckptSeq)
	return append(buf, b[:]...)
}

// DecodePublish decodes a Publish payload.
func DecodePublish(p []byte) (lastSeq, ckptSeq uint64, err error) {
	if len(p) != publishSize {
		return 0, 0, fmt.Errorf("wire: publish payload is %d bytes, want %d", len(p), publishSize)
	}
	return binary.LittleEndian.Uint64(p[0:8]), binary.LittleEndian.Uint64(p[8:16]), nil
}
