// Client is the phone side of the streaming protocol: it pipelines
// observation batches under the server's credit window, retains every
// unacknowledged frame, and on reconnect resumes from the server's
// last-acked sequence — resending exactly the frames whose durability
// was never confirmed. Delivery is therefore at-least-once: a crash
// between append and ack may hand the server a duplicate, never a loss.
package wire

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"moloc/internal/motiondb"
	"moloc/internal/sensors"
)

// ClientOptions tune dialing and resilience; the zero value is usable.
type ClientOptions struct {
	// SessionID scopes IMU/scan/tick frames to a tracking session
	// created over the HTTP API. Empty for observation-only streams.
	SessionID string
	// RedialAttempts bounds reconnection tries per send (0 = 1: one
	// redial, then fail).
	RedialAttempts int
	// RedialWait is the pause between reconnection tries.
	RedialWait time.Duration
	// MaxPayload caps decoded frame payloads (0 = DefaultMaxPayload).
	MaxPayload int
	// MaxPending bounds the retransmit buffer: the most sent-but-unacked
	// observation frames the client retains for resend-on-resume, even
	// when the server advertises a larger credit window (0 =
	// DefaultMaxPending). Senders block at the bound, so per-stream
	// memory stays capped no matter what window the server offers.
	MaxPending int
	// Dial overrides net.Dial, e.g. for in-process benchmarks.
	Dial func() (net.Conn, error)
	// OnFix receives server-pushed fixes: when the scoped session was
	// created with "paced":true, the server ticks it on its own wheel
	// and pushes resulting fixes as unsolicited Fix frames (sequence 0,
	// never confused with a Tick reply). Called from the client's reader
	// goroutine without the client lock held — the callback may call
	// back into the client but must not block for long (it stalls ack
	// processing for this connection). Nil drops pushed fixes.
	OnFix func(t float64, loc int, moved bool)
}

// pendingFrame is one sent-but-unacked observation batch. The payload
// buffer is owned by the client and recycled once the frame is acked.
type pendingFrame struct {
	seq     uint64
	payload []byte
}

// tickReply is the server's answer to one tick frame.
type tickReply struct {
	ok    bool // false = NoFix
	t     float64
	loc   int
	moved bool
	err   error
}

// Client streams frames to one molocd stream listener. Safe for use
// from one goroutine; the internal reader goroutine is coordinated
// through the mutex.
type Client struct {
	addr     string
	streamID string
	opts     ClientOptions

	mu      sync.Mutex
	cond    *sync.Cond // broadcast on ack progress, window change, conn death
	conn    net.Conn
	wr      *Writer
	connGen int   // increments per successful dial; stale readers exit quietly
	dead    bool  // current conn is known broken; redial before next send
	lastErr error // why the current conn died (diagnostics only)
	closed  bool

	nextSeq uint64 // next observation frame sequence to assign
	acked   uint64 // highest cumulative ack received
	window  uint32 // server's advertised credit window
	pending []pendingFrame
	free    [][]byte // recycled payload buffers

	ticks   map[uint64]chan tickReply
	tickSeq uint64

	resumes int // completed reconnect-with-resume handshakes
	wg      sync.WaitGroup
}

// errClosed reports use after Close.
var errClosed = errors.New("wire: client is closed")

// DefaultMaxPending caps the retransmit buffer when
// ClientOptions.MaxPending is zero.
const DefaultMaxPending = 1024

// ErrResumeGap reports a reconnect whose hello-ack resume point went
// backwards past frames the client has already released: the server's
// acked sequence is below what this client saw acknowledged (its
// durable state regressed — a wiped data dir, a different instance
// behind the same address), or above what this client ever sent (a
// stream-ID collision). Either way the retransmit buffer cannot close
// the gap, so the stream cannot safely resume under this identity.
var ErrResumeGap = errors.New("wire: resume gap: server ack state does not match this stream")

// DialStream connects, performs the hello handshake, and returns a
// ready client. streamID is the resumable stream identity: reconnects
// under the same ID resume from the server's last acknowledged frame.
func DialStream(addr, streamID string, opts ClientOptions) (*Client, error) {
	c := &Client{
		addr:     addr,
		streamID: streamID,
		opts:     opts,
		nextSeq:  1,
		ticks:    make(map[uint64]chan tickReply),
	}
	c.cond = sync.NewCond(&c.mu)
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.redialLocked(); err != nil {
		return nil, err
	}
	return c, nil
}

// redialLocked (re)establishes the connection: dial, hello, helloAck,
// drop pending frames the server already has, queue the rest for
// resend. Called with c.mu held.
func (c *Client) redialLocked() error {
	if c.conn != nil {
		//lint:ignore errdrop the old connection is already considered dead
		_ = c.conn.Close()
		c.conn = nil
	}
	var conn net.Conn
	var err error
	if c.opts.Dial != nil {
		conn, err = c.opts.Dial()
	} else {
		conn, err = net.Dial("tcp", c.addr)
	}
	if err != nil {
		return err
	}
	wr := NewWriter(conn)
	rd := NewReader(conn, c.opts.MaxPayload)
	wr.WriteFrame(FrameHello, 0, AppendHello(nil, c.streamID, c.opts.SessionID))
	if err := wr.Flush(); err != nil {
		//lint:ignore errdrop the dial already failed; the close error cannot add anything
		_ = conn.Close()
		return err
	}
	fr, err := rd.ReadFrame()
	if err != nil {
		//lint:ignore errdrop the handshake already failed; the close error cannot add anything
		_ = conn.Close()
		return err
	}
	switch fr.Type {
	case FrameHelloAck:
	case FrameError:
		//lint:ignore errdrop the server refused the hello; the close error cannot add anything
		_ = conn.Close()
		return fmt.Errorf("wire: server refused hello: %s", fr.Payload)
	default:
		//lint:ignore errdrop the handshake already failed; the close error cannot add anything
		_ = conn.Close()
		return fmt.Errorf("wire: expected hello-ack, got frame type %d", fr.Type)
	}
	window, err := DecodeWindow(fr.Payload)
	if err != nil {
		//lint:ignore errdrop the handshake already failed; the close error cannot add anything
		_ = conn.Close()
		return err
	}
	serverAcked := fr.Seq

	resumed := c.connGen > 0 // any dial after the first resumes the stream
	if resumed && serverAcked >= c.nextSeq {
		// The server claims acks for frames this client never sent: a
		// stream-identity collision (two clients sharing an ID, or a
		// stale address answering for another deployment). Refuse rather
		// than resume into someone else's history. A resume point *below*
		// c.acked is not a gap — a restarted server's registry starts
		// empty and the unacked tail simply resends (at-least-once).
		//lint:ignore errdrop the resume is being refused; the close error cannot add anything
		_ = conn.Close()
		return fmt.Errorf("wire: server resume point %d vs client acked %d, next seq %d: %w",
			serverAcked, c.acked, c.nextSeq, ErrResumeGap)
	}
	c.conn = conn
	c.wr = wr
	c.window = window
	c.dead = false
	c.connGen++
	if serverAcked > c.acked {
		c.acked = serverAcked
		if serverAcked >= c.nextSeq {
			// First dial against a stream that already has durable
			// history (a restarted sender reusing its identity): adopt
			// the server's position so new frames extend it.
			c.nextSeq = serverAcked + 1
		}
	}
	c.releaseAckedLocked()
	// Resend every frame the server has not confirmed, in order.
	for i := range c.pending {
		c.wr.WriteFrame(FrameObsBatch, c.pending[i].seq, c.pending[i].payload)
	}
	if len(c.pending) > 0 {
		if err := c.wr.Flush(); err != nil {
			c.markDeadLocked(err)
			return err
		}
	}
	if resumed {
		c.resumes++
	}

	// Every tick in flight on the old connection lost its reply.
	for seq, ch := range c.ticks {
		ch <- tickReply{err: errors.New("wire: connection lost before tick reply")}
		delete(c.ticks, seq)
	}

	c.wg.Add(1)
	go c.readLoop(conn, rd, c.connGen)
	return nil
}

// readLoop drains server frames for one connection generation: acks
// advance the window and recycle pending buffers; fix/no-fix frames
// answer waiting ticks. It exits when its connection dies or the client
// closes, and is joined by Close through the WaitGroup.
func (c *Client) readLoop(conn net.Conn, rd *Reader, gen int) {
	defer c.wg.Done()
	for {
		fr, err := rd.ReadFrame()
		c.mu.Lock()
		if c.closed || gen != c.connGen {
			c.mu.Unlock()
			return
		}
		if err != nil {
			c.markDeadLocked(err)
			c.mu.Unlock()
			return
		}
		switch fr.Type {
		case FrameAck:
			if w, werr := DecodeWindow(fr.Payload); werr == nil {
				c.window = w
			}
			if fr.Seq > c.acked {
				c.acked = fr.Seq
			}
			c.releaseAckedLocked()
			c.cond.Broadcast()
		case FrameFix:
			if ch, ok := c.ticks[fr.Seq]; ok {
				delete(c.ticks, fr.Seq)
				t, loc, moved, derr := DecodeFix(fr.Payload)
				ch <- tickReply{ok: true, t: t, loc: loc, moved: moved, err: derr}
			} else if c.opts.OnFix != nil {
				// Unsolicited fix: a server-paced push, not a tick reply.
				// Deliver outside the lock so the callback can use the
				// client without deadlocking.
				if t, loc, moved, derr := DecodeFix(fr.Payload); derr == nil {
					c.mu.Unlock()
					c.opts.OnFix(t, loc, moved)
					c.mu.Lock()
					if c.closed || gen != c.connGen {
						c.mu.Unlock()
						return
					}
				}
			}
		case FrameNoFix:
			if ch, ok := c.ticks[fr.Seq]; ok {
				delete(c.ticks, fr.Seq)
				ch <- tickReply{ok: false}
			}
		case FrameError:
			err := fmt.Errorf("wire: server error: %s", fr.Payload)
			if ch, ok := c.ticks[fr.Seq]; ok {
				delete(c.ticks, fr.Seq)
				ch <- tickReply{err: err}
			}
			c.markDeadLocked(err)
			c.mu.Unlock()
			return
		}
		c.mu.Unlock()
	}
}

// markDeadLocked records a broken connection and wakes every waiter so
// blocked senders can trigger a redial.
func (c *Client) markDeadLocked(err error) {
	c.lastErr = err
	c.dead = true
	if c.conn != nil {
		//lint:ignore errdrop the connection is being declared dead because of err; err is what matters
		_ = c.conn.Close()
	}
	c.cond.Broadcast()
}

// releaseAckedLocked recycles the payload buffers of every pending
// frame now covered by the cumulative ack.
func (c *Client) releaseAckedLocked() {
	n := 0
	for n < len(c.pending) && c.pending[n].seq <= c.acked {
		c.free = append(c.free, c.pending[n].payload[:0])
		n++
	}
	if n > 0 {
		c.pending = c.pending[:copy(c.pending, c.pending[n:])]
	}
}

// ensureConnLocked redials (with the configured retry budget) when the
// connection is known broken.
func (c *Client) ensureConnLocked() error {
	if c.closed {
		return errClosed
	}
	if c.conn != nil && !c.dead {
		return nil
	}
	attempts := c.opts.RedialAttempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 && c.opts.RedialWait > 0 {
			c.mu.Unlock()
			time.Sleep(c.opts.RedialWait)
			c.mu.Lock()
			if c.closed {
				return errClosed
			}
		}
		if err = c.redialLocked(); err == nil {
			return nil
		}
	}
	return fmt.Errorf("wire: redial failed after %d attempts: %w", attempts, err)
}

// sendLimitLocked is the effective credit: the server's advertised
// window clamped to the client's retransmit-buffer bound.
func (c *Client) sendLimitLocked() int {
	limit := int(c.window)
	bound := c.opts.MaxPending
	if bound <= 0 {
		bound = DefaultMaxPending
	}
	if limit > bound {
		limit = bound
	}
	return limit
}

// SendObservations encodes one batch, waits for credit, and pipelines
// the frame. It blocks while the number of unacked frames meets the
// server's advertised window, and transparently reconnects (resuming
// from the last ack) when the connection has died. The batch is copied
// into a client-owned buffer, so the caller may reuse obs immediately.
func (c *Client) SendObservations(obs []motiondb.Observation) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.ensureConnLocked(); err != nil {
		return err
	}
	// Credit gate: window counts unacked frames the server will buffer,
	// clamped by MaxPending so the retransmit buffer stays bounded even
	// under an extravagant server window.
	for !c.dead && !c.closed && c.window > 0 && len(c.pending) >= c.sendLimitLocked() {
		c.cond.Wait()
	}
	if c.window == 0 && !c.dead {
		// A zero window is the server telling us to back off entirely;
		// poll by waiting for the next ack (which re-advertises credit).
		for !c.dead && !c.closed && c.window == 0 {
			c.cond.Wait()
		}
	}
	if c.closed {
		return errClosed
	}
	if c.dead {
		if err := c.ensureConnLocked(); err != nil {
			return err
		}
	}

	var buf []byte
	if n := len(c.free); n > 0 {
		buf, c.free = c.free[n-1], c.free[:n-1]
	}
	buf = AppendObservations(buf, obs)
	seq := c.nextSeq
	c.nextSeq++
	c.pending = append(c.pending, pendingFrame{seq: seq, payload: buf})
	c.wr.WriteFrame(FrameObsBatch, seq, buf)
	if err := c.wr.Flush(); err != nil {
		c.markDeadLocked(err)
		// The frame is pending; the next send's redial will resend it.
		return nil
	}
	return nil
}

// SendIMU streams an IMU batch for the scoped tracking session.
// Fire-and-forget: no ack, no durability.
func (c *Client) SendIMU(samples []sensors.Sample) error {
	return c.sendSessionFrame(FrameIMUBatch, 0, func(buf []byte) []byte {
		return AppendIMU(buf, samples)
	})
}

// SendScan streams one WiFi scan for the scoped tracking session.
func (c *Client) SendScan(t float64, rss []float64) error {
	return c.sendSessionFrame(FrameScan, 0, func(buf []byte) []byte {
		return AppendScan(buf, t, rss)
	})
}

func (c *Client) sendSessionFrame(typ uint8, seq uint64, enc func([]byte) []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.ensureConnLocked(); err != nil {
		return err
	}
	var buf []byte
	if n := len(c.free); n > 0 {
		buf, c.free = c.free[n-1], c.free[:n-1]
	}
	buf = enc(buf)
	c.wr.WriteFrame(typ, seq, buf)
	c.free = append(c.free, buf[:0])
	err := c.wr.Flush()
	if err != nil {
		c.markDeadLocked(err)
	}
	return err
}

// Tick advances the scoped session's clock and waits for the server's
// fix (ok=false when the interval produced none).
func (c *Client) Tick(t float64) (loc int, moved, ok bool, err error) {
	c.mu.Lock()
	if cerr := c.ensureConnLocked(); cerr != nil {
		c.mu.Unlock()
		return 0, false, false, cerr
	}
	c.tickSeq++
	seq := c.tickSeq
	ch := make(chan tickReply, 1)
	c.ticks[seq] = ch
	c.wr.WriteFrame(FrameTick, seq, AppendTick(nil, t))
	if err := c.wr.Flush(); err != nil {
		delete(c.ticks, seq)
		c.markDeadLocked(err)
		c.mu.Unlock()
		return 0, false, false, err
	}
	c.mu.Unlock()
	rep := <-ch
	return rep.loc, rep.moved, rep.ok, rep.err
}

// WaitAcked blocks until every sent observation frame has been
// acknowledged durable, reconnecting and resending as needed.
func (c *Client) WaitAcked() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.pending) > 0 {
		if c.closed {
			return errClosed
		}
		if c.dead {
			if err := c.ensureConnLocked(); err != nil {
				return err
			}
		}
		c.cond.Wait()
	}
	return nil
}

// Acked returns the highest frame sequence the server has confirmed
// durable.
func (c *Client) Acked() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.acked
}

// Resumes reports how many reconnect-with-resume handshakes have
// completed (0 on a connection that never dropped).
func (c *Client) Resumes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resumes
}

// Pending reports the number of sent-but-unacked observation frames.
func (c *Client) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// Close tears the connection down and joins the reader goroutine.
// Unacked frames are dropped — call WaitAcked first when delivery
// matters.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	if c.conn != nil {
		//lint:ignore errdrop Close drops unacked frames by contract; a close error adds nothing
		_ = c.conn.Close()
	}
	for seq, ch := range c.ticks {
		ch <- tickReply{err: errClosed}
		delete(c.ticks, seq)
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	c.wg.Wait()
	return nil
}
