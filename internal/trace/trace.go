// Package trace generates the walking traces MoLoc is trained and
// evaluated on: random walks along the floor plan's aisles by users with
// diverse heights, weights, and walking speeds, rendered into continuous
// IMU sample streams. A trace is a sequence of legs between adjacent
// reference locations; each leg is one localization interval, matching
// the paper's trace-driven methodology where users mark every reference
// location they pass (Sec. VI-A).
package trace

import (
	"fmt"

	"moloc/internal/floorplan"
	"moloc/internal/motion"
	"moloc/internal/sensors"
	"moloc/internal/stats"
)

// UserProfile describes one walker.
type UserProfile struct {
	Name     string  `json:"name"`
	HeightM  float64 `json:"height_m"`
	WeightKg float64 `json:"weight_kg"`
	// SpeedMps is the preferred walking speed in meters per second.
	SpeedMps float64 `json:"speed_mps"`
	// GaitBias is the user's systematic relative deviation from the
	// height/weight step-length model (individual gait). The motion
	// pipeline never sees it; it produces the residual offset errors the
	// motion database shows in Fig. 6(b).
	GaitBias float64 `json:"gait_bias"`
}

// DefaultUsers returns four walkers with diverse height and walking
// speed, standing in for the paper's four volunteers.
func DefaultUsers() []UserProfile {
	return []UserProfile{
		{Name: "u1", HeightM: 1.62, WeightKg: 55, SpeedMps: 1.15, GaitBias: 0.045},
		{Name: "u2", HeightM: 1.71, WeightKg: 68, SpeedMps: 1.30, GaitBias: -0.03},
		{Name: "u3", HeightM: 1.80, WeightKg: 78, SpeedMps: 1.45, GaitBias: 0.02},
		{Name: "u4", HeightM: 1.88, WeightKg: 90, SpeedMps: 1.35, GaitBias: -0.055},
	}
}

// Leg is one localization interval: the user walks from reference
// location From to the adjacent location To during [T0, T1], producing
// the IMU samples recorded on the way.
type Leg struct {
	From    int              `json:"from"`
	To      int              `json:"to"`
	T0      float64          `json:"t0"`
	T1      float64          `json:"t1"`
	Samples []sensors.Sample `json:"samples"`
}

// Trace is one crowdsourced walk.
type Trace struct {
	User   UserProfile    `json:"user"`
	Device sensors.Device `json:"device"`
	// TrueStepLen is the user's actual step length on this walk; the
	// motion pipeline never sees it and estimates its own from
	// height/weight.
	TrueStepLen float64 `json:"true_step_len"`
	Start       int     `json:"start"`
	Legs        []Leg   `json:"legs"`
}

// Visits returns the ground-truth reference sequence including the
// start: Start, Legs[0].To, Legs[1].To, ...
func (tr *Trace) Visits() []int {
	out := make([]int, 0, len(tr.Legs)+1)
	out = append(out, tr.Start)
	for _, l := range tr.Legs {
		out = append(out, l.To)
	}
	return out
}

// Config controls trace generation.
type Config struct {
	// NumLegs is the number of legs per trace.
	NumLegs int
	// SpeedJitter is the relative per-leg speed variation (0.05 = 5%).
	SpeedJitter float64
	// StepLenJitter is the relative per-trace deviation of the true step
	// length from the height/weight model, covering individual gait.
	StepLenJitter float64
	// BacktrackProb is the probability of returning along the edge just
	// walked when alternatives exist; low values make walks cover more
	// of the plan.
	BacktrackProb float64
	// PauseProb is the probability of standing still briefly at the
	// start of a leg, and PauseMaxSec bounds the pause length.
	PauseProb   float64
	PauseMaxSec float64
}

// NewConfig returns defaults: 16-leg traces (about a minute of walking
// each; the paper's volunteers walked over half an hour and its 184
// traces cover each location more than 30 times), gentle speed and gait
// variation, and occasional pauses.
func NewConfig() Config {
	return Config{
		NumLegs:       16,
		SpeedJitter:   0.05,
		StepLenJitter: 0.02,
		BacktrackProb: 0.15,
		PauseProb:     0.1,
		PauseMaxSec:   2,
	}
}

// Validate rejects unusable generation configuration.
func (c Config) Validate() error {
	if c.NumLegs < 1 {
		return fmt.Errorf("trace: NumLegs must be >= 1, got %d", c.NumLegs)
	}
	if c.SpeedJitter < 0 || c.SpeedJitter >= 1 {
		return fmt.Errorf("trace: SpeedJitter must be in [0,1), got %g", c.SpeedJitter)
	}
	if c.BacktrackProb < 0 || c.BacktrackProb > 1 {
		return fmt.Errorf("trace: BacktrackProb must be in [0,1], got %g", c.BacktrackProb)
	}
	if c.PauseProb < 0 || c.PauseProb > 1 {
		return fmt.Errorf("trace: PauseProb must be in [0,1], got %g", c.PauseProb)
	}
	return nil
}

// Generator produces traces over one plan.
type Generator struct {
	plan  *floorplan.Plan
	graph *floorplan.WalkGraph
	gen   *sensors.Generator
	mcfg  motion.Config
	cfg   Config
}

// NewGenerator builds a trace generator.
func NewGenerator(plan *floorplan.Plan, graph *floorplan.WalkGraph,
	gen *sensors.Generator, mcfg motion.Config, cfg Config) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if graph.NumNodes() != plan.NumLocs() {
		return nil, fmt.Errorf("trace: graph has %d nodes, plan has %d locations",
			graph.NumNodes(), plan.NumLocs())
	}
	return &Generator{plan: plan, graph: graph, gen: gen, mcfg: mcfg, cfg: cfg}, nil
}

// Generate produces one trace for the given user. The walk starts at a
// random reference location and takes cfg.NumLegs random steps along the
// walk graph, preferring not to backtrack. All randomness comes from
// rng, so traces are reproducible.
func (g *Generator) Generate(user UserProfile, rng *stats.RNG) *Trace {
	dev := sensors.NewDevice(g.gen.Params(), rng)
	stepLen := motion.StepLength(g.mcfg, user.HeightM, user.WeightKg) *
		(1 + user.GaitBias) * (1 + rng.Norm(0, g.cfg.StepLenJitter))
	tr := &Trace{
		User:        user,
		Device:      dev,
		TrueStepLen: stepLen,
		Start:       1 + rng.Intn(g.plan.NumLocs()),
	}

	cur := tr.Start
	prev := 0
	now := 0.0
	phase := 0.0
	for legIdx := 0; legIdx < g.cfg.NumLegs; legIdx++ {
		next := g.pickNext(cur, prev, rng)
		if next == 0 {
			break // isolated node; cannot continue the walk
		}
		heading := g.plan.LocBearing(cur, next)
		dist := g.plan.LocDist(cur, next)
		speed := user.SpeedMps * (1 + rng.Uniform(-g.cfg.SpeedJitter, g.cfg.SpeedJitter))
		stepFreq := speed / stepLen
		duration := dist / speed

		t0 := now
		var samples []sensors.Sample
		if g.cfg.PauseProb > 0 && rng.Bool(g.cfg.PauseProb) {
			pause := rng.Uniform(0.3, g.cfg.PauseMaxSec)
			samples = g.gen.Stand(samples, now, pause, heading, dev, rng)
			now += pause
		}
		samples, phase = g.gen.Walk(samples, now, duration, stepFreq, heading, dev, phase, rng)
		now += duration

		tr.Legs = append(tr.Legs, Leg{
			From: cur, To: next, T0: t0, T1: now, Samples: samples,
		})
		prev, cur = cur, next
	}
	return tr
}

// GenerateBatch produces n traces cycling through the given users.
func (g *Generator) GenerateBatch(users []UserProfile, n int, rng *stats.RNG) []*Trace {
	out := make([]*Trace, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, g.Generate(users[i%len(users)], rng))
	}
	return out
}

// pickNext chooses the next reference location from cur's neighbors,
// avoiding the node just visited with probability 1-BacktrackProb when
// alternatives exist. It returns 0 when cur has no neighbors.
func (g *Generator) pickNext(cur, prev int, rng *stats.RNG) int {
	neighbors := g.graph.Neighbors(cur)
	if len(neighbors) == 0 {
		return 0
	}
	candidates := make([]int, 0, len(neighbors))
	for _, e := range neighbors {
		if e.To != prev {
			candidates = append(candidates, e.To)
		}
	}
	if len(candidates) == 0 || (prev != 0 && rng.Bool(g.cfg.BacktrackProb)) {
		return prev
	}
	return candidates[rng.Intn(len(candidates))]
}

// GroundTruthLegRLM returns the map-true RLM of a leg: the bearing and
// straight-line distance between its true endpoints. Tests and the
// Fig. 6 validation compare extracted RLMs against it.
func (g *Generator) GroundTruthLegRLM(l Leg) motion.RLM {
	dir, off := floorplan.GroundTruthRLM(g.plan, l.From, l.To)
	return motion.RLM{Dir: dir, Off: off}
}
