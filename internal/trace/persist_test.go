package trace

import (
	"os"
	"path/filepath"
	"testing"

	"moloc/internal/stats"
)

func TestJSONRoundTrip(t *testing.T) {
	g := mustGenerator(t, NewConfig())
	traces := g.GenerateBatch(DefaultUsers(), 3, stats.NewRNG(1))
	path := filepath.Join(t.TempDir(), "traces.json")
	if err := SaveJSON(traces, path); err != nil {
		t.Fatalf("SaveJSON: %v", err)
	}
	got, err := LoadJSON(path)
	if err != nil {
		t.Fatalf("LoadJSON: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("loaded %d traces", len(got))
	}
	for i := range got {
		if got[i].Start != traces[i].Start || len(got[i].Legs) != len(traces[i].Legs) {
			t.Errorf("trace %d structure changed", i)
		}
		if got[i].User != traces[i].User || got[i].Device != traces[i].Device {
			t.Errorf("trace %d metadata changed", i)
		}
		a := traces[i].Legs[2].Samples[5]
		b := got[i].Legs[2].Samples[5]
		if a != b {
			t.Errorf("trace %d samples changed: %+v vs %+v", i, a, b)
		}
	}
}

func TestLoadJSONErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadJSON(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file should error")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadJSON(bad); err == nil {
		t.Error("malformed JSON should error")
	}
	// Structurally invalid trace: discontinuous legs.
	invalid := filepath.Join(dir, "invalid.json")
	payload := `[{"user":{"name":"x","height_m":1.7,"weight_kg":70,"speed_mps":1.3},
		"device":{},"true_step_len":0.7,"start":1,
		"legs":[{"from":5,"to":6,"t0":0,"t1":3,"samples":[]}]}]`
	if err := os.WriteFile(invalid, []byte(payload), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadJSON(invalid); err == nil {
		t.Error("discontinuous trace should fail validation")
	}
}

func TestValidate(t *testing.T) {
	g := mustGenerator(t, NewConfig())
	tr := g.Generate(DefaultUsers()[0], stats.NewRNG(2))
	if err := tr.Validate(); err != nil {
		t.Errorf("generated trace should validate: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Trace)
	}{
		{"bad start", func(tr *Trace) { tr.Start = 0 }},
		{"bad step length", func(tr *Trace) { tr.TrueStepLen = 0 }},
		{"discontinuity", func(tr *Trace) { tr.Legs[1].From = 99 }},
		{"empty interval", func(tr *Trace) { tr.Legs[0].T1 = tr.Legs[0].T0 }},
		{"bad destination", func(tr *Trace) { tr.Legs[0].To = -1; tr.Legs[1].From = -1 }},
		{"sample outside interval", func(tr *Trace) { tr.Legs[0].Samples[0].T = 1e9 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cp := g.Generate(DefaultUsers()[0], stats.NewRNG(2))
			tt.mutate(cp)
			if err := cp.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}
