package trace

import (
	"math"
	"testing"

	"moloc/internal/floorplan"
	"moloc/internal/geom"
	"moloc/internal/motion"
	"moloc/internal/sensors"
	"moloc/internal/stats"
)

func mustGenerator(t *testing.T, cfg Config) *Generator {
	t.Helper()
	plan := floorplan.OfficeHall()
	graph := floorplan.BuildWalkGraph(plan, floorplan.OfficeHallAdjDist)
	sg, err := sensors.NewGenerator(sensors.NewParams())
	if err != nil {
		t.Fatalf("sensors.NewGenerator: %v", err)
	}
	g, err := NewGenerator(plan, graph, sg, motion.NewConfig(), cfg)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	return g
}

func TestConfigValidate(t *testing.T) {
	if err := NewConfig().Validate(); err != nil {
		t.Errorf("defaults should validate: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.NumLegs = 0 },
		func(c *Config) { c.SpeedJitter = 1 },
		func(c *Config) { c.BacktrackProb = -0.1 },
		func(c *Config) { c.PauseProb = 2 },
	}
	for i, mutate := range bad {
		c := NewConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestDefaultUsersDiverse(t *testing.T) {
	users := DefaultUsers()
	if len(users) != 4 {
		t.Fatalf("want 4 users, got %d", len(users))
	}
	seen := map[string]bool{}
	for _, u := range users {
		if seen[u.Name] {
			t.Errorf("duplicate user %s", u.Name)
		}
		seen[u.Name] = true
		if u.HeightM < 1.4 || u.HeightM > 2.1 || u.SpeedMps <= 0 {
			t.Errorf("implausible profile %+v", u)
		}
	}
}

func TestGenerateStructure(t *testing.T) {
	g := mustGenerator(t, NewConfig())
	tr := g.Generate(DefaultUsers()[0], stats.NewRNG(1))
	if want := NewConfig().NumLegs; len(tr.Legs) != want {
		t.Fatalf("legs = %d, want %d", len(tr.Legs), want)
	}
	if tr.Start < 1 || tr.Start > 28 {
		t.Errorf("start = %d out of range", tr.Start)
	}
	graph := floorplan.BuildWalkGraph(floorplan.OfficeHall(), floorplan.OfficeHallAdjDist)
	prevTo := tr.Start
	prevT1 := 0.0
	for i, l := range tr.Legs {
		if l.From != prevTo {
			t.Errorf("leg %d: From=%d, want %d (continuity)", i, l.From, prevTo)
		}
		if !graph.Adjacent(l.From, l.To) {
			t.Errorf("leg %d: %d-%d not adjacent", i, l.From, l.To)
		}
		if l.T0 != prevT1 {
			t.Errorf("leg %d: T0=%v, want %v (contiguous time)", i, l.T0, prevT1)
		}
		if l.T1 <= l.T0 {
			t.Errorf("leg %d: empty interval", i)
		}
		if len(l.Samples) == 0 {
			t.Errorf("leg %d: no samples", i)
		}
		for _, s := range l.Samples {
			if s.T < l.T0-1e-9 || s.T > l.T1+1e-9 {
				t.Fatalf("leg %d: sample at %v outside [%v,%v]", i, s.T, l.T0, l.T1)
			}
		}
		prevTo, prevT1 = l.To, l.T1
	}
}

func TestVisits(t *testing.T) {
	g := mustGenerator(t, NewConfig())
	tr := g.Generate(DefaultUsers()[1], stats.NewRNG(3))
	v := tr.Visits()
	if len(v) != len(tr.Legs)+1 {
		t.Fatalf("visits = %d, want %d", len(v), len(tr.Legs)+1)
	}
	if v[0] != tr.Start {
		t.Error("first visit must be the start")
	}
	for i, l := range tr.Legs {
		if v[i+1] != l.To {
			t.Errorf("visit %d = %d, want %d", i+1, v[i+1], l.To)
		}
	}
}

func TestLegDurationMatchesSpeed(t *testing.T) {
	cfg := NewConfig()
	cfg.PauseProb = 0
	cfg.SpeedJitter = 0
	g := mustGenerator(t, cfg)
	user := DefaultUsers()[2] // 1.45 m/s
	tr := g.Generate(user, stats.NewRNG(5))
	plan := floorplan.OfficeHall()
	for i, l := range tr.Legs {
		wantDur := plan.LocDist(l.From, l.To) / user.SpeedMps
		if math.Abs((l.T1-l.T0)-wantDur) > 1e-9 {
			t.Errorf("leg %d duration = %v, want %v", i, l.T1-l.T0, wantDur)
		}
	}
}

func TestDeterminism(t *testing.T) {
	g := mustGenerator(t, NewConfig())
	a := g.Generate(DefaultUsers()[0], stats.NewRNG(7))
	b := g.Generate(DefaultUsers()[0], stats.NewRNG(7))
	if a.Start != b.Start || len(a.Legs) != len(b.Legs) {
		t.Fatal("structure differs under same seed")
	}
	for i := range a.Legs {
		if a.Legs[i].From != b.Legs[i].From || a.Legs[i].To != b.Legs[i].To {
			t.Fatal("route differs under same seed")
		}
		if a.Legs[i].Samples[3] != b.Legs[i].Samples[3] {
			t.Fatal("samples differ under same seed")
		}
	}
}

func TestGenerateBatchCyclesUsers(t *testing.T) {
	g := mustGenerator(t, NewConfig())
	users := DefaultUsers()
	traces := g.GenerateBatch(users, 10, stats.NewRNG(1))
	if len(traces) != 10 {
		t.Fatalf("batch size = %d", len(traces))
	}
	for i, tr := range traces {
		if tr.User.Name != users[i%4].Name {
			t.Errorf("trace %d user = %s, want %s", i, tr.User.Name, users[i%4].Name)
		}
	}
}

func TestExtractedRLMMatchesGroundTruth(t *testing.T) {
	// End-to-end through the motion pipeline: RLMs extracted from
	// generated legs should be close to the map truth when the heading
	// estimator knows the device offset.
	cfg := NewConfig()
	cfg.PauseProb = 0
	g := mustGenerator(t, cfg)
	mcfg := motion.NewConfig()
	user := DefaultUsers()[1]

	var dirErr, offErr stats.Online
	for seed := int64(0); seed < 15; seed++ {
		tr := g.Generate(user, stats.NewRNG(seed))
		var h motion.HeadingEstimator
		h.Observe(tr.Device.PlacementOffset+tr.Device.Bias, 0) // oracle calibration
		stepLen := motion.StepLength(mcfg, user.HeightM, user.WeightKg)
		for _, l := range tr.Legs {
			rlm, ok := motion.Extract(mcfg, l.Samples, l.T0, l.T1, stepLen, &h)
			if !ok {
				t.Fatalf("seed %d: leg not recognized as walking", seed)
			}
			gt := g.GroundTruthLegRLM(l)
			dirErr.Add(geom.AbsAngleDiff(rlm.Dir, gt.Dir))
			offErr.Add(math.Abs(rlm.Off - gt.Off))
		}
	}
	// Per-leg errors are noisier than the averaged motion-DB entries of
	// Fig. 6, but must stay in a usable band.
	// Systematic magnetic distortion (up to ~19 deg peak) dominates this
	// error; the oracle offset calibration removes only its average.
	if dirErr.Mean() > 11 {
		t.Errorf("mean direction error %.2f deg too large", dirErr.Mean())
	}
	if offErr.Mean() > 0.6 {
		t.Errorf("mean offset error %.2f m too large", offErr.Mean())
	}
}

func TestPausesStillWalkable(t *testing.T) {
	cfg := NewConfig()
	cfg.PauseProb = 1 // every leg starts with a pause
	g := mustGenerator(t, cfg)
	mcfg := motion.NewConfig()
	user := DefaultUsers()[0]
	tr := g.Generate(user, stats.NewRNG(2))
	stepLen := motion.StepLength(mcfg, user.HeightM, user.WeightKg)
	walking := 0
	for _, l := range tr.Legs {
		if _, ok := motion.Extract(mcfg, l.Samples, l.T0, l.T1, stepLen, nil); ok {
			walking++
		}
	}
	if walking < len(tr.Legs)-1 {
		t.Errorf("only %d/%d paused legs recognized as walking", walking, len(tr.Legs))
	}
}

func TestNewGeneratorRejectsMismatchedGraph(t *testing.T) {
	plan := floorplan.OfficeHall()
	other := floorplan.Mall()
	graph := floorplan.BuildWalkGraph(other, floorplan.MallAdjDist)
	sg, err := sensors.NewGenerator(sensors.NewParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewGenerator(plan, graph, sg, motion.NewConfig(), NewConfig()); err == nil {
		t.Error("mismatched graph should be rejected")
	}
	if _, err := NewGenerator(plan, floorplan.BuildWalkGraph(plan, 6), sg,
		motion.NewConfig(), Config{}); err == nil {
		t.Error("invalid config should be rejected")
	}
}
