package trace

import (
	"encoding/json"
	"fmt"
	"os"
)

// SaveJSON writes traces to a JSON file, the format cmd/tracegen emits.
func SaveJSON(traces []*Trace, path string) error {
	data, err := json.MarshalIndent(traces, "", " ")
	if err != nil {
		return fmt.Errorf("trace: marshal: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("trace: write %s: %w", path, err)
	}
	return nil
}

// LoadJSON reads traces written by SaveJSON and validates their
// structure: every leg must continue from the previous one, cover a
// positive time interval, and carry samples within it.
func LoadJSON(path string) ([]*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("trace: read %s: %w", path, err)
	}
	var traces []*Trace
	if err := json.Unmarshal(data, &traces); err != nil {
		return nil, fmt.Errorf("trace: parse %s: %w", path, err)
	}
	for i, tr := range traces {
		if err := tr.Validate(); err != nil {
			return nil, fmt.Errorf("trace: #%d: %w", i, err)
		}
	}
	return traces, nil
}

// Validate checks the trace's structural invariants.
func (tr *Trace) Validate() error {
	if tr.Start < 1 {
		return fmt.Errorf("invalid start location %d", tr.Start)
	}
	if tr.TrueStepLen <= 0 || tr.TrueStepLen > 2 {
		return fmt.Errorf("implausible step length %g", tr.TrueStepLen)
	}
	prev := tr.Start
	prevT := 0.0
	for i, leg := range tr.Legs {
		if leg.From != prev {
			return fmt.Errorf("leg %d starts at %d, previous ended at %d", i, leg.From, prev)
		}
		if leg.To < 1 {
			return fmt.Errorf("leg %d has invalid destination %d", i, leg.To)
		}
		if leg.T1 <= leg.T0 || leg.T0 < prevT-1e-9 {
			return fmt.Errorf("leg %d has invalid interval [%g, %g]", i, leg.T0, leg.T1)
		}
		for _, s := range leg.Samples {
			if s.T < leg.T0-1e-9 || s.T > leg.T1+1e-9 {
				return fmt.Errorf("leg %d sample at %g outside [%g, %g]", i, s.T, leg.T0, leg.T1)
			}
		}
		prev, prevT = leg.To, leg.T1
	}
	return nil
}
