package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"moloc/internal/fingerprint"
	"moloc/internal/floorplan"
	"moloc/internal/motion"
	"moloc/internal/motiondb"
)

// Bundle is a serialized deployment: everything a localization server
// needs to serve fixes, without rebuilding the world. A bundle
// directory holds plan.json, radiomap.json, motiondb.json, and
// bundle.json (metadata + motion configuration).
type Bundle struct {
	Plan   *floorplan.Plan
	FDB    *fingerprint.DB
	MDB    *motiondb.DB
	Motion motion.Config
	// APIdx records which APs of the plan the radio map covers, in
	// order.
	APIdx []int
}

// bundleMeta is the serialized form of the bundle's non-database state.
type bundleMeta struct {
	APIdx  []int         `json:"ap_idx"`
	Motion motion.Config `json:"motion"`
}

const (
	bundlePlanFile  = "plan.json"
	bundleRadioFile = "radiomap.json"
	bundleMotionDB  = "motiondb.json"
	bundleMetaFile  = "bundle.json"
)

// SaveBundle writes the deployment to a directory, creating it if
// needed.
func (d *Deployment) SaveBundle(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("core: create bundle dir: %w", err)
	}
	if err := floorplan.SaveJSON(d.System.Plan, filepath.Join(dir, bundlePlanFile)); err != nil {
		return err
	}
	if err := d.FDB.SaveJSON(filepath.Join(dir, bundleRadioFile)); err != nil {
		return err
	}
	if err := d.System.MDB.SaveJSON(filepath.Join(dir, bundleMotionDB)); err != nil {
		return err
	}
	meta, err := json.MarshalIndent(bundleMeta{
		APIdx:  d.APIdx,
		Motion: d.System.Config.Motion,
	}, "", " ")
	if err != nil {
		return fmt.Errorf("core: marshal bundle meta: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, bundleMetaFile), meta, 0o644); err != nil {
		return fmt.Errorf("core: write bundle meta: %w", err)
	}
	return nil
}

// LoadBundle reads a deployment bundle and validates its pieces agree
// on the number of locations.
func LoadBundle(dir string) (*Bundle, error) {
	plan, err := floorplan.LoadJSON(filepath.Join(dir, bundlePlanFile))
	if err != nil {
		return nil, err
	}
	fdb, err := fingerprint.LoadJSON(filepath.Join(dir, bundleRadioFile))
	if err != nil {
		return nil, err
	}
	mdb, err := motiondb.LoadJSON(filepath.Join(dir, bundleMotionDB))
	if err != nil {
		return nil, err
	}
	raw, err := os.ReadFile(filepath.Join(dir, bundleMetaFile))
	if err != nil {
		return nil, fmt.Errorf("core: read bundle meta: %w", err)
	}
	var meta bundleMeta
	if err := json.Unmarshal(raw, &meta); err != nil {
		return nil, fmt.Errorf("core: parse bundle meta: %w", err)
	}
	if err := meta.Motion.Validate(); err != nil {
		return nil, err
	}
	if fdb.NumLocs() != plan.NumLocs() || mdb.NumLocs() != plan.NumLocs() {
		return nil, fmt.Errorf("core: bundle pieces disagree: plan %d, radio map %d, motion DB %d locations",
			plan.NumLocs(), fdb.NumLocs(), mdb.NumLocs())
	}
	if len(meta.APIdx) != fdb.NumAPs() {
		return nil, fmt.Errorf("core: bundle lists %d APs, radio map has %d",
			len(meta.APIdx), fdb.NumAPs())
	}
	return &Bundle{
		Plan:   plan,
		FDB:    fdb,
		MDB:    mdb,
		Motion: meta.Motion,
		APIdx:  meta.APIdx,
	}, nil
}
