package core

import (
	"os"
	"path/filepath"
	"testing"

	"moloc/internal/eval"
	"moloc/internal/floorplan"
	"moloc/internal/localizer"
)

// smallConfig returns a reduced configuration that keeps the full
// pipeline intact but runs in well under a second.
func smallConfig() Config {
	cfg := NewConfig()
	cfg.NumTrainTraces = 40
	cfg.NumTestTraces = 10
	cfg.Trace.NumLegs = 8
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := NewConfig().Validate(); err != nil {
		t.Errorf("defaults should validate: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.NumTrainTraces = 0 },
		func(c *Config) { c.NumTestTraces = 0 },
		func(c *Config) { c.Users = nil },
		func(c *Config) { c.AdjDist = 0 },
	}
	for i, mutate := range bad {
		c := NewConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestBuildRejectsBadSubConfigs(t *testing.T) {
	cfg := smallConfig()
	cfg.RF.PathLossExp = -1
	if _, err := Build(cfg); err == nil {
		t.Error("invalid RF params should be rejected")
	}
	cfg = smallConfig()
	cfg.Plan = &floorplan.Plan{Width: -1, Height: 1}
	if _, err := Build(cfg); err == nil {
		t.Error("invalid plan should be rejected")
	}
	cfg = smallConfig()
	cfg.AdjDist = 0.5 // disconnects the walk graph
	if _, err := Build(cfg); err == nil {
		t.Error("disconnected walk graph should be rejected")
	}
}

func TestBuildArtifacts(t *testing.T) {
	sys, err := Build(smallConfig())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if sys.Plan.Name != "office-hall" {
		t.Errorf("default plan = %s", sys.Plan.Name)
	}
	if len(sys.TrainTraces) != 40 || len(sys.TestTraces) != 10 {
		t.Errorf("traces = %d/%d", len(sys.TrainTraces), len(sys.TestTraces))
	}
	if len(sys.TestData) != 10 {
		t.Errorf("TestData = %d", len(sys.TestData))
	}
	if sys.MDB == nil || sys.MDB.NumLocs() != 28 {
		t.Fatal("motion DB missing or wrong size")
	}
	// With the map fallback, every walk-graph edge is covered.
	for i := 1; i <= 28; i++ {
		for _, e := range sys.Graph.Neighbors(i) {
			if _, ok := sys.MDB.Lookup(i, e.To); !ok {
				t.Errorf("edge %d-%d uncovered", i, e.To)
			}
		}
	}
	dirErrs, offErrs := sys.MotionDBErrors()
	if len(dirErrs) == 0 || len(offErrs) == 0 {
		t.Error("validation errors should be non-empty")
	}
}

func TestBuildDeterminism(t *testing.T) {
	a, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.TrainTraces[0].Start != b.TrainTraces[0].Start {
		t.Error("trace generation differs under same seed")
	}
	if a.TestData[0].StartEst != b.TestData[0].StartEst {
		t.Error("test processing differs under same seed")
	}
	ae, _ := a.MDB.Lookup(1, 2)
	be, _ := b.MDB.Lookup(1, 2)
	if ae != be {
		t.Error("motion DB differs under same seed")
	}
}

func TestDeploy(t *testing.T) {
	sys, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Deploy(nil); err == nil {
		t.Error("empty AP subset should be rejected")
	}
	dep, err := sys.Deploy([]int{0, 1, 2, 3})
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	if dep.FDB.NumAPs() != 4 {
		t.Errorf("deployed FDB has %d APs", dep.FDB.NumAPs())
	}
	if len(dep.TestData) != 10 {
		t.Errorf("deployed TestData = %d", len(dep.TestData))
	}
	if len(dep.TestData[0].StartFP) != 4 {
		t.Error("test fingerprints should be projected")
	}
	if got := sys.AllAPs(); len(got) != 6 || got[5] != 5 {
		t.Errorf("AllAPs = %v", got)
	}
}

func TestLocalizerConstructors(t *testing.T) {
	sys, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	dep, err := sys.Deploy(sys.AllAPs())
	if err != nil {
		t.Fatal(err)
	}
	if got := dep.NewWiFi().Name(); got != "wifi-nn" {
		t.Errorf("wifi name = %s", got)
	}
	ml, err := dep.NewMoLoc()
	if err != nil || ml.Name() != "moloc" {
		t.Errorf("moloc: %v, %v", ml, err)
	}
	h, err := dep.NewHMM()
	if err != nil || h.Name() != "hmm" {
		t.Errorf("hmm: %v, %v", h, err)
	}
	dr, err := dep.NewDeadReckoning()
	if err != nil || dr.Name() != "dead-reckoning" {
		t.Errorf("dead reckoning: %v, %v", dr, err)
	}
}

func TestEndToEndMoLocBeatsWiFi(t *testing.T) {
	// The headline claim (Fig. 7): MoLoc outperforms plain WiFi
	// fingerprinting, at every AP count.
	cfg := smallConfig()
	cfg.NumTestTraces = 16
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{4, 6} {
		dep, err := sys.Deploy(sys.AllAPs()[:n])
		if err != nil {
			t.Fatal(err)
		}
		ml, err := dep.NewMoLoc()
		if err != nil {
			t.Fatal(err)
		}
		wifi := eval.Summarize(dep.Evaluate(dep.NewWiFi()))
		moloc := eval.Summarize(dep.Evaluate(ml))
		if moloc.Accuracy <= wifi.Accuracy {
			t.Errorf("%d-AP: MoLoc %.2f should beat WiFi %.2f",
				n, moloc.Accuracy, wifi.Accuracy)
		}
		if moloc.MeanErr >= wifi.MeanErr {
			t.Errorf("%d-AP: MoLoc mean %.2f should beat WiFi %.2f",
				n, moloc.MeanErr, wifi.MeanErr)
		}
	}
}

func TestRetrainMotionDB(t *testing.T) {
	sys, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	before := sys.MDB
	cfg := sys.Config.Builder
	cfg.MapFallback = false
	if err := sys.RetrainMotionDB(cfg); err != nil {
		t.Fatalf("RetrainMotionDB: %v", err)
	}
	if sys.MDB == before {
		t.Error("motion DB should be replaced")
	}
	if sys.Config.Builder.MapFallback {
		t.Error("config should be updated")
	}
	// Invalid config restores the old one.
	bad := cfg
	bad.MinSamples = 0
	if err := sys.RetrainMotionDB(bad); err == nil {
		t.Error("invalid builder config should fail")
	}
	if sys.Config.Builder.MinSamples == 0 {
		t.Error("failed retrain must not corrupt the config")
	}
}

func TestBundleRoundTrip(t *testing.T) {
	sys, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	dep, err := sys.Deploy(sys.AllAPs()[:5])
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := dep.SaveBundle(dir); err != nil {
		t.Fatalf("SaveBundle: %v", err)
	}
	b, err := LoadBundle(dir)
	if err != nil {
		t.Fatalf("LoadBundle: %v", err)
	}
	if b.Plan.NumLocs() != 28 || b.FDB.NumAPs() != 5 || len(b.APIdx) != 5 {
		t.Errorf("bundle shape wrong: %d locs, %d APs", b.Plan.NumLocs(), b.FDB.NumAPs())
	}
	// The loaded radio map matches the original bit-for-bit.
	for loc := 1; loc <= 28; loc++ {
		a, bfp := dep.FDB.At(loc), b.FDB.At(loc)
		for i := range a {
			if a[i] != bfp[i] {
				t.Fatalf("radio map changed at loc %d", loc)
			}
		}
	}
	// The loaded motion DB matches too.
	want, _ := sys.MDB.Lookup(1, 2)
	got, ok := b.MDB.Lookup(1, 2)
	if !ok || want != got {
		t.Error("motion DB changed in the bundle")
	}
	// A localizer built from the bundle behaves identically.
	mlOrig, err := dep.NewMoLoc()
	if err != nil {
		t.Fatal(err)
	}
	mlBundle, err := localizer.NewMoLoc(b.FDB, b.MDB, sys.Config.MoLoc)
	if err != nil {
		t.Fatal(err)
	}
	origRes := eval.Summarize(dep.Evaluate(mlOrig))
	bundleRes := eval.Summarize(eval.Run(b.Plan, mlBundle, dep.TestData))
	if origRes.Accuracy != bundleRes.Accuracy {
		t.Errorf("bundle localizer diverges: %.3f vs %.3f",
			bundleRes.Accuracy, origRes.Accuracy)
	}
}

func TestLoadBundleErrors(t *testing.T) {
	if _, err := LoadBundle(t.TempDir()); err == nil {
		t.Error("empty dir should fail")
	}
}

func TestAltLocalizerConstructors(t *testing.T) {
	sys, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	dep, err := sys.Deploy(sys.AllAPs())
	if err != nil {
		t.Fatal(err)
	}
	if got := dep.NewHorus().Name(); got != "horus" {
		t.Errorf("horus name = %s", got)
	}
	mlh, err := dep.NewMoLocHorus()
	if err != nil || mlh.Name() != "moloc" {
		t.Errorf("moloc-horus: %v %v", mlh, err)
	}
	pf, err := dep.NewParticle(localizer.NewParticleConfig())
	if err != nil || pf.Name() != "particle" {
		t.Errorf("particle: %v %v", pf, err)
	}
	// All three localize the first test observation without blowing up.
	td := dep.TestData[0]
	for _, lc := range []localizer.Localizer{dep.NewHorus(), mlh, pf} {
		if got := lc.Localize(localizer.Observation{FP: td.StartFP}); got < 1 || got > 28 {
			t.Errorf("%s: estimate %d out of range", lc.Name(), got)
		}
	}
}

func TestSaveBundleErrors(t *testing.T) {
	sys, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	dep, err := sys.Deploy(sys.AllAPs())
	if err != nil {
		t.Fatal(err)
	}
	// Unwritable destination: a path through an existing *file*.
	dir := t.TempDir()
	blocker := filepath.Join(dir, "file")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := dep.SaveBundle(filepath.Join(blocker, "sub")); err == nil {
		t.Error("bundle under a file should fail")
	}
}

func TestLoadBundleCorruption(t *testing.T) {
	sys, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	dep, err := sys.Deploy(sys.AllAPs())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := dep.SaveBundle(dir); err != nil {
		t.Fatal(err)
	}
	// Corrupt the metadata.
	if err := os.WriteFile(filepath.Join(dir, "bundle.json"), []byte("{bad"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBundle(dir); err == nil {
		t.Error("corrupt metadata should fail")
	}
	// Restore metadata, corrupt the radio map.
	if err := dep.SaveBundle(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "radiomap.json")); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBundle(dir); err == nil {
		t.Error("missing radio map should fail")
	}
}
