// Package core orchestrates the full MoLoc pipeline end to end: build
// the environment and RF model, run the simulated site survey, generate
// crowdsourced walking traces, train the motion database, and evaluate
// localizers — the paper's Sections IV–VI as one reproducible system.
//
// A System owns everything that is shared across experiment settings
// (plan, survey, traces); a Deployment specializes it to an AP subset
// (the paper's 4/5/6-AP sweeps) with its own radio map, motion
// database, and processed test traces.
package core

import (
	"fmt"

	"moloc/internal/crowd"
	"moloc/internal/eval"
	"moloc/internal/fingerprint"
	"moloc/internal/floorplan"
	"moloc/internal/localizer"
	"moloc/internal/motion"
	"moloc/internal/motiondb"
	"moloc/internal/rf"
	"moloc/internal/sensors"
	"moloc/internal/stats"
	"moloc/internal/trace"
)

// Config assembles every tunable of the pipeline. NewConfig returns the
// paper's experiment configuration; tests and ablations copy and modify
// it.
type Config struct {
	// Seed drives all randomness; equal seeds reproduce equal systems.
	Seed int64
	// Plan is the floor plan; nil selects the office hall of Fig. 5.
	Plan *floorplan.Plan
	// AdjDist is the walk-graph adjacency threshold in meters.
	AdjDist float64
	// RF, Sensors, Motion, Survey, Trace, Builder, MoLoc, HMM hold the
	// per-subsystem parameters.
	RF      rf.Params
	Sensors sensors.Params
	Motion  motion.Config
	Survey  fingerprint.SurveyConfig
	Trace   trace.Config
	Builder motiondb.BuilderConfig
	MoLoc   localizer.Config
	HMM     localizer.HMMConfig
	// Users are the simulated walkers.
	Users []trace.UserProfile
	// NumTrainTraces and NumTestTraces split the crowdsourced walks; the
	// paper collected 184 traces and used 150 for training, 34 for
	// localization tests.
	NumTrainTraces int
	NumTestTraces  int
}

// NewConfig returns the paper's configuration on the office hall.
func NewConfig() Config {
	return Config{
		Seed:           3,
		AdjDist:        floorplan.OfficeHallAdjDist,
		RF:             rf.NewParams(),
		Sensors:        sensors.NewParams(),
		Motion:         motion.NewConfig(),
		Survey:         fingerprint.NewSurveyConfig(),
		Trace:          trace.NewConfig(),
		Builder:        motiondb.NewBuilderConfig(),
		MoLoc:          localizer.NewConfig(),
		HMM:            localizer.NewHMMConfig(),
		Users:          trace.DefaultUsers(),
		NumTrainTraces: 150,
		NumTestTraces:  34,
	}
}

// Validate rejects inconsistent configuration.
func (c Config) Validate() error {
	if c.NumTrainTraces < 1 || c.NumTestTraces < 1 {
		return fmt.Errorf("core: need at least one training and one test trace")
	}
	if len(c.Users) == 0 {
		return fmt.Errorf("core: need at least one user profile")
	}
	if c.AdjDist <= 0 {
		return fmt.Errorf("core: AdjDist must be positive, got %g", c.AdjDist)
	}
	return nil
}

// System holds everything shared across deployments: the environment,
// the RF model, the site survey, and the generated traces.
type System struct {
	Config Config
	Plan   *floorplan.Plan
	Graph  *floorplan.WalkGraph
	Model  *rf.Model
	Survey *fingerprint.SurveyResult

	TrainTraces []*trace.Trace
	TestTraces  []*trace.Trace

	// MDB is the motion database, trained once with the full AP set, as
	// in the paper: Fig. 6 validates a single motion database that all
	// AP-count settings then share. MDBBuilder exposes its sanitation
	// drop counts.
	MDB        *motiondb.DB
	MDBBuilder *motiondb.Builder

	// TestData are the test traces processed once with the full AP set:
	// motion processing is sensor-side and does not depend on how many
	// APs the localizer uses. Deployments project the fingerprints.
	TestData []*crowd.TraceData

	root *stats.RNG
}

// Build runs the shared pipeline stages: environment, RF model, site
// survey, trace generation.
func Build(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	plan := cfg.Plan
	if plan == nil {
		plan = floorplan.OfficeHall()
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	graph := floorplan.BuildWalkGraph(plan, cfg.AdjDist)
	if !graph.Connected() {
		return nil, fmt.Errorf("core: walk graph of %q is disconnected", plan.Name)
	}

	root := stats.NewRNG(cfg.Seed)
	model, err := rf.NewModel(plan, cfg.RF, stats.HashSeed("rf")^cfg.Seed)
	if err != nil {
		return nil, err
	}
	survey, err := fingerprint.Survey(model, cfg.Survey, root.Fork("survey"))
	if err != nil {
		return nil, err
	}

	sensorGen, err := sensors.NewGenerator(cfg.Sensors)
	if err != nil {
		return nil, err
	}
	traceGen, err := trace.NewGenerator(plan, graph, sensorGen, cfg.Motion, cfg.Trace)
	if err != nil {
		return nil, err
	}
	train := traceGen.GenerateBatch(cfg.Users, cfg.NumTrainTraces, root.Fork("train-traces"))
	test := traceGen.GenerateBatch(cfg.Users, cfg.NumTestTraces, root.Fork("test-traces"))

	sys := &System{
		Config:      cfg,
		Plan:        plan,
		Graph:       graph,
		Model:       model,
		Survey:      survey,
		TrainTraces: train,
		TestTraces:  test,
		root:        root,
	}
	if err := sys.trainMotionDB(); err != nil {
		return nil, err
	}
	if err := sys.processTestTraces(); err != nil {
		return nil, err
	}
	return sys, nil
}

// processTestTraces runs the test traces through the crowd pipeline
// once with the full AP set.
func (s *System) processTestTraces() error {
	fdb, err := s.Survey.BuildDB(fingerprint.Euclidean{}, s.Model.NumAPs())
	if err != nil {
		return err
	}
	pipe, err := crowd.NewPipeline(s.Plan, fdb, s.Survey.Test, s.Config.Motion)
	if err != nil {
		return err
	}
	rng := s.root.Fork("test-data")
	s.TestData = make([]*crowd.TraceData, 0, len(s.TestTraces))
	for _, tr := range s.TestTraces {
		s.TestData = append(s.TestData, pipe.Process(tr, rng))
	}
	return nil
}

// trainMotionDB runs the crowdsourcing pipeline once, with the full AP
// set, and stores the resulting motion database on the system.
func (s *System) trainMotionDB() error {
	fdb, err := s.Survey.BuildDB(fingerprint.Euclidean{}, s.Model.NumAPs())
	if err != nil {
		return err
	}
	pipe, err := crowd.NewPipeline(s.Plan, fdb, s.Survey.MotionEst, s.Config.Motion)
	if err != nil {
		return err
	}
	mdb, builder, err := crowd.BuildMotionDB(pipe, s.Graph, s.TrainTraces,
		s.Config.Builder, s.root.Fork("motion-db"))
	if err != nil {
		return err
	}
	s.MDB = mdb
	s.MDBBuilder = builder
	return nil
}

// RetrainMotionDB rebuilds the motion database with a different builder
// configuration (used by the sanitation ablation) and installs it on
// the system. The RNG stream is re-forked from the same label, so the
// underlying observations are identical across configurations.
func (s *System) RetrainMotionDB(cfg motiondb.BuilderConfig) error {
	old := s.Config.Builder
	s.Config.Builder = cfg
	if err := s.trainMotionDB(); err != nil {
		s.Config.Builder = old
		return err
	}
	return nil
}

// Deployment is a System specialized to an AP subset: its radio map,
// trained motion database, and processed test traces.
type Deployment struct {
	System *System
	// APIdx are the AP indices (into the plan's AP list) in use.
	APIdx []int
	// FDB is the deterministic radio map (per-location mean vectors).
	FDB *fingerprint.DB
	// GDB is the Horus-style probabilistic radio map fitted to the same
	// survey samples.
	GDB *fingerprint.GaussianDB
	// TestData are the processed test traces, ready for eval.Run.
	TestData []*crowd.TraceData
}

// AllAPs returns the index list selecting every AP of the system's
// plan.
func (s *System) AllAPs() []int {
	idx := make([]int, s.Model.NumAPs())
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// Deploy builds the per-AP-subset artifacts: the projected radio map
// and the projected test traces. The motion database and the extracted
// RLMs are shared across deployments (see System.MDB and
// System.TestData).
func (s *System) Deploy(apIdx []int) (*Deployment, error) {
	if len(apIdx) == 0 {
		return nil, fmt.Errorf("core: empty AP subset")
	}
	survey := s.Survey.ProjectAPs(apIdx)
	fdb, err := survey.BuildDB(fingerprint.Euclidean{}, len(apIdx))
	if err != nil {
		return nil, err
	}
	gdb, err := fingerprint.NewGaussianDB(len(apIdx), survey.Train)
	if err != nil {
		return nil, err
	}
	testData := make([]*crowd.TraceData, 0, len(s.TestData))
	for _, td := range s.TestData {
		testData = append(testData, crowd.ProjectTraceData(td, apIdx))
	}
	return &Deployment{
		System:   s,
		APIdx:    apIdx,
		FDB:      fdb,
		GDB:      gdb,
		TestData: testData,
	}, nil
}

// NewWiFi returns the WiFi fingerprinting baseline for this deployment.
func (d *Deployment) NewWiFi() localizer.Localizer {
	return localizer.NewWiFiNN(d.FDB)
}

// NewMoLoc returns the MoLoc localizer for this deployment.
func (d *Deployment) NewMoLoc() (localizer.Localizer, error) {
	return localizer.NewMoLoc(d.FDB, d.System.MDB, d.System.Config.MoLoc)
}

// NewHMM returns the HMM baseline for this deployment.
func (d *Deployment) NewHMM() (localizer.Localizer, error) {
	return localizer.NewHMM(d.FDB, d.System.Graph, d.System.Config.HMM)
}

// NewDeadReckoning returns the motion-only ablation localizer.
func (d *Deployment) NewDeadReckoning() (localizer.Localizer, error) {
	return localizer.NewDeadReckoning(d.FDB, d.System.MDB, d.System.Config.MoLoc)
}

// NewHorus returns the Horus-style probabilistic fingerprinting
// baseline for this deployment.
func (d *Deployment) NewHorus() localizer.Localizer {
	return localizer.NewHorus(d.GDB)
}

// NewMoLocHorus returns MoLoc running on top of the probabilistic
// radio map instead of the deterministic one — the paper's claim that
// it can be built "atop existing fingerprinting-based localization
// systems, regardless of fingerprint types".
func (d *Deployment) NewMoLocHorus() (localizer.Localizer, error) {
	return localizer.NewMoLoc(d.GDB, d.System.MDB, d.System.Config.MoLoc)
}

// NewParticle returns the continuous-space particle-filter localizer,
// the heavier alternative the paper's efficiency argument weighs MoLoc
// against.
func (d *Deployment) NewParticle(cfg localizer.ParticleConfig) (localizer.Localizer, error) {
	return localizer.NewParticle(d.System.Plan, d.GDB, cfg)
}

// NewModelBased returns the RSS-modeling baseline (EZ / Lim et al.
// style): per-AP log-distance fits inverted into ranges, trilaterated.
func (d *Deployment) NewModelBased() (localizer.Localizer, error) {
	return localizer.NewModelBased(d.System.Plan, d.FDB, d.APIdx,
		localizer.NewModelBasedConfig())
}

// Evaluate replays the deployment's test traces through the localizer.
func (d *Deployment) Evaluate(loc localizer.Localizer) []eval.TraceResult {
	return eval.Run(d.System.Plan, loc, d.TestData)
}

// MotionDBErrors returns the motion database's validation errors
// against the map ground truth (the Fig. 6 distributions).
func (s *System) MotionDBErrors() (dirErrs, offErrs []float64) {
	return s.MDB.ValidationErrors(s.Plan)
}
