package tracker

import (
	"testing"

	"moloc/internal/fingerprint"
	"moloc/internal/motiondb"
	"moloc/internal/sensors"
	"moloc/internal/stats"
)

// driveFix feeds one interval of walking samples plus a scan at loc and
// ticks past the boundary, returning the emitted fix.
func driveFix(t *testing.T, tk *Tracker, t0 float64, loc int, seed int64) Fix {
	t.Helper()
	g, err := sensors.NewGenerator(sysFixture(t).Config.Sensors)
	if err != nil {
		t.Fatal(err)
	}
	samples, _ := g.Walk(nil, t0, t0+4, 1.8, 90, sensors.Device{}, 0, stats.NewRNG(seed))
	for _, s := range samples {
		tk.AddIMU(s)
	}
	sys := sysFixture(t)
	tk.AddScan(t0+1, fingerprint.Fingerprint(sys.Model.Sample(sys.Plan.LocPos(loc), stats.NewRNG(seed+100))))
	fix, ok := tk.Tick(t0 + 10)
	if !ok {
		t.Fatal("expected a fix")
	}
	return fix
}

// TestFingerprintOnlyMode: a degraded session must keep emitting fixes,
// tag them ModeFingerprint, never run motion matching, and return to
// the full pipeline when the degradation lifts.
func TestFingerprintOnlyMode(t *testing.T) {
	sys := sysFixture(t)
	tk, err := New(sys.Plan, fullFDB(t, sys), sys.MDB, NewConfig(0.73))
	if err != nil {
		t.Fatal(err)
	}

	fix := driveFix(t, tk, 0, 5, 1)
	if fix.Mode != ModeMoLoc || fix.Mode.String() != "moloc" {
		t.Fatalf("healthy fix mode = %v", fix.Mode)
	}

	tk.SetFingerprintOnly(true)
	fix = driveFix(t, tk, 100, 5, 2)
	if fix.Mode != ModeFingerprint || fix.Mode.String() != "fingerprint" {
		t.Fatalf("degraded fix mode = %v", fix.Mode)
	}
	if fix.Moved {
		t.Fatal("degraded fix claims motion matching contributed")
	}
	degradedFixes := tk.Stats().FingerprintOnlyFixes
	if degradedFixes < 1 {
		t.Fatalf("fingerprint-only fixes = %d, want >= 1", degradedFixes)
	}

	tk.SetFingerprintOnly(false)
	fix = driveFix(t, tk, 200, 5, 3)
	if fix.Mode != ModeMoLoc {
		t.Fatalf("recovered fix mode = %v", fix.Mode)
	}
	if got := tk.Stats().FingerprintOnlyFixes; got != degradedFixes {
		t.Fatalf("fingerprint-only fixes grew after recovery: %d -> %d", degradedFixes, got)
	}
}

// TestFingerprintOnlyWorksWithEmptyDB: degraded mode is exactly what
// serves when no motion database exists at all — fixes must still come
// out against an untrained DB.
func TestFingerprintOnlyWorksWithEmptyDB(t *testing.T) {
	sys := sysFixture(t)
	tk, err := New(sys.Plan, fullFDB(t, sys), motiondb.New(sys.Plan.NumLocs()), NewConfig(0.73))
	if err != nil {
		t.Fatal(err)
	}
	tk.SetFingerprintOnly(true)
	fix := driveFix(t, tk, 0, 7, 4)
	if fix.Mode != ModeFingerprint || fix.Loc < 1 {
		t.Fatalf("fix = %+v", fix)
	}
}
