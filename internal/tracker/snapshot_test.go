package tracker

import (
	"sync/atomic"
	"testing"

	"moloc/internal/motiondb"
	"moloc/internal/sensors"
)

// TestSnapshotAcquisition pins the RCU handoff: a tracker wired to a
// snapshot cell adopts the published view silently, counts exactly one
// swap per republication (observed at the next Tick), and ignores an
// incompatible publish instead of breaking the session.
func TestSnapshotAcquisition(t *testing.T) {
	sys := sysFixture(t)
	cfg := NewConfig(0.73)
	tr, err := New(sys.Plan, fullFDB(t, sys), sys.MDB, cfg)
	if err != nil {
		t.Fatal(err)
	}

	c0, err := sys.MDB.Compile(cfg.MoLoc.Alpha, cfg.MoLoc.Beta)
	if err != nil {
		t.Fatal(err)
	}
	var snap atomic.Pointer[motiondb.Compiled]
	snap.Store(c0)
	tr.UseSnapshot(&snap)
	if got := tr.Stats().SnapshotSwaps; got != 0 {
		t.Fatalf("initial adoption must not count as a swap, got %d", got)
	}
	if tr.curCmp != c0 {
		t.Fatal("initial view not adopted")
	}

	// Publish a retrained view; the tracker picks it up at its next tick.
	db2 := sys.MDB.Clone()
	pair := db2.Pairs()[0]
	e, _ := db2.Lookup(pair[0], pair[1])
	e.N += 50
	db2.Set(pair[0], pair[1], e)
	c1, err := c0.RecompileEdges(db2, [][2]int{pair})
	if err != nil {
		t.Fatal(err)
	}
	snap.Store(c1)

	tr.AddIMU(sensors.Sample{T: 0, Accel: 9.8})
	tr.Tick(0.5)
	if got := tr.Stats().SnapshotSwaps; got != 1 {
		t.Fatalf("SnapshotSwaps = %d after one republication, want 1", got)
	}
	if tr.curCmp != c1 {
		t.Fatal("republication not adopted")
	}

	// The same view again must not recount.
	tr.Tick(1.0)
	if got := tr.Stats().SnapshotSwaps; got != 1 {
		t.Fatalf("SnapshotSwaps = %d after no-op tick, want 1", got)
	}

	// An incompatible publish (wrong location count) degrades to
	// staleness: ignored, session keeps the current view.
	bad, err := motiondb.New(5).Compile(cfg.MoLoc.Alpha, cfg.MoLoc.Beta)
	if err != nil {
		t.Fatal(err)
	}
	snap.Store(bad)
	tr.Tick(1.5)
	if got := tr.Stats().SnapshotSwaps; got != 1 {
		t.Fatalf("incompatible view must not swap, SnapshotSwaps = %d", got)
	}
	if tr.curCmp != c1 {
		t.Fatal("incompatible view displaced the serving index")
	}

	// Unwiring clears the adopted view and ticks keep working.
	tr.UseSnapshot(nil)
	if tr.curCmp != nil {
		t.Fatal("UseSnapshot(nil) must clear the adopted view")
	}
	tr.Tick(2.0)
}
