package tracker

import (
	"testing"

	"moloc/internal/core"
	"moloc/internal/fingerprint"
	"moloc/internal/geom"
	"moloc/internal/motion"
	"moloc/internal/motiondb"
	"moloc/internal/sensors"
	"moloc/internal/stats"
	"moloc/internal/trace"
)

// sysFixture builds a small office-hall system shared by tracker tests.
func sysFixture(t *testing.T) *core.System {
	t.Helper()
	cfg := core.NewConfig()
	cfg.NumTrainTraces = 60
	cfg.NumTestTraces = 2
	cfg.Trace.NumLegs = 10
	sys, err := core.Build(cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return sys
}

func fullFDB(t *testing.T, sys *core.System) *fingerprint.DB {
	t.Helper()
	fdb, err := sys.Survey.BuildDB(fingerprint.Euclidean{}, sys.Model.NumAPs())
	if err != nil {
		t.Fatal(err)
	}
	return fdb
}

func TestConfigValidate(t *testing.T) {
	if err := NewConfig(0.73).Validate(); err != nil {
		t.Errorf("defaults should validate: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.IntervalSec = 0 },
		func(c *Config) { c.StepLen = 0 },
		func(c *Config) { c.StepLen = 3 },
		func(c *Config) { c.Motion.MinPeakSep = 0 },
		func(c *Config) { c.MoLoc.K = 0 },
	}
	for i, mutate := range bad {
		c := NewConfig(0.73)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestNewRejectsMismatch(t *testing.T) {
	sys := sysFixture(t)
	fdb := fullFDB(t, sys)
	if _, err := New(sys.Plan, fdb, motiondb.New(5), NewConfig(0.73)); err == nil {
		t.Error("location-count mismatch should be rejected")
	}
	if _, err := New(sys.Plan, fdb, sys.MDB, Config{}); err == nil {
		t.Error("invalid config should be rejected")
	}
}

func TestNoFixBeforeInterval(t *testing.T) {
	sys := sysFixture(t)
	tr, err := New(sys.Plan, fullFDB(t, sys), sys.MDB, NewConfig(0.73))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tr.Tick(100); ok {
		t.Error("no data yet; no fix")
	}
	tr.AddIMU(sensors.Sample{T: 0, Accel: 9.8})
	if _, ok := tr.Tick(1); ok {
		t.Error("interval still open; no fix")
	}
	if tr.LastFix() != nil {
		t.Error("LastFix should be nil before the first fix")
	}
}

func TestNoScanNoFix(t *testing.T) {
	sys := sysFixture(t)
	tr, err := New(sys.Plan, fullFDB(t, sys), sys.MDB, NewConfig(0.73))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		tr.AddIMU(sensors.Sample{T: float64(i) * 0.1, Accel: 9.8})
	}
	if _, ok := tr.Tick(4); ok {
		t.Error("no scan arrived; no fix should be emitted")
	}
}

func TestOutOfOrderIMUDropped(t *testing.T) {
	sys := sysFixture(t)
	tr, err := New(sys.Plan, fullFDB(t, sys), sys.MDB, NewConfig(0.73))
	if err != nil {
		t.Fatal(err)
	}
	tr.AddIMU(sensors.Sample{T: 1, Accel: 9.8})
	tr.AddIMU(sensors.Sample{T: 0.5, Accel: 99}) // out of order
	if len(tr.samples) != 1 {
		t.Errorf("out-of-order sample kept: %d buffered", len(tr.samples))
	}
}

// TestStreamingTracking is the integration test: replay a fresh walk as
// raw sensor streams plus periodic scans, and require the tracker's
// fixes to stay close to the walker's true position.
func TestStreamingTracking(t *testing.T) {
	sys := sysFixture(t)
	fdb := fullFDB(t, sys)

	// A fresh walk with no pauses so the true position is the linear
	// interpolation within each leg.
	tcfg := trace.NewConfig()
	tcfg.NumLegs = 14
	tcfg.PauseProb = 0
	sg, err := sensors.NewGenerator(sys.Config.Sensors)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := trace.NewGenerator(sys.Plan, sys.Graph, sg, sys.Config.Motion, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	user := trace.DefaultUsers()[1]
	walk := tg.Generate(user, stats.NewRNG(77))

	truePos := func(ts float64) geom.Point {
		for _, leg := range walk.Legs {
			if ts <= leg.T1 {
				frac := (ts - leg.T0) / (leg.T1 - leg.T0)
				return sys.Plan.LocPos(leg.From).Lerp(sys.Plan.LocPos(leg.To), frac)
			}
		}
		last := walk.Legs[len(walk.Legs)-1]
		return sys.Plan.LocPos(last.To)
	}

	stepLen := motion.StepLength(sys.Config.Motion, user.HeightM, user.WeightKg)
	tk, err := New(sys.Plan, fdb, sys.MDB, NewConfig(stepLen))
	if err != nil {
		t.Fatal(err)
	}

	scanRNG := stats.NewRNG(78)
	nextScan := 0.0
	var trackErr, nnErr stats.Online
	fixes := 0
	lastFixT := -1.0
	for _, leg := range walk.Legs {
		for _, s := range leg.Samples {
			tk.AddIMU(s)
			if s.T >= nextScan { // ~2 Hz scanning as in the paper
				fp := fingerprint.Fingerprint(sys.Model.Sample(truePos(s.T), scanRNG))
				tk.AddScan(s.T, fp)
				nnErr.Add(sys.Plan.LocPos(fdb.Nearest(fp)).Dist(truePos(s.T)))
				nextScan = s.T + 0.5
			}
			if fix, ok := tk.Tick(s.T); ok {
				fixes++
				trackErr.Add(sys.Plan.LocPos(fix.Loc).Dist(truePos(fix.T)))
				if lastFixT >= 0 && fix.T-lastFixT < tk.cfg.IntervalSec-1e-9 {
					t.Errorf("fixes %.2f s apart, interval is %.2f s", fix.T-lastFixT, tk.cfg.IntervalSec)
				}
				lastFixT = fix.T
			}
		}
	}
	walkDur := walk.Legs[len(walk.Legs)-1].T1
	if fixes < int(walkDur/3)-2 {
		t.Fatalf("only %d fixes over a %.0f s walk", fixes, walkDur)
	}
	// The tracker quantizes to reference locations (grid spacing
	// 4-5.7 m) and the walker is usually mid-aisle at fix time, so a
	// couple of meters of mean error is inherent; the meaningful bar is
	// beating the raw per-scan NN stream below.
	if trackErr.Mean() > 4.5 {
		t.Errorf("tracking mean error %.2f m too large", trackErr.Mean())
	}
	if trackErr.Mean() >= nnErr.Mean() {
		t.Errorf("tracker (%.2f m) should beat per-scan NN (%.2f m)",
			trackErr.Mean(), nnErr.Mean())
	}
}

func TestReset(t *testing.T) {
	sys := sysFixture(t)
	tk, err := New(sys.Plan, fullFDB(t, sys), sys.MDB, NewConfig(0.73))
	if err != nil {
		t.Fatal(err)
	}
	// Drive one fix.
	g, err := sensors.NewGenerator(sys.Config.Sensors)
	if err != nil {
		t.Fatal(err)
	}
	samples, _ := g.Walk(nil, 0, 4, 1.8, 90, sensors.Device{}, 0, stats.NewRNG(1))
	for _, s := range samples {
		tk.AddIMU(s)
	}
	tk.AddScan(1, fingerprint.Fingerprint(sys.Model.Sample(sys.Plan.LocPos(5), stats.NewRNG(2))))
	if _, ok := tk.Tick(10); !ok {
		t.Fatal("expected a fix")
	}
	if tk.LastFix() == nil {
		t.Fatal("LastFix missing")
	}
	tk.Reset()
	if tk.LastFix() != nil || tk.started || tk.haveScan {
		t.Error("Reset should clear the session")
	}
}

// TestTrackerWithHorusSource verifies the tracker runs over the
// probabilistic candidate source as well.
func TestTrackerWithHorusSource(t *testing.T) {
	sys := sysFixture(t)
	gdb, err := fingerprint.NewGaussianDB(sys.Model.NumAPs(), sys.Survey.Train)
	if err != nil {
		t.Fatal(err)
	}
	tk, err := New(sys.Plan, gdb, sys.MDB, NewConfig(0.73))
	if err != nil {
		t.Fatal(err)
	}
	tk.AddIMU(sensors.Sample{T: 0, Accel: 9.8})
	tk.AddScan(0.2, fingerprint.Fingerprint(sys.Model.Sample(sys.Plan.LocPos(9), stats.NewRNG(3))))
	fix, ok := tk.Tick(3.5)
	if !ok {
		t.Fatal("expected a fix")
	}
	if fix.Loc < 1 || fix.Loc > 28 {
		t.Errorf("fix out of range: %d", fix.Loc)
	}
	if len(fix.Candidates) == 0 {
		t.Error("candidates missing")
	}
}
