package tracker

import (
	"testing"

	"moloc/internal/core"
	"moloc/internal/fingerprint"
	"moloc/internal/geom"
	"moloc/internal/motion"
	"moloc/internal/motiondb"
	"moloc/internal/sensors"
	"moloc/internal/stats"
	"moloc/internal/trace"
)

// sysFixture builds a small office-hall system shared by tracker tests.
func sysFixture(t *testing.T) *core.System {
	t.Helper()
	cfg := core.NewConfig()
	cfg.NumTrainTraces = 60
	cfg.NumTestTraces = 2
	cfg.Trace.NumLegs = 10
	sys, err := core.Build(cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return sys
}

func fullFDB(t *testing.T, sys *core.System) *fingerprint.DB {
	t.Helper()
	fdb, err := sys.Survey.BuildDB(fingerprint.Euclidean{}, sys.Model.NumAPs())
	if err != nil {
		t.Fatal(err)
	}
	return fdb
}

func TestConfigValidate(t *testing.T) {
	if err := NewConfig(0.73).Validate(); err != nil {
		t.Errorf("defaults should validate: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.IntervalSec = 0 },
		func(c *Config) { c.StepLen = 0 },
		func(c *Config) { c.StepLen = 3 },
		func(c *Config) { c.Motion.MinPeakSep = 0 },
		func(c *Config) { c.MoLoc.K = 0 },
	}
	for i, mutate := range bad {
		c := NewConfig(0.73)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestNewRejectsMismatch(t *testing.T) {
	sys := sysFixture(t)
	fdb := fullFDB(t, sys)
	if _, err := New(sys.Plan, fdb, motiondb.New(5), NewConfig(0.73)); err == nil {
		t.Error("location-count mismatch should be rejected")
	}
	if _, err := New(sys.Plan, fdb, sys.MDB, Config{}); err == nil {
		t.Error("invalid config should be rejected")
	}
}

func TestNoFixBeforeInterval(t *testing.T) {
	sys := sysFixture(t)
	tr, err := New(sys.Plan, fullFDB(t, sys), sys.MDB, NewConfig(0.73))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tr.Tick(100); ok {
		t.Error("no data yet; no fix")
	}
	tr.AddIMU(sensors.Sample{T: 0, Accel: 9.8})
	if _, ok := tr.Tick(1); ok {
		t.Error("interval still open; no fix")
	}
	if tr.LastFix() != nil {
		t.Error("LastFix should be nil before the first fix")
	}
}

func TestNoScanNoFix(t *testing.T) {
	sys := sysFixture(t)
	tr, err := New(sys.Plan, fullFDB(t, sys), sys.MDB, NewConfig(0.73))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		tr.AddIMU(sensors.Sample{T: float64(i) * 0.1, Accel: 9.8})
	}
	if _, ok := tr.Tick(4); ok {
		t.Error("no scan arrived; no fix should be emitted")
	}
}

func TestOutOfOrderIMUDropped(t *testing.T) {
	sys := sysFixture(t)
	tr, err := New(sys.Plan, fullFDB(t, sys), sys.MDB, NewConfig(0.73))
	if err != nil {
		t.Fatal(err)
	}
	tr.AddIMU(sensors.Sample{T: 1, Accel: 9.8})
	tr.AddIMU(sensors.Sample{T: 0.5, Accel: 99}) // out of order
	if len(tr.samples) != 1 {
		t.Errorf("out-of-order sample kept: %d buffered", len(tr.samples))
	}
}

// TestStreamingTracking is the integration test: replay a fresh walk as
// raw sensor streams plus periodic scans, and require the tracker's
// fixes to stay close to the walker's true position.
func TestStreamingTracking(t *testing.T) {
	sys := sysFixture(t)
	fdb := fullFDB(t, sys)

	// A fresh walk with no pauses so the true position is the linear
	// interpolation within each leg.
	tcfg := trace.NewConfig()
	tcfg.NumLegs = 14
	tcfg.PauseProb = 0
	sg, err := sensors.NewGenerator(sys.Config.Sensors)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := trace.NewGenerator(sys.Plan, sys.Graph, sg, sys.Config.Motion, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	user := trace.DefaultUsers()[1]
	walk := tg.Generate(user, stats.NewRNG(77))

	truePos := func(ts float64) geom.Point {
		for _, leg := range walk.Legs {
			if ts <= leg.T1 {
				frac := (ts - leg.T0) / (leg.T1 - leg.T0)
				return sys.Plan.LocPos(leg.From).Lerp(sys.Plan.LocPos(leg.To), frac)
			}
		}
		last := walk.Legs[len(walk.Legs)-1]
		return sys.Plan.LocPos(last.To)
	}

	stepLen := motion.StepLength(sys.Config.Motion, user.HeightM, user.WeightKg)
	tk, err := New(sys.Plan, fdb, sys.MDB, NewConfig(stepLen))
	if err != nil {
		t.Fatal(err)
	}

	scanRNG := stats.NewRNG(78)
	nextScan := 0.0
	var trackErr, nnErr stats.Online
	fixes := 0
	lastFixT := -1.0
	for _, leg := range walk.Legs {
		for _, s := range leg.Samples {
			tk.AddIMU(s)
			if s.T >= nextScan { // ~2 Hz scanning as in the paper
				fp := fingerprint.Fingerprint(sys.Model.Sample(truePos(s.T), scanRNG))
				tk.AddScan(s.T, fp)
				nnErr.Add(sys.Plan.LocPos(fdb.Nearest(fp)).Dist(truePos(s.T)))
				nextScan = s.T + 0.5
			}
			if fix, ok := tk.Tick(s.T); ok {
				fixes++
				trackErr.Add(sys.Plan.LocPos(fix.Loc).Dist(truePos(fix.T)))
				if lastFixT >= 0 && fix.T-lastFixT < tk.cfg.IntervalSec-1e-9 {
					t.Errorf("fixes %.2f s apart, interval is %.2f s", fix.T-lastFixT, tk.cfg.IntervalSec)
				}
				lastFixT = fix.T
			}
		}
	}
	walkDur := walk.Legs[len(walk.Legs)-1].T1
	if fixes < int(walkDur/3)-2 {
		t.Fatalf("only %d fixes over a %.0f s walk", fixes, walkDur)
	}
	// The tracker quantizes to reference locations (grid spacing
	// 4-5.7 m) and the walker is usually mid-aisle at fix time, so a
	// couple of meters of mean error is inherent; the meaningful bar is
	// beating the raw per-scan NN stream below.
	if trackErr.Mean() > 4.5 {
		t.Errorf("tracking mean error %.2f m too large", trackErr.Mean())
	}
	if trackErr.Mean() >= nnErr.Mean() {
		t.Errorf("tracker (%.2f m) should beat per-scan NN (%.2f m)",
			trackErr.Mean(), nnErr.Mean())
	}
}

func TestReset(t *testing.T) {
	sys := sysFixture(t)
	tk, err := New(sys.Plan, fullFDB(t, sys), sys.MDB, NewConfig(0.73))
	if err != nil {
		t.Fatal(err)
	}
	// Drive one fix.
	g, err := sensors.NewGenerator(sys.Config.Sensors)
	if err != nil {
		t.Fatal(err)
	}
	samples, _ := g.Walk(nil, 0, 4, 1.8, 90, sensors.Device{}, 0, stats.NewRNG(1))
	for _, s := range samples {
		tk.AddIMU(s)
	}
	tk.AddScan(1, fingerprint.Fingerprint(sys.Model.Sample(sys.Plan.LocPos(5), stats.NewRNG(2))))
	if _, ok := tk.Tick(10); !ok {
		t.Fatal("expected a fix")
	}
	if tk.LastFix() == nil {
		t.Fatal("LastFix missing")
	}
	tk.Reset()
	if tk.LastFix() != nil || tk.started || len(tk.scans) != 0 {
		t.Error("Reset should clear the session")
	}
	if tk.Stats() != (Stats{}) {
		t.Error("Reset should clear the activity counters")
	}
}

// TestStaleScanNotServed is the regression test for the stale-scan
// bug: after one fix, intervals in which no scan arrived must not keep
// emitting fixes from the old fingerprint. A scan may serve at most
// one extra interval (the staleness window, one interval by default,
// covering a 2 Hz scan straddling a boundary), after which ticks
// report ok=false until fresh RSS arrives.
func TestStaleScanNotServed(t *testing.T) {
	sys := sysFixture(t)
	tk, err := New(sys.Plan, fullFDB(t, sys), sys.MDB, NewConfig(0.73))
	if err != nil {
		t.Fatal(err)
	}
	fp := fingerprint.Fingerprint(sys.Model.Sample(sys.Plan.LocPos(5), stats.NewRNG(2)))

	feedIMU := func(t0, t1 float64) {
		for ts := t0; ts < t1; ts += 0.1 {
			tk.AddIMU(sensors.Sample{T: ts, Accel: 9.8})
		}
	}
	feedIMU(0, 3)
	tk.AddScan(1, fp)
	if _, ok := tk.Tick(3); !ok {
		t.Fatal("interval with a scan should produce a fix")
	}
	// Second interval: no scan of its own, but the T=1 scan is within
	// one interval of its start — the staleness window still serves it.
	feedIMU(3, 6)
	if _, ok := tk.Tick(6); !ok {
		t.Fatal("scan within the staleness window should still serve")
	}
	if tk.Stats().StaleServes != 1 {
		t.Errorf("StaleServes = %d, want 1", tk.Stats().StaleServes)
	}
	// Third interval onward: the scan is beyond the window; no fix.
	for i := 2; i < 5; i++ {
		feedIMU(float64(3*i), float64(3*i+3))
		if _, ok := tk.Tick(float64(3*i + 3)); ok {
			t.Fatalf("interval %d served a %gs-old scan", i, float64(3*i+3)-1)
		}
	}
	if got := tk.Stats().NoScanIntervals; got != 3 {
		t.Errorf("NoScanIntervals = %d, want 3", got)
	}
	// Fresh RSS revives the stream.
	tk.AddScan(16, fp)
	feedIMU(15, 18)
	if _, ok := tk.Tick(18); !ok {
		t.Error("fresh scan should produce a fix again")
	}
}

// TestStrictStaleWindow verifies StaleScanSec=0 restricts serving to
// scans inside the interval.
func TestStrictStaleWindow(t *testing.T) {
	sys := sysFixture(t)
	cfg := NewConfig(0.73)
	cfg.StaleScanSec = 0
	tk, err := New(sys.Plan, fullFDB(t, sys), sys.MDB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fp := fingerprint.Fingerprint(sys.Model.Sample(sys.Plan.LocPos(5), stats.NewRNG(2)))
	tk.AddIMU(sensors.Sample{T: 0, Accel: 9.8})
	tk.AddScan(1, fp)
	if _, ok := tk.Tick(3); !ok {
		t.Fatal("scan inside the interval should serve")
	}
	if _, ok := tk.Tick(6); ok {
		t.Error("strict window must not serve the previous interval's scan")
	}
}

// TestLateTickCatchesUp is the regression test for the interval-lag
// bug: a tick arriving several intervals late must partition buffered
// data by interval boundary (not attribute everything to the first
// stale interval) and leave the interval clock caught up with now.
func TestLateTickCatchesUp(t *testing.T) {
	sys := sysFixture(t)
	tk, err := New(sys.Plan, fullFDB(t, sys), sys.MDB, NewConfig(0.73))
	if err != nil {
		t.Fatal(err)
	}
	scanRNG := stats.NewRNG(9)
	// 10 s of samples and ~2 Hz scans, then one single late tick.
	for ts := 0.0; ts < 10; ts += 0.1 {
		tk.AddIMU(sensors.Sample{T: ts, Accel: 9.8, Compass: 90})
	}
	for ts := 0.4; ts < 10; ts += 0.5 {
		tk.AddScan(ts, fingerprint.Fingerprint(sys.Model.Sample(sys.Plan.LocPos(5), scanRNG)))
	}
	fix, ok := tk.Tick(10)
	if !ok {
		t.Fatal("late tick over scanned intervals should emit a fix")
	}
	// Three intervals closed ([0,3) [3,6) [6,9)), each with its own
	// scan; the returned fix is the latest.
	if fix.T != 9 {
		t.Errorf("fix.T = %g, want 9 (latest closed interval)", fix.T)
	}
	if got := tk.Stats().IntervalsClosed; got != 3 {
		t.Errorf("IntervalsClosed = %d, want 3", got)
	}
	if got := tk.Stats().Fixes; got != 3 {
		t.Errorf("Fixes = %d, want 3 (one per closed interval)", got)
	}
	// The clock caught up: the open interval is [9, 12), so a tick at
	// 11.9 closes nothing and one at 12 closes exactly [9, 12).
	if _, ok := tk.Tick(11.9); ok {
		t.Error("interval [9,12) should still be open at t=11.9")
	}
	tk.AddScan(11.5, fingerprint.Fingerprint(sys.Model.Sample(sys.Plan.LocPos(5), scanRNG)))
	fix, ok = tk.Tick(12)
	if !ok || fix.T != 12 {
		t.Errorf("tick at 12 = (%+v, %v), want a fix at T=12", fix, ok)
	}
}

// TestLateTickFastForwardsIdleGap verifies that a tick arriving after
// a long idle gap (no samples, no scans) catches the clock up in one
// call without walking every empty interval.
func TestLateTickFastForwardsIdleGap(t *testing.T) {
	sys := sysFixture(t)
	cfg := NewConfig(0.73)
	cfg.StaleScanSec = 0 // strict, so the gap has no window serve
	tk, err := New(sys.Plan, fullFDB(t, sys), sys.MDB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fp := fingerprint.Fingerprint(sys.Model.Sample(sys.Plan.LocPos(5), stats.NewRNG(2)))
	tk.AddIMU(sensors.Sample{T: 0, Accel: 9.8})
	tk.AddScan(1, fp)
	if _, ok := tk.Tick(3); !ok {
		t.Fatal("expected a first fix")
	}
	// A phone that slept for ~a year of session time.
	const gap = 3e7
	if _, ok := tk.Tick(gap); ok {
		t.Error("idle gap must not produce a fix")
	}
	if tk.intervalStart > gap || gap-tk.intervalStart >= tk.cfg.IntervalSec {
		t.Errorf("intervalStart = %g did not catch up to %g", tk.intervalStart, gap)
	}
	if skipped := tk.Stats().IntervalsSkipped; skipped == 0 {
		t.Error("fast-forwarded intervals should be counted")
	}
	// Activity after the gap localizes in the new epoch.
	tk.AddScan(gap+1, fp)
	fix, ok := tk.Tick(gap + 4)
	if !ok {
		t.Fatal("expected a fix after the gap")
	}
	if fix.T <= gap {
		t.Errorf("fix.T = %g predates the gap end", fix.T)
	}
}

// TestTrackerWithHorusSource verifies the tracker runs over the
// probabilistic candidate source as well.
func TestTrackerWithHorusSource(t *testing.T) {
	sys := sysFixture(t)
	gdb, err := fingerprint.NewGaussianDB(sys.Model.NumAPs(), sys.Survey.Train)
	if err != nil {
		t.Fatal(err)
	}
	tk, err := New(sys.Plan, gdb, sys.MDB, NewConfig(0.73))
	if err != nil {
		t.Fatal(err)
	}
	tk.AddIMU(sensors.Sample{T: 0, Accel: 9.8})
	tk.AddScan(0.2, fingerprint.Fingerprint(sys.Model.Sample(sys.Plan.LocPos(9), stats.NewRNG(3))))
	fix, ok := tk.Tick(3.5)
	if !ok {
		t.Fatal("expected a fix")
	}
	if fix.Loc < 1 || fix.Loc > 28 {
		t.Errorf("fix out of range: %d", fix.Loc)
	}
	if len(fix.Candidates) == 0 {
		t.Error("candidates missing")
	}
}

// TestFixCandidatesDoNotAliasScratch is the regression test for the
// retained-subslice bug class moloclint's bufalias analyzer guards
// against: the localizer's Candidates() returns a view into its
// //moloc:reuse scratch, which the next Localize overwrites in place.
// A Fix outlives the interval, so closeInterval must copy the set. The
// test takes a fix, then drives further intervals with scans from a
// different location (rewriting the scratch), and demands the first
// fix's candidates stay byte-for-byte what they were.
func TestFixCandidatesDoNotAliasScratch(t *testing.T) {
	sys := sysFixture(t)
	tk, err := New(sys.Plan, fullFDB(t, sys), sys.MDB, NewConfig(0.73))
	if err != nil {
		t.Fatal(err)
	}
	feedIMU := func(t0, t1 float64) {
		for ts := t0; ts < t1; ts += 0.1 {
			tk.AddIMU(sensors.Sample{T: ts, Accel: 9.8})
		}
	}

	feedIMU(0, 3)
	tk.AddScan(1, fingerprint.Fingerprint(sys.Model.Sample(sys.Plan.LocPos(5), stats.NewRNG(2))))
	fix, ok := tk.Tick(3)
	if !ok {
		t.Fatal("expected a first fix")
	}
	if len(fix.Candidates) == 0 {
		t.Fatal("first fix has no candidates")
	}
	snap := append([]fingerprint.Candidate(nil), fix.Candidates...)

	// Rewrite the localizer's reused buffers with fixes from the far
	// corner of the plan.
	for i := 0; i < 3; i++ {
		t0 := 3 + float64(i)*3
		feedIMU(t0, t0+3)
		tk.AddScan(t0+1, fingerprint.Fingerprint(sys.Model.Sample(sys.Plan.LocPos(20), stats.NewRNG(int64(40+i)))))
		if _, ok := tk.Tick(t0 + 3); !ok {
			t.Fatalf("expected a fix for interval %d", i+2)
		}
	}

	if len(fix.Candidates) != len(snap) {
		t.Fatalf("first fix's candidate set changed length: %d -> %d", len(snap), len(fix.Candidates))
	}
	for i := range snap {
		if fix.Candidates[i] != snap[i] {
			t.Errorf("candidate %d mutated after later intervals: had %+v, now %+v",
				i, snap[i], fix.Candidates[i])
		}
	}
}
