package tracker

import (
	"reflect"
	"testing"

	"moloc/internal/localizer"
	"moloc/internal/sensors"
)

// TestPacedTickEquivalence pins the server-paced tick contract: ticking
// a tracker at its LastEventTime whenever the server's wheel fires must
// produce fixes bit-identical to the same event sequence driven by
// client tick requests at every event time. The wheel fires on a
// different (and sparser) schedule than the client ticks, but because
// both clocks only ever advance to event times, every interval closes
// with exactly the same evidence either way.
func TestPacedTickEquivalence(t *testing.T) {
	sys := sysFixture(t)
	fdb := fullFDB(t, sys)
	lcfg := localizer.NewConfig()
	cmp, err := sys.MDB.Compile(lcfg.Alpha, lcfg.Beta)
	if err != nil {
		t.Fatal(err)
	}

	client, err := New(sys.Plan, fdb, sys.MDB, NewConfig(0.73))
	if err != nil {
		t.Fatal(err)
	}
	paced, err := New(sys.Plan, fdb, sys.MDB, NewConfig(0.73))
	if err != nil {
		t.Fatal(err)
	}

	var clientFixes, pacedFixes []Fix
	buf := make([]Fix, 0, 4)
	for i := 0; i <= 40; i++ {
		ts := float64(i) * 0.3
		smp := sensors.Sample{T: ts, Accel: 9.8}
		client.AddIMU(smp)
		paced.AddIMU(smp)
		if i%10 == 0 {
			fp := fdb.At(1 + (i/10)%3)
			client.AddScan(ts, fp)
			paced.AddScan(ts, fp)
		}
		// The client paces itself: one tick request per event.
		if fix, ok := client.Tick(ts); ok {
			clientFixes = append(clientFixes, fix)
		}
		// The server's wheel fires on its own sparser schedule and
		// ticks at the tracker's last event time against the shared
		// compiled view.
		if i%7 == 0 {
			ev, started := paced.LastEventTime()
			if !started {
				t.Fatalf("event %d: tracker has events but LastEventTime reports unstarted", i)
			}
			buf = paced.TickBatchShared(cmp, ev, buf[:0])
			pacedFixes = append(pacedFixes, buf...)
		}
	}
	// One catch-up fire after the last event, as the wheel would issue.
	ev, _ := paced.LastEventTime()
	buf = paced.TickBatchShared(cmp, ev, buf[:0])
	pacedFixes = append(pacedFixes, buf...)

	if len(clientFixes) == 0 {
		t.Fatal("scenario produced no fixes; the equivalence check is vacuous")
	}
	if !reflect.DeepEqual(clientFixes, pacedFixes) {
		t.Fatalf("paced fixes diverge from client-ticked fixes:\nclient: %+v\npaced:  %+v",
			clientFixes, pacedFixes)
	}
	if swaps := paced.Stats().SnapshotSwaps; swaps != 1 {
		t.Errorf("SnapshotSwaps = %d, want exactly 1 adoption of the shared view", swaps)
	}
}

// TestLastEventTime pins the paced clock's source: unstarted trackers
// report no clock, and the clock is the max event time seen (scans and
// IMU both advance it, out-of-order arrivals do not rewind it).
func TestLastEventTime(t *testing.T) {
	sys := sysFixture(t)
	fdb := fullFDB(t, sys)
	tr, err := New(sys.Plan, fdb, sys.MDB, NewConfig(0.73))
	if err != nil {
		t.Fatal(err)
	}
	if _, started := tr.LastEventTime(); started {
		t.Fatal("fresh tracker claims a last event time")
	}
	tr.AddIMU(sensors.Sample{T: 1.5, Accel: 9.8})
	if ev, started := tr.LastEventTime(); !started || ev != 1.5 {
		t.Fatalf("after IMU at 1.5: (%g, %v)", ev, started)
	}
	tr.AddScan(4.0, fdb.At(1))
	if ev, _ := tr.LastEventTime(); ev != 4.0 {
		t.Fatalf("after scan at 4.0: %g", ev)
	}
	tr.AddIMU(sensors.Sample{T: 2.0, Accel: 9.8}) // late arrival
	if ev, _ := tr.LastEventTime(); ev != 4.0 {
		t.Fatalf("late IMU rewound the event clock to %g", ev)
	}
	tr.Reset()
	if _, started := tr.LastEventTime(); started {
		t.Fatal("reset tracker still claims a last event time")
	}
}
