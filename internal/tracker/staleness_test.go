package tracker

import (
	"testing"

	"moloc/internal/sensors"
)

// TestStalenessBoundaryTable pins the documented scan-staleness window
// [start-StaleScanSec, end) at its exact edges, for both the serve
// decision (scanFor) and buffer pruning (pruneScans): both go through
// staleCutoff, so a scan landing exactly on the window edge must be
// served, and must not have been pruned before it could serve.
func TestStalenessBoundaryTable(t *testing.T) {
	sys := sysFixture(t)
	fdb := fullFDB(t, sys)
	scan := fdb.At(1)

	// Interval geometry: IntervalSec=3, StaleScanSec=3, interval
	// [12, 15) after four closed intervals starting at t=0.
	const (
		start = 12.0
		end   = 15.0
		stale = 3.0
	)
	cases := []struct {
		name       string
		scanT      float64
		serves     bool
		staleServe bool // counted as a stale serve (scanT < start)
	}{
		{"just_outside_window", start - stale - 0.001, false, false},
		{"exactly_on_window_edge", start - stale, true, true},
		{"inside_window_before_start", start - 0.5, true, true},
		{"exactly_at_start", start, true, false},
		{"inside_interval", end - 0.5, true, false},
		{"exactly_at_end", end, false, false}, // belongs to the next interval
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := NewConfig(0.73)
			cfg.StaleScanSec = stale
			tr, err := New(sys.Plan, fdb, sys.MDB, cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Anchor the session at t=0 and walk empty intervals up to
			// [12, 15) so pruneScans has run with intervalStart ahead of
			// the scan — a pruning/serving disagreement would drop the
			// edge scan before it can serve.
			tr.AddIMU(sensors.Sample{T: 0, Accel: 9.8})
			if tc.scanT < start {
				tr.AddScan(tc.scanT, scan)
			}
			tr.Tick(start) // closes [0,3)..[9,12), prunes the buffer
			if tc.scanT >= start {
				tr.AddScan(tc.scanT, scan)
			}
			before := tr.Stats().StaleServes
			if _, ok := tr.Tick(end); ok != tc.serves {
				t.Fatalf("scan at %g for [%g,%g): served=%v, want %v",
					tc.scanT, start, end, ok, tc.serves)
			}
			// The scan may also have served an earlier interval; only the
			// [12,15) close is under test.
			wantStale := int64(0)
			if tc.staleServe {
				wantStale = 1
			}
			if got := tr.Stats().StaleServes - before; got != wantStale {
				t.Errorf("scan at %g: StaleServes delta = %d, want %d", tc.scanT, got, wantStale)
			}
		})
	}
}

// TestScanForPruneAgree is the structural half of the boundary fix: for
// a sweep of timestamps across the window edge, a scan pruneScans keeps
// is exactly a scan scanFor would serve for the interval starting at
// intervalStart.
func TestScanForPruneAgree(t *testing.T) {
	sys := sysFixture(t)
	fdb := fullFDB(t, sys)
	cfg := NewConfig(0.73)
	cfg.StaleScanSec = 3
	for _, dt := range []float64{-3.001, -3, -2.999, -1.5, 0, 1.4} {
		tr, err := New(sys.Plan, fdb, sys.MDB, cfg)
		if err != nil {
			t.Fatal(err)
		}
		tr.started = true
		tr.intervalStart = 12
		tr.scans = []scanRec{{t: 12 + dt, fp: fdb.At(1)}}
		_, served := tr.scanFor(12, 15)
		tr.pruneScans()
		kept := len(tr.scans) == 1
		if served != kept {
			t.Errorf("dt=%g: scanFor serves=%v but pruneScans keeps=%v", dt, served, kept)
		}
	}
}

// TestTickBatchEquivalence: one late TickBatch must return exactly the
// fixes a sequence of per-interval Ticks would have produced, in order.
func TestTickBatchEquivalence(t *testing.T) {
	sys := sysFixture(t)
	fdb := fullFDB(t, sys)

	feed := func(tr *Tracker) {
		for i := 0; i <= 120; i++ {
			ts := float64(i) * 0.1
			tr.AddIMU(sensors.Sample{T: ts, Accel: 9.8})
		}
		for i := 0; i < 12; i++ {
			tr.AddScan(float64(i), fdb.At(1+i%3))
		}
	}

	one, err := New(sys.Plan, fdb, sys.MDB, NewConfig(0.73))
	if err != nil {
		t.Fatal(err)
	}
	feed(one)
	batch := one.TickBatch(12, nil)

	two, err := New(sys.Plan, fdb, sys.MDB, NewConfig(0.73))
	if err != nil {
		t.Fatal(err)
	}
	feed(two)
	var serial []Fix
	for ts := 3.0; ts <= 12; ts += 3 {
		if fix, ok := two.Tick(ts); ok {
			serial = append(serial, fix)
		}
	}

	if len(batch) != len(serial) || len(batch) == 0 {
		t.Fatalf("TickBatch produced %d fixes, serial Ticks %d", len(batch), len(serial))
	}
	for i := range batch {
		if batch[i].T != serial[i].T || batch[i].Loc != serial[i].Loc ||
			batch[i].Moved != serial[i].Moved || batch[i].Mode != serial[i].Mode {
			t.Errorf("fix %d: batch %+v != serial %+v", i, batch[i], serial[i])
		}
	}
}
