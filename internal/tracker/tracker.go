// Package tracker implements MoLoc's serving stage (paper Sec. V) as an
// online API: it consumes raw, timestamped IMU samples and WiFi scans
// as a phone would produce them (10 Hz sensors, ~2 Hz scans), segments
// time into fixed localization intervals (3 s in the paper), extracts
// the relative location measurement of each interval, and emits one
// location fix per interval from the MoLoc localizer.
//
// The tracker self-calibrates the compass placement offset online, in
// the spirit of Zee: whenever two consecutive fixes land on distinct
// reference locations, the interval's compass mean is compared with the
// map bearing between them.
package tracker

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"moloc/internal/fingerprint"
	"moloc/internal/floorplan"
	"moloc/internal/localizer"
	"moloc/internal/motion"
	"moloc/internal/motiondb"
	"moloc/internal/sensors"
)

// Config parameterizes a tracking session.
type Config struct {
	// IntervalSec is the localization interval (3 s in the paper).
	IntervalSec float64
	// StaleScanSec is the scan staleness window: when an interval closes
	// with no scan of its own, the most recent scan may still serve as
	// its fingerprint if it arrived no more than StaleScanSec before the
	// interval started. The paper's phone scans at ~2 Hz, so a scan
	// never legitimately predates its interval by more than one interval
	// — NewConfig therefore defaults the window to one IntervalSec,
	// which tolerates a scan straddling the boundary without feeding
	// Eq. 4 long-outdated RSS. Zero is valid and means strict: only
	// scans inside the interval count.
	StaleScanSec float64
	// StepLen is the user's step length in meters, from the
	// height/weight model of motion.StepLength.
	StepLen float64
	// Motion holds the motion-processing constants.
	Motion motion.Config
	// MoLoc holds the localizer parameters.
	MoLoc localizer.Config
}

// NewConfig returns the paper's serving parameters for a user with the
// given step length.
func NewConfig(stepLen float64) Config {
	return Config{
		IntervalSec:  3,
		StaleScanSec: 3,
		StepLen:      stepLen,
		Motion:       motion.NewConfig(),
		MoLoc:        localizer.NewConfig(),
	}
}

// Validate rejects unusable tracker configuration.
func (c Config) Validate() error {
	if c.IntervalSec <= 0 {
		return fmt.Errorf("tracker: interval must be positive, got %g", c.IntervalSec)
	}
	if c.StaleScanSec < 0 || math.IsNaN(c.StaleScanSec) {
		return fmt.Errorf("tracker: scan staleness window must be >= 0, got %g", c.StaleScanSec)
	}
	if c.StepLen <= 0 || c.StepLen > 2 {
		return fmt.Errorf("tracker: implausible step length %g", c.StepLen)
	}
	if err := c.Motion.Validate(); err != nil {
		return err
	}
	return c.MoLoc.Validate()
}

// Mode says which pipeline produced a fix. The serving layer's
// degradation ladder switches sessions to ModeFingerprint when the
// motion database is unavailable (corrupt checkpoint, failing WAL
// disk): localization keeps flowing on the paper's pure fingerprint
// path (Eq. 2–4) instead of going dark.
type Mode uint8

// Fix modes.
const (
	// ModeMoLoc is the full pipeline: fingerprinting plus motion
	// matching against the motion database.
	ModeMoLoc Mode = iota
	// ModeFingerprint is the degraded pipeline: fingerprint evidence
	// only, no motion extraction or matching.
	ModeFingerprint
)

// String returns the mode tag used in API responses.
func (m Mode) String() string {
	if m == ModeFingerprint {
		return "fingerprint"
	}
	return "moloc"
}

// Fix is one localization result.
type Fix struct {
	// T is the end of the localization interval, in seconds.
	T float64
	// Loc is the estimated reference location ID.
	Loc int
	// Moved reports whether motion matching contributed (the user was
	// walking and a previous candidate set existed).
	Moved bool
	// Mode says which pipeline produced the fix.
	Mode Mode
	// Candidates is the retained candidate set, most probable first.
	Candidates []fingerprint.Candidate
}

// Stats counts a session's activity, for observability: the serving
// layer surfaces these through its metrics endpoint.
type Stats struct {
	// SamplesIn and SamplesDropped count IMU samples accepted and
	// rejected (out of order).
	SamplesIn      int64 `json:"samples_in"`
	SamplesDropped int64 `json:"samples_dropped"`
	// Scans counts WiFi scans received.
	Scans int64 `json:"scans"`
	// Fixes counts emitted fixes.
	Fixes int64 `json:"fixes"`
	// IntervalsClosed counts intervals individually closed by Tick,
	// whether or not they produced a fix; IntervalsSkipped counts the
	// empty intervals fast-forwarded in bulk when a tick arrives late.
	IntervalsClosed  int64 `json:"intervals_closed"`
	IntervalsSkipped int64 `json:"intervals_skipped"`
	// NoScanIntervals counts closed intervals with no usable scan (no
	// fix emitted); StaleServes counts fixes whose fingerprint predated
	// the interval but fell inside the staleness window.
	NoScanIntervals int64 `json:"no_scan_intervals"`
	StaleServes     int64 `json:"stale_serves"`
	// SnapshotSwaps counts retrained motion-index views this session
	// adopted from the serving layer's RCU snapshot (see UseSnapshot).
	SnapshotSwaps int64 `json:"snapshot_swaps"`
	// FingerprintOnlyFixes counts fixes emitted in ModeFingerprint
	// while the serving layer was degraded.
	FingerprintOnlyFixes int64 `json:"fingerprint_only_fixes"`
}

// Tracker is one user's tracking session.
type Tracker struct {
	cfg  Config
	plan *floorplan.Plan
	ml   *localizer.MoLoc
	est  motion.HeadingEstimator

	// snap, when non-nil, is the serving layer's RCU-published motion
	// index. Tick acquires the current view once at entry — one atomic
	// load — and swaps the localizer's compiled index when it changed,
	// so a long-lived session picks up online retraining without any
	// lock on the serving path. curCmp is the view currently adopted.
	//
	//moloc:snapshot
	snap   *atomic.Pointer[motiondb.Compiled]
	curCmp *motiondb.Compiled

	// fpOnly, when set, skips motion extraction so every fix runs the
	// pure fingerprint path (see Mode).
	fpOnly bool

	intervalStart float64
	started       bool
	lastEvent     float64
	samples       []sensors.Sample
	scans         []scanRec
	lastFix       *Fix
	stats         Stats

	// fixBuf is Tick's reused TickBatch destination.
	//moloc:reuse
	fixBuf []Fix
}

// scanRec is one buffered WiFi scan. Scans are buffered (not just the
// newest kept) so that each interval closed by a late tick is served
// by its own scan, and so a scan arriving just past a boundary cannot
// shadow the still-valid one before it.
type scanRec struct {
	t  float64
	fp fingerprint.Fingerprint
}

// maxBufferedScans bounds the scan buffer when no tick ever drains it;
// at the paper's 2 Hz scan rate it covers several minutes of catch-up.
const maxBufferedScans = 1024

// New creates a tracking session over a candidate source, motion
// database, and floor plan (used for online heading calibration).
func New(plan *floorplan.Plan, src fingerprint.CandidateSource,
	mdb *motiondb.DB, cfg Config) (*Tracker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if plan.NumLocs() != mdb.NumLocs() {
		return nil, fmt.Errorf("tracker: plan has %d locations, motion DB %d",
			plan.NumLocs(), mdb.NumLocs())
	}
	ml, err := localizer.NewMoLoc(src, mdb, cfg.MoLoc)
	if err != nil {
		return nil, err
	}
	return &Tracker{cfg: cfg, plan: plan, ml: ml}, nil
}

// UseSnapshot attaches a shared snapshot pointer published by the
// serving layer. The current view (if any) is adopted immediately;
// later publications are picked up at the next Tick. A published view
// that fails localizer validation — compiled for different parameters
// or locations — is ignored and the session keeps serving from its
// current index, so a bad publish degrades to staleness, not an outage.
func (t *Tracker) UseSnapshot(snap *atomic.Pointer[motiondb.Compiled]) {
	t.snap = snap
	if t.snap == nil {
		t.curCmp = nil
		return
	}
	if c := t.snap.Load(); c != nil && t.ml.UseCompiled(c) == nil {
		t.curCmp = c
	}
}

// SetFingerprintOnly switches the session between the full pipeline
// and pure fingerprint localization. The serving layer flips it per
// tick from its degradation state; it is not safe to call concurrently
// with Tick (the server serializes all access to a session).
func (t *Tracker) SetFingerprintOnly(on bool) { t.fpOnly = on }

// acquireSnapshot adopts a newly published motion index; called once
// per Tick so every interval closed by that tick sees one consistent
// view.
func (t *Tracker) acquireSnapshot() {
	if t.snap == nil {
		return
	}
	t.adoptCompiled(t.snap.Load())
}

// adoptCompiled swaps the localizer onto c when it is a new view. It is
// the snapshot-free half of acquireSnapshot: the server-paced path
// loads the RCU pointer once per (worker, slot) batch and hands every
// tracker in the batch the same view through TickBatchShared, so N
// paced sessions cost one atomic load instead of N. SnapshotSwaps still
// counts per-tracker adoptions, so the amortization is observable: with
// pacing on, swaps lag far behind batch counts.
func (t *Tracker) adoptCompiled(c *motiondb.Compiled) {
	if c == nil || c == t.curCmp {
		return
	}
	if t.ml.UseCompiled(c) == nil {
		t.curCmp = c
		t.stats.SnapshotSwaps++
	}
}

// AddIMU feeds one IMU sample. Samples must arrive in time order;
// out-of-order samples are dropped, keeping the buffer sorted so Tick
// can partition it by interval boundary.
func (t *Tracker) AddIMU(s sensors.Sample) {
	if math.IsNaN(s.T) || math.IsInf(s.T, 0) {
		t.stats.SamplesDropped++
		return
	}
	if !t.started {
		t.started = true
		t.intervalStart = s.T
		t.lastEvent = s.T
	}
	if n := len(t.samples); n > 0 && s.T < t.samples[n-1].T {
		t.stats.SamplesDropped++
		return
	}
	t.samples = append(t.samples, s)
	if s.T > t.lastEvent {
		t.lastEvent = s.T
	}
	t.stats.SamplesIn++
}

// AddScan feeds one WiFi scan. Scans must arrive in time order;
// out-of-order scans are dropped. The most recent scan of an interval
// is the fingerprint the paper's phone queries with.
func (t *Tracker) AddScan(ts float64, fp fingerprint.Fingerprint) {
	if math.IsNaN(ts) || math.IsInf(ts, 0) {
		return
	}
	if !t.started {
		t.started = true
		t.intervalStart = ts
		t.lastEvent = ts
	}
	if n := len(t.scans); n > 0 && ts < t.scans[n-1].t {
		return
	}
	if ts > t.lastEvent {
		t.lastEvent = ts
	}
	t.scans = append(t.scans, scanRec{t: ts, fp: fp})
	if len(t.scans) > maxBufferedScans {
		t.scans = append(t.scans[:0], t.scans[len(t.scans)-maxBufferedScans:]...)
	}
	t.stats.Scans++
}

// Tick closes every localization interval that now has passed and
// returns the most recent fix those intervals produced. ok is false
// when the current interval is still open or no closed interval had a
// usable scan.
//
// Scan policy: an interval [start, end) is served by the most recent
// scan with timestamp in [start-StaleScanSec, end). A scan that
// arrived shortly before the interval (within the staleness window,
// one interval by default) still serves — the paper's 2 Hz scan rate
// straddles boundaries routinely — but an older scan does not, so an
// interval genuinely without RSS yields no fix rather than feeding
// Eq. 4 outdated data.
//
// Late ticks: when now lags several intervals behind (a phone that
// slept, a batched client), buffered samples are partitioned by
// interval boundary and each interval is closed in order, so the
// posterior of Eq. 7 sees per-interval motion rather than one
// super-interval; stretches with neither samples nor scans are
// fast-forwarded in O(1) so intervalStart always catches up to now.
func (t *Tracker) Tick(now float64) (Fix, bool) {
	t.fixBuf = t.TickBatch(now, t.fixBuf[:0])
	if len(t.fixBuf) == 0 {
		return Fix{}, false
	}
	return t.fixBuf[len(t.fixBuf)-1], true
}

// TickBatch is Tick for batched clients: it closes every elapsed
// interval exactly as Tick does but appends every fix those intervals
// produced to dst (which may be nil) instead of keeping only the last,
// and returns the extended slice. The RCU motion-index snapshot is
// acquired once for the whole batch, so every interval it closes sees
// one consistent view. A sequence of TickBatch calls is equivalent to
// the same sequence of Tick calls — each elapsed interval is closed by
// whichever call first observes its end.
//
//moloc:reuse
func (t *Tracker) TickBatch(now float64, dst []Fix) []Fix {
	if !t.started || math.IsNaN(now) || math.IsInf(now, 0) {
		return dst
	}
	t.acquireSnapshot()
	return t.tickLoop(now, dst)
}

// TickBatchShared is TickBatch with the motion-index view supplied by
// the caller instead of loaded from the RCU snapshot: the server-paced
// tick wheel loads the snapshot once per (worker, slot) batch and runs
// every due tracker against that one view, so a slot of N sessions
// costs one atomic load, not N. Passing the current snapshot value
// yields exactly TickBatch's behavior — the shared view goes through
// the same adoption (and validation) path — so paced and client-paced
// sessions produce identical fixes for identical event sequences.
//
//moloc:reuse
func (t *Tracker) TickBatchShared(cmp *motiondb.Compiled, now float64, dst []Fix) []Fix {
	if !t.started || math.IsNaN(now) || math.IsInf(now, 0) {
		return dst
	}
	t.adoptCompiled(cmp)
	return t.tickLoop(now, dst)
}

// LastEventTime returns the timestamp of the newest accepted IMU sample
// or scan; ok is false before the first event. It is the paced serving
// path's tick clock: ticking at the last event time closes exactly the
// intervals a client ticking after each upload would close, which is
// what makes server pacing bit-identical to client pacing (see
// TickBatch's equivalence contract).
func (t *Tracker) LastEventTime() (float64, bool) {
	return t.lastEvent, t.started
}

// tickLoop closes every interval elapsed at now, appending fixes to
// dst. Callers have already validated now and adopted a motion view.
func (t *Tracker) tickLoop(now float64, dst []Fix) []Fix {
	for now >= t.intervalStart+t.cfg.IntervalSec {
		start := t.intervalStart
		end := start + t.cfg.IntervalSec
		cut := sort.Search(len(t.samples), func(i int) bool {
			return t.samples[i].T >= end
		})
		if _, ok := t.scanFor(start, end); cut == 0 && !ok {
			t.fastForward(now, end)
			continue
		}
		samples := t.samples[:cut:cut]
		t.intervalStart = end
		t.stats.IntervalsClosed++
		if fix, ok := t.closeInterval(start, end, samples); ok {
			dst = append(dst, fix)
		}
		// Compact the consumed interval out of the buffer front so a
		// long-lived session reuses one backing array instead of letting
		// re-slicing walk it forward realloc by realloc.
		n := copy(t.samples, t.samples[cut:])
		t.samples = t.samples[:n]
		t.pruneScans()
	}
	return dst
}

// staleCutoff is the single definition of the staleness-window edge: a
// scan serves an interval starting at start iff its timestamp is in
// [start-StaleScanSec, end). Both the serve check (scanFor) and the
// buffer pruning (pruneScans) go through it, so the inclusive boundary
// cannot drift between them: a scan landing exactly on the edge is
// both served and retained.
func (t *Tracker) staleCutoff(start float64) float64 {
	return start - t.cfg.StaleScanSec
}

// scanFor returns the scan serving the interval [start, end): the most
// recent buffered scan before end, provided it is not older than the
// staleness window before start (see staleCutoff).
func (t *Tracker) scanFor(start, end float64) (scanRec, bool) {
	i := sort.Search(len(t.scans), func(i int) bool {
		return t.scans[i].t >= end
	}) - 1
	if i < 0 || t.scans[i].t < t.staleCutoff(start) {
		return scanRec{}, false
	}
	return t.scans[i], true
}

// pruneScans drops buffered scans too old to serve any future interval:
// every upcoming interval starts at or after intervalStart, so exactly
// the scans below staleCutoff(intervalStart) are dead.
func (t *Tracker) pruneScans() {
	cut := sort.Search(len(t.scans), func(i int) bool {
		return t.scans[i].t >= t.staleCutoff(t.intervalStart)
	})
	if cut > 0 {
		t.scans = append(t.scans[:0], t.scans[cut:]...)
	}
}

// fastForward skips the empty intervals between end-IntervalSec and
// the next event (first buffered sample, first future scan, or now) in
// one arithmetic step, so a tick arriving hours late cannot loop per
// empty interval.
func (t *Tracker) fastForward(now, end float64) {
	next := now
	if len(t.samples) > 0 && t.samples[0].T < next {
		next = t.samples[0].T
	}
	if i := sort.Search(len(t.scans), func(i int) bool {
		return t.scans[i].t >= end
	}); i < len(t.scans) && t.scans[i].t < next {
		next = t.scans[i].t
	}
	n := math.Floor((next - t.intervalStart) / t.cfg.IntervalSec)
	if n < 1 {
		n = 1
	}
	t.stats.IntervalsSkipped += int64(math.Min(n, math.MaxInt32))
	t.intervalStart += n * t.cfg.IntervalSec
}

// closeInterval runs the serving pipeline for one closed interval:
// motion extraction over its samples, localization against its scan,
// and online heading calibration.
func (t *Tracker) closeInterval(start, end float64, samples []sensors.Sample) (Fix, bool) {
	scan, ok := t.scanFor(start, end)
	if !ok {
		t.stats.NoScanIntervals++
		return Fix{}, false
	}
	if scan.t < start {
		t.stats.StaleServes++
	}
	obs := localizer.Observation{FP: scan.fp}
	var compassMean float64
	// Degraded mode skips motion extraction entirely: with obs.Motion
	// nil the localizer takes the pure fingerprint path of Eq. 2–4, so
	// a session keeps producing fixes with no motion database at all.
	if !t.fpOnly {
		if rlm, ok := motion.Extract(t.cfg.Motion, samples, start, end,
			t.cfg.StepLen, &t.est); ok {
			obs.Motion = &rlm
			compassMean = motion.MeanHeading(samples)
		}
	}

	mode := ModeMoLoc
	if t.fpOnly {
		mode = ModeFingerprint
		t.stats.FingerprintOnlyFixes++
	}
	loc := t.ml.Localize(obs)
	fix := Fix{
		T:     end,
		Loc:   loc,
		Moved: obs.Motion != nil && t.lastFix != nil,
		Mode:  mode,
		// Fixes outlive the interval (LastFix, API responses), so the
		// candidate set is copied: the localizer reuses its backing
		// buffer on the next Localize.
		Candidates: append([]fingerprint.Candidate(nil), t.ml.Candidates()...),
	}

	// Online placement calibration: a walking interval that moved the
	// estimate between distinct locations yields one (compass mean, map
	// bearing) pair.
	if obs.Motion != nil && t.lastFix != nil && t.lastFix.Loc != loc {
		t.est.Observe(compassMean, t.plan.LocBearing(t.lastFix.Loc, loc))
	}
	t.lastFix = &fix
	t.stats.Fixes++
	return fix, true
}

// LastFix returns the most recent fix, or nil before the first one.
func (t *Tracker) LastFix() *Fix { return t.lastFix }

// Stats returns the session's activity counters.
func (t *Tracker) Stats() Stats { return t.stats }

// Reset clears the session state (candidates, calibration, buffers,
// activity counters).
func (t *Tracker) Reset() {
	t.ml.Reset()
	t.est = motion.HeadingEstimator{}
	t.samples = nil
	t.scans = nil
	t.started = false
	t.lastEvent = 0
	t.lastFix = nil
	t.fixBuf = nil
	t.stats = Stats{}
}
