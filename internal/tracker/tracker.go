// Package tracker implements MoLoc's serving stage (paper Sec. V) as an
// online API: it consumes raw, timestamped IMU samples and WiFi scans
// as a phone would produce them (10 Hz sensors, ~2 Hz scans), segments
// time into fixed localization intervals (3 s in the paper), extracts
// the relative location measurement of each interval, and emits one
// location fix per interval from the MoLoc localizer.
//
// The tracker self-calibrates the compass placement offset online, in
// the spirit of Zee: whenever two consecutive fixes land on distinct
// reference locations, the interval's compass mean is compared with the
// map bearing between them.
package tracker

import (
	"fmt"

	"moloc/internal/fingerprint"
	"moloc/internal/floorplan"
	"moloc/internal/localizer"
	"moloc/internal/motion"
	"moloc/internal/motiondb"
	"moloc/internal/sensors"
)

// Config parameterizes a tracking session.
type Config struct {
	// IntervalSec is the localization interval (3 s in the paper).
	IntervalSec float64
	// StepLen is the user's step length in meters, from the
	// height/weight model of motion.StepLength.
	StepLen float64
	// Motion holds the motion-processing constants.
	Motion motion.Config
	// MoLoc holds the localizer parameters.
	MoLoc localizer.Config
}

// NewConfig returns the paper's serving parameters for a user with the
// given step length.
func NewConfig(stepLen float64) Config {
	return Config{
		IntervalSec: 3,
		StepLen:     stepLen,
		Motion:      motion.NewConfig(),
		MoLoc:       localizer.NewConfig(),
	}
}

// Validate rejects unusable tracker configuration.
func (c Config) Validate() error {
	if c.IntervalSec <= 0 {
		return fmt.Errorf("tracker: interval must be positive, got %g", c.IntervalSec)
	}
	if c.StepLen <= 0 || c.StepLen > 2 {
		return fmt.Errorf("tracker: implausible step length %g", c.StepLen)
	}
	if err := c.Motion.Validate(); err != nil {
		return err
	}
	return c.MoLoc.Validate()
}

// Fix is one localization result.
type Fix struct {
	// T is the end of the localization interval, in seconds.
	T float64
	// Loc is the estimated reference location ID.
	Loc int
	// Moved reports whether motion matching contributed (the user was
	// walking and a previous candidate set existed).
	Moved bool
	// Candidates is the retained candidate set, most probable first.
	Candidates []fingerprint.Candidate
}

// Tracker is one user's tracking session.
type Tracker struct {
	cfg  Config
	plan *floorplan.Plan
	ml   *localizer.MoLoc
	est  motion.HeadingEstimator

	intervalStart float64
	started       bool
	samples       []sensors.Sample
	lastScan      fingerprint.Fingerprint
	haveScan      bool
	lastFix       *Fix
}

// New creates a tracking session over a candidate source, motion
// database, and floor plan (used for online heading calibration).
func New(plan *floorplan.Plan, src fingerprint.CandidateSource,
	mdb *motiondb.DB, cfg Config) (*Tracker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if plan.NumLocs() != mdb.NumLocs() {
		return nil, fmt.Errorf("tracker: plan has %d locations, motion DB %d",
			plan.NumLocs(), mdb.NumLocs())
	}
	ml, err := localizer.NewMoLoc(src, mdb, cfg.MoLoc)
	if err != nil {
		return nil, err
	}
	return &Tracker{cfg: cfg, plan: plan, ml: ml}, nil
}

// AddIMU feeds one IMU sample. Samples must arrive in time order;
// out-of-order samples are dropped.
func (t *Tracker) AddIMU(s sensors.Sample) {
	if !t.started {
		t.started = true
		t.intervalStart = s.T
	}
	if n := len(t.samples); n > 0 && s.T < t.samples[n-1].T {
		return
	}
	t.samples = append(t.samples, s)
}

// AddScan feeds one WiFi scan. The most recent scan of an interval is
// the fingerprint the paper's phone queries with.
func (t *Tracker) AddScan(ts float64, fp fingerprint.Fingerprint) {
	if !t.started {
		t.started = true
		t.intervalStart = ts
	}
	t.lastScan = fp
	t.haveScan = true
}

// Tick closes the current localization interval when now has passed its
// end and returns the fix. ok is false when the interval is still open
// or no scan arrived during it.
func (t *Tracker) Tick(now float64) (Fix, bool) {
	if !t.started || now < t.intervalStart+t.cfg.IntervalSec {
		return Fix{}, false
	}
	end := t.intervalStart + t.cfg.IntervalSec
	samples := t.samples
	t.samples = nil
	start := t.intervalStart
	t.intervalStart = end

	if !t.haveScan {
		return Fix{}, false
	}
	obs := localizer.Observation{FP: t.lastScan}
	var compassMean float64
	if rlm, ok := motion.Extract(t.cfg.Motion, samples, start, end,
		t.cfg.StepLen, &t.est); ok {
		obs.Motion = &rlm
		compassMean = motion.MeanHeading(samples)
	}

	loc := t.ml.Localize(obs)
	fix := Fix{
		T:          end,
		Loc:        loc,
		Moved:      obs.Motion != nil && t.lastFix != nil,
		Candidates: t.ml.Candidates(),
	}

	// Online placement calibration: a walking interval that moved the
	// estimate between distinct locations yields one (compass mean, map
	// bearing) pair.
	if obs.Motion != nil && t.lastFix != nil && t.lastFix.Loc != loc {
		t.est.Observe(compassMean, t.plan.LocBearing(t.lastFix.Loc, loc))
	}
	t.lastFix = &fix
	return fix, true
}

// LastFix returns the most recent fix, or nil before the first one.
func (t *Tracker) LastFix() *Fix { return t.lastFix }

// Reset clears the session state (candidates, calibration, buffers).
func (t *Tracker) Reset() {
	t.ml.Reset()
	t.est = motion.HeadingEstimator{}
	t.samples = nil
	t.haveScan = false
	t.started = false
	t.lastFix = nil
}
