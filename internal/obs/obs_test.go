package obs

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters never run backwards
	if got := c.Value(); got != 5 {
		t.Errorf("Value = %d, want 5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500, math.NaN()} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// 0.5 and 1 land in <=1; 5 in <=10; 50 in <=100; 500 overflows; NaN dropped.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (snapshot %+v)", i, s.Counts[i], w, s)
		}
	}
	if s.Count != 5 {
		t.Errorf("Count = %d, want 5", s.Count)
	}
	if math.Abs(s.Sum-556.5) > 1e-9 {
		t.Errorf("Sum = %g, want 556.5", s.Sum)
	}
}

func TestNewHistogramRejectsBadBounds(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {3, 1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bounds %v should panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestRegistryReturnsStableHandles(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("Counter handle not stable")
	}
	if r.Histogram("h", LatencyBuckets) != r.Histogram("h", SizeBuckets) {
		t.Error("Histogram handle not stable across differing bounds")
	}
}

func TestRegistrySnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests").Add(7)
	r.Histogram("latency", []float64{0.1, 1}).Observe(0.05)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["requests"] != 7 {
		t.Errorf("round-trip counter = %d", back.Counters["requests"])
	}
	if h := back.Histograms["latency"]; h.Count != 1 || h.Counts[0] != 1 {
		t.Errorf("round-trip histogram = %+v", h)
	}
}

// TestConcurrentObservations exercises the lock-free paths under the
// race detector.
func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("n")
			h := r.Histogram("v", SizeBuckets)
			for i := 0; i < iters; i++ {
				c.Inc()
				h.Observe(float64(i % 40))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("n").Value(); got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
	s := r.Histogram("v", SizeBuckets).Snapshot()
	if s.Count != workers*iters {
		t.Errorf("histogram count = %d, want %d", s.Count, workers*iters)
	}
	var sum int64
	for _, c := range s.Counts {
		sum += c
	}
	if sum != s.Count {
		t.Errorf("bucket sum %d != count %d", sum, s.Count)
	}
}
