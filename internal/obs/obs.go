// Package obs provides the dependency-free observability primitives of
// the serving layer: atomic counters and fixed-bucket latency
// histograms collected in a registry that snapshots to JSON for the
// /v1/metricsz endpoint.
//
// The package deliberately reimplements the tiny subset of a metrics
// library the server needs rather than importing one: counters and
// histograms are lock-free on the hot path (a single atomic add per
// observation), and the registry mutex is only taken on first use of a
// name and on snapshot.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count, safe for
// concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n, which must be non-negative; negative deltas are ignored
// so a counter can never run backwards.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Histogram accumulates observations into fixed buckets chosen at
// construction. Buckets are cumulative-upper-bound style: counts[i]
// holds observations <= bounds[i], and the final slot holds the
// overflow. Observation is one atomic add; Sum is kept as float64 bits
// under compare-and-swap so mean latency can be derived.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	total  atomic.Int64
	sum    atomic.Uint64 // math.Float64bits
}

// NewHistogram builds a histogram over the given strictly increasing
// upper bounds. It panics on an empty or unsorted bound list, which is
// a programming error (bounds are compile-time constants in practice).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 || !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("obs: histogram bounds must be non-empty and sorted, got %v", bounds))
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Snapshot freezes the histogram for serialization.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Count:  h.Count(),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is the JSON form of a histogram: Counts[i] is the
// number of observations <= Bounds[i]; the final extra slot is the
// overflow bucket.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the observed
// distribution by linear interpolation inside the bucket containing the
// target rank: values within a bucket are assumed uniform between its
// lower and upper bound. The overflow bucket has no upper bound, so a
// rank landing there reports the highest finite bound — an estimate
// that is deliberately a lower bound rather than an invention. Returns
// 0 for an empty histogram or an out-of-range q.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count <= 0 || q < 0 || q > 1 || len(s.Bounds) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, n := range s.Counts {
		next := cum + float64(n)
		if next < rank || n == 0 {
			cum = next
			continue
		}
		hi := s.Bounds[len(s.Bounds)-1]
		lo := 0.0
		if i < len(s.Bounds) {
			hi = s.Bounds[i]
		}
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		if i >= len(s.Bounds) {
			return hi // overflow bucket: report the last finite bound
		}
		return lo + (hi-lo)*(rank-cum)/float64(n)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// LatencyBuckets are the default request-latency bounds in seconds,
// spanning sub-millisecond in-process handling to multi-second stalls.
var LatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// SizeBuckets are the default bounds for small-cardinality size
// distributions such as candidate-set sizes or batch lengths.
var SizeBuckets = []float64{1, 2, 3, 5, 8, 13, 21, 34, 55}

// BytesBuckets are the default bounds for byte-volume distributions
// such as per-operation heap allocations, spanning an allocation-free
// fast path (first bucket) to multi-megabyte outliers.
var BytesBuckets = []float64{
	0, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20,
}

// GaugeFunc reports an instantaneous level (a queue depth, a pool
// size). Gauges are callback-based: nothing is recorded on the hot
// path; the function is evaluated only when the registry snapshots, so
// instrumenting a queue costs its producer nothing. The callback must
// be safe to invoke from any goroutine.
type GaugeFunc func() int64

// Registry is a named collection of counters, histograms, and gauges.
// Metric handles are stable: the pointer returned for a name never
// changes, so callers should look up once and hold the handle on hot
// paths.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	histograms map[string]*Histogram
	gauges     map[string]GaugeFunc
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		histograms: make(map[string]*Histogram),
		gauges:     make(map[string]GaugeFunc),
	}
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the histogram registered under name, creating it
// with the given bounds on first use. Later calls ignore bounds, so
// concurrent callers always share one instance.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Gauge registers fn under name, replacing any previous registration
// (a re-registered gauge simply reads from the new source).
func (r *Registry) Gauge(name string, fn GaugeFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[name] = fn
}

// Snapshot freezes every registered metric. Counters and histograms
// keep accumulating while the snapshot is taken; each individual value
// is atomically read, so the snapshot is per-metric consistent. Gauge
// callbacks are evaluated here, under the registry lock, so they must
// not themselves register metrics.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
		Gauges:     make(map[string]int64, len(r.gauges)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.Snapshot()
	}
	for name, fn := range r.gauges {
		s.Gauges[name] = fn()
	}
	return s
}

// Snapshot is the JSON form of a registry, served by /v1/metricsz.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
}
