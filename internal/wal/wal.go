// Package wal implements the observation write-ahead log: an
// append-only, segment-rotating, CRC32C-checksummed record log through
// which the server makes crowdsourced observation batches durable
// before acknowledging them (paper Sec. IV: the motion database is the
// asset; the WAL is what lets a crash keep none of its acknowledged
// training data).
//
// Durability contract: Append returns the record's sequence number only
// after the record is durable per the configured SyncPolicy. On Open,
// existing segments are replayed in order and a torn tail — a partial
// header, a short payload, or a checksum mismatch at the end of the log
// — is truncated rather than refusing to boot; replay therefore yields
// exactly the records whose Append completed (at-least-once: a record
// written but unacknowledged because its fsync failed may still
// replay).
//
// All I/O goes through the fault.FS seam, so every failure mode (EIO on
// fsync, short write, crash between operations, full disk) is
// reproducible in tests.
package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"moloc/internal/fault"
)

// SyncPolicy selects when Append makes records durable.
type SyncPolicy int

// Fsync policies, in decreasing durability order.
const (
	// SyncAlways fsyncs after every append: an acknowledged record
	// survives kill -9 and power loss. The default.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs at most once per SyncEvery (group commit):
	// an acknowledged record survives process crashes immediately (it
	// is in the OS page cache) and power loss after at most SyncEvery.
	SyncInterval
	// SyncNone never fsyncs explicitly; the OS flushes on its own
	// schedule. Fastest, weakest.
	SyncNone
)

// ParseSyncPolicy maps the -fsync flag values to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or none)", s)
}

// String names the policy as ParseSyncPolicy accepts it.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// Defaults for the zero fields of Options.
const (
	DefaultSegmentBytes   = 4 << 20
	DefaultMaxRecordBytes = 8 << 20
	DefaultSyncEvery      = 100 * time.Millisecond
)

// Options configure a Log. The zero value selects the defaults: real
// disk, 4 MiB segments, fsync on every append.
type Options struct {
	// FS is the filesystem seam; nil selects the real disk.
	FS fault.FS
	// SegmentBytes rotates to a fresh segment file once the active one
	// reaches this size.
	SegmentBytes int64
	// MaxRecordBytes bounds a single record's payload, and on replay
	// bounds how much a corrupt length prefix can demand.
	MaxRecordBytes int
	// Policy is the fsync policy.
	Policy SyncPolicy
	// SyncEvery is the group-commit window of SyncInterval.
	SyncEvery time.Duration
	// Now is the clock seam for SyncInterval; nil selects time.Now.
	Now fault.Clock
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = fault.Disk{}
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.MaxRecordBytes <= 0 {
		o.MaxRecordBytes = DefaultMaxRecordBytes
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = DefaultSyncEvery
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// ReplayStats describes what Open found and repaired.
type ReplayStats struct {
	// Records is how many valid records replayed.
	Records int
	// TornBytes is how many trailing bytes were truncated away.
	TornBytes int64
	// Truncations counts segments cut back (0 or 1 in practice).
	Truncations int
	// DroppedSegments counts whole segments discarded because they
	// followed a corrupt one.
	DroppedSegments int
}

// ErrClosed is returned by operations on a closed log.
var ErrClosed = fmt.Errorf("wal: log is closed")

// segment is one on-disk segment file; first is the sequence number of
// its first record (also encoded in its name).
type segment struct {
	name  string
	first uint64
}

// Log is an open write-ahead log. Methods are safe for concurrent use.
type Log struct {
	dir string
	o   Options
	fs  fault.FS

	mu        sync.Mutex
	segs      []segment // sorted; last is active
	f         fault.File
	size      int64 // durable-consistent size of the active segment; SegmentBytes doubles as a force-rotation sentinel
	tail      int64 // exact valid byte length of the last segment (no sentinel) — the read limit for ReadFrom
	nextSeq   uint64
	lastSync  time.Time
	torn      bool // a failed write may have left a partial record
	closed    bool
	buf       []byte
	openStats ReplayStats
}

const (
	segPrefix = "wal-"
	segSuffix = ".seg"
)

func segName(firstSeq uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, firstSeq, segSuffix)
}

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	var seq uint64
	if _, err := fmt.Sscanf(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix),
		"%016x", &seq); err != nil {
		return 0, false
	}
	return seq, true
}

// Open opens (creating if needed) the log in dir, replaying every
// existing record through fn in sequence order. A torn or corrupt tail
// is truncated — and any segments after the defect dropped — so Open
// refuses to boot only on real I/O errors or a replay callback error.
// fn may be nil.
func Open(dir string, o Options, fn func(seq uint64, payload []byte) error) (*Log, error) {
	o = o.withDefaults()
	fs := o.FS
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: mkdir %s: %w", dir, err)
	}
	ents, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: readdir %s: %w", dir, err)
	}
	l := &Log{dir: dir, o: o, fs: fs}
	for _, e := range ents {
		if first, ok := parseSegName(e.Name()); ok {
			l.segs = append(l.segs, segment{name: e.Name(), first: first})
		}
	}
	sort.Slice(l.segs, func(i, j int) bool { return l.segs[i].first < l.segs[j].first })

	l.nextSeq = 1
	if len(l.segs) > 0 {
		l.nextSeq = l.segs[0].first
	}
	var lastSize int64
	for i := 0; i < len(l.segs); i++ {
		seg := l.segs[i]
		// Whole segments may have been pruned after a checkpoint, so a
		// forward jump at a segment boundary is legal; going backwards
		// would mean overlapping records and is treated as corruption.
		if seg.first < l.nextSeq {
			l.dropFromLocked(i)
			break
		}
		l.nextSeq = seg.first
		path := filepath.Join(dir, seg.name)
		data, err := readFile(fs, path)
		if err != nil {
			return nil, fmt.Errorf("wal: read %s: %w", path, err)
		}
		off, recs, defect, err := scanRecords(data, seg.first, o.MaxRecordBytes, fn)
		if err != nil {
			return nil, fmt.Errorf("wal: replay %s: %w", path, err)
		}
		l.nextSeq += uint64(recs)
		l.openStats.Records += recs
		lastSize = off
		if defect != nil {
			// Torn tail (or mid-log corruption): cut the segment back to
			// its last valid record and drop anything after it.
			if err := fs.Truncate(path, off); err != nil {
				return nil, fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
			}
			l.openStats.TornBytes += int64(len(data)) - off
			l.openStats.Truncations++
			l.dropFromLocked(i + 1)
			break
		}
	}

	// Reopen the last segment for appending when it has room; otherwise
	// the first Append rotates.
	if n := len(l.segs); n > 0 && lastSize < o.SegmentBytes {
		path := filepath.Join(dir, l.segs[n-1].name)
		f, err := fs.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: reopen %s: %w", path, err)
		}
		l.f = f
		l.size = lastSize
	} else {
		l.size = o.SegmentBytes // force rotation on first append
	}
	l.tail = lastSize
	l.lastSync = o.Now()
	return l, nil
}

// dropFromLocked removes the segments at and after index i (they follow
// a defect and their sequence numbers can no longer be trusted), keeping
// the stats honest about the loss. Callers run during Open, before the
// Log is shared, which satisfies the l.mu guard.
func (l *Log) dropFromLocked(i int) {
	for _, seg := range l.segs[i:] {
		//lint:ignore errdrop best-effort cleanup of untrusted segments; replay already excludes them
		_ = l.fs.Remove(filepath.Join(l.dir, seg.name))
		l.openStats.DroppedSegments++
	}
	l.segs = l.segs[:i]
}

func readFile(fs fault.FS, path string) ([]byte, error) {
	f, err := fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(f)
	cerr := f.Close()
	if err != nil {
		return nil, err
	}
	return data, cerr
}

// OpenStats reports what Open replayed and repaired.
func (l *Log) OpenStats() ReplayStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.openStats
}

// NextSeq returns the sequence number the next Append will use.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// Segments returns the number of live segment files.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// FirstSeq returns the sequence number of the oldest record still
// retained (NextSeq when the log holds no records): reads below it have
// been truncated away behind a checkpoint.
func (l *Log) FirstSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.segs) > 0 {
		return l.segs[0].first
	}
	return l.nextSeq
}

// SegmentInfo describes one live segment file, for replication shipping
// and diagnostics.
type SegmentInfo struct {
	Name  string
	First uint64 // sequence number of the segment's first record
}

// SegmentsSince returns the live segments that may hold records with
// sequence numbers >= seq, oldest first.
func (l *Log) SegmentsSince(seq uint64) []SegmentInfo {
	l.mu.Lock()
	defer l.mu.Unlock()
	// Keep the last segment whose first record is <= seq (it may contain
	// seq) and everything after it.
	start := 0
	for i, seg := range l.segs {
		if seg.first <= seq {
			start = i
		}
	}
	out := make([]SegmentInfo, 0, len(l.segs)-start)
	for _, seg := range l.segs[start:] {
		out = append(out, SegmentInfo{Name: seg.name, First: seg.first})
	}
	return out
}

// ErrTruncated reports a ReadFrom whose requested sequence is no longer
// materialized in the log — truncated behind a checkpoint, or falling
// in a sequence jump introduced by EnsureSeqAtLeast. The reader must
// restart from a checkpoint covering at least that sequence.
var ErrTruncated = errors.New("wal: requested sequence truncated away")

// errStopScan is fn's way to end a ReadFrom scan early once the record
// budget is spent; never escapes to callers.
var errStopScan = errors.New("wal: stop scan")

// readSeg is a consistent point-in-time view of one segment file taken
// under l.mu: sealed segments are immutable and read whole (limit < 0);
// the active segment is read only up to its valid tail at snapshot
// time, so a concurrent append or torn write past it is never observed.
type readSeg struct {
	path  string
	first uint64
	limit int64
}

// ReadFrom streams up to max records with sequence numbers >= from
// through fn, in order, and returns the next sequence to request.
// next == from with a nil error means the caller is caught up. Safe to
// call concurrently with appends: the files are read outside l.mu from
// a snapshot of the segment list. The payload passed to fn aliases a
// per-call read buffer and is only valid during the callback.
func (l *Log) ReadFrom(from uint64, max int, fn func(seq uint64, payload []byte) error) (next uint64, err error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return from, ErrClosed
	}
	first := l.nextSeq
	if len(l.segs) > 0 {
		first = l.segs[0].first
	}
	if from < first {
		l.mu.Unlock()
		return from, ErrTruncated
	}
	if from >= l.nextSeq || max <= 0 {
		l.mu.Unlock()
		return from, nil
	}
	var snaps []readSeg
	for i, seg := range l.segs {
		// end overestimates across an EnsureSeqAtLeast jump; that only
		// costs a skippable read, never skips a holding segment.
		end := l.nextSeq
		if i+1 < len(l.segs) {
			end = l.segs[i+1].first
		}
		if end <= from {
			continue
		}
		rs := readSeg{path: filepath.Join(l.dir, seg.name), first: seg.first, limit: -1}
		if i == len(l.segs)-1 {
			rs.limit = l.tail
		}
		snaps = append(snaps, rs)
	}
	l.mu.Unlock()

	next = from
	count := 0
	for _, rs := range snaps {
		data, rerr := readFile(l.fs, rs.path)
		if rerr != nil {
			if errors.Is(rerr, os.ErrNotExist) {
				// Raced a checkpoint truncation; the checkpoint covers it.
				return next, ErrTruncated
			}
			return next, fmt.Errorf("wal: read %s: %w", rs.path, rerr)
		}
		if rs.limit >= 0 && int64(len(data)) > rs.limit {
			data = data[:rs.limit]
		}
		gap := false
		_, _, defect, serr := scanRecords(data, rs.first, l.o.MaxRecordBytes, func(seq uint64, payload []byte) error {
			if seq < next {
				return nil // below the cursor; already delivered
			}
			if seq != next {
				// A jump at a segment boundary (EnsureSeqAtLeast): the
				// missing range exists only as checkpoint coverage.
				gap = true
				return errStopScan
			}
			if err := fn(seq, payload); err != nil {
				return err
			}
			next = seq + 1
			count++
			if count >= max {
				return errStopScan
			}
			return nil
		})
		if gap {
			return next, ErrTruncated
		}
		if serr != nil {
			if errors.Is(serr, errStopScan) {
				return next, nil
			}
			return next, serr
		}
		if defect != nil {
			return next, fmt.Errorf("wal: scan %s: %w", rs.path, defect)
		}
	}
	if count == 0 {
		// from is below NextSeq yet no record carries it: it fell in a
		// sequence jump whose range only a checkpoint covers.
		return next, ErrTruncated
	}
	return next, nil
}

// EnsureSeqAtLeast guarantees the next append's sequence number exceeds
// seq. The server calls it after checkpoint recovery so new records can
// never be shadowed by an older checkpoint's coverage (possible only
// when the WAL directory was wiped independently of the checkpoints).
func (l *Log) EnsureSeqAtLeast(seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.nextSeq <= seq {
		l.nextSeq = seq + 1
		l.size = l.o.SegmentBytes // rotate so segment naming stays consistent
	}
}

// Append writes one record and returns its sequence number once the
// record is durable per the sync policy. An error means the record must
// not be acknowledged; it may or may not survive on disk (at-least-once
// on replay, never silent loss).
func (l *Log) Append(payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	seq, err := l.appendLocked(payload)
	if err != nil {
		return 0, err
	}
	switch l.o.Policy {
	case SyncAlways:
		if err := l.f.Sync(); err != nil {
			return 0, fmt.Errorf("wal: fsync: %w", err)
		}
		l.lastSync = l.o.Now()
	case SyncInterval:
		if now := l.o.Now(); now.Sub(l.lastSync) >= l.o.SyncEvery {
			if err := l.f.Sync(); err != nil {
				return 0, fmt.Errorf("wal: fsync: %w", err)
			}
			l.lastSync = now
		}
	}
	return seq, nil
}

// AppendNoSync writes one record without making it durable: the write
// lands in the active segment (and the OS page cache) but no fsync is
// issued regardless of policy. The record MUST NOT be acknowledged
// until a covering Sync — in practice GroupCommitter.WaitDurable, which
// amortizes one fsync over every AppendNoSync that raced in. This is
// the split that turns N streams × 1 fsync each into 1 fsync total.
func (l *Log) AppendNoSync(payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(payload)
}

// appendLocked encodes and writes one record under l.mu: torn-tail
// repair, rotation, framing, the write itself — everything but the
// fsync decision, which the caller owns.
func (l *Log) appendLocked(payload []byte) (uint64, error) {
	if l.closed {
		return 0, ErrClosed
	}
	if len(payload) > l.o.MaxRecordBytes {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds the %d-byte cap", len(payload), l.o.MaxRecordBytes)
	}
	if l.torn {
		// A failed write may have left a partial frame; cut the segment
		// back to the last whole record before writing anything new, so a
		// transient error (EIO, brief disk-full) heals instead of
		// poisoning the tail. l.tail, not l.size: size may hold the
		// force-rotation sentinel, which would grow the file with zeros.
		if err := l.fs.Truncate(l.activePathLocked(), l.tail); err != nil {
			return 0, fmt.Errorf("wal: repair torn tail: %w", err)
		}
		l.torn = false
	}
	if l.f == nil || l.size >= l.o.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	l.buf = appendRecord(l.buf[:0], l.nextSeq, payload)
	n, err := l.f.Write(l.buf)
	if err != nil {
		if n > 0 {
			l.torn = true
		}
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	seq := l.nextSeq
	l.nextSeq++
	l.size += int64(n)
	l.tail = l.size
	return seq, nil
}

// Policy reports the configured fsync policy.
func (l *Log) Policy() SyncPolicy {
	return l.o.Policy
}

// SyncIfDue fsyncs only when the SyncInterval cadence has elapsed since
// the last sync; under other policies it does nothing. It lets the
// streaming path honor the interval policy without a timer goroutine:
// each ack release gives the cadence a chance to fire.
func (l *Log) SyncIfDue() error {
	if l.o.Policy != SyncInterval {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.f == nil {
		return nil
	}
	if now := l.o.Now(); now.Sub(l.lastSync) >= l.o.SyncEvery {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: fsync: %w", err)
		}
		l.lastSync = now
	}
	return nil
}

// Sync forces an fsync of the active segment regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.f == nil {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.lastSync = l.o.Now()
	return nil
}

// TruncateThrough removes every segment whose records are all covered
// by seq (a durable checkpoint), never the active segment. Returns how
// many segments were removed.
func (l *Log) TruncateThrough(seq uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	removed := 0
	for len(l.segs) > 1 && l.segs[1].first-1 <= seq {
		path := filepath.Join(l.dir, l.segs[0].name)
		if err := l.fs.Remove(path); err != nil {
			return removed, fmt.Errorf("wal: remove %s: %w", path, err)
		}
		l.segs = l.segs[1:]
		removed++
	}
	if removed > 0 {
		if err := l.fs.SyncDir(l.dir); err != nil {
			return removed, fmt.Errorf("wal: syncdir: %w", err)
		}
	}
	return removed, nil
}

// Close syncs and closes the active segment.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.f == nil {
		return nil
	}
	serr := l.f.Sync()
	cerr := l.f.Close()
	l.f = nil
	if serr != nil {
		return fmt.Errorf("wal: close sync: %w", serr)
	}
	if cerr != nil {
		return fmt.Errorf("wal: close: %w", cerr)
	}
	return nil
}

// activePathLocked names the segment currently accepting appends.
// Callers hold l.mu.
func (l *Log) activePathLocked() string {
	return filepath.Join(l.dir, l.segs[len(l.segs)-1].name)
}

// rotateLocked seals the active segment (fsync + close) and starts a
// fresh one named after the next sequence number, fsyncing the
// directory so the new file survives a crash.
func (l *Log) rotateLocked() error {
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: rotate sync: %w", err)
		}
		if err := l.f.Close(); err != nil {
			return fmt.Errorf("wal: rotate close: %w", err)
		}
		l.f = nil
	}
	name := segName(l.nextSeq)
	path := filepath.Join(l.dir, name)
	f, err := l.fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment %s: %w", path, err)
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		//lint:ignore errdrop the segment create failed durability; report that, close is cleanup
		_ = f.Close()
		return fmt.Errorf("wal: syncdir after segment create: %w", err)
	}
	l.segs = append(l.segs, segment{name: name, first: l.nextSeq})
	l.f = f
	l.size = 0
	l.tail = 0
	return nil
}
