package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"moloc/internal/fault"
)

// collect returns a replay callback that accumulates (seq, payload)
// pairs, plus the slice it fills.
func collect() (func(uint64, []byte) error, *[]string) {
	var got []string
	return func(seq uint64, payload []byte) error {
		got = append(got, fmt.Sprintf("%d:%s", seq, payload))
		return nil
	}, &got
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		seq, err := l.Append([]byte(fmt.Sprintf("batch-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if want := uint64(i + 1); seq != want {
			t.Fatalf("append %d: seq = %d, want %d", i, seq, want)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	fn, got := collect()
	l2, err := Open(dir, Options{}, fn)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(*got) != 5 || (*got)[0] != "1:batch-0" || (*got)[4] != "5:batch-4" {
		t.Fatalf("replay: %v", *got)
	}
	st := l2.OpenStats()
	if st.Records != 5 || st.Truncations != 0 || st.DroppedSegments != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if l2.NextSeq() != 6 {
		t.Fatalf("next seq = %d, want 6", l2.NextSeq())
	}
	// Appending after reopen continues the sequence in the same segment.
	if seq, err := l2.Append([]byte("post")); err != nil || seq != 6 {
		t.Fatalf("append after reopen: seq=%d err=%v", seq, err)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.Append([]byte("0123456789012345678901234567890123456789")); err != nil {
			t.Fatal(err)
		}
	}
	if l.Segments() < 3 {
		t.Fatalf("segments = %d, want several", l.Segments())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	fn, got := collect()
	l2, err := Open(dir, Options{SegmentBytes: 64}, fn)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(*got) != 10 {
		t.Fatalf("replayed %d records across segments, want 10", len(*got))
	}
}

// TestTornTailTruncated simulates a crash mid-append: trailing garbage
// after the last valid record must be cut off, not refuse boot.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append([]byte("solid")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: a partial header that a crash mid-write would leave.
	seg := filepath.Join(dir, segName(1))
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x10, 0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	fn, got := collect()
	l2, err := Open(dir, Options{}, fn)
	if err != nil {
		t.Fatalf("torn tail must not refuse boot: %v", err)
	}
	if len(*got) != 3 {
		t.Fatalf("replayed %d, want 3", len(*got))
	}
	st := l2.OpenStats()
	if st.Truncations != 1 || st.TornBytes != 3 {
		t.Fatalf("stats: %+v", st)
	}
	// The log is healthy again: append, close, clean reopen.
	if seq, err := l2.Append([]byte("after")); err != nil || seq != 4 {
		t.Fatalf("append after repair: seq=%d err=%v", seq, err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	fn3, got3 := collect()
	l3, err := Open(dir, Options{}, fn3)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if len(*got3) != 4 || l3.OpenStats().Truncations != 0 {
		t.Fatalf("second reopen: %v stats=%+v", *got3, l3.OpenStats())
	}
}

// TestChecksumFlipDropsTail verifies a bit flip mid-log cuts the log at
// the defect and drops the segments after it, booting with what is
// provably intact.
func TestChecksumFlipDropsTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if _, err := l.Append([]byte("0123456789012345678901234567890123456789")); err != nil {
			t.Fatal(err)
		}
	}
	segs := l.Segments()
	if segs < 3 {
		t.Fatalf("need several segments, have %d", segs)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the first record of the first segment.
	seg := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	fn, got := collect()
	l2, err := Open(dir, Options{SegmentBytes: 64}, fn)
	if err != nil {
		t.Fatalf("corruption must not refuse boot: %v", err)
	}
	defer l2.Close()
	if len(*got) != 0 {
		t.Fatalf("replayed %d records past a corrupt one", len(*got))
	}
	st := l2.OpenStats()
	if st.Truncations != 1 || st.DroppedSegments != segs-1 {
		t.Fatalf("stats: %+v (had %d segments)", st, segs)
	}
	// The log restarts writable from the truncation point.
	if _, err := l2.Append([]byte("fresh")); err != nil {
		t.Fatal(err)
	}
}

func TestTruncateThrough(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var last uint64
	for i := 0; i < 12; i++ {
		last, err = l.Append([]byte("0123456789012345678901234567890123456789"))
		if err != nil {
			t.Fatal(err)
		}
	}
	before := l.Segments()
	if before < 3 {
		t.Fatalf("need several segments, have %d", before)
	}
	removed, err := l.TruncateThrough(last)
	if err != nil {
		t.Fatal(err)
	}
	if removed != before-1 || l.Segments() != 1 {
		t.Fatalf("removed=%d segments=%d (before=%d)", removed, l.Segments(), before)
	}
	// Truncating below the remaining segment is a no-op.
	if n, err := l.TruncateThrough(last); err != nil || n != 0 {
		t.Fatalf("idempotent truncate: n=%d err=%v", n, err)
	}
	// Sequence numbering is unaffected.
	if seq, err := l.Append([]byte("next")); err != nil || seq != last+1 {
		t.Fatalf("append after truncate: seq=%d err=%v", seq, err)
	}
}

// countFS counts file fsyncs, for asserting group-commit behavior.
type countFS struct {
	fault.FS
	mu    sync.Mutex
	syncs int
}

func (c *countFS) OpenFile(name string, flag int, perm os.FileMode) (fault.File, error) {
	f, err := c.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &countFile{File: f, c: c}, nil
}

func (c *countFS) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.syncs
}

type countFile struct {
	fault.File
	c *countFS
}

func (f *countFile) Sync() error {
	f.c.mu.Lock()
	f.c.syncs++
	f.c.mu.Unlock()
	return f.File.Sync()
}

func TestSyncIntervalGroupCommit(t *testing.T) {
	dir := t.TempDir()
	cfs := &countFS{FS: fault.Disk{}}
	clk := fault.NewManualClock(time.Unix(1000, 0))
	l, err := Open(dir, Options{
		FS:        cfs,
		Policy:    SyncInterval,
		SyncEvery: time.Second,
		Now:       clk.Now,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if got := cfs.count(); got != 0 {
		t.Fatalf("no time passed: %d fsyncs, want 0", got)
	}
	clk.Advance(time.Second)
	if _, err := l.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if got := cfs.count(); got != 1 {
		t.Fatalf("after window: %d fsyncs, want 1", got)
	}
	// Window resets: the next immediate append does not sync again.
	if _, err := l.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if got := cfs.count(); got != 1 {
		t.Fatalf("inside new window: %d fsyncs, want 1", got)
	}
}

// TestFsyncEIOThenRecover: a transient EIO on fsync fails that append,
// but the log keeps accepting records afterwards and everything written
// replays.
func TestFsyncEIOThenRecover(t *testing.T) {
	dir := t.TempDir()
	in := fault.NewInjector(fault.Disk{}, fault.Rule{Op: fault.OpSync, PathContains: segPrefix, Err: syscall.EIO})
	l, err := Open(dir, Options{FS: in}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("lost-ack")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("want EIO, got %v", err)
	}
	seq, err := l.Append([]byte("second"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 {
		t.Fatalf("seq = %d, want 2 (unacked record still occupies 1)", seq)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	fn, got := collect()
	l2, err := Open(dir, Options{}, fn)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	// At-least-once: the unacknowledged record replays too.
	if len(*got) != 2 {
		t.Fatalf("replay: %v", *got)
	}
}

// TestTornWriteRepairedInPlace: a short write fails the append, and the
// next append truncates the partial frame before writing.
func TestTornWriteRepairedInPlace(t *testing.T) {
	dir := t.TempDir()
	in := fault.NewInjector(fault.Disk{},
		fault.Rule{Op: fault.OpWrite, PathContains: segPrefix, After: 1, KeepBytes: 5, Err: syscall.ENOSPC})
	l, err := Open(dir, Options{FS: in}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("torn")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
	if seq, err := l.Append([]byte("healed")); err != nil || seq != 2 {
		t.Fatalf("append after repair: seq=%d err=%v", seq, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	fn, got := collect()
	l2, err := Open(dir, Options{}, fn)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(*got) != 2 || (*got)[1] != "2:healed" || l2.OpenStats().Truncations != 0 {
		t.Fatalf("replay: %v stats=%+v", *got, l2.OpenStats())
	}
}

// TestCrashMidWriteRecovers runs the full kill -9 story: crash partway
// through a write, reopen with a fresh filesystem, lose only the
// unacknowledged record.
func TestCrashMidWriteRecovers(t *testing.T) {
	dir := t.TempDir()
	in := fault.NewInjector(fault.Disk{},
		fault.Rule{Op: fault.OpWrite, PathContains: segPrefix, After: 2, KeepBytes: 9, Crash: true})
	l, err := Open(dir, Options{FS: in}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := l.Append([]byte("acked")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Append([]byte("in-flight")); !errors.Is(err, fault.ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	// The process is dead; a new one opens the same directory.
	fn, got := collect()
	l2, err := Open(dir, Options{}, fn)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer l2.Close()
	if len(*got) != 2 {
		t.Fatalf("replay after crash: %v", *got)
	}
	st := l2.OpenStats()
	if st.Truncations != 1 || st.TornBytes != 9 {
		t.Fatalf("stats: %+v", st)
	}
	if seq, err := l2.Append([]byte("reborn")); err != nil || seq != 3 {
		t.Fatalf("append after recovery: seq=%d err=%v", seq, err)
	}
}

func TestEnsureSeqAtLeast(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	l.EnsureSeqAtLeast(100)
	if seq, err := l.Append([]byte("high")); err != nil || seq != 101 {
		t.Fatalf("seq=%d err=%v, want 101", seq, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	fn, got := collect()
	l2, err := Open(dir, Options{}, fn)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(*got) != 1 || (*got)[0] != "101:high" {
		t.Fatalf("replay: %v", *got)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{{"always", SyncAlways}, {"interval", SyncInterval}, {"none", SyncNone}} {
		p, err := ParseSyncPolicy(tc.in)
		if err != nil || p != tc.want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", tc.in, p, err)
		}
		if p.String() != tc.in {
			t.Fatalf("String() = %q, want %q", p.String(), tc.in)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy should error")
	}
}

func TestAppendAfterClose(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{MaxRecordBytes: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(make([]byte, 9)); err == nil {
		t.Fatal("oversize record should be rejected")
	}
	if seq, err := l.Append(make([]byte, 8)); err != nil || seq != 1 {
		t.Fatalf("max-size record: seq=%d err=%v", seq, err)
	}
}

// TestReadFromResumesMidLog walks a replication cursor through the log:
// bounded reads advance next, and a caught-up cursor returns next ==
// from with no error and no callbacks.
func TestReadFromResumesMidLog(t *testing.T) {
	l, err := Open(t.TempDir(), Options{SegmentBytes: 64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 1; i <= 10; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	fn, got := collect()
	next, err := l.ReadFrom(3, 4, fn)
	if err != nil || next != 7 {
		t.Fatalf("ReadFrom(3, 4) = (%d, %v), want (7, nil)", next, err)
	}
	if len(*got) != 4 || (*got)[0] != "3:rec-3" || (*got)[3] != "6:rec-6" {
		t.Fatalf("records: %v", *got)
	}

	fn, got = collect()
	next, err = l.ReadFrom(next, 100, fn)
	if err != nil || next != 11 {
		t.Fatalf("ReadFrom(7, 100) = (%d, %v), want (11, nil)", next, err)
	}
	if len(*got) != 4 {
		t.Fatalf("records: %v", *got)
	}

	// Caught up: no records, no error, cursor unchanged.
	fn, got = collect()
	next, err = l.ReadFrom(11, 100, fn)
	if err != nil || next != 11 || len(*got) != 0 {
		t.Fatalf("caught-up ReadFrom = (%d, %v) with %d records, want (11, nil, 0)", next, err, len(*got))
	}
}

// TestReadFromTruncatedBehindCheckpoint: a cursor below FirstSeq names
// history that only a checkpoint covers now — the reader must get
// ErrTruncated (bootstrap signal), and a cursor at FirstSeq still works.
func TestReadFromTruncatedBehindCheckpoint(t *testing.T) {
	l, err := Open(t.TempDir(), Options{SegmentBytes: 64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 1; i <= 10; i++ {
		if _, err := l.Append([]byte("0123456789012345678901234567890123456789")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.TruncateThrough(8); err != nil {
		t.Fatal(err)
	}
	first := l.FirstSeq()
	if first <= 1 {
		t.Fatalf("FirstSeq = %d; truncation removed nothing, test moot", first)
	}

	if _, err := l.ReadFrom(1, 100, func(uint64, []byte) error { return nil }); !errors.Is(err, ErrTruncated) {
		t.Fatalf("ReadFrom(1) below FirstSeq %d: err = %v, want ErrTruncated", first, err)
	}

	fn, got := collect()
	next, err := l.ReadFrom(first, 100, fn)
	if err != nil || next != 11 {
		t.Fatalf("ReadFrom(FirstSeq=%d) = (%d, %v), want (11, nil)", first, next, err)
	}
	if len(*got) != int(11-first) {
		t.Fatalf("records from FirstSeq: %d, want %d", len(*got), 11-first)
	}
}

// TestReadFromSequenceJumpGap: a cursor landing inside an
// EnsureSeqAtLeast jump names sequences no record ever carried; the
// reader must get ErrTruncated, never a silent skip.
func TestReadFromSequenceJumpGap(t *testing.T) {
	l, err := Open(t.TempDir(), Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 1; i <= 2; i++ {
		if _, err := l.Append([]byte("before")); err != nil {
			t.Fatal(err)
		}
	}
	l.EnsureSeqAtLeast(10)
	seq, err := l.Append([]byte("after"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 11 {
		t.Fatalf("post-jump seq = %d, want 11", seq)
	}

	// Cursor inside the jump: truncated.
	if _, err := l.ReadFrom(5, 100, func(uint64, []byte) error { return nil }); !errors.Is(err, ErrTruncated) {
		t.Fatalf("ReadFrom(5) inside the jump: err = %v, want ErrTruncated", err)
	}
	// A scan that crosses the jump surfaces it too, after delivering the
	// records before it.
	fn, got := collect()
	next, err := l.ReadFrom(1, 100, fn)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("ReadFrom(1) across the jump: err = %v, want ErrTruncated", err)
	}
	if next != 3 || len(*got) != 2 {
		t.Fatalf("pre-jump delivery: next=%d records=%v", next, *got)
	}
	// Past the jump the cursor reads normally.
	fn, got = collect()
	next, err = l.ReadFrom(11, 100, fn)
	if err != nil || next != 12 || len(*got) != 1 || (*got)[0] != "11:after" {
		t.Fatalf("ReadFrom(11) = (%d, %v) records=%v", next, err, *got)
	}
}

// TestReadFromClosed: a closed log refuses cursors outright.
func TestReadFromClosed(t *testing.T) {
	l, err := Open(t.TempDir(), Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.ReadFrom(1, 1, func(uint64, []byte) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("ReadFrom after Close: err = %v, want ErrClosed", err)
	}
}
