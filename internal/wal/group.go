// Group commit: the committer that turns "every ack needs an fsync"
// into "every fsync releases every ack that raced in". Streams append
// records with AppendNoSync (cheap: one short critical section, no
// I/O barrier) and then block in WaitDurable; a single committer
// goroutine issues one fsync covering everything appended since the
// previous sync and wakes every covered waiter at once. Under 32
// concurrent streams one fsync routinely covers dozens of batches —
// the difference between ingest throughput scaling with fsync latency
// and scaling with disk bandwidth.
//
// Correctness leans on two Log invariants: records are assigned
// strictly increasing sequence numbers under l.mu, and rotateLocked
// fsyncs a segment before sealing it — so one Sync() of the active
// segment makes every previously appended record durable, whichever
// segment it landed in.
package wal

import "sync"

// GroupCommitter amortizes fsyncs across concurrent appenders. Safe
// for concurrent use. Create with NewGroupCommitter; Close joins the
// committer goroutine.
type GroupCommitter struct {
	log *Log

	mu       sync.Mutex
	kick     *sync.Cond // wakes the committer: appended > durable
	done     *sync.Cond // wakes waiters: durable or failSeq advanced
	appended uint64     // highest sequence appended and awaiting a sync
	durable  uint64     // highest sequence covered by a completed fsync
	failSeq  uint64     // sequences <= failSeq saw failErr from their covering sync attempt
	failErr  error
	syncs    uint64 // fsyncs issued by the committer
	batches  uint64 // WaitDurable calls released successfully
	closed   bool

	wg sync.WaitGroup
}

// GroupStats is a snapshot of the committer's amortization counters.
type GroupStats struct {
	// Syncs is how many fsyncs the committer has issued.
	Syncs uint64
	// Batches is how many appends those fsyncs released. Batches/Syncs
	// is the amortization factor the streaming path exists for.
	Batches uint64
}

// NewGroupCommitter starts a committer over l. Only the SyncAlways
// policy needs the goroutine (interval and none release acks without
// waiting on an fsync), so under other policies no goroutine runs and
// WaitDurable degenerates to the policy's inline behavior.
func NewGroupCommitter(l *Log) *GroupCommitter {
	g := &GroupCommitter{log: l}
	g.kick = sync.NewCond(&g.mu)
	g.done = sync.NewCond(&g.mu)
	if l.Policy() == SyncAlways {
		g.wg.Add(1)
		go g.commitLoop()
	}
	return g
}

// WaitDurable blocks until the record with the given sequence number is
// durable per the log's policy, then returns nil — the caller may ack.
// A non-nil error means the covering fsync failed and the record must
// not be acknowledged (it may still replay: at-least-once, never silent
// loss). Under SyncInterval the cadence sync is given a chance to fire
// and the call returns immediately — durability lags acks by at most
// SyncEvery, exactly as the HTTP path's Append does. Under SyncNone it
// returns immediately.
//
// Failure is sticky per sequence: once a covering sync attempt fails
// for sequences <= failSeq, those sequences report that failure even if
// a later fsync succeeds. After a failed fsync the kernel may drop the
// dirty pages while marking them clean, so a subsequent success proves
// nothing about writes that preceded the failure — releasing them as
// durable would be an ack the disk never earned. Sequences appended
// after the failure (> failSeq) dirtied their pages afresh and are
// genuinely covered by the next completed fsync.
func (g *GroupCommitter) WaitDurable(seq uint64) error {
	if g.log.Policy() != SyncAlways {
		return g.log.SyncIfDue()
	}
	if seq == 0 {
		return nil // no record to cover
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if seq > g.appended {
		g.appended = seq
		g.kick.Signal()
	}
	for g.durable < seq && g.failSeq < seq && !g.closed {
		g.done.Wait()
	}
	// Failure takes precedence over success on overlap: a sequence both
	// below a failed attempt's target and below a later durable horizon
	// is still poisoned.
	if g.failSeq >= seq {
		return g.failErr
	}
	if g.durable >= seq {
		g.batches++
		return nil
	}
	return ErrClosed
}

// commitLoop is the committer: wait for appends to pass the durable
// horizon, snapshot the target, fsync once, publish the new horizon.
// Appends that arrive during the fsync are covered by the next pass —
// that self-clocking is what batches concurrent streams together.
func (g *GroupCommitter) commitLoop() {
	defer g.wg.Done()
	for {
		g.mu.Lock()
		// Poisoned sequences (<= failSeq) never become ackable, so only
		// appends past both horizons warrant another fsync — a persistent
		// EIO parks the loop instead of spinning on a dead disk.
		covered := g.durable
		if g.failSeq > covered {
			covered = g.failSeq
		}
		for g.appended <= covered && !g.closed {
			g.kick.Wait()
			covered = g.durable
			if g.failSeq > covered {
				covered = g.failSeq
			}
		}
		if g.closed {
			g.mu.Unlock()
			return
		}
		target := g.appended
		g.mu.Unlock()

		err := g.log.Sync() // one fsync for every append <= target

		g.mu.Lock()
		g.syncs++
		if err != nil {
			// The failure horizon only ratchets forward and the error is
			// never cleared by a later success: see WaitDurable.
			if target > g.failSeq {
				g.failSeq = target
			}
			g.failErr = err
		} else if target > g.durable {
			g.durable = target
		}
		g.done.Broadcast()
		g.mu.Unlock()
	}
}

// Stats snapshots the amortization counters.
func (g *GroupCommitter) Stats() GroupStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return GroupStats{Syncs: g.syncs, Batches: g.batches}
}

// Close wakes every waiter with ErrClosed and joins the committer.
// Callers close the GroupCommitter before the Log so no fsync races a
// closed file.
func (g *GroupCommitter) Close() {
	g.mu.Lock()
	g.closed = true
	g.kick.Signal()
	g.done.Broadcast()
	g.mu.Unlock()
	g.wg.Wait()
}
