package wal

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"moloc/internal/fault"
)

// countingFS wraps a fault.FS and counts file Syncs, to measure how
// many fsyncs a workload actually issued.
type countingFS struct {
	fault.FS
	syncs atomic.Int64
}

func (c *countingFS) OpenFile(name string, flag int, perm os.FileMode) (fault.File, error) {
	f, err := c.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &countingFile{File: f, syncs: &c.syncs}, nil
}

type countingFile struct {
	fault.File
	syncs *atomic.Int64
}

func (f *countingFile) Sync() error {
	f.syncs.Add(1)
	// A tmpfs fsync returns in microseconds, which starves the group of
	// time to form; hold the sync for a disk-realistic latency so the
	// amortization the committer exists for is observable and the test
	// deterministic.
	time.Sleep(500 * time.Microsecond)
	return f.File.Sync()
}

func TestGroupCommitDurableAndOrdered(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncAlways}, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGroupCommitter(l)

	const workers = 16
	const perWorker = 20
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				seq, err := l.AppendNoSync([]byte(fmt.Sprintf("w%d-%d", w, i)))
				if err != nil {
					errs <- err
					return
				}
				if err := g.WaitDurable(seq); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := g.Stats()
	if st.Batches != workers*perWorker {
		t.Fatalf("batches = %d, want %d", st.Batches, workers*perWorker)
	}
	if st.Syncs == 0 || st.Syncs > st.Batches {
		t.Fatalf("syncs = %d for %d batches", st.Syncs, st.Batches)
	}
	g.Close()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Every acknowledged record replays.
	var replayed int
	l2, err := Open(dir, Options{}, func(seq uint64, payload []byte) error {
		replayed++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if replayed != workers*perWorker {
		t.Fatalf("replayed %d records, want %d", replayed, workers*perWorker)
	}
}

// TestGroupCommitAmortizes pins the point of the committer: N
// concurrent appenders share far fewer than N fsyncs.
func TestGroupCommitAmortizes(t *testing.T) {
	cfs := &countingFS{FS: fault.Disk{}}
	l, err := Open(t.TempDir(), Options{Policy: SyncAlways, FS: cfs}, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGroupCommitter(l)

	const workers = 32
	const rounds = 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			payload := []byte("batch-payload")
			for i := 0; i < rounds; i++ {
				seq, err := l.AppendNoSync(payload)
				if err != nil {
					t.Error(err)
					return
				}
				if err := g.WaitDurable(seq); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := g.Stats()
	g.Close()
	l.Close()
	if st.Syncs == 0 {
		t.Fatal("no syncs issued")
	}
	ratio := float64(st.Batches) / float64(st.Syncs)
	t.Logf("batches=%d syncs=%d ratio=%.1f", st.Batches, st.Syncs, ratio)
	// 32 concurrent appenders against one committer must amortize well
	// past the acceptance floor of 5 batches per fsync.
	if ratio < 5 {
		t.Fatalf("batches/fsync = %.1f, want >= 5 at %d concurrent appenders", ratio, workers)
	}
}

// TestGroupCommitSyncErrorBlocksAck: a failed covering fsync must
// surface to the waiter (no ack), per the durable-ack invariant.
func TestGroupCommitSyncErrorBlocksAck(t *testing.T) {
	// The first fsync (covering the first append) succeeds; the second
	// fails once; later syncs succeed again.
	inj := fault.NewInjector(fault.Disk{}, fault.Rule{Op: fault.OpSync, After: 1, Count: 1})
	l, err := Open(t.TempDir(), Options{Policy: SyncAlways, FS: inj}, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGroupCommitter(l)
	defer l.Close()
	defer g.Close()

	seq, err := l.AppendNoSync([]byte("will sync fine"))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WaitDurable(seq); err != nil {
		t.Fatalf("clean sync: %v", err)
	}

	seq, err = l.AppendNoSync([]byte("sync will fail"))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WaitDurable(seq); err == nil {
		t.Fatal("WaitDurable returned nil despite failed covering fsync")
	}

	// The fault is transient: the next append's sync succeeds and acks
	// flow again.
	seq, err = l.AppendNoSync([]byte("healed"))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WaitDurable(seq); err != nil {
		t.Fatalf("after heal: %v", err)
	}
}

// TestGroupCommitFailureStickyPastLaterSuccess is the fan-out
// regression: a waiter for a poisoned sequence that arrives (or wakes)
// after a LATER fsync has advanced the durable horizon past it must
// still get the failure. A failed fsync may have dropped the dirty
// pages covering that sequence while marking them clean, so the later
// success proves nothing about it — returning nil here would be an ack
// the disk never earned.
func TestGroupCommitFailureStickyPastLaterSuccess(t *testing.T) {
	inj := fault.NewInjector(fault.Disk{}, fault.Rule{Op: fault.OpSync, After: 1, Count: 1})
	l, err := Open(t.TempDir(), Options{Policy: SyncAlways, FS: inj}, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGroupCommitter(l)
	defer l.Close()
	defer g.Close()

	seq1, err := l.AppendNoSync([]byte("clean"))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WaitDurable(seq1); err != nil {
		t.Fatalf("clean sync: %v", err)
	}

	seq2, err := l.AppendNoSync([]byte("poisoned"))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WaitDurable(seq2); err == nil {
		t.Fatal("WaitDurable returned nil despite failed covering fsync")
	}

	// A later append syncs fine: the durable horizon passes seq2.
	seq3, err := l.AppendNoSync([]byte("after heal"))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WaitDurable(seq3); err != nil {
		t.Fatalf("after heal: %v", err)
	}

	// The late waiter for the poisoned sequence: durable(3) >= 2, but
	// failure takes precedence — this must NOT report durable.
	if err := g.WaitDurable(seq2); err == nil {
		t.Fatalf("late WaitDurable(%d) returned nil: durable horizon %d hid the failed fsync", seq2, seq3)
	}
}

// TestGroupCommitPersistentFailureFansOutToAllWaiters stresses the
// failure path under concurrency: with every fsync failing, each of
// many concurrent WaitDurable waiters must receive the failure — none
// may be released as durable, none may hang — and the committer must
// park instead of spinning on the dead disk.
func TestGroupCommitPersistentFailureFansOutToAllWaiters(t *testing.T) {
	inj := fault.NewInjector(fault.Disk{}, fault.Rule{Op: fault.OpSync, Count: 1 << 30})
	l, err := Open(t.TempDir(), Options{Policy: SyncAlways, FS: inj}, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGroupCommitter(l)
	defer l.Close()

	const workers = 24
	var wg sync.WaitGroup
	var nilAcks atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				seq, err := l.AppendNoSync([]byte(fmt.Sprintf("doomed-w%d-%d", w, i)))
				if err != nil {
					t.Error(err)
					return
				}
				if g.WaitDurable(seq) == nil {
					nilAcks.Add(1)
				}
			}
		}(w)
	}
	wg.Wait() // every waiter returned: the failure fanned out, nobody hung
	if n := nilAcks.Load(); n != 0 {
		t.Fatalf("%d waiters were released as durable with every fsync failing", n)
	}
	st := g.Stats()
	if st.Batches != 0 {
		t.Fatalf("batches = %d, want 0: no ack may be counted released", st.Batches)
	}
	// Poisoned sequences never warrant another fsync; the committer must
	// have parked, not retried once per append.
	if st.Syncs > workers*5 {
		t.Fatalf("syncs = %d for %d doomed appends: committer spun on a dead disk", st.Syncs, workers*5)
	}
	g.Close() // joins the (parked) committer; -race catches a leak
}

// TestGroupCommitIntervalPolicy: under SyncInterval WaitDurable must
// not block on an fsync — acks may precede durability by SyncEvery.
func TestGroupCommitIntervalPolicy(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Policy: SyncInterval}, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGroupCommitter(l)
	defer l.Close()
	defer g.Close()
	seq, err := l.AppendNoSync([]byte("interval"))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WaitDurable(seq); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommitClose: waiters blocked at Close get ErrClosed, and
// Close joins the committer (no goroutine leak under -race).
func TestGroupCommitClose(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Policy: SyncAlways}, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGroupCommitter(l)
	g.Close()
	if err := g.WaitDurable(1); err != ErrClosed {
		t.Fatalf("after close: %v, want ErrClosed", err)
	}
	l.Close()
}
