// Record format: the length-prefixed, CRC32C-checksummed frame every
// observation batch is appended as. The codec is isolated here (pure
// functions over byte slices, no I/O) so the fuzzer can hammer it
// directly with truncated and bit-flipped inputs.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Record layout, little-endian:
//
//	offset 0  uint32  payload length
//	offset 4  uint32  CRC32C over seq bytes + payload
//	offset 8  uint64  sequence number
//	offset 16 []byte  payload
const headerSize = 16

// castagnoli is the CRC32C table; CRC32C has hardware support on every
// deployment target and catches the bit flips and torn tails a plain
// length prefix cannot.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Decode errors. errShort marks a frame that does not fit the
// remaining bytes — at the end of a segment that is a torn tail, not
// corruption.
var (
	errShort    = errors.New("wal: record extends past end of data")
	errTooBig   = errors.New("wal: record length exceeds the record cap")
	errChecksum = errors.New("wal: record checksum mismatch")
)

// appendRecord encodes one record onto buf and returns the extended
// slice.
func appendRecord(buf []byte, seq uint64, payload []byte) []byte {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[8:16], seq)
	crc := crc32.Update(0, castagnoli, hdr[8:16])
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// decodeRecord reads one record from the front of b. It returns the
// sequence number, the payload (aliasing b), and the encoded size.
// maxPayload bounds the length field so a corrupt prefix cannot demand
// gigabytes.
func decodeRecord(b []byte, maxPayload int) (seq uint64, payload []byte, n int, err error) {
	if len(b) < headerSize {
		return 0, nil, 0, errShort
	}
	plen := int(binary.LittleEndian.Uint32(b[0:4]))
	if plen > maxPayload {
		return 0, nil, 0, errTooBig
	}
	if len(b) < headerSize+plen {
		return 0, nil, 0, errShort
	}
	crc := crc32.Update(0, castagnoli, b[8:16])
	crc = crc32.Update(crc, castagnoli, b[headerSize:headerSize+plen])
	if crc != binary.LittleEndian.Uint32(b[4:8]) {
		return 0, nil, 0, errChecksum
	}
	seq = binary.LittleEndian.Uint64(b[8:16])
	return seq, b[headerSize : headerSize+plen], headerSize + plen, nil
}

// scanRecords walks the records in data, calling fn for each valid one
// and enforcing sequence continuity from wantSeq. It returns the byte
// offset of the first defect (or len(data) when the scan is clean), the
// number of valid records, and the defect itself (nil for a clean
// scan). A short or corrupt frame stops the scan — the caller decides
// whether that is a truncatable torn tail or reportable corruption.
func scanRecords(data []byte, wantSeq uint64, maxPayload int,
	fn func(seq uint64, payload []byte) error) (offset int64, records int, defect, err error) {
	off := 0
	for off < len(data) {
		seq, payload, n, derr := decodeRecord(data[off:], maxPayload)
		if derr != nil {
			return int64(off), records, derr, nil
		}
		if seq != wantSeq {
			return int64(off), records,
				fmt.Errorf("wal: sequence discontinuity: record %d where %d expected", seq, wantSeq), nil
		}
		if fn != nil {
			if err := fn(seq, payload); err != nil {
				return int64(off), records, nil, err
			}
		}
		off += n
		records++
		wantSeq++
	}
	return int64(off), records, nil, nil
}
