package wal

import (
	"bytes"
	"testing"
)

// FuzzWALDecode hammers the record scanner with truncated, bit-flipped,
// and adversarial inputs. Invariants: never panic, never report more
// bytes consumed than exist, never accept a record whose re-encoding
// differs, and always make progress on valid prefixes.
func FuzzWALDecode(f *testing.F) {
	valid := appendRecord(nil, 1, []byte("observation batch"))
	valid = appendRecord(valid, 2, []byte{})
	valid = appendRecord(valid, 3, bytes.Repeat([]byte{0xAA}, 300))
	f.Add(valid)
	f.Add(valid[:len(valid)-1])      // torn tail
	f.Add(valid[:headerSize-1])      // partial header
	f.Add([]byte{})                  // empty log
	flipped := append([]byte(nil), valid...)
	flipped[headerSize+2] ^= 0x01 // payload bit flip
	f.Add(flipped)
	huge := make([]byte, headerSize)
	huge[0], huge[1], huge[2], huge[3] = 0xFF, 0xFF, 0xFF, 0x7F // absurd length prefix
	f.Add(huge)

	const maxPayload = 1 << 16
	f.Fuzz(func(t *testing.T, data []byte) {
		var replayed int
		off, records, defect, err := scanRecords(data, 1, maxPayload, func(seq uint64, payload []byte) error {
			if seq != uint64(replayed+1) {
				t.Fatalf("out-of-order replay: seq %d at position %d", seq, replayed)
			}
			if len(payload) > maxPayload {
				t.Fatalf("payload of %d bytes exceeds cap", len(payload))
			}
			replayed++
			return nil
		})
		if err != nil {
			t.Fatalf("callback error without a callback failing: %v", err)
		}
		if off < 0 || off > int64(len(data)) {
			t.Fatalf("offset %d outside [0, %d]", off, len(data))
		}
		if records != replayed {
			t.Fatalf("records=%d but callback ran %d times", records, replayed)
		}
		if defect == nil && off != int64(len(data)) {
			t.Fatalf("clean scan stopped early at %d of %d", off, len(data))
		}
		// Every accepted record must re-encode to the exact bytes read:
		// the scanner accepts nothing it could not itself have written.
		var reenc []byte
		seq := uint64(1)
		scanOff := 0
		for i := 0; i < records; i++ {
			_, payload, n, derr := decodeRecord(data[scanOff:], maxPayload)
			if derr != nil {
				t.Fatalf("record %d unreadable on second pass: %v", i, derr)
			}
			reenc = appendRecord(reenc[:0], seq, payload)
			if !bytes.Equal(reenc, data[scanOff:scanOff+n]) {
				t.Fatalf("record %d does not round-trip", i)
			}
			scanOff += n
			seq++
		}
	})
}
