// Chunked reading for replication bootstrap: the leader ships its
// newest valid checkpoint to a blank follower in bounded frames rather
// than one giant payload. Validation happens once, up front, by reusing
// Latest — a chunk stream therefore never originates from a corrupt or
// torn checkpoint file, and the follower can assemble chunks knowing
// the only remaining hazards are transport ones (covered by the frame
// CRCs and the chunk header's sequence match).
package checkpoint

import "moloc/internal/fault"

// Snapshot is one validated checkpoint opened for chunked shipping.
type Snapshot struct {
	// LastSeq is the WAL sequence the checkpoint covers.
	LastSeq uint64
	payload []byte
	off     int
}

// OpenLatest loads and fully validates the newest checkpoint in dir and
// returns a chunk reader positioned at its first byte. It shares
// Latest's newest-valid-wins semantics (and its ErrNoCheckpoint when
// the directory holds none).
func OpenLatest(fs fault.FS, dir string) (*Snapshot, Stats, error) {
	payload, seq, st, err := Latest(fs, dir)
	if err != nil {
		return nil, st, err
	}
	return &Snapshot{LastSeq: seq, payload: payload}, st, nil
}

// Size is the checkpoint payload's total byte length.
func (s *Snapshot) Size() int { return len(s.payload) }

// Next returns the next chunk of at most size bytes and whether it is
// the final one. A zero-length checkpoint still yields exactly one
// (empty, last) chunk so the receiver always sees a terminator. Chunks
// alias the snapshot's payload. Calling Next after the last chunk
// returns (nil, true).
func (s *Snapshot) Next(size int) (chunk []byte, last bool) {
	if s.off > len(s.payload) {
		return nil, true
	}
	if size <= 0 {
		size = 1
	}
	end := s.off + size
	if end >= len(s.payload) {
		end = len(s.payload)
		chunk = s.payload[s.off:end]
		s.off = end + 1 // mark exhausted
		return chunk, true
	}
	chunk = s.payload[s.off:end]
	s.off = end
	return chunk, false
}
