// Package checkpoint persists versioned, checksummed snapshots of the
// motion-database training state and publishes them atomically.
//
// A checkpoint is one file: a fixed header (magic + the last WAL
// sequence number it covers + payload length + CRC32C) followed by an
// opaque payload the server defines. Publication is the classic
// temp-file dance — write, fsync, close, rename into place, fsync the
// directory — so a reader either sees the complete new checkpoint or
// the previous one, never a hybrid. Recovery picks the newest file that
// validates end to end; corrupt or torn candidates are skipped, not
// fatal, because the WAL tail can always re-derive what a bad
// checkpoint lost.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"moloc/internal/fault"
)

// magic identifies (and versions) the file format; bump the trailing
// digits on incompatible changes so old binaries skip new files
// gracefully instead of misparsing them.
const magic = "MLCKPT01"

// headerSize is magic(8) + lastSeq(8) + payloadLen(4) + payloadCRC(4).
const headerSize = 24

// maxPayload bounds the length field so a corrupt header cannot demand
// an absurd allocation. 1 GiB is orders of magnitude above any real
// motion DB (the paper's site has tens of locations).
const maxPayload = 1 << 30

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrNoCheckpoint is returned by Latest when the directory holds no
// valid checkpoint — a fresh deployment, or every candidate corrupt.
var ErrNoCheckpoint = errors.New("checkpoint: no valid checkpoint found")

const (
	filePrefix = "ckpt-"
	fileSuffix = ".mlck"
	tmpSuffix  = ".tmp"
)

// FileName returns the checkpoint filename for a given WAL coverage.
func FileName(lastSeq uint64) string {
	return fmt.Sprintf("%s%016x%s", filePrefix, lastSeq, fileSuffix)
}

func parseFileName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, filePrefix) || !strings.HasSuffix(name, fileSuffix) {
		return 0, false
	}
	var seq uint64
	if _, err := fmt.Sscanf(strings.TrimSuffix(strings.TrimPrefix(name, filePrefix), fileSuffix),
		"%016x", &seq); err != nil {
		return 0, false
	}
	return seq, true
}

// Save durably writes a checkpoint covering WAL records up to and
// including lastSeq. On return without error the checkpoint survives a
// crash; on error the previous checkpoint (if any) is untouched.
func Save(fs fault.FS, dir string, lastSeq uint64, payload []byte) error {
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("checkpoint: mkdir %s: %w", dir, err)
	}
	final := filepath.Join(dir, FileName(lastSeq))
	tmp := final + tmpSuffix

	var hdr [headerSize]byte
	copy(hdr[0:8], magic)
	binary.LittleEndian.PutUint64(hdr[8:16], lastSeq)
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[20:24], crc32.Checksum(payload, castagnoli))

	f, err := fs.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: create %s: %w", tmp, err)
	}
	werr := writeFull(f, hdr[:])
	if werr == nil {
		werr = writeFull(f, payload)
	}
	if werr == nil {
		werr = f.Sync()
	}
	cerr := f.Close()
	if werr != nil {
		//lint:ignore errdrop best-effort cleanup of a temp file that never became visible
		_ = fs.Remove(tmp)
		return fmt.Errorf("checkpoint: write %s: %w", tmp, werr)
	}
	if cerr != nil {
		//lint:ignore errdrop best-effort cleanup of a temp file that never became visible
		_ = fs.Remove(tmp)
		return fmt.Errorf("checkpoint: close %s: %w", tmp, cerr)
	}
	if err := fs.Rename(tmp, final); err != nil {
		//lint:ignore errdrop best-effort cleanup of a temp file that never became visible
		_ = fs.Remove(tmp)
		return fmt.Errorf("checkpoint: publish %s: %w", final, err)
	}
	if err := fs.SyncDir(dir); err != nil {
		return fmt.Errorf("checkpoint: syncdir %s: %w", dir, err)
	}
	return nil
}

func writeFull(f fault.File, b []byte) error {
	for len(b) > 0 {
		n, err := f.Write(b)
		if err != nil {
			return err
		}
		b = b[n:]
	}
	return nil
}

// Stats describes what Latest scanned.
type Stats struct {
	// Scanned is how many checkpoint-named files were considered.
	Scanned int
	// CorruptSkipped is how many failed validation and were passed over.
	CorruptSkipped int
}

// Latest returns the payload and WAL coverage of the newest checkpoint
// that validates. Corrupt, torn, or mis-versioned candidates are
// skipped (counted in Stats) — newest-valid wins. ErrNoCheckpoint means
// the caller should start from an empty database and replay the whole
// WAL.
func Latest(fs fault.FS, dir string) (payload []byte, lastSeq uint64, st Stats, err error) {
	ents, err := fs.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, 0, st, ErrNoCheckpoint
		}
		return nil, 0, st, fmt.Errorf("checkpoint: readdir %s: %w", dir, err)
	}
	type cand struct {
		name string
		seq  uint64
	}
	var cands []cand
	for _, e := range ents {
		if seq, ok := parseFileName(e.Name()); ok {
			cands = append(cands, cand{e.Name(), seq})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].seq > cands[j].seq })
	st.Scanned = len(cands)
	for _, c := range cands {
		payload, err := load(fs, filepath.Join(dir, c.name), c.seq)
		if err != nil {
			st.CorruptSkipped++
			continue
		}
		return payload, c.seq, st, nil
	}
	return nil, 0, st, ErrNoCheckpoint
}

// load reads and validates one checkpoint file end to end.
func load(fs fault.FS, path string, wantSeq uint64) ([]byte, error) {
	f, err := fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(f)
	cerr := f.Close()
	if err != nil {
		return nil, err
	}
	if cerr != nil {
		return nil, cerr
	}
	if len(data) < headerSize {
		return nil, fmt.Errorf("checkpoint: %s: short header (%d bytes)", path, len(data))
	}
	if string(data[0:8]) != magic {
		return nil, fmt.Errorf("checkpoint: %s: bad magic %q", path, data[0:8])
	}
	seq := binary.LittleEndian.Uint64(data[8:16])
	if seq != wantSeq {
		return nil, fmt.Errorf("checkpoint: %s: header seq %d disagrees with filename", path, seq)
	}
	plen := int(binary.LittleEndian.Uint32(data[16:20]))
	if plen > maxPayload {
		return nil, fmt.Errorf("checkpoint: %s: payload length %d exceeds cap", path, plen)
	}
	if len(data) != headerSize+plen {
		return nil, fmt.Errorf("checkpoint: %s: %d bytes, want %d", path, len(data), headerSize+plen)
	}
	payload := data[headerSize:]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(data[20:24]) {
		return nil, fmt.Errorf("checkpoint: %s: payload checksum mismatch", path)
	}
	return payload, nil
}

// Prune keeps the newest keep valid-looking checkpoints, removing older
// ones and any stranded temp files from interrupted saves. Best effort:
// a file that cannot be removed is skipped, and the first error is
// returned after the sweep completes.
func Prune(fs fault.FS, dir string, keep int) error {
	ents, err := fs.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("checkpoint: readdir %s: %w", dir, err)
	}
	var first error
	var seqs []uint64
	for _, e := range ents {
		name := e.Name()
		if strings.HasSuffix(name, tmpSuffix) {
			// An interrupted Save; never published, safe to discard.
			if err := fs.Remove(filepath.Join(dir, name)); err != nil && first == nil {
				first = err
			}
			continue
		}
		if seq, ok := parseFileName(name); ok {
			seqs = append(seqs, seq)
		}
	}
	if len(seqs) <= keep {
		return first
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	for _, seq := range seqs[keep:] {
		if err := fs.Remove(filepath.Join(dir, FileName(seq))); err != nil && first == nil {
			first = err
		}
	}
	if err := fs.SyncDir(dir); err != nil && first == nil {
		first = err
	}
	return first
}
