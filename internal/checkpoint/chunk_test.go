package checkpoint

import (
	"bytes"
	"errors"
	"testing"

	"moloc/internal/fault"
)

// TestSnapshotChunking sweeps chunk sizes over a payload, asserting
// every sweep reassembles the exact bytes and terminates with last on
// the final chunk — including the size-divides-length boundary where
// the final chunk is exactly full.
func TestSnapshotChunking(t *testing.T) {
	payload := []byte("0123456789abcdefghij") // 20 bytes
	dir := t.TempDir()
	if err := Save(fault.Disk{}, dir, 7, payload); err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{1, 3, 4, 5, 7, 19, 20, 21, 1000} {
		s, _, err := OpenLatest(fault.Disk{}, dir)
		if err != nil {
			t.Fatal(err)
		}
		if s.LastSeq != 7 || s.Size() != len(payload) {
			t.Fatalf("size %d: LastSeq=%d Size=%d", size, s.LastSeq, s.Size())
		}
		var got []byte
		chunks := 0
		for {
			chunk, last := s.Next(size)
			got = append(got, chunk...)
			chunks++
			if len(chunk) > size {
				t.Fatalf("size %d: chunk of %d bytes exceeds requested size", size, len(chunk))
			}
			if last {
				break
			}
			if chunks > len(payload)+1 {
				t.Fatalf("size %d: no terminating chunk after %d chunks", size, chunks)
			}
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("size %d: reassembled %q, want %q", size, got, payload)
		}
		wantChunks := (len(payload) + size - 1) / size
		if wantChunks < 1 {
			wantChunks = 1
		}
		if chunks != wantChunks {
			t.Fatalf("size %d: %d chunks, want %d", size, chunks, wantChunks)
		}
		// The stream is exhausted: further reads only repeat the terminator.
		if chunk, last := s.Next(size); chunk != nil || !last {
			t.Fatalf("size %d: post-terminator Next = (%q, %v), want (nil, true)", size, chunk, last)
		}
	}
}

// TestSnapshotEmptyCheckpoint: a zero-length checkpoint still yields
// exactly one (empty, last) chunk so the receiver sees a terminator.
func TestSnapshotEmptyCheckpoint(t *testing.T) {
	dir := t.TempDir()
	if err := Save(fault.Disk{}, dir, 3, nil); err != nil {
		t.Fatal(err)
	}
	s, _, err := OpenLatest(fault.Disk{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	chunk, last := s.Next(4096)
	if len(chunk) != 0 || !last {
		t.Fatalf("empty checkpoint: Next = (%q, %v), want (empty, true)", chunk, last)
	}
	if chunk, last := s.Next(4096); chunk != nil || !last {
		t.Fatalf("after terminator: Next = (%q, %v), want (nil, true)", chunk, last)
	}
}

// TestOpenLatestNewestWinsAndNoCheckpoint: OpenLatest shares Latest's
// newest-valid-wins choice and its typed miss.
func TestOpenLatestNewestWinsAndNoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	if err := Save(fault.Disk{}, dir, 5, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := Save(fault.Disk{}, dir, 9, []byte("new")); err != nil {
		t.Fatal(err)
	}
	s, _, err := OpenLatest(fault.Disk{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.LastSeq != 9 {
		t.Fatalf("LastSeq = %d, want the newest checkpoint's 9", s.LastSeq)
	}
	chunk, last := s.Next(1 << 20)
	if string(chunk) != "new" || !last {
		t.Fatalf("payload = %q, want the newest checkpoint's", chunk)
	}

	if _, _, err := OpenLatest(fault.Disk{}, t.TempDir()); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty dir: err = %v, want ErrNoCheckpoint", err)
	}
}
