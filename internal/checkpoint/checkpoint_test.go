package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"moloc/internal/fault"
)

func TestSaveLatestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fs := fault.Disk{}
	if err := Save(fs, dir, 42, []byte("motion db state")); err != nil {
		t.Fatal(err)
	}
	payload, seq, st, err := Latest(fs, dir)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 42 || string(payload) != "motion db state" {
		t.Fatalf("seq=%d payload=%q", seq, payload)
	}
	if st.Scanned != 1 || st.CorruptSkipped != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestNewestValidWins(t *testing.T) {
	dir := t.TempDir()
	fs := fault.Disk{}
	for seq, body := range map[uint64]string{1: "old", 7: "mid", 30: "new"} {
		if err := Save(fs, dir, seq, []byte(body)); err != nil {
			t.Fatal(err)
		}
	}
	payload, seq, _, err := Latest(fs, dir)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 30 || string(payload) != "new" {
		t.Fatalf("seq=%d payload=%q, want newest", seq, payload)
	}
}

func TestCorruptNewestFallsBack(t *testing.T) {
	dir := t.TempDir()
	fs := fault.Disk{}
	if err := Save(fs, dir, 10, []byte("good")); err != nil {
		t.Fatal(err)
	}
	if err := Save(fs, dir, 20, []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the newest checkpoint.
	path := filepath.Join(dir, FileName(20))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	payload, seq, st, err := Latest(fs, dir)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 10 || string(payload) != "good" {
		t.Fatalf("seq=%d payload=%q, want fallback to 10", seq, payload)
	}
	if st.CorruptSkipped != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestLoadRejections table-tests every header defect Latest must skip.
func TestLoadRejections(t *testing.T) {
	mk := func(mutate func([]byte) []byte) []byte {
		dir := t.TempDir()
		if err := Save(fault.Disk{}, dir, 5, []byte("payload")); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(filepath.Join(dir, FileName(5)))
		if err != nil {
			t.Fatal(err)
		}
		return mutate(data)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty file", []byte{}},
		{"short header", mk(func(b []byte) []byte { return b[:headerSize-1] })},
		{"bad magic", mk(func(b []byte) []byte { b[0] = 'X'; return b })},
		{"wrong version", mk(func(b []byte) []byte { b[7] = '9'; return b })},
		{"seq/name mismatch", mk(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[8:16], 6)
			return b
		})},
		{"truncated payload", mk(func(b []byte) []byte { return b[:len(b)-2] })},
		{"trailing garbage", mk(func(b []byte) []byte { return append(b, 0xEE) })},
		{"payload bit flip", mk(func(b []byte) []byte { b[headerSize] ^= 1; return b })},
		{"absurd length", mk(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[16:20], 1<<31-1)
			return b
		})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, FileName(5)), tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			_, _, st, err := Latest(fault.Disk{}, dir)
			if !errors.Is(err, ErrNoCheckpoint) {
				t.Fatalf("want ErrNoCheckpoint, got %v", err)
			}
			if st.CorruptSkipped != 1 {
				t.Fatalf("stats: %+v", st)
			}
		})
	}
}

func TestNoCheckpoint(t *testing.T) {
	if _, _, _, err := Latest(fault.Disk{}, t.TempDir()); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty dir: want ErrNoCheckpoint, got %v", err)
	}
	if _, _, _, err := Latest(fault.Disk{}, filepath.Join(t.TempDir(), "never-created")); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("missing dir: want ErrNoCheckpoint, got %v", err)
	}
}

// TestCrashBetweenWriteAndRename: the classic torn publication. The
// temp file exists but was never renamed; recovery must ignore it and
// serve the previous checkpoint.
func TestCrashBetweenWriteAndRename(t *testing.T) {
	dir := t.TempDir()
	if err := Save(fault.Disk{}, dir, 3, []byte("stable")); err != nil {
		t.Fatal(err)
	}
	in := fault.NewInjector(fault.Disk{}, fault.Rule{Op: fault.OpRename, PathContains: filePrefix, Crash: true})
	if err := Save(in, dir, 9, []byte("never lands")); !errors.Is(err, fault.ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	// Reborn process, fresh filesystem.
	payload, seq, _, err := Latest(fault.Disk{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 3 || string(payload) != "stable" {
		t.Fatalf("seq=%d payload=%q, want the pre-crash checkpoint", seq, payload)
	}
	// Prune clears the stranded temp file.
	if err := Prune(fault.Disk{}, dir, 2); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if filepath.Ext(e.Name()) == tmpSuffix {
			t.Fatalf("stranded temp file survived prune: %s", e.Name())
		}
	}
}

func TestSaveFailureLeavesPreviousIntact(t *testing.T) {
	dir := t.TempDir()
	if err := Save(fault.Disk{}, dir, 3, []byte("stable")); err != nil {
		t.Fatal(err)
	}
	in := fault.NewInjector(fault.Disk{},
		fault.Rule{Op: fault.OpSync, PathContains: tmpSuffix, Err: syscall.EIO})
	if err := Save(in, dir, 9, []byte("doomed")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("want EIO, got %v", err)
	}
	payload, seq, st, err := Latest(fault.Disk{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 3 || string(payload) != "stable" || st.CorruptSkipped != 0 {
		t.Fatalf("seq=%d payload=%q stats=%+v", seq, payload, st)
	}
}

func TestPruneKeepsNewest(t *testing.T) {
	dir := t.TempDir()
	fs := fault.Disk{}
	for _, seq := range []uint64{1, 2, 3, 4, 5} {
		if err := Save(fs, dir, seq, []byte{byte(seq)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := Prune(fs, dir, 2); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	want := []string{FileName(4), FileName(5)}
	if len(names) != 2 || names[0] != want[0] || names[1] != want[1] {
		t.Fatalf("after prune: %v, want %v", names, want)
	}
	payload, seq, _, err := Latest(fs, dir)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 5 || !bytes.Equal(payload, []byte{5}) {
		t.Fatalf("latest after prune: seq=%d", seq)
	}
}

func TestEmptyPayload(t *testing.T) {
	dir := t.TempDir()
	fs := fault.Disk{}
	if err := Save(fs, dir, 1, nil); err != nil {
		t.Fatal(err)
	}
	payload, seq, _, err := Latest(fs, dir)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 || len(payload) != 0 {
		t.Fatalf("seq=%d payload=%q", seq, payload)
	}
}
