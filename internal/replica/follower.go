// Follower: the client side of WAL-shipping replication. It dials the
// leader's stream listener, announces its position with ReplHello, and
// applies what comes back — checkpoint chunks install durably before
// anything is acked, WAL segments append exactly-once into the local
// WAL (duplicates from at-least-once redelivery land below the local
// NextSeq and are dropped), and every ReplAck follows the local
// covering fsync. Redial-with-resume is the only recovery mechanism:
// any defect (torn frame, gap, apply error) drops the connection and
// the next hello names exactly what survived.
package replica

import (
	"fmt"
	"net"
	"sync"
	"time"

	"moloc/internal/wire"
)

// Applier is the follower server's apply surface. Implementations own
// all durability: InstallSnapshot must not expose a partially written
// checkpoint, Apply must deduplicate below its own WAL tail, and Commit
// must not return a sequence whose covering fsync did not complete.
type Applier interface {
	// LastApplied is the highest WAL sequence present locally — the
	// resume point named in the next hello.
	LastApplied() uint64
	// InstallSnapshot durably saves and installs a checkpoint covering
	// ckptSeq. Only called with ckptSeq > LastApplied().
	InstallSnapshot(ckptSeq uint64, payload []byte) error
	// Apply appends one replicated record. seq < local NextSeq is a
	// duplicate (no-op, nil); seq > local NextSeq is a gap (error — the
	// connection is dropped and re-helloed).
	Apply(seq uint64, payload []byte) error
	// Commit makes every applied record durable and returns the highest
	// durable sequence — the value the follower acks.
	Commit() (uint64, error)
}

// FollowerOptions tune the replication client; Addr or Dial is
// required.
type FollowerOptions struct {
	// Addr is the leader's stream listener address.
	Addr string
	// Dial overrides net.Dial for tests and in-process wiring.
	Dial func() (net.Conn, error)
	// Window is the credit window advertised to the leader (default 64).
	Window uint32
	// RedialWait paces reconnection attempts (default 500ms).
	RedialWait time.Duration
	// MaxPayload caps decoded frame payloads (0 = wire default).
	MaxPayload int
	// Now is the clock seam; nil selects time.Now.
	Now func() time.Time
}

func (o FollowerOptions) withDefaults() FollowerOptions {
	if o.Window == 0 {
		o.Window = 64
	}
	if o.RedialWait <= 0 {
		o.RedialWait = 500 * time.Millisecond
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Status is the follower's replication position, for healthz and the
// staleness monitor.
type Status struct {
	// Connected reports a live replication connection.
	Connected bool
	// Applied is the highest locally durable replicated sequence.
	Applied uint64
	// LeaderLast is the leader's WAL tail from its latest Publish (0
	// before first contact).
	LeaderLast uint64
	// LeaderCkpt is the leader's newest checkpoint coverage.
	LeaderCkpt uint64
	// LastContact is when a frame last arrived from the leader.
	LastContact time.Time
	// LastCaughtUp is the last instant Applied covered LeaderLast on a
	// live connection — the reference point for staleness.
	LastCaughtUp time.Time
	// Resumes counts completed reconnect handshakes.
	Resumes int
	// SnapshotsInstalled counts checkpoint bootstraps applied.
	SnapshotsInstalled int
	// LastErr is why the previous connection died (nil on a clean run).
	LastErr error
}

// Follower replicates one leader into one Applier. Run is the only
// long-running method; Status may be called from any goroutine.
type Follower struct {
	o  FollowerOptions
	ap Applier

	mu sync.Mutex
	st Status
}

// NewFollower builds a replication client over ap.
func NewFollower(ap Applier, o FollowerOptions) *Follower {
	return &Follower{o: o.withDefaults(), ap: ap}
}

// Status snapshots the replication position.
func (f *Follower) Status() Status {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.st
}

func (f *Follower) setStatus(mut func(*Status)) {
	f.mu.Lock()
	mut(&f.st)
	f.mu.Unlock()
}

// Run dials and replicates until done closes, redialing with resume on
// every failure. It returns only when done is closed.
func (f *Follower) Run(done <-chan struct{}) {
	dials := 0
	for {
		select {
		case <-done:
			return
		default:
		}
		if dials > 0 && !sleepOrDone(f.o.RedialWait, done) {
			return
		}
		dials++
		conn, err := f.dial()
		if err != nil {
			f.setStatus(func(st *Status) { st.LastErr = err })
			continue
		}
		err = f.serveConn(conn, done, dials > 1)
		f.setStatus(func(st *Status) {
			st.Connected = false
			st.LastErr = err
		})
	}
}

func (f *Follower) dial() (net.Conn, error) {
	if f.o.Dial != nil {
		return f.o.Dial()
	}
	return net.Dial("tcp", f.o.Addr)
}

// sleepOrDone pauses for d, returning false if done closed first.
func sleepOrDone(d time.Duration, done <-chan struct{}) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-done:
		return false
	case <-t.C:
		return true
	}
}

// serveConn speaks one replication connection: hello, then apply frames
// until a defect or shutdown. Returns why the connection ended.
func (f *Follower) serveConn(conn net.Conn, done <-chan struct{}, resumed bool) error {
	// The done watcher severs the conn so a blocked read wakes promptly
	// on shutdown; stop releases it when the conn dies on its own.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		select {
		case <-done:
			//lint:ignore errdrop shutdown path; serveConn reports its own exit
			_ = conn.Close()
		case <-stop:
		}
	}()
	defer func() {
		_ = conn.Close()
		close(stop)
		wg.Wait()
	}()

	wr := wire.NewWriter(conn)
	rd := wire.NewReader(conn, f.o.MaxPayload)
	last := f.ap.LastApplied()
	wr.WriteFrame(wire.FrameReplHello, 0, wire.AppendReplHello(nil, last, f.o.Window))
	if err := wr.Flush(); err != nil {
		return err
	}
	f.setStatus(func(st *Status) {
		st.Connected = true
		st.Applied = last
		st.LastContact = f.o.Now()
		if resumed {
			st.Resumes++
		}
	})

	// ack sends the cumulative durable ack, refreshing the credit
	// window.
	//
	//moloc:ack
	ack := func(seq uint64) error {
		wr.WriteFrame(wire.FrameReplAck, seq, wire.AppendWindow(nil, f.o.Window))
		return wr.Flush()
	}

	// Checkpoint assembly state for an in-flight bootstrap.
	var (
		ckptBuf    []byte
		ckptSeq    uint64
		nextChunk  uint64
		assembling bool
	)

	// dirty marks records applied since the last commit+ack. The
	// commit runs at the bottom of the loop, for ANY frame type, once
	// no further frame is buffered: acking only from the WALSegment arm
	// deadlocks when the burst that exhausts the leader's credit window
	// is flushed together with a Publish heartbeat — the follower sees
	// a buffered frame after the last segment, defers the ack, handles
	// the Publish, and then blocks reading while the leader blocks
	// waiting for the ack that will never come.
	dirty := false

	for {
		fr, err := rd.ReadFrame()
		if err != nil {
			return err
		}
		now := f.o.Now()
		f.setStatus(func(st *Status) { st.LastContact = now })

		switch fr.Type {
		case wire.FrameCheckpointChunk:
			seq, lastChunk, chunk, derr := wire.DecodeCheckpointChunk(fr.Payload)
			if derr != nil {
				return derr
			}
			if !assembling {
				if fr.Seq != 0 {
					return fmt.Errorf("replica: checkpoint transfer began at chunk %d", fr.Seq)
				}
				assembling, ckptSeq, nextChunk = true, seq, 0
				ckptBuf = ckptBuf[:0]
			}
			if fr.Seq != nextChunk || seq != ckptSeq {
				return fmt.Errorf("replica: interleaved checkpoint transfer (chunk %d/%d, seq %d/%d)",
					fr.Seq, nextChunk, seq, ckptSeq)
			}
			nextChunk++
			ckptBuf = append(ckptBuf, chunk...)
			if !lastChunk {
				continue
			}
			assembling = false
			if ckptSeq > f.ap.LastApplied() {
				if err := f.ap.InstallSnapshot(ckptSeq, ckptBuf); err != nil {
					// Not installed, nothing acked; the redial re-requests
					// the checkpoint from scratch.
					return err
				}
				f.setStatus(func(st *Status) { st.SnapshotsInstalled++ })
			}
			applied := f.ap.LastApplied()
			if err := ack(applied); err != nil {
				return err
			}
			f.updateApplied(applied)
			// The installed checkpoint durably covers everything acked;
			// records applied before the re-bootstrap need no further
			// fsync of their own.
			dirty = false

		case wire.FrameWALSegment:
			if err := f.ap.Apply(fr.Seq, fr.Payload); err != nil {
				return err
			}
			dirty = true

		case wire.FramePublish:
			leaderLast, leaderCkpt, derr := wire.DecodePublish(fr.Payload)
			if derr != nil {
				return derr
			}
			f.setStatus(func(st *Status) {
				st.LeaderLast = leaderLast
				st.LeaderCkpt = leaderCkpt
				if st.Applied >= leaderLast {
					st.LastCaughtUp = now
				}
			})

		case wire.FrameError:
			return fmt.Errorf("replica: leader error: %s", fr.Payload)

		default:
			return fmt.Errorf("replica: unexpected frame type %d on replication stream", fr.Type)
		}

		// Drain-then-commit, the group-commit idiom from the ingest
		// path: only pay the covering fsync once no further frame is
		// already buffered, so one fsync covers the whole burst.
		if !dirty || rd.FrameBuffered() {
			continue
		}
		applied, err := f.ap.Commit()
		if err != nil {
			return err
		}
		if err := ack(applied); err != nil {
			return err
		}
		f.updateApplied(applied)
		dirty = false
	}
}

// updateApplied advances the applied position and the caught-up stamp.
func (f *Follower) updateApplied(applied uint64) {
	now := f.o.Now()
	f.setStatus(func(st *Status) {
		if applied > st.Applied {
			st.Applied = applied
		}
		if st.LeaderLast > 0 && st.Applied >= st.LeaderLast {
			st.LastCaughtUp = now
		}
	})
}
