package replica

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"moloc/internal/checkpoint"
	"moloc/internal/fault"
	"moloc/internal/wal"
	"moloc/internal/wire"
)

// testSource implements Source over a real WAL and checkpoint dir — the
// same composition the server's replSource uses.
type testSource struct {
	fs      fault.FS
	log     *wal.Log
	ckptDir string
}

func (s *testSource) Snapshot() (*checkpoint.Snapshot, error) {
	snap, _, err := checkpoint.OpenLatest(s.fs, s.ckptDir)
	return snap, err
}
func (s *testSource) FirstSeq() uint64 { return s.log.FirstSeq() }
func (s *testSource) NextSeq() uint64  { return s.log.NextSeq() }
func (s *testSource) CkptSeq() uint64 {
	if snap, _, err := checkpoint.OpenLatest(s.fs, s.ckptDir); err == nil {
		return snap.LastSeq
	}
	return 0
}
func (s *testSource) ReadWAL(from uint64, max int, fn func(uint64, []byte) error) (uint64, error) {
	return s.log.ReadFrom(from, max, fn)
}

// testApplier implements Applier over its own WAL, recording every
// InstallSnapshot payload so tests can assert no partial checkpoint is
// ever installed.
type testApplier struct {
	fs      fault.FS
	log     *wal.Log
	ckptDir string

	mu       sync.Mutex
	installs [][]byte
	dups     int
}

func (a *testApplier) LastApplied() uint64 { return a.log.NextSeq() - 1 }

func (a *testApplier) InstallSnapshot(ckptSeq uint64, payload []byte) error {
	a.mu.Lock()
	a.installs = append(a.installs, append([]byte(nil), payload...))
	a.mu.Unlock()
	if err := checkpoint.Save(a.fs, a.ckptDir, ckptSeq, payload); err != nil {
		return err
	}
	a.log.EnsureSeqAtLeast(ckptSeq)
	return nil
}

func (a *testApplier) Apply(seq uint64, payload []byte) error {
	next := a.log.NextSeq()
	if seq < next {
		a.mu.Lock()
		a.dups++
		a.mu.Unlock()
		return nil
	}
	if seq > next {
		return fmt.Errorf("testApplier: gap: got seq %d, want %d", seq, next)
	}
	_, err := a.log.AppendNoSync(payload)
	return err
}

func (a *testApplier) Commit() (uint64, error) {
	if err := a.log.Sync(); err != nil {
		return 0, err
	}
	return a.log.NextSeq() - 1, nil
}

func (a *testApplier) installedPayloads() [][]byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([][]byte(nil), a.installs...)
}

// newLeaderWorld builds a leader-side WAL (+ checkpoint dir) with n
// records "rec-<seq>".
func newLeaderWorld(t *testing.T, n int, segmentBytes int64) *testSource {
	t.Helper()
	log, err := wal.Open(t.TempDir(), wal.Options{SegmentBytes: segmentBytes}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { log.Close() })
	for i := 1; i <= n; i++ {
		if _, err := log.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	return &testSource{fs: fault.Disk{}, log: log, ckptDir: t.TempDir()}
}

func newTestApplier(t *testing.T) *testApplier {
	t.Helper()
	log, err := wal.Open(t.TempDir(), wal.Options{Policy: wal.SyncAlways}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { log.Close() })
	return &testApplier{fs: fault.Disk{}, log: log, ckptDir: t.TempDir()}
}

// startLeader serves replication connections for src on a loopback
// listener, mirroring the server's dispatch: read the hello, hand the
// connection to Leader.Serve.
func startLeader(t *testing.T, src Source, o LeaderOptions) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	ld := NewLeader(src, o)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				rd := wire.NewReader(conn, 0)
				fr, err := rd.ReadFrame()
				if err != nil || fr.Type != wire.FrameReplHello {
					conn.Close()
					return
				}
				lastSeq, window, derr := wire.DecodeReplHello(fr.Payload)
				if derr != nil {
					conn.Close()
					return
				}
				ld.Serve(conn, rd, lastSeq, window, done)
			}(conn)
		}
	}()
	t.Cleanup(func() { close(done); ln.Close() })
	return ln.Addr().String()
}

// fastLeaderOpts keeps test wall-clock low.
func fastLeaderOpts() LeaderOptions {
	return LeaderOptions{Poll: 2 * time.Millisecond, Heartbeat: 20 * time.Millisecond}
}

// runFollower starts f.Run and returns a stop func that is also
// registered as cleanup.
func runFollower(t *testing.T, f *Follower) func() {
	t.Helper()
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() { defer close(finished); f.Run(done) }()
	var once sync.Once
	stop := func() {
		once.Do(func() {
			close(done)
			select {
			case <-finished:
			case <-time.After(5 * time.Second):
				t.Error("follower Run did not return after done closed")
			}
		})
	}
	t.Cleanup(stop)
	return stop
}

func waitFor(t *testing.T, d time.Duration, cond func() bool, format string, args ...interface{}) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf(format, args...)
}

// walRecords reads every record still materialized in l, failing on a
// record delivered twice.
func walRecords(t *testing.T, l *wal.Log) map[uint64]string {
	t.Helper()
	out := map[uint64]string{}
	from := l.FirstSeq()
	for {
		next, err := l.ReadFrom(from, 1024, func(seq uint64, p []byte) error {
			if _, dup := out[seq]; dup {
				t.Fatalf("record %d read twice", seq)
			}
			out[seq] = string(p)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if next == from {
			return out
		}
		from = next
	}
}

// TestFollowerTailsLeader: a blank follower against an untruncated
// leader replicates the whole WAL byte-identically, with no bootstrap.
func TestFollowerTailsLeader(t *testing.T) {
	src := newLeaderWorld(t, 20, 0)
	addr := startLeader(t, src, fastLeaderOpts())

	ap := newTestApplier(t)
	f := NewFollower(ap, FollowerOptions{Addr: addr, RedialWait: 2 * time.Millisecond})
	runFollower(t, f)

	waitFor(t, 5*time.Second, func() bool {
		st := f.Status()
		return st.Applied == 20 && st.LeaderLast == 20
	}, "follower applied %d of 20 (status %+v)", f.Status().Applied, f.Status())

	st := f.Status()
	if !st.Connected || st.SnapshotsInstalled != 0 || st.LastCaughtUp.IsZero() {
		t.Fatalf("status after catch-up: %+v", st)
	}
	want := walRecords(t, src.log)
	got := walRecords(t, ap.log)
	if len(got) != 20 {
		t.Fatalf("follower holds %d records, want 20", len(got))
	}
	for seq, rec := range want {
		if got[seq] != rec {
			t.Fatalf("record %d: follower %q, leader %q", seq, got[seq], rec)
		}
	}
	if ap.dups != 0 {
		t.Fatalf("clean run applied %d duplicates", ap.dups)
	}
}

// TestFollowerBootstrapsFromCheckpoint: when the follower's cursor has
// been truncated out of the leader's WAL, the leader ships its newest
// checkpoint first; the follower installs it whole, then tails the
// remaining records.
func TestFollowerBootstrapsFromCheckpoint(t *testing.T) {
	src := newLeaderWorld(t, 12, 48)
	payload := bytes.Repeat([]byte("motion-db-state."), 16) // 256 bytes
	if err := checkpoint.Save(src.fs, src.ckptDir, 8, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := src.log.TruncateThrough(8); err != nil {
		t.Fatal(err)
	}
	if src.log.FirstSeq() <= 1 {
		t.Fatalf("FirstSeq = %d; nothing truncated, bootstrap untested", src.log.FirstSeq())
	}
	addr := startLeader(t, src, fastLeaderOpts())

	ap := newTestApplier(t)
	f := NewFollower(ap, FollowerOptions{Addr: addr, RedialWait: 2 * time.Millisecond})
	runFollower(t, f)

	waitFor(t, 5*time.Second, func() bool { return f.Status().Applied == 12 },
		"follower applied %d, want 12 (status %+v)", f.Status().Applied, f.Status())

	installs := ap.installedPayloads()
	if len(installs) != 1 || !bytes.Equal(installs[0], payload) {
		t.Fatalf("installs = %d payloads (first %d bytes), want exactly the full checkpoint",
			len(installs), len(installs[0]))
	}
	if st := f.Status(); st.SnapshotsInstalled != 1 {
		t.Fatalf("SnapshotsInstalled = %d, want 1", st.SnapshotsInstalled)
	}

	// The tailed records are the leader's, bit-identical.
	want := walRecords(t, src.log)
	got := walRecords(t, ap.log)
	for seq := uint64(9); seq <= 12; seq++ {
		if got[seq] != want[seq] {
			t.Fatalf("record %d: follower %q, leader %q", seq, got[seq], want[seq])
		}
	}
	// The installed checkpoint round-trips from the follower's own dir.
	reread, seq, _, err := checkpoint.Latest(ap.fs, ap.ckptDir)
	if err != nil || seq != 8 || !bytes.Equal(reread, payload) {
		t.Fatalf("follower checkpoint = (seq %d, %d bytes, %v)", seq, len(reread), err)
	}
}

// TestBootstrapRefusedWithoutCheckpoint: a truncated WAL with no
// checkpoint covering the gap must refuse the follower loudly — never
// stream a history with a hole in it.
func TestBootstrapRefusedWithoutCheckpoint(t *testing.T) {
	src := newLeaderWorld(t, 12, 48)
	if _, err := src.log.TruncateThrough(8); err != nil {
		t.Fatal(err)
	}
	if src.log.FirstSeq() <= 1 {
		t.Fatalf("FirstSeq = %d; nothing truncated, refusal untested", src.log.FirstSeq())
	}
	addr := startLeader(t, src, fastLeaderOpts())

	ap := newTestApplier(t)
	f := NewFollower(ap, FollowerOptions{Addr: addr, RedialWait: 2 * time.Millisecond})
	runFollower(t, f)

	waitFor(t, 5*time.Second, func() bool {
		st := f.Status()
		return st.LastErr != nil && strings.Contains(st.LastErr.Error(), "no checkpoint")
	}, "follower never saw the leader's refusal; status %+v", f.Status())
	if got := ap.LastApplied(); got != 0 {
		t.Fatalf("refused follower applied %d records, want 0", got)
	}
}

// TestTornTransferNeverInstallsPartial is the chunk-boundary fault
// sweep: the follower's first connection is severed after every byte
// budget in turn — covering a tear at and around every checkpoint chunk
// boundary and mid-WAL-segment — and each time the redial must finish
// the job with the checkpoint installed whole. InstallSnapshot must
// never see a byte count other than the full payload.
func TestTornTransferNeverInstallsPartial(t *testing.T) {
	src := newLeaderWorld(t, 10, 48)
	payload := bytes.Repeat([]byte("db!"), 16) // 48 bytes, 6 chunks of 8
	if err := checkpoint.Save(src.fs, src.ckptDir, 8, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := src.log.TruncateThrough(8); err != nil {
		t.Fatal(err)
	}
	if src.log.FirstSeq() <= 1 {
		t.Fatal("nothing truncated; sweep would not exercise bootstrap")
	}
	o := fastLeaderOpts()
	o.ChunkBytes = 8
	addr := startLeader(t, src, o)

	// The full transfer prefix (publish + 6 chunk frames + 2 segments)
	// is a few hundred bytes; sweeping every byte of it tears at every
	// chunk boundary along the way.
	for budget := 1; budget <= 320; budget += 1 {
		ap := newTestApplier(t)
		var dials atomic.Int32
		f := NewFollower(ap, FollowerOptions{
			RedialWait: time.Millisecond,
			Dial: func() (net.Conn, error) {
				conn, err := net.Dial("tcp", addr)
				if err != nil {
					return nil, err
				}
				if dials.Add(1) == 1 {
					return fault.NewConn(conn, int64(budget), -1, nil), nil
				}
				return conn, nil
			},
		})
		stop := runFollower(t, f)

		waitFor(t, 5*time.Second, func() bool { return f.Status().Applied == 10 },
			"budget %d: follower stuck at %d (status %+v)", budget, f.Status().Applied, f.Status())
		stop()

		for i, inst := range ap.installedPayloads() {
			if !bytes.Equal(inst, payload) {
				t.Fatalf("budget %d: install %d saw %d bytes, want the full %d-byte checkpoint",
					budget, i, len(inst), len(payload))
			}
		}
		want := walRecords(t, src.log)
		got := walRecords(t, ap.log)
		for seq := uint64(9); seq <= 10; seq++ {
			if got[seq] != want[seq] {
				t.Fatalf("budget %d: record %d: follower %q, leader %q", budget, seq, got[seq], want[seq])
			}
		}
	}
}

// TestFollowerRidesOutRepeatedTears: every connection is severed after
// a small read budget; redial-with-resume still converges, each record
// applied exactly once (the walRecords read fails on doubles, and the
// final map matches the leader's).
func TestFollowerRidesOutRepeatedTears(t *testing.T) {
	src := newLeaderWorld(t, 30, 0)
	addr := startLeader(t, src, fastLeaderOpts())

	ap := newTestApplier(t)
	f := NewFollower(ap, FollowerOptions{
		RedialWait: time.Millisecond,
		Dial: func() (net.Conn, error) {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			// Enough for the publish plus a handful of segments, never the
			// whole stream: forces several mid-stream resumes.
			return fault.NewConn(conn, 300, -1, nil), nil
		},
	})
	runFollower(t, f)

	waitFor(t, 10*time.Second, func() bool { return f.Status().Applied == 30 },
		"follower stuck at %d (status %+v)", f.Status().Applied, f.Status())
	if st := f.Status(); st.Resumes == 0 {
		t.Fatalf("no resumes recorded despite torn connections: %+v", st)
	}

	want := walRecords(t, src.log)
	got := walRecords(t, ap.log)
	if len(got) != 30 {
		t.Fatalf("follower holds %d records, want 30", len(got))
	}
	for seq, rec := range want {
		if got[seq] != rec {
			t.Fatalf("record %d: follower %q, leader %q", seq, got[seq], rec)
		}
	}
}

// TestLeaderRefusesFollowerAhead: a hello claiming records the leader
// never wrote is a split deployment; Serve must refuse with
// ErrFollowerAhead and an error frame, not stream backwards.
func TestLeaderRefusesFollowerAhead(t *testing.T) {
	src := newLeaderWorld(t, 3, 0)
	ld := NewLeader(src, fastLeaderOpts())

	server, client := net.Pipe()
	defer client.Close()
	done := make(chan struct{})
	defer close(done)

	got := make(chan wire.Frame, 1)
	go func() {
		rd := wire.NewReader(client, 0)
		fr, err := rd.ReadFrame()
		if err == nil {
			got <- fr
		}
		close(got)
	}()

	err := ld.Serve(server, wire.NewReader(server, 0), 100, 8, done)
	if err == nil || !strings.Contains(err.Error(), "ahead") {
		t.Fatalf("Serve = %v, want ErrFollowerAhead", err)
	}
	fr, ok := <-got
	if !ok || fr.Type != wire.FrameError {
		t.Fatalf("follower saw frame %+v, want a FrameError refusal", fr)
	}
}

// TestFollowerAcksBurstCoalescedWithPublish: regression for a lost-ack
// deadlock. When the WAL burst that exhausts the leader's credit window
// arrives in the same flush as a Publish heartbeat, the follower sees a
// buffered frame after the last segment and defers its commit+ack;
// handling the Publish must still drain the pending commit — otherwise
// the follower blocks reading while the leader blocks on the ack that
// never comes, freezing replication on a live connection.
func TestFollowerAcksBurstCoalescedWithPublish(t *testing.T) {
	const window = 64
	fc, lc := net.Pipe()
	t.Cleanup(func() { fc.Close(); lc.Close() })
	ap := newTestApplier(t)
	f := NewFollower(ap, FollowerOptions{
		Addr:       "pipe",
		Dial:       func() (net.Conn, error) { return fc, nil },
		Window:     window,
		RedialWait: time.Hour, // the scripted leader serves exactly one connection
	})

	acks := make(chan uint64, 16)
	go func() {
		rd := wire.NewReader(lc, 0)
		fr, err := rd.ReadFrame()
		if err != nil || fr.Type != wire.FrameReplHello {
			return
		}
		// One write: a full window of WAL segments with the heartbeat
		// coalesced behind them, exactly what the leader's writer emits
		// when the heartbeat cadence elapses at the end of a burst.
		var burst []byte
		for seq := uint64(1); seq <= window; seq++ {
			burst = wire.AppendFrame(burst, wire.FrameWALSegment, seq, []byte(fmt.Sprintf("rec-%d", seq)))
		}
		burst = wire.AppendFrame(burst, wire.FramePublish, 0, wire.AppendPublish(nil, window, 0))
		if _, err := lc.Write(burst); err != nil {
			return
		}
		for {
			fr, err := rd.ReadFrame()
			if err != nil {
				return
			}
			if fr.Type == wire.FrameReplAck {
				acks <- fr.Seq
			}
		}
	}()
	runFollower(t, f)

	select {
	case seq := <-acks:
		if seq != window {
			t.Fatalf("cumulative ack = %d, want %d", seq, window)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("no ack for the coalesced burst; replication would deadlock (status %+v)", f.Status())
	}
	if got := walRecords(t, ap.log); len(got) != window {
		t.Fatalf("follower holds %d records, want %d", len(got), window)
	}
}
