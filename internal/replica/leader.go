// Package replica is WAL-shipping replication: a leader streams its
// write-ahead log to followers over the binary frame protocol
// (internal/wire), bootstrapping blank or lagging followers from the
// newest valid checkpoint first. The composition closes the loop the
// ROADMAP names: PR 5 made one molocd crash-safe, PR 8 made the ingest
// path a resumable framed stream — shipping the same WAL records over
// the same frames makes the *service* crash-safe, because any follower
// holds everything the leader ever acknowledged.
//
// Protocol (one replication connection, opened on the leader's stream
// listener): the follower sends ReplHello{lastSeq, window} naming the
// highest WAL sequence it holds. The leader replies with a stream of
//
//   - CheckpointChunk frames when the follower's cursor (lastSeq+1) has
//     been truncated out of the leader's WAL — the follower assembles
//     and durably installs the checkpoint, then acks its coverage;
//   - WALSegment frames (Seq = WAL record sequence, payload = record
//     payload verbatim) from the cursor, at most `window` beyond the
//     follower's cumulative ReplAck;
//   - Publish frames naming the leader's WAL tail and newest checkpoint
//     — the heartbeat from which followers compute lag.
//
// Invariants: WALSegment sequences are strictly increasing and
// contiguous per connection (a follower that observes a jump must drop
// the connection and re-hello); the wire is at-least-once (a redial
// re-ships everything past the follower's last ack) while the
// follower's WAL is exactly-once (duplicates land below its NextSeq and
// are dropped before append); acks follow the follower's own covering
// fsync, so an acked record survives follower kill -9 — which is
// precisely what lets the leader forget it.
package replica

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"moloc/internal/checkpoint"
	"moloc/internal/wal"
	"moloc/internal/wire"
)

// Source is the leader's durable state as the replication service needs
// it: checkpoint access for bootstrap, WAL access for tailing. The
// server implements it over its durableStore.
type Source interface {
	// Snapshot opens the newest valid checkpoint for chunked shipping;
	// checkpoint.ErrNoCheckpoint when none exists.
	Snapshot() (*checkpoint.Snapshot, error)
	// FirstSeq is the oldest WAL sequence still materialized.
	FirstSeq() uint64
	// NextSeq is the sequence the next local append will use.
	NextSeq() uint64
	// CkptSeq is the coverage of the newest checkpoint (0 when none).
	CkptSeq() uint64
	// ReadWAL streams up to max records with sequences >= from through
	// fn and returns the next cursor; wal.ErrTruncated demands a
	// checkpoint bootstrap instead.
	ReadWAL(from uint64, max int, fn func(seq uint64, payload []byte) error) (uint64, error)
}

// LeaderOptions tune one replication connection; the zero value works.
type LeaderOptions struct {
	// ChunkBytes sizes checkpoint bootstrap chunks (default 64 KiB).
	ChunkBytes int
	// Heartbeat is the Publish cadence when idle (default 1s).
	Heartbeat time.Duration
	// Poll is the WAL tail re-check interval when caught up (default
	// 25ms).
	Poll time.Duration
	// Window bounds unacked in-flight records when the follower's hello
	// advertises none (default 256).
	Window int
	// Now is the clock seam; nil selects time.Now.
	Now func() time.Time
}

func (o LeaderOptions) withDefaults() LeaderOptions {
	if o.ChunkBytes <= 0 {
		o.ChunkBytes = 64 << 10
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = time.Second
	}
	if o.Poll <= 0 {
		o.Poll = 25 * time.Millisecond
	}
	if o.Window <= 0 {
		o.Window = 256
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// ErrFollowerAhead reports a hello whose lastSeq is at or past the
// leader's own tail: replicating would run history backwards (the
// follower has records this leader never wrote — a split deployment or
// a stale address).
var ErrFollowerAhead = errors.New("replica: follower is ahead of the leader")

// Leader serves replication connections from one Source.
type Leader struct {
	src Source
	o   LeaderOptions
}

// NewLeader builds a leader service over src.
func NewLeader(src Source, o LeaderOptions) *Leader {
	return &Leader{src: src, o: o.withDefaults()}
}

// ackState is the per-connection view of the follower's progress,
// shared between the serve loop (writer) and the ack reader goroutine.
type ackState struct {
	mu     sync.Mutex
	cond   *sync.Cond
	acked  uint64
	window int
	dead   bool
	err    error
}

func newAckState(acked uint64, window int) *ackState {
	st := &ackState{acked: acked, window: window}
	st.cond = sync.NewCond(&st.mu)
	return st
}

func (st *ackState) update(acked uint64, window int) {
	st.mu.Lock()
	if acked > st.acked {
		st.acked = acked
	}
	if window > 0 {
		st.window = window
	}
	st.cond.Broadcast()
	st.mu.Unlock()
}

func (st *ackState) markDead(err error) {
	st.mu.Lock()
	if !st.dead {
		st.dead = true
		st.err = err
	}
	st.cond.Broadcast()
	st.mu.Unlock()
}

// waitCredit blocks until at least one more record fits under the
// window beyond cursor-1, returning how many fit (0 = connection dead).
func (st *ackState) waitCredit(cursor uint64) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	for !st.dead && cursor-1-st.acked >= uint64(st.window) {
		st.cond.Wait()
	}
	if st.dead {
		return 0
	}
	return st.window - int(cursor-1-st.acked)
}

func (st *ackState) snapshot() (acked uint64, dead bool, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.acked, st.dead, st.err
}

// Serve runs the replication protocol for one follower connection whose
// ReplHello carried lastSeq and window. rd is the connection's frame
// reader (positioned just past the hello); done aborts the serve. Serve
// owns conn's lifetime from here: it closes it on exit and joins its
// internal goroutines.
func (ld *Leader) Serve(conn net.Conn, rd *wire.Reader, lastSeq uint64, window uint32, done <-chan struct{}) error {
	wr := wire.NewWriter(conn)
	if lastSeq >= ld.src.NextSeq() {
		wr.WriteError(0, "follower ahead of leader")
		//lint:ignore errdrop the connection is being refused; the flush error cannot add anything
		_ = wr.Flush()
		//lint:ignore errdrop closing a refused connection
		_ = conn.Close()
		return fmt.Errorf("replica: hello lastSeq %d >= leader next %d: %w", lastSeq, ld.src.NextSeq(), ErrFollowerAhead)
	}

	st := newAckState(lastSeq, ld.o.Window)
	if window > 0 {
		st.window = int(window)
	}

	// The ack reader drains follower frames; the done watcher severs the
	// conn on shutdown. Both are joined before Serve returns: closing
	// conn unblocks the reader, closing stop releases the watcher.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		ld.readAcks(rd, st)
	}()
	go func() {
		defer wg.Done()
		select {
		case <-done:
			st.markDead(errors.New("replica: leader shutting down"))
			//lint:ignore errdrop shutdown path; the serve loop reports its own exit
			_ = conn.Close()
		case <-stop:
		}
	}()
	defer func() {
		_ = conn.Close()
		close(stop)
		wg.Wait()
	}()

	err := ld.stream(wr, st, lastSeq+1)
	if err == nil {
		if _, _, derr := st.snapshot(); derr != nil {
			err = derr
		}
	}
	return err
}

// readAcks drains the follower's frames for one connection: ReplAcks
// advance the shared ack state, anything else is a protocol violation.
func (ld *Leader) readAcks(rd *wire.Reader, st *ackState) {
	for {
		fr, err := rd.ReadFrame()
		if err != nil {
			st.markDead(err)
			return
		}
		switch fr.Type {
		case wire.FrameReplAck:
			w, werr := wire.DecodeWindow(fr.Payload)
			if werr != nil {
				st.markDead(werr)
				return
			}
			st.update(fr.Seq, int(w))
		default:
			st.markDead(fmt.Errorf("replica: unexpected frame type %d on replication stream", fr.Type))
			return
		}
	}
}

// stream is the serve loop: bootstrap when the cursor is truncated,
// otherwise tail the WAL under the follower's credit window, publishing
// position on the heartbeat cadence.
func (ld *Leader) stream(wr *wire.Writer, st *ackState, cursor uint64) error {
	var lastPublish time.Time
	publish := func() error {
		wr.WriteFrame(wire.FramePublish, 0, wire.AppendPublish(nil, ld.src.NextSeq()-1, ld.src.CkptSeq()))
		if err := wr.Flush(); err != nil {
			return err
		}
		lastPublish = ld.o.Now()
		return nil
	}
	// An immediate Publish tells the follower the leader's tail before
	// the first batch, so lag is observable from the first heartbeat.
	if err := publish(); err != nil {
		return err
	}

	for {
		if _, dead, derr := st.snapshot(); dead {
			return derr
		}
		if cursor < ld.src.FirstSeq() {
			next, err := ld.bootstrap(wr, cursor)
			if err != nil {
				return err
			}
			cursor = next
			continue
		}

		credit := st.waitCredit(cursor)
		if credit == 0 {
			_, _, derr := st.snapshot()
			return derr
		}
		wrote := 0
		next, err := ld.src.ReadWAL(cursor, credit, func(seq uint64, payload []byte) error {
			wr.WriteFrame(wire.FrameWALSegment, seq, payload)
			wrote++
			// Bound the write buffer: flush every few frames so a slow
			// reader exerts TCP backpressure instead of growing memory.
			if wr.Buffered() > 256<<10 {
				return wr.Flush()
			}
			return nil
		})
		if errors.Is(err, wal.ErrTruncated) {
			// A checkpoint truncated the range out from under the cursor
			// (or the cursor fell in a sequence jump); the checkpoint
			// covers it, so re-bootstrap on the same connection.
			cursor = next
			continue
		}
		if err != nil {
			return err
		}
		if wrote > 0 {
			if err := wr.Flush(); err != nil {
				return err
			}
		}
		cursor = next

		now := ld.o.Now()
		if now.Sub(lastPublish) >= ld.o.Heartbeat {
			if err := publish(); err != nil {
				return err
			}
		}
		if wrote == 0 {
			// Caught up: poll the tail. The done watcher severs the conn
			// on shutdown, so a bounded sleep (not a wakeup channel) is
			// enough to stay responsive.
			timer := time.NewTimer(ld.o.Poll)
			<-timer.C
		}
	}
}

// bootstrap ships the newest checkpoint in chunks and returns the
// cursor to stream from afterwards (ckptSeq+1). The follower acks the
// checkpoint's coverage once installed; bootstrap does not wait for
// that ack — WAL frames pipeline behind the chunks and the follower
// applies them in order.
func (ld *Leader) bootstrap(wr *wire.Writer, cursor uint64) (uint64, error) {
	snap, err := ld.src.Snapshot()
	if err != nil {
		wr.WriteError(0, "leader has no checkpoint covering the requested sequence")
		//lint:ignore errdrop the bootstrap already failed; the flush error cannot add anything
		_ = wr.Flush()
		return cursor, fmt.Errorf("replica: bootstrap needs a checkpoint covering seq %d: %w", cursor, err)
	}
	if snap.LastSeq+1 < cursor {
		// The checkpoint predates what the follower already holds; with
		// cursor < FirstSeq this means the WAL lost records no checkpoint
		// covers — refuse loudly rather than ship a regression.
		wr.WriteError(0, "leader checkpoint behind follower state")
		//lint:ignore errdrop the bootstrap already failed; the flush error cannot add anything
		_ = wr.Flush()
		return cursor, fmt.Errorf("replica: newest checkpoint covers %d, follower already at %d", snap.LastSeq, cursor-1)
	}
	var idx uint64
	for {
		chunk, last := snap.Next(ld.o.ChunkBytes)
		wr.WriteFrame(wire.FrameCheckpointChunk, idx, wire.AppendCheckpointChunk(nil, snap.LastSeq, last, chunk))
		idx++
		if err := wr.Flush(); err != nil {
			return cursor, err
		}
		if last {
			break
		}
	}
	return snap.LastSeq + 1, nil
}
