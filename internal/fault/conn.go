// Conn is the transport counterpart of the FS seam: a net.Conn wrapper
// that severs the connection after a byte budget, leaving a torn frame
// on the wire exactly the way a mid-ship crash or cut does. Replication
// tests use it to prove that a WAL segment or checkpoint chunk torn in
// flight is detected (frame CRC / short read) and healed by
// redial-resume rather than half-applied.
package fault

import (
	"net"
	"sync"
)

// Conn wraps an inner net.Conn with independent read and write byte
// budgets. Once a budget is exhausted mid-call, the call transfers only
// the bytes the budget allows (the torn prefix), the underlying
// connection is closed, and every later call fails. A negative budget
// is unlimited.
type Conn struct {
	net.Conn

	mu          sync.Mutex
	readBudget  int64
	writeBudget int64
	err         error
	tripped     bool
}

// NewConn wraps inner. err is returned from calls after the trip; nil
// selects ErrInjected.
func NewConn(inner net.Conn, readBudget, writeBudget int64, err error) *Conn {
	if err == nil {
		err = ErrInjected
	}
	return &Conn{Conn: inner, readBudget: readBudget, writeBudget: writeBudget, err: err}
}

// trip closes the inner connection and fails all subsequent calls.
// Called with c.mu held.
func (c *Conn) tripLocked() {
	c.tripped = true
	//lint:ignore errdrop the injected fault is the error being delivered; the close is cleanup
	_ = c.Conn.Close()
}

func (c *Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	if c.tripped {
		c.mu.Unlock()
		return 0, c.err
	}
	limit := len(p)
	limited := c.readBudget >= 0
	if limited && int64(limit) > c.readBudget {
		limit = int(c.readBudget)
	}
	c.mu.Unlock()

	if limited && limit == 0 {
		c.mu.Lock()
		c.tripLocked()
		c.mu.Unlock()
		return 0, c.err
	}
	n, err := c.Conn.Read(p[:limit])

	c.mu.Lock()
	defer c.mu.Unlock()
	if limited {
		c.readBudget -= int64(n)
		if c.readBudget <= 0 && !c.tripped {
			c.tripLocked()
			return n, c.err
		}
	}
	return n, err
}

func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	if c.tripped {
		c.mu.Unlock()
		return 0, c.err
	}
	limit := len(p)
	limited := c.writeBudget >= 0
	if limited && int64(limit) > c.writeBudget {
		limit = int(c.writeBudget)
	}
	c.mu.Unlock()

	var n int
	var err error
	if limit > 0 {
		n, err = c.Conn.Write(p[:limit])
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if limited {
		c.writeBudget -= int64(n)
		if (c.writeBudget <= 0 || limit < len(p)) && !c.tripped {
			c.tripLocked()
			return n, c.err
		}
	}
	if err == nil && n < len(p) {
		// A short write without an error would silently drop bytes.
		return n, c.err
	}
	return n, err
}
