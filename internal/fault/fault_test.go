package fault

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fs := Disk{}
	name := filepath.Join(dir, "a.txt")
	f, err := fs.OpenFile(name, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(name, filepath.Join(dir, "b.txt")); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	ents, err := fs.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "b.txt" {
		t.Fatalf("dir entries: %v", ents)
	}
	if err := fs.Truncate(filepath.Join(dir, "b.txt"), 2); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "b.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "he" {
		t.Fatalf("after truncate: %q", data)
	}
}

// TestInjectorSchedule exercises the After/Count firing window: the
// first After matches pass, the next Count fail, and the rule then
// disarms.
func TestInjectorSchedule(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(Disk{}, Rule{Op: OpSync, After: 1, Count: 2, Err: syscall.EIO})
	f, err := in.OpenFile(filepath.Join(dir, "x"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 1 should pass: %v", err)
	}
	for i := 0; i < 2; i++ {
		if err := f.Sync(); !errors.Is(err, syscall.EIO) {
			t.Fatalf("sync %d: want EIO, got %v", i+2, err)
		}
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after rule exhausted should pass: %v", err)
	}
	if got := in.Fired(0); got != 2 {
		t.Fatalf("fired = %d, want 2", got)
	}
}

// TestInjectorShortWrite verifies a torn write leaves exactly the
// scripted prefix on disk.
func TestInjectorShortWrite(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(Disk{}, Rule{Op: OpWrite, KeepBytes: 3, Crash: true})
	name := filepath.Join(dir, "torn")
	f, err := in.OpenFile(name, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("abcdef"))
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	if n != 3 {
		t.Fatalf("short write wrote %d bytes, want 3", n)
	}
	data, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "abc" {
		t.Fatalf("on disk: %q", data)
	}
}

// TestInjectorCrashHalts verifies that after a Crash rule fires every
// later operation — on the FS and on files opened before the crash —
// fails with ErrCrashed.
func TestInjectorCrashHalts(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(Disk{}, Rule{Op: OpRename, Crash: true})
	f, err := in.OpenFile(filepath.Join(dir, "pre"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Rename(filepath.Join(dir, "pre"), filepath.Join(dir, "post")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("rename: want ErrCrashed, got %v", err)
	}
	if !in.Halted() {
		t.Fatal("injector should be halted")
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write after crash: want ErrCrashed, got %v", err)
	}
	if _, err := in.ReadDir(dir); !errors.Is(err, ErrCrashed) {
		t.Fatalf("readdir after crash: want ErrCrashed, got %v", err)
	}
	// The rename never happened: the original file is still there.
	if _, err := os.Stat(filepath.Join(dir, "pre")); err != nil {
		t.Fatalf("pre-crash file gone: %v", err)
	}
}

// TestInjectorPathFilter verifies rules only fire on matching paths.
func TestInjectorPathFilter(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(Disk{}, Rule{Op: OpOpen, PathContains: "wal-", Err: syscall.EIO})
	if _, err := in.OpenFile(filepath.Join(dir, "ckpt-1"), os.O_CREATE|os.O_WRONLY, 0o644); err != nil {
		t.Fatalf("non-matching open: %v", err)
	}
	if _, err := in.OpenFile(filepath.Join(dir, "wal-1"), os.O_CREATE|os.O_WRONLY, 0o644); !errors.Is(err, syscall.EIO) {
		t.Fatalf("matching open: want EIO, got %v", err)
	}
}

func TestManualClock(t *testing.T) {
	t0 := time.Unix(1000, 0)
	c := NewManualClock(t0)
	if !c.Now().Equal(t0) {
		t.Fatal("clock should start at t0")
	}
	c.Advance(3 * time.Second)
	if got := c.Now().Sub(t0); got != 3*time.Second {
		t.Fatalf("advanced %v, want 3s", got)
	}
}
