// Package fault provides the injectable filesystem and clock seams the
// durability layer (internal/wal, internal/checkpoint) is built on.
//
// Production code talks to the real disk through Disk; recovery tests
// wrap it in an Injector driven by a deterministic fault script — fail
// the Nth fsync with EIO, tear a write after K bytes, crash between a
// temp-file write and its rename — so every failure mode the WAL and
// checkpoint machinery must survive is reproducible in a unit test
// instead of waiting for a power cut. The seam is deliberately narrow:
// only the operations the durability code performs are in the
// interface, which keeps fakes honest and the fault matrix enumerable.
package fault

import (
	"io"
	"os"
	"sync"
	"time"
)

// File is the subset of *os.File the durability layer uses. Writes are
// append-ordered by the caller; Sync must not return until the data is
// durable (fsync semantics).
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
}

// FS is the filesystem seam. All paths are interpreted as by the os
// package. SyncDir flushes a directory's metadata (entry creation,
// rename) to disk — the step that makes an atomic-rename publication
// durable, not just ordered.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadDir(name string) ([]os.DirEntry, error)
	MkdirAll(name string, perm os.FileMode) error
	Truncate(name string, size int64) error
	SyncDir(name string) error
}

// Disk is the real filesystem.
type Disk struct{}

var _ FS = Disk{}

// OpenFile implements FS.
func (Disk) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Rename implements FS.
func (Disk) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (Disk) Remove(name string) error { return os.Remove(name) }

// ReadDir implements FS.
func (Disk) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

// MkdirAll implements FS.
func (Disk) MkdirAll(name string, perm os.FileMode) error { return os.MkdirAll(name, perm) }

// Truncate implements FS.
func (Disk) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// SyncDir implements FS: open the directory and fsync it, making
// renames and creations within it durable.
func (Disk) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// Clock is the time seam: the WAL's interval fsync policy asks it how
// much time has passed instead of reading the wall clock directly, so
// group-commit behavior is testable without sleeping.
type Clock func() time.Time

// ManualClock is a test clock advanced explicitly.
type ManualClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewManualClock starts a manual clock at the given instant.
func NewManualClock(start time.Time) *ManualClock { return &ManualClock{t: start} }

// Now returns the current manual time.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward by d.
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}
