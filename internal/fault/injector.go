// The Injector: an FS middleware that fails operations on a
// deterministic script. Each Rule names an operation, an optional path
// substring, and a firing window (skip the first After matches, then
// fire Count times); the effect is an injected error, a short write, or
// a simulated crash that halts the filesystem for good — the moral
// equivalent of kill -9 between two syscalls.
package fault

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
)

// Op names one filesystem operation for rule matching.
type Op string

// Operations an Injector can fault.
const (
	OpOpen     Op = "open"
	OpRead     Op = "read"
	OpWrite    Op = "write"
	OpSync     Op = "sync"
	OpClose    Op = "close"
	OpRename   Op = "rename"
	OpRemove   Op = "remove"
	OpTruncate Op = "truncate"
	OpReadDir  Op = "readdir"
	OpMkdirAll Op = "mkdirall"
	OpSyncDir  Op = "syncdir"
)

// ErrCrashed is returned by every operation after a Crash rule fires:
// the process is pretending to be dead, so nothing else may reach the
// disk. Recovery tests then reopen the files with a fresh FS, exactly
// as a restarted process would.
var ErrCrashed = errors.New("fault: simulated crash")

// ErrInjected is the default error of a rule that specifies none.
var ErrInjected = errors.New("fault: injected error")

// Rule is one scripted fault.
type Rule struct {
	// Op selects the operation to fault.
	Op Op
	// PathContains restricts the rule to paths containing this
	// substring; empty matches every path.
	PathContains string
	// After skips the first After matching operations before firing.
	After int
	// Count is how many times the rule fires; 0 means once. A large
	// Count makes the fault persistent (e.g. a full disk).
	Count int
	// Err is the injected error; nil selects ErrInjected (or ErrCrashed
	// when Crash is set).
	Err error
	// KeepBytes applies to OpWrite: the first KeepBytes of the buffer
	// reach the file before the error, simulating a torn write.
	KeepBytes int
	// Crash halts the injector after the rule fires: every later
	// operation returns ErrCrashed.
	Crash bool
}

func (r Rule) err() error {
	if r.Err != nil {
		return r.Err
	}
	if r.Crash {
		return ErrCrashed
	}
	return ErrInjected
}

// ruleState tracks a rule's firing window.
type ruleState struct {
	Rule
	seen  int
	fired int
}

// Injector wraps an FS with a fault script. It is safe for concurrent
// use; rule bookkeeping is serialized under one mutex.
type Injector struct {
	fs FS

	mu     sync.Mutex
	rules  []*ruleState
	halted bool
}

var _ FS = (*Injector)(nil)

// NewInjector wraps fs with the scripted rules, evaluated in order;
// the first matching armed rule fires.
func NewInjector(fs FS, rules ...Rule) *Injector {
	in := &Injector{fs: fs}
	for _, r := range rules {
		in.rules = append(in.rules, &ruleState{Rule: r})
	}
	return in
}

// Halted reports whether a Crash rule has fired.
func (in *Injector) Halted() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.halted
}

// Fired returns how many times rule i has fired.
func (in *Injector) Fired(i int) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rules[i].fired
}

// check consults the script for one operation. It returns the rule that
// fired (nil for a clean pass) and whether the injector is halted.
func (in *Injector) check(op Op, path string) (*ruleState, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.halted {
		return nil, ErrCrashed
	}
	for _, r := range in.rules {
		if r.Op != op || !strings.Contains(path, r.PathContains) {
			continue
		}
		count := r.Count
		if count == 0 {
			count = 1
		}
		if r.fired >= count {
			continue
		}
		r.seen++
		if r.seen <= r.After {
			continue
		}
		r.fired++
		if r.Crash {
			in.halted = true
		}
		return r, r.err()
	}
	return nil, nil
}

// OpenFile implements FS.
func (in *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if _, err := in.check(OpOpen, name); err != nil {
		return nil, fmt.Errorf("open %s: %w", name, err)
	}
	f, err := in.fs.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: f, name: name}, nil
}

// Rename implements FS.
func (in *Injector) Rename(oldpath, newpath string) error {
	if _, err := in.check(OpRename, newpath); err != nil {
		return fmt.Errorf("rename %s: %w", newpath, err)
	}
	return in.fs.Rename(oldpath, newpath)
}

// Remove implements FS.
func (in *Injector) Remove(name string) error {
	if _, err := in.check(OpRemove, name); err != nil {
		return fmt.Errorf("remove %s: %w", name, err)
	}
	return in.fs.Remove(name)
}

// ReadDir implements FS.
func (in *Injector) ReadDir(name string) ([]os.DirEntry, error) {
	if _, err := in.check(OpReadDir, name); err != nil {
		return nil, fmt.Errorf("readdir %s: %w", name, err)
	}
	return in.fs.ReadDir(name)
}

// MkdirAll implements FS.
func (in *Injector) MkdirAll(name string, perm os.FileMode) error {
	if _, err := in.check(OpMkdirAll, name); err != nil {
		return fmt.Errorf("mkdirall %s: %w", name, err)
	}
	return in.fs.MkdirAll(name, perm)
}

// Truncate implements FS.
func (in *Injector) Truncate(name string, size int64) error {
	if _, err := in.check(OpTruncate, name); err != nil {
		return fmt.Errorf("truncate %s: %w", name, err)
	}
	return in.fs.Truncate(name, size)
}

// SyncDir implements FS.
func (in *Injector) SyncDir(name string) error {
	if _, err := in.check(OpSyncDir, name); err != nil {
		return fmt.Errorf("syncdir %s: %w", name, err)
	}
	return in.fs.SyncDir(name)
}

// injFile routes a file's operations back through the script.
type injFile struct {
	in   *Injector
	f    File
	name string
}

func (f *injFile) Read(p []byte) (int, error) {
	if _, err := f.in.check(OpRead, f.name); err != nil {
		return 0, err
	}
	return f.f.Read(p)
}

func (f *injFile) Write(p []byte) (int, error) {
	r, err := f.in.check(OpWrite, f.name)
	if err != nil {
		n := 0
		if r != nil && r.KeepBytes > 0 && r.KeepBytes < len(p) {
			// Torn write: the prefix lands on disk, the rest never does.
			//lint:ignore errdrop the injected error is what the caller must see; the short count is the effect under test
			n, _ = f.f.Write(p[:r.KeepBytes])
		}
		return n, err
	}
	return f.f.Write(p)
}

func (f *injFile) Sync() error {
	if _, err := f.in.check(OpSync, f.name); err != nil {
		return err
	}
	return f.f.Sync()
}

func (f *injFile) Close() error {
	if _, err := f.in.check(OpClose, f.name); err != nil {
		// Close the real handle regardless; a crashed process does not
		// leak descriptors into the reborn one.
		//lint:ignore errdrop the injected error is the one under test
		_ = f.f.Close()
		return err
	}
	return f.f.Close()
}
