package motiondb

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"moloc/internal/floorplan"
	"moloc/internal/geom"
	"moloc/internal/motion"
	"moloc/internal/stats"
)

func mustBuilder(t *testing.T, cfg BuilderConfig) *Builder {
	t.Helper()
	b, err := NewBuilder(floorplan.OfficeHall(), cfg)
	if err != nil {
		t.Fatalf("NewBuilder: %v", err)
	}
	return b
}

func TestBuilderConfigValidate(t *testing.T) {
	if err := NewBuilderConfig().Validate(); err != nil {
		t.Errorf("defaults should validate: %v", err)
	}
	bad := []func(*BuilderConfig){
		func(c *BuilderConfig) { c.Level = 0 },
		func(c *BuilderConfig) { c.CoarseDirThresh = 0 },
		func(c *BuilderConfig) { c.CoarseOffThresh = -1 },
		func(c *BuilderConfig) { c.FineSigmas = 0 },
		func(c *BuilderConfig) { c.MinSamples = 0 },
	}
	for i, mutate := range bad {
		c := NewBuilderConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
		if _, err := NewBuilder(floorplan.OfficeHall(), c); err == nil {
			t.Errorf("case %d: NewBuilder should reject", i)
		}
	}
}

func TestEntryMirror(t *testing.T) {
	e := Entry{MeanDir: 30, StdDir: 5, MeanOff: 4, StdOff: 0.2, N: 7}
	m := e.Mirror()
	if m.MeanDir != 210 {
		t.Errorf("mirrored dir = %v, want 210", m.MeanDir)
	}
	if m.StdDir != 5 || m.MeanOff != 4 || m.StdOff != 0.2 || m.N != 7 {
		t.Error("mirror must preserve all other fields")
	}
	if got := m.Mirror(); got != e {
		t.Error("double mirror must restore")
	}
}

func TestEntryProb(t *testing.T) {
	e := Entry{MeanDir: 90, StdDir: 8, MeanOff: 4, StdOff: 0.3}
	// Matching motion scores higher than mismatched.
	match := e.Prob(90, 4, 20, 1)
	wrongDir := e.Prob(270, 4, 20, 1)
	wrongOff := e.Prob(90, 8, 20, 1)
	if match <= wrongDir || match <= wrongOff {
		t.Errorf("match %v should beat wrongDir %v and wrongOff %v", match, wrongDir, wrongOff)
	}
	if match <= 0 || match > 1 {
		t.Errorf("probability out of range: %v", match)
	}
}

func TestEntryProbWrapsDirection(t *testing.T) {
	// Entry pointing north: querying at 358 vs 2 degrees must score the
	// same by symmetry.
	e := Entry{MeanDir: 0, StdDir: 8, MeanOff: 4, StdOff: 0.3}
	a := e.Prob(358, 4, 20, 1)
	b := e.Prob(2, 4, 20, 1)
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("wrap asymmetry: %v vs %v", a, b)
	}
}

func TestEntryProbBounds(t *testing.T) {
	e := Entry{MeanDir: 45, StdDir: 10, MeanOff: 5, StdOff: 0.5}
	f := func(d, o float64) bool {
		if math.IsNaN(d) || math.IsNaN(o) || math.IsInf(d, 0) || math.IsInf(o, 0) {
			return true
		}
		p := e.Prob(math.Mod(d, 360), math.Mod(math.Abs(o), 20), 20, 1)
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLookupMirrors(t *testing.T) {
	db := New(28)
	db.Set(1, 2, Entry{MeanDir: 90, StdDir: 5, MeanOff: 5.67, StdOff: 0.2, N: 10})
	fwd, ok := db.Lookup(1, 2)
	if !ok || fwd.MeanDir != 90 {
		t.Fatalf("forward lookup = %+v, %v", fwd, ok)
	}
	rev, ok := db.Lookup(2, 1)
	if !ok || rev.MeanDir != 270 {
		t.Fatalf("reverse lookup = %+v, %v", rev, ok)
	}
	if rev.MeanOff != fwd.MeanOff || rev.StdDir != fwd.StdDir {
		t.Error("mirror must preserve offset stats")
	}
}

func TestLookupMisses(t *testing.T) {
	db := New(28)
	if _, ok := db.Lookup(1, 2); ok {
		t.Error("empty DB should miss")
	}
	db.Set(1, 2, Entry{N: 5})
	cases := [][2]int{{1, 1}, {0, 2}, {1, 29}, {3, 4}}
	for _, c := range cases {
		if _, ok := db.Lookup(c[0], c[1]); ok {
			t.Errorf("Lookup(%d,%d) should miss", c[0], c[1])
		}
	}
}

func TestSetCanonicalizes(t *testing.T) {
	db := New(10)
	// Setting with i > j should store the mirrored canonical entry.
	db.Set(5, 3, Entry{MeanDir: 10, StdDir: 4, MeanOff: 2, StdOff: 0.2, N: 4})
	e, ok := db.Lookup(3, 5)
	if !ok {
		t.Fatal("canonical lookup missed")
	}
	if e.MeanDir != 190 {
		t.Errorf("canonical dir = %v, want 190", e.MeanDir)
	}
	got, _ := db.Lookup(5, 3)
	if got.MeanDir != 10 {
		t.Errorf("original direction = %v, want 10", got.MeanDir)
	}
}

// addSamples feeds n noisy RLM observations for the pair (from, to).
func addSamples(b *Builder, from, to, n int, dirNoise, offNoise float64, seed int64) {
	plan := floorplan.OfficeHall()
	gtDir, gtOff := floorplan.GroundTruthRLM(plan, from, to)
	rng := stats.NewRNG(seed)
	for k := 0; k < n; k++ {
		b.Add(Observation{From: from, To: to, RLM: motion.RLM{
			Dir: geom.NormalizeDeg(gtDir + rng.Norm(0, dirNoise)),
			Off: gtOff + rng.Norm(0, offNoise),
		}})
	}
}

func TestBuildFitsGaussians(t *testing.T) {
	b := mustBuilder(t, NewBuilderConfig())
	addSamples(b, 1, 2, 30, 5, 0.3, 1)
	db := b.Build()
	e, ok := db.Lookup(1, 2)
	if !ok {
		t.Fatal("pair 1-2 missing")
	}
	if geom.AbsAngleDiff(e.MeanDir, 90) > 3 {
		t.Errorf("mean dir = %v, want ~90", e.MeanDir)
	}
	if math.Abs(e.MeanOff-5.6667) > 0.3 {
		t.Errorf("mean off = %v, want ~5.67", e.MeanOff)
	}
	if e.StdDir <= 0 || e.StdOff <= 0 {
		t.Error("stds must be positive")
	}
	if e.N < 20 {
		t.Errorf("kept %d samples, expected most of 30", e.N)
	}
}

func TestReassembling(t *testing.T) {
	b := mustBuilder(t, NewBuilderConfig())
	// Feed the same pair in both directions; all samples should land on
	// the canonical (1,2) pair.
	addSamples(b, 1, 2, 10, 3, 0.2, 1)
	addSamples(b, 2, 1, 10, 3, 0.2, 2)
	if got := b.RawSamples(1, 2); got != 20 {
		t.Errorf("raw samples = %d, want 20 after reassembly", got)
	}
	db := b.Build()
	e, ok := db.Lookup(1, 2)
	if !ok {
		t.Fatal("pair missing")
	}
	if geom.AbsAngleDiff(e.MeanDir, 90) > 3 {
		t.Errorf("reassembled mean dir = %v, want ~90", e.MeanDir)
	}
}

func TestSelfLoopDropped(t *testing.T) {
	b := mustBuilder(t, NewBuilderConfig())
	b.Add(Observation{From: 3, To: 3, RLM: motion.RLM{Dir: 10, Off: 1}})
	selfLoops, _, _, _ := b.Dropped()
	if selfLoops != 1 {
		t.Errorf("self loops = %d, want 1", selfLoops)
	}
	if db := b.Build(); db.NumEntries() != 0 {
		t.Error("self loop must not create an entry")
	}
}

func TestCoarseFilterDropsOutliers(t *testing.T) {
	b := mustBuilder(t, NewBuilderConfig())
	addSamples(b, 1, 2, 20, 3, 0.2, 1)
	// Poison: wildly wrong direction (a mislocalized estimate).
	for k := 0; k < 5; k++ {
		b.Add(Observation{From: 1, To: 2, RLM: motion.RLM{Dir: 200, Off: 5.6}})
	}
	db := b.Build()
	_, _, coarse, _ := b.Dropped()
	if coarse < 5 {
		t.Errorf("coarse filter dropped %d, want >= 5", coarse)
	}
	e, _ := db.Lookup(1, 2)
	if geom.AbsAngleDiff(e.MeanDir, 90) > 5 {
		t.Errorf("poisoned mean dir = %v, want ~90", e.MeanDir)
	}
}

func TestFineFilterDropsInBandOutliers(t *testing.T) {
	cfg := NewBuilderConfig()
	b := mustBuilder(t, cfg)
	// Tight cluster at the truth plus a few samples near the coarse edge:
	// those pass the coarse filter but fail the 2-sigma fine filter.
	addSamples(b, 1, 2, 30, 2, 0.1, 1)
	for k := 0; k < 3; k++ {
		b.Add(Observation{From: 1, To: 2, RLM: motion.RLM{Dir: 90 + 18, Off: 5.6667 + 2.5}})
	}
	b.Build()
	_, _, coarse, fine := b.Dropped()
	if coarse != 0 {
		t.Errorf("coarse dropped %d, want 0 (in-band)", coarse)
	}
	if fine < 3 {
		t.Errorf("fine filter dropped %d, want >= 3", fine)
	}
}

func TestSanitationLevels(t *testing.T) {
	// The same poisoned sample set produces increasingly accurate entries
	// as sanitation levels increase.
	build := func(level Sanitation) Entry {
		cfg := NewBuilderConfig()
		cfg.Level = level
		b := mustBuilder(t, cfg)
		addSamples(b, 1, 2, 40, 3, 0.2, 1)
		// Poison from mislocalization.
		rng := stats.NewRNG(99)
		for k := 0; k < 10; k++ {
			b.Add(Observation{From: 1, To: 2, RLM: motion.RLM{
				Dir: rng.Uniform(0, 360), Off: rng.Uniform(1, 9)}})
		}
		e, ok := b.Build().Lookup(1, 2)
		if !ok {
			t.Fatalf("level %d: pair missing", level)
		}
		return e
	}
	none := build(SanitationNone)
	coarse := build(SanitationCoarse)
	full := build(SanitationFull)
	errOf := func(e Entry) float64 {
		return geom.AbsAngleDiff(e.MeanDir, 90) + 10*math.Abs(e.MeanOff-5.6667)
	}
	if errOf(coarse) > errOf(none) {
		t.Errorf("coarse (%v) should not be worse than none (%v)", errOf(coarse), errOf(none))
	}
	// The fine filter trims in-band samples, which on a single draw can
	// nudge the mean either way; it must stay far better than no
	// sanitation and in the same band as coarse.
	if errOf(full) > errOf(none)/2 {
		t.Errorf("full (%v) should clearly beat none (%v)", errOf(full), errOf(none))
	}
	if math.Abs(errOf(full)-errOf(coarse)) > 2 {
		t.Errorf("full (%v) should stay near coarse (%v)", errOf(full), errOf(coarse))
	}
}

func TestMinSamplesGate(t *testing.T) {
	cfg := NewBuilderConfig()
	cfg.MinSamples = 5
	b := mustBuilder(t, cfg)
	addSamples(b, 1, 2, 4, 2, 0.1, 1)
	if db := b.Build(); db.NumEntries() != 0 {
		t.Error("4 samples under MinSamples=5 should not build an entry")
	}
}

func TestStdFloors(t *testing.T) {
	cfg := NewBuilderConfig()
	b := mustBuilder(t, cfg)
	// Identical samples: raw std would be 0; floors must apply.
	for k := 0; k < 10; k++ {
		b.Add(Observation{From: 1, To: 2, RLM: motion.RLM{Dir: 90, Off: 5.6667}})
	}
	e, ok := b.Build().Lookup(1, 2)
	if !ok {
		t.Fatal("pair missing")
	}
	if e.StdDir < cfg.MinStdDir || e.StdOff < cfg.MinStdOff {
		t.Errorf("floors not applied: %+v", e)
	}
}

func TestValidationErrors(t *testing.T) {
	plan := floorplan.OfficeHall()
	b := mustBuilder(t, NewBuilderConfig())
	addSamples(b, 1, 2, 20, 4, 0.2, 1)
	addSamples(b, 1, 8, 20, 4, 0.2, 2)
	db := b.Build()
	dirErrs, offErrs := db.ValidationErrors(plan)
	if len(dirErrs) != db.NumEntries() || len(offErrs) != db.NumEntries() {
		t.Fatal("one error pair per entry expected")
	}
	for _, d := range dirErrs {
		if d < 0 || d > 20 {
			t.Errorf("direction error %v out of plausible band", d)
		}
	}
	for _, o := range offErrs {
		if o < 0 || o > 3 {
			t.Errorf("offset error %v out of plausible band", o)
		}
	}
}

func TestDBJSONRoundTrip(t *testing.T) {
	b := mustBuilder(t, NewBuilderConfig())
	addSamples(b, 1, 2, 20, 3, 0.2, 1)
	addSamples(b, 4, 11, 20, 3, 0.2, 2)
	db := b.Build()
	path := filepath.Join(t.TempDir(), "mdb.json")
	if err := db.SaveJSON(path); err != nil {
		t.Fatalf("SaveJSON: %v", err)
	}
	got, err := LoadJSON(path)
	if err != nil {
		t.Fatalf("LoadJSON: %v", err)
	}
	if got.NumLocs() != db.NumLocs() || got.NumEntries() != db.NumEntries() {
		t.Error("round trip changed shape")
	}
	a, _ := db.Lookup(1, 2)
	bb, ok := got.Lookup(1, 2)
	if !ok || a != bb {
		t.Errorf("entry changed: %+v vs %+v", a, bb)
	}
}

func TestLoadJSONErrors(t *testing.T) {
	if _, err := LoadJSON(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("missing file should error")
	}
}

// TestLoadJSONRejectsCorruptEntries writes hand-corrupted databases
// and requires LoadJSON to reject each with a descriptive error: a
// degenerate entry that slipped through would zero out Eq. 5 for every
// query at serving time.
func TestLoadJSONRejectsCorruptEntries(t *testing.T) {
	const good = `{"i":1,"j":2,"entry":{"mean_dir":90,"std_dir":5,"mean_off":4,"std_off":0.3,"n":7}}`
	cases := []struct {
		name, pairs, wantErr string
	}{
		{"zero std_dir",
			`{"i":1,"j":2,"entry":{"mean_dir":90,"std_dir":0,"mean_off":4,"std_off":0.3,"n":7}}`,
			"std_dir"},
		{"negative std_off",
			`{"i":1,"j":2,"entry":{"mean_dir":90,"std_dir":5,"mean_off":4,"std_off":-0.3,"n":7}}`,
			"std_off"},
		{"negative n",
			`{"i":1,"j":2,"entry":{"mean_dir":90,"std_dir":5,"mean_off":4,"std_off":0.3,"n":-1}}`,
			"sample count"},
		{"mean_dir too large",
			`{"i":1,"j":2,"entry":{"mean_dir":400,"std_dir":5,"mean_off":4,"std_off":0.3,"n":7}}`,
			"mean_dir"},
		{"mean_dir negative",
			`{"i":1,"j":2,"entry":{"mean_dir":-10,"std_dir":5,"mean_off":4,"std_off":0.3,"n":7}}`,
			"mean_dir"},
		{"negative mean_off",
			`{"i":1,"j":2,"entry":{"mean_dir":90,"std_dir":5,"mean_off":-4,"std_off":0.3,"n":7}}`,
			"mean_off"},
		{"duplicate pair", good + "," + good, "duplicate"},
		{"non-canonical pair",
			`{"i":2,"j":1,"entry":{"mean_dir":90,"std_dir":5,"mean_off":4,"std_off":0.3,"n":7}}`,
			"invalid pair"},
		{"out-of-range pair",
			`{"i":1,"j":99,"entry":{"mean_dir":90,"std_dir":5,"mean_off":4,"std_off":0.3,"n":7}}`,
			"invalid pair"},
	}
	dir := t.TempDir()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, strings.ReplaceAll(tc.name, " ", "_")+".json")
			doc := `{"n":5,"pairs":[` + tc.pairs + `]}`
			if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := LoadJSON(path)
			if err == nil {
				t.Fatalf("corrupt DB (%s) loaded without error", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
	// The well-formed control case loads.
	path := filepath.Join(dir, "good.json")
	if err := os.WriteFile(path, []byte(`{"n":5,"pairs":[`+good+`]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := LoadJSON(path)
	if err != nil {
		t.Fatalf("valid DB rejected: %v", err)
	}
	if e, ok := db.Lookup(2, 1); !ok || e.MeanDir != 270 {
		t.Errorf("mirror lookup after load = (%+v, %v)", e, ok)
	}
}

// TestLoadJSONRejectsBadShape covers whole-file corruption.
func TestLoadJSONRejectsBadShape(t *testing.T) {
	dir := t.TempDir()
	for name, doc := range map[string]string{
		"not json":   `{nope`,
		"zero locs":  `{"n":0,"pairs":[]}`,
		"negative n": `{"n":-3,"pairs":[]}`,
	} {
		path := filepath.Join(dir, strings.ReplaceAll(name, " ", "_")+".json")
		if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadJSON(path); err == nil {
			t.Errorf("%s should be rejected", name)
		}
	}
}

func TestPairs(t *testing.T) {
	b := mustBuilder(t, NewBuilderConfig())
	addSamples(b, 1, 2, 10, 2, 0.1, 1)
	addSamples(b, 2, 3, 10, 2, 0.1, 2)
	db := b.Build()
	pairs := db.Pairs()
	if len(pairs) != 2 {
		t.Fatalf("pairs = %v", pairs)
	}
	for _, p := range pairs {
		if p[0] >= p[1] {
			t.Errorf("non-canonical pair %v", p)
		}
	}
}

func TestUseGraphFiltersAndSeeds(t *testing.T) {
	plan := floorplan.OfficeHall()
	graph := floorplan.BuildWalkGraph(plan, floorplan.OfficeHallAdjDist)
	cfg := NewBuilderConfig()
	b, err := NewBuilder(plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b.UseGraph(graph)
	// A non-adjacent observation is dropped at ingest.
	b.AddAll([]Observation{
		{From: 1, To: 28, RLM: motion.RLM{Dir: 120, Off: 5}},
	})
	_, nonAdj, _, _ := b.Dropped()
	if nonAdj != 1 {
		t.Errorf("nonAdj = %d, want 1", nonAdj)
	}
	if b.RawSamples(1, 28) != 0 {
		t.Error("non-adjacent pair must not accumulate")
	}
	// With no usable data, the map fallback seeds every aisle.
	db := b.Build()
	if b.MapSeeded() != graph.NumEdges() {
		t.Errorf("seeded %d, want all %d aisles", b.MapSeeded(), graph.NumEdges())
	}
	e, ok := db.Lookup(1, 2)
	if !ok {
		t.Fatal("seeded entry missing")
	}
	if e.N != 0 {
		t.Error("seeded entries carry N=0 to mark their provenance")
	}
	gtDir, gtOff := floorplan.GroundTruthRLM(plan, 1, 2)
	if geom.AbsAngleDiff(e.MeanDir, gtDir) > 1e-9 || math.Abs(e.MeanOff-gtOff) > 1e-9 {
		t.Error("seeded entry should carry the map RLM")
	}
	if e.StdDir != cfg.FallbackStdDir || e.StdOff != cfg.FallbackStdOff {
		t.Error("seeded entry should carry the fallback spreads")
	}
}
