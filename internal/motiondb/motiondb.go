// Package motiondb implements MoLoc's motion database (paper Sec. IV):
// an n x n matrix whose entry (i, j) holds Gaussian statistics
// (mean/stddev of direction and offset) of the relative location
// measurements between reference locations i and j, trained from
// crowdsourced observations with two-level data sanitation.
package motiondb

import (
	"fmt"
	"math"
	"os"
	"sort"
	"sync"

	"moloc/internal/floorplan"
	"moloc/internal/geom"
	"moloc/internal/motion"
	"moloc/internal/stats"
)

// Entry is one motion-database cell: the fitted Gaussians of direction
// (degrees) and offset (meters) from location i to j, and the number of
// samples that survived sanitation.
type Entry struct {
	MeanDir float64 `json:"mean_dir"`
	StdDir  float64 `json:"std_dir"`
	MeanOff float64 `json:"mean_off"`
	StdOff  float64 `json:"std_off"`
	N       int     `json:"n"`
}

// Mirror returns the entry for the reverse traversal under the paper's
// mutual-reachability assumption: direction rotated 180 degrees, all
// other statistics unchanged.
func (e Entry) Mirror() Entry {
	e.MeanDir = geom.MirrorBearing(e.MeanDir)
	return e
}

// Validate rejects statistically unusable entries. A zero or negative
// standard deviation makes the discretized Gaussians of Eq. 5 evaluate
// to zero (or NaN) for every query, silently disabling motion matching
// — a corrupt or hand-edited database must fail loudly at load time
// instead.
func (e Entry) Validate() error {
	if math.IsNaN(e.StdDir) || math.IsInf(e.StdDir, 0) || e.StdDir <= 0 {
		return fmt.Errorf("motiondb: std_dir must be positive and finite, got %g", e.StdDir)
	}
	if math.IsNaN(e.StdOff) || math.IsInf(e.StdOff, 0) || e.StdOff <= 0 {
		return fmt.Errorf("motiondb: std_off must be positive and finite, got %g", e.StdOff)
	}
	if math.IsNaN(e.MeanDir) || e.MeanDir < 0 || e.MeanDir >= 360 {
		return fmt.Errorf("motiondb: mean_dir must be a bearing in [0,360), got %g", e.MeanDir)
	}
	if math.IsNaN(e.MeanOff) || math.IsInf(e.MeanOff, 0) || e.MeanOff < 0 {
		return fmt.Errorf("motiondb: mean_off is a distance and must be >= 0, got %g", e.MeanOff)
	}
	if e.N < 0 {
		return fmt.Errorf("motiondb: sample count must be >= 0, got %d", e.N)
	}
	return nil
}

// Prob evaluates the motion-matching probability of Eq. 5 for this
// entry: the product of the discretized direction and offset Gaussians,
// with discretization intervals alpha (degrees) and beta (meters).
// Direction is compared circularly, so entries near north behave.
func (e Entry) Prob(dirDeg, offMeters, alpha, beta float64) float64 {
	dd := geom.AngleDiff(dirDeg, e.MeanDir)
	pd := stats.GaussInterval(dd-alpha/2, dd+alpha/2, 0, e.StdDir)
	po := stats.GaussInterval(offMeters-beta/2, offMeters+beta/2, e.MeanOff, e.StdOff)
	return pd * po
}

// DB is the trained motion database over n reference locations.
type DB struct {
	n       int
	entries map[[2]int]Entry // canonical key: i < j

	mu sync.Mutex
	// compiled memoizes Compile's views per (alpha, beta) so every
	// localizer over this database shares one table set; Set
	// invalidates it.
	compiled map[[2]float64]*Compiled
}

// New creates an empty motion database for n locations.
func New(n int) *DB {
	return &DB{n: n, entries: make(map[[2]int]Entry)}
}

// NumLocs returns the number of reference locations.
func (db *DB) NumLocs() int { return db.n }

// NumEntries returns the number of trained (canonical) pairs.
func (db *DB) NumEntries() int { return len(db.entries) }

// Set stores an entry for walking from location i to location j,
// canonicalized to the smaller-ID-first key (the mirror is derived at
// lookup). This is the manual-configuration path the paper contrasts
// with crowdsourcing (Sec. IV-A): engineers or tests can populate the
// database directly. It panics on a self-loop or out-of-range IDs,
// which indicate a programming error.
func (db *DB) Set(i, j int, e Entry) {
	if i == j || i < 1 || j < 1 || i > db.n || j > db.n {
		panic(fmt.Sprintf("motiondb: invalid pair (%d,%d) for %d locations", i, j, db.n))
	}
	if i > j {
		i, j = j, i
		e = e.Mirror()
	}
	db.entries[[2]int{i, j}] = e
	db.invalidateCompiled()
}

// Lookup returns the entry for walking from location i to location j.
// For i > j the canonical entry is mirrored on the fly, realizing the
// paper's reverse-order statistics (mu_d + 180, same sigmas).
func (db *DB) Lookup(i, j int) (Entry, bool) {
	if i == j || i < 1 || j < 1 || i > db.n || j > db.n {
		return Entry{}, false
	}
	mirror := false
	if i > j {
		i, j = j, i
		mirror = true
	}
	e, ok := db.entries[[2]int{i, j}]
	if !ok {
		return Entry{}, false
	}
	if mirror {
		e = e.Mirror()
	}
	return e, true
}

// Clone returns a deep copy of the database's trained entries. The
// compiled memo is not shared or copied — the clone compiles its own
// views. The server's online retrainer trains against a clone so
// mutations never race with localizers built over the original.
func (db *DB) Clone() *DB {
	c := New(db.n)
	for k, v := range db.entries {
		c.entries[k] = v
	}
	return c
}

// Pairs returns the canonical trained pairs in unspecified order.
func (db *DB) Pairs() [][2]int {
	out := make([][2]int, 0, len(db.entries))
	for k := range db.entries {
		out = append(out, k)
	}
	return out
}

// ValidationErrors compares each trained pair against the map-derived
// ground truth and returns the per-pair absolute direction errors
// (degrees) and offset errors (meters). These are the distributions of
// the paper's Fig. 6.
func (db *DB) ValidationErrors(plan *floorplan.Plan) (dirErrs, offErrs []float64) {
	for pair, e := range db.entries {
		gtDir, gtOff := floorplan.GroundTruthRLM(plan, pair[0], pair[1])
		dirErrs = append(dirErrs, geom.AbsAngleDiff(e.MeanDir, gtDir))
		offErrs = append(offErrs, math.Abs(e.MeanOff-gtOff))
	}
	return dirErrs, offErrs
}

// dbJSON is the serialized form of DB.
type dbJSON struct {
	N     int `json:"n"`
	Pairs []struct {
		I     int   `json:"i"`
		J     int   `json:"j"`
		Entry Entry `json:"entry"`
	} `json:"pairs"`
}

// SaveJSON writes the database to a file (see Encode for the format).
func (db *DB) SaveJSON(path string) error {
	data, err := db.Encode()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("motiondb: write %s: %w", path, err)
	}
	return nil
}

// LoadJSON reads a database written by SaveJSON. Every entry is
// validated (see Entry.Validate) and duplicate pairs are rejected
// rather than silently overwriting each other, so a corrupt or
// hand-edited file cannot zero out Eq. 5 at serving time.
func LoadJSON(path string) (*DB, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("motiondb: read %s: %w", path, err)
	}
	db, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return db, nil
}

// Sanitation selects how much of the paper's two-level data cleaning the
// builder applies; the levels below coarse+fine exist for the ablation
// experiment.
type Sanitation int

// Sanitation levels.
const (
	// SanitationNone fits Gaussians to the raw crowdsourced RLMs.
	SanitationNone Sanitation = iota + 1
	// SanitationCoarse applies only the map-threshold filter.
	SanitationCoarse
	// SanitationFull applies the coarse filter and the 2-sigma fine
	// filter (the paper's configuration).
	SanitationFull
)

// BuilderConfig controls motion-database construction.
type BuilderConfig struct {
	// CoarseDirThresh is the coarse-filter direction threshold in
	// degrees (20 in the paper).
	CoarseDirThresh float64
	// CoarseOffThresh is the coarse-filter offset threshold in meters
	// (3 in the paper).
	CoarseOffThresh float64
	// FineSigmas is the fine-filter width in standard deviations (2 in
	// the paper).
	FineSigmas float64
	// MinSamples is the minimum number of surviving samples for a pair
	// to enter the database.
	MinSamples int
	// MinStdDir and MinStdOff floor the fitted standard deviations so a
	// handful of nearly identical samples cannot produce a degenerate
	// Gaussian that zeroes out Eq. 5 for every query.
	MinStdDir float64
	MinStdOff float64
	// Level selects the sanitation stages to run.
	Level Sanitation
	// MapFallback seeds graph edges that end up with too few surviving
	// crowdsourced samples from the map-derived RLM instead of leaving
	// them untrained, with the conservative spreads below. This realizes
	// the hybrid the paper's Sec. IV-A discussion suggests: map
	// computation is cheap but blind to walls, so it is only a prior
	// that crowdsourced data replaces. Requires UseGraph.
	MapFallback bool
	// FallbackStdDir and FallbackStdOff are the spreads of map-seeded
	// entries, wider than trained ones to reflect their uncertainty.
	FallbackStdDir float64
	FallbackStdOff float64
}

// NewBuilderConfig returns the paper's configuration: 20 degree / 3 m
// coarse thresholds and a 2-sigma fine filter.
func NewBuilderConfig() BuilderConfig {
	return BuilderConfig{
		CoarseDirThresh: 20,
		CoarseOffThresh: 3,
		FineSigmas:      2,
		MinSamples:      3,
		MinStdDir:       3,
		MinStdOff:       0.15,
		Level:           SanitationFull,
		MapFallback:     true,
		FallbackStdDir:  10,
		FallbackStdOff:  0.5,
	}
}

// Validate rejects unusable builder configuration.
func (c BuilderConfig) Validate() error {
	if c.Level < SanitationNone || c.Level > SanitationFull {
		return fmt.Errorf("motiondb: invalid sanitation level %d", c.Level)
	}
	if c.CoarseDirThresh <= 0 || c.CoarseOffThresh <= 0 {
		return fmt.Errorf("motiondb: coarse thresholds must be positive")
	}
	if c.FineSigmas <= 0 {
		return fmt.Errorf("motiondb: fine filter width must be positive")
	}
	if c.MinSamples < 1 {
		return fmt.Errorf("motiondb: MinSamples must be >= 1")
	}
	return nil
}

// Observation is one crowdsourced RLM between two (estimated) reference
// locations.
type Observation struct {
	From int        `json:"from"`
	To   int        `json:"to"`
	RLM  motion.RLM `json:"rlm"`
}

// Builder accumulates crowdsourced observations and builds the DB.
//
// Ingestion is streaming: the coarse map filter runs at Add time, and
// every surviving sample updates per-pair online moment accumulators
// (circular direction moments, Welford offset moments) alongside the
// retained sample list — so Build fits Gaussians and thresholds the
// fine filter from the streamed moments instead of re-scanning raw
// data. Builders fed disjoint trace shards can be combined with Merge,
// and TakeTouched reports which pairs changed for incremental
// recompilation.
type Builder struct {
	plan  *floorplan.Plan
	graph *floorplan.WalkGraph
	cfg   BuilderConfig
	// acc holds the per-canonical-pair streaming state.
	acc map[[2]int]*pairAcc
	// touched records the pairs that received samples since the last
	// TakeTouched.
	touched map[[2]int]struct{}
	// dropped counts observations discarded at each stage, for
	// reporting.
	droppedSelf    int
	droppedNonAdj  int
	droppedCoarse  int
	droppedFine    int
	mapSeededPairs int
}

// pairAcc is the streaming state of one canonical pair: the map-derived
// ground truth the coarse filter compares against (computed once per
// pair, not per sample), the coarse-surviving samples in arrival order
// (the fine filter still needs individual values), and their running
// moments.
type pairAcc struct {
	gtDir, gtOff float64
	samples      []motion.RLM
	dir          stats.Circular
	off          stats.Online
}

// NewBuilder creates a builder for the plan.
func NewBuilder(plan *floorplan.Plan, cfg BuilderConfig) (*Builder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Builder{
		plan:    plan,
		cfg:     cfg,
		acc:     make(map[[2]int]*pairAcc),
		touched: make(map[[2]int]struct{}),
	}, nil
}

// UseGraph attaches the walk graph, enabling two consistency features
// (paper Sec. IV-A): observations between non-adjacent locations are
// discarded (they come from mislocalized endpoints — no walkable direct
// path connects the pair), and, when MapFallback is set, untrained
// edges are seeded from the map.
func (b *Builder) UseGraph(g *floorplan.WalkGraph) { b.graph = g }

// Add ingests one observation, applying the paper's data reassembling:
// an RLM whose start has the larger ID is replaced by its mirror so the
// smaller ID is always the start. Observations between a location and
// itself carry no relative information and are dropped, as are (at
// coarse sanitation and above) samples beyond the map thresholds — the
// coarse filter is streaming, so a rejected sample costs one angle
// comparison and is never stored.
func (b *Builder) Add(obs Observation) {
	if obs.From == obs.To {
		b.droppedSelf++
		return
	}
	if b.graph != nil && !b.graph.Adjacent(obs.From, obs.To) {
		b.droppedNonAdj++
		return
	}
	i, j, rlm := obs.From, obs.To, obs.RLM
	if i > j {
		i, j = j, i
		rlm = rlm.Mirror()
	}
	pair := [2]int{i, j}
	a := b.accFor(pair)
	if b.cfg.Level >= SanitationCoarse &&
		(geom.AbsAngleDiff(rlm.Dir, a.gtDir) > b.cfg.CoarseDirThresh ||
			math.Abs(rlm.Off-a.gtOff) > b.cfg.CoarseOffThresh) {
		b.droppedCoarse++
		return
	}
	a.samples = append(a.samples, rlm)
	a.dir.Add(rlm.Dir)
	a.off.Add(rlm.Off)
	b.touched[pair] = struct{}{}
}

// accFor returns (creating if needed) the accumulator of a canonical
// pair.
func (b *Builder) accFor(pair [2]int) *pairAcc {
	a := b.acc[pair]
	if a == nil {
		a = &pairAcc{}
		a.gtDir, a.gtOff = floorplan.GroundTruthRLM(b.plan, pair[0], pair[1])
		b.acc[pair] = a
	}
	return a
}

// Merge folds another builder's accumulated state into b: each pair's
// samples are replayed into b's accumulators in their arrival order and
// the drop counters are summed. Builders fed disjoint trace shards and
// merged in shard order end up bit-identical to one builder fed the
// concatenated shards, because every per-pair accumulator sees the same
// additions in the same order. Both builders must cover the same plan;
// other is left untouched.
func (b *Builder) Merge(other *Builder) error {
	if b.plan.NumLocs() != other.plan.NumLocs() {
		return fmt.Errorf("motiondb: merge across plans (%d vs %d locations)",
			b.plan.NumLocs(), other.plan.NumLocs())
	}
	for pair, oa := range other.acc {
		if len(oa.samples) == 0 {
			continue
		}
		a := b.accFor(pair)
		// Bulk-append the samples (one growth step instead of one per
		// sample), then replay the streamed moments in the same order a
		// per-sample loop would — the moment state is order-sensitive, so
		// this keeps merge results bit-identical to sequential ingestion.
		a.samples = append(a.samples, oa.samples...)
		for _, s := range oa.samples {
			a.dir.Add(s.Dir)
			a.off.Add(s.Off)
		}
		b.touched[pair] = struct{}{}
	}
	b.droppedSelf += other.droppedSelf
	b.droppedNonAdj += other.droppedNonAdj
	b.droppedCoarse += other.droppedCoarse
	b.droppedFine += other.droppedFine
	return nil
}

// TakeTouched returns the canonical pairs that received at least one
// surviving sample since the previous call (or since construction),
// sorted for determinism, and resets the set. The server's online
// retrainer uses it to bound recompilation to dirty edges.
func (b *Builder) TakeTouched() [][2]int {
	if len(b.touched) == 0 {
		return nil
	}
	out := make([][2]int, 0, len(b.touched))
	for p := range b.touched {
		out = append(out, p)
	}
	sort.Slice(out, func(a, c int) bool {
		if out[a][0] != out[c][0] {
			return out[a][0] < out[c][0]
		}
		return out[a][1] < out[c][1]
	})
	b.touched = make(map[[2]int]struct{})
	return out
}

// AddAll ingests a batch of observations.
func (b *Builder) AddAll(obs []Observation) {
	for _, o := range obs {
		b.Add(o)
	}
}

// Dropped reports how many observations each sanitation stage
// discarded. Self-loops, non-adjacent pairs, and the coarse map filter
// all run at ingest, so their counters accumulate over the builder's
// lifetime; the fine Gaussian filter runs inside Build and its counter
// reflects the most recent Build.
func (b *Builder) Dropped() (selfLoops, nonAdjacent, coarse, fine int) {
	return b.droppedSelf, b.droppedNonAdj, b.droppedCoarse, b.droppedFine
}

// MapSeeded reports how many pairs the most recent Build filled from
// the map fallback rather than crowdsourced data.
func (b *Builder) MapSeeded() int { return b.mapSeededPairs }

// RawSamples returns the number of reassembled samples currently held
// for the canonical pair (i, j) — those that survived the ingest-time
// stages (self-loop, adjacency, and coarse filters) — for introspection
// and tests.
func (b *Builder) RawSamples(i, j int) int {
	if i > j {
		i, j = j, i
	}
	if a := b.acc[[2]int{i, j}]; a != nil {
		return len(a.samples)
	}
	return 0
}

// Build runs the remaining sanitation stage and fits the Gaussian
// entries from the streamed moments. At full sanitation each pair takes
// one pass over its retained samples: the fine-filter thresholds come
// from the ingest-time accumulators (no fitting scan), and survivors
// stream into fresh accumulators as they are classified. Below full
// sanitation no per-sample work happens at all — the entry is read
// straight off the moments. The builder can keep accumulating
// observations and be built again; the fine drop counter reflects the
// most recent Build.
func (b *Builder) Build() *DB {
	db := New(b.plan.NumLocs())
	b.droppedFine = 0
	b.mapSeededPairs = 0
	for pair, a := range b.acc {
		dir, off := a.dir, a.off
		if b.cfg.Level >= SanitationFull && len(a.samples) >= 3 {
			bound := b.entryFrom(a.dir, a.off)
			var fdir stats.Circular
			var foff stats.Online
			for _, s := range a.samples {
				if geom.AbsAngleDiff(s.Dir, bound.MeanDir) > b.cfg.FineSigmas*bound.StdDir ||
					math.Abs(s.Off-bound.MeanOff) > b.cfg.FineSigmas*bound.StdOff {
					b.droppedFine++
					continue
				}
				fdir.Add(s.Dir)
				foff.Add(s.Off)
			}
			dir, off = fdir, foff
		}
		if dir.N() < b.cfg.MinSamples {
			continue
		}
		db.Set(pair[0], pair[1], b.entryFrom(dir, off))
	}
	if b.cfg.MapFallback && b.graph != nil {
		b.seedFromMap(db)
	}
	return db
}

// seedFromMap fills every walk-graph edge that crowdsourcing left
// untrained with a map-derived entry carrying wide spreads. N is zero
// so consumers can tell seeded entries from trained ones.
func (b *Builder) seedFromMap(db *DB) {
	for i := 1; i <= b.plan.NumLocs(); i++ {
		for _, e := range b.graph.Neighbors(i) {
			if e.To < i {
				continue
			}
			if _, ok := db.Lookup(i, e.To); ok {
				continue
			}
			dir, off := floorplan.GroundTruthRLM(b.plan, i, e.To)
			db.Set(i, e.To, Entry{
				MeanDir: dir,
				StdDir:  b.cfg.FallbackStdDir,
				MeanOff: off,
				StdOff:  b.cfg.FallbackStdOff,
				N:       0,
			})
			b.mapSeededPairs++
		}
	}
}

// entryFrom computes the Gaussian entry from accumulated moments,
// flooring the standard deviations per the configuration. Directions
// use circular statistics so pairs near north fit correctly.
func (b *Builder) entryFrom(dir stats.Circular, off stats.Online) Entry {
	e := Entry{
		MeanDir: dir.Mean(),
		StdDir:  dir.StdDev(),
		MeanOff: off.Mean(),
		StdOff:  off.StdDev(),
		N:       dir.N(),
	}
	if e.StdDir < b.cfg.MinStdDir || math.IsInf(e.StdDir, 1) {
		e.StdDir = b.cfg.MinStdDir
	}
	if e.StdOff < b.cfg.MinStdOff {
		e.StdOff = b.cfg.MinStdOff
	}
	return e
}
