package motiondb

import (
	"math"
	"testing"

	"moloc/internal/geom"
	"moloc/internal/motion"
)

// TestBuilderMirrorReassemblyAtWraparound probes the RLM reassembling
// step d' = d + 180 mod 360 at the compass discontinuities: a batch of
// observations walked in one direction and the same batch walked (and
// therefore mirrored at ingest) in the other must fit the same
// Gaussians, for means at 0, just under 180, 180, and just under 360 —
// where naive modular arithmetic (or linear averaging across the
// 0/360 seam) breaks first.
func TestBuilderMirrorReassemblyAtWraparound(t *testing.T) {
	jitters := []float64{-1.5, -0.5, 0, 0.25, 1.25}
	offs := []float64{3.8, 4.0, 4.2, 3.9, 4.1}

	for _, d := range []float64{0, 179.999, 180, 359.999} {
		cfg := NewBuilderConfig()
		// Raw fitting: arbitrary test bearings must not be compared to
		// the plan's map-derived ground truth.
		cfg.Level = SanitationNone
		cfg.MapFallback = false

		fwd := mustBuilder(t, cfg)
		rev := mustBuilder(t, cfg)
		for k, jit := range jitters {
			dir := geom.NormalizeDeg(d + jit)
			fwd.Add(Observation{From: 1, To: 2, RLM: motion.RLM{Dir: dir, Off: offs[k]}})
			rev.Add(Observation{From: 2, To: 1, RLM: motion.RLM{Dir: geom.MirrorBearing(dir), Off: offs[k]}})
		}

		ef, okF := fwd.Build().Lookup(1, 2)
		er, okR := rev.Build().Lookup(1, 2)
		if !okF || !okR {
			t.Fatalf("d=%g: pair (1,2) untrained (fwd ok=%v, rev ok=%v)", d, okF, okR)
		}
		// The mirror round-trip costs at most an ulp of bearing
		// arithmetic; offsets are untouched by mirroring, so their
		// moments replay bit-identically.
		if geom.AbsAngleDiff(ef.MeanDir, er.MeanDir) > 1e-9 ||
			math.Abs(ef.StdDir-er.StdDir) > 1e-9 {
			t.Errorf("d=%g: direction fit differs across observation direction:\n fwd %+v\n rev %+v", d, ef, er)
		}
		if ef.MeanOff != er.MeanOff || ef.StdOff != er.StdOff || ef.N != er.N {
			t.Errorf("d=%g: offset fit differs across observation direction:\n fwd %+v\n rev %+v", d, ef, er)
		}

		// The fitted mean must sit at the circular mean of the inputs
		// (mean jitter is -0.1), not at a seam-crossing linear average.
		want := geom.NormalizeDeg(d - 0.1)
		if geom.AbsAngleDiff(ef.MeanDir, want) > 0.02 {
			t.Errorf("d=%g: fitted MeanDir %g, want ~%g", d, ef.MeanDir, want)
		}

		// Reverse lookup is the exact mirror, through DB and Compiled.
		dbF := fwd.Build()
		if got, ok := dbF.Lookup(2, 1); !ok || got != mustLookup(t, dbF, 1, 2).Mirror() {
			t.Errorf("d=%g: Lookup(2,1) = %+v ok=%v, want exact mirror of Lookup(1,2)", d, got, ok)
		}
		cmp := mustCompile(t, dbF, 20, 1)
		fe, _ := cmp.Lookup(1, 2)
		if got, ok := cmp.Lookup(2, 1); !ok || got != fe.Mirror() {
			t.Errorf("d=%g: compiled Lookup(2,1) = %+v ok=%v, want exact mirror", d, got, ok)
		}
	}
}

func mustLookup(t *testing.T, db *DB, i, j int) Entry {
	t.Helper()
	e, ok := db.Lookup(i, j)
	if !ok {
		t.Fatalf("Lookup(%d,%d) missing", i, j)
	}
	return e
}
