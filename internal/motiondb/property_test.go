package motiondb

import (
	"math"
	"testing"
	"testing/quick"

	"moloc/internal/floorplan"
	"moloc/internal/geom"
	"moloc/internal/motion"
)

// TestReassemblyInvariance: feeding an observation as (i, j, rlm) or as
// (j, i, mirror(rlm)) must produce the same database. This is the
// paper's mutual-reachability assumption as an executable property.
func TestReassemblyInvariance(t *testing.T) {
	plan := floorplan.OfficeHall()
	f := func(dirRaw, offRaw float64, n uint8) bool {
		if math.IsNaN(dirRaw) || math.IsNaN(offRaw) {
			return true
		}
		gtDir, gtOff := floorplan.GroundTruthRLM(plan, 1, 2)
		samples := 3 + int(n%5)
		cfg := NewBuilderConfig()

		build := func(flip bool) Entry {
			b, err := NewBuilder(plan, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for k := 0; k < samples; k++ {
				// Deterministic in-band jitter derived from the inputs.
				jd := math.Mod(dirRaw+float64(k)*3.7, 10) - 5
				jo := math.Mod(offRaw+float64(k)*0.31, 0.4) - 0.2
				rlm := motion.RLM{
					Dir: geom.NormalizeDeg(gtDir + jd),
					Off: gtOff + jo,
				}
				if flip {
					b.Add(Observation{From: 2, To: 1, RLM: rlm.Mirror()})
				} else {
					b.Add(Observation{From: 1, To: 2, RLM: rlm})
				}
			}
			e, ok := b.Build().Lookup(1, 2)
			if !ok {
				t.Fatal("entry missing")
			}
			return e
		}
		a, bb := build(false), build(true)
		return geom.AbsAngleDiff(a.MeanDir, bb.MeanDir) < 1e-9 &&
			math.Abs(a.MeanOff-bb.MeanOff) < 1e-9 &&
			math.Abs(a.StdDir-bb.StdDir) < 1e-9 &&
			a.N == bb.N
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestLookupMirrorProperty: for any stored entry, Lookup(j,i) is the
// exact mirror of Lookup(i,j).
func TestLookupMirrorProperty(t *testing.T) {
	f := func(dirRaw, offRaw, sdRaw, soRaw float64) bool {
		if math.IsNaN(dirRaw) || math.IsNaN(offRaw) || math.IsNaN(sdRaw) || math.IsNaN(soRaw) {
			return true
		}
		db := New(10)
		e := Entry{
			MeanDir: geom.NormalizeDeg(dirRaw),
			StdDir:  1 + math.Abs(math.Mod(sdRaw, 20)),
			MeanOff: 1 + math.Abs(math.Mod(offRaw, 8)),
			StdOff:  0.1 + math.Abs(math.Mod(soRaw, 1)),
			N:       5,
		}
		db.Set(3, 7, e)
		fwd, ok1 := db.Lookup(3, 7)
		rev, ok2 := db.Lookup(7, 3)
		if !ok1 || !ok2 {
			return false
		}
		return geom.AbsAngleDiff(geom.MirrorBearing(fwd.MeanDir), rev.MeanDir) < 1e-9 &&
			fwd.MeanOff == rev.MeanOff && fwd.StdDir == rev.StdDir && fwd.StdOff == rev.StdOff
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestProbSymmetryUnderMirror: evaluating the forward entry with the
// forward motion equals evaluating the mirrored entry with the mirrored
// motion.
func TestProbSymmetryUnderMirror(t *testing.T) {
	f := func(dirRaw, offRaw float64) bool {
		if math.IsNaN(dirRaw) || math.IsNaN(offRaw) {
			return true
		}
		e := Entry{MeanDir: 37, StdDir: 9, MeanOff: 4.2, StdOff: 0.35}
		d := geom.NormalizeDeg(dirRaw)
		o := math.Abs(math.Mod(offRaw, 10))
		p1 := e.Prob(d, o, 20, 1)
		p2 := e.Mirror().Prob(geom.MirrorBearing(d), o, 20, 1)
		return math.Abs(p1-p2) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
