package motiondb

import (
	"reflect"
	"sort"
	"testing"

	"moloc/internal/geom"
)

// bigGridDB builds a 512-location database over a 32x16 grid adjacency
// (right and down neighbors, 976 trained pairs) with deterministic
// varied entries — the production-scale shape the incremental recompile
// is sized against.
func bigGridDB() *DB {
	const cols, rows = 32, 16
	db := New(cols * rows)
	id := func(r, c int) int { return r*cols + c + 1 }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			i := id(r, c)
			if c+1 < cols {
				db.Set(i, id(r, c+1), gridEntry(i, id(r, c+1)))
			}
			if r+1 < rows {
				db.Set(i, id(r+1, c), gridEntry(i, id(r+1, c)))
			}
		}
	}
	return db
}

func gridEntry(i, j int) Entry {
	return Entry{
		MeanDir: float64((i*37 + j*11) % 360),
		StdDir:  5 + float64(i%7),
		MeanOff: 2 + float64(j%9),
		StdOff:  0.2 + 0.05*float64(i%5),
		N:       10 + i%13,
	}
}

func sortedPairs(db *DB) [][2]int {
	pairs := db.Pairs()
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a][0] != pairs[b][0] {
			return pairs[a][0] < pairs[b][0]
		}
		return pairs[a][1] < pairs[b][1]
	})
	return pairs
}

// TestRecompileEdgesMatchesFullCompile is the acceptance equivalence
// check: mutate ~5% of a 512-location database's pairs, recompile only
// those edges, and demand the result is bit-identical — tables, mean
// directions, adjacency — to a fresh full Compile of the mutated
// database (the executable spec).
func TestRecompileEdgesMatchesFullCompile(t *testing.T) {
	const alpha, beta = 20, 1
	db := bigGridDB()
	base := mustCompile(t, db, alpha, beta)

	pairs := sortedPairs(db)
	var dirty [][2]int
	for k := 0; k < len(pairs); k += 20 { // ~5% of 976 pairs
		p := pairs[k]
		e, ok := db.Lookup(p[0], p[1])
		if !ok {
			t.Fatalf("pair %v missing", p)
		}
		e.MeanDir = geom.NormalizeDeg(e.MeanDir + 17)
		e.MeanOff += 0.5
		e.N += 5
		db.Set(p[0], p[1], e)
		if k%40 == 0 {
			// Reversed dirty listing must canonicalize, not error.
			dirty = append(dirty, [2]int{p[1], p[0]})
		} else {
			dirty = append(dirty, p)
		}
	}

	inc, err := base.RecompileEdges(db, dirty)
	if err != nil {
		t.Fatalf("RecompileEdges: %v", err)
	}
	full := mustCompile(t, db, alpha, beta) // Set invalidated the memo: a fresh build

	if !reflect.DeepEqual(inc.tables, full.tables) {
		t.Error("incremental tables differ from full compile")
	}
	if !reflect.DeepEqual(inc.meanDir, full.meanDir) {
		t.Error("incremental meanDir differs from full compile")
	}
	if !reflect.DeepEqual(inc.rowStart, full.rowStart) ||
		!reflect.DeepEqual(inc.cols, full.cols) ||
		!reflect.DeepEqual(inc.table, full.table) {
		t.Error("adjacency arrays differ from full compile")
	}

	// The clean bulk must be shared with the base view, not copied —
	// that is what makes the recompile proportional to the dirty set.
	if &inc.rowStart[0] != &base.rowStart[0] || &inc.cols[0] != &base.cols[0] ||
		&inc.table[0] != &base.table[0] {
		t.Error("adjacency arrays must be shared with the base view")
	}
	if &inc.tables[0].dir[0] != &base.tables[0].dir[0] && pairNotDirty(dirty, pairs[0]) {
		t.Error("clean pair tables must be shared with the base view")
	}

	// The base view must be untouched (still serving the old entries).
	oldE := gridEntry(pairs[0][0], pairs[0][1])
	if got, ok := base.Lookup(pairs[0][0], pairs[0][1]); !ok || got.N != oldE.N {
		t.Error("base view mutated by RecompileEdges")
	}
}

func pairNotDirty(dirty [][2]int, p [2]int) bool {
	for _, d := range dirty {
		if d == p || (d[0] == p[1] && d[1] == p[0]) {
			return false
		}
	}
	return true
}

func TestRecompileEdgesErrors(t *testing.T) {
	db := compiledFixtureDB()
	c := mustCompile(t, db, 20, 1)

	// Empty dirty set: the same view comes back, no copies.
	if got, err := c.RecompileEdges(db, nil); err != nil || got != c {
		t.Errorf("empty dirty: got %p err %v, want the receiver back", got, err)
	}

	// A dirty pair the database never trained.
	if _, err := c.RecompileEdges(db, [][2]int{{1, 6}}); err == nil {
		t.Error("untrained dirty pair must error")
	}
	// Degenerate and out-of-range pairs.
	for _, p := range [][2]int{{2, 2}, {0, 1}, {1, 7}} {
		if _, err := c.RecompileEdges(db, [][2]int{p}); err == nil {
			t.Errorf("invalid dirty pair %v must error", p)
		}
	}

	// Location-count mismatch.
	if _, err := c.RecompileEdges(New(9), nil); err == nil {
		t.Error("location-count mismatch must error")
	}

	// A grown pair set requires a full Compile even for old dirty pairs.
	grown := db.Clone()
	grown.Set(1, 6, Entry{MeanDir: 10, StdDir: 5, MeanOff: 3, StdOff: 0.3, N: 8})
	if _, err := c.RecompileEdges(grown, [][2]int{{1, 2}}); err == nil {
		t.Error("pair-set growth must error")
	}
}

// TestRecompileEdgesServes checks the recompiled view answers queries
// for the new entry: the probability peak follows the mutated mean.
func TestRecompileEdgesServes(t *testing.T) {
	db := compiledFixtureDB()
	c := mustCompile(t, db, 20, 1)

	e, _ := db.Lookup(1, 2)
	e.MeanDir = 200 // was 90
	db.Set(1, 2, e)
	nc, err := c.RecompileEdges(db, [][2]int{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := nc.Lookup(1, 2); !ok || got != e {
		t.Fatalf("recompiled Lookup(1,2) = %+v ok=%v, want %+v", got, ok, e)
	}
	if got, ok := nc.Lookup(2, 1); !ok || got != e.Mirror() {
		t.Fatalf("recompiled Lookup(2,1) = %+v ok=%v, want mirror %+v", got, ok, e.Mirror())
	}
	// The old view keeps serving the old statistics.
	if got, _ := c.Lookup(1, 2); got.MeanDir != 90 {
		t.Errorf("base view mutated: MeanDir %g", got.MeanDir)
	}

	k, ok := nc.edgeIndex(1, 2)
	if !ok {
		t.Fatal("edge 1->2 missing")
	}
	if atNew, atOld := nc.EdgeProb(k, 200, e.MeanOff), nc.EdgeProb(k, 90, e.MeanOff); atNew <= atOld {
		t.Errorf("recompiled edge must peak at the new mean: P(200)=%g P(90)=%g", atNew, atOld)
	}
}
