package motiondb

import (
	"bytes"
	"testing"

	"moloc/internal/floorplan"
	"moloc/internal/motion"
)

func TestEncodeDeterministic(t *testing.T) {
	e1 := Entry{MeanDir: 90, StdDir: 4, MeanOff: 5, StdOff: 0.3, N: 7}
	e2 := Entry{MeanDir: 180, StdDir: 6, MeanOff: 3, StdOff: 0.2, N: 4}
	a := New(10)
	a.Set(1, 2, e1)
	a.Set(3, 4, e2)
	b := New(10)
	b.Set(3, 4, e2)
	b.Set(1, 2, e1)
	ea, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	eb, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ea, eb) {
		t.Fatal("insertion order leaked into the encoding")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	db := New(6)
	db.Set(1, 2, Entry{MeanDir: 90, StdDir: 4, MeanOff: 5, StdOff: 0.3, N: 7})
	db.Set(2, 5, Entry{MeanDir: 271.25, StdDir: 3, MeanOff: 2.5, StdOff: 0.15, N: 12})
	data, err := db.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumLocs() != 6 || got.NumEntries() != 2 {
		t.Fatalf("decoded %d locs, %d entries", got.NumLocs(), got.NumEntries())
	}
	// A decode→encode round trip is byte-stable.
	data2, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("encode after decode differs")
	}
	e, ok := got.Lookup(2, 5)
	if !ok || e.MeanDir != 271.25 || e.N != 12 {
		t.Fatalf("entry lost in round trip: %+v ok=%v", e, ok)
	}
}

func TestDecodeRejects(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"garbage", `{{{`},
		{"zero locations", `{"n":0,"pairs":null}`},
		{"pair out of range", `{"n":3,"pairs":[{"i":1,"j":4,"entry":{"mean_dir":1,"std_dir":1,"mean_off":1,"std_off":1,"n":1}}]}`},
		{"non-canonical pair", `{"n":3,"pairs":[{"i":2,"j":1,"entry":{"mean_dir":1,"std_dir":1,"mean_off":1,"std_off":1,"n":1}}]}`},
		{"duplicate pair", `{"n":3,"pairs":[
			{"i":1,"j":2,"entry":{"mean_dir":1,"std_dir":1,"mean_off":1,"std_off":1,"n":1}},
			{"i":1,"j":2,"entry":{"mean_dir":2,"std_dir":1,"mean_off":1,"std_off":1,"n":1}}]}`},
		{"degenerate entry", `{"n":3,"pairs":[{"i":1,"j":2,"entry":{"mean_dir":1,"std_dir":0,"mean_off":1,"std_off":1,"n":1}}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Decode([]byte(tc.data)); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

// TestBuilderStateRoundTrip proves the checkpoint invariant: a builder
// restored from EncodeState is bit-identical to the one that wrote it —
// same raw samples, same drop counters, and byte-identical Build
// output.
func TestBuilderStateRoundTrip(t *testing.T) {
	cfg := NewBuilderConfig()
	cfg.MapFallback = false
	orig := mustBuilder(t, cfg)
	addSamples(orig, 1, 2, 10, 3, 0.2, 1)
	addSamples(orig, 2, 3, 7, 4, 0.3, 2)
	orig.Add(Observation{From: 3, To: 3, RLM: motion.RLM{Dir: 1, Off: 1}}) // self-loop drop
	orig.TakeTouched()

	state, err := orig.EncodeState()
	if err != nil {
		t.Fatal(err)
	}
	restored := mustBuilder(t, cfg)
	if err := restored.RestoreState(state); err != nil {
		t.Fatal(err)
	}
	if got := restored.RawSamples(1, 2); got != orig.RawSamples(1, 2) {
		t.Fatalf("pair 1-2 samples: %d vs %d", got, orig.RawSamples(1, 2))
	}
	s1, _, _, _ := restored.Dropped()
	if s1 != 1 {
		t.Fatalf("drop counters not restored: self=%d", s1)
	}
	// Restored pairs are not dirty: the checkpointed DB already has them.
	if touched := restored.TakeTouched(); touched != nil {
		t.Fatalf("restore marked pairs touched: %v", touched)
	}

	wantDB, err := orig.Build().Encode()
	if err != nil {
		t.Fatal(err)
	}
	gotDB, err := restored.Build().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantDB, gotDB) {
		t.Fatal("restored builder builds a different database")
	}

	// Continuation stays bit-identical: feed both the same tail.
	addSamples(orig, 1, 2, 5, 3, 0.2, 9)
	addSamples(restored, 1, 2, 5, 3, 0.2, 9)
	wantDB, err = orig.Build().Encode()
	if err != nil {
		t.Fatal(err)
	}
	gotDB, err = restored.Build().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantDB, gotDB) {
		t.Fatal("post-restore continuation diverged")
	}
}

func TestRestoreStateRejects(t *testing.T) {
	cfg := NewBuilderConfig()
	fresh := func() *Builder { return mustBuilder(t, cfg) }
	n := floorplan.OfficeHall().NumLocs()
	cases := []struct {
		name string
		data string
	}{
		{"garbage", `{{{`},
		{"pair out of range", `{"pairs":[{"i":1,"j":` + itoa(n+1) + `,"samples":[{"dir":1,"off":1}]}]}`},
		{"non-canonical pair", `{"pairs":[{"i":2,"j":1,"samples":[{"dir":1,"off":1}]}]}`},
		{"duplicate pair", `{"pairs":[{"i":1,"j":2,"samples":[{"dir":1,"off":1}]},{"i":1,"j":2,"samples":[{"dir":2,"off":2}]}]}`},
		{"non-finite sample", `{"pairs":[{"i":1,"j":2,"samples":[{"dir":1e999,"off":1}]}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := fresh().RestoreState([]byte(tc.data)); err == nil {
				t.Fatal("want error")
			}
		})
	}
	// Restoring into a dirty builder is refused.
	dirty := fresh()
	addSamples(dirty, 1, 2, 3, 3, 0.2, 1)
	if err := dirty.RestoreState([]byte(`{"pairs":null}`)); err == nil {
		t.Fatal("restore into dirty builder should fail")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
