// Serialization of the motion database and the builder's streaming
// state. Two consumers: SaveJSON/LoadJSON persist a trained DB as a
// human-editable artifact, and the server's checkpoint machinery stores
// Encode + EncodeState as an opaque payload so a crashed process can
// resume training bit-identically — entries are fit on cumulative
// per-pair samples, so checkpointing the DB alone would silently lose
// every pair still below MinSamples.
package motiondb

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"moloc/internal/motion"
)

// Encode serializes the database deterministically: pairs are sorted,
// so identical databases produce identical bytes (the crash-recovery
// tests compare encodings to prove bit-identical state).
func (db *DB) Encode() ([]byte, error) {
	var j dbJSON
	j.N = db.n
	pairs := db.Pairs()
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a][0] != pairs[b][0] {
			return pairs[a][0] < pairs[b][0]
		}
		return pairs[a][1] < pairs[b][1]
	})
	for _, pair := range pairs {
		j.Pairs = append(j.Pairs, struct {
			I     int   `json:"i"`
			J     int   `json:"j"`
			Entry Entry `json:"entry"`
		}{pair[0], pair[1], db.entries[pair]})
	}
	data, err := json.MarshalIndent(j, "", " ")
	if err != nil {
		return nil, fmt.Errorf("motiondb: marshal: %w", err)
	}
	return data, nil
}

// Decode parses a database serialized by Encode (or hand-written in the
// same format). Every entry is validated and duplicate or out-of-range
// pairs are rejected, so corrupt input cannot zero out Eq. 5 at serving
// time.
func Decode(data []byte) (*DB, error) {
	var j dbJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, fmt.Errorf("motiondb: parse: %w", err)
	}
	if j.N < 1 {
		return nil, fmt.Errorf("motiondb: location count %d must be >= 1", j.N)
	}
	db := New(j.N)
	for _, p := range j.Pairs {
		if p.I >= p.J || p.I < 1 || p.J > j.N {
			return nil, fmt.Errorf("motiondb: invalid pair (%d,%d) for %d locations", p.I, p.J, j.N)
		}
		if _, dup := db.entries[[2]int{p.I, p.J}]; dup {
			return nil, fmt.Errorf("motiondb: duplicate pair (%d,%d)", p.I, p.J)
		}
		if err := p.Entry.Validate(); err != nil {
			return nil, fmt.Errorf("pair (%d,%d): %w", p.I, p.J, err)
		}
		db.entries[[2]int{p.I, p.J}] = p.Entry
	}
	return db, nil
}

// builderStateJSON is the serialized streaming state of a Builder: the
// coarse-surviving samples of every pair in arrival order (the moments
// are re-derived by replay, guaranteeing the same floating-point
// accumulation), plus the lifetime drop counters.
type builderStateJSON struct {
	Pairs []struct {
		I       int          `json:"i"`
		J       int          `json:"j"`
		Samples []motion.RLM `json:"samples"`
	} `json:"pairs"`
	DroppedSelf   int `json:"dropped_self"`
	DroppedNonAdj int `json:"dropped_non_adj"`
	DroppedCoarse int `json:"dropped_coarse"`
}

// EncodeState serializes the builder's accumulated training state
// deterministically (pairs sorted, samples in arrival order).
func (b *Builder) EncodeState() ([]byte, error) {
	var j builderStateJSON
	pairs := make([][2]int, 0, len(b.acc))
	for p := range b.acc {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(a, c int) bool {
		if pairs[a][0] != pairs[c][0] {
			return pairs[a][0] < pairs[c][0]
		}
		return pairs[a][1] < pairs[c][1]
	})
	for _, pair := range pairs {
		a := b.acc[pair]
		if len(a.samples) == 0 {
			continue
		}
		j.Pairs = append(j.Pairs, struct {
			I       int          `json:"i"`
			J       int          `json:"j"`
			Samples []motion.RLM `json:"samples"`
		}{pair[0], pair[1], a.samples})
	}
	j.DroppedSelf = b.droppedSelf
	j.DroppedNonAdj = b.droppedNonAdj
	j.DroppedCoarse = b.droppedCoarse
	data, err := json.Marshal(j)
	if err != nil {
		return nil, fmt.Errorf("motiondb: marshal builder state: %w", err)
	}
	return data, nil
}

// RestoreState replays a serialized builder state into b, rebuilding
// each pair's moment accumulators by adding the retained samples in
// their original arrival order — so a builder restored from a
// checkpoint is bit-identical to the one that wrote it. Restored pairs
// are NOT marked touched: the checkpointed database already reflects
// them, and flagging them would force a full recompile at boot. The
// builder must be fresh (no accumulated samples).
func (b *Builder) RestoreState(data []byte) error {
	for _, a := range b.acc {
		if len(a.samples) > 0 {
			return fmt.Errorf("motiondb: RestoreState on a builder with accumulated samples")
		}
	}
	var j builderStateJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return fmt.Errorf("motiondb: parse builder state: %w", err)
	}
	n := b.plan.NumLocs()
	for _, p := range j.Pairs {
		if p.I >= p.J || p.I < 1 || p.J > n {
			return fmt.Errorf("motiondb: builder state: invalid pair (%d,%d) for %d locations", p.I, p.J, n)
		}
		a := b.accFor([2]int{p.I, p.J})
		if len(a.samples) > 0 {
			return fmt.Errorf("motiondb: builder state: duplicate pair (%d,%d)", p.I, p.J)
		}
		for _, s := range p.Samples {
			if math.IsNaN(s.Dir) || math.IsInf(s.Dir, 0) || math.IsNaN(s.Off) || math.IsInf(s.Off, 0) {
				return fmt.Errorf("motiondb: builder state: non-finite sample in pair (%d,%d)", p.I, p.J)
			}
			a.samples = append(a.samples, s)
			a.dir.Add(s.Dir)
			a.off.Add(s.Off)
		}
	}
	b.droppedSelf = j.DroppedSelf
	b.droppedNonAdj = j.DroppedNonAdj
	b.droppedCoarse = j.DroppedCoarse
	return nil
}
