// Compiled motion index: the serving-side fast path over a trained DB.
//
// The reference representation (DB.Lookup + Entry.Prob) pays, per
// candidate pair and per fix, one map hash plus two GaussInterval
// evaluations — four erf calls — in the inner loop of Eq. 6. At
// production scale (ROADMAP: millions of users, one fix per interval
// per session) that arithmetic dominates serving cost. Compile trades
// a one-time preprocessing pass for a hot path that is two table
// interpolations and a multiply:
//
//   - CSR adjacency: the trained pairs become a compressed sparse row
//     graph over locations, with the mirrored direction materialized as
//     its own directed edge at compile time, so lookups never hash and
//     never copy-and-rotate an Entry.
//   - Discretized probability tables: per canonical pair, the direction
//     term of Eq. 5 is tabulated over the circle (node spacing a
//     fraction of min(alpha, sigma_d)) and the offset term out to
//     mu_o + 4 sigma_o (spacing a fraction of min(beta, sigma_o)).
//     Queries interpolate linearly between nodes; offsets beyond the
//     table fall back to the exact erf evaluation, where the
//     probability mass is negligible anyway. Both directions of a pair
//     share one table set: the direction term depends only on the
//     angular difference to the (per-edge) mean.
//
// The interpolation error is bounded by h^2/8 * max|f”| per term,
// which the node-spacing rule keeps below ~3e-4 in absolute
// probability; TestCompiledProbMatchesReference pins the tolerance.
package motiondb

import (
	"fmt"
	"math"
	"sort"

	"moloc/internal/geom"
	"moloc/internal/stats"
)

// tableRes is the number of table nodes per discretization interval
// (or per standard deviation, whichever is narrower). 16 keeps the
// linear-interpolation error of each Eq. 5 term below ~3e-4 absolute:
// err <= h^2/8 * max|f”| with h <= sigma/16 and |f”| <= 0.484/sigma^2.
const tableRes = 16

// Table-size clamps: lower bound so degenerate spreads still tabulate
// smoothly, upper bound so one adversarial entry (huge range, tiny
// sigma) cannot allocate unbounded memory.
const (
	minTableNodes = 16
	maxTableNodes = 8192
)

// probTable holds the discretized Eq. 5 terms of one canonical pair.
// Both traversal directions share it: the direction term is a function
// of the angular difference to the edge's own mean, the offset term is
// direction-independent.
type probTable struct {
	entry Entry // canonical (i < j) entry, for Lookup reconstruction

	// dir[k] is the direction term at dd = -180 + k*dirH, k = 0..dirN.
	dir     []float64
	invDirH float64

	// off[k] is the offset term at o = k*offH, k = 0..offN; offMax is
	// the table's upper edge (mu_o + 4 sigma_o + beta/2), beyond which
	// EdgeProb falls back to the exact evaluation.
	off     []float64
	invOffH float64
	offMax  float64
}

// Compiled is an immutable, allocation-free view of a DB specialized
// to the discretization intervals (alpha, beta) of Eq. 5. Build one
// with DB.Compile; it is safe for concurrent use.
type Compiled struct {
	n     int
	alpha float64
	beta  float64

	// CSR adjacency over 1-based locations: the edges leaving location
	// u are rowStart[u-1] .. rowStart[u] (exclusive). cols holds the
	// destination, meanDir the traversal-direction mean (already
	// mirrored for the reverse edge), and table the probTable index.
	rowStart []int32
	cols     []int32
	meanDir  []float64
	table    []int32

	tables []probTable
}

// Compile builds (and memoizes) the compiled view of the database for
// the given Eq. 5 discretization intervals. Repeated calls with the
// same intervals return the same view, so every localizer over one
// database shares one set of tables. Entries are validated: a database
// assembled through Set with degenerate spreads fails here rather than
// producing garbage tables.
//
// Compile must not race with Set; the intended lifecycle is
// build/load, then serve.
func (db *DB) Compile(alpha, beta float64) (*Compiled, error) {
	if math.IsNaN(alpha) || math.IsInf(alpha, 0) || alpha <= 0 ||
		math.IsNaN(beta) || math.IsInf(beta, 0) || beta <= 0 {
		return nil, fmt.Errorf("motiondb: discretization intervals must be positive and finite, got alpha=%g beta=%g", alpha, beta)
	}
	key := [2]float64{alpha, beta}
	db.mu.Lock()
	c := db.compiled[key]
	db.mu.Unlock()
	if c != nil {
		return c, nil
	}
	c, err := db.compile(alpha, beta)
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	if db.compiled == nil {
		db.compiled = make(map[[2]float64]*Compiled)
	}
	// Two racing compiles build identical views; keep the first so
	// callers converge on one instance.
	if prev := db.compiled[key]; prev != nil {
		c = prev
	} else {
		db.compiled[key] = c
	}
	db.mu.Unlock()
	return c, nil
}

// invalidateCompiled drops memoized views after a mutation (Set).
func (db *DB) invalidateCompiled() {
	db.mu.Lock()
	db.compiled = nil
	db.mu.Unlock()
}

func (db *DB) compile(alpha, beta float64) (*Compiled, error) {
	pairs := db.Pairs()
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a][0] != pairs[b][0] {
			return pairs[a][0] < pairs[b][0]
		}
		return pairs[a][1] < pairs[b][1]
	})

	c := &Compiled{
		n:        db.n,
		alpha:    alpha,
		beta:     beta,
		rowStart: make([]int32, db.n+1),
		cols:     make([]int32, 2*len(pairs)),
		meanDir:  make([]float64, 2*len(pairs)),
		table:    make([]int32, 2*len(pairs)),
		tables:   make([]probTable, len(pairs)),
	}

	for ti, pair := range pairs {
		e := db.entries[pair]
		if err := e.Validate(); err != nil {
			return nil, fmt.Errorf("motiondb: compile pair (%d,%d): %w", pair[0], pair[1], err)
		}
		c.tables[ti] = buildProbTable(e, alpha, beta)
	}

	// CSR fill in two passes over the sorted pairs: first the reverse
	// edges (targets below the row), then the forward edges, so each
	// row's columns come out strictly ascending without a per-row sort.
	deg := make([]int32, db.n)
	for _, p := range pairs {
		deg[p[0]-1]++
		deg[p[1]-1]++
	}
	for u := 0; u < db.n; u++ {
		c.rowStart[u+1] = c.rowStart[u] + deg[u]
	}
	cursor := make([]int32, db.n)
	copy(cursor, c.rowStart[:db.n])
	for ti, p := range pairs { // reverse edges: j -> i, i < j
		u, v := p[1], p[0]
		k := cursor[u-1]
		cursor[u-1]++
		c.cols[k] = int32(v)
		c.meanDir[k] = geom.MirrorBearing(c.tables[ti].entry.MeanDir)
		c.table[k] = int32(ti)
	}
	for ti, p := range pairs { // forward edges: i -> j
		u, v := p[0], p[1]
		k := cursor[u-1]
		cursor[u-1]++
		c.cols[k] = int32(v)
		c.meanDir[k] = c.tables[ti].entry.MeanDir
		c.table[k] = int32(ti)
	}
	return c, nil
}

// buildProbTable discretizes the two Eq. 5 terms of one entry.
func buildProbTable(e Entry, alpha, beta float64) probTable {
	t := probTable{entry: e}

	span := math.Min(alpha, e.StdDir)
	dirN := clampNodes(360 * tableRes / span)
	dirH := 360 / float64(dirN)
	t.invDirH = 1 / dirH
	t.dir = make([]float64, dirN+1)
	for k := 0; k <= dirN; k++ {
		dd := -180 + float64(k)*dirH
		t.dir[k] = stats.GaussInterval(dd-alpha/2, dd+alpha/2, 0, e.StdDir)
	}

	t.offMax = e.MeanOff + 4*e.StdOff + beta/2
	span = math.Min(beta, e.StdOff)
	offN := clampNodes(t.offMax * tableRes / span)
	offH := t.offMax / float64(offN)
	t.invOffH = 1 / offH
	t.off = make([]float64, offN+1)
	for k := 0; k <= offN; k++ {
		o := float64(k) * offH
		t.off[k] = stats.GaussInterval(o-beta/2, o+beta/2, e.MeanOff, e.StdOff)
	}
	return t
}

func clampNodes(n float64) int {
	if !(n > minTableNodes) { // also catches NaN
		return minTableNodes
	}
	if n > maxTableNodes {
		return maxTableNodes
	}
	return int(math.Ceil(n))
}

// NumLocs returns the number of reference locations.
func (c *Compiled) NumLocs() int { return c.n }

// Alpha returns the direction discretization interval the view was
// compiled for.
func (c *Compiled) Alpha() float64 { return c.alpha }

// Beta returns the offset discretization interval the view was
// compiled for.
func (c *Compiled) Beta() float64 { return c.beta }

// NumEdges returns the number of directed edges (twice the trained
// pairs: mirrors are materialized).
func (c *Compiled) NumEdges() int { return len(c.cols) }

// Row returns the half-open edge-index range [lo, hi) of the directed
// edges leaving location u. Out-of-range locations have no edges.
//
//moloc:hotpath
func (c *Compiled) Row(u int) (lo, hi int32) {
	if u < 1 || u > c.n {
		return 0, 0
	}
	return c.rowStart[u-1], c.rowStart[u]
}

// Col returns the destination location of edge k.
//
//moloc:hotpath
func (c *Compiled) Col(k int32) int { return int(c.cols[k]) }

// EdgeProb evaluates the motion-matching probability of Eq. 5 along
// edge k for the measured direction (degrees) and offset (meters): the
// product of the tabulated direction and offset terms, linearly
// interpolated between table nodes. Offsets beyond the table's range —
// past mu_o + 4 sigma_o, where under 1e-4 of the Gaussian mass lives —
// and non-finite measurements take the exact evaluation instead.
//
//moloc:hotpath
func (c *Compiled) EdgeProb(k int32, dirDeg, offMeters float64) float64 {
	t := &c.tables[c.table[k]]
	dd := geom.AngleDiff(dirDeg, c.meanDir[k])
	if math.IsNaN(dd) {
		return c.edgeProbExact(k, dirDeg, offMeters)
	}
	//lint:ignore degnorm table index offset: dd is already a normalized AngleDiff in [-180,180)
	x := (dd + 180) * t.invDirH
	i := int(x)
	fx := x - float64(i)
	pd := t.dir[i] + fx*(t.dir[i+1]-t.dir[i])

	y := offMeters * t.invOffH
	if !(y >= 0 && y < float64(len(t.off)-1)) { // beyond table or NaN
		return pd * c.offProbExact(k, offMeters)
	}
	j := int(y)
	fy := y - float64(j)
	po := t.off[j] + fy*(t.off[j+1]-t.off[j])
	return pd * po
}

// edgeProbExact is the slow-path evaluation of EdgeProb, identical to
// Entry.Prob on the edge's (mirrored) entry.
func (c *Compiled) edgeProbExact(k int32, dirDeg, offMeters float64) float64 {
	e := c.tables[c.table[k]].entry
	e.MeanDir = c.meanDir[k]
	return e.Prob(dirDeg, offMeters, c.alpha, c.beta)
}

// offProbExact evaluates the offset term exactly, for offsets beyond
// the table.
func (c *Compiled) offProbExact(k int32, offMeters float64) float64 {
	e := &c.tables[c.table[k]].entry
	return stats.GaussInterval(offMeters-c.beta/2, offMeters+c.beta/2, e.MeanOff, e.StdOff)
}

// Lookup returns the entry for walking from location i to location j,
// like DB.Lookup, but from the compiled adjacency: a binary search of
// the CSR row, with the mirror already materialized (no copy-and-
// rotate).
func (c *Compiled) Lookup(i, j int) (Entry, bool) {
	if i == j || i < 1 || j < 1 || i > c.n || j > c.n {
		return Entry{}, false
	}
	k, ok := c.edgeIndex(i, j)
	if !ok {
		return Entry{}, false
	}
	e := c.tables[c.table[k]].entry
	e.MeanDir = c.meanDir[k]
	return e, true
}

// edgeIndex returns the CSR index of the directed edge u -> v via a
// binary search of u's row. Both endpoints must already be validated
// in-range.
func (c *Compiled) edgeIndex(u, v int) (int32, bool) {
	lo, hi := c.rowStart[u-1], c.rowStart[u]
	row := c.cols[lo:hi]
	k := sort.Search(len(row), func(x int) bool { return row[x] >= int32(v) })
	if k == len(row) || row[k] != int32(v) {
		return 0, false
	}
	return lo + int32(k), true
}

// RecompileEdges returns a new compiled view in which only the dirty
// pairs' discretized Eq. 5 tables (and per-edge mean directions) are
// rebuilt from db's current entries; every clean pair's tables and the
// CSR adjacency arrays are shared with c. It is the incremental
// counterpart of a full Compile for the online-training path, where a
// retrain batch touches a handful of edges of a large database: cost is
// proportional to the dirty set, not the database.
//
// The database must still have the pair set the view was compiled from
// — RecompileEdges rebuilds probability tables, not adjacency. A pair
// count mismatch or a dirty pair without a compiled edge (a newly
// trained pair) returns an error and the caller falls back to a full
// Compile, the executable spec this method is equivalence-tested
// against. Pairs mutated in db but not listed dirty are served stale;
// the caller owns dirty tracking (see Builder.TakeTouched).
//
// The returned view is freshly allocated and as immutable as any
// Compiled: publish it with an atomic pointer swap and concurrent
// readers never observe a half-updated table.
func (c *Compiled) RecompileEdges(db *DB, dirty [][2]int) (*Compiled, error) {
	if db.n != c.n {
		return nil, fmt.Errorf("motiondb: recompile: database has %d locations, view has %d", db.n, c.n)
	}
	if len(db.entries) != len(c.tables) {
		return nil, fmt.Errorf("motiondb: recompile: pair set changed (%d entries vs %d compiled); full Compile required",
			len(db.entries), len(c.tables))
	}
	if len(dirty) == 0 {
		return c, nil
	}
	nc := &Compiled{
		n:        c.n,
		alpha:    c.alpha,
		beta:     c.beta,
		rowStart: c.rowStart,
		cols:     c.cols,
		table:    c.table,
		meanDir:  append([]float64(nil), c.meanDir...),
		tables:   append([]probTable(nil), c.tables...),
	}
	for _, pair := range dirty {
		i, j := pair[0], pair[1]
		if i > j {
			i, j = j, i
		}
		if i == j || i < 1 || j > c.n {
			return nil, fmt.Errorf("motiondb: recompile: invalid dirty pair (%d,%d)", pair[0], pair[1])
		}
		e, ok := db.entries[[2]int{i, j}]
		if !ok {
			return nil, fmt.Errorf("motiondb: recompile: dirty pair (%d,%d) not in the database; full Compile required", i, j)
		}
		if err := e.Validate(); err != nil {
			return nil, fmt.Errorf("motiondb: recompile pair (%d,%d): %w", i, j, err)
		}
		kf, okF := c.edgeIndex(i, j)
		kr, okR := c.edgeIndex(j, i)
		if !okF || !okR {
			return nil, fmt.Errorf("motiondb: recompile: dirty pair (%d,%d) has no compiled edge; full Compile required", i, j)
		}
		ti := c.table[kf]
		nc.tables[ti] = buildProbTable(e, c.alpha, c.beta)
		nc.meanDir[kf] = e.MeanDir
		nc.meanDir[kr] = geom.MirrorBearing(e.MeanDir)
	}
	return nc, nil
}
