package motiondb

import (
	"math"
	"testing"
)

// compiledFixtureDB builds a small trained database with varied spreads,
// including a tight-sigma entry and a long-offset entry, so the table
// construction sees more than one regime.
func compiledFixtureDB() *DB {
	db := New(6)
	db.Set(1, 2, Entry{MeanDir: 90, StdDir: 6, MeanOff: 4, StdOff: 0.25, N: 20})
	db.Set(1, 3, Entry{MeanDir: 270, StdDir: 6, MeanOff: 4, StdOff: 0.25, N: 20})
	db.Set(2, 3, Entry{MeanDir: 270, StdDir: 12, MeanOff: 8, StdOff: 0.4, N: 20})
	db.Set(3, 4, Entry{MeanDir: 0, StdDir: 3, MeanOff: 2.5, StdOff: 0.15, N: 9})
	db.Set(4, 6, Entry{MeanDir: 181, StdDir: 25, MeanOff: 23, StdOff: 2.5, N: 40})
	db.Set(5, 6, Entry{MeanDir: 45.5, StdDir: 8, MeanOff: 5.5, StdOff: 0.3, N: 12})
	return db
}

func mustCompile(t *testing.T, db *DB, alpha, beta float64) *Compiled {
	t.Helper()
	c, err := db.Compile(alpha, beta)
	if err != nil {
		t.Fatalf("Compile(%g, %g): %v", alpha, beta, err)
	}
	return c
}

// TestCompiledProbMatchesReference pins the table-interpolation error:
// EdgeProb must track Entry.Prob within the documented tolerance over a
// dense grid of directions and offsets, in both traversal directions,
// including offsets beyond the table (exact fallback).
func TestCompiledProbMatchesReference(t *testing.T) {
	db := compiledFixtureDB()
	const alpha, beta = 20, 1
	c := mustCompile(t, db, alpha, beta)
	const tol = 1e-3

	for _, pair := range db.Pairs() {
		dirs := []struct{ i, j int }{{pair[0], pair[1]}, {pair[1], pair[0]}}
		for _, d := range dirs {
			e, ok := db.Lookup(d.i, d.j)
			if !ok {
				t.Fatalf("Lookup(%d,%d) missing", d.i, d.j)
			}
			lo, hi := c.Row(d.i)
			k := lo
			for ; k < hi; k++ {
				if c.Col(k) == d.j {
					break
				}
			}
			if k == hi {
				t.Fatalf("edge %d->%d missing from compiled adjacency", d.i, d.j)
			}
			for dir := -360.0; dir <= 720; dir += 7.3 {
				for off := 0.0; off <= 40; off += 0.37 {
					want := e.Prob(dir, off, alpha, beta)
					got := c.EdgeProb(k, dir, off)
					if math.Abs(got-want) > tol {
						t.Fatalf("EdgeProb(%d->%d, dir=%g, off=%g) = %g, reference %g (diff %g)",
							d.i, d.j, dir, off, got, want, math.Abs(got-want))
					}
				}
			}
		}
	}
}

// TestCompiledLookupMatchesDB checks the CSR binary-search lookup
// against the map-based one for every pair and for misses.
func TestCompiledLookupMatchesDB(t *testing.T) {
	db := compiledFixtureDB()
	c := mustCompile(t, db, 20, 1)
	for i := 0; i <= 7; i++ {
		for j := 0; j <= 7; j++ {
			we, wok := db.Lookup(i, j)
			ge, gok := c.Lookup(i, j)
			if wok != gok {
				t.Fatalf("Lookup(%d,%d): compiled ok=%v, db ok=%v", i, j, gok, wok)
			}
			if wok && ge != we {
				t.Fatalf("Lookup(%d,%d): compiled %+v, db %+v", i, j, ge, we)
			}
		}
	}
}

// TestCompiledCSRShape checks the adjacency invariants: every trained
// pair contributes exactly two directed edges, and each row's columns
// are strictly ascending (the binary search relies on it).
func TestCompiledCSRShape(t *testing.T) {
	db := compiledFixtureDB()
	c := mustCompile(t, db, 20, 1)
	if got, want := c.NumEdges(), 2*len(db.Pairs()); got != want {
		t.Fatalf("NumEdges = %d, want %d", got, want)
	}
	for u := 1; u <= c.NumLocs(); u++ {
		lo, hi := c.Row(u)
		for k := lo + 1; k < hi; k++ {
			if c.Col(k-1) >= c.Col(k) {
				t.Fatalf("row %d columns not strictly ascending: %d then %d",
					u, c.Col(k-1), c.Col(k))
			}
		}
	}
	if lo, hi := c.Row(0); lo != hi {
		t.Error("out-of-range location must have an empty row")
	}
	if lo, hi := c.Row(c.NumLocs() + 1); lo != hi {
		t.Error("out-of-range location must have an empty row")
	}
}

// TestCompileMemoizes checks that repeated compilations with the same
// intervals share one view and that a mutation invalidates it.
func TestCompileMemoizes(t *testing.T) {
	db := compiledFixtureDB()
	a := mustCompile(t, db, 20, 1)
	if b := mustCompile(t, db, 20, 1); b != a {
		t.Error("same intervals must return the memoized view")
	}
	if b := mustCompile(t, db, 10, 1); b == a {
		t.Error("different intervals must compile a fresh view")
	}
	db.Set(5, 6, Entry{MeanDir: 50, StdDir: 8, MeanOff: 5.5, StdOff: 0.3, N: 13})
	c := mustCompile(t, db, 20, 1)
	if c == a {
		t.Error("Set must invalidate memoized views")
	}
	if e, ok := c.Lookup(5, 6); !ok || e.MeanDir != 50 {
		t.Errorf("recompiled view must see the new entry, got %+v, %v", e, ok)
	}
}

// TestCompileRejectsBadInput checks parameter and entry validation.
func TestCompileRejectsBadInput(t *testing.T) {
	db := compiledFixtureDB()
	for _, bad := range [][2]float64{
		{0, 1}, {-5, 1}, {20, 0}, {20, -2},
		{math.NaN(), 1}, {20, math.NaN()}, {math.Inf(1), 1},
	} {
		if _, err := db.Compile(bad[0], bad[1]); err == nil {
			t.Errorf("Compile(%g, %g) should fail", bad[0], bad[1])
		}
	}
	corrupt := New(3)
	corrupt.Set(1, 2, Entry{MeanDir: 90, StdDir: -1, MeanOff: 4, StdOff: 0.25, N: 5})
	if _, err := corrupt.Compile(20, 1); err == nil {
		t.Error("compiling a corrupt entry should fail")
	}
}

// TestEdgeProbNonFinite checks the NaN/Inf fallbacks agree with the
// reference (which itself tolerates them).
func TestEdgeProbNonFinite(t *testing.T) {
	db := compiledFixtureDB()
	c := mustCompile(t, db, 20, 1)
	e, _ := db.Lookup(1, 2)
	lo, _ := c.Row(1)
	k := lo
	for c.Col(k) != 2 {
		k++
	}
	for _, q := range [][2]float64{
		{math.NaN(), 4}, {90, math.NaN()}, {math.Inf(1), 4}, {90, math.Inf(1)}, {90, -3},
	} {
		want := e.Prob(q[0], q[1], 20, 1)
		got := c.EdgeProb(k, q[0], q[1])
		if math.Abs(got-want) > 1e-3 && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Errorf("EdgeProb(dir=%g, off=%g) = %g, reference %g", q[0], q[1], got, want)
		}
	}
}
