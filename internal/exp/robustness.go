package exp

import (
	"moloc/internal/core"
	"moloc/internal/crowd"
	"moloc/internal/eval"
	"moloc/internal/fingerprint"
	"moloc/internal/floorplan"
	"moloc/internal/geom"
	"moloc/internal/localizer"
	"moloc/internal/motion"
	"moloc/internal/motiondb"
	"moloc/internal/rf"
	"moloc/internal/stats"
)

// AblationAPOutage injects a serving-time failure the paper's
// deployment would eventually face: one of the six APs dies after the
// site survey, so every test scan reports it as not detected while the
// radio map still expects it. Fingerprint-only localization degrades
// hard; MoLoc's motion matching vetoes most of the resulting wrong
// candidates.
func (c *Context) AblationAPOutage() (*Result, error) {
	r := &Result{ID: "abl-outage", Title: "Robustness — AP outage at serving time"}
	dep, err := c.Deployment(6)
	if err != nil {
		return nil, err
	}
	ml, err := dep.NewMoLoc()
	if err != nil {
		return nil, err
	}
	healthyWiFi := eval.Summarize(dep.Evaluate(dep.NewWiFi()))
	healthyMoLoc := eval.Summarize(dep.Evaluate(ml))
	r.addLine("healthy: WiFi acc=%.1f%%, MoLoc acc=%.1f%%",
		healthyWiFi.Accuracy*100, healthyMoLoc.Accuracy*100)
	r.setMetric("wifi_healthy", healthyWiFi.Accuracy)
	r.setMetric("moloc_healthy", healthyMoLoc.Accuracy)

	// Kill AP 0 (one of the mirror pair, the worst case for twins) in
	// every test fingerprint.
	dead := killAP(dep.TestData, 0)
	mlDead, err := dep.NewMoLoc()
	if err != nil {
		return nil, err
	}
	wifiOut := eval.Summarize(eval.Run(c.Sys.Plan, dep.NewWiFi(), dead))
	molocOut := eval.Summarize(eval.Run(c.Sys.Plan, mlDead, dead))
	r.addLine("ap1 dead: WiFi acc=%.1f%% (-%.1f), MoLoc acc=%.1f%% (-%.1f)",
		wifiOut.Accuracy*100, (healthyWiFi.Accuracy-wifiOut.Accuracy)*100,
		molocOut.Accuracy*100, (healthyMoLoc.Accuracy-molocOut.Accuracy)*100)
	r.setMetric("wifi_outage", wifiOut.Accuracy)
	r.setMetric("moloc_outage", molocOut.Accuracy)

	// Mitigation: the matched-only dissimilarity scores only APs heard
	// in both the scan and the radio map, so a dead AP stops poisoning
	// every comparison. Rebuild the radio map with it and re-evaluate.
	survey := c.Sys.Survey.ProjectAPs(dep.APIdx)
	robustFDB, err := survey.BuildDB(fingerprint.MatchedOnly{Missing: rf.NotDetected}, len(dep.APIdx))
	if err != nil {
		return nil, err
	}
	mlRobust, err := localizer.NewMoLoc(robustFDB, c.Sys.MDB, c.Sys.Config.MoLoc)
	if err != nil {
		return nil, err
	}
	wifiRobust := eval.Summarize(eval.Run(c.Sys.Plan, localizer.NewWiFiNN(robustFDB), dead))
	molocRobust := eval.Summarize(eval.Run(c.Sys.Plan, mlRobust, dead))
	r.addLine("ap1 dead + matched-only metric: WiFi acc=%.1f%%, MoLoc acc=%.1f%%",
		wifiRobust.Accuracy*100, molocRobust.Accuracy*100)
	r.setMetric("wifi_outage_matched", wifiRobust.Accuracy)
	r.setMetric("moloc_outage_matched", molocRobust.Accuracy)
	return r, nil
}

// killAP returns a deep copy of the processed traces with the given AP
// index reporting NotDetected in every fingerprint.
func killAP(data []*crowd.TraceData, ap int) []*crowd.TraceData {
	out := make([]*crowd.TraceData, len(data))
	for i, td := range data {
		cp := *td
		cp.StartFP = killIn(td.StartFP, ap)
		cp.Legs = make([]crowd.LegData, len(td.Legs))
		for j, ld := range td.Legs {
			cp.Legs[j] = ld
			cp.Legs[j].FP = killIn(ld.FP, ap)
		}
		out[i] = &cp
	}
	return out
}

func killIn(f fingerprint.Fingerprint, ap int) fingerprint.Fingerprint {
	cp := f.Clone()
	cp[ap] = rf.NotDetected
	return cp
}

// AblationPoisonedCrowd feeds the motion-database builder an
// adversarial crowd: a fraction of the observations report plausible
// (adjacent) pairs with systematically rotated directions and inflated
// offsets — a miscalibrated or malicious contributor whose errors do
// not cancel out in the mean. The paper's two-level sanitation is the
// defense; without it the poisoned Gaussians drag MoLoc down.
func (c *Context) AblationPoisonedCrowd() (*Result, error) {
	r := &Result{ID: "abl-poison", Title: "Robustness — adversarial crowdsourcing"}
	dep, err := c.Deployment(6)
	if err != nil {
		return nil, err
	}
	fdb, err := c.Sys.Survey.BuildDB(fingerprint.Euclidean{}, c.Sys.Model.NumAPs())
	if err != nil {
		return nil, err
	}
	pipe, err := crowd.NewPipeline(c.Sys.Plan, fdb, c.Sys.Survey.MotionEst, c.Sys.Config.Motion)
	if err != nil {
		return nil, err
	}
	// Collect the honest observations once.
	obsRNG := stats.NewRNG(c.Sys.Config.Seed ^ 0x9015)
	var honest []motiondb.Observation
	for _, tr := range c.Sys.TrainTraces {
		honest = append(honest, crowd.Observations(pipe.Process(tr, obsRNG))...)
	}

	// Enumerate the walk-graph edges once: the adversary reports
	// plausible (adjacent) pairs with garbage measurements, the kind of
	// poison the adjacency filter alone cannot drop.
	var edges [][2]int
	for i := 1; i <= c.Sys.Plan.NumLocs(); i++ {
		for _, e := range c.Sys.Graph.Neighbors(i) {
			if e.To > i {
				edges = append(edges, [2]int{i, e.To})
			}
		}
	}
	for _, poisonFrac := range []float64{0, 0.3, 0.6} {
		for _, level := range []struct {
			name string
			lv   motiondb.Sanitation
		}{{"none", motiondb.SanitationNone}, {"full", motiondb.SanitationFull}} {
			cfg := c.Sys.Config.Builder
			cfg.Level = level.lv
			builder, err := motiondb.NewBuilder(c.Sys.Plan, cfg)
			if err != nil {
				return nil, err
			}
			builder.UseGraph(c.Sys.Graph)
			builder.AddAll(honest)
			poisonRNG := stats.NewRNG(c.Sys.Config.Seed ^ 0xbad)
			// poisonFrac is the poisoned share of the final stream:
			// n_p / (n_h + n_p) = frac.
			nPoison := int(poisonFrac / (1 - poisonFrac) * float64(len(honest)))
			for p := 0; p < nPoison; p++ {
				edge := edges[poisonRNG.Intn(len(edges))]
				gtDir, gtOff := floorplan.GroundTruthRLM(c.Sys.Plan, edge[0], edge[1])
				builder.Add(motiondb.Observation{
					From: edge[0],
					To:   edge[1],
					// A consistent 90-degree rotation and +2.5 m offset:
					// errors that bias the fitted means rather than
					// widening them.
					RLM: motion.RLM{
						Dir: geom.NormalizeDeg(gtDir + 90),
						Off: gtOff + 2.5,
					},
				})
			}
			mdb := builder.Build()
			ml, err := localizerOver(dep, mdb, c.Sys.Config.MoLoc)
			if err != nil {
				return nil, err
			}
			acc := eval.Summarize(dep.Evaluate(ml)).Accuracy
			r.addLine("poison=%.0f%% sanitation=%-4s: entries=%d MoLoc acc=%.1f%%",
				poisonFrac*100, level.name, mdb.NumEntries(), acc*100)
			if poisonFrac > 0 {
				r.setMetric("acc_poisoned_"+level.name, acc)
			} else {
				r.setMetric("acc_clean_"+level.name, acc)
			}
		}
	}
	return r, nil
}

// localizerOver builds a MoLoc localizer for a deployment using an
// alternative motion database.
func localizerOver(dep *core.Deployment, mdb *motiondb.DB, cfg localizer.Config) (localizer.Localizer, error) {
	return localizer.NewMoLoc(dep.FDB, mdb, cfg)
}
