package exp

import (
	"moloc/internal/eval"
)

// paperTable1 holds the paper's Table I: erroneous localizations before
// the first accurate one (EL), then accuracy / mean error / max error
// of the subsequent estimates, per setting.
var paperTable1 = map[int]struct {
	wifiEL, wifiAcc, wifiMean, wifiMax     float64
	molocEL, molocAcc, molocMean, molocMax float64
}{
	4: {3.28, 0.34, 4.91, 16.64, 1.57, 0.89, 0.67, 7.92},
	5: {2.71, 0.39, 4.33, 14.70, 1.42, 0.93, 0.36, 6.25},
	6: {2.25, 0.48, 3.27, 13.60, 1.13, 0.96, 0.22, 6.88},
}

// Table1 reproduces the convergence study of Table I: over the test
// traces whose initial estimate is wrong, how many erroneous
// localizations occur before the first accurate one, and how good the
// estimates are afterwards. The paper's claim: MoLoc approximately
// halves EL and pushes subsequent accuracy to ~90% or more.
func (c *Context) Table1() (*Result, error) {
	r := &Result{ID: "tab1", Title: "Table I — convergence of accurate localization"}
	r.addLine("%-12s %6s %9s %9s %9s   (paper EL / acc)", "setting", "EL", "accuracy", "mean(m)", "max(m)")
	for _, n := range apCounts {
		wifiRes, molocRes, err := c.evalPair(n)
		if err != nil {
			return nil, err
		}
		ref := paperTable1[n]
		wc := eval.ConvergenceStats(wifiRes)
		mc := eval.ConvergenceStats(molocRes)
		r.addLine("%d-AP WiFi   %6.2f %8.0f%% %9.2f %9.2f   (%.2f / %.0f%%)",
			n, wc.MeanEL, wc.Accuracy*100, wc.MeanErr, wc.MaxErr, ref.wifiEL, ref.wifiAcc*100)
		r.addLine("%d-AP MoLoc  %6.2f %8.0f%% %9.2f %9.2f   (%.2f / %.0f%%)",
			n, mc.MeanEL, mc.Accuracy*100, mc.MeanErr, mc.MaxErr, ref.molocEL, ref.molocAcc*100)
		r.setMetric(metricName("wifi_el", n), wc.MeanEL)
		r.setMetric(metricName("moloc_el", n), mc.MeanEL)
		r.setMetric(metricName("wifi_sub_acc", n), wc.Accuracy)
		r.setMetric(metricName("moloc_sub_acc", n), mc.Accuracy)
		r.setMetric(metricName("moloc_sub_mean_m", n), mc.MeanErr)
	}
	return r, nil
}
