package exp

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"moloc/internal/core"
)

// testContext builds a reduced-size context shared by the experiment
// tests; the full paper configuration is exercised by the benchmarks.
func testContext(t *testing.T) *Context {
	t.Helper()
	cfg := core.NewConfig()
	cfg.NumTrainTraces = 40
	cfg.NumTestTraces = 12
	cfg.Trace.NumLegs = 10
	ctx, err := NewContext(cfg)
	if err != nil {
		t.Fatalf("NewContext: %v", err)
	}
	return ctx
}

func TestDeploymentCacheAndBounds(t *testing.T) {
	ctx := testContext(t)
	d1, err := ctx.Deployment(4)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := ctx.Deployment(4)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Error("deployments should be cached")
	}
	if _, err := ctx.Deployment(0); err == nil {
		t.Error("0 APs should be rejected")
	}
	if _, err := ctx.Deployment(7); err == nil {
		t.Error("7 APs should be rejected")
	}
}

func TestFig4(t *testing.T) {
	ctx := testContext(t)
	r, err := ctx.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "fig4" || len(r.Lines) == 0 {
		t.Fatalf("bad result: %+v", r)
	}
	steps := r.Metrics["steps_detected"]
	if steps < 8 || steps > 11 {
		t.Errorf("detected %v steps, want ~10", steps)
	}
	if r.Metrics["mag_range"] < 4 {
		t.Errorf("magnitude range %v too small for Fig. 4", r.Metrics["mag_range"])
	}
}

func TestFig6(t *testing.T) {
	ctx := testContext(t)
	r, err := ctx.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["dir_median_deg"] <= 0 || r.Metrics["dir_median_deg"] > 15 {
		t.Errorf("direction median %v outside plausible band", r.Metrics["dir_median_deg"])
	}
	if r.Metrics["off_median_m"] <= 0 || r.Metrics["off_median_m"] > 1 {
		t.Errorf("offset median %v outside plausible band", r.Metrics["off_median_m"])
	}
}

func TestFig7ShapeHolds(t *testing.T) {
	ctx := testContext(t)
	r, err := ctx.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{4, 5, 6} {
		wifi := r.Metrics[metricName("wifi_acc", n)]
		moloc := r.Metrics[metricName("moloc_acc", n)]
		if moloc <= wifi {
			t.Errorf("%d-AP: MoLoc %.2f must beat WiFi %.2f", n, moloc, wifi)
		}
	}
	// Accuracy grows with AP count for WiFi (the paper's trend).
	if r.Metrics[metricName("wifi_acc", 6)] <= r.Metrics[metricName("wifi_acc", 4)] {
		t.Error("WiFi accuracy should grow with AP count")
	}
}

func TestFig8(t *testing.T) {
	ctx := testContext(t)
	r, err := ctx.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Lines) == 0 {
		t.Fatal("no output lines")
	}
	// Where twins were identified, MoLoc must reduce the mean error.
	for _, n := range []int{4, 5, 6} {
		if cut, ok := r.Metrics[metricName("mean_reduction_m", n)]; ok && cut <= 0 {
			t.Errorf("%d-AP: no mean-error reduction at twin locations (%v)", n, cut)
		}
	}
}

func TestTable1(t *testing.T) {
	ctx := testContext(t)
	r, err := ctx.Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{4, 5, 6} {
		ws := r.Metrics[metricName("wifi_sub_acc", n)]
		ms := r.Metrics[metricName("moloc_sub_acc", n)]
		if ms <= ws {
			t.Errorf("%d-AP: MoLoc subsequent accuracy %.2f must beat WiFi %.2f", n, ms, ws)
		}
	}
}

func TestAblationCSC(t *testing.T) {
	ctx := testContext(t)
	r, err := ctx.AblationCSC()
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["csc_err_m"] >= r.Metrics["dsc_err_m"] {
		t.Errorf("CSC (%v) should beat DSC (%v)", r.Metrics["csc_err_m"], r.Metrics["dsc_err_m"])
	}
}

func TestAblationSanitationRestores(t *testing.T) {
	ctx := testContext(t)
	before := ctx.Sys.Config.Builder
	r, err := ctx.AblationSanitation()
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Sys.Config.Builder != before {
		t.Error("builder config must be restored after the ablation")
	}
	// Sanitized DBs are at least as accurate downstream as unsanitized.
	if r.Metrics["acc_coarse+fine"] < r.Metrics["acc_none"]-0.05 {
		t.Errorf("full sanitation (%.2f) should not trail none (%.2f)",
			r.Metrics["acc_coarse+fine"], r.Metrics["acc_none"])
	}
}

func TestAblationCandidateK(t *testing.T) {
	ctx := testContext(t)
	r, err := ctx.AblationCandidateK()
	if err != nil {
		t.Fatal(err)
	}
	// k = 1 equals the WiFi baseline by construction; larger k helps.
	k1 := r.Metrics[metricName("acc_k1", 6)]
	k8 := r.Metrics[metricName("acc_k8", 6)]
	if k8 <= k1 {
		t.Errorf("k=8 (%.2f) should beat k=1 (%.2f)", k8, k1)
	}
}

func TestAblationBaselines(t *testing.T) {
	ctx := testContext(t)
	r, err := ctx.AblationBaselines()
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["acc_moloc"] <= r.Metrics["acc_wifi-nn"] {
		t.Error("MoLoc should beat the WiFi baseline")
	}
	if r.Metrics["acc_moloc"] <= r.Metrics["acc_dead-reckoning"] {
		t.Error("MoLoc should beat pure dead reckoning")
	}
}

func TestAblationMapFallback(t *testing.T) {
	ctx := testContext(t)
	r, err := ctx.AblationMapFallback()
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["acc_fallback_on"] <= r.Metrics["acc_fallback_off"] {
		t.Errorf("fallback on (%.2f) should beat off (%.2f) under starved training",
			r.Metrics["acc_fallback_on"], r.Metrics["acc_fallback_off"])
	}
}

func TestAllRunsEverything(t *testing.T) {
	ctx := testContext(t)
	results, err := ctx.All()
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := []string{"fig4", "fig6", "fig7", "fig8", "tab1",
		"abl-csc", "abl-sanit", "abl-k", "abl-hmm", "abl-fallback",
		"abl-horus", "abl-gyro", "abl-outage", "abl-poison", "abl-particle",
		"abl-users", "abl-survey", "abl-zerosurvey",
		"ext-mall", "ext-interval", "ext-peer", "ext-aging", "ext-healing"}
	if len(results) != len(wantIDs) {
		t.Fatalf("got %d results, want %d", len(results), len(wantIDs))
	}
	for i, r := range results {
		if r.ID != wantIDs[i] {
			t.Errorf("result %d = %s, want %s", i, r.ID, wantIDs[i])
		}
		if len(r.Lines) == 0 {
			t.Errorf("%s produced no lines", r.ID)
		}
		if !strings.Contains(r.Title, "—") {
			t.Errorf("%s title lacks description: %q", r.ID, r.Title)
		}
	}
}

func TestAblationAPOutage(t *testing.T) {
	ctx := testContext(t)
	r, err := ctx.AblationAPOutage()
	if err != nil {
		t.Fatal(err)
	}
	// The dead AP must hurt the Euclidean pipeline, and the matched-only
	// metric must recover most of the loss.
	if r.Metrics["wifi_outage"] >= r.Metrics["wifi_healthy"] {
		t.Error("outage should hurt WiFi")
	}
	if r.Metrics["moloc_outage_matched"] <= r.Metrics["moloc_outage"] {
		t.Errorf("matched-only (%.2f) should recover over plain Euclidean (%.2f)",
			r.Metrics["moloc_outage_matched"], r.Metrics["moloc_outage"])
	}
}

func TestAblationPoisonedCrowd(t *testing.T) {
	ctx := testContext(t)
	r, err := ctx.AblationPoisonedCrowd()
	if err != nil {
		t.Fatal(err)
	}
	// Sanitation must neutralize the poison: the poisoned+full accuracy
	// stays near the clean+full accuracy.
	if r.Metrics["acc_poisoned_full"] < r.Metrics["acc_clean_full"]-0.08 {
		t.Errorf("sanitation failed to absorb poison: %.2f vs clean %.2f",
			r.Metrics["acc_poisoned_full"], r.Metrics["acc_clean_full"])
	}
	// And unsanitized must suffer more than sanitized under poison.
	if r.Metrics["acc_poisoned_none"] > r.Metrics["acc_poisoned_full"]+0.02 {
		t.Errorf("unsanitized (%.2f) unexpectedly beats sanitized (%.2f) under poison",
			r.Metrics["acc_poisoned_none"], r.Metrics["acc_poisoned_full"])
	}
}

func TestAblationParticle(t *testing.T) {
	ctx := testContext(t)
	r, err := ctx.AblationParticle()
	if err != nil {
		t.Fatal(err)
	}
	// MoLoc must be dramatically cheaper per fix; accuracy should be in
	// the same band (within 15 points either way on the small fixture).
	if r.Metrics["us_per_fix_moloc"]*5 > r.Metrics["us_per_fix_particle"] {
		t.Errorf("MoLoc (%v us) should be far cheaper than the particle filter (%v us)",
			r.Metrics["us_per_fix_moloc"], r.Metrics["us_per_fix_particle"])
	}
	if math.Abs(r.Metrics["acc_moloc"]-r.Metrics["acc_particle"]) > 0.2 {
		t.Errorf("accuracy band too wide: moloc %.2f vs particle %.2f",
			r.Metrics["acc_moloc"], r.Metrics["acc_particle"])
	}
}

func TestAblationZeroSurvey(t *testing.T) {
	// Zero-effort construction needs walks long enough for their motion
	// shape to be unique up to translation; the shared small fixture's
	// 10-leg walks are too ambiguous (a real deployment characteristic,
	// see EXPERIMENTS.md), so this test uses paper-length walks.
	cfg := core.NewConfig()
	cfg.NumTrainTraces = 60
	cfg.NumTestTraces = 12
	ctx, err := NewContext(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := ctx.AblationZeroSurvey()
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["label_acc_iter0"] < 0.1 {
		t.Errorf("motion-only labels %.2f barely beat chance", r.Metrics["label_acc_iter0"])
	}
	if r.Metrics["label_acc_iter2"] < r.Metrics["label_acc_iter0"]-0.05 {
		t.Error("EM should not degrade labels")
	}
	// The zero-effort map must be usable: within 25 points of surveyed.
	if r.Metrics["moloc_zero"] < r.Metrics["moloc_surveyed"]-0.25 {
		t.Errorf("zero-effort MoLoc %.2f too far below surveyed %.2f",
			r.Metrics["moloc_zero"], r.Metrics["moloc_surveyed"])
	}
}

func TestExtensionInterval(t *testing.T) {
	ctx := testContext(t)
	r, err := ctx.ExtensionInterval()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"err_m_1.5s", "err_m_3.0s", "err_m_6.0s"} {
		v, ok := r.Metrics[k]
		if !ok {
			t.Fatalf("metric %s missing", k)
		}
		if v <= 0 || v > 8 {
			t.Errorf("%s = %v outside plausible band", k, v)
		}
	}
}

func TestExtensionMall(t *testing.T) {
	ctx := testContext(t)
	r, err := ctx.ExtensionMall()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{4, 8} {
		if r.Metrics[metricName("moloc_acc", n)] <= r.Metrics[metricName("wifi_acc", n)] {
			t.Errorf("%d-AP mall: MoLoc should beat WiFi", n)
		}
	}
}

func TestExtensionPeerAssist(t *testing.T) {
	ctx := testContext(t)
	r, err := ctx.ExtensionPeerAssist()
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["acc_peer"] <= r.Metrics["acc_solo"] {
		t.Errorf("peer assistance (%.2f) should beat solo NN (%.2f)",
			r.Metrics["acc_peer"], r.Metrics["acc_solo"])
	}
	if r.Metrics["acc_moloc"] <= r.Metrics["acc_solo"] {
		t.Error("MoLoc should beat solo NN")
	}
}

func TestExtensionAging(t *testing.T) {
	ctx := testContext(t)
	r, err := ctx.ExtensionAging()
	if err != nil {
		t.Fatal(err)
	}
	// Heavy drift must hurt the stale radio map, and MoLoc must stay
	// ahead of WiFi at every drift level.
	if r.Metrics["wifi_drift4"] >= r.Metrics["wifi_drift0"] {
		t.Error("4 dB drift should hurt WiFi")
	}
	for _, d := range []string{"0", "2", "4"} {
		if r.Metrics["moloc_drift"+d] <= r.Metrics["wifi_drift"+d] {
			t.Errorf("drift %s: MoLoc should stay ahead of WiFi", d)
		}
	}
}

func TestAblationUserDiversity(t *testing.T) {
	ctx := testContext(t)
	r, err := ctx.AblationUserDiversity()
	if err != nil {
		t.Fatal(err)
	}
	// The diversity ordering only stabilizes at paper scale (the small
	// fixture trains on ~10 traces per walker); here both variants just
	// need to produce working databases.
	for _, k := range []string{"acc_one-walker", "acc_all-walkers"} {
		if r.Metrics[k] < 0.3 {
			t.Errorf("%s = %.2f implausibly low", k, r.Metrics[k])
		}
	}
}

func TestAblationSurveyDensity(t *testing.T) {
	ctx := testContext(t)
	r, err := ctx.AblationSurveyDensity()
	if err != nil {
		t.Fatal(err)
	}
	// More survey samples never hurt the baseline much, and MoLoc stays
	// ahead of WiFi at every density.
	for _, n := range []int{3, 10, 40} {
		w := r.Metrics[fmt.Sprintf("wifi_s%d", n)]
		m := r.Metrics[fmt.Sprintf("moloc_s%d", n)]
		if m <= w {
			t.Errorf("%d samples: MoLoc %.2f should beat WiFi %.2f", n, m, w)
		}
	}
	if r.Metrics["wifi_s40"] < r.Metrics["wifi_s3"]-0.02 {
		t.Error("denser survey should not hurt the baseline")
	}
}

func TestExtensionSelfHealing(t *testing.T) {
	ctx := testContext(t)
	r, err := ctx.ExtensionSelfHealing()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Metrics["acc_window0"]; !ok {
		t.Fatal("no accuracy windows produced")
	}
	// The healing trend needs paper-scale traffic (150 walks); the small
	// fixture's final window holds ~10 walks, so only sanity is checked
	// here. EXPERIMENTS.md records the full-scale gain.
	for k, v := range r.Metrics {
		if v < 0.2 && k != "healing_gain" {
			t.Errorf("window %s = %.2f implausibly low", k, v)
		}
	}
}
