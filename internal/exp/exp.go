// Package exp regenerates every table and figure of the paper's
// evaluation (Sec. VI) plus the ablations called out in DESIGN.md. Each
// experiment returns a Result holding paper-style text rows and scalar
// metrics; cmd/experiments prints them and the benchmark harness
// reports them via testing.B.
package exp

import (
	"fmt"

	"moloc/internal/core"
	"moloc/internal/eval"
	"moloc/internal/stats"
)

// Result is the outcome of one experiment.
type Result struct {
	// ID matches DESIGN.md's per-experiment index (fig4, fig6a, ...).
	ID string
	// Title is a one-line description.
	Title string
	// Lines are formatted rows, including the paper's reference values
	// where the paper states them.
	Lines []string
	// Metrics are scalar outcomes keyed by a short name, for benchmark
	// reporting and tests.
	Metrics map[string]float64
}

func (r *Result) addLine(format string, args ...interface{}) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

func (r *Result) setMetric(key string, v float64) {
	if r.Metrics == nil {
		r.Metrics = make(map[string]float64)
	}
	r.Metrics[key] = v
}

// Context owns a built system and caches per-AP-count deployments so a
// sequence of experiments shares the expensive setup.
type Context struct {
	Sys  *core.System
	deps map[int]*core.Deployment
}

// NewContext builds an experiment context from a configuration.
func NewContext(cfg core.Config) (*Context, error) {
	sys, err := core.Build(cfg)
	if err != nil {
		return nil, err
	}
	return &Context{Sys: sys, deps: make(map[int]*core.Deployment)}, nil
}

// NewDefaultContext builds the paper's configuration with the given
// seed.
func NewDefaultContext(seed int64) (*Context, error) {
	cfg := core.NewConfig()
	cfg.Seed = seed
	return NewContext(cfg)
}

// Deployment returns (and caches) the deployment using the first
// numAPs access points, the paper's nested AP subsets.
func (c *Context) Deployment(numAPs int) (*core.Deployment, error) {
	if d, ok := c.deps[numAPs]; ok {
		return d, nil
	}
	all := c.Sys.AllAPs()
	if numAPs < 1 || numAPs > len(all) {
		return nil, fmt.Errorf("exp: AP count %d out of range [1,%d]", numAPs, len(all))
	}
	d, err := c.Sys.Deploy(all[:numAPs])
	if err != nil {
		return nil, err
	}
	c.deps[numAPs] = d
	return d, nil
}

// apCounts are the paper's evaluation settings.
var apCounts = []int{4, 5, 6}

// evalPair runs WiFi and MoLoc on a deployment and returns both
// result sets.
func (c *Context) evalPair(numAPs int) (wifi, moloc []eval.TraceResult, err error) {
	dep, err := c.Deployment(numAPs)
	if err != nil {
		return nil, nil, err
	}
	ml, err := dep.NewMoLoc()
	if err != nil {
		return nil, nil, err
	}
	return dep.Evaluate(dep.NewWiFi()), dep.Evaluate(ml), nil
}

// All runs every registered experiment in DESIGN.md order.
func (c *Context) All() ([]*Result, error) {
	type runner struct {
		name string
		run  func() (*Result, error)
	}
	runners := []runner{
		{"fig4", c.Fig4},
		{"fig6", c.Fig6},
		{"fig7", c.Fig7},
		{"fig8", c.Fig8},
		{"tab1", c.Table1},
		{"abl-csc", c.AblationCSC},
		{"abl-sanit", c.AblationSanitation},
		{"abl-k", c.AblationCandidateK},
		{"abl-hmm", c.AblationBaselines},
		{"abl-fallback", c.AblationMapFallback},
		{"abl-horus", c.AblationFingerprintType},
		{"abl-gyro", c.AblationGyro},
		{"abl-outage", c.AblationAPOutage},
		{"abl-poison", c.AblationPoisonedCrowd},
		{"abl-particle", c.AblationParticle},
		{"abl-users", c.AblationUserDiversity},
		{"abl-survey", c.AblationSurveyDensity},
		{"abl-zerosurvey", c.AblationZeroSurvey},
		{"ext-mall", c.ExtensionMall},
		{"ext-interval", c.ExtensionInterval},
		{"ext-peer", c.ExtensionPeerAssist},
		{"ext-aging", c.ExtensionAging},
		{"ext-healing", c.ExtensionSelfHealing},
	}
	out := make([]*Result, 0, len(runners))
	for _, r := range runners {
		res, err := r.run()
		if err != nil {
			return nil, fmt.Errorf("exp: %s: %w", r.name, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// cdfStats formats median/p90/max of a sample.
func cdfStats(xs []float64) (median, p90, max float64) {
	c := stats.NewCDF(xs)
	return c.Median(), c.Percentile(0.9), c.Max()
}
