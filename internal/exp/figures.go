package exp

import (
	"fmt"

	"moloc/internal/eval"
	"moloc/internal/motion"
	"moloc/internal/sensors"
	"moloc/internal/stats"
)

// Fig4 reproduces the acceleration signature of Fig. 4: a user walking
// ten steps, sampled at 10 Hz, with the steps recovered by the peak
// detector. The paper's figure shows the magnitude oscillating several
// m/s^2 around gravity with one marked peak per step.
func (c *Context) Fig4() (*Result, error) {
	r := &Result{ID: "fig4", Title: "Fig. 4 — acceleration signature of 10 steps"}

	gen, err := sensors.NewGenerator(c.Sys.Config.Sensors)
	if err != nil {
		return nil, err
	}
	const (
		stepFreq = 1.8 // Hz
		steps    = 10.0
	)
	duration := steps / stepFreq
	rng := stats.NewRNG(c.Sys.Config.Seed ^ 0xf14)
	samples, _ := gen.Walk(nil, 0, duration, stepFreq, 90, sensors.Device{}, 0, rng)

	detected := motion.DetectSteps(c.Sys.Config.Motion, samples)
	var mag stats.Online
	lo, hi := samples[0].Accel, samples[0].Accel
	for _, s := range samples {
		mag.Add(s.Accel)
		if s.Accel < lo {
			lo = s.Accel
		}
		if s.Accel > hi {
			hi = s.Accel
		}
	}
	r.addLine("walked %.1f s at %.1f steps/s (10 true steps), %d samples at %.0f Hz",
		duration, stepFreq, len(samples), c.Sys.Config.Sensors.SampleRate)
	r.addLine("magnitude range %.1f..%.1f m/s^2 around gravity %.2f (paper: ~4..16)",
		lo, hi, sensors.Gravity)
	r.addLine("detected %d steps (paper marks 10)", len(detected))
	r.setMetric("steps_detected", float64(len(detected)))
	r.setMetric("mag_range", hi-lo)
	return r, nil
}

// Fig6 reproduces the motion-database validity study of Fig. 6: the
// CDFs of the trained entries' direction errors (paper: median ~3 deg,
// max ~15 deg) and offset errors (median ~0.13 m, max ~0.46 m) against
// the map-derived ground truth.
func (c *Context) Fig6() (*Result, error) {
	r := &Result{ID: "fig6", Title: "Fig. 6 — errors in the motion database"}
	dirErrs, offErrs := c.Sys.MotionDBErrors()
	dm, d90, dmax := cdfStats(dirErrs)
	om, o90, omax := cdfStats(offErrs)
	r.addLine("entries=%d (every walk-graph aisle covered)", c.Sys.MDB.NumEntries())
	r.addLine("direction error: median=%.1f deg p90=%.1f max=%.1f (paper: median 3, max 15)",
		dm, d90, dmax)
	r.addLine("offset error:    median=%.2f m  p90=%.2f max=%.2f (paper: median 0.13, max 0.46)",
		om, o90, omax)
	r.setMetric("dir_median_deg", dm)
	r.setMetric("dir_max_deg", dmax)
	r.setMetric("off_median_m", om)
	r.setMetric("off_max_m", omax)
	return r, nil
}

// paperFig7 holds the paper's reported average localization accuracies
// for Fig. 7 (Sec. VI-B2), indexed by AP count.
var paperFig7 = map[int]struct{ wifi, moloc float64 }{
	4: {0.31, 0.75},
	5: {0.36, 0.82},
	6: {0.43, 0.86},
}

// Fig7 reproduces the overall localization comparison of Fig. 7(a-c):
// error CDFs of MoLoc versus WiFi fingerprinting with 4, 5, and 6 APs.
func (c *Context) Fig7() (*Result, error) {
	r := &Result{ID: "fig7", Title: "Fig. 7 — overall localization error CDFs, MoLoc vs WiFi"}
	for _, n := range apCounts {
		wifiRes, molocRes, err := c.evalPair(n)
		if err != nil {
			return nil, err
		}
		w := eval.Summarize(wifiRes)
		m := eval.Summarize(molocRes)
		ref := paperFig7[n]
		r.addLine("%d-AP WiFi : acc=%4.1f%% mean=%.2fm p50=%.2fm max=%.2fm (paper acc %.0f%%)",
			n, w.Accuracy*100, w.MeanErr, w.CDF.Median(), w.MaxErr, ref.wifi*100)
		r.addLine("%d-AP MoLoc: acc=%4.1f%% mean=%.2fm p50=%.2fm max=%.2fm (paper acc %.0f%%)",
			n, m.Accuracy*100, m.MeanErr, m.CDF.Median(), m.MaxErr, ref.moloc*100)
		r.setMetric(metricName("wifi_acc", n), w.Accuracy)
		r.setMetric(metricName("moloc_acc", n), m.Accuracy)
		r.setMetric(metricName("wifi_mean_m", n), w.MeanErr)
		r.setMetric(metricName("moloc_mean_m", n), m.MeanErr)
		// CDF points for plotting, every 10th percentile, plus an ASCII
		// rendering of the two curves (the Fig. 7 panel for this AP
		// count).
		line := "      MoLoc CDF:"
		for p := 1; p <= 9; p++ {
			line += fmtQuantile(m.CDF, float64(p)/10)
		}
		r.Lines = append(r.Lines, line)
		line = "      WiFi  CDF:"
		for p := 1; p <= 9; p++ {
			line += fmtQuantile(w.CDF, float64(p)/10)
		}
		r.Lines = append(r.Lines, line)
		r.Lines = append(r.Lines, asciiCDF([]cdfSeries{
			{name: "WiFi", mark: 'w', cdf: w.CDF},
			{name: "MoLoc", mark: 'M', cdf: m.CDF},
		}, 48, 8)...)
	}
	return r, nil
}

// Fig8 reproduces Fig. 8(a-c): the same comparison restricted to the
// locations where WiFi fingerprinting errs by more than 6 m — the
// fingerprint-twin victims. The paper reports MoLoc cutting the mean
// error at these locations by ~6.8 m and the maximum by ~4 m.
func (c *Context) Fig8() (*Result, error) {
	r := &Result{ID: "fig8", Title: "Fig. 8 — performance at large-error (twin) locations"}
	// A location qualifies as a twin victim when at least half of the
	// attempts there err beyond the paper's 6 m cut — the persistent
	// confusions, not occasional scan noise.
	const (
		threshold = 6.0
		minFrac   = 0.5
	)
	for _, n := range apCounts {
		wifiRes, molocRes, err := c.evalPair(n)
		if err != nil {
			return nil, err
		}
		locs := eval.LargeErrorLocs(wifiRes, threshold, minFrac)
		if len(locs) == 0 {
			r.addLine("%d-AP: no locations with frequent >%gm WiFi errors", n, threshold)
			continue
		}
		w := eval.FilterByTrueLoc(wifiRes, locs)
		m := eval.FilterByTrueLoc(molocRes, locs)
		r.addLine("%d-AP twin locations %v", n, locs)
		r.addLine("%d-AP WiFi : acc=%4.1f%% mean=%.2fm max=%.2fm", n,
			w.Accuracy*100, w.MeanErr, w.MaxErr)
		r.addLine("%d-AP MoLoc: acc=%4.1f%% mean=%.2fm max=%.2fm (mean cut by %.2fm; paper ~6.8m)",
			n, m.Accuracy*100, m.MeanErr, m.MaxErr, w.MeanErr-m.MeanErr)
		r.setMetric(metricName("mean_reduction_m", n), w.MeanErr-m.MeanErr)
		r.setMetric(metricName("max_reduction_m", n), w.MaxErr-m.MaxErr)
		r.setMetric(metricName("twin_locs", n), float64(len(locs)))
	}
	return r, nil
}

func metricName(base string, apCount int) string {
	return fmt.Sprintf("%s_%dap", base, apCount)
}

func fmtQuantile(c *stats.CDF, p float64) string {
	return fmt.Sprintf(" p%.0f=%.1fm", p*100, c.Percentile(p))
}
