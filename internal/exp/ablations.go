package exp

import (
	"fmt"
	"math"
	"time"

	"moloc/internal/core"
	"moloc/internal/crowd"
	"moloc/internal/eval"
	"moloc/internal/fingerprint"
	"moloc/internal/floorplan"
	"moloc/internal/geom"
	"moloc/internal/localizer"
	"moloc/internal/motion"
	"moloc/internal/motiondb"
	"moloc/internal/sensors"
	"moloc/internal/stats"
	"moloc/internal/trace"
	"moloc/internal/zerosurvey"
)

// AblationCSC quantifies the paper's Continuous Step Counting claim
// (Sec. IV-B1): CSC recovers the odd-time motion DSC misses, so its
// offset estimates are more accurate.
func (c *Context) AblationCSC() (*Result, error) {
	r := &Result{ID: "abl-csc", Title: "Ablation — Continuous vs Discrete Step Counting"}
	gen, err := sensors.NewGenerator(c.Sys.Config.Sensors)
	if err != nil {
		return nil, err
	}
	mcfg := c.Sys.Config.Motion
	const (
		stepLen  = 0.75
		stepFreq = 1.8
	)
	for _, duration := range []float64{3, 4, 6} {
		trueDist := stepLen * stepFreq * duration
		var dsc, csc stats.Online
		rng := stats.NewRNG(c.Sys.Config.Seed ^ 0xc5c)
		for trial := 0; trial < 200; trial++ {
			// A random gait phase makes the odd time vary per trial.
			phase := rng.Uniform(0, 2*math.Pi)
			samples, _ := gen.Walk(nil, 0, duration, stepFreq, 90,
				sensors.Device{}, phase, rng)
			steps := motion.DetectSteps(mcfg, samples)
			if len(steps) == 0 {
				continue
			}
			dsc.Add(math.Abs(motion.OffsetDSC(steps, stepLen) - trueDist))
			csc.Add(math.Abs(motion.OffsetCSC(steps, 0, duration, stepLen) - trueDist))
		}
		r.addLine("interval %.0fs (%.2fm true): DSC err=%.3fm CSC err=%.3fm (%.1fx better)",
			duration, trueDist, dsc.Mean(), csc.Mean(), dsc.Mean()/csc.Mean())
		if duration == 3 {
			r.setMetric("dsc_err_m", dsc.Mean())
			r.setMetric("csc_err_m", csc.Mean())
		}
	}
	return r, nil
}

// AblationSanitation rebuilds the motion database at each sanitation
// level (none / coarse / coarse+fine, Sec. IV-B2) and measures both the
// database validity (Fig. 6 metrics) and the downstream 6-AP MoLoc
// accuracy. Without sanitation, mislocalized crowdsourced RLMs poison
// the Gaussians.
func (c *Context) AblationSanitation() (*Result, error) {
	r := &Result{ID: "abl-sanit", Title: "Ablation — motion-database sanitation levels"}
	original := c.Sys.Config.Builder
	defer func() {
		// Restore the paper's configuration for later experiments.
		if err := c.Sys.RetrainMotionDB(original); err != nil {
			panic("exp: failed to restore motion DB: " + err.Error())
		}
	}()

	levels := []struct {
		name  string
		level motiondb.Sanitation
	}{
		{"none", motiondb.SanitationNone},
		{"coarse", motiondb.SanitationCoarse},
		{"coarse+fine", motiondb.SanitationFull},
	}
	dep, err := c.Deployment(6)
	if err != nil {
		return nil, err
	}
	for _, lv := range levels {
		cfg := original
		cfg.Level = lv.level
		if err := c.Sys.RetrainMotionDB(cfg); err != nil {
			return nil, err
		}
		dirErrs, offErrs := c.Sys.MotionDBErrors()
		dm, _, dmax := cdfStats(dirErrs)
		om, _, omax := cdfStats(offErrs)
		ml, err := dep.NewMoLoc()
		if err != nil {
			return nil, err
		}
		acc := eval.Summarize(dep.Evaluate(ml)).Accuracy
		r.addLine("%-12s dir med/max=%.1f/%.1f deg, off med/max=%.2f/%.2f m, 6-AP MoLoc acc=%.1f%%",
			lv.name, dm, dmax, om, omax, acc*100)
		r.setMetric("acc_"+lv.name, acc)
		r.setMetric("dirmed_"+lv.name, dm)
	}
	return r, nil
}

// AblationCandidateK sweeps the candidate-set size k of Eq. 3. k = 1
// degenerates to plain nearest-neighbor fingerprinting; very large k
// admits distant twins into every evaluation.
func (c *Context) AblationCandidateK() (*Result, error) {
	r := &Result{ID: "abl-k", Title: "Ablation — candidate-set size k"}
	for _, n := range []int{4, 6} {
		dep, err := c.Deployment(n)
		if err != nil {
			return nil, err
		}
		line := ""
		for _, k := range []int{1, 2, 3, 5, 8, 12} {
			cfg := c.Sys.Config.MoLoc
			cfg.K = k
			ml, err := localizer.NewMoLoc(dep.FDB, c.Sys.MDB, cfg)
			if err != nil {
				return nil, err
			}
			acc := eval.Summarize(dep.Evaluate(ml)).Accuracy
			line += fmt.Sprintf(" k=%d:%.1f%%", k, acc*100)
			r.setMetric(metricName(fmt.Sprintf("acc_k%d", k), n), acc)
		}
		r.addLine("%d-AP:%s", n, line)
	}
	return r, nil
}

// AblationBaselines compares MoLoc against the accelerometer-assisted
// HMM of Liu et al. [23] (the related-work critique: prone to initial
// localization error) and a motion-only dead-reckoning tracker, on the
// 6-AP setting.
func (c *Context) AblationBaselines() (*Result, error) {
	r := &Result{ID: "abl-hmm", Title: "Ablation — MoLoc vs HMM and dead reckoning"}
	dep, err := c.Deployment(6)
	if err != nil {
		return nil, err
	}
	ml, err := dep.NewMoLoc()
	if err != nil {
		return nil, err
	}
	hmm, err := dep.NewHMM()
	if err != nil {
		return nil, err
	}
	dr, err := dep.NewDeadReckoning()
	if err != nil {
		return nil, err
	}
	mb, err := dep.NewModelBased()
	if err != nil {
		return nil, err
	}
	for _, lc := range []localizer.Localizer{dep.NewWiFi(), mb, hmm, dr, ml} {
		res := dep.Evaluate(lc)
		s := eval.Summarize(res)
		cv := eval.ConvergenceStats(res)
		r.addLine("%-15s acc=%5.1f%% mean=%.2fm EL=%.2f subsequent-acc=%.0f%%",
			lc.Name(), s.Accuracy*100, s.MeanErr, cv.MeanEL, cv.Accuracy*100)
		r.setMetric("acc_"+lc.Name(), s.Accuracy)
		r.setMetric("el_"+lc.Name(), cv.MeanEL)
	}
	return r, nil
}

// AblationMapFallback measures the map-seeding hybrid (DESIGN.md): with
// the fallback off, aisles that crowdsourcing left under-trained have
// no motion entry and MoLoc treats them as unreachable.
func (c *Context) AblationMapFallback() (*Result, error) {
	r := &Result{ID: "abl-fallback", Title: "Ablation — map fallback for untrained aisles"}
	original := c.Sys.Config.Builder
	defer func() {
		if err := c.Sys.RetrainMotionDB(original); err != nil {
			panic("exp: failed to restore motion DB: " + err.Error())
		}
	}()
	dep, err := c.Deployment(6)
	if err != nil {
		return nil, err
	}
	for _, on := range []bool{false, true} {
		cfg := original
		// Starve the motion database (as sparse crowdsourcing would) so
		// the fallback has aisles to seed: demand far more surviving
		// samples per pair than the training walks provide everywhere.
		cfg.MinSamples = 40
		cfg.MapFallback = on
		if err := c.Sys.RetrainMotionDB(cfg); err != nil {
			return nil, err
		}
		ml, err := dep.NewMoLoc()
		if err != nil {
			return nil, err
		}
		acc := eval.Summarize(dep.Evaluate(ml)).Accuracy
		name := "off"
		if on {
			name = "on"
		}
		r.addLine("fallback %-3s: entries=%d seeded=%d 6-AP MoLoc acc=%.1f%%",
			name, c.Sys.MDB.NumEntries(), c.Sys.MDBBuilder.MapSeeded(), acc*100)
		r.setMetric("acc_fallback_"+name, acc)
	}
	return r, nil
}

// AblationFingerprintType runs MoLoc over both candidate sources — the
// deterministic radio map of Eq. 1–4 and a Horus-style probabilistic
// map — supporting the paper's compatibility claim ("regardless of
// fingerprint types").
func (c *Context) AblationFingerprintType() (*Result, error) {
	r := &Result{ID: "abl-horus", Title: "Ablation — deterministic vs probabilistic fingerprinting"}
	dep, err := c.Deployment(6)
	if err != nil {
		return nil, err
	}
	ml, err := dep.NewMoLoc()
	if err != nil {
		return nil, err
	}
	mlh, err := dep.NewMoLocHorus()
	if err != nil {
		return nil, err
	}
	for _, row := range []struct {
		name string
		key  string
		loc  localizer.Localizer
	}{
		{"NN (Eq. 2)", "nn", dep.NewWiFi()},
		{"Horus ML", "horus", dep.NewHorus()},
		{"MoLoc on NN", "moloc_nn", ml},
		{"MoLoc on Horus", "moloc_horus", mlh},
	} {
		s := eval.Summarize(dep.Evaluate(row.loc))
		r.addLine("%-15s acc=%5.1f%% mean=%.2fm max=%.2fm",
			row.name, s.Accuracy*100, s.MeanErr, s.MaxErr)
		r.setMetric("acc_"+row.key, s.Accuracy)
	}
	return r, nil
}

// AblationGyro measures the gyroscope+Kalman heading refinement the
// paper names as future work: per-leg RLM direction error with the raw
// compass mean versus the gyro-fused track, and the downstream MoLoc
// accuracy when the whole pipeline (training and testing) uses fusion.
func (c *Context) AblationGyro() (*Result, error) {
	r := &Result{ID: "abl-gyro", Title: "Ablation — gyroscope-fused heading (paper future work)"}

	// Sensor-level: per-leg direction error under oracle placement
	// calibration, isolating the heading estimator.
	mcfgRaw := c.Sys.Config.Motion
	mcfgRaw.UseGyro = false
	mcfgGyro := c.Sys.Config.Motion
	mcfgGyro.UseGyro = true
	var rawErr, gyroErr stats.Online
	for _, tr := range c.Sys.TestTraces {
		var est motion.HeadingEstimator
		est.Observe(tr.Device.PlacementOffset+tr.Device.Bias, 0)
		stepLen := motion.StepLength(mcfgRaw, tr.User.HeightM, tr.User.WeightKg)
		for _, leg := range tr.Legs {
			gtDir := c.Sys.Plan.LocBearing(leg.From, leg.To)
			if rlm, ok := motion.Extract(mcfgRaw, leg.Samples, leg.T0, leg.T1, stepLen, &est); ok {
				rawErr.Add(geom.AbsAngleDiff(rlm.Dir, gtDir))
			}
			if rlm, ok := motion.Extract(mcfgGyro, leg.Samples, leg.T0, leg.T1, stepLen, &est); ok {
				gyroErr.Add(geom.AbsAngleDiff(rlm.Dir, gtDir))
			}
		}
	}
	r.addLine("per-leg direction error: compass=%.2f deg, gyro-fused=%.2f deg",
		rawErr.Mean(), gyroErr.Mean())
	r.setMetric("dir_err_compass_deg", rawErr.Mean())
	r.setMetric("dir_err_gyro_deg", gyroErr.Mean())

	// Pipeline-level: rebuild the whole system with fusion enabled.
	cfg := c.Sys.Config
	cfg.Motion.UseGyro = true
	fusedSys, err := core.Build(cfg)
	if err != nil {
		return nil, err
	}
	fusedDep, err := fusedSys.Deploy(fusedSys.AllAPs())
	if err != nil {
		return nil, err
	}
	fusedML, err := fusedDep.NewMoLoc()
	if err != nil {
		return nil, err
	}
	dep, err := c.Deployment(6)
	if err != nil {
		return nil, err
	}
	ml, err := dep.NewMoLoc()
	if err != nil {
		return nil, err
	}
	base := eval.Summarize(dep.Evaluate(ml))
	fused := eval.Summarize(fusedDep.Evaluate(fusedML))
	r.addLine("6-AP MoLoc accuracy: compass=%.1f%%, gyro-fused=%.1f%%",
		base.Accuracy*100, fused.Accuracy*100)
	r.setMetric("acc_compass", base.Accuracy)
	r.setMetric("acc_gyro", fused.Accuracy)
	return r, nil
}

// AblationParticle pits MoLoc against a 500-particle Monte-Carlo
// localizer over the same Gaussian radio map — the "delicate"
// alternative the paper says it deliberately avoids to save energy
// ("we make a compromise on the delicacy of the localization
// algorithm"). The experiment reports both accuracy and measured
// compute per localization, quantifying that trade-off.
func (c *Context) AblationParticle() (*Result, error) {
	r := &Result{ID: "abl-particle", Title: "Ablation — MoLoc vs particle filter (efficiency trade-off)"}
	dep, err := c.Deployment(6)
	if err != nil {
		return nil, err
	}
	ml, err := dep.NewMoLoc()
	if err != nil {
		return nil, err
	}
	pf, err := dep.NewParticle(localizer.NewParticleConfig())
	if err != nil {
		return nil, err
	}
	for _, lc := range []localizer.Localizer{ml, pf} {
		start := time.Now()
		res := dep.Evaluate(lc)
		elapsed := time.Since(start)
		n := 0
		for _, tr := range res {
			n += len(tr.Results)
		}
		s := eval.Summarize(res)
		perFix := elapsed / time.Duration(n)
		r.addLine("%-9s acc=%5.1f%% mean=%.2fm compute=%s/fix",
			lc.Name(), s.Accuracy*100, s.MeanErr, perFix.Round(time.Microsecond))
		r.setMetric("acc_"+lc.Name(), s.Accuracy)
		r.setMetric("us_per_fix_"+lc.Name(), float64(perFix.Microseconds()))
	}
	return r, nil
}

// AblationZeroSurvey builds the fingerprint database with no manual
// site survey (the WILL/LiFS/Zee direction the paper defers): label
// inference over unlabeled walks via Viterbi decoding on the walk
// graph plus EM refinement, then compares localization over the
// zero-effort radio map against the surveyed one.
func (c *Context) AblationZeroSurvey() (*Result, error) {
	r := &Result{ID: "abl-zerosurvey", Title: "Extension — zero-effort (crowdsourced) radio map"}
	walks, err := zerosurvey.PrepareWalks(c.Sys.TrainTraces, c.Sys.Survey.MotionEst,
		c.Sys.Config.Motion, stats.NewRNG(c.Sys.Config.Seed^0x2e20))
	if err != nil {
		return nil, err
	}
	res, err := zerosurvey.Infer(c.Sys.Plan, c.Sys.Graph, walks, zerosurvey.NewConfig())
	if err != nil {
		return nil, err
	}
	for i, acc := range res.LabelAccuracy {
		r.addLine("EM iteration %d: label accuracy %.1f%% (chance %.1f%%)",
			i, acc*100, 100.0/float64(c.Sys.Plan.NumLocs()))
		r.setMetric(fmt.Sprintf("label_acc_iter%d", i), acc)
	}
	zeroDB, holes, err := zerosurvey.BuildRadioMap(c.Sys.Plan, res,
		fingerprint.Euclidean{}, c.Sys.Model.NumAPs())
	if err != nil {
		return nil, err
	}
	r.addLine("radio map built with %d unvisited locations filled from neighbors", holes)

	dep, err := c.Deployment(6)
	if err != nil {
		return nil, err
	}
	surveyedWiFi := eval.Summarize(dep.Evaluate(dep.NewWiFi()))
	ml, err := dep.NewMoLoc()
	if err != nil {
		return nil, err
	}
	surveyedMoLoc := eval.Summarize(dep.Evaluate(ml))

	zeroWiFi := eval.Summarize(eval.Run(c.Sys.Plan, localizer.NewWiFiNN(zeroDB), dep.TestData))
	zeroML, err := localizer.NewMoLoc(zeroDB, c.Sys.MDB, c.Sys.Config.MoLoc)
	if err != nil {
		return nil, err
	}
	zeroMoLoc := eval.Summarize(eval.Run(c.Sys.Plan, zeroML, dep.TestData))
	r.addLine("surveyed map:    WiFi acc=%.1f%%, MoLoc acc=%.1f%%",
		surveyedWiFi.Accuracy*100, surveyedMoLoc.Accuracy*100)
	r.addLine("zero-effort map: WiFi acc=%.1f%%, MoLoc acc=%.1f%%",
		zeroWiFi.Accuracy*100, zeroMoLoc.Accuracy*100)
	r.setMetric("wifi_surveyed", surveyedWiFi.Accuracy)
	r.setMetric("wifi_zero", zeroWiFi.Accuracy)
	r.setMetric("moloc_surveyed", surveyedMoLoc.Accuracy)
	r.setMetric("moloc_zero", zeroMoLoc.Accuracy)
	return r, nil
}

// ExtensionMall reruns the headline comparison on a second environment
// — the two-corridor mall plan with 31 locations and 8 APs — showing
// the reproduction's conclusions are not an artifact of the office
// hall's geometry.
func (c *Context) ExtensionMall() (*Result, error) {
	r := &Result{ID: "ext-mall", Title: "Extension — generalization to the mall plan"}
	// Inherit the context's scale (trace counts, noise) so test runs
	// stay fast and the default run matches the other experiments.
	cfg := c.Sys.Config
	cfg.Plan = floorplan.Mall()
	cfg.AdjDist = floorplan.MallAdjDist
	sys, err := core.Build(cfg)
	if err != nil {
		return nil, err
	}
	for _, n := range []int{4, 8} {
		dep, err := sys.Deploy(sys.AllAPs()[:n])
		if err != nil {
			return nil, err
		}
		ml, err := dep.NewMoLoc()
		if err != nil {
			return nil, err
		}
		w := eval.Summarize(dep.Evaluate(dep.NewWiFi()))
		m := eval.Summarize(dep.Evaluate(ml))
		r.addLine("%d-AP: WiFi acc=%.1f%%/%.2fm, MoLoc acc=%.1f%%/%.2fm",
			n, w.Accuracy*100, w.MeanErr, m.Accuracy*100, m.MeanErr)
		r.setMetric(metricName("wifi_acc", n), w.Accuracy)
		r.setMetric(metricName("moloc_acc", n), m.Accuracy)
	}
	return r, nil
}

// AblationUserDiversity tests cross-gait generalization of the motion
// database: the paper recruits four walkers with diverse height and
// speed. Training the motion database on a single walker's traces and
// testing against everyone shows whether the step-length model and CSC
// wash out individual gait.
func (c *Context) AblationUserDiversity() (*Result, error) {
	r := &Result{ID: "abl-users", Title: "Ablation — motion DB trained on one walker vs four"}
	dep, err := c.Deployment(6)
	if err != nil {
		return nil, err
	}
	fdb, err := c.Sys.Survey.BuildDB(fingerprint.Euclidean{}, c.Sys.Model.NumAPs())
	if err != nil {
		return nil, err
	}
	pipe, err := crowd.NewPipeline(c.Sys.Plan, fdb, c.Sys.Survey.MotionEst, c.Sys.Config.Motion)
	if err != nil {
		return nil, err
	}
	users := c.Sys.Config.Users
	evalWith := func(train []*trace.Trace, label string) error {
		mdb, _, err := crowd.BuildMotionDB(pipe, c.Sys.Graph, train,
			c.Sys.Config.Builder, stats.NewRNG(c.Sys.Config.Seed^0x05e2))
		if err != nil {
			return err
		}
		ml, err := localizer.NewMoLoc(dep.FDB, mdb, c.Sys.Config.MoLoc)
		if err != nil {
			return err
		}
		acc := eval.Summarize(dep.Evaluate(ml)).Accuracy
		r.addLine("%-22s %3d traces: MoLoc acc=%.1f%%", label, len(train), acc*100)
		r.setMetric("acc_"+label, acc)
		return nil
	}
	// Single-walker training set (same volume as one user contributes).
	var solo []*trace.Trace
	for _, tr := range c.Sys.TrainTraces {
		if tr.User.Name == users[0].Name {
			solo = append(solo, tr)
		}
	}
	if err := evalWith(solo, "one-walker"); err != nil {
		return nil, err
	}
	if err := evalWith(c.Sys.TrainTraces, "all-walkers"); err != nil {
		return nil, err
	}
	return r, nil
}

// AblationSurveyDensity sweeps the number of site-survey samples per
// location used to build the radio map — the manual effort knob the
// crowdsourcing literature attacks. Fewer samples mean a noisier map;
// MoLoc's motion evidence compensates for part of it.
func (c *Context) AblationSurveyDensity() (*Result, error) {
	r := &Result{ID: "abl-survey", Title: "Ablation — site-survey samples per location"}
	dep, err := c.Deployment(6)
	if err != nil {
		return nil, err
	}
	full := c.Sys.Survey.Train
	for _, nSamples := range []int{3, 10, 40} {
		trimmed := make([][]fingerprint.Fingerprint, len(full))
		for i, scans := range full {
			k := nSamples
			if k > len(scans) {
				k = len(scans)
			}
			trimmed[i] = scans[:k]
		}
		fdb, err := fingerprint.NewDB(fingerprint.Euclidean{}, c.Sys.Model.NumAPs(), trimmed)
		if err != nil {
			return nil, err
		}
		ml, err := localizer.NewMoLoc(fdb, c.Sys.MDB, c.Sys.Config.MoLoc)
		if err != nil {
			return nil, err
		}
		w := eval.Summarize(eval.Run(c.Sys.Plan, localizer.NewWiFiNN(fdb), dep.TestData))
		m := eval.Summarize(eval.Run(c.Sys.Plan, ml, dep.TestData))
		r.addLine("%2d samples/location: WiFi acc=%.1f%%, MoLoc acc=%.1f%%",
			nSamples, w.Accuracy*100, m.Accuracy*100)
		r.setMetric(fmt.Sprintf("wifi_s%d", nSamples), w.Accuracy)
		r.setMetric(fmt.Sprintf("moloc_s%d", nSamples), m.Accuracy)
	}
	return r, nil
}
