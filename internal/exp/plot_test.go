package exp

import (
	"strings"
	"testing"

	"moloc/internal/stats"
)

func TestAsciiCDF(t *testing.T) {
	a := stats.NewCDF([]float64{0, 0, 0, 1, 2, 3, 4, 8})
	b := stats.NewCDF([]float64{0, 2, 4, 6, 8, 10, 12, 16})
	lines := asciiCDF([]cdfSeries{
		{name: "fast", mark: 'f', cdf: a},
		{name: "slow", mark: 's', cdf: b},
	}, 40, 8)
	if len(lines) != 11 { // 8 rows + axis + labels + legend
		t.Fatalf("lines = %d", len(lines))
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"1.0 |", "0.0 |", "f=fast", "s=slow", "16m"} {
		if !strings.Contains(joined, want) {
			t.Errorf("chart missing %q:\n%s", want, joined)
		}
	}
	// Both marks must appear in the body.
	if !strings.ContainsRune(joined, 'f') || !strings.ContainsRune(joined, 's') {
		t.Error("series marks missing")
	}
	// Degenerate sizes clamp instead of exploding.
	tiny := asciiCDF([]cdfSeries{{name: "x", mark: 'x', cdf: a}}, 1, 1)
	if len(tiny) == 0 {
		t.Error("tiny chart should still render")
	}
	// All-zero CDF does not divide by zero.
	zero := stats.NewCDF([]float64{0, 0})
	if got := asciiCDF([]cdfSeries{{name: "z", mark: 'z', cdf: zero}}, 20, 4); len(got) == 0 {
		t.Error("zero CDF should render")
	}
}
