package exp

import (
	"fmt"
	"math"
	"strings"

	"moloc/internal/stats"
)

// asciiCDF renders one or more empirical CDFs as a small text chart,
// the closest a terminal gets to the paper's Figs. 6–8. Each series is
// drawn with its own rune; later series overwrite earlier ones where
// they coincide.
func asciiCDF(series []cdfSeries, width, height int) []string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	maxX := 0.0
	for _, s := range series {
		maxX = math.Max(maxX, s.cdf.Max())
	}
	if maxX <= 0 {
		maxX = 1
	}

	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	for _, s := range series {
		for col := 0; col < width; col++ {
			x := maxX * float64(col) / float64(width-1)
			p := s.cdf.At(x)
			row := int(math.Round(float64(height-1) * (1 - p)))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = s.mark
		}
	}

	lines := make([]string, 0, height+2)
	for r, row := range grid {
		label := "      "
		switch r {
		case 0:
			label = "1.0 | "
		case height - 1:
			label = "0.0 | "
		default:
			label = "    | "
		}
		lines = append(lines, label+string(row))
	}
	lines = append(lines, "    +"+strings.Repeat("-", width))
	axis := fmt.Sprintf("     0m%sm", strings.Repeat(" ", width-7)+fmt.Sprintf("%.0f", maxX))
	lines = append(lines, axis)
	var legend []string
	for _, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", s.mark, s.name))
	}
	lines = append(lines, "     "+strings.Join(legend, "  "))
	return lines
}

// cdfSeries pairs a CDF with its chart mark and legend name.
type cdfSeries struct {
	name string
	mark rune
	cdf  *stats.CDF
}
