package exp

import (
	"fmt"

	"moloc/internal/crowd"
	"moloc/internal/eval"
	"moloc/internal/fingerprint"
	"moloc/internal/floorplan"
	"moloc/internal/geom"
	"moloc/internal/localizer"
	"moloc/internal/motion"
	"moloc/internal/rf"
	"moloc/internal/sensors"
	"moloc/internal/stats"
	"moloc/internal/trace"
	"moloc/internal/tracker"
)

// ExtensionInterval sweeps the localization interval of the online
// tracker (the paper fixes it at 3 s without justification): shorter
// intervals leave too few steps for a reliable RLM, longer ones act on
// stale fingerprints and blur several aisles into one measurement. The
// metric is the continuous-space tracking error against the walker's
// interpolated true position.
func (c *Context) ExtensionInterval() (*Result, error) {
	r := &Result{ID: "ext-interval", Title: "Extension — localization-interval sweep (online tracker)"}

	fdb, err := c.Sys.Survey.BuildDB(fingerprint.Euclidean{}, c.Sys.Model.NumAPs())
	if err != nil {
		return nil, err
	}
	// Fresh pause-free walks so the true position interpolates linearly.
	tcfg := c.Sys.Config.Trace
	tcfg.PauseProb = 0
	sg, err := sensors.NewGenerator(c.Sys.Config.Sensors)
	if err != nil {
		return nil, err
	}
	tg, err := trace.NewGenerator(c.Sys.Plan, c.Sys.Graph, sg, c.Sys.Config.Motion, tcfg)
	if err != nil {
		return nil, err
	}
	walkRNG := stats.NewRNG(c.Sys.Config.Seed ^ 0x171)
	users := c.Sys.Config.Users
	walks := tg.GenerateBatch(users, 10, walkRNG)

	for _, interval := range []float64{1.5, 3, 6} {
		var trackErr stats.Online
		scanRNG := stats.NewRNG(c.Sys.Config.Seed ^ 0x172)
		for wi, walk := range walks {
			user := users[wi%len(users)]
			stepLen := motion.StepLength(c.Sys.Config.Motion, user.HeightM, user.WeightKg)
			cfg := tracker.NewConfig(stepLen)
			cfg.IntervalSec = interval
			cfg.Motion = c.Sys.Config.Motion
			cfg.MoLoc = c.Sys.Config.MoLoc
			tk, err := tracker.New(c.Sys.Plan, fdb, c.Sys.MDB, cfg)
			if err != nil {
				return nil, err
			}
			truePos := func(ts float64) geom.Point {
				for _, leg := range walk.Legs {
					if ts <= leg.T1 {
						frac := (ts - leg.T0) / (leg.T1 - leg.T0)
						return c.Sys.Plan.LocPos(leg.From).Lerp(c.Sys.Plan.LocPos(leg.To), frac)
					}
				}
				return c.Sys.Plan.LocPos(walk.Legs[len(walk.Legs)-1].To)
			}
			nextScan := 0.0
			for _, leg := range walk.Legs {
				for _, s := range leg.Samples {
					tk.AddIMU(s)
					if s.T >= nextScan {
						tk.AddScan(s.T, c.Sys.Model.Sample(truePos(s.T), scanRNG))
						nextScan = s.T + 0.5
					}
					if fix, ok := tk.Tick(s.T); ok {
						trackErr.Add(c.Sys.Plan.LocPos(fix.Loc).Dist(truePos(fix.T)))
					}
				}
			}
		}
		r.addLine("interval %.1fs: %d fixes, mean tracking error %.2fm",
			interval, trackErr.N(), trackErr.Mean())
		r.setMetric(fmt.Sprintf("err_m_%.1fs", interval), trackErr.Mean())
	}
	return r, nil
}

// ExtensionPeerAssist reproduces the comparison the paper's related
// work implies (Liu et al. [12]): groups of co-present peers with
// acoustic-style pairwise ranging jointly localize, pruning twins by
// mutual distance constraints. Peer assistance does help — but it needs
// peers; MoLoc reaches the same regime self-contained, which is the
// paper's argument.
func (c *Context) ExtensionPeerAssist() (*Result, error) {
	r := &Result{ID: "ext-peer", Title: "Extension — peer-assisted baseline (Liu et al. [12] style)"}
	dep, err := c.Deployment(6)
	if err != nil {
		return nil, err
	}
	pa, err := localizer.NewPeerAssist(c.Sys.Plan, dep.FDB, localizer.NewPeerConfig())
	if err != nil {
		return nil, err
	}

	rng := stats.NewRNG(c.Sys.Config.Seed ^ 0x9ee5)
	const (
		groups    = 150
		groupSize = 3
	)
	soloRight, peerRight, total := 0, 0, 0
	for g := 0; g < groups; g++ {
		// Three peers at distinct random reference locations, each with
		// a held-out test scan, with noisy pairwise ranges.
		locs := rng.Perm(c.Sys.Plan.NumLocs())[:groupSize]
		pg := localizer.PeerGroup{Ranges: make([][]float64, groupSize)}
		for i := range locs {
			locs[i]++
			pool := c.Sys.Survey.Test[locs[i]-1]
			pg.FPs = append(pg.FPs, pool[rng.Intn(len(pool))])
		}
		for i := range locs {
			pg.Ranges[i] = make([]float64, groupSize)
			for j := range locs {
				if i != j {
					pg.Ranges[i][j] = c.Sys.Plan.LocDist(locs[i], locs[j]) + rng.Norm(0, 0.4)
				}
			}
		}
		got, err := pa.LocalizeGroup(pg)
		if err != nil {
			return nil, err
		}
		for i := range locs {
			total++
			if dep.FDB.Nearest(pg.FPs[i]) == locs[i] {
				soloRight++
			}
			if got[i] == locs[i] {
				peerRight++
			}
		}
	}
	solo := float64(soloRight) / float64(total)
	peer := float64(peerRight) / float64(total)
	ml, err := dep.NewMoLoc()
	if err != nil {
		return nil, err
	}
	molocAcc := eval.Summarize(dep.Evaluate(ml)).Accuracy
	r.addLine("solo WiFi NN:            acc=%.1f%%", solo*100)
	r.addLine("peer-assisted (3 peers): acc=%.1f%% (needs co-present peers + ranging)", peer*100)
	r.addLine("MoLoc (self-contained):  acc=%.1f%% (sensors the user already carries)", molocAcc*100)
	r.setMetric("acc_solo", solo)
	r.setMetric("acc_peer", peer)
	r.setMetric("acc_moloc", molocAcc)
	return r, nil
}

// ExtensionAging models radio-map aging: after the site survey, every
// AP's transmit power drifts by a few dB (firmware updates, hardware
// replacement, seasonal attenuation). Stale radio maps are the chronic
// operational pain of fingerprinting systems; motion assistance absorbs
// a good part of it.
func (c *Context) ExtensionAging() (*Result, error) {
	r := &Result{ID: "ext-aging", Title: "Extension — radio-map aging (per-AP power drift)"}
	fdb, err := c.Sys.Survey.BuildDB(fingerprint.Euclidean{}, c.Sys.Model.NumAPs())
	if err != nil {
		return nil, err
	}

	for _, driftDB := range []float64{0, 2, 4} {
		// A drifted copy of the world: per-AP transmit power offsets of
		// the given magnitude, alternating sign.
		plan := floorplan.OfficeHall()
		params := c.Sys.Config.RF
		for i := range plan.APs {
			sign := 1.0
			if i%2 == 1 {
				sign = -1
			}
			plan.APs[i].TxPower = params.RefPower + sign*driftDB
		}
		drifted, err := rf.NewModel(plan, params, stats.HashSeed("rf")^c.Sys.Config.Seed)
		if err != nil {
			return nil, err
		}
		// Fresh test-time fingerprints from the drifted world.
		rng := stats.NewRNG(c.Sys.Config.Seed ^ 0xa9e)
		pool := make(crowd.FPPool, plan.NumLocs())
		for loc := 1; loc <= plan.NumLocs(); loc++ {
			for k := 0; k < 10; k++ {
				pool[loc-1] = append(pool[loc-1],
					fingerprint.Fingerprint(drifted.Sample(plan.LocPos(loc), rng)))
			}
		}
		pipe, err := crowd.NewPipeline(c.Sys.Plan, fdb, pool, c.Sys.Config.Motion)
		if err != nil {
			return nil, err
		}
		var data []*crowd.TraceData
		for _, tr := range c.Sys.TestTraces {
			data = append(data, pipe.Process(tr, rng))
		}
		ml, err := localizer.NewMoLoc(fdb, c.Sys.MDB, c.Sys.Config.MoLoc)
		if err != nil {
			return nil, err
		}
		w := eval.Summarize(eval.Run(c.Sys.Plan, localizer.NewWiFiNN(fdb), data))
		m := eval.Summarize(eval.Run(c.Sys.Plan, ml, data))
		r.addLine("drift ±%.0fdB: WiFi acc=%.1f%%, MoLoc acc=%.1f%%",
			driftDB, w.Accuracy*100, m.Accuracy*100)
		r.setMetric(fmt.Sprintf("wifi_drift%.0f", driftDB), w.Accuracy)
		r.setMetric(fmt.Sprintf("moloc_drift%.0f", driftDB), m.Accuracy)
	}
	return r, nil
}

// ExtensionSelfHealing combines the aging scenario with a rolling radio
// map: MoLoc's confident fixes feed their scans back into the believed
// location's buffer, and the radio map is rebuilt periodically. Over
// enough serving traffic, the drifted map heals itself without a
// re-survey.
func (c *Context) ExtensionSelfHealing() (*Result, error) {
	r := &Result{ID: "ext-healing", Title: "Extension — self-healing radio map under drift"}

	// Stale surveyed map, drifted world (the ext-aging worst case).
	fdb, err := c.Sys.Survey.BuildDB(fingerprint.Euclidean{}, c.Sys.Model.NumAPs())
	if err != nil {
		return nil, err
	}
	plan := floorplan.OfficeHall()
	params := c.Sys.Config.RF
	for i := range plan.APs {
		sign := 1.0
		if i%2 == 1 {
			sign = -1
		}
		plan.APs[i].TxPower = params.RefPower + sign*6
	}
	drifted, err := rf.NewModel(plan, params, stats.HashSeed("rf")^c.Sys.Config.Seed)
	if err != nil {
		return nil, err
	}
	rng := stats.NewRNG(c.Sys.Config.Seed ^ 0x4ea1)
	pool := make(crowd.FPPool, plan.NumLocs())
	for loc := 1; loc <= plan.NumLocs(); loc++ {
		for k := 0; k < 10; k++ {
			pool[loc-1] = append(pool[loc-1],
				fingerprint.Fingerprint(drifted.Sample(plan.LocPos(loc), rng)))
		}
	}

	// Serving traffic: replay the training walks as anonymous users.
	pipe, err := crowd.NewPipeline(c.Sys.Plan, fdb, pool, c.Sys.Config.Motion)
	if err != nil {
		return nil, err
	}
	rolling, err := fingerprint.NewRollingMap(fdb, 12)
	if err != nil {
		return nil, err
	}
	const (
		confidence   = 0.8
		rebuildEvery = 10
	)
	current := fdb
	var windows []float64 // accuracy per 30-walk window
	right, total := 0, 0
	flush := func() {
		if total > 0 {
			windows = append(windows, float64(right)/float64(total))
		}
		right, total = 0, 0
	}
	for wi, tr := range c.Sys.TrainTraces {
		td := pipe.Process(tr, rng)
		ml, err := localizer.NewMoLoc(current, c.Sys.MDB, c.Sys.Config.MoLoc)
		if err != nil {
			return nil, err
		}
		est := ml.Localize(localizer.Observation{FP: td.StartFP})
		if est == td.StartTrue {
			right++
		}
		total++
		for _, ld := range td.Legs {
			est = ml.Localize(localizer.Observation{FP: ld.FP, Motion: ld.RLM})
			if est == ld.TrueTo {
				right++
			}
			total++
			// Confident fixes refresh the believed location's buffer.
			cands := ml.Candidates()
			if len(cands) > 0 && cands[0].Prob >= confidence {
				if err := rolling.Add(est, ld.FP); err != nil {
					return nil, err
				}
			}
		}
		if (wi+1)%rebuildEvery == 0 {
			if current, err = rolling.Snapshot(fingerprint.Euclidean{}); err != nil {
				return nil, err
			}
		}
		if (wi+1)%30 == 0 {
			flush()
		}
	}
	flush()
	for i, acc := range windows {
		r.addLine("walks %3d-%3d: MoLoc acc=%.1f%%", i*30+1, (i+1)*30, acc*100)
		r.setMetric(fmt.Sprintf("acc_window%d", i), acc)
	}
	if len(windows) >= 2 {
		first, last := windows[0], windows[len(windows)-1]
		r.addLine("healing gain: %.1f accuracy points (stale %.1f%% -> healed %.1f%%)",
			(last-first)*100, first*100, last*100)
		r.setMetric("healing_gain", last-first)
	}
	return r, nil
}
