// Package sensors simulates the phone sensors MoLoc reads: the
// accelerometer, whose magnitude shows the repetitive walking pattern of
// the paper's Fig. 4, and the digital compass, whose readings combine
// the true motion direction with a per-trace placement offset (how the
// phone is held), a per-device bias, and per-sample noise.
//
// The simulator produces the same 10 Hz sample streams the paper's
// prototype records, so the step detection, continuous step counting,
// and heading estimation in package motion run unchanged against them.
package sensors

import (
	"fmt"
	"math"

	"moloc/internal/geom"
	"moloc/internal/stats"
)

// Gravity is the accelerometer magnitude at rest, m/s^2.
const Gravity = 9.81

// Params are the sensor-model constants.
type Params struct {
	// SampleRate is the IMU sampling frequency in Hz (10 in the paper).
	SampleRate float64
	// AccelAmp is the dominant oscillation amplitude of the walking
	// acceleration magnitude, m/s^2. Fig. 4 shows swings of roughly
	// +/- 4 m/s^2 around gravity.
	AccelAmp float64
	// AccelHarmonic is the relative amplitude of the second harmonic,
	// which makes the waveform asymmetric like real gait.
	AccelHarmonic float64
	// AccelNoise is the white-noise standard deviation on the
	// accelerometer magnitude, m/s^2.
	AccelNoise float64
	// CompassNoise is the per-sample heading noise standard deviation in
	// degrees.
	CompassNoise float64
	// DeviceBiasSigma is the standard deviation of the per-device
	// constant compass bias in degrees. The paper observes 10-20 degree
	// bias errors when directions are reversed; a constant per-device
	// bias produces exactly that signature after RLM mirroring.
	DeviceBiasSigma float64
	// SwayAmp is the amplitude in degrees of the rhythmic heading sway
	// synchronized with steps.
	SwayAmp float64
	// MagDistortAmp and MagDistortAmp2 are the amplitudes in degrees of
	// the heading-dependent magnetic distortion (hard/soft-iron effects
	// of the building and the device): a first and second harmonic of
	// the true heading, shared by every device in the environment. This
	// is the systematic error that survives crowdsourced averaging and
	// gives the motion database the residual direction errors of
	// Fig. 6(a); the paper observes 10-20 degree biases when directions
	// are reversed, the signature of exactly such heading-dependent
	// deviation.
	MagDistortAmp  float64
	MagDistortAmp2 float64
	// MagDistortPhase and MagDistortPhase2 are the harmonic phases in
	// degrees.
	MagDistortPhase  float64
	MagDistortPhase2 float64
	// GyroNoise is the per-sample angular-rate noise standard deviation
	// in degrees/second. The gyroscope is the paper's named future-work
	// sensor ("highly accurate direction estimation by using gyroscope
	// and advanced filtering techniques such as the Kalman filter").
	GyroNoise float64
	// GyroBiasSigma is the standard deviation of the per-device constant
	// gyroscope bias in degrees/second; MEMS gyros drift.
	GyroBiasSigma float64
}

// NewParams returns defaults matching the paper's prototype: 10 Hz
// sampling and noise levels that keep motion-DB errors within the
// bounds of Fig. 6 after sanitation.
func NewParams() Params {
	return Params{
		SampleRate:       10,
		AccelAmp:         3.5,
		AccelHarmonic:    0.35,
		AccelNoise:       0.35,
		CompassNoise:     8,
		DeviceBiasSigma:  4,
		SwayAmp:          4,
		MagDistortAmp:    12,
		MagDistortAmp2:   7,
		MagDistortPhase:  55,
		MagDistortPhase2: 160,
		GyroNoise:        1.5,
		GyroBiasSigma:    0.3,
	}
}

// Validate rejects unusable sensor parameters.
func (p Params) Validate() error {
	if p.SampleRate <= 0 {
		return fmt.Errorf("sensors: sample rate must be positive, got %g", p.SampleRate)
	}
	if p.AccelAmp < 0 || p.AccelNoise < 0 || p.CompassNoise < 0 ||
		p.DeviceBiasSigma < 0 || p.GyroNoise < 0 || p.GyroBiasSigma < 0 {
		return fmt.Errorf("sensors: negative noise/amplitude parameter")
	}
	return nil
}

// Sample is one IMU reading: a timestamp in seconds, the accelerometer
// magnitude in m/s^2, and the compass reading in degrees [0, 360).
type Sample struct {
	T       float64 `json:"t"`
	Accel   float64 `json:"accel"`
	Compass float64 `json:"compass"`
	// Gyro is the angular rate around the vertical axis in
	// degrees/second (positive clockwise, matching compass bearings).
	Gyro float64 `json:"gyro"`
}

// Device models one phone carried on one walk: its constant compass
// bias and the placement offset between phone orientation and motion
// direction (the paper's handheld-vs-calling distinction).
type Device struct {
	// Bias is the constant compass bias in degrees.
	Bias float64 `json:"bias"`
	// PlacementOffset is the constant angle in degrees between the
	// phone's orientation (what the compass reports) and the user's
	// motion direction. Zee-style heading estimation recovers it.
	PlacementOffset float64 `json:"placement_offset"`
	// GyroBias is the constant angular-rate bias in degrees/second.
	GyroBias float64 `json:"gyro_bias"`
}

// MagDistortion returns the systematic compass deviation in degrees for
// a true heading, per the configured harmonics.
func (p Params) MagDistortion(headingDeg float64) float64 {
	h := geom.DegToRad(headingDeg)
	return p.MagDistortAmp*math.Sin(h+geom.DegToRad(p.MagDistortPhase)) +
		p.MagDistortAmp2*math.Sin(2*h+geom.DegToRad(p.MagDistortPhase2))
}

// NewDevice draws a device for one trace: bias from the configured
// sigma, placement offset uniform over a realistic handheld range.
func NewDevice(p Params, rng *stats.RNG) Device {
	return Device{
		Bias:            rng.Norm(0, p.DeviceBiasSigma),
		PlacementOffset: rng.Uniform(-30, 30),
		GyroBias:        rng.Norm(0, p.GyroBiasSigma),
	}
}

// Generator synthesizes IMU sample streams.
type Generator struct {
	params Params
}

// NewGenerator builds a generator, validating the parameters.
func NewGenerator(p Params) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Generator{params: p}, nil
}

// Params returns the generator's parameters.
func (g *Generator) Params() Params { return g.params }

// Walk generates the IMU stream for walking at a constant true heading
// (degrees) with the given step frequency (Hz), from time t0 for the
// given duration in seconds. stepPhase is the gait phase in radians at
// t0 and is returned advanced past the generated interval, so
// consecutive legs form one continuous gait. Samples are appended to
// dst and returned.
func (g *Generator) Walk(dst []Sample, t0, duration, stepFreq, headingDeg float64,
	dev Device, stepPhase float64, rng *stats.RNG) ([]Sample, float64) {

	dt := 1 / g.params.SampleRate
	n := int(duration * g.params.SampleRate)
	for i := 0; i < n; i++ {
		t := t0 + float64(i)*dt
		phase := stepPhase + 2*math.Pi*stepFreq*float64(i)*dt
		accel := Gravity +
			g.params.AccelAmp*math.Sin(phase) +
			g.params.AccelAmp*g.params.AccelHarmonic*math.Sin(2*phase+0.7) +
			rng.Norm(0, g.params.AccelNoise)
		sway := g.params.SwayAmp * math.Sin(phase/2)
		compass := geom.NormalizeDeg(
			headingDeg + g.params.MagDistortion(headingDeg) +
				dev.PlacementOffset + dev.Bias + sway +
				rng.Norm(0, g.params.CompassNoise))
		// The true angular rate while walking a straight leg is the sway
		// derivative: d/dt [SwayAmp*sin(phase/2)] with phase advancing at
		// 2*pi*stepFreq rad/s.
		swayRate := g.params.SwayAmp * math.Cos(phase/2) * math.Pi * stepFreq
		gyro := swayRate + dev.GyroBias + rng.Norm(0, g.params.GyroNoise)
		dst = append(dst, Sample{T: t, Accel: accel, Compass: compass, Gyro: gyro})
	}
	return dst, stepPhase + 2*math.Pi*stepFreq*float64(n)*dt
}

// Stand generates the IMU stream for standing still: gravity plus
// noise on the accelerometer, and a stationary (noisy) compass heading.
func (g *Generator) Stand(dst []Sample, t0, duration, headingDeg float64,
	dev Device, rng *stats.RNG) []Sample {

	dt := 1 / g.params.SampleRate
	n := int(duration * g.params.SampleRate)
	for i := 0; i < n; i++ {
		t := t0 + float64(i)*dt
		accel := Gravity + rng.Norm(0, g.params.AccelNoise)
		compass := geom.NormalizeDeg(
			headingDeg + g.params.MagDistortion(headingDeg) +
				dev.PlacementOffset + dev.Bias +
				rng.Norm(0, g.params.CompassNoise))
		gyro := dev.GyroBias + rng.Norm(0, g.params.GyroNoise)
		dst = append(dst, Sample{T: t, Accel: accel, Compass: compass, Gyro: gyro})
	}
	return dst
}
