package sensors

import (
	"math"
	"testing"

	"moloc/internal/stats"
)

func mustGen(t *testing.T) *Generator {
	t.Helper()
	g, err := NewGenerator(NewParams())
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	return g
}

func TestParamsValidate(t *testing.T) {
	if err := NewParams().Validate(); err != nil {
		t.Errorf("defaults should validate: %v", err)
	}
	p := NewParams()
	p.SampleRate = 0
	if err := p.Validate(); err == nil {
		t.Error("zero sample rate should fail")
	}
	p = NewParams()
	p.CompassNoise = -1
	if err := p.Validate(); err == nil {
		t.Error("negative noise should fail")
	}
	if _, err := NewGenerator(p); err == nil {
		t.Error("NewGenerator should reject invalid params")
	}
}

func TestWalkSampleCountAndTiming(t *testing.T) {
	g := mustGen(t)
	s, _ := g.Walk(nil, 2, 3, 1.8, 90, Device{}, 0, stats.NewRNG(1))
	if len(s) != 30 {
		t.Fatalf("3 s at 10 Hz should give 30 samples, got %d", len(s))
	}
	if s[0].T != 2 {
		t.Errorf("first timestamp = %v, want 2", s[0].T)
	}
	if math.Abs(s[len(s)-1].T-(2+2.9)) > 1e-9 {
		t.Errorf("last timestamp = %v, want 4.9", s[len(s)-1].T)
	}
	for i := 1; i < len(s); i++ {
		if math.Abs((s[i].T-s[i-1].T)-0.1) > 1e-9 {
			t.Fatal("timestamps must step by 0.1 s")
		}
	}
}

func TestWalkAccelOscillation(t *testing.T) {
	g := mustGen(t)
	s, _ := g.Walk(nil, 0, 5, 1.8, 0, Device{}, 0, stats.NewRNG(2))
	var o stats.Online
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, smp := range s {
		o.Add(smp.Accel)
		lo = math.Min(lo, smp.Accel)
		hi = math.Max(hi, smp.Accel)
	}
	// Fig. 4: magnitude oscillates several m/s^2 around gravity.
	if math.Abs(o.Mean()-Gravity) > 1 {
		t.Errorf("mean accel = %v, want ~%v", o.Mean(), Gravity)
	}
	if hi-lo < 4 {
		t.Errorf("oscillation range = %v, want > 4 m/s^2", hi-lo)
	}
	if o.StdDev() < 1 {
		t.Errorf("walking accel std = %v, want > 1", o.StdDev())
	}
}

func TestStandIsQuiet(t *testing.T) {
	g := mustGen(t)
	s := g.Stand(nil, 0, 5, 0, Device{}, stats.NewRNG(3))
	var o stats.Online
	for _, smp := range s {
		o.Add(smp.Accel)
	}
	if o.StdDev() > 0.8 {
		t.Errorf("standing accel std = %v, too noisy", o.StdDev())
	}
}

func TestCompassOffsets(t *testing.T) {
	p := NewParams()
	p.CompassNoise = 0
	p.SwayAmp = 0
	p.MagDistortAmp = 0
	p.MagDistortAmp2 = 0
	g, err := NewGenerator(p)
	if err != nil {
		t.Fatal(err)
	}
	dev := Device{Bias: 5, PlacementOffset: 20}
	s, _ := g.Walk(nil, 0, 2, 1.8, 90, dev, 0, stats.NewRNG(1))
	for _, smp := range s {
		if math.Abs(smp.Compass-115) > 1e-9 {
			t.Fatalf("compass = %v, want exactly 115", smp.Compass)
		}
	}
}

func TestCompassWraps(t *testing.T) {
	g := mustGen(t)
	s, _ := g.Walk(nil, 0, 3, 1.8, 355, Device{PlacementOffset: 20}, 0, stats.NewRNG(4))
	for _, smp := range s {
		if smp.Compass < 0 || smp.Compass >= 360 {
			t.Fatalf("compass %v out of [0,360)", smp.Compass)
		}
	}
}

func TestWalkPhaseContinuity(t *testing.T) {
	// Two consecutive legs must form one continuous gait: the returned
	// phase feeds the next call.
	p := NewParams()
	p.AccelNoise = 0
	p.CompassNoise = 0
	g, err := NewGenerator(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(1)
	s1, phase := g.Walk(nil, 0, 1.5, 2.0, 0, Device{}, 0, rng)
	s2, _ := g.Walk(nil, 1.5, 1.5, 2.0, 0, Device{}, phase, rng)
	// One long walk for reference.
	ref, _ := g.Walk(nil, 0, 3, 2.0, 0, Device{}, 0, stats.NewRNG(1))
	joined := append(s1, s2...)
	if len(joined) != len(ref) {
		t.Fatalf("length mismatch %d vs %d", len(joined), len(ref))
	}
	for i := range joined {
		if math.Abs(joined[i].Accel-ref[i].Accel) > 1e-9 {
			t.Fatalf("sample %d: %v != %v (phase discontinuity)", i, joined[i].Accel, ref[i].Accel)
		}
	}
}

func TestNewDeviceRanges(t *testing.T) {
	rng := stats.NewRNG(5)
	p := NewParams()
	for i := 0; i < 100; i++ {
		d := NewDevice(p, rng)
		if d.PlacementOffset < -30 || d.PlacementOffset >= 30 {
			t.Fatalf("placement offset %v out of range", d.PlacementOffset)
		}
		if math.Abs(d.Bias) > 5*p.DeviceBiasSigma {
			t.Fatalf("bias %v implausible", d.Bias)
		}
	}
}

func TestDeterminism(t *testing.T) {
	g := mustGen(t)
	a, _ := g.Walk(nil, 0, 3, 1.8, 45, Device{Bias: 1}, 0, stats.NewRNG(7))
	b, _ := g.Walk(nil, 0, 3, 1.8, 45, Device{Bias: 1}, 0, stats.NewRNG(7))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce the stream")
		}
	}
}
