package stats

import "math"

// Circular accumulates directional observations in degrees and yields
// their circular mean and standard deviation. Compass bearings wrap at
// 360°, so arithmetic means are wrong near north; the motion database
// (paper Sec. IV-C) therefore fits direction Gaussians with circular
// statistics. The zero value is ready to use.
type Circular struct {
	n    int
	sumS float64
	sumC float64
}

// Add incorporates one bearing in degrees.
func (c *Circular) Add(deg float64) {
	rad := deg * math.Pi / 180
	c.sumS += math.Sin(rad)
	c.sumC += math.Cos(rad)
	c.n++
}

// N returns the number of observations.
func (c *Circular) N() int { return c.n }

// Mean returns the circular mean bearing in [0, 360), or 0 with no
// observations.
func (c *Circular) Mean() float64 {
	if c.n == 0 {
		return 0
	}
	deg := math.Atan2(c.sumS, c.sumC) * 180 / math.Pi
	if deg < 0 {
		deg += 360
	}
	return deg
}

// R returns the mean resultant length in [0, 1]; 1 means perfectly
// concentrated bearings, 0 means uniformly dispersed.
func (c *Circular) R() float64 {
	if c.n == 0 {
		return 0
	}
	return math.Hypot(c.sumS, c.sumC) / float64(c.n)
}

// StdDev returns the circular standard deviation in degrees,
// sqrt(-2 ln R). For tightly concentrated samples (the motion-DB case,
// sigma <= ~20°) this matches the linear standard deviation closely.
func (c *Circular) StdDev() float64 {
	r := c.R()
	if r <= 0 {
		return math.Inf(1)
	}
	if r >= 1 {
		return 0
	}
	return math.Sqrt(-2*math.Log(r)) * 180 / math.Pi
}

// CircularMean returns the circular mean of bearings in degrees.
func CircularMean(degs []float64) float64 {
	var c Circular
	for _, d := range degs {
		c.Add(d)
	}
	return c.Mean()
}
