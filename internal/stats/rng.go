package stats

import "math/rand"

// RNG wraps math/rand with the helpers the simulators need. Every
// stochastic component in the reproduction draws from an explicitly
// seeded RNG so that experiments are reproducible run-to-run.
type RNG struct {
	seed int64
	r    *rand.Rand
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{seed: seed, r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent child generator. The child stream depends
// only on the parent's seed and the label — not on how much the parent
// has been consumed — so adding draws in one component does not perturb
// another, and forking the same label twice replays the same stream
// (which lets experiments rebuild an artifact bit-identically). Use
// distinct labels for streams that must be independent.
func (g *RNG) Fork(label string) *RNG {
	return NewRNG(HashSeed(label) ^ g.seed)
}

// fastSource is a splitmix64 math/rand Source64. Its entire state is
// one word, so Seed is O(1) — unlike the standard source, whose Seed
// regenerates a 607-word lagged-Fibonacci register and dominates any
// loop that reseeds per item. The stream for a given seed differs from
// the standard source's.
type fastSource struct{ state uint64 }

func (s *fastSource) Seed(seed int64) { s.state = uint64(seed) }

func (s *fastSource) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *fastSource) Int63() int64 { return int64(s.Uint64() >> 1) }

// NewFastRNG is NewRNG on a splitmix64 source: construction and Reseed
// are O(1) instead of O(607-word register), at the cost of a different
// (still deterministic, still seed-only) stream than NewRNG produces
// for the same seed. Use it for streams whose contract is "depends
// only on the seed" rather than "matches NewRNG" — e.g. the per-trace
// training streams, which are reseeded once per trace.
func NewFastRNG(seed int64) *RNG {
	src := &fastSource{}
	src.Seed(seed)
	return &RNG{seed: seed, r: rand.New(src)}
}

// Reseed resets the generator in place to the exact state its
// constructor (NewRNG or NewFastRNG) returns for that seed, without
// allocating a new source: (*rand.Rand).Seed also clears the cached
// read state, so a reseeded generator replays the fresh generator's
// stream bit for bit. It lets hot loops reuse one generator across
// many logical streams.
func (g *RNG) Reseed(seed int64) {
	g.seed = seed
	g.r.Seed(seed)
}

// ForkInto is Fork without the allocation: child is reseeded to the
// derived seed Fork(label) would use, keeping the child's own source
// kind (a NewFastRNG child replays the fast stream for that seed).
// Only the parent's seed is read, so concurrent ForkInto calls on one
// parent (with distinct children) are safe.
func (g *RNG) ForkInto(child *RNG, label string) {
	child.Reseed(HashSeed(label) ^ g.seed)
}

// Float64 returns a uniform sample in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform sample in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Norm returns a Gaussian sample with the given mean and standard
// deviation.
func (g *RNG) Norm(mu, sigma float64) float64 {
	return mu + sigma*g.r.NormFloat64()
}

// Uniform returns a uniform sample in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }

// HashSeed derives a deterministic int64 from string components. It is
// used to give spatial fields (e.g. the per-AP shadowing grid) a seed
// that depends only on the experiment seed and the field identity.
func HashSeed(parts ...string) int64 {
	var h uint64 = 14695981039346656037
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= 1099511628211
		}
		h ^= 0xff
		h *= 1099511628211
	}
	return int64(h)
}
