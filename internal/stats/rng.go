package stats

import "math/rand"

// RNG wraps math/rand with the helpers the simulators need. Every
// stochastic component in the reproduction draws from an explicitly
// seeded RNG so that experiments are reproducible run-to-run.
type RNG struct {
	seed int64
	r    *rand.Rand
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{seed: seed, r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent child generator. The child stream depends
// only on the parent's seed and the label — not on how much the parent
// has been consumed — so adding draws in one component does not perturb
// another, and forking the same label twice replays the same stream
// (which lets experiments rebuild an artifact bit-identically). Use
// distinct labels for streams that must be independent.
func (g *RNG) Fork(label string) *RNG {
	return NewRNG(HashSeed(label) ^ g.seed)
}

// Float64 returns a uniform sample in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform sample in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Norm returns a Gaussian sample with the given mean and standard
// deviation.
func (g *RNG) Norm(mu, sigma float64) float64 {
	return mu + sigma*g.r.NormFloat64()
}

// Uniform returns a uniform sample in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }

// HashSeed derives a deterministic int64 from string components. It is
// used to give spatial fields (e.g. the per-AP shadowing grid) a seed
// that depends only on the experiment seed and the field identity.
func HashSeed(parts ...string) int64 {
	var h uint64 = 14695981039346656037
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= 1099511628211
		}
		h ^= 0xff
		h *= 1099511628211
	}
	return int64(h)
}
