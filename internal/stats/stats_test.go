package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestOnline(t *testing.T) {
	var o Online
	if o.N() != 0 || o.Mean() != 0 || o.Variance() != 0 {
		t.Fatal("zero-value Online should report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		o.Add(x)
	}
	if o.N() != 8 {
		t.Errorf("N = %d, want 8", o.N())
	}
	if !almostEqual(o.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", o.Mean())
	}
	if !almostEqual(o.Variance(), 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", o.Variance())
	}
	if !almostEqual(o.StdDev(), 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", o.StdDev())
	}
	if !almostEqual(o.SampleVariance(), 32.0/7, 1e-12) {
		t.Errorf("SampleVariance = %v, want 32/7", o.SampleVariance())
	}
}

func TestOnlineMatchesBatch(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				clean = append(clean, x)
			}
		}
		var o Online
		for _, x := range clean {
			o.Add(x)
		}
		return almostEqual(o.Mean(), Mean(clean), 1e-6) &&
			almostEqual(o.StdDev(), StdDev(clean), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if got := Max(xs); got != 5 {
		t.Errorf("Max = %v, want 5", got)
	}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v, want -1", got)
	}
	if Max(nil) != 0 || Min(nil) != 0 || Mean(nil) != 0 {
		t.Error("empty-slice aggregates should be 0")
	}
}

func TestGaussPDF(t *testing.T) {
	// Standard normal at 0 is 1/sqrt(2*pi).
	if got := GaussPDF(0, 0, 1); !almostEqual(got, 0.3989422804, 1e-9) {
		t.Errorf("GaussPDF(0,0,1) = %v", got)
	}
	// Symmetry.
	if GaussPDF(1.3, 0, 1) != GaussPDF(-1.3, 0, 1) {
		t.Error("pdf should be symmetric")
	}
	// Degenerate sigma.
	if GaussPDF(1, 0, 0) != 0 || !math.IsInf(GaussPDF(0, 0, 0), 1) {
		t.Error("degenerate sigma handling wrong")
	}
}

func TestGaussCDF(t *testing.T) {
	if got := GaussCDF(0, 0, 1); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("CDF(0) = %v, want 0.5", got)
	}
	if got := GaussCDF(1.96, 0, 1); !almostEqual(got, 0.975, 1e-3) {
		t.Errorf("CDF(1.96) = %v, want ~0.975", got)
	}
	if GaussCDF(-1, 5, 0) != 0 || GaussCDF(7, 5, 0) != 1 {
		t.Error("degenerate sigma CDF should be a step function")
	}
}

func TestGaussInterval(t *testing.T) {
	// ~68.27% within one sigma.
	if got := GaussInterval(-1, 1, 0, 1); !almostEqual(got, 0.6827, 1e-3) {
		t.Errorf("1-sigma interval = %v", got)
	}
	// Swapped bounds are tolerated.
	if GaussInterval(1, -1, 0, 1) != GaussInterval(-1, 1, 0, 1) {
		t.Error("swapped bounds should match")
	}
}

func TestGaussIntervalProperties(t *testing.T) {
	f := func(lo, hi, mu, sigma float64) bool {
		if math.IsNaN(lo) || math.IsNaN(hi) || math.IsNaN(mu) || math.IsNaN(sigma) {
			return true
		}
		lo, hi = math.Mod(lo, 100), math.Mod(hi, 100)
		mu = math.Mod(mu, 100)
		sigma = math.Abs(math.Mod(sigma, 10)) + 0.01
		p := GaussInterval(lo, hi, mu, sigma)
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5})
	if c.N() != 5 {
		t.Fatalf("N = %d", c.N())
	}
	if got := c.At(3); !almostEqual(got, 0.6, 1e-12) {
		t.Errorf("At(3) = %v, want 0.6", got)
	}
	if got := c.At(0); got != 0 {
		t.Errorf("At(0) = %v, want 0", got)
	}
	if got := c.At(10); got != 1 {
		t.Errorf("At(10) = %v, want 1", got)
	}
	if got := c.Median(); !almostEqual(got, 3, 1e-12) {
		t.Errorf("Median = %v, want 3", got)
	}
	if got := c.Percentile(0); got != 1 {
		t.Errorf("P0 = %v, want 1", got)
	}
	if got := c.Percentile(1); got != 5 {
		t.Errorf("P100 = %v, want 5", got)
	}
	if got := c.Percentile(0.25); !almostEqual(got, 2, 1e-12) {
		t.Errorf("P25 = %v, want 2", got)
	}
	if got := c.Max(); got != 5 {
		t.Errorf("Max = %v, want 5", got)
	}
	if got := c.Mean(); !almostEqual(got, 3, 1e-12) {
		t.Errorf("Mean = %v, want 3", got)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.At(1) != 0 || c.Percentile(0.5) != 0 || c.Max() != 0 {
		t.Error("empty CDF should report zeros")
	}
}

func TestCDFMonotone(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		c := NewCDF(clean)
		// F is non-decreasing over percentile queries.
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.1 {
			v := c.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{0, 10})
	pts := c.Points(3)
	if len(pts) != 3 {
		t.Fatalf("len = %d", len(pts))
	}
	if pts[0][1] != 0 || pts[2][1] != 1 {
		t.Error("endpoints should cover probabilities 0 and 1")
	}
	if got := c.Points(1); len(got) != 2 {
		t.Errorf("Points(1) should clamp to 2 points, got %d", len(got))
	}
}

func TestCircularMean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"simple", []float64{80, 100}, 90},
		{"wrap north", []float64{350, 10}, 0},
		{"wrap north uneven", []float64{355, 5, 0}, 0},
		{"all same", []float64{123, 123}, 123},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := CircularMean(tt.in)
			// Compare as minimal angular distance.
			d := math.Abs(math.Mod(got-tt.want+540, 360) - 180)
			if d > 1e-9 {
				t.Errorf("CircularMean(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestCircularStdDev(t *testing.T) {
	var c Circular
	for _, d := range []float64{358, 0, 2, 358, 0, 2} {
		c.Add(d)
	}
	// Small concentrated spread near north: circular std ~ linear std of
	// {-2,0,2} = 1.63 degrees.
	if got := c.StdDev(); !almostEqual(got, 1.633, 0.05) {
		t.Errorf("StdDev = %v, want ~1.63", got)
	}
	var empty Circular
	if !math.IsInf(empty.StdDev(), 1) {
		t.Error("empty circular std should be +Inf")
	}
	var one Circular
	one.Add(42)
	if got := one.StdDev(); got > 1e-6 {
		t.Errorf("single-sample std = %v, want ~0", got)
	}
	if one.Mean() != 42 {
		t.Errorf("single-sample mean = %v, want 42", one.Mean())
	}
}

func TestCircularR(t *testing.T) {
	var c Circular
	if c.R() != 0 {
		t.Error("empty R should be 0")
	}
	// Two opposite bearings cancel.
	c.Add(0)
	c.Add(180)
	if got := c.R(); got > 1e-12 {
		t.Errorf("opposite bearings R = %v, want 0", got)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c, d := NewRNG(7), NewRNG(8)
	same := true
	for i := 0; i < 10; i++ {
		if c.Float64() != d.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds should diverge")
	}
}

func TestRNGNorm(t *testing.T) {
	g := NewRNG(42)
	var o Online
	for i := 0; i < 20000; i++ {
		o.Add(g.Norm(5, 2))
	}
	if !almostEqual(o.Mean(), 5, 0.1) {
		t.Errorf("Norm mean = %v, want ~5", o.Mean())
	}
	if !almostEqual(o.StdDev(), 2, 0.1) {
		t.Errorf("Norm std = %v, want ~2", o.StdDev())
	}
}

func TestRNGUniformBounds(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 1000; i++ {
		x := g.Uniform(3, 7)
		if x < 3 || x >= 7 {
			t.Fatalf("Uniform out of range: %v", x)
		}
	}
}

func TestHashSeedStability(t *testing.T) {
	if HashSeed("a", "b") != HashSeed("a", "b") {
		t.Error("HashSeed must be deterministic")
	}
	if HashSeed("a", "b") == HashSeed("ab") {
		t.Error("component boundaries should matter")
	}
	if HashSeed("x") == HashSeed("y") {
		t.Error("different labels should differ")
	}
}

func TestForkIndependence(t *testing.T) {
	g1 := NewRNG(9)
	g2 := NewRNG(9)
	f1 := g1.Fork("sensors")
	f2 := g2.Fork("sensors")
	for i := 0; i < 10; i++ {
		if f1.Float64() != f2.Float64() {
			t.Fatal("forks of identical parents with same label must match")
		}
	}
	g3 := NewRNG(9)
	fa := g3.Fork("a")
	g4 := NewRNG(9)
	fb := g4.Fork("b")
	same := true
	for i := 0; i < 10; i++ {
		if fa.Float64() != fb.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different fork labels should give different streams")
	}
}

// TestReseedMatchesFresh: a reseeded generator must replay the stream a
// freshly constructed generator produces, bit for bit, for both source
// kinds — including after Norm draws, which exercise the cached read
// state (*rand.Rand).Seed must clear.
func TestReseedMatchesFresh(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func(seed int64) *RNG
	}{
		{"standard", NewRNG},
		{"fast", NewFastRNG},
	} {
		t.Run(tc.name, func(t *testing.T) {
			reused := tc.mk(1)
			for _, seed := range []int64{7, -3, 7, 0} {
				fresh := tc.mk(seed)
				reused.Reseed(seed)
				for i := 0; i < 50; i++ {
					if a, b := fresh.Norm(0, 1), reused.Norm(0, 1); a != b {
						t.Fatalf("seed %d draw %d: fresh %v, reseeded %v", seed, i, a, b)
					}
					if a, b := fresh.Intn(1000), reused.Intn(1000); a != b {
						t.Fatalf("seed %d draw %d: fresh Intn %d, reseeded %d", seed, i, a, b)
					}
				}
			}
		})
	}
}

// TestForkIntoMatchesFork: ForkInto must land the child on the seed
// Fork derives for the same label, regardless of how much the child
// consumed before, and without perturbing the parent.
func TestForkIntoMatchesFork(t *testing.T) {
	parent := NewRNG(42)
	forked := parent.Fork("trace-9")
	child := NewRNG(0)
	child.Intn(100) // stale state the reseed must erase
	parent.ForkInto(child, "trace-9")
	for i := 0; i < 50; i++ {
		if a, b := forked.Float64(), child.Float64(); a != b {
			t.Fatalf("draw %d: Fork %v, ForkInto %v", i, a, b)
		}
	}

	// A fast child keeps its fast source: same derived seed, fast stream.
	fastChild := NewFastRNG(0)
	parent.ForkInto(fastChild, "trace-9")
	wantFast := NewFastRNG(HashSeed("trace-9") ^ 42)
	for i := 0; i < 50; i++ {
		if a, b := wantFast.Float64(), fastChild.Float64(); a != b {
			t.Fatalf("fast draw %d: fresh %v, ForkInto %v", i, a, b)
		}
	}
}

// TestFastRNGStreamQuality sanity-checks the splitmix64 stream: seed
// determinism, seed sensitivity, and a uniform-looking Float64 mean.
func TestFastRNGStreamQuality(t *testing.T) {
	a, b := NewFastRNG(5), NewFastRNG(5)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("NewFastRNG(5) streams diverge")
		}
	}
	c, d := NewFastRNG(5), NewFastRNG(6)
	same := 0
	sum := 0.0
	const n = 4096
	for i := 0; i < n; i++ {
		x, y := c.Float64(), d.Float64()
		if x == y {
			same++
		}
		sum += x
	}
	if same > 0 {
		t.Errorf("adjacent seeds collide on %d of %d draws", same, n)
	}
	if mean := sum / n; mean < 0.45 || mean > 0.55 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}
