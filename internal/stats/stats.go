// Package stats provides the statistical primitives the MoLoc reproduction
// builds on: online mean/variance accumulators, Gaussian distribution
// helpers (including the discretized interval probabilities of Eq. 5),
// circular statistics for compass bearings, and empirical CDFs used to
// report the paper's figures.
package stats

import (
	"math"
	"sort"
)

// Online accumulates mean and variance incrementally using Welford's
// algorithm. The zero value is ready to use.
type Online struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (o *Online) Add(x float64) {
	o.n++
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the number of observations added.
func (o *Online) N() int { return o.n }

// Mean returns the running mean, or 0 with no observations.
func (o *Online) Mean() float64 { return o.mean }

// Variance returns the population variance, or 0 with fewer than two
// observations.
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n)
}

// SampleVariance returns the unbiased sample variance (n-1 denominator).
func (o *Online) SampleVariance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// StdDev returns the population standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	var o Online
	for _, x := range xs {
		o.Add(x)
	}
	return o.StdDev()
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// GaussPDF evaluates the normal density with the given mean and standard
// deviation at x.
func GaussPDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		if x == mu {
			return math.Inf(1)
		}
		return 0
	}
	z := (x - mu) / sigma
	return math.Exp(-z*z/2) / (sigma * math.Sqrt(2*math.Pi))
}

// GaussCDF evaluates the normal cumulative distribution with the given
// mean and standard deviation at x.
func GaussCDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		if x < mu {
			return 0
		}
		return 1
	}
	return 0.5 * (1 + math.Erf((x-mu)/(sigma*math.Sqrt2)))
}

// GaussInterval returns P(lo <= X <= hi) for X ~ N(mu, sigma^2).
// This is the discretized Gaussian integral of the paper's Eq. 5: the
// motion-matching probabilities D_{i,j}(d) and O_{i,j}(o) are
// GaussInterval(d-alpha/2, d+alpha/2, mu, sigma).
func GaussInterval(lo, hi, mu, sigma float64) float64 {
	if hi < lo {
		lo, hi = hi, lo
	}
	return GaussCDF(hi, mu, sigma) - GaussCDF(lo, mu, sigma)
}

// CDF is an empirical cumulative distribution over a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from xs. The input slice is copied.
func NewCDF(xs []float64) *CDF {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the sample size.
func (c *CDF) N() int { return len(c.sorted) }

// At returns the fraction of samples <= x. An empty CDF returns 0.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Percentile returns the value below which fraction p of the samples
// fall, using linear interpolation between order statistics. p is clamped
// to [0, 1]. An empty CDF returns 0.
func (c *CDF) Percentile(p float64) float64 {
	n := len(c.sorted)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return c.sorted[0]
	}
	if p >= 1 {
		return c.sorted[n-1]
	}
	pos := p * float64(n-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= n {
		return c.sorted[n-1]
	}
	return c.sorted[i]*(1-frac) + c.sorted[i+1]*frac
}

// Median returns the 50th percentile.
func (c *CDF) Median() float64 { return c.Percentile(0.5) }

// Max returns the largest sample, or 0 if empty.
func (c *CDF) Max() float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	return c.sorted[len(c.sorted)-1]
}

// Mean returns the sample mean.
func (c *CDF) Mean() float64 { return Mean(c.sorted) }

// Points returns (x, F(x)) pairs suitable for plotting the CDF with the
// given number of evenly spaced quantile points (at least 2).
func (c *CDF) Points(n int) [][2]float64 {
	if n < 2 {
		n = 2
	}
	pts := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		p := float64(i) / float64(n-1)
		pts = append(pts, [2]float64{c.Percentile(p), p})
	}
	return pts
}
