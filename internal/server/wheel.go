// Server-paced tick wheel: the serving half of the "100k+ sessions,
// flat p99" target. Client-paced sessions cost one HTTP round-trip, one
// worker dispatch, and one RCU snapshot load per session per interval —
// fine for one phone, ruinous for a fleet. Sessions created with
// "paced":true instead opt into server-driven ticking: a hashed timer
// wheel with coarse slots (DefaultWheelSlotDur) tracks when each paced
// session's next interval elapses, and every advance coalesces the due
// sessions of a slot into per-worker batches. Each (worker, slot) batch
// loads the compiled motion index once (tracker.TickBatchShared) and
// reuses one fix buffer and one frame-payload buffer for every session
// in it, so the marginal cost of a paced session's tick is the tracker
// work itself — no HTTP, no JSON, no per-session snapshot load, no
// per-session allocation.
//
// Pacing semantics: a paced session is ticked at its tracker's last
// event time (tracker.LastEventTime), i.e. as if the client had issued
// a tick after every upload. Interval closes therefore depend only on
// the data stream, not on the server's wall clock, which is what makes
// server-paced fixes bit-identical to the same event sequence driven by
// client ticks (TestPacedEquivalence pins this). The wheel's wall-clock
// deadlines decide only *when* the server checks, at slot granularity.
//
// Fix delivery: fixes are pushed as unsolicited Fix frames (sequence 0)
// to the session's bound stream connection when one exists; HTTP-only
// clients poll GET /v1/sessions/{id} for the last fix.
package server

import (
	"sync"
	"sync/atomic"
	"time"

	"moloc/internal/motiondb"
	"moloc/internal/tracker"
	"moloc/internal/wire"
)

// pacedEntry is one paced session's place on the wheel. An entry is
// owned by exactly one party at a time — the slot holding it (under the
// slot lock) or the goroutine that collected it — so its fields need no
// lock of their own: due is only read and written by the current owner,
// and handoffs happen under slot locks.
type pacedEntry struct {
	ss       *session
	interval time.Duration // tracker interval, as the wheel period
	worker   int           // pool worker owning the session (shardOf)
	due      time.Time     // next deadline
}

// wheelSlot is one wheel bucket; entries is guarded by mu.
type wheelSlot struct {
	mu      sync.Mutex
	entries []*pacedEntry
}

// wheelAdvance is the advance-scan scratch: the due-entry collection
// buffer and the per-worker grouping buffers, reused across advances.
// Guarded by mu (one advance at a time; slots have their own locks).
type wheelAdvance struct {
	mu sync.Mutex
	//moloc:reuse
	due      []*pacedEntry
	byWorker [][]*pacedEntry
}

// tickWheel is a hashed timer wheel: a deadline lands in slot
// (due/slotDur) mod len(slots). Slots coarser than tracker intervals
// batch many sessions per fire; deadlines beyond the wheel horizon
// simply stay in their slot and are re-examined once per rotation (the
// due check, not slot position, decides firing).
type tickWheel struct {
	slotDur time.Duration
	slots   []wheelSlot
	size    atomic.Int64 // scheduled entries, for the paced_scheduled gauge
	adv     wheelAdvance

	mu       sync.Mutex
	started  bool
	lastSlot int64 // absolute slot number processed through
}

func newTickWheel(slots int, slotDur time.Duration, workers int) *tickWheel {
	w := &tickWheel{slotDur: slotDur, slots: make([]wheelSlot, slots)}
	w.adv.byWorker = make([][]*pacedEntry, workers)
	return w
}

// prime fixes the wheel's position at now so the first advance claims
// every slot elapsed since construction rather than only the one it
// lands in. Without priming, a server that jumps its clock before the
// first advance (tests with fake clocks, mostly) would skip the slots
// in between.
func (w *tickWheel) prime(now time.Time) {
	w.mu.Lock()
	w.started = true
	w.lastSlot = now.UnixNano() / int64(w.slotDur)
	w.mu.Unlock()
}

// slotIndex maps an absolute slot number to a bucket.
func (w *tickWheel) slotIndex(sn int64) int {
	i := int(sn % int64(len(w.slots)))
	if i < 0 {
		i += len(w.slots)
	}
	return i
}

// add schedules a session's first deadline, one interval from now.
func (w *tickWheel) add(ss *session, interval time.Duration, worker int, now time.Time) {
	if interval <= 0 {
		interval = w.slotDur
	}
	w.size.Add(1)
	w.schedule(&pacedEntry{ss: ss, interval: interval, worker: worker, due: now.Add(interval)})
}

// schedule files an entry under its deadline's slot.
func (w *tickWheel) schedule(e *pacedEntry) {
	sl := &w.slots[w.slotIndex(e.due.UnixNano()/int64(w.slotDur))]
	sl.mu.Lock()
	sl.entries = append(sl.entries, e)
	sl.mu.Unlock()
}

// drop retires an entry that will not be rescheduled (evicted session).
func (w *tickWheel) drop() { w.size.Add(-1) }

// scheduled reports the number of entries on the wheel.
func (w *tickWheel) scheduled() int64 { return w.size.Load() }

// elapsedRange claims the absolute slot numbers elapsed at now, at most
// one full rotation (older slots would be re-scanned redundantly: the
// due check fires everything overdue on the first visit).
func (w *tickWheel) elapsedRange(now time.Time) (from, to int64, ok bool) {
	cur := now.UnixNano() / int64(w.slotDur)
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.started {
		w.started = true
		w.lastSlot = cur - 1
	}
	if cur <= w.lastSlot {
		return 0, 0, false
	}
	from = w.lastSlot + 1
	if cur-from >= int64(len(w.slots)) {
		from = cur - int64(len(w.slots)) + 1
	}
	w.lastSlot = cur
	return from, cur, true
}

// collectDue moves slot i's due entries to dst, keeping the rest. The
// compaction reuses the slot's backing array and nils the tail so
// collected entries are not retained by the slot.
//
//moloc:reuse
func (w *tickWheel) collectDue(i int, now time.Time, dst []*pacedEntry) []*pacedEntry {
	sl := &w.slots[i]
	sl.mu.Lock()
	keep := sl.entries[:0]
	for _, e := range sl.entries {
		if e.due.After(now) {
			keep = append(keep, e)
		} else {
			dst = append(dst, e)
		}
	}
	for j := len(keep); j < len(sl.entries); j++ {
		sl.entries[j] = nil
	}
	sl.entries = keep
	sl.mu.Unlock()
	return dst
}

// pacedScratch is one worker's reused tick state: the fix destination
// buffer and the pushed-frame payload buffer. paceScratch[w] is touched
// only by tasks running on worker w, which the pool serializes, so no
// lock is needed and a (worker, slot) batch of any size reuses one
// buffer of each kind.
type pacedScratch struct {
	//moloc:reuse
	fixes []tracker.Fix
	//moloc:reuse
	payload []byte
}

// pacedBatch carries one (worker, slot) batch from the advance scan to
// the worker. Batches are pool-recycled: the advance goroutine fills
// one, the worker drains and returns it.
type pacedBatch struct {
	entries []*pacedEntry
	fired   time.Time // when the slot fired, for paced_fix_seconds
}

var pacedBatches = sync.Pool{New: func() interface{} { return new(pacedBatch) }}

// paceLoop drives the wheel off the wall clock until Close.
func (s *Server) paceLoop() {
	defer s.wg.Done()
	for !s.waitDone(s.wheel.slotDur) {
		s.AdvanceWheel(s.opts.Now())
	}
}

// AdvanceWheel processes every wheel slot elapsed at now and returns
// the number of due sessions dispatched (or shed). Production servers
// drive it from Start's pace loop; tests and benchmarks inject a clock
// through Options.Now and call it directly.
func (s *Server) AdvanceWheel(now time.Time) int {
	w := s.wheel
	from, to, ok := w.elapsedRange(now)
	if !ok {
		return 0
	}
	w.adv.mu.Lock()
	defer w.adv.mu.Unlock()
	dispatched := 0
	for sn := from; sn <= to; sn++ {
		w.adv.due = w.collectDue(w.slotIndex(sn), now, w.adv.due[:0])
		if len(w.adv.due) == 0 {
			continue
		}
		dispatched += len(w.adv.due)
		s.dispatchDue(now, w.adv.due)
	}
	return dispatched
}

// dispatchDue groups one slot's due entries by owning worker and hands
// each worker its batch — the (worker, slot) unit the whole design
// amortizes over. A worker whose queue is full sheds the batch
// (pool_shed_total): its entries are rescheduled one slot out unticked,
// so overload degrades paced sessions to a slower cadence instead of
// stalling the wheel behind one hot worker.
func (s *Server) dispatchDue(now time.Time, due []*pacedEntry) {
	byW := s.wheel.adv.byWorker
	for i := range byW {
		byW[i] = byW[i][:0]
	}
	for _, e := range due {
		byW[e.worker] = append(byW[e.worker], e)
	}
	for wi := range byW {
		if len(byW[wi]) == 0 {
			continue
		}
		b := pacedBatches.Get().(*pacedBatch)
		b.entries = append(b.entries[:0], byW[wi]...)
		b.fired = now
		worker := wi
		if !s.pool.tryRunShard(worker, func() { s.paceBatch(worker, b) }) {
			s.met.poolShed.Inc()
			for _, e := range b.entries {
				e.due = now.Add(s.wheel.slotDur)
				s.wheel.schedule(e)
			}
			b.entries = b.entries[:0]
			pacedBatches.Put(b)
		}
	}
}

// paceBatch runs one (worker, slot) batch on its pool worker: one RCU
// snapshot load and one degradation-state sample shared by every
// session in the batch, then per-session ticking against that view
// with the worker's reused buffers. Runs only on worker `worker`, so
// paceScratch[worker] is exclusively owned for the duration.
//
//moloc:hotpath
func (s *Server) paceBatch(worker int, b *pacedBatch) {
	cmp := s.snap.Load()
	s.met.pacedSnapshotLoads.Inc()
	fpOnly := s.fingerprintOnly()
	sc := &s.paceScratch[worker]
	now := s.opts.Now()
	for _, e := range b.entries {
		if !s.tickOnePaced(e, cmp, fpOnly, sc, b.fired) {
			s.wheel.drop()
			continue
		}
		// Reschedule on the interval grid; a session that fell behind
		// (shed slots, long GC pause) snaps forward rather than burning
		// slots on catch-up deadlines already in the past.
		e.due = e.due.Add(e.interval)
		if !e.due.After(now) {
			e.due = now.Add(e.interval)
		}
		s.wheel.schedule(e)
	}
	b.entries = b.entries[:0]
	pacedBatches.Put(b)
}

// tickOnePaced ticks one paced session at its last event time and
// pushes any resulting fixes to its bound stream. alive=false means the
// session was evicted and must leave the wheel. A panicking tracker is
// contained to its own session — counted, fixes discarded, pacing kept
// — mirroring the per-request recovery on the client-paced path.
func (s *Server) tickOnePaced(e *pacedEntry, cmp *motiondb.Compiled, fpOnly bool,
	sc *pacedScratch, fired time.Time) (alive bool) {
	defer func() {
		if rec := recover(); rec != nil {
			s.met.panicsRecovered.Inc()
			alive = true
		}
	}()
	sc.fixes = sc.fixes[:0]
	push, ok := e.ss.withTrackerPaced(func(tk *tracker.Tracker) {
		tk.SetFingerprintOnly(fpOnly)
		if ev, started := tk.LastEventTime(); started {
			sc.fixes = tk.TickBatchShared(cmp, ev, sc.fixes)
		}
	})
	if !ok {
		return false
	}
	s.met.pacedTicks.Inc()
	if len(sc.fixes) == 0 {
		return true
	}
	s.met.pacedFixSeconds.Observe(time.Since(fired).Seconds())
	for i := range sc.fixes {
		s.met.candidateSetSize.Observe(float64(len(sc.fixes[i].Candidates)))
		if sc.fixes[i].Mode == tracker.ModeFingerprint {
			s.met.fixesFingerprint.Inc()
		} else {
			s.met.fixesMoLoc.Inc()
		}
	}
	if push != nil {
		s.pushFixes(push, sc)
	}
	return true
}

// pushFixes writes the batch's fixes to a bound stream connection as
// unsolicited Fix frames (sequence 0 — never confused with a tick
// reply, whose sequence echoes the client's). A failed push is counted
// and abandoned; the connection's own frame loop notices the broken
// conn and tears it down, unbinding the pusher.
func (s *Server) pushFixes(push *streamConn, sc *pacedScratch) {
	for i := range sc.fixes {
		sc.payload = wire.AppendFix(sc.payload[:0], sc.fixes[i].T, sc.fixes[i].Loc, sc.fixes[i].Moved)
		if err := push.writeFrame(wire.FrameFix, 0, sc.payload); err != nil {
			s.met.pacedPushErrors.Inc()
			return
		}
		s.met.pacedPushes.Inc()
	}
}

// pacedInterval converts a tracker interval in seconds to the wheel's
// clock domain.
func pacedInterval(sec float64) time.Duration {
	return time.Duration(sec * float64(time.Second))
}

// registerPoolGauges exposes the per-worker queue depths and the
// wheel's scheduled-entry count as callback gauges: evaluated only when
// /v1/metricsz snapshots, costing the workers nothing.
func (s *Server) registerPoolGauges() {
	for wi := range s.pool.queues {
		w := wi
		s.met.reg.Gauge(gaugeName("worker_queue_depth", w),
			func() int64 { return int64(s.pool.queueDepth(w)) })
	}
	s.met.reg.Gauge("paced_scheduled", s.wheel.scheduled)
}

func gaugeName(base string, worker int) string {
	return base + "{worker=" + itoa(worker) + "}"
}

// itoa is strconv.Itoa for small non-negative ints without the import.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
