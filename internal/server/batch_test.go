package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"moloc/internal/fingerprint"
	"moloc/internal/sensors"
	"moloc/internal/stats"
)

// batchFeed synthesizes a few intervals of plausible sensor data: 10 Hz
// IMU samples up to tEnd and one scan per second drawn from the survey
// radio map.
func batchFeed(t *testing.T, s *Server, tEnd float64) ([]sensors.Sample, []scanReq) {
	t.Helper()
	rng := stats.NewRNG(71)
	var samples []sensors.Sample
	for ts := 0.0; ts < tEnd; ts += 0.1 {
		samples = append(samples, sensors.Sample{T: ts, Accel: 9.8 + rng.Norm(0, 0.2)})
	}
	db, ok := s.src.(*fingerprint.DB)
	if !ok {
		t.Fatal("test server source is not a *fingerprint.DB")
	}
	var scans []scanReq
	for ts := 0.0; ts < tEnd; ts++ {
		fp := db.At(1 + int(ts)%db.NumLocs())
		rss := make([]float64, len(fp))
		copy(rss, fp)
		scans = append(scans, scanReq{T: ts, RSS: rss})
	}
	return samples, scans
}

// TestBatchEndpoint: one POST /batch must return the same fix stream
// that per-interval imu/scan/tick requests produce on a second session.
func TestBatchEndpoint(t *testing.T) {
	srv, _ := testServer(t)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	samples, scans := batchFeed(t, srv, 12)

	// Session A: everything in one batch.
	idA := createSession(t, ts)
	resp, body := postJSON(t, ts, "/v1/sessions/"+idA+"/batch",
		batchReq{Samples: samples, Scans: scans, T: 12})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d body %s", resp.StatusCode, body)
	}
	var batched batchResp
	if err := json.Unmarshal(body, &batched); err != nil {
		t.Fatal(err)
	}
	if len(batched.Fixes) == 0 {
		t.Fatal("batch produced no fixes")
	}

	// Session B: the same data interval by interval.
	idB := createSession(t, ts)
	var serial []fixResp
	next := 0
	for tick := 3.0; tick <= 12; tick += 3 {
		var chunk []sensors.Sample
		for next < len(samples) && samples[next].T < tick {
			chunk = append(chunk, samples[next])
			next++
		}
		postJSON(t, ts, "/v1/sessions/"+idB+"/imu", imuReq{Samples: chunk})
		for _, sc := range scans {
			if sc.T >= tick-3 && sc.T < tick {
				postJSON(t, ts, "/v1/sessions/"+idB+"/scan", sc)
			}
		}
		r, b := postJSON(t, ts, "/v1/sessions/"+idB+"/tick", tickReq{T: tick})
		if r.StatusCode == http.StatusOK {
			var fx fixResp
			if err := json.Unmarshal(b, &fx); err != nil {
				t.Fatal(err)
			}
			serial = append(serial, fx)
		}
	}

	if len(batched.Fixes) != len(serial) {
		t.Fatalf("batch emitted %d fixes, serial %d", len(batched.Fixes), len(serial))
	}
	for i := range serial {
		bf, sf := batched.Fixes[i], serial[i]
		if bf.T != sf.T || bf.Loc != sf.Loc || bf.Moved != sf.Moved || bf.Mode != sf.Mode {
			t.Errorf("fix %d: batch %+v != serial %+v", i, bf, sf)
		}
	}
}

// TestBatchValidation pins the endpoint's error contract.
func TestBatchValidation(t *testing.T) {
	srv, _ := testServer(t)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	id := createSession(t, ts)

	resp, _ := postJSON(t, ts, "/v1/sessions/nope/batch", batchReq{T: 3})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown session: status %d, want 404", resp.StatusCode)
	}

	over := make([]sensors.Sample, srv.opts.MaxIMUBatch+1)
	resp, _ = postJSON(t, ts, "/v1/sessions/"+id+"/batch", batchReq{Samples: over, T: 3})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch: status %d, want 413", resp.StatusCode)
	}

	resp, _ = postJSON(t, ts, "/v1/sessions/"+id+"/batch",
		batchReq{Scans: []scanReq{{T: 1, RSS: []float64{-60}}}, T: 3})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("wrong AP count: status %d, want 400", resp.StatusCode)
	}

	// An empty batch on a fresh session closes nothing: 200 with zero
	// fixes, not an error.
	resp, body := postJSON(t, ts, "/v1/sessions/"+id+"/batch", batchReq{T: 0.5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("empty batch: status %d body %s", resp.StatusCode, body)
	}
	var out batchResp
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Fixes) != 0 {
		t.Errorf("empty batch produced %d fixes", len(out.Fixes))
	}
}

// TestGatedServerServes: a server with Options.Gate serves the same API
// and keeps emitting moloc-mode fixes; the gate is invisible to
// clients.
func TestGatedServerServes(t *testing.T) {
	cfgSrv, sys, err := newTestServer()
	if err != nil {
		t.Fatal(err)
	}
	cfgSrv.Close()
	fdb, err := sys.Survey.BuildDB(fingerprint.Euclidean{}, sys.Model.NumAPs())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewWithOptions(sys.Plan, fdb, sys.Model.NumAPs(), sys.MDB,
		sys.Config.Motion, Options{Gate: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	samples, scans := batchFeed(t, srv, 12)
	id := createSession(t, ts)
	resp, body := postJSON(t, ts, "/v1/sessions/"+id+"/batch",
		batchReq{Samples: samples, Scans: scans, T: 12})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gated batch: status %d body %s", resp.StatusCode, body)
	}
	var out batchResp
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Fixes) == 0 {
		t.Fatal("gated server produced no fixes")
	}
	for _, fx := range out.Fixes {
		if fx.Mode != "moloc" {
			t.Errorf("gated fix mode = %q, want moloc", fx.Mode)
		}
		if fx.Loc < 1 || fx.Loc > sys.Plan.NumLocs() {
			t.Errorf("gated fix loc %d out of range", fx.Loc)
		}
	}
}
