package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"moloc/internal/floorplan"
	"moloc/internal/geom"
	"moloc/internal/motion"
	"moloc/internal/motiondb"
)

// obsNear returns n observations of pair (i,j) jittered around the
// plan's map-derived ground truth, so they survive coarse sanitation in
// the retrainer's builder.
func obsNear(plan *floorplan.Plan, i, j, n int) []motiondb.Observation {
	gtDir, gtOff := floorplan.GroundTruthRLM(plan, i, j)
	out := make([]motiondb.Observation, 0, n)
	for k := 0; k < n; k++ {
		jit := float64(k%5) - 2 // -2..+2 degrees around map truth
		out = append(out, motiondb.Observation{
			From: i, To: j,
			RLM: motion.RLM{Dir: geom.NormalizeDeg(gtDir + jit), Off: gtOff + 0.1*float64(k%3)},
		})
	}
	return out
}

func firstPair(t *testing.T, mdb *motiondb.DB) [2]int {
	t.Helper()
	pairs := mdb.Pairs()
	if len(pairs) == 0 {
		t.Fatal("motion database has no trained pairs")
	}
	return pairs[0]
}

func TestObservationsEndpoint(t *testing.T) {
	srv, sys := testServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// An empty batch carries nothing to train on.
	if resp, body := postJSON(t, ts, "/v1/observations", obsReq{}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status %d body %s", resp.StatusCode, body)
	}

	// Per-observation validation rejects the batch with the index.
	bad := []motiondb.Observation{
		{From: 0, To: 2, RLM: motion.RLM{Dir: 10, Off: 1}},    // endpoint out of range
		{From: 1, To: 2, RLM: motion.RLM{Dir: 360, Off: 1}},   // bearing out of [0,360)
		{From: 1, To: 2, RLM: motion.RLM{Dir: 10, Off: -0.5}}, // negative offset
	}
	for k, o := range bad {
		resp, body := postJSON(t, ts, "/v1/observations", obsReq{Observations: []motiondb.Observation{o}})
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad observation %d: status %d body %s", k, resp.StatusCode, body)
		}
	}

	// A valid batch is accepted and queued.
	pair := firstPair(t, sys.MDB)
	resp, body := postJSON(t, ts, "/v1/observations",
		obsReq{Observations: obsNear(sys.Plan, pair[0], pair[1], 4)})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("valid batch: status %d body %s", resp.StatusCode, body)
	}
	var out obsResp
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Queued != 4 || out.Pending != 4 {
		t.Errorf("ack = %+v, want queued 4 pending 4", out)
	}
	if srv.met.observationsIn.Value() != 4 {
		t.Errorf("observations_in = %d", srv.met.observationsIn.Value())
	}
}

func TestObservationsLimits(t *testing.T) {
	srv, sys := testServer(t)
	srv.opts.MaxObsBatch = 2
	srv.retrain.queueCap = 3
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	pair := firstPair(t, sys.MDB)
	three := obsNear(sys.Plan, pair[0], pair[1], 3)

	// Beyond the batch cap: 413, nothing queued.
	if resp, body := postJSON(t, ts, "/v1/observations", obsReq{Observations: three}); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch: status %d body %s", resp.StatusCode, body)
	}
	if srv.retrain.pendingLen() != 0 {
		t.Errorf("oversized batch leaked %d into the queue", srv.retrain.pendingLen())
	}

	// Fill the queue (2), then overflow it (2 more > cap 3): 429.
	if resp, _ := postJSON(t, ts, "/v1/observations", obsReq{Observations: three[:2]}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first batch: status %d", resp.StatusCode)
	}
	resp, body := postJSON(t, ts, "/v1/observations", obsReq{Observations: three[:2]})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("overflowing batch: status %d body %s", resp.StatusCode, body)
	}
	if got := srv.met.observationsDropped.Value(); got != 2 {
		t.Errorf("observations_dropped = %d, want 2", got)
	}

	// A retrain drains the queue; ingest recovers.
	if _, err := srv.RetrainNow(); err != nil {
		t.Fatal(err)
	}
	if resp, _ := postJSON(t, ts, "/v1/observations", obsReq{Observations: three[:2]}); resp.StatusCode != http.StatusAccepted {
		t.Errorf("post-retrain batch: status %d", resp.StatusCode)
	}
}

// TestRetrainSwapsSnapshot is the deterministic end-to-end retrain
// check: queued observations shift one edge, RetrainNow recompiles
// exactly that edge incrementally, and the server publishes a new
// immutable view while the old one keeps serving the old statistics.
func TestRetrainSwapsSnapshot(t *testing.T) {
	srv, sys := testServer(t)
	base := srv.CompiledSnapshot()
	if base == nil {
		t.Fatal("no initial snapshot")
	}

	// An empty queue is a no-op: no republication.
	if n, err := srv.RetrainNow(); err != nil || n != 0 {
		t.Fatalf("empty retrain: n=%d err=%v", n, err)
	}
	if srv.CompiledSnapshot() != base {
		t.Fatal("empty retrain republished")
	}

	pair := firstPair(t, sys.MDB)
	old, ok := sys.MDB.Lookup(pair[0], pair[1])
	if !ok {
		t.Fatalf("pair %v untrained", pair)
	}
	obs := obsNear(sys.Plan, pair[0], pair[1], 12)
	if !srv.retrain.enqueue(obs) {
		t.Fatal("enqueue refused")
	}

	n, err := srv.RetrainNow()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("dirty edges = %d, want exactly the fed pair", n)
	}
	cur := srv.CompiledSnapshot()
	if cur == base {
		t.Fatal("snapshot not republished")
	}
	ne, ok := cur.Lookup(pair[0], pair[1])
	if !ok {
		t.Fatalf("retrained pair %v missing from the new view", pair)
	}
	if ne == old {
		t.Error("retrained entry identical to the offline one")
	}
	if ne.N != len(obs) {
		t.Errorf("retrained N = %d, want %d (all jittered samples survive sanitation)", ne.N, len(obs))
	}

	// The incremental path served it — no full-compile fallback.
	if got := srv.met.retrainFullCompiles.Value(); got != 0 {
		t.Errorf("retrain_full_compiles = %d, want 0", got)
	}
	if srv.met.retrains.Value() != 1 || srv.met.retrainDirtyEdges.Value() != 1 {
		t.Errorf("retrain metrics: retrains=%d dirty=%d, want 1/1",
			srv.met.retrains.Value(), srv.met.retrainDirtyEdges.Value())
	}

	// RCU: the superseded view is untouched for readers still holding it.
	if be, _ := base.Lookup(pair[0], pair[1]); be != old {
		t.Error("superseded view mutated by the retrain")
	}
	// The serving database itself is never mutated online.
	if me, _ := sys.MDB.Lookup(pair[0], pair[1]); me != old {
		t.Error("offline database mutated by the retrain")
	}

	// The queue drained; another retrain is a no-op.
	if n, err := srv.RetrainNow(); err != nil || n != 0 || srv.CompiledSnapshot() != cur {
		t.Errorf("drained retrain: n=%d err=%v", n, err)
	}
}
