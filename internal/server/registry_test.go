package server

import (
	"fmt"
	"testing"
	"time"
)

func TestRegistryReserveCap(t *testing.T) {
	r := newSessionRegistry(4)
	if !r.reserve(2) || !r.reserve(2) {
		t.Fatal("reservations under the cap refused")
	}
	if r.reserve(2) {
		t.Fatal("reservation beyond the cap admitted")
	}
	r.release()
	if !r.reserve(2) {
		t.Fatal("released capacity not reusable")
	}
}

func TestRegistryAllocIDSequence(t *testing.T) {
	r := newSessionRegistry(4)
	for i := 1; i <= 3; i++ {
		if id := r.allocID(); id != fmt.Sprintf("s%d", i) {
			t.Fatalf("allocID #%d = %q", i, id)
		}
	}
}

// TestRegistryRemoveMatch pins the identity semantics the two-phase
// sweeper depends on: removeMatch unmaps a session only while the exact
// pointer it holds is still the one mapped, so a delete+recreate racing
// the sweeper can never unmap the newcomer.
func TestRegistryRemoveMatch(t *testing.T) {
	r := newSessionRegistry(4)
	now := time.Now()
	old := newSession("s1", nil, now)
	r.reserve(10)
	r.insert(old)
	if !r.removeMatch(old) {
		t.Fatal("removeMatch refused the mapped session")
	}
	if r.len() != 0 {
		t.Fatalf("len = %d after removeMatch", r.len())
	}
	// Same id, different session: the stale pointer must not unmap it.
	fresh := newSession("s1", nil, now)
	r.reserve(10)
	r.insert(fresh)
	if r.removeMatch(old) {
		t.Fatal("removeMatch unmapped a recreated session via a stale pointer")
	}
	if got, ok := r.get("s1"); !ok || got != fresh {
		t.Fatal("recreated session lost")
	}
}

// TestRegistryStriping checks the shard walk covers exactly the mapped
// sessions: every insert lands in the stripe shardOf names, and
// appendShard over all stripes enumerates the full population once.
func TestRegistryStriping(t *testing.T) {
	const n = 500
	r := newSessionRegistry(8)
	now := time.Now()
	for i := 0; i < n; i++ {
		if !r.reserve(n) {
			t.Fatal("reserve refused under the cap")
		}
		r.insert(newSession(r.allocID(), nil, now))
	}
	if r.len() != n {
		t.Fatalf("len = %d, want %d", r.len(), n)
	}
	seen := make(map[string]bool, n)
	var buf []*session
	for i := 0; i < r.numShards(); i++ {
		buf = r.appendShard(i, buf[:0])
		for _, ss := range buf {
			if seen[ss.id] {
				t.Fatalf("session %s appears in two stripes", ss.id)
			}
			seen[ss.id] = true
			if got := r.shard(ss.id); got != &r.shards[i] {
				t.Fatalf("session %s mapped in stripe %d but shard() points elsewhere", ss.id, i)
			}
		}
	}
	if len(seen) != n {
		t.Fatalf("stripe walk found %d sessions, want %d", len(seen), n)
	}
	if _, ok := r.remove("s1"); !ok {
		t.Fatal("remove failed")
	}
	if r.len() != n-1 {
		t.Fatalf("len = %d after remove", r.len())
	}
}
