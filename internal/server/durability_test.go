// Crash-recovery and degradation-ladder tests: the acceptance criteria
// of the durability layer. A "crash" is a server that is simply
// abandoned — no Close, no flush — exactly what kill -9 leaves behind;
// recovery must rebuild bit-identical training state from the newest
// checkpoint plus the WAL tail.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"moloc/internal/core"
	"moloc/internal/fault"
	"moloc/internal/fingerprint"
	"moloc/internal/motiondb"
	"moloc/internal/sensors"
	"moloc/internal/stats"
)

// buildSys builds the small office-hall deployment once per test.
func buildSys(t *testing.T) *core.System {
	t.Helper()
	cfg := core.NewConfig()
	cfg.NumTrainTraces = 50
	cfg.NumTestTraces = 2
	cfg.Trace.NumLegs = 10
	sys, err := core.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// durableServer builds a server over sys with explicit Options, so a
// test can boot several "processes" against one data directory.
func durableServer(t *testing.T, sys *core.System, o Options) *Server {
	t.Helper()
	fdb, err := sys.Survey.BuildDB(fingerprint.Euclidean{}, sys.Model.NumAPs())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewWithOptions(sys.Plan, fdb, sys.Model.NumAPs(), sys.MDB, sys.Config.Motion, o)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// postObs posts one observation batch expecting the given status.
func postObs(t *testing.T, ts *httptest.Server, obs []motiondb.Observation, want int) {
	t.Helper()
	resp, body := postJSON(t, ts, "/v1/observations", obsReq{Observations: obs})
	if resp.StatusCode != want {
		t.Fatalf("observations: status %d, want %d; body %s", resp.StatusCode, want, body)
	}
}

// trainState reads the retrainer's training state (DB + builder
// accumulators) as canonical bytes. Tests only — no ingest may race.
func trainState(t *testing.T, s *Server) (db, builder []byte) {
	t.Helper()
	s.retrain.mu.Lock()
	defer s.retrain.mu.Unlock()
	db, err := s.retrain.db.Encode()
	if err != nil {
		t.Fatal(err)
	}
	builder, err = s.retrain.builder.EncodeState()
	if err != nil {
		t.Fatal(err)
	}
	return db, builder
}

// healthStatus fetches /v1/healthz and returns the status field.
func healthStatus(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	st, _ := out["status"].(string)
	return st
}

// driveHTTPFix walks one interval through the HTTP API (IMU batch, one
// scan near loc, tick past the boundary) and returns the fix.
func driveHTTPFix(t *testing.T, ts *httptest.Server, sys *core.System, id string, t0 float64, loc int, seed int64) fixResp {
	t.Helper()
	g, err := sensors.NewGenerator(sys.Config.Sensors)
	if err != nil {
		t.Fatal(err)
	}
	samples, _ := g.Walk(nil, t0, t0+4, 1.8, 90, sensors.Device{}, 0, stats.NewRNG(seed))
	resp, body := postJSON(t, ts, "/v1/sessions/"+id+"/imu", imuReq{Samples: samples})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("imu: %d %s", resp.StatusCode, body)
	}
	rss := sys.Model.Sample(sys.Plan.LocPos(loc), stats.NewRNG(seed+100))
	resp, body = postJSON(t, ts, "/v1/sessions/"+id+"/scan", scanReq{T: t0 + 1, RSS: rss})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("scan: %d %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts, "/v1/sessions/"+id+"/tick", tickReq{T: t0 + 10})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tick: %d %s", resp.StatusCode, body)
	}
	var fix fixResp
	if err := json.Unmarshal(body, &fix); err != nil {
		t.Fatal(err)
	}
	return fix
}

// TestCrashRecoveryBitIdentical: kill -9 after acknowledged batches
// must lose nothing — the recovered training state equals folding the
// checkpoint and the WAL tail, byte for byte, against a reference
// server that never crashed.
func TestCrashRecoveryBitIdentical(t *testing.T) {
	sys := buildSys(t)
	pairs := sys.MDB.Pairs()
	if len(pairs) < 2 {
		t.Fatal("fixture has too few trained pairs")
	}
	b1 := obsNear(sys.Plan, pairs[0][0], pairs[0][1], 12)
	b2 := obsNear(sys.Plan, pairs[1][0], pairs[1][1], 12)
	b3 := obsNear(sys.Plan, pairs[0][0], pairs[0][1], 7)

	// Server A: fold b1 into a checkpoint, acknowledge b2 and b3 into the
	// WAL only, then crash (abandon without Close).
	dir := t.TempDir()
	a := durableServer(t, sys, Options{DataDir: dir})
	tsA := httptest.NewServer(a.Handler())
	postObs(t, tsA, b1, http.StatusAccepted)
	if _, err := a.RetrainNow(); err != nil {
		t.Fatal(err)
	}
	postObs(t, tsA, b2, http.StatusAccepted)
	postObs(t, tsA, b3, http.StatusAccepted)
	tsA.Close()

	// Server B boots over the crashed directory.
	b := durableServer(t, sys, Options{DataDir: dir})
	if got := b.ServingState(); got != "ok" {
		t.Fatalf("recovered state = %q, want ok", got)
	}
	if got := b.met.walReplayed.Value(); got != int64(len(b2)+len(b3)) {
		t.Errorf("wal_replayed_observations = %d, want %d", got, len(b2)+len(b3))
	}

	// Reference: the same batches folded with no crash in between.
	ref := durableServer(t, sys, Options{})
	if !ref.retrain.enqueue(b1) {
		t.Fatal("reference enqueue")
	}
	if _, err := ref.RetrainNow(); err != nil {
		t.Fatal(err)
	}
	if !ref.retrain.enqueue(b2) || !ref.retrain.enqueue(b3) {
		t.Fatal("reference enqueue")
	}
	if _, err := ref.RetrainNow(); err != nil {
		t.Fatal(err)
	}

	gotDB, gotBld := trainState(t, b)
	wantDB, wantBld := trainState(t, ref)
	if !bytes.Equal(gotDB, wantDB) {
		t.Error("recovered motion DB differs from fold(checkpoint, WAL tail)")
	}
	if !bytes.Equal(gotBld, wantBld) {
		t.Error("recovered builder state differs from the uncrashed reference")
	}
}

// TestTornTailTruncatedAtBoot: a partial record at the end of the WAL —
// the normal residue of a crash mid-write — is truncated away, never a
// boot failure, and every complete record still replays.
func TestTornTailTruncatedAtBoot(t *testing.T) {
	sys := buildSys(t)
	pair := firstPair(t, sys.MDB)
	b1 := obsNear(sys.Plan, pair[0], pair[1], 5)
	b2 := obsNear(sys.Plan, pair[0], pair[1], 3)

	dir := t.TempDir()
	a := durableServer(t, sys, Options{DataDir: dir})
	tsA := httptest.NewServer(a.Handler())
	postObs(t, tsA, b1, http.StatusAccepted)
	postObs(t, tsA, b2, http.StatusAccepted)
	tsA.Close()

	// Tear the tail: append a few garbage bytes to the last segment, as a
	// crash mid-append would leave.
	walDir := filepath.Join(dir, "wal")
	entries, err := os.ReadDir(walDir)
	if err != nil {
		t.Fatal(err)
	}
	var last string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".seg") {
			last = filepath.Join(walDir, e.Name())
		}
	}
	if last == "" {
		t.Fatal("no WAL segment written")
	}
	f, err := os.OpenFile(last, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	b := durableServer(t, sys, Options{DataDir: dir})
	if got := b.ServingState(); got != "ok" {
		t.Fatalf("state after torn tail = %q, want ok", got)
	}
	if b.met.walTornTruncations.Value() < 1 {
		t.Error("torn tail was not counted as truncated")
	}
	if got := b.met.walReplayed.Value(); got != int64(len(b1)+len(b2)) {
		t.Errorf("wal_replayed_observations = %d, want %d", got, len(b1)+len(b2))
	}
}

// TestCleanShutdownLeavesNothingToReplay: Close folds and checkpoints
// the queue, so the next boot replays zero records and starts ok.
func TestCleanShutdownLeavesNothingToReplay(t *testing.T) {
	sys := buildSys(t)
	pair := firstPair(t, sys.MDB)
	batch := obsNear(sys.Plan, pair[0], pair[1], 9)

	dir := t.TempDir()
	a := durableServer(t, sys, Options{DataDir: dir})
	tsA := httptest.NewServer(a.Handler())
	postObs(t, tsA, batch, http.StatusAccepted)
	tsA.Close()
	a.Close()
	wantDB, wantBld := trainState(t, a)

	b := durableServer(t, sys, Options{DataDir: dir})
	if got := b.ServingState(); got != "ok" {
		t.Fatalf("state = %q, want ok", got)
	}
	if got := b.met.walReplayed.Value(); got != 0 {
		t.Errorf("clean shutdown still replayed %d observations", got)
	}
	gotDB, gotBld := trainState(t, b)
	if !bytes.Equal(gotDB, wantDB) || !bytes.Equal(gotBld, wantBld) {
		t.Error("state after clean shutdown + boot differs from before")
	}
}

// TestCorruptCheckpointFailSoft is the fail-soft acceptance test: every
// checkpoint corrupt at boot means acknowledged training data may be
// gone, so the server comes up degraded — but localization keeps
// flowing on the pure fingerprint path, healthz says so, and the first
// successful retrain+checkpoint climbs back to ok with motion matching
// restored.
func TestCorruptCheckpointFailSoft(t *testing.T) {
	sys := buildSys(t)
	pair := firstPair(t, sys.MDB)

	dir := t.TempDir()
	a := durableServer(t, sys, Options{DataDir: dir})
	tsA := httptest.NewServer(a.Handler())
	postObs(t, tsA, obsNear(sys.Plan, pair[0], pair[1], 6), http.StatusAccepted)
	if _, err := a.RetrainNow(); err != nil {
		t.Fatal(err)
	}
	tsA.Close()
	a.Close()

	// Flip a byte in every checkpoint on disk.
	ckDir := filepath.Join(dir, "checkpoints")
	entries, err := os.ReadDir(ckDir)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := 0
	for _, e := range entries {
		p := filepath.Join(ckDir, e.Name())
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-1] ^= 0xff
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		corrupted++
	}
	if corrupted == 0 {
		t.Fatal("no checkpoint written")
	}

	b := durableServer(t, sys, Options{DataDir: dir})
	ts := httptest.NewServer(b.Handler())
	defer ts.Close()
	if got := healthStatus(t, ts); got != "degraded-fingerprint-only" {
		t.Fatalf("healthz status = %q, want degraded-fingerprint-only", got)
	}
	if b.met.checkpointCorrupt.Value() != int64(corrupted) {
		t.Errorf("checkpoint_corrupt_skipped = %d, want %d",
			b.met.checkpointCorrupt.Value(), corrupted)
	}

	// Degraded sessions still get fixes, tagged fingerprint.
	id := createSession(t, ts)
	fix := driveHTTPFix(t, ts, sys, id, 0, 5, 1)
	if fix.Mode != "fingerprint" {
		t.Fatalf("degraded fix mode = %q, want fingerprint", fix.Mode)
	}
	if fix.Loc < 1 || fix.Loc > sys.Plan.NumLocs() {
		t.Fatalf("degraded fix out of range: %+v", fix)
	}

	// New training data arrives, retrains, and checkpoints: back to ok,
	// with motion matching restored on the next fix.
	postObs(t, ts, obsNear(sys.Plan, pair[0], pair[1], 6), http.StatusAccepted)
	if _, err := b.RetrainNow(); err != nil {
		t.Fatal(err)
	}
	if got := healthStatus(t, ts); got != "ok" {
		t.Fatalf("healthz after recovery = %q, want ok", got)
	}
	fix = driveHTTPFix(t, ts, sys, id, 100, 5, 2)
	if fix.Mode != "moloc" {
		t.Fatalf("recovered fix mode = %q, want moloc", fix.Mode)
	}
}

// TestWALWriteErrorShedsIngest: the WAL disk returning EIO must refuse
// the batch (nothing unacknowledged can be lost), degrade the ladder,
// and keep serving; once the disk heals, ingest and the ladder recover.
func TestWALWriteErrorShedsIngest(t *testing.T) {
	sys := buildSys(t)
	pair := firstPair(t, sys.MDB)
	batch := obsNear(sys.Plan, pair[0], pair[1], 4)

	eio := errors.New("injected: EIO")
	inj := fault.NewInjector(fault.Disk{},
		fault.Rule{Op: fault.OpWrite, PathContains: "wal", Err: eio})
	srv := durableServer(t, sys, Options{DataDir: t.TempDir(), FS: inj})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if got := srv.ServingState(); got != "ok" {
		t.Fatalf("boot state = %q", got)
	}

	// First append hits the injected EIO: 503, ladder degraded.
	postObs(t, ts, batch, http.StatusServiceUnavailable)
	if got := healthStatus(t, ts); got != "degraded-fingerprint-only" {
		t.Fatalf("state after WAL EIO = %q", got)
	}
	if srv.met.walAppendErrors.Value() != 1 {
		t.Errorf("wal_append_errors = %d, want 1", srv.met.walAppendErrors.Value())
	}

	// The rule is spent; the disk is healthy again. Ingest succeeds, and
	// the retrain that checkpoints the batch climbs back to ok.
	postObs(t, ts, batch, http.StatusAccepted)
	if _, err := srv.RetrainNow(); err != nil {
		t.Fatal(err)
	}
	if got := healthStatus(t, ts); got != "ok" {
		t.Fatalf("state after recovery = %q, want ok", got)
	}
}

// TestWALOpenFailureServesFingerprintOnly: when the log directory is
// unusable at boot, the server still comes up — degraded, shedding
// ingestion with 503, serving fingerprint-only fixes.
func TestWALOpenFailureServesFingerprintOnly(t *testing.T) {
	sys := buildSys(t)
	pair := firstPair(t, sys.MDB)

	inj := fault.NewInjector(fault.Disk{},
		fault.Rule{Op: fault.OpMkdirAll, PathContains: "wal", Count: 1 << 20})
	srv := durableServer(t, sys, Options{DataDir: t.TempDir(), FS: inj})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if got := healthStatus(t, ts); got != "degraded-fingerprint-only" {
		t.Fatalf("state with unusable WAL dir = %q", got)
	}
	postObs(t, ts, obsNear(sys.Plan, pair[0], pair[1], 3), http.StatusServiceUnavailable)

	id := createSession(t, ts)
	fix := driveHTTPFix(t, ts, sys, id, 0, 7, 3)
	if fix.Mode != "fingerprint" {
		t.Fatalf("fix mode = %q, want fingerprint", fix.Mode)
	}
}

// TestClosePromptDespiteLongIntervals: shutdown must not wait out the
// sweeper's or retrainer's period — waitDone returns on Close.
func TestClosePromptDespiteLongIntervals(t *testing.T) {
	sys := buildSys(t)
	srv := durableServer(t, sys, Options{
		SweepInterval:   time.Hour,
		RetrainInterval: time.Hour,
	})
	srv.Start()
	start := time.Now()
	srv.Close()
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("Close took %v with hour-long intervals", d)
	}
}
