// Online motion-database training: the observation ingest endpoint,
// the retrainer state, and the background loop that publishes refreshed
// compiled views. Phones (or a fleet-side pipeline) POST crowdsourced
// RLM observations; every RetrainInterval the retrainer folds the
// queued batch into a streaming motiondb.Builder, rebuilds the entries
// of the touched pairs, recompiles only the dirty edges' probability
// tables (motiondb.RecompileEdges), and publishes the new immutable
// view through the server's RCU snapshot — training cost never lands on
// the serving path, and trackers pick up the swap with one atomic load
// per tick.
package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sync"
	"time"

	"moloc/internal/floorplan"
	"moloc/internal/localizer"
	"moloc/internal/motiondb"
	"moloc/internal/wire"
)

// retrainer owns the online-training state. It trains against a private
// clone of the serving database — localizers compiled over the original
// never race with training mutations — and only ever hands the serving
// side immutable compiled views through the server's snapshot.
//
// One mutex guards everything below it: ingest appends to the pending
// queue, RetrainNow drains it and rebuilds. Holding mu across the whole
// retrain keeps the invariants trivial; ingest blocks for at most the
// few milliseconds a batch rebuild takes, invisible next to the
// network.
type retrainer struct {
	alpha, beta float64
	queueCap    int

	mu      sync.Mutex
	pending []motiondb.Observation
	dropped int64 // observations bounced off a full queue
	builder *motiondb.Builder
	db      *motiondb.DB
	dirty   [][2]int // scratch, reused across retrains
	// lastSeq is the WAL sequence number of the newest appended batch;
	// ckptSeq is the coverage of the last published checkpoint. They
	// are equal exactly when every acknowledged observation is folded
	// into a durable checkpoint (durability.go).
	lastSeq uint64
	ckptSeq uint64
}

// newRetrainer builds the online-training state over a clone of the
// serving database, with the builder compiled for the sessions'
// localizer parameters.
func newRetrainer(plan *floorplan.Plan, mdb *motiondb.DB, lcfg localizer.Config, o Options) (*retrainer, error) {
	bcfg := motiondb.NewBuilderConfig()
	// The map fallback would replace offline-trained entries of touched
	// but still undertrained pairs with wide map-derived priors; online
	// training must only ever override an edge once enough real samples
	// survive sanitation.
	bcfg.MapFallback = false
	b, err := motiondb.NewBuilder(plan, bcfg)
	if err != nil {
		return nil, err
	}
	if o.TrainGraph != nil {
		b.UseGraph(o.TrainGraph)
	}
	return &retrainer{
		alpha:    lcfg.Alpha,
		beta:     lcfg.Beta,
		queueCap: o.ObsQueueCap,
		builder:  b,
		db:       mdb.Clone(),
	}, nil
}

// enqueue appends a validated batch, reporting false when it would
// overflow the queue (the client retries after the next retrain drains
// it).
func (rt *retrainer) enqueue(obs []motiondb.Observation) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if len(rt.pending)+len(obs) > rt.queueCap {
		rt.dropped += int64(len(obs))
		return false
	}
	rt.pending = append(rt.pending, obs...)
	return true
}

// pendingLen reports the queued observation count.
func (rt *retrainer) pendingLen() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return len(rt.pending)
}

// enqueueDurable is enqueue with the WAL in the write path: the batch
// is appended — and made durable per the fsync policy — before it
// enters the pending queue, under one lock so WAL order and queue order
// agree. payload is the batch pre-marshaled outside the lock. A nil
// store degrades to plain enqueue (durability off); a store whose WAL
// never opened refuses the batch with errWALUnavailable.
func (rt *retrainer) enqueueDurable(store *durableStore, payload []byte, obs []motiondb.Observation) (bool, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if len(rt.pending)+len(obs) > rt.queueCap {
		rt.dropped += int64(len(obs))
		return false, nil
	}
	if store != nil {
		if store.log == nil {
			return false, errWALUnavailable
		}
		seq, err := store.log.Append(payload)
		if err != nil {
			return false, err
		}
		rt.lastSeq = seq
	}
	rt.pending = append(rt.pending, obs...)
	return true, nil
}

// enqueueStream is the streaming twin of enqueueDurable: the append
// skips its own fsync (wal.AppendNoSync) because the stream handler
// releases the ack only after GroupCommitter.WaitDurable covers the
// returned sequence — that split is what lets one fsync serve every
// stream that raced in. Queue order still matches WAL order (both
// happen under rt.mu). ok=false means the queue is full; the stream
// handler blocks and retries rather than shedding.
func (rt *retrainer) enqueueStream(store *durableStore, payload []byte, obs []motiondb.Observation) (seq uint64, ok bool, err error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if len(rt.pending)+len(obs) > rt.queueCap {
		return 0, false, nil
	}
	if store != nil {
		if store.log == nil {
			return 0, false, errWALUnavailable
		}
		seq, err = store.log.AppendNoSync(payload)
		if err != nil {
			return 0, false, err
		}
		rt.lastSeq = seq
	}
	rt.pending = append(rt.pending, obs...)
	return seq, true, nil
}

// enqueueReplay feeds one replayed WAL batch into the pending queue at
// boot, dropping the individual observations that fail validation (only
// possible through corruption that beat the record CRC). It reports
// false when the queue is full.
func (rt *retrainer) enqueueReplay(obs []motiondb.Observation, numLocs int, seq uint64) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if seq > rt.lastSeq {
		rt.lastSeq = seq
	}
	if len(rt.pending)+len(obs) > rt.queueCap {
		rt.dropped += int64(len(obs))
		return false
	}
	for _, o := range obs {
		if validateObservation(o, numLocs) != nil {
			continue
		}
		rt.pending = append(rt.pending, o)
	}
	return true
}

// initSeqs records the recovered checkpoint coverage at boot. lastSeq
// only ratchets forward: WAL replay may already have advanced it past
// the checkpoint.
func (rt *retrainer) initSeqs(ckptSeq uint64) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.ckptSeq = ckptSeq
	if rt.lastSeq < ckptSeq {
		rt.lastSeq = ckptSeq
	}
}

// restore replaces the training state with a recovered checkpoint's: db
// becomes the training database and the builder accumulators are
// rebuilt from the serialized state. Only called at boot, before any
// ingest can race.
func (rt *retrainer) restore(db *motiondb.DB, builderState []byte) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if err := rt.builder.RestoreState(builderState); err != nil {
		return err
	}
	rt.db = db
	return nil
}

// RetrainNow drains the observation queue, rebuilds the entries of
// every touched pair, recompiles the dirty edges, and — when an edge
// actually changed — publishes the new compiled view through the RCU
// snapshot. The background loop calls it every RetrainInterval; tests
// and embedders may call it directly. It returns the number of dirty
// edges republished.
//
// An edge goes dirty when its rebuilt entry differs from the one the
// retrainer last installed: a touched pair still short of MinSamples
// stays clean (and untrained pairs stay map-seeded or absent), and a
// batch that rebuilds to identical statistics publishes nothing. Once a
// never-compiled pair crosses the sample threshold the incremental
// recompile cannot extend the adjacency, so RetrainNow falls back to
// the full Compile — the executable spec RecompileEdges is tested
// against.
// With durability on (durability.go), a successful retrain also
// publishes a checkpoint covering every acknowledged batch — even one
// with zero dirty edges, because the builder's accumulators changed —
// and climbs the degradation ladder back to ok; a checkpoint failure
// degrades instead, so the ladder always reflects whether acknowledged
// data is durably folded.
func (s *Server) RetrainNow() (int, error) {
	rt := s.retrain
	rt.mu.Lock()
	defer rt.mu.Unlock()
	durable := s.store != nil
	if len(rt.pending) == 0 && (!durable || rt.lastSeq == rt.ckptSeq) {
		return 0, nil
	}
	if durable && s.state.Load() == stateDegraded {
		s.setState(stateRecovering)
	}
	t0 := time.Now()
	rt.builder.AddAll(rt.pending)
	rt.pending = rt.pending[:0]

	built := rt.builder.Build()
	dirty := rt.dirty[:0]
	for _, pair := range rt.builder.TakeTouched() {
		ne, ok := built.Lookup(pair[0], pair[1])
		if !ok {
			continue // not enough surviving samples to (re)train this edge yet
		}
		if cur, ok := rt.db.Lookup(pair[0], pair[1]); ok && cur == ne {
			continue // rebuilt to identical statistics; nothing to publish
		}
		rt.db.Set(pair[0], pair[1], ne)
		dirty = append(dirty, pair)
	}
	rt.dirty = dirty

	if len(dirty) > 0 {
		cmp, err := s.snap.Load().RecompileEdges(rt.db, dirty)
		if err != nil {
			s.met.retrainFullCompiles.Inc()
			cmp, err = rt.db.Compile(rt.alpha, rt.beta)
			if err != nil {
				// The old snapshot keeps serving; stale statistics, not an
				// outage. The pending batch is already folded, so the next
				// retrain retries only the compile.
				return 0, fmt.Errorf("server: retrain compile: %w", err)
			}
		}
		s.snap.Store(cmp)
		s.met.retrains.Inc()
		s.met.retrainDirtyEdges.Add(int64(len(dirty)))
		s.met.retrainSeconds.Observe(time.Since(t0).Seconds())
	}

	if durable && rt.lastSeq > rt.ckptSeq {
		if err := s.checkpointStateLocked(rt); err != nil {
			s.met.checkpointErrors.Inc()
			s.setState(stateDegraded)
			return len(dirty), fmt.Errorf("server: checkpoint: %w", err)
		}
		rt.ckptSeq = rt.lastSeq
	}
	if durable {
		// A durable fold clears only the durability rungs: the
		// follower-stale rung is owned by the replication monitor
		// (replication.go) and must survive a successful local checkpoint —
		// a stale follower's checkpoints are durable but still behind.
		s.casState(stateDegraded, stateOK)
		s.casState(stateRecovering, stateOK)
	}
	return len(dirty), nil
}

// retrainLoop runs RetrainNow every RetrainInterval until Close. After
// an error the wait backs off (doubling, capped at 8 intervals) so a
// failing disk is not hammered every period; the backoff wait is still
// Close-aware, so shutdown stays prompt (see waitDone).
func (s *Server) retrainLoop() {
	defer s.wg.Done()
	delay := s.opts.RetrainInterval
	maxDelay := 8 * s.opts.RetrainInterval
	for !s.waitDone(delay) {
		if _, err := s.RetrainNow(); err != nil {
			s.met.retrainErrors.Inc()
			if delay *= 2; delay > maxDelay {
				delay = maxDelay
			}
		} else {
			delay = s.opts.RetrainInterval
		}
	}
}

// obsReq is the ingest body: a batch of crowdsourced observations.
type obsReq struct {
	Observations []motiondb.Observation `json:"observations"`
}

// obsResp acknowledges an accepted batch.
type obsResp struct {
	Queued  int `json:"queued"`
	Pending int `json:"pending"`
}

// obsIngestScratch is the pooled per-request state of the JSON ingest
// path: the raw body, the decoded batch, and the WAL payload encoding.
// All three reuse their capacity across requests (//moloc:reuse) —
// encoding/json decodes into the retained Observations slice without
// reallocating it — which is what holds the handler to a handful of
// allocations per batch instead of one per observation.
type obsIngestScratch struct {
	body    []byte
	req     obsReq
	payload []byte
}

var obsIngestPool = sync.Pool{
	New: func() interface{} { return new(obsIngestScratch) },
}

// handleObservations ingests a crowdsourced batch. The //moloc:durable
// contract (checked by moloclint's durableack): with durability on, the
// 202 may only be written after the batch reached the WAL.
//
//moloc:durable
func (s *Server) handleObservations(w http.ResponseWriter, r *http.Request) {
	// A read replica must not accept writes: the leader's WAL is the one
	// history followers replay, so a batch accepted here would fork it.
	// 409 (not 503) — the request is fine, this server is the wrong one.
	if s.role.Load() == roleFollower {
		httpError(w, http.StatusConflict,
			"read replica: send observations to the leader at "+s.opts.FollowAddr+
				" (or promote this follower)")
		return
	}
	sc := obsIngestPool.Get().(*obsIngestScratch)
	defer obsIngestPool.Put(sc)
	var ok bool
	if sc.body, ok = s.readBody(w, r, sc.body); !ok {
		return
	}
	sc.req.Observations = sc.req.Observations[:0]
	if err := json.Unmarshal(sc.body, &sc.req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	req := &sc.req
	if len(req.Observations) == 0 {
		httpError(w, http.StatusBadRequest, "no observations")
		return
	}
	if len(req.Observations) > s.opts.MaxObsBatch {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch of %d observations exceeds the %d cap; split the upload",
				len(req.Observations), s.opts.MaxObsBatch))
		return
	}
	n := s.plan.NumLocs()
	for i, o := range req.Observations {
		if err := validateObservation(o, n); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("observation %d: %v", i, err))
			return
		}
	}
	// With durability on, the batch must be in the WAL before the 202:
	// an acknowledged batch survives kill -9. Encode outside the lock —
	// in the binary wire format, which WAL replay self-identifies by its
	// magic byte and which reuses the pooled buffer — and append inside
	// it (enqueueDurable) so log order matches queue order.
	var payload []byte
	if s.store != nil {
		sc.payload = wire.AppendObservations(sc.payload[:0], req.Observations)
		payload = sc.payload
	}
	ok, err := s.retrain.enqueueDurable(s.store, payload, req.Observations)
	if err != nil {
		// The disk refused the write. Nothing was acknowledged, so
		// nothing can be lost — but durability is gone, so degrade and
		// shed ingestion until a checkpoint lands again.
		s.met.walAppendErrors.Inc()
		s.setState(stateDegraded)
		httpError(w, http.StatusServiceUnavailable,
			"observation log unavailable; batch not accepted")
		return
	}
	if !ok {
		s.met.observationsDropped.Add(int64(len(req.Observations)))
		httpError(w, http.StatusTooManyRequests,
			"observation queue full; retry after the next retrain")
		return
	}
	if s.store != nil {
		s.met.walAppends.Inc()
	}
	s.met.observationsIn.Add(int64(len(req.Observations)))
	writeJSON(w, http.StatusAccepted, obsResp{
		Queued:  len(req.Observations),
		Pending: s.retrain.pendingLen(),
	})
}

// validateObservation rejects out-of-range endpoints and non-physical
// RLMs before they can reach the builder. Self-loops pass — the builder
// counts and drops them like any crowdsourced artifact.
func validateObservation(o motiondb.Observation, numLocs int) error {
	if o.From < 1 || o.From > numLocs || o.To < 1 || o.To > numLocs {
		return fmt.Errorf("endpoints (%d,%d) out of range [1,%d]", o.From, o.To, numLocs)
	}
	if math.IsNaN(o.RLM.Dir) || o.RLM.Dir < 0 || o.RLM.Dir >= 360 {
		return fmt.Errorf("dir must be a bearing in [0,360), got %g", o.RLM.Dir)
	}
	if math.IsNaN(o.RLM.Off) || math.IsInf(o.RLM.Off, 0) || o.RLM.Off < 0 {
		return fmt.Errorf("off must be a distance >= 0, got %g", o.RLM.Off)
	}
	return nil
}
