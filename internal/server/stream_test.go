// Streaming-ingest tests: the binary frame plane end to end — durable
// acks through the group committer, crash recovery with zero
// acked-but-lost records, session tracking over the stream, and the
// protocol's dedup/gap discipline.
package server

import (
	"encoding/json"
	"net"
	"net/http/httptest"
	"sync"
	"testing"

	"moloc/internal/sensors"
	"moloc/internal/stats"
	"moloc/internal/wire"
)

// startStream exposes srv's streaming plane on a loopback listener and
// returns its address. The accept loop exits when Close tears the
// listener down; errc keeps the goroutine joinable by the test.
func startStream(t *testing.T, srv *Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ServeStreams(ln) }()
	t.Cleanup(func() {
		if err := <-errc; err != nil {
			t.Errorf("ServeStreams: %v", err)
		}
	})
	return ln.Addr().String()
}

func TestStreamIngestDurableAck(t *testing.T) {
	sys := buildSys(t)
	dir := t.TempDir()
	srv := durableServer(t, sys, Options{DataDir: dir})
	defer srv.Close()
	addr := startStream(t, srv)

	pair := firstPair(t, sys.MDB)
	batch := obsNear(sys.Plan, pair[0], pair[1], 20)

	c, err := wire.DialStream(addr, "phone-1", wire.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const frames = 8
	for i := 0; i < frames; i++ {
		if err := c.SendObservations(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WaitAcked(); err != nil {
		t.Fatal(err)
	}
	if got := c.Acked(); got != frames {
		t.Fatalf("acked %d frames, want %d", got, frames)
	}
	if got := srv.retrain.pendingLen(); got != frames*len(batch) {
		t.Fatalf("pending %d observations, want %d", got, frames*len(batch))
	}
	gst := srv.GroupStats()
	if gst.Batches == 0 || gst.Syncs == 0 {
		t.Fatalf("group commit idle: %+v", gst)
	}
	if gst.Syncs > gst.Batches {
		t.Fatalf("more syncs (%d) than batches (%d)", gst.Syncs, gst.Batches)
	}
	if srv.met.streamAcks.Value() == 0 || srv.met.streamConns.Value() != 1 {
		t.Fatalf("stream metrics: acks=%d conns=%d",
			srv.met.streamAcks.Value(), srv.met.streamConns.Value())
	}
	if _, err := srv.RetrainNow(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamCrashRecoveryNoAckedLoss is the durable-ack invariant on
// the stream plane: every acknowledged frame survives a crash (a server
// abandoned without Close) and replays on the next boot.
func TestStreamCrashRecoveryNoAckedLoss(t *testing.T) {
	sys := buildSys(t)
	dir := t.TempDir()
	srv := durableServer(t, sys, Options{DataDir: dir})
	addr := startStream(t, srv)

	pair := firstPair(t, sys.MDB)
	batch := obsNear(sys.Plan, pair[0], pair[1], 10)

	c, err := wire.DialStream(addr, "phone-crash", wire.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const frames = 5
	for i := 0; i < frames; i++ {
		if err := c.SendObservations(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WaitAcked(); err != nil {
		t.Fatal(err)
	}
	c.Close()
	// Crash: no Close, no flush, no checkpoint. Only the stream Close
	// path is exercised so the listener goroutine can be joined.
	srv.closeStreams()

	srv2 := durableServer(t, sys, Options{DataDir: dir})
	defer srv2.Close()
	if got := srv2.met.walReplayed.Value(); got != frames*int64(len(batch)) {
		t.Fatalf("replayed %d observations, want %d (acked must never be lost)",
			got, frames*len(batch))
	}
}

// TestStreamResumeRedelivers: after a server restart the stream
// registry is gone, the replacement hello-acks sequence 0, and the
// client carries on — its acked tail is already in the WAL, its unacked
// tail gets resent. At-least-once, never loss.
func TestStreamResumeRedelivers(t *testing.T) {
	sys := buildSys(t)
	dir := t.TempDir()
	srv := durableServer(t, sys, Options{DataDir: dir})
	addr := startStream(t, srv)

	pair := firstPair(t, sys.MDB)
	batch := obsNear(sys.Plan, pair[0], pair[1], 4)

	// The dial target is swapped when the replacement server comes up.
	var mu sync.Mutex
	curAddr := addr
	c, err := wire.DialStream("", "phone-resume", wire.ClientOptions{
		RedialAttempts: 3,
		Dial: func() (net.Conn, error) {
			mu.Lock()
			a := curAddr
			mu.Unlock()
			return net.Dial("tcp", a)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SendObservations(batch); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitAcked(); err != nil {
		t.Fatal(err)
	}

	// Crash the first server (stream plane torn down so its goroutines
	// join; everything else abandoned) and boot a replacement on the
	// same data directory.
	srv.closeStreams()
	srv2 := durableServer(t, sys, Options{DataDir: dir})
	defer srv2.Close()
	if got := srv2.met.walReplayed.Value(); got != int64(len(batch)) {
		t.Fatalf("replayed %d observations, want %d", got, len(batch))
	}
	mu.Lock()
	curAddr = startStream(t, srv2)
	mu.Unlock()

	// The old conn was severed; the next send redials, resumes, and the
	// new frame lands past the acked one.
	if err := c.SendObservations(batch); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitAcked(); err != nil {
		t.Fatal(err)
	}
	if c.Resumes() != 1 {
		t.Fatalf("resumes = %d, want 1", c.Resumes())
	}
	if got := c.Acked(); got != 2 {
		t.Fatalf("acked = %d, want 2", got)
	}
}

// TestStreamSessionTracking drives a full localization interval over
// the stream plane: IMU batch, scan, tick, fix reply.
func TestStreamSessionTracking(t *testing.T) {
	sys := buildSys(t)
	srv := durableServer(t, sys, Options{}) // in-memory: acks without WAL
	defer srv.Close()
	addr := startStream(t, srv)

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, body := postJSON(t, ts, "/v1/sessions", createReq{HeightM: 1.71, WeightKg: 68})
	if resp.StatusCode != 201 {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	var created createResp
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}

	c, err := wire.DialStream(addr, "phone-track", wire.ClientOptions{SessionID: created.SessionID})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	g, err := sensors.NewGenerator(sys.Config.Sensors)
	if err != nil {
		t.Fatal(err)
	}
	loc := 1
	samples, _ := g.Walk(nil, 0, 4, 1.8, 90, sensors.Device{}, 0, stats.NewRNG(7))
	if err := c.SendIMU(samples); err != nil {
		t.Fatal(err)
	}
	rss := sys.Model.Sample(sys.Plan.LocPos(loc), stats.NewRNG(107))
	if err := c.SendScan(1, rss); err != nil {
		t.Fatal(err)
	}
	fixLoc, _, ok, err := c.Tick(10)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("tick produced no fix despite a scan in the interval")
	}
	if fixLoc < 1 || fixLoc > sys.Plan.NumLocs() {
		t.Fatalf("fix location %d out of range [1,%d]", fixLoc, sys.Plan.NumLocs())
	}
	// An unknown session must be refused at hello.
	if _, err := wire.DialStream(addr, "phone-bad", wire.ClientOptions{SessionID: "nope"}); err == nil {
		t.Fatal("hello with unknown session succeeded")
	}
}

// TestStreamDuplicateAndGap drives the raw protocol: a duplicate frame
// is re-acked without re-enqueueing, and a sequence gap kills the
// connection with an error frame.
func TestStreamDuplicateAndGap(t *testing.T) {
	sys := buildSys(t)
	srv := durableServer(t, sys, Options{})
	defer srv.Close()
	addr := startStream(t, srv)

	pair := firstPair(t, sys.MDB)
	batch := obsNear(sys.Plan, pair[0], pair[1], 3)
	payload := wire.AppendObservations(nil, batch)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rd := wire.NewReader(conn, 0)
	wr := wire.NewWriter(conn)

	hello := func() {
		wr.WriteFrame(wire.FrameHello, 0, wire.AppendHello(nil, "raw-stream", ""))
		if err := wr.Flush(); err != nil {
			t.Fatal(err)
		}
		fr, err := rd.ReadFrame()
		if err != nil || fr.Type != wire.FrameHelloAck {
			t.Fatalf("hello-ack: %v type %d", err, fr.Type)
		}
	}
	sendObs := func(seq uint64) wire.Frame {
		wr.WriteFrame(wire.FrameObsBatch, seq, payload)
		if err := wr.Flush(); err != nil {
			t.Fatal(err)
		}
		fr, err := rd.ReadFrame()
		if err != nil {
			t.Fatalf("reply to seq %d: %v", seq, err)
		}
		return fr
	}

	hello()
	if fr := sendObs(1); fr.Type != wire.FrameAck || fr.Seq != 1 {
		t.Fatalf("first frame: type %d seq %d", fr.Type, fr.Seq)
	}
	before := srv.retrain.pendingLen()
	if fr := sendObs(1); fr.Type != wire.FrameAck || fr.Seq != 1 {
		t.Fatalf("duplicate: type %d seq %d", fr.Type, fr.Seq)
	}
	if got := srv.retrain.pendingLen(); got != before {
		t.Fatalf("duplicate frame re-enqueued: pending %d -> %d", before, got)
	}
	if fr := sendObs(5); fr.Type != wire.FrameError {
		t.Fatalf("gap: got frame type %d, want error", fr.Type)
	}

	// Fresh connection, same stream: resumes at the acked frame, and a
	// frame the stream already acked is tolerated.
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	rd, wr = wire.NewReader(conn2, 0), wire.NewWriter(conn2)
	wr.WriteFrame(wire.FrameHello, 0, wire.AppendHello(nil, "raw-stream", ""))
	if err := wr.Flush(); err != nil {
		t.Fatal(err)
	}
	fr, err := rd.ReadFrame()
	if err != nil || fr.Type != wire.FrameHelloAck || fr.Seq != 1 {
		t.Fatalf("resume hello-ack: %v type %d seq %d", err, fr.Type, fr.Seq)
	}
}
