package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"moloc/internal/sensors"
	"moloc/internal/tracker"
)

// fakeClock is a hand-advanced clock injected through Options.Now so
// lifecycle tests control idleness deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// testServerOpts is testServer with explicit serving limits.
func testServerOpts(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	srv, _ := testServer(t)
	srv.opts = opts.withDefaults()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// TestServerSessionExpiry drives the full eviction story: an idle
// session past its TTL is evicted by the sweeper, subsequent requests
// (including a tick from a client that still holds the id) see 404,
// and /v1/metricsz reports the eviction.
func TestServerSessionExpiry(t *testing.T) {
	clock := newFakeClock()
	srv, ts := testServerOpts(t, Options{SessionTTL: time.Minute, Now: clock.Now})
	id := createSession(t, ts)

	// Activity keeps the session alive across sweeps.
	clock.Advance(45 * time.Second)
	resp, _ := postJSON(t, ts, "/v1/sessions/"+id+"/imu",
		imuReq{Samples: []sensors.Sample{{T: 0, Accel: 9.8}}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("imu: %d", resp.StatusCode)
	}
	clock.Advance(45 * time.Second)
	if n := srv.sweepOnce(); n != 0 {
		t.Fatalf("sweeper evicted %d active sessions", n)
	}

	// A session some client still references mid-flight: grab the live
	// pointer, let the TTL lapse, sweep, then use both the stale pointer
	// and the HTTP id.
	ss, _ := srv.reg.get(id)
	clock.Advance(2 * time.Minute)
	if n := srv.sweepOnce(); n != 1 {
		t.Fatalf("sweeper evicted %d sessions, want 1", n)
	}
	if srv.NumSessions() != 0 {
		t.Errorf("sessions after expiry = %d", srv.NumSessions())
	}
	if ss.withTracker(clock.Now(), func(*tracker.Tracker) {}) {
		t.Error("stale session pointer should refuse work after eviction")
	}
	resp, body := postJSON(t, ts, "/v1/sessions/"+id+"/tick", tickReq{T: 3})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("tick on evicted session: %d %s", resp.StatusCode, body)
	}

	// The eviction is visible in the metrics.
	var met metricsResp
	getJSON(t, ts, "/v1/metricsz", &met)
	if met.Counters["sessions_expired"] != 1 {
		t.Errorf("sessions_expired = %d, want 1 (counters %v)",
			met.Counters["sessions_expired"], met.Counters)
	}
	if met.Counters["sessions_created"] != 1 {
		t.Errorf("sessions_created = %d, want 1", met.Counters["sessions_created"])
	}
}

// TestServerSweeperBackground runs the real background sweeper (no
// manual sweepOnce) against a short TTL on the wall clock.
func TestServerSweeperBackground(t *testing.T) {
	srv, ts := testServerOpts(t, Options{
		SessionTTL:    30 * time.Millisecond,
		SweepInterval: 5 * time.Millisecond,
	})
	srv.Start()
	defer srv.Close()
	createSession(t, ts)
	deadline := time.Now().Add(2 * time.Second)
	for srv.NumSessions() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := srv.NumSessions(); n != 0 {
		t.Errorf("background sweeper left %d sessions", n)
	}
}

// TestServerMaxSessionsOverflow verifies the 429 load-shedding path
// and that deleting a session frees a slot.
func TestServerMaxSessionsOverflow(t *testing.T) {
	_, ts := testServerOpts(t, Options{MaxSessions: 2})
	a := createSession(t, ts)
	createSession(t, ts)
	resp, body := postJSON(t, ts, "/v1/sessions", createReq{HeightM: 1.7, WeightKg: 70})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow create: %d %s", resp.StatusCode, body)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+a, nil)
	del, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	del.Body.Close()
	if del.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d", del.StatusCode)
	}
	createSession(t, ts) // the freed slot is reusable

	var met metricsResp
	getJSON(t, ts, "/v1/metricsz", &met)
	if met.Counters["sessions_rejected"] != 1 {
		t.Errorf("sessions_rejected = %d, want 1", met.Counters["sessions_rejected"])
	}
}

// TestServerOversizedBody verifies MaxBytesReader answers 413 on every
// JSON endpoint.
func TestServerOversizedBody(t *testing.T) {
	_, ts := testServerOpts(t, Options{MaxBodyBytes: 256})
	id := createSession(t, ts)
	huge := `{"t":1,"rss":[` + strings.Repeat("-60,", 400) + `-60]}`
	for _, path := range []string{
		"/v1/sessions",
		"/v1/sessions/" + id + "/imu",
		"/v1/sessions/" + id + "/scan",
		"/v1/sessions/" + id + "/tick",
	} {
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader([]byte(huge)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s with oversized body: %d, want 413", path, resp.StatusCode)
		}
	}
}

// TestServerIMUBatchCap verifies the per-batch sample cap independent
// of the byte cap.
func TestServerIMUBatchCap(t *testing.T) {
	_, ts := testServerOpts(t, Options{MaxIMUBatch: 8, MaxBodyBytes: 1 << 24})
	id := createSession(t, ts)
	batch := make([]sensors.Sample, 9)
	for i := range batch {
		batch[i] = sensors.Sample{T: float64(i) * 0.1, Accel: 9.8}
	}
	resp, body := postJSON(t, ts, "/v1/sessions/"+id+"/imu", imuReq{Samples: batch})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch: %d %s, want 413", resp.StatusCode, body)
	}
	resp, _ = postJSON(t, ts, "/v1/sessions/"+id+"/imu", imuReq{Samples: batch[:8]})
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("cap-sized batch: %d, want 202", resp.StatusCode)
	}
}

// TestServerNoScanTick is the end-to-end regression for the stale-scan
// bug: an interval with a scan produces 200, later intervals with no
// scan beyond the staleness window produce 204, and fresh RSS revives
// the stream.
func TestServerNoScanTick(t *testing.T) {
	srv, _ := testServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	id := createSession(t, ts)

	feedIMU := func(t0, t1 float64) {
		t.Helper()
		var batch []sensors.Sample
		for x := t0; x < t1; x += 0.1 {
			batch = append(batch, sensors.Sample{T: x, Accel: 9.8})
		}
		resp, _ := postJSON(t, ts, "/v1/sessions/"+id+"/imu", imuReq{Samples: batch})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("imu: %d", resp.StatusCode)
		}
	}
	rss := make([]float64, srv.numAPs)
	for i := range rss {
		rss[i] = -60
	}

	feedIMU(0, 3)
	resp, _ := postJSON(t, ts, "/v1/sessions/"+id+"/scan", scanReq{T: 1, RSS: rss})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("scan: %d", resp.StatusCode)
	}
	resp, body := postJSON(t, ts, "/v1/sessions/"+id+"/tick", tickReq{T: 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tick with scan: %d %s", resp.StatusCode, body)
	}
	// [3,6) is served by the staleness window; [6,9) onward must not be.
	feedIMU(3, 9)
	resp, _ = postJSON(t, ts, "/v1/sessions/"+id+"/tick", tickReq{T: 6})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tick in window: %d", resp.StatusCode)
	}
	resp, body = postJSON(t, ts, "/v1/sessions/"+id+"/tick", tickReq{T: 9})
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("tick with stale scan: %d %s, want 204", resp.StatusCode, body)
	}
	resp, _ = postJSON(t, ts, "/v1/sessions/"+id+"/scan", scanReq{T: 10, RSS: rss})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("scan: %d", resp.StatusCode)
	}
	feedIMU(9, 12)
	resp, _ = postJSON(t, ts, "/v1/sessions/"+id+"/tick", tickReq{T: 12})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("tick after fresh scan: %d, want 200", resp.StatusCode)
	}
}

// TestServerMetricsEndpoint checks the observability contract: per
// route/status request counters, latency histograms, and the
// candidate-set-size histogram all populate.
func TestServerMetricsEndpoint(t *testing.T) {
	srv, _ := testServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	id := createSession(t, ts)

	rss := make([]float64, srv.numAPs)
	for i := range rss {
		rss[i] = -60
	}
	postJSON(t, ts, "/v1/sessions/"+id+"/scan", scanReq{T: 1, RSS: rss})
	postJSON(t, ts, "/v1/sessions/"+id+"/imu",
		imuReq{Samples: []sensors.Sample{{T: 0.5, Accel: 9.8}}})
	resp, _ := postJSON(t, ts, "/v1/sessions/"+id+"/tick", tickReq{T: 5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tick: %d", resp.StatusCode)
	}
	postJSON(t, ts, "/v1/sessions/nope/tick", tickReq{T: 1}) // a 404 to count

	var met metricsResp
	getJSON(t, ts, "/v1/metricsz", &met)
	if met.Sessions != 1 {
		t.Errorf("sessions gauge = %d", met.Sessions)
	}
	for _, c := range []string{
		"requests{route=create,status=201}",
		"requests{route=scan,status=202}",
		"requests{route=imu,status=202}",
		"requests{route=tick,status=200}",
		"requests{route=tick,status=404}",
	} {
		if met.Counters[c] < 1 {
			t.Errorf("counter %q = %d, want >= 1 (have %v)", c, met.Counters[c], met.Counters)
		}
	}
	for _, h := range []string{
		"latency_seconds{route=tick}",
		"tick_seconds",
		"candidate_set_size",
	} {
		if met.Histograms[h].Count < 1 {
			t.Errorf("histogram %q empty", h)
		}
	}
	if met.Histograms["candidate_set_size"].Sum < 1 {
		t.Error("candidate-set sizes should be >= 1 per fix")
	}
}

// getJSON fetches and decodes a GET endpoint.
func getJSON(t *testing.T, ts *httptest.Server, path string, out interface{}) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}
