// Session lifecycle: idle-TTL tracking, the background expiry sweeper,
// and the serving limits in Options. The ROADMAP's "millions of users"
// target makes unbounded session maps the first thing to fall over —
// phones abandon sessions far more often than they DELETE them — so
// every session records its last data-plane activity and a sweeper
// evicts the idle ones.
package server

import (
	"net"
	"runtime"
	"sync"
	"time"

	"moloc/internal/fault"
	"moloc/internal/floorplan"
	"moloc/internal/tracker"
	"moloc/internal/wal"
)

// Defaults for the zero fields of Options.
const (
	// DefaultSessionTTL is how long a session may go without data-plane
	// activity (imu/scan/tick) before the sweeper evicts it.
	DefaultSessionTTL = 15 * time.Minute
	// DefaultSweepInterval is how often the background sweeper scans for
	// idle sessions.
	DefaultSweepInterval = 30 * time.Second
	// DefaultMaxSessions caps live sessions; creation beyond it answers
	// 429 so an overload sheds load instead of growing without bound.
	DefaultMaxSessions = 10000
	// DefaultMaxBodyBytes caps any request body (http.MaxBytesReader).
	DefaultMaxBodyBytes = 1 << 20
	// DefaultMaxIMUBatch caps samples per IMU upload; at the paper's
	// 10 Hz sensor rate it covers several minutes per request.
	DefaultMaxIMUBatch = 4096
	// DefaultRetrainInterval is the background retrainer's period: how
	// often queued observations are folded into the motion database and
	// a fresh compiled view is published (retrain.go).
	DefaultRetrainInterval = 30 * time.Second
	// DefaultMaxObsBatch caps observations per ingest request.
	DefaultMaxObsBatch = 4096
	// DefaultObsQueueCap bounds observations buffered between retrains;
	// ingest answers 429 beyond it.
	DefaultObsQueueCap = 1 << 16
	// DefaultCheckpointRetain is how many motion-DB checkpoints survive
	// pruning: the newest plus one fallback in case the newest is found
	// corrupt at the next boot.
	DefaultCheckpointRetain = 2
	// DefaultStreamWindow caps the credit window a binary stream
	// connection is advertised (stream.go): at most this many
	// unacknowledged frames may be in flight per stream.
	DefaultStreamWindow = 32
	// DefaultWheelSlotDur is the tick wheel's slot width (wheel.go):
	// server-paced sessions are checked for due intervals at this
	// granularity. Coarser than any sane tracker interval (3 s in the
	// paper), so a slot batches many sessions; fine enough that pacing
	// adds at most a quarter second to a fix's age.
	DefaultWheelSlotDur = 250 * time.Millisecond
	// DefaultWheelSlots is the wheel's slot count; slots x slot duration
	// is the horizon within which a deadline lands in its exact slot
	// (16 s by default — beyond it entries are re-examined per rotation,
	// the standard hashed-wheel overflow behavior).
	DefaultWheelSlots = 64
	// DefaultReplLagMax is how far a follower may trail its leader —
	// measured as time since it last covered the leader's published tail
	// — before the degradation ladder enters follower-stale
	// (replication.go) and fixes fall back to the fingerprint path.
	DefaultReplLagMax = 10 * time.Second
)

// Options are the serving limits of a Server. The zero value of each
// field selects the package default, so Options{} is production-ready.
type Options struct {
	// SessionTTL is the idle eviction deadline: a session with no IMU,
	// scan, or tick for this long is evicted by the sweeper. Reads (GET)
	// do not extend a session's life.
	SessionTTL time.Duration
	// SweepInterval is the background sweeper's period.
	SweepInterval time.Duration
	// MaxSessions bounds concurrently live sessions; POST /v1/sessions
	// answers 429 beyond it.
	MaxSessions int
	// MaxBodyBytes bounds every JSON request body; larger bodies answer
	// 413.
	MaxBodyBytes int64
	// MaxIMUBatch bounds samples per IMU upload; larger batches answer
	// 413.
	MaxIMUBatch int
	// Workers sizes the data-plane worker pool: imu, scan, and tick
	// requests run on a fixed set of workers sharded by session ID (one
	// session always lands on the same worker), so tracker CPU is
	// bounded regardless of client concurrency. Zero selects
	// GOMAXPROCS.
	Workers int
	// Shards stripes the session registry (registry.go). Zero selects
	// Workers, which aligns registry stripes with pool workers: both key
	// by the same FNV-1a hash, so a stripe's sessions are owned by
	// exactly one worker and stripe locks are effectively uncontended.
	// Values other than Workers still serialize correctly (the pool is
	// the ownership authority); they only change lock granularity.
	Shards int
	// PaceAll forces every session onto the server-paced tick wheel
	// (molocd -paced), as if each create had sent "paced":true.
	PaceAll bool
	// WheelSlotDur is the paced tick wheel's slot width; zero selects
	// DefaultWheelSlotDur.
	WheelSlotDur time.Duration
	// WheelSlots is the wheel's slot count; zero selects
	// DefaultWheelSlots.
	WheelSlots int
	// Gate enables reachability gating in every session's localizer
	// (localizer.Config.Gate): steady-state candidate scans are
	// restricted to the locations one motion-DB hop from the previous
	// fix's candidates, which bounds the per-fix cost by the adjacency
	// degree instead of the radio-map size. Fixes may differ from the
	// ungated ranking only when the fingerprint's nearest locations are
	// unreachable; every degradation (fingerprint-only mode, Reset,
	// empty mask) falls back to the full scan.
	Gate bool
	// RetrainInterval is the background retrainer's period (retrain.go):
	// queued POST /v1/observations batches are folded into the motion
	// database and the dirty edges recompiled this often.
	RetrainInterval time.Duration
	// MaxObsBatch bounds observations per ingest request; larger batches
	// answer 413.
	MaxObsBatch int
	// ObsQueueCap bounds observations buffered awaiting retraining; a
	// full queue answers 429 until a retrain drains it.
	ObsQueueCap int
	// StreamWindow caps the credit window advertised to binary stream
	// clients (stream.go): the most unacknowledged observation frames a
	// stream may keep in flight. The effective window shrinks with the
	// retrain queue's headroom, so loaded servers throttle streams
	// instead of shedding them.
	StreamWindow int
	// TrainGraph, when non-nil, attaches the walk graph to the online
	// builder so observations between non-adjacent locations are
	// discarded at ingest (the paper's adjacency consistency filter).
	TrainGraph *floorplan.WalkGraph
	// DataDir, when set, turns on crash-safe durability (durability.go):
	// observation batches are written to a WAL under DataDir/wal before
	// they are acknowledged, and every retrain publishes a checkpoint
	// under DataDir/checkpoints. Empty means in-memory only (the
	// pre-durability behavior).
	DataDir string
	// FS is the filesystem seam for durability; nil selects the real
	// disk. Tests inject a fault.Injector here.
	FS fault.FS
	// FsyncPolicy selects when WAL appends are made durable; the zero
	// value is wal.SyncAlways.
	FsyncPolicy wal.SyncPolicy
	// FsyncInterval is the group-commit window under wal.SyncInterval.
	FsyncInterval time.Duration
	// WALSegmentBytes overrides the WAL segment size (tests shrink it).
	WALSegmentBytes int64
	// CheckpointRetain is how many checkpoints pruning keeps.
	CheckpointRetain int
	// FollowAddr, when set, boots the server as a read replica
	// (replication.go): a replication client follows the leader's stream
	// listener at this address, replaying its WAL into the local one.
	// Ingest answers 409 pointing here until Promote. Requires DataDir —
	// a follower's whole point is a durable copy of the leader's history.
	FollowAddr string
	// ReplLagMax is the staleness window for the follower-stale rung;
	// zero selects DefaultReplLagMax.
	ReplLagMax time.Duration
	// ReplChunkBytes sizes the checkpoint chunks served to bootstrapping
	// followers; zero selects the replica package default.
	ReplChunkBytes int
	// ReplDial overrides the follower's leader dialer — tests inject
	// in-process pipes or fault-wrapped connections. With ReplDial set,
	// FollowAddr may be any non-empty label.
	ReplDial func() (net.Conn, error)
	// Now is the clock, overridable by tests; nil means time.Now.
	Now func() time.Time
}

// withDefaults fills zero fields with the package defaults.
func (o Options) withDefaults() Options {
	if o.SessionTTL <= 0 {
		o.SessionTTL = DefaultSessionTTL
	}
	if o.SweepInterval <= 0 {
		o.SweepInterval = DefaultSweepInterval
	}
	if o.MaxSessions <= 0 {
		o.MaxSessions = DefaultMaxSessions
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if o.MaxIMUBatch <= 0 {
		o.MaxIMUBatch = DefaultMaxIMUBatch
	}
	if o.Workers < 1 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Shards < 1 {
		o.Shards = o.Workers
	}
	if o.WheelSlotDur <= 0 {
		o.WheelSlotDur = DefaultWheelSlotDur
	}
	if o.WheelSlots < 1 {
		o.WheelSlots = DefaultWheelSlots
		// Finer slots with the default count would shrink the wheel's
		// horizon below tracker intervals; keep the default horizon so a
		// rescheduled entry still lands inside the rotation.
		if o.WheelSlotDur < DefaultWheelSlotDur {
			o.WheelSlots = int(time.Duration(DefaultWheelSlots) * DefaultWheelSlotDur / o.WheelSlotDur)
		}
	}
	if o.RetrainInterval <= 0 {
		o.RetrainInterval = DefaultRetrainInterval
	}
	if o.MaxObsBatch <= 0 {
		o.MaxObsBatch = DefaultMaxObsBatch
	}
	if o.ObsQueueCap <= 0 {
		o.ObsQueueCap = DefaultObsQueueCap
	}
	if o.StreamWindow <= 0 {
		o.StreamWindow = DefaultStreamWindow
	}
	if o.CheckpointRetain <= 0 {
		o.CheckpointRetain = DefaultCheckpointRetain
	}
	if o.ReplLagMax <= 0 {
		o.ReplLagMax = DefaultReplLagMax
	}
	if o.FS == nil {
		o.FS = fault.Disk{}
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// session is one live tracking session. The fields after mu are
// guarded by it; id, created, and paced are immutable.
type session struct {
	id      string
	created time.Time
	// paced marks a session ticked by the server's wheel (wheel.go)
	// rather than by client tick requests. Set before the session is
	// published in the registry, never changed after.
	paced bool

	mu         sync.Mutex
	tk         *tracker.Tracker
	lastActive time.Time
	evicted    bool
	// push, when non-nil, is the bound stream connection's serialized
	// writer: the wheel pushes this session's paced fixes to it as
	// unsolicited Fix frames (stream.go).
	push *streamConn
}

func newSession(id string, tk *tracker.Tracker, now time.Time) *session {
	return &session{id: id, created: now, tk: tk, lastActive: now}
}

// withTracker runs fn on the session's tracker under its lock,
// recording the data-plane activity. It reports false — and does not
// run fn — when the session has already been evicted, so a handler
// holding a stale pointer cannot operate on (or revive) a dead
// session.
func (ss *session) withTracker(now time.Time, fn func(tk *tracker.Tracker)) bool {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.evicted {
		return false
	}
	ss.lastActive = now
	fn(ss.tk)
	return true
}

// withTrackerPaced is withTracker for the server-driven tick wheel: it
// runs fn under the session lock but does NOT record data-plane
// activity — server pacing must not keep an abandoned session alive
// past its idle TTL; only client uploads do that. It also hands back
// the bound stream pusher (nil when no stream is attached), read under
// the same lock so the wheel never races a connection teardown. alive
// is false for an evicted session, which tells the wheel to drop the
// entry instead of rescheduling it.
func (ss *session) withTrackerPaced(fn func(tk *tracker.Tracker)) (push *streamConn, alive bool) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.evicted {
		return nil, false
	}
	fn(ss.tk)
	return ss.push, true
}

// bindPush attaches (or, with nil, detaches) the stream connection that
// receives this session's paced fixes. The last binder wins; a
// reconnecting client simply rebinds.
func (ss *session) bindPush(sc *streamConn) {
	ss.mu.Lock()
	ss.push = sc
	ss.mu.Unlock()
}

// unbindPush clears the pusher only while it is still sc, so a dying
// connection cannot unbind its replacement.
func (ss *session) unbindPush(sc *streamConn) {
	ss.mu.Lock()
	if ss.push == sc {
		ss.push = nil
	}
	ss.mu.Unlock()
}

// sessionView is a consistent read of the mutable session state.
type sessionView struct {
	lastActive time.Time
	fix        *tracker.Fix
	stats      tracker.Stats
}

// view snapshots the session without counting as activity; ok is false
// for an evicted session.
func (ss *session) view(ttl time.Duration) (sessionView, bool) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.evicted {
		return sessionView{}, false
	}
	return sessionView{
		lastActive: ss.lastActive,
		fix:        ss.tk.LastFix(),
		stats:      ss.tk.Stats(),
	}, true
}

// expireIfIdle marks the session evicted when it has been idle for at
// least ttl, reporting whether this call performed the eviction.
func (ss *session) expireIfIdle(ttl time.Duration, now time.Time) bool {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.evicted || now.Sub(ss.lastActive) < ttl {
		return false
	}
	ss.evicted = true
	return true
}

// close marks an explicitly deleted session evicted so requests racing
// with the delete observe 404 instead of touching a zombie tracker.
func (ss *session) close() {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.evicted = true
}

// Start launches the background loops: the expiry sweeper, the online
// retrainer (retrain.go), and the paced tick wheel driver (wheel.go).
// It is idempotent; Close stops all three. Servers embedded in tests
// may skip Start and drive sweepOnce, RetrainNow, or AdvanceWheel
// directly.
func (s *Server) Start() {
	s.startOnce.Do(func() {
		n := 3
		if s.follower != nil {
			// Follower mode adds the replication client and the staleness
			// monitor (replication.go).
			n += 2
		}
		s.wg.Add(n)
		go s.sweepLoop()
		go s.retrainLoop()
		go s.paceLoop()
		if s.follower != nil {
			go s.runFollower()
			go s.replMonitor()
		}
	})
}

// waitDone sleeps for d or until Close, reporting true when the server
// is shutting down. Every background wait goes through it so a Close
// during an arbitrarily long interval — or an error-backoff wait —
// returns within the drain budget instead of after the timer.
func (s *Server) waitDone(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-s.done:
		return true
	case <-t.C:
		return false
	}
}

// sweepLoop evicts idle sessions incrementally: one registry shard per
// wake, cycling through all shards every SweepInterval, so eviction
// never holds more than one stripe lock — and only long enough to
// snapshot that stripe — no matter how many sessions are live. Stream
// resume state is swept once per full rotation.
func (s *Server) sweepLoop() {
	defer s.wg.Done()
	n := s.reg.numShards()
	wait := s.opts.SweepInterval / time.Duration(n)
	if wait <= 0 {
		wait = time.Microsecond
	}
	var (
		cursor int
		buf    []*session
	)
	for !s.waitDone(wait) {
		_, buf = s.sweepShard(cursor, buf)
		cursor++
		if cursor == n {
			cursor = 0
			s.stream.sweep(s.opts.SessionTTL, s.opts.Now())
		}
	}
}

// Close stops the background loops and the data-plane worker pool
// (in-flight requests finish; later ones answer 503) and waits for
// both to exit. With durability on, queued observations are folded and
// checkpointed one last time and the WAL is synced closed, so a clean
// shutdown leaves nothing for the next boot to replay. It does not
// tear down live sessions; the process is expected to exit after.
func (s *Server) Close() {
	s.stopOnce.Do(func() { close(s.done) })
	// The replication client (if any) stops with the server; Promote may
	// already have stopped it (replication.go).
	s.stopReplication()
	// The streaming plane goes first: once the WAL starts closing no
	// handler may append, so stop accepting, sever live connections, and
	// join every handler before touching the store.
	s.closeStreams()
	s.wg.Wait()
	if _, err := s.RetrainNow(); err != nil {
		// The final flush failing is the same class as a failed retrain:
		// acknowledged data is still in the WAL for the next boot.
		s.met.retrainErrors.Inc()
	}
	s.closeStore()
	s.pool.close()
}

// sweepShard evicts shard i's sessions idle beyond the TTL, reusing buf
// as the candidate scratch, and returns the eviction count plus the
// (possibly regrown) buffer. Eviction keeps the two-phase discipline:
// mark the session evicted under its own lock (so in-flight handlers
// holding the pointer turn into 404s), then unmap it — and the unmap is
// identity-checked, so a delete/recreate racing the sweep cannot take
// out the wrong session.
//
//moloc:reuse
func (s *Server) sweepShard(i int, buf []*session) (int, []*session) {
	now := s.opts.Now()
	buf = s.reg.appendShard(i, buf[:0])
	evicted := 0
	for _, ss := range buf {
		if !ss.expireIfIdle(s.opts.SessionTTL, now) {
			continue
		}
		s.reg.removeMatch(ss)
		evicted++
	}
	if evicted > 0 {
		s.met.sessionsExpired.Add(int64(evicted))
	}
	return evicted, buf
}

// sweepOnce sweeps every shard (and the stream resume state) in one
// call and returns how many sessions it evicted — the whole-registry
// sweep, for tests and embedders; the background loop spreads the same
// work across the rotation instead.
func (s *Server) sweepOnce() int {
	evicted := 0
	var buf []*session
	for i := 0; i < s.reg.numShards(); i++ {
		var n int
		n, buf = s.sweepShard(i, buf)
		evicted += n
	}
	// Stream resume state rides the same idle TTL: once no client has
	// been connected for SessionTTL, nobody is coming back to resume.
	s.stream.sweep(s.opts.SessionTTL, s.opts.Now())
	return evicted
}
