// Sharded session registry: the session map striped N ways by the same
// FNV-1a hash the worker pool shards work with (pool.go:shardOf). At
// city scale the old single Server.mu in front of a flat map was the
// last global serialization point on the fix path — every create,
// lookup, delete, and sweep contended on it regardless of which session
// they touched. Striping by the pool's own hash means (a) lookups on
// different sessions take different locks, and (b) with the default
// Shards == Workers a registry shard's sessions are owned by exactly
// one worker, so a shard lock is effectively uncontended at steady
// state: the only writers are create/delete/sweep, and the one worker
// that serves the shard's sessions never blocks behind another's.
//
// The live-session count and ID allocator are atomics outside the
// shards, so NumSessions and the MaxSessions admission check never take
// any lock at all: admission is reserve-then-insert (count first, map
// second), and eviction gives the reservation back after the map
// delete, keeping the count an upper bound on map occupancy — the
// conservative direction for an admission limit.
package server

import (
	"strconv"
	"sync"
	"sync/atomic"
)

// sessionShard is one stripe of the registry. Fields after mu are
// guarded by it.
type sessionShard struct {
	mu sync.Mutex
	m  map[string]*session
}

// sessionRegistry stripes live sessions over shards; see the package
// comment above for the locking discipline.
type sessionRegistry struct {
	shards []sessionShard
	count  atomic.Int64 // live sessions (reserved + inserted)
	nextID atomic.Int64 // monotonic session ID allocator
}

// newSessionRegistry builds a registry with n stripes (n < 1 selects 1).
func newSessionRegistry(n int) *sessionRegistry {
	if n < 1 {
		n = 1
	}
	r := &sessionRegistry{shards: make([]sessionShard, n)}
	for i := range r.shards {
		r.shards[i].m = make(map[string]*session)
	}
	return r
}

// numShards reports the stripe count.
func (r *sessionRegistry) numShards() int { return len(r.shards) }

// shard returns the stripe owning id.
func (r *sessionRegistry) shard(id string) *sessionShard {
	return &r.shards[shardOf(id, len(r.shards))]
}

// allocID mints the next session ID ("s1", "s2", ...).
func (r *sessionRegistry) allocID() string {
	return "s" + strconv.FormatInt(r.nextID.Add(1), 10)
}

// reserve claims one session slot against max, reporting false without
// side effects when the registry is full. A successful reserve must be
// followed by insert (or release, on a failed create).
func (r *sessionRegistry) reserve(max int) bool {
	if r.count.Add(1) > int64(max) {
		r.count.Add(-1)
		return false
	}
	return true
}

// release returns a reserved-but-never-inserted slot.
func (r *sessionRegistry) release() { r.count.Add(-1) }

// insert files a session under its reserved slot.
func (r *sessionRegistry) insert(ss *session) {
	sh := r.shard(ss.id)
	sh.mu.Lock()
	sh.m[ss.id] = ss
	sh.mu.Unlock()
}

// get looks a session up by ID.
func (r *sessionRegistry) get(id string) (*session, bool) {
	sh := r.shard(id)
	sh.mu.Lock()
	ss, ok := sh.m[id]
	sh.mu.Unlock()
	return ss, ok
}

// remove unmaps and returns the session under id, releasing its slot.
func (r *sessionRegistry) remove(id string) (*session, bool) {
	sh := r.shard(id)
	sh.mu.Lock()
	ss, ok := sh.m[id]
	if ok {
		delete(sh.m, id)
	}
	sh.mu.Unlock()
	if ok {
		r.count.Add(-1)
	}
	return ss, ok
}

// removeMatch unmaps id only while it still resolves to ss, releasing
// the slot when it does. It is the sweeper's second phase: between
// marking ss evicted and unmapping it, the ID could in principle have
// been deleted and reused, and a blind delete would then evict an
// innocent newborn.
func (r *sessionRegistry) removeMatch(ss *session) bool {
	sh := r.shard(ss.id)
	sh.mu.Lock()
	cur, ok := sh.m[ss.id]
	if ok = ok && cur == ss; ok {
		delete(sh.m, ss.id)
	}
	sh.mu.Unlock()
	if ok {
		r.count.Add(-1)
	}
	return ok
}

// len reports the number of live sessions (including reservations in
// flight, so it can transiently exceed map occupancy by the number of
// concurrent creates).
func (r *sessionRegistry) len() int { return int(r.count.Load()) }

// appendShard appends shard i's sessions to dst, reusing its capacity —
// the sweeper's per-wake snapshot, taken under one stripe lock instead
// of a whole-registry lock.
//
//moloc:reuse
func (r *sessionRegistry) appendShard(i int, dst []*session) []*session {
	sh := &r.shards[i]
	sh.mu.Lock()
	for _, ss := range sh.m {
		dst = append(dst, ss)
	}
	sh.mu.Unlock()
	return dst
}
