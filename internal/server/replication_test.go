// Replication chaos tests: the acceptance criteria of WAL-shipping
// leader/follower serving. A "crash" is, as in durability_test.go, a
// server that is simply abandoned — no Close, no flush (for a follower
// the replication client is stopped first, which is exactly what its
// process dying takes with it). The properties pinned here: a follower
// resumes from its acked sequence with zero double-applies and a
// bit-identical motion DB; a dead leader pushes the follower into the
// follower-stale rung and a revived one pulls it back out; promotion
// opens ingest with every leader-acked observation already durable
// locally.
package server

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"moloc/internal/checkpoint"
	"moloc/internal/fault"
	"moloc/internal/motiondb"
	"moloc/internal/wal"
	"moloc/internal/wire"
)

// leaderAddr is the swap-able dial seam: tests retarget the follower's
// redials at a revived leader's new listener.
type leaderAddr struct {
	mu   sync.Mutex
	addr string
}

func (b *leaderAddr) set(a string) {
	b.mu.Lock()
	b.addr = a
	b.mu.Unlock()
}

func (b *leaderAddr) dial() (net.Conn, error) {
	b.mu.Lock()
	a := b.addr
	b.mu.Unlock()
	return net.Dial("tcp", a)
}

// streamFrames ships `frames` copies of batch to addr over the binary
// stream plane and waits for the durable acks.
func streamFrames(t *testing.T, addr, id string, batch []motiondb.Observation, frames int) {
	t.Helper()
	c, err := wire.DialStream(addr, id, wire.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < frames; i++ {
		if err := c.SendObservations(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WaitAcked(); err != nil {
		t.Fatal(err)
	}
}

// walDump reads every record of l into a map, failing the test on a
// double delivery — the WAL-level form of "zero double-applies".
func walDump(t *testing.T, l *wal.Log) map[uint64][]byte {
	t.Helper()
	out := map[uint64][]byte{}
	for from := l.FirstSeq(); from < l.NextSeq(); {
		next, err := l.ReadFrom(from, 1024, func(seq uint64, payload []byte) error {
			if _, dup := out[seq]; dup {
				t.Fatalf("wal: seq %d delivered twice", seq)
			}
			out[seq] = append([]byte(nil), payload...)
			return nil
		})
		if err != nil {
			t.Fatalf("wal read from %d: %v", from, err)
		}
		if next == from {
			break
		}
		from = next
	}
	return out
}

// healthMap fetches the full /v1/healthz document.
func healthMap(t *testing.T, ts *httptest.Server) map[string]interface{} {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// sameTrainState folds both servers' pending observations and compares
// the training state (DB + builder accumulators) byte for byte.
func sameTrainState(t *testing.T, a, b *Server) {
	t.Helper()
	if _, err := a.RetrainNow(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.RetrainNow(); err != nil {
		t.Fatal(err)
	}
	adb, ab := trainState(t, a)
	bdb, bb := trainState(t, b)
	if !bytes.Equal(adb, bdb) {
		t.Fatal("motion DBs diverged between leader and follower")
	}
	if !bytes.Equal(ab, bb) {
		t.Fatal("builder accumulators diverged between leader and follower")
	}
}

// TestReplFollowerCrashResumesFromAckedSeq is chaos scenario (a):
// kill -9 a caught-up follower, restart it over the same data
// directory, and the resumed stream starts at the acked sequence —
// exactly the missed records are applied (no re-send of history, no
// double-applies) and the folded motion DB is bit-identical to the
// leader's.
func TestReplFollowerCrashResumesFromAckedSeq(t *testing.T) {
	sys := buildSys(t)
	leader := durableServer(t, sys, Options{DataDir: t.TempDir()})
	defer leader.Close()
	addr := startStream(t, leader)
	box := &leaderAddr{addr: addr}

	folOpts := Options{DataDir: t.TempDir(), FollowAddr: "leader-0", ReplDial: box.dial}
	fol := durableServer(t, sys, folOpts)
	fol.Start()

	pair := firstPair(t, sys.MDB)
	batch := obsNear(sys.Plan, pair[0], pair[1], 10)
	streamFrames(t, addr, "phone-a", batch, 6)
	tail := leader.store.log.NextSeq() - 1
	waitUntil(t, "follower catch-up", func() bool {
		return fol.ReplicationStatus().Applied == tail
	})

	// kill -9: the replication client dies with the process; the WAL is
	// left unflushed and nothing else is shut down.
	fol.stopReplication()

	// The leader keeps taking writes while the follower is down.
	streamFrames(t, addr, "phone-b", batch, 4)
	tail2 := leader.store.log.NextSeq() - 1

	fol2 := durableServer(t, sys, folOpts)
	fol2.Start()
	defer fol2.Close()
	waitUntil(t, "rebooted follower catch-up", func() bool {
		return fol2.ReplicationStatus().Applied == tail2
	})

	// Resume started at the acked sequence: only the records missed
	// while down were streamed and applied.
	if got, want := fol2.met.replApplied.Value(), int64(tail2-tail); got != want {
		t.Fatalf("records applied after reboot = %d, want %d (resume from acked seq)", got, want)
	}
	ldump := walDump(t, leader.store.log)
	fdump := walDump(t, fol2.store.log)
	if len(fdump) != int(tail2) {
		t.Fatalf("follower wal holds %d records, want %d", len(fdump), tail2)
	}
	for seq, p := range ldump {
		if !bytes.Equal(fdump[seq], p) {
			t.Fatalf("wal record %d differs between leader and follower", seq)
		}
	}
	sameTrainState(t, leader, fol2)
}

// TestReplLeaderKillFollowerStaleAndRecovers is chaos scenario (b): the
// leader dies, the follower keeps serving fixes but degrades to the
// follower-stale rung once the lag window passes, healthz reports the
// role and the lag, and a revived leader (same data directory, new
// listener) pulls the ladder back to ok.
func TestReplLeaderKillFollowerStaleAndRecovers(t *testing.T) {
	sys := buildSys(t)
	leaderDir := t.TempDir()
	leader := durableServer(t, sys, Options{DataDir: leaderDir})
	addr := startStream(t, leader)
	box := &leaderAddr{addr: addr}

	fol := durableServer(t, sys, Options{
		DataDir:    t.TempDir(),
		FollowAddr: "leader-0",
		ReplDial:   box.dial,
		ReplLagMax: 300 * time.Millisecond,
	})
	fol.Start()
	defer fol.Close()
	tsF := httptest.NewServer(fol.Handler())
	defer tsF.Close()

	pair := firstPair(t, sys.MDB)
	batch := obsNear(sys.Plan, pair[0], pair[1], 10)
	streamFrames(t, addr, "phone-a", batch, 3)
	tail := leader.store.log.NextSeq() - 1
	waitUntil(t, "follower catch-up", func() bool {
		st := fol.ReplicationStatus()
		return st.Applied == tail && st.Connected
	})
	if got := fol.ServingState(); got != "ok" {
		t.Fatalf("caught-up follower state = %q, want ok", got)
	}

	// kill -9 the leader: the stream listener and the replication
	// connection die; the follower's lag clock starts running.
	leader.closeStreams()
	waitUntil(t, "follower-stale entry", func() bool {
		return fol.ServingState() == "follower-stale"
	})

	h := healthMap(t, tsF)
	if h["status"] != "follower-stale" || h["role"] != "follower" {
		t.Fatalf("healthz while leaderless: status=%v role=%v", h["status"], h["role"])
	}
	if c, ok := h["replication_connected"].(bool); !ok || c {
		t.Fatalf("replication_connected = %v, want false", h["replication_connected"])
	}
	lag, ok := h["replication_lag_seconds"].(float64)
	if !ok || lag <= 0 {
		t.Fatalf("replication_lag_seconds = %v, want > 0", h["replication_lag_seconds"])
	}

	// Still serving: a session runs the full HTTP fix loop against the
	// stale follower (fingerprint-only under the hood, but live).
	id := createSession(t, tsF)
	driveHTTPFix(t, tsF, sys, id, 0, pair[0], 41)

	// Revive the leader over the same history on a fresh listener and
	// point the redial seam at it: the follower reconnects, catches up,
	// and climbs back to ok on its own.
	leader2 := durableServer(t, sys, Options{DataDir: leaderDir})
	defer leader2.Close()
	box.set(startStream(t, leader2))
	waitUntil(t, "follower-stale recovery", func() bool {
		return fol.ServingState() == "ok"
	})
	if st := fol.ReplicationStatus(); st.Resumes == 0 {
		t.Fatalf("status = %+v, want a completed resume handshake", st)
	}
}

// TestReplPromoteOpensIngestNoAckedLoss is chaos scenario (c): a
// follower answers ingest with 409 pointing at its leader; promotion
// flips the role at runtime, opens ingest, and loses nothing — every
// observation the leader ever acked is already in the local WAL, by
// the replication counters' own accounting. The admin endpoint is
// idempotent.
func TestReplPromoteOpensIngestNoAckedLoss(t *testing.T) {
	sys := buildSys(t)
	leader := durableServer(t, sys, Options{DataDir: t.TempDir()})
	defer leader.Close()
	addr := startStream(t, leader)
	box := &leaderAddr{addr: addr}

	fol := durableServer(t, sys, Options{DataDir: t.TempDir(), FollowAddr: "leader-0", ReplDial: box.dial})
	fol.Start()
	defer fol.Close()
	tsF := httptest.NewServer(fol.Handler())
	defer tsF.Close()

	pair := firstPair(t, sys.MDB)
	batch := obsNear(sys.Plan, pair[0], pair[1], 10)
	const frames = 5
	streamFrames(t, addr, "phone-a", batch, frames)
	tail := leader.store.log.NextSeq() - 1
	waitUntil(t, "follower catch-up", func() bool {
		return fol.ReplicationStatus().Applied == tail
	})

	// A read replica refuses writes, pointing the client at the leader.
	resp, body := postJSON(t, tsF, "/v1/observations", obsReq{Observations: batch})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("follower ingest: status %d, want 409; body %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "leader-0") {
		t.Fatalf("409 body %q does not point at the leader", body)
	}

	resp, body = postJSON(t, tsF, "/v1/admin/promote", struct{}{})
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"promoted":true`) ||
		!strings.Contains(string(body), `"leader"`) {
		t.Fatalf("promote: status %d body %s", resp.StatusCode, body)
	}

	// Promotion opened ingest; the WAL extends the replicated history.
	postObs(t, tsF, batch, http.StatusAccepted)
	if got := fol.store.log.NextSeq() - 1; got != tail+1 {
		t.Fatalf("post-promote wal tail = %d, want %d", got, tail+1)
	}

	// No acked-observation loss: everything the leader acked over the
	// stream was applied locally before the role flipped.
	if got, want := fol.met.replAppliedObs.Value(), int64(frames*len(batch)); got != want {
		t.Fatalf("replicated observations applied = %d, want %d", got, want)
	}
	if got := fol.met.replApplied.Value(); got != int64(tail) {
		t.Fatalf("replicated records applied = %d, want %d", got, tail)
	}

	// Idempotent: a second promote is a no-op, and healthz now reports a
	// plain leader with the replication fields gone.
	resp, body = postJSON(t, tsF, "/v1/admin/promote", struct{}{})
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"promoted":false`) {
		t.Fatalf("second promote: status %d body %s", resp.StatusCode, body)
	}
	h := healthMap(t, tsF)
	if h["role"] != "leader" {
		t.Fatalf("post-promote role = %v, want leader", h["role"])
	}
	if _, stale := h["replication_lag_seq"]; stale {
		t.Fatal("promoted follower still reports replication lag")
	}
}

// TestReplFollowerWALFaultHealsViaRedial injects a write error into the
// follower's WAL mid-stream: the apply fails, the connection drops, and
// the redial resumes from the durable position — every record lands
// exactly once and a durable retrain clears the degraded rung.
func TestReplFollowerWALFaultHealsViaRedial(t *testing.T) {
	sys := buildSys(t)
	leader := durableServer(t, sys, Options{DataDir: t.TempDir()})
	defer leader.Close()
	addr := startStream(t, leader)
	box := &leaderAddr{addr: addr}

	// The 4th write to a WAL segment fails once: mid-replication, after
	// boot's own writes (an empty follower WAL writes nothing at boot).
	inj := fault.NewInjector(fault.Disk{}, fault.Rule{
		Op: fault.OpWrite, PathContains: ".seg", After: 3, Count: 1,
	})
	fol := durableServer(t, sys, Options{
		DataDir:    t.TempDir(),
		FS:         inj,
		FollowAddr: "leader-0",
		ReplDial:   box.dial,
	})
	fol.Start()
	defer fol.Close()

	pair := firstPair(t, sys.MDB)
	batch := obsNear(sys.Plan, pair[0], pair[1], 10)
	streamFrames(t, addr, "phone-a", batch, 8)
	tail := leader.store.log.NextSeq() - 1
	waitUntil(t, "follower heals past the write fault", func() bool {
		return fol.ReplicationStatus().Applied == tail
	})
	if st := fol.ReplicationStatus(); st.Resumes == 0 {
		t.Fatalf("status = %+v, want at least one resume after the fault", st)
	}

	// Exactly once despite the at-least-once redelivery around the tear.
	ldump := walDump(t, leader.store.log)
	fdump := walDump(t, fol.store.log)
	if len(fdump) != int(tail) {
		t.Fatalf("follower wal holds %d records, want %d", len(fdump), tail)
	}
	for seq, p := range ldump {
		if !bytes.Equal(fdump[seq], p) {
			t.Fatalf("wal record %d differs between leader and follower", seq)
		}
	}

	// The fault marked the ladder degraded; a durable fold clears it.
	if _, err := fol.RetrainNow(); err != nil {
		t.Fatal(err)
	}
	if got := fol.ServingState(); got != "ok" {
		t.Fatalf("state after healed retrain = %q, want ok", got)
	}
}

// TestReplBootstrapFromCheckpointTornTransfer boots a blank follower
// against a leader whose WAL no longer starts at 1 (checkpoint +
// truncation), over a connection that tears mid-chunk on the first
// dial. The bootstrap must re-request the checkpoint from scratch —
// never install a partial one — and end bit-identical.
func TestReplBootstrapFromCheckpointTornTransfer(t *testing.T) {
	sys := buildSys(t)
	leader := durableServer(t, sys, Options{DataDir: t.TempDir(), WALSegmentBytes: 256})
	defer leader.Close()
	addr := startStream(t, leader)

	pair := firstPair(t, sys.MDB)
	batch := obsNear(sys.Plan, pair[0], pair[1], 10)
	streamFrames(t, addr, "phone-a", batch, 8)
	// Fold and checkpoint everything so far: sealed segments below the
	// checkpoint go away, so a blank follower cannot tail from 1 and
	// must bootstrap.
	ckptSeq := leader.store.log.NextSeq() - 1
	if _, err := leader.RetrainNow(); err != nil {
		t.Fatal(err)
	}
	if first := leader.store.log.FirstSeq(); first <= 1 {
		t.Fatalf("leader FirstSeq = %d; truncation did not seal segments, bootstrap unreachable", first)
	}
	// A tail past the checkpoint, so the follower also streams records.
	streamFrames(t, addr, "phone-b", batch, 3)
	tail := leader.store.log.NextSeq() - 1

	// First dial tears after a byte budget mid-checkpoint-transfer;
	// every later dial is clean.
	var tore atomic.Bool
	dial := func() (net.Conn, error) {
		cn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		if tore.CompareAndSwap(false, true) {
			return fault.NewConn(cn, 600, -1, nil), nil
		}
		return cn, nil
	}
	fol := durableServer(t, sys, Options{
		DataDir:    t.TempDir(),
		FollowAddr: "leader-0",
		ReplDial:   dial,
	})
	fol.Start()
	defer fol.Close()
	waitUntil(t, "bootstrapped follower catch-up", func() bool {
		return fol.ReplicationStatus().Applied == tail
	})

	st := fol.ReplicationStatus()
	if st.SnapshotsInstalled != 1 {
		t.Fatalf("snapshots installed = %d, want exactly 1 (complete installs only)", st.SnapshotsInstalled)
	}
	if st.Resumes == 0 {
		t.Fatalf("status = %+v, want a resume after the torn transfer", st)
	}
	// The replicated checkpoint was persisted for the follower's own
	// next boot, at the leader's coverage.
	if _, seq, _, err := checkpoint.Latest(fault.Disk{}, fol.store.ckptDir); err != nil || seq != ckptSeq {
		t.Fatalf("follower checkpoint = seq %d, %v; want seq %d", seq, err, ckptSeq)
	}
	// The streamed tail is byte-identical; nothing below the checkpoint
	// was shipped.
	ldump := walDump(t, leader.store.log)
	fdump := walDump(t, fol.store.log)
	if len(fdump) != int(tail-ckptSeq) {
		t.Fatalf("follower wal holds %d records, want the %d past the checkpoint", len(fdump), tail-ckptSeq)
	}
	for seq, p := range fdump {
		if !bytes.Equal(ldump[seq], p) {
			t.Fatalf("wal record %d differs between leader and follower", seq)
		}
	}
	sameTrainState(t, leader, fol)
}
