package server

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"moloc/internal/sensors"
	"moloc/internal/wire"
)

// waitUntil polls cond for up to three seconds — paced batches run
// asynchronously on pool workers, so assertions after AdvanceWheel need
// to wait for the dispatched batches to land.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// pushedFix is one server-pushed fix collected by the stream client.
type pushedFix struct {
	t     float64
	loc   int
	moved bool
}

// TestPacedServerEquivalence is the end-to-end half of the pacing
// contract: a server-paced session must push fixes bit-identical to
// what an identically-fed client-paced session gets from its own tick
// requests. The paced session's fixes arrive as unsolicited Fix frames
// on the stream that scoped it; the plain session's from /tick bodies.
func TestPacedServerEquivalence(t *testing.T) {
	sys := buildSys(t)
	clock := newFakeClock()
	srv := durableServer(t, sys, Options{Now: clock.Now})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	addr := startStream(t, srv)

	resp, body := postJSON(t, ts, "/v1/sessions", createReq{HeightM: 1.71, WeightKg: 68, Paced: true})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create paced: %d %s", resp.StatusCode, body)
	}
	var pacedCr createResp
	if err := json.Unmarshal(body, &pacedCr); err != nil {
		t.Fatal(err)
	}
	if !pacedCr.Paced {
		t.Fatal("create response does not acknowledge pacing")
	}
	plainID := createSession(t, ts)

	var (
		pushMu sync.Mutex
		pushed []pushedFix
	)
	c, err := wire.DialStream(addr, "eq-stream", wire.ClientOptions{
		SessionID: pacedCr.SessionID,
		OnFix: func(ft float64, loc int, moved bool) {
			pushMu.Lock()
			pushed = append(pushed, pushedFix{t: ft, loc: loc, moved: moved})
			pushMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rss := make([]float64, srv.numAPs)
	for i := range rss {
		rss[i] = -60
	}
	feed := func(id string, fromEvent, toEvent int) {
		t.Helper()
		var batch []sensors.Sample
		for j := fromEvent; j <= toEvent; j++ {
			batch = append(batch, sensors.Sample{T: float64(j) * 0.1, Accel: 9.8})
		}
		resp, _ := postJSON(t, ts, "/v1/sessions/"+id+"/imu", imuReq{Samples: batch})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("imu: %d", resp.StatusCode)
		}
	}

	var tickFixes []pushedFix
	for round := 1; round <= 4; round++ {
		// Identical evidence for both sessions: IMU up to exactly the
		// interval boundary, one scan mid-interval.
		scanT := float64(30*round-20) * 0.1
		endT := float64(30*round) * 0.1
		for _, id := range []string{pacedCr.SessionID, plainID} {
			feed(id, 30*(round-1), 30*round)
			resp, _ := postJSON(t, ts, "/v1/sessions/"+id+"/scan", scanReq{T: scanT, RSS: rss})
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("scan: %d", resp.StatusCode)
			}
		}
		// Client pacing: an explicit tick at the last event time.
		resp, body := postJSON(t, ts, "/v1/sessions/"+plainID+"/tick", tickReq{T: endT})
		switch resp.StatusCode {
		case http.StatusOK:
			var fx fixResp
			if err := json.Unmarshal(body, &fx); err != nil {
				t.Fatal(err)
			}
			tickFixes = append(tickFixes, pushedFix{t: fx.T, loc: fx.Loc, moved: fx.Moved})
		case http.StatusNoContent:
		default:
			t.Fatalf("tick: %d %s", resp.StatusCode, body)
		}
		// Server pacing: the wheel fires on wall time and ticks the
		// session at that same last event time.
		clock.Advance(srv.opts.SessionTTL / 100) // well under TTL
		clock.Advance(4 * time.Second)
		srv.AdvanceWheel(clock.Now())
		want := len(tickFixes)
		waitUntil(t, fmt.Sprintf("round %d pushes", round), func() bool {
			pushMu.Lock()
			defer pushMu.Unlock()
			return len(pushed) >= want
		})
	}

	pushMu.Lock()
	defer pushMu.Unlock()
	if len(tickFixes) == 0 {
		t.Fatal("scenario produced no fixes; the equivalence check is vacuous")
	}
	if len(pushed) != len(tickFixes) {
		t.Fatalf("paced session pushed %d fixes, client ticks produced %d:\npushed: %+v\nticked: %+v",
			len(pushed), len(tickFixes), pushed, tickFixes)
	}
	for i := range pushed {
		if pushed[i] != tickFixes[i] {
			t.Errorf("fix %d: pushed %+v != ticked %+v", i, pushed[i], tickFixes[i])
		}
	}
}

// TestPacedBatchAmortizesSnapshotLoads pins the whole point of the
// (worker, slot) batching: K paced sessions due in the same slot cost
// one RCU snapshot load per worker batch, not one per session, and each
// session's tracker adopts the shared view exactly once.
func TestPacedBatchAmortizesSnapshotLoads(t *testing.T) {
	sys := buildSys(t)
	clock := newFakeClock()
	srv := durableServer(t, sys, Options{Workers: 3, Now: clock.Now})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const K = 24
	rss := make([]float64, srv.numAPs)
	for i := range rss {
		rss[i] = -60
	}
	ids := make([]string, K)
	for i := range ids {
		resp, body := postJSON(t, ts, "/v1/sessions", createReq{HeightM: 1.71, WeightKg: 68, Paced: true})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create: %d %s", resp.StatusCode, body)
		}
		var cr createResp
		if err := json.Unmarshal(body, &cr); err != nil {
			t.Fatal(err)
		}
		ids[i] = cr.SessionID
		resp, _ = postJSON(t, ts, "/v1/sessions/"+ids[i]+"/scan", scanReq{T: 0.5, RSS: rss})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("scan: %d", resp.StatusCode)
		}
	}
	if got := srv.met.pacedSessions.Value(); got != K {
		t.Fatalf("paced_sessions = %d, want %d", got, K)
	}

	clock.Advance(4 * time.Second)
	srv.AdvanceWheel(clock.Now())
	waitUntil(t, "all paced ticks", func() bool { return srv.met.pacedTicks.Value() >= K })

	ticks := srv.met.pacedTicks.Value()
	loads := srv.met.pacedSnapshotLoads.Value()
	if ticks != K {
		t.Fatalf("paced_ticks = %d, want %d", ticks, K)
	}
	// All K sessions were created at the same instant with the same
	// interval, so they share a due slot: at most one batch (and one
	// snapshot load) per worker.
	if loads > 3 {
		t.Errorf("paced_snapshot_loads = %d for %d ticks across 3 workers; batching failed", loads, ticks)
	}
	// The view hasn't changed since creation, so no tracker re-adopted.
	if swaps := snapshotSwaps(t, ts, ids[0]); swaps != 0 {
		t.Errorf("SnapshotSwaps = %d with an unchanged view, want 0", swaps)
	}

	// Publish a fresh compiled view, as a retrain would, and fire the
	// wheel again: every tracker in a batch adopts the one shared view
	// (one swap each), still off one snapshot load per worker batch.
	// Compiling from the retrainer's clone sidesteps the serving DB's
	// per-parameter memoization, which would hand back the same pointer.
	srv.retrain.mu.Lock()
	cmp2, err := srv.retrain.db.Compile(srv.retrain.alpha, srv.retrain.beta)
	srv.retrain.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	srv.snap.Store(cmp2)
	clock.Advance(4 * time.Second)
	srv.AdvanceWheel(clock.Now())
	waitUntil(t, "second paced round", func() bool { return srv.met.pacedTicks.Value() >= 2*K })
	if loads := srv.met.pacedSnapshotLoads.Value(); loads > 6 {
		t.Errorf("paced_snapshot_loads = %d after two rounds across 3 workers", loads)
	}
	if swaps := snapshotSwaps(t, ts, ids[0]); swaps != 1 {
		t.Errorf("SnapshotSwaps = %d after one view change, want 1", swaps)
	}
}

// snapshotSwaps reads a session's SnapshotSwaps stat over the API.
func snapshotSwaps(t *testing.T, ts *httptest.Server, id string) int64 {
	t.Helper()
	resp, body := getRaw(t, ts, "/v1/sessions/"+id)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get session: %d", resp.StatusCode)
	}
	var sr sessionResp
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	return sr.Stats.SnapshotSwaps
}

// getRaw GETs a path and returns the response and body.
func getRaw(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestPacedSessionStillExpires pins the TTL semantics of pacing:
// server-driven ticks are not client activity, so an abandoned paced
// session is still swept at its idle deadline — and its wheel entry is
// dropped at the next fire instead of ticking a corpse forever.
func TestPacedSessionStillExpires(t *testing.T) {
	sys := buildSys(t)
	clock := newFakeClock()
	srv := durableServer(t, sys, Options{SessionTTL: time.Minute, Now: clock.Now})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts, "/v1/sessions", createReq{HeightM: 1.71, WeightKg: 68, Paced: true})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	rss := make([]float64, srv.numAPs)
	for i := range rss {
		rss[i] = -60
	}
	var cr createResp
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	resp, _ = postJSON(t, ts, "/v1/sessions/"+cr.SessionID+"/scan", scanReq{T: 0.5, RSS: rss})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("scan: %d", resp.StatusCode)
	}
	if got := srv.wheel.scheduled(); got != 1 {
		t.Fatalf("scheduled = %d after paced create, want 1", got)
	}

	// Wheel fires within the TTL: the session ticks but must NOT have
	// its idle deadline extended by its own server-driven ticking.
	clock.Advance(4 * time.Second)
	srv.AdvanceWheel(clock.Now())
	waitUntil(t, "paced tick", func() bool { return srv.met.pacedTicks.Value() >= 1 })

	clock.Advance(2 * time.Minute)
	if n := srv.sweepOnce(); n != 1 {
		t.Fatalf("sweeper evicted %d sessions, want 1 (paced ticks must not refresh the TTL)", n)
	}
	// The next fire notices the eviction and retires the wheel entry.
	clock.Advance(time.Minute)
	srv.AdvanceWheel(clock.Now())
	waitUntil(t, "wheel entry drop", func() bool { return srv.wheel.scheduled() == 0 })
}

// TestServerShardStress hammers the striped registry and the wheel from
// every direction at once — concurrent creates, scans, ticks, deletes,
// wheel advances, and incremental sweeps — sized to spread sessions
// across every stripe. Run under -race in CI; the assertions here are
// conservation laws (created = live + deleted + expired, wheel drains
// to zero), the race detector is the real judge.
func TestServerShardStress(t *testing.T) {
	n := 10000
	if testing.Short() {
		n = 1500
	}
	sys := buildSys(t)
	clock := newFakeClock()
	srv := durableServer(t, sys, Options{
		Workers:     4,
		Shards:      8,
		MaxSessions: n + 1,
		SessionTTL:  time.Minute,
		Now:         clock.Now,
	})
	defer srv.Close()
	handler := srv.Handler()

	do := func(method, path, body string) int {
		req := httptest.NewRequest(method, path, strings.NewReader(body))
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		return rec.Code
	}

	rssB := strings.Builder{}
	rssB.WriteString(`[`)
	for i := 0; i < srv.numAPs; i++ {
		if i > 0 {
			rssB.WriteString(",")
		}
		rssB.WriteString("-60")
	}
	rssB.WriteString(`]`)
	rssJSON := rssB.String()

	// Phase 1: concurrent creates, half of them paced.
	const creators = 16
	ids := make([]string, n)
	var wg sync.WaitGroup
	for c := 0; c < creators; c++ {
		lo, hi := n*c/creators, n*(c+1)/creators
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				body := `{"height_m":1.71,"weight_kg":68}`
				if i%2 == 0 {
					body = `{"height_m":1.71,"weight_kg":68,"paced":true}`
				}
				req := httptest.NewRequest(http.MethodPost, "/v1/sessions", strings.NewReader(body))
				rec := httptest.NewRecorder()
				handler.ServeHTTP(rec, req)
				if rec.Code != http.StatusCreated {
					t.Errorf("create %d: %d %s", i, rec.Code, rec.Body.String())
					return
				}
				var cr createResp
				if err := json.Unmarshal(rec.Body.Bytes(), &cr); err != nil {
					t.Error(err)
					return
				}
				ids[i] = cr.SessionID
			}
		}(lo, hi)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if got := srv.NumSessions(); got != n {
		t.Fatalf("NumSessions = %d after %d creates", got, n)
	}

	// Phase 2: everything at once. Feeders drive data and ticks,
	// deleters remove a third of the fleet, the wheel advances, and the
	// sweeper walks stripes incrementally — all concurrently.
	const feeders = 8
	for f := 0; f < feeders; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(f)))
			for i := 0; i < 400; i++ {
				id := ids[rng.Intn(n)]
				switch i % 3 {
				case 0:
					do(http.MethodPost, "/v1/sessions/"+id+"/scan",
						fmt.Sprintf(`{"t":%d,"rss":%s}`, i/3*3, rssJSON))
				case 1:
					do(http.MethodPost, "/v1/sessions/"+id+"/imu",
						fmt.Sprintf(`{"samples":[{"t":%d,"accel":9.8}]}`, i/3*3))
				default:
					do(http.MethodPost, "/v1/sessions/"+id+"/tick",
						fmt.Sprintf(`{"t":%d}`, i/3*3))
				}
			}
		}(f)
	}
	deleted := make([]bool, n)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i += 3 {
			do(http.MethodDelete, "/v1/sessions/"+ids[i], "")
			deleted[i] = true
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			clock.Advance(500 * time.Millisecond)
			srv.AdvanceWheel(clock.Now())
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]*session, 0, 64)
		nsh := srv.reg.numShards()
		for i := 0; i < 40; i++ {
			_, buf = srv.sweepShard(i%nsh, buf)
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}

	// Phase 3: expire the remainder and drain the wheel. Conservation:
	// every created session is exactly one of live/deleted/expired.
	clock.Advance(time.Hour)
	srv.sweepOnce()
	if got := srv.NumSessions(); got != 0 {
		t.Fatalf("NumSessions = %d after full expiry sweep", got)
	}
	created := srv.met.sessionsCreated.Value()
	del := srv.met.sessionsDeleted.Value()
	exp := srv.met.sessionsExpired.Value()
	if created != int64(n) || del+exp != int64(n) {
		t.Fatalf("conservation violated: created=%d deleted=%d expired=%d (n=%d)", created, del, exp, n)
	}
	// Every paced entry is retired within two more fires (one may have
	// been shed back onto the wheel mid-shutdown of its worker batch).
	for i := 0; i < 10 && srv.wheel.scheduled() > 0; i++ {
		clock.Advance(4 * time.Second)
		srv.AdvanceWheel(clock.Now())
		time.Sleep(20 * time.Millisecond)
	}
	waitUntil(t, "wheel drain", func() bool { return srv.wheel.scheduled() == 0 })
}
