// Worker pool: the data-plane handlers (imu/scan/tick) do not run the
// tracker on the HTTP goroutine; they hand the work to a fixed set of
// workers, sharded by session ID. One session's requests always land on
// the same worker, so per-session work stays serialized (in arrival
// order) without contending for locks, while distinct sessions tick in
// parallel across the pool — bounded CPU fan-out no matter how many
// phones poll at once.
package server

import (
	"runtime"
	"sync"
)

// workerQueueDepth bounds each worker's backlog; a full queue applies
// backpressure by blocking the submitting handler (which in turn holds
// the HTTP connection, the natural place for the slowdown to surface).
const workerQueueDepth = 64

// poolTask is one unit of sharded work. done is nil for detached tasks
// (tryRunShard): nobody waits on those, so there is no channel to
// signal.
type poolTask struct {
	fn   func()
	done chan struct{}
}

// doneChans recycles the per-request completion channels so submitting
// work allocates nothing at steady state.
var doneChans = sync.Pool{
	New: func() interface{} { return make(chan struct{}, 1) },
}

// workerPool runs tasks on a fixed set of goroutines, sharded by key.
type workerPool struct {
	queues []chan poolTask
	wg     sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	inflight sync.WaitGroup
}

// newWorkerPool starts n workers (n < 1 selects GOMAXPROCS).
func newWorkerPool(n int) *workerPool {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &workerPool{queues: make([]chan poolTask, n)}
	for i := range p.queues {
		q := make(chan poolTask, workerQueueDepth)
		p.queues[i] = q
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for t := range q {
				t.fn()
				if t.done != nil {
					t.done <- struct{}{}
				}
			}
		}()
	}
	return p
}

// shardOf maps a key to a worker index (FNV-1a, inlined so hashing a
// session ID allocates nothing).
func shardOf(key string, n int) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % uint32(n))
}

// run executes fn on the worker owning key and waits for it to finish.
// It reports false — without running fn — when the pool is closed.
func (p *workerPool) run(key string, fn func()) bool {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return false
	}
	p.inflight.Add(1)
	p.mu.Unlock()
	defer p.inflight.Done()

	done := doneChans.Get().(chan struct{})
	p.queues[shardOf(key, len(p.queues))] <- poolTask{fn: fn, done: done}
	<-done
	doneChans.Put(done)
	return true
}

// tryRunShard enqueues fn on worker w without waiting for it to run,
// reporting false — without enqueueing — when that worker's queue is
// full or the pool is closed. It is the tick wheel's dispatch: the
// wheel must never block behind a busy worker (that would stall every
// other worker's slot), so an overloaded worker sheds the batch and the
// wheel retries the sessions next slot. fn itself must not block on
// pool work for the same worker (it runs on it).
func (p *workerPool) tryRunShard(w int, fn func()) bool {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return false
	}
	p.inflight.Add(1)
	p.mu.Unlock()
	t := poolTask{fn: func() {
		defer p.inflight.Done()
		fn()
	}}
	select {
	case p.queues[w] <- t:
		return true
	default:
		p.inflight.Done()
		return false
	}
}

// queueDepth reports worker w's current backlog, for the per-worker
// queue gauges on /v1/metricsz.
func (p *workerPool) queueDepth(w int) int { return len(p.queues[w]) }

// close rejects new work, waits for submitted work to complete, and
// stops the workers.
func (p *workerPool) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.inflight.Wait()
	for _, q := range p.queues {
		close(q)
	}
	p.wg.Wait()
}
