package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"moloc/internal/sensors"
)

// TestIngestRetrainRace drives concurrent observation ingestion,
// retrains (snapshot swaps), ticking sessions, and raw snapshot loads
// against one Server. Under `make race` this is the memory-model check
// of the online-training design: trackers acquire the RCU snapshot
// mid-tick while RetrainNow republishes it, and nothing may tear — no
// 5xx, no data race, every loaded view internally consistent.
func TestIngestRetrainRace(t *testing.T) {
	srv, sys := testServer(t)
	handler := srv.Handler()

	do := func(method, path string, body interface{}) (*httptest.ResponseRecorder, error) {
		var rd *bytes.Reader
		if body != nil {
			data, err := json.Marshal(body)
			if err != nil {
				return nil, err
			}
			rd = bytes.NewReader(data)
		} else {
			rd = bytes.NewReader(nil)
		}
		req := httptest.NewRequest(method, path, rd)
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		return rec, nil
	}

	// One live session; its tracker adopts published snapshots per tick.
	rec, err := do(http.MethodPost, "/v1/sessions", createReq{HeightM: 1.7, WeightKg: 70})
	if err != nil || rec.Code != http.StatusCreated {
		t.Fatalf("create: %v code %d", err, rec.Code)
	}
	var created createResp
	if err := json.Unmarshal(rec.Body.Bytes(), &created); err != nil {
		t.Fatal(err)
	}
	id := created.SessionID

	pairs := sys.MDB.Pairs()
	if len(pairs) < 2 {
		t.Fatal("need at least two trained pairs")
	}
	rss := make([]float64, srv.numAPs)
	for i := range rss {
		rss[i] = -60
	}

	const iters = 60
	var wg sync.WaitGroup
	errs := make(chan error, 4*iters)

	// Ingester: valid batches; 202 and 429 are both fine, 4xx/5xx not.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			p := pairs[i%len(pairs)]
			rec, err := do(http.MethodPost, "/v1/observations",
				obsReq{Observations: obsNear(sys.Plan, p[0], p[1], 5)})
			if err != nil {
				errs <- err
				return
			}
			if rec.Code != http.StatusAccepted && rec.Code != http.StatusTooManyRequests {
				errs <- fmt.Errorf("ingest %d: status %d body %s", i, rec.Code, rec.Body.String())
				return
			}
		}
	}()

	// Retrainer: republishes the snapshot as fast as batches land.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if _, err := srv.RetrainNow(); err != nil {
				errs <- fmt.Errorf("retrain %d: %w", i, err)
				return
			}
		}
	}()

	// Session driver: imu + scan + tick, acquiring snapshots mid-swap.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			tSec := float64(i) * 0.3
			ops := []struct {
				path string
				body interface{}
			}{
				{"/imu", imuReq{Samples: []sensors.Sample{{T: tSec, Accel: 9.8, Compass: 90}}}},
				{"/scan", scanReq{T: tSec, RSS: rss}},
				{"/tick", tickReq{T: tSec}},
			}
			for _, op := range ops {
				rec, err := do(http.MethodPost, "/v1/sessions/"+id+op.path, op.body)
				if err != nil {
					errs <- err
					return
				}
				if rec.Code >= 400 {
					errs <- fmt.Errorf("session %s %s: status %d body %s", id, op.path, rec.Code, rec.Body.String())
					return
				}
			}
		}
	}()

	// Raw reader: every loaded view must be whole and queryable.
	wg.Add(1)
	go func() {
		defer wg.Done()
		p := pairs[0]
		for i := 0; i < 4*iters; i++ {
			c := srv.CompiledSnapshot()
			if c == nil {
				errs <- fmt.Errorf("nil snapshot at read %d", i)
				return
			}
			if _, ok := c.Lookup(p[0], p[1]); !ok {
				errs <- fmt.Errorf("read %d: trained pair %v missing from snapshot", i, p)
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The session survived every swap.
	rec, err = do(http.MethodGet, "/v1/sessions/"+id, nil)
	if err != nil || rec.Code != http.StatusOK {
		t.Fatalf("final session read: %v code %d", err, rec.Code)
	}
}
