// Package server exposes MoLoc tracking sessions over HTTP+JSON: a
// deployment-shaped wrapper in which phones create a session, stream
// IMU samples and WiFi scans, and poll for location fixes. It is the
// "localization engine" box of the paper's architecture (Fig. 2) as a
// network service, hardened for long-running deployments: sessions
// carry an idle TTL and are evicted by a background sweeper
// (lifecycle.go), request bodies are size-capped, and every route is
// instrumented with counters and latency histograms served from
// /v1/metricsz (middleware.go, internal/obs).
//
// API (all request/response bodies are JSON):
//
//	POST   /v1/sessions                  {"height_m":1.7,"weight_kg":65}    -> {"session_id":...,"ttl_sec":...,"expires":...}
//	POST   /v1/sessions/{id}/imu         {"samples":[{"t":0,"accel":9.8,...}]}
//	POST   /v1/sessions/{id}/scan        {"t":0.5,"rss":[-60,...]}
//	POST   /v1/sessions/{id}/tick        {"t":3.1}                          -> fix or 204
//	POST   /v1/sessions/{id}/batch       {"samples":[...],"scans":[...],"t":9.1} -> {"fixes":[...]}
//	GET    /v1/sessions/{id}             -> lifecycle info + last fix
//	DELETE /v1/sessions/{id}
//	POST   /v1/observations              {"observations":[{"from":1,"to":2,"rlm":{"dir":90,"off":5}}]} -> 202
//	GET    /v1/healthz
//	GET    /v1/metricsz
//
// The motion database refreshes online: crowdsourced observations
// posted to /v1/observations feed a background retrainer that rebuilds
// the touched edges and publishes a new compiled view through an
// RCU-style atomic snapshot every session's tracker acquires once per
// tick (retrain.go).
package server

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"moloc/internal/fingerprint"
	"moloc/internal/floorplan"
	"moloc/internal/localizer"
	"moloc/internal/motion"
	"moloc/internal/motiondb"
	"moloc/internal/obs"
	"moloc/internal/replica"
	"moloc/internal/sensors"
	"moloc/internal/tracker"
	"moloc/internal/wal"
)

// Server hosts tracking sessions over one deployment's databases.
type Server struct {
	plan    *floorplan.Plan
	src     fingerprint.CandidateSource
	mdb     *motiondb.DB
	numAPs  int
	mcfg    motion.Config
	opts    Options
	met     *serverMetrics
	pool    *workerPool
	retrain *retrainer

	// store holds the durability handles (durability.go); nil when
	// Options.DataDir is empty and the server runs in-memory only.
	store *durableStore
	// group amortizes WAL fsyncs across concurrent stream connections
	// (wal.GroupCommitter); nil when store is nil.
	group *wal.GroupCommitter
	// state is the degradation-ladder position (stateOK, stateDegraded,
	// stateRecovering, stateFollowerStale), read lock-free by every tick
	// and written on durability and replication transitions.
	state atomic.Int32

	// Replication (replication.go). role distinguishes the leader
	// (accepts ingest, serves replication) from a follower (replays the
	// leader's WAL, answers ingest with 409); Promote flips it at
	// runtime. follower/replStop/replStart exist only in follower mode.
	role         atomic.Int32
	follower     *replica.Follower
	replStop     chan struct{}
	replStopOnce sync.Once
	replStart    time.Time

	// snap is the RCU-published compiled motion index: the retrainer is
	// the only writer, every session's tracker loads it once per tick.
	// All access goes through atomic Load/Store (enforced by the
	// snapshotguard analyzer), so serving stays lock-free while the
	// database refreshes underneath.
	//
	//moloc:snapshot
	snap atomic.Pointer[motiondb.Compiled]

	startOnce sync.Once
	stopOnce  sync.Once
	done      chan struct{}
	wg        sync.WaitGroup

	// stream is the streaming plane's registry (stream.go); its mutable
	// state is guarded by its own mutex.
	stream streamPlane

	// reg is the sharded session registry (registry.go): sessions are
	// striped by the worker pool's own FNV-1a hash, so the serving path
	// has no global session lock — create/lookup/delete/evict on
	// different sessions touch different stripes.
	reg *sessionRegistry

	// wheel drives server-paced sessions (wheel.go): sessions created
	// with "paced":true are ticked by the server on coarse timer slots,
	// batched per worker, instead of per-client tick requests.
	wheel *tickWheel
	// paceScratch[w] is worker w's reused paced-tick buffers; each is
	// touched only by tasks the pool serializes onto worker w.
	paceScratch []pacedScratch
}

// New builds a server over a candidate source (numAPs wide), a motion
// database, and the floor plan, with default Options.
func New(plan *floorplan.Plan, src fingerprint.CandidateSource, numAPs int,
	mdb *motiondb.DB, mcfg motion.Config) (*Server, error) {
	return NewWithOptions(plan, src, numAPs, mdb, mcfg, Options{})
}

// NewWithOptions is New with explicit serving limits; zero fields of
// opts take the package defaults.
func NewWithOptions(plan *floorplan.Plan, src fingerprint.CandidateSource, numAPs int,
	mdb *motiondb.DB, mcfg motion.Config, opts Options) (*Server, error) {
	if err := mcfg.Validate(); err != nil {
		return nil, err
	}
	if numAPs < 1 {
		return nil, fmt.Errorf("server: numAPs must be >= 1, got %d", numAPs)
	}
	if plan.NumLocs() != src.NumLocs() || plan.NumLocs() != mdb.NumLocs() {
		return nil, fmt.Errorf("server: plan (%d), source (%d), and motion DB (%d) disagree on locations",
			plan.NumLocs(), src.NumLocs(), mdb.NumLocs())
	}
	o := opts.withDefaults()
	// Sessions always run the default localizer parameters (see
	// handleCreate), so one compiled view serves every tracker; it seeds
	// the RCU snapshot the retrainer republishes.
	lcfg := localizer.NewConfig()
	cmp, err := mdb.Compile(lcfg.Alpha, lcfg.Beta)
	if err != nil {
		return nil, fmt.Errorf("server: compile motion database: %w", err)
	}
	rt, err := newRetrainer(plan, mdb, lcfg, o)
	if err != nil {
		return nil, err
	}
	s := &Server{
		plan:    plan,
		src:     src,
		mdb:     mdb,
		numAPs:  numAPs,
		mcfg:    mcfg,
		opts:    o,
		met:     newServerMetrics(),
		pool:    newWorkerPool(o.Workers),
		retrain: rt,
		done:    make(chan struct{}),
		reg:     newSessionRegistry(o.Shards),
	}
	s.wheel = newTickWheel(o.WheelSlots, o.WheelSlotDur, len(s.pool.queues))
	s.wheel.prime(o.Now())
	s.paceScratch = make([]pacedScratch, len(s.pool.queues))
	s.stream.init()
	s.snap.Store(cmp)
	s.registerPoolGauges()
	if o.DataDir != "" {
		s.openDurability()
	}
	if o.FollowAddr != "" {
		// A follower replays the leader's history into its own WAL; both
		// sides of that need working durability.
		if s.store == nil || s.store.log == nil {
			return nil, fmt.Errorf("server: following %s requires durability (DataDir with a working WAL)", o.FollowAddr)
		}
		s.role.Store(roleFollower)
		s.replStop = make(chan struct{})
		s.replStart = o.Now()
		s.follower = replica.NewFollower(&replApplier{s: s}, replica.FollowerOptions{
			Addr:   o.FollowAddr,
			Dial:   o.ReplDial,
			Window: uint32(o.StreamWindow),
			Now:    o.Now,
		})
	}
	return s, nil
}

// CompiledSnapshot returns the currently published compiled motion
// index, for embedders and tests observing retrain publications.
func (s *Server) CompiledSnapshot() *motiondb.Compiled { return s.snap.Load() }

// runSharded executes fn on the session's tracker from the worker pool
// (see pool.go): same-session requests serialize on one worker, and
// distinct sessions spread across the pool. It writes the HTTP error
// itself and reports false when the session is gone or the server is
// shutting down.
//
// Panics inside fn are caught on the worker — an unrecovered panic
// there would kill the whole process, not just the request — and turned
// into a 500 for this caller while the worker keeps serving other
// sessions. The session's own lock is released by withTracker's defer
// before the recover runs, so the session stays usable too.
func (s *Server) runSharded(w http.ResponseWriter, ss *session, fn func(tk *tracker.Tracker)) bool {
	now := s.opts.Now()
	alive := false
	panicked := true
	if !s.pool.run(ss.id, func() {
		defer func() {
			if !panicked {
				return
			}
			if rec := recover(); rec != nil {
				s.met.panicsRecovered.Inc()
			}
		}()
		alive = ss.withTracker(now, fn)
		panicked = false
	}) {
		httpError(w, http.StatusServiceUnavailable, "server shutting down")
		return false
	}
	if panicked {
		httpError(w, http.StatusInternalServerError, "internal error")
		return false
	}
	if !alive {
		httpError(w, http.StatusNotFound, "session expired")
		return false
	}
	return true
}

// Handler returns the HTTP handler for the API. Routing is explicit
// per method and path pattern, so unknown paths 404 and wrong methods
// 405 without any hand-rolled dispatch.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", s.instrument("health", s.handleHealth))
	mux.HandleFunc("GET /v1/metricsz", s.instrument("metrics", s.handleMetrics))
	mux.HandleFunc("POST /v1/sessions", s.instrument("create", s.handleCreate))
	mux.HandleFunc("GET /v1/sessions/{id}", s.instrument("get", s.handleGet))
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.instrument("delete", s.handleDelete))
	mux.HandleFunc("POST /v1/sessions/{id}/imu", s.instrument("imu", s.handleIMU))
	mux.HandleFunc("POST /v1/sessions/{id}/scan", s.instrument("scan", s.handleScan))
	mux.HandleFunc("POST /v1/sessions/{id}/tick", s.instrument("tick", s.handleTick))
	mux.HandleFunc("POST /v1/sessions/{id}/batch", s.instrument("batch", s.handleBatch))
	mux.HandleFunc("POST /v1/observations", s.instrument("observations", s.handleObservations))
	mux.HandleFunc("POST /v1/admin/promote", s.instrument("promote", s.handlePromote))
	return mux
}

// NumSessions reports the number of live sessions.
func (s *Server) NumSessions() int { return s.reg.len() }

// Metrics exposes the server's metric registry, for embedding hosts
// that scrape programmatically instead of via /v1/metricsz.
func (s *Server) Metrics() *obs.Registry { return s.met.reg }

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	resp := map[string]interface{}{
		"status":    s.ServingState(),
		"plan":      s.plan.Name,
		"locations": s.plan.NumLocs(),
		"aps":       s.numAPs,
		"sessions":  s.NumSessions(),
		"role":      s.RoleName(),
	}
	if s.store != nil && s.store.log != nil {
		resp["wal_last_seq"] = s.store.log.NextSeq() - 1
	}
	// Replication lag is reported while the server follows; a promoted
	// follower drops these fields along with the role flip.
	if s.role.Load() == roleFollower {
		st := s.ReplicationStatus()
		resp["leader"] = s.opts.FollowAddr
		resp["replication_connected"] = st.Connected
		resp["replication_applied_seq"] = st.Applied
		lag := uint64(0)
		if st.LeaderLast > st.Applied {
			lag = st.LeaderLast - st.Applied
		}
		resp["replication_lag_seq"] = lag
		// Seconds since the follower last covered the leader's published
		// tail; -1 before it ever has (no contact yet).
		lagSec := -1.0
		if !st.LastCaughtUp.IsZero() {
			lagSec = s.opts.Now().Sub(st.LastCaughtUp).Seconds()
		}
		resp["replication_lag_seconds"] = lagSec
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	gst := s.GroupStats()
	writeJSON(w, http.StatusOK, metricsResp{
		Sessions:        s.NumSessions(),
		State:           s.ServingState(),
		WALGroupSyncs:   gst.Syncs,
		WALGroupBatches: gst.Batches,
		Snapshot:        s.met.reg.Snapshot(),
	})
}

// GroupStats snapshots the WAL group committer's amortization counters
// (zero when durability is off).
func (s *Server) GroupStats() wal.GroupStats {
	if s.group == nil {
		return wal.GroupStats{}
	}
	return s.group.Stats()
}

// createReq is the session-creation body.
type createReq struct {
	HeightM     float64 `json:"height_m"`
	WeightKg    float64 `json:"weight_kg"`
	IntervalSec float64 `json:"interval_sec,omitempty"`
	// Paced opts the session into server-driven ticking (wheel.go): the
	// server closes elapsed intervals itself on a coarse timer wheel, so
	// the client only uploads data and either polls GET for the last fix
	// or receives pushed Fix frames on its bound stream. molocd -paced
	// forces it for every session.
	Paced bool `json:"paced,omitempty"`
}

// createResp announces a new session and its lifecycle contract.
type createResp struct {
	SessionID string    `json:"session_id"`
	TTLSec    float64   `json:"ttl_sec"`
	Expires   time.Time `json:"expires"`
	Paced     bool      `json:"paced,omitempty"`
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req createReq
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if req.HeightM < 1 || req.HeightM > 2.3 || req.WeightKg < 25 || req.WeightKg > 250 {
		httpError(w, http.StatusBadRequest, "implausible user profile")
		return
	}
	stepLen := motion.StepLength(s.mcfg, req.HeightM, req.WeightKg)
	cfg := tracker.NewConfig(stepLen)
	cfg.Motion = s.mcfg
	// Gating changes only the candidate search space, not the localizer
	// parameters (Alpha/Beta/K), so gated sessions still adopt the one
	// compiled view the retrainer publishes.
	cfg.MoLoc.Gate = s.opts.Gate
	if req.IntervalSec > 0 {
		cfg.IntervalSec = req.IntervalSec
		cfg.StaleScanSec = req.IntervalSec // keep the one-interval window
	}
	tk, err := tracker.New(s.plan, s.src, s.mdb, cfg)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	tk.UseSnapshot(&s.snap)

	now := s.opts.Now()
	// Admission is an atomic reserve against MaxSessions — no lock, no
	// map scan — followed by the stripe insert; a rejected create never
	// touches any shard.
	if !s.reg.reserve(s.opts.MaxSessions) {
		s.met.sessionsRejected.Inc()
		httpError(w, http.StatusTooManyRequests,
			fmt.Sprintf("session limit (%d) reached; retry after idle sessions expire", s.opts.MaxSessions))
		return
	}
	id := s.reg.allocID()
	ss := newSession(id, tk, now)
	paced := req.Paced || s.opts.PaceAll
	ss.paced = paced
	s.reg.insert(ss)
	if paced {
		s.met.pacedSessions.Inc()
		s.wheel.add(ss, pacedInterval(cfg.IntervalSec), shardOf(id, len(s.pool.queues)), now)
	}

	s.met.sessionsCreated.Inc()
	writeJSON(w, http.StatusCreated, createResp{
		SessionID: id,
		TTLSec:    s.opts.SessionTTL.Seconds(),
		Expires:   now.Add(s.opts.SessionTTL),
		Paced:     paced,
	})
}

// imuReq carries a batch of IMU samples.
type imuReq struct {
	Samples []sensors.Sample `json:"samples"`
}

// scanReq carries one WiFi scan.
type scanReq struct {
	T   float64   `json:"t"`
	RSS []float64 `json:"rss"`
}

// tickReq advances session time.
type tickReq struct {
	T float64 `json:"t"`
}

// fixResp is the JSON form of a fix.
type fixResp struct {
	T          float64                 `json:"t"`
	Loc        int                     `json:"loc"`
	X          float64                 `json:"x"`
	Y          float64                 `json:"y"`
	Moved      bool                    `json:"moved"`
	Mode       string                  `json:"mode"`
	Candidates []fingerprint.Candidate `json:"candidates"`
}

// sessionResp is the GET view of a session: lifecycle state plus the
// last fix (null before the first one).
type sessionResp struct {
	SessionID  string        `json:"session_id"`
	Created    time.Time     `json:"created"`
	LastActive time.Time     `json:"last_active"`
	Expires    time.Time     `json:"expires"`
	Fix        *fixResp      `json:"fix"`
	Stats      tracker.Stats `json:"stats"`
}

// metricsResp is the /v1/metricsz payload.
type metricsResp struct {
	Sessions int    `json:"sessions"`
	State    string `json:"state"`
	// Group-commit amortization (stream ingest): how many fsyncs the
	// committer issued and how many acked batches they covered.
	// Batches/Syncs is the factor the streaming plane exists for.
	WALGroupSyncs   uint64 `json:"wal_group_syncs"`
	WALGroupBatches uint64 `json:"wal_group_batches"`
	obs.Snapshot
}

// lookup resolves a session id from the request path, answering 404
// itself when the session does not exist (or has been evicted).
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*session, bool) {
	id := r.PathValue("id")
	ss, ok := s.reg.get(id)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown session "+id)
		return nil, false
	}
	return ss, true
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.lookup(w, r)
	if !ok {
		return
	}
	info, ok := ss.view(s.opts.SessionTTL)
	if !ok {
		httpError(w, http.StatusNotFound, "session expired")
		return
	}
	var fix *fixResp
	if info.fix != nil {
		f := s.toResp(*info.fix)
		fix = &f
	}
	writeJSON(w, http.StatusOK, sessionResp{
		SessionID:  ss.id,
		Created:    ss.created,
		LastActive: info.lastActive,
		Expires:    info.lastActive.Add(s.opts.SessionTTL),
		Fix:        fix,
		Stats:      info.stats,
	})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ss, ok := s.reg.remove(id)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown session "+id)
		return
	}
	// Marking the session evicted also drops it off the tick wheel: a
	// paced entry whose session is evicted is discarded at its next due
	// slot instead of rescheduled.
	ss.close()
	s.met.sessionsDeleted.Inc()
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleIMU(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req imuReq
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if len(req.Samples) > s.opts.MaxIMUBatch {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("imu batch of %d samples exceeds the %d-sample cap; split the upload",
				len(req.Samples), s.opts.MaxIMUBatch))
		return
	}
	if !s.runSharded(w, ss, func(tk *tracker.Tracker) {
		for _, smp := range req.Samples {
			tk.AddIMU(smp)
		}
	}) {
		return
	}
	w.WriteHeader(http.StatusAccepted)
}

func (s *Server) handleScan(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req scanReq
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if len(req.RSS) != s.numAPs {
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("scan has %d APs, deployment has %d", len(req.RSS), s.numAPs))
		return
	}
	if !s.runSharded(w, ss, func(tk *tracker.Tracker) {
		tk.AddScan(req.T, fingerprint.Fingerprint(req.RSS))
	}) {
		return
	}
	w.WriteHeader(http.StatusAccepted)
}

func (s *Server) handleTick(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req tickReq
	if !s.decodeJSON(w, r, &req) {
		return
	}
	var (
		fix    tracker.Fix
		gotFix bool
	)
	// The ladder position is sampled once per tick, outside the worker
	// closure: a degraded server serves this tick on the pure fingerprint
	// path regardless of when the state flips mid-request.
	fpOnly := s.fingerprintOnly()
	start := time.Now()
	if !s.runSharded(w, ss, func(tk *tracker.Tracker) {
		tk.SetFingerprintOnly(fpOnly)
		a0 := heapAllocBytes()
		t0 := time.Now()
		fix, gotFix = tk.Tick(req.T)
		s.met.tickSeconds.Observe(time.Since(t0).Seconds())
		s.met.tickAllocBytes.Observe(float64(heapAllocBytes() - a0))
	}) {
		return
	}
	if !gotFix {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	// Fix latency is end to end from the handler's point of view: queue
	// wait on the session's worker plus tracker compute.
	s.met.fixSeconds.Observe(time.Since(start).Seconds())
	s.met.candidateSetSize.Observe(float64(len(fix.Candidates)))
	if fix.Mode == tracker.ModeFingerprint {
		s.met.fixesFingerprint.Inc()
	} else {
		s.met.fixesMoLoc.Inc()
	}
	writeJSON(w, http.StatusOK, s.toResp(fix))
}

// batchReq is one batched upload: buffered sensor data plus a final
// tick time, applied in one worker dispatch.
type batchReq struct {
	Samples []sensors.Sample `json:"samples"`
	Scans   []scanReq        `json:"scans"`
	T       float64          `json:"t"`
}

// batchResp carries every fix the batch's elapsed intervals produced,
// oldest first.
type batchResp struct {
	Fixes []fixResp `json:"fixes"`
}

// handleBatch is the batched data plane: a phone that buffered several
// intervals of sensor data uploads samples, scans, and the final tick
// time in one request. The whole batch runs as one worker-pool dispatch
// — one queue wait, one RCU snapshot acquisition (tracker.TickBatch) —
// and every interval's fix comes back, not just the last, so a batched
// client sees the same fix stream a per-interval client would.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req batchReq
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if len(req.Samples) > s.opts.MaxIMUBatch {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch of %d samples exceeds the %d-sample cap; split the upload",
				len(req.Samples), s.opts.MaxIMUBatch))
		return
	}
	for _, sc := range req.Scans {
		if len(sc.RSS) != s.numAPs {
			httpError(w, http.StatusBadRequest,
				fmt.Sprintf("scan has %d APs, deployment has %d", len(sc.RSS), s.numAPs))
			return
		}
	}
	var fixes []tracker.Fix
	fpOnly := s.fingerprintOnly()
	start := time.Now()
	if !s.runSharded(w, ss, func(tk *tracker.Tracker) {
		tk.SetFingerprintOnly(fpOnly)
		for _, smp := range req.Samples {
			tk.AddIMU(smp)
		}
		for _, sc := range req.Scans {
			tk.AddScan(sc.T, fingerprint.Fingerprint(sc.RSS))
		}
		a0 := heapAllocBytes()
		t0 := time.Now()
		fixes = tk.TickBatch(req.T, nil)
		s.met.tickSeconds.Observe(time.Since(t0).Seconds())
		s.met.tickAllocBytes.Observe(float64(heapAllocBytes() - a0))
	}) {
		return
	}
	if len(fixes) > 0 {
		s.met.fixSeconds.Observe(time.Since(start).Seconds())
	}
	resp := batchResp{Fixes: make([]fixResp, len(fixes))}
	for i, fix := range fixes {
		s.met.candidateSetSize.Observe(float64(len(fix.Candidates)))
		if fix.Mode == tracker.ModeFingerprint {
			s.met.fixesFingerprint.Inc()
		} else {
			s.met.fixesMoLoc.Inc()
		}
		resp.Fixes[i] = s.toResp(fix)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) toResp(fix tracker.Fix) fixResp {
	pos := s.plan.LocPos(fix.Loc)
	return fixResp{
		T: fix.T, Loc: fix.Loc, X: pos.X, Y: pos.Y,
		Moved: fix.Moved, Mode: fix.Mode.String(), Candidates: fix.Candidates,
	}
}
