// Package server exposes MoLoc tracking sessions over HTTP+JSON: a
// deployment-shaped wrapper in which phones create a session, stream
// IMU samples and WiFi scans, and poll for location fixes. It is the
// "localization engine" box of the paper's architecture (Fig. 2) as a
// network service.
//
// API (all request/response bodies are JSON):
//
//	POST   /v1/sessions                  {"height_m":1.7,"weight_kg":65}    -> {"session_id":...}
//	POST   /v1/sessions/{id}/imu         {"samples":[{"t":0,"accel":9.8,...}]}
//	POST   /v1/sessions/{id}/scan        {"t":0.5,"rss":[-60,...]}
//	POST   /v1/sessions/{id}/tick        {"t":3.1}                          -> fix or 204
//	GET    /v1/sessions/{id}             -> last fix
//	DELETE /v1/sessions/{id}
//	GET    /v1/healthz
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"moloc/internal/fingerprint"
	"moloc/internal/floorplan"
	"moloc/internal/motion"
	"moloc/internal/motiondb"
	"moloc/internal/sensors"
	"moloc/internal/tracker"
)

// Server hosts tracking sessions over one deployment's databases.
type Server struct {
	plan   *floorplan.Plan
	src    fingerprint.CandidateSource
	mdb    *motiondb.DB
	numAPs int
	mcfg   motion.Config

	mu       sync.Mutex
	nextID   int
	sessions map[string]*session
}

type session struct {
	mu sync.Mutex
	tk *tracker.Tracker
}

// New builds a server over a candidate source (numAPs wide), a motion
// database, and the floor plan.
func New(plan *floorplan.Plan, src fingerprint.CandidateSource, numAPs int,
	mdb *motiondb.DB, mcfg motion.Config) (*Server, error) {
	if err := mcfg.Validate(); err != nil {
		return nil, err
	}
	if numAPs < 1 {
		return nil, fmt.Errorf("server: numAPs must be >= 1, got %d", numAPs)
	}
	if plan.NumLocs() != src.NumLocs() || plan.NumLocs() != mdb.NumLocs() {
		return nil, fmt.Errorf("server: plan (%d), source (%d), and motion DB (%d) disagree on locations",
			plan.NumLocs(), src.NumLocs(), mdb.NumLocs())
	}
	return &Server{
		plan:     plan,
		src:      src,
		mdb:      mdb,
		numAPs:   numAPs,
		mcfg:     mcfg,
		sessions: make(map[string]*session),
	}, nil
}

// Handler returns the HTTP handler for the API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", s.handleHealth)
	mux.HandleFunc("/v1/sessions", s.handleSessions)
	mux.HandleFunc("/v1/sessions/", s.handleSession)
	return mux
}

// NumSessions reports the number of live sessions.
func (s *Server) NumSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status":    "ok",
		"plan":      s.plan.Name,
		"locations": s.plan.NumLocs(),
		"aps":       s.numAPs,
		"sessions":  s.NumSessions(),
	})
}

// createReq is the session-creation body.
type createReq struct {
	HeightM     float64 `json:"height_m"`
	WeightKg    float64 `json:"weight_kg"`
	IntervalSec float64 `json:"interval_sec,omitempty"`
}

func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req createReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if req.HeightM < 1 || req.HeightM > 2.3 || req.WeightKg < 25 || req.WeightKg > 250 {
		httpError(w, http.StatusBadRequest, "implausible user profile")
		return
	}
	stepLen := motion.StepLength(s.mcfg, req.HeightM, req.WeightKg)
	cfg := tracker.NewConfig(stepLen)
	cfg.Motion = s.mcfg
	if req.IntervalSec > 0 {
		cfg.IntervalSec = req.IntervalSec
	}
	tk, err := tracker.New(s.plan, s.src, s.mdb, cfg)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	s.mu.Lock()
	s.nextID++
	id := "s" + strconv.Itoa(s.nextID)
	s.sessions[id] = &session{tk: tk}
	s.mu.Unlock()

	writeJSON(w, http.StatusCreated, map[string]string{"session_id": id})
}

// imuReq carries a batch of IMU samples.
type imuReq struct {
	Samples []sensors.Sample `json:"samples"`
}

// scanReq carries one WiFi scan.
type scanReq struct {
	T   float64   `json:"t"`
	RSS []float64 `json:"rss"`
}

// tickReq advances session time.
type tickReq struct {
	T float64 `json:"t"`
}

// fixResp is the JSON form of a fix.
type fixResp struct {
	T          float64                 `json:"t"`
	Loc        int                     `json:"loc"`
	X          float64                 `json:"x"`
	Y          float64                 `json:"y"`
	Moved      bool                    `json:"moved"`
	Candidates []fingerprint.Candidate `json:"candidates"`
}

func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/sessions/")
	parts := strings.Split(rest, "/")
	id := parts[0]

	s.mu.Lock()
	sess, ok := s.sessions[id]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown session "+id)
		return
	}

	switch {
	case len(parts) == 1 && r.Method == http.MethodGet:
		s.getFix(w, sess)
	case len(parts) == 1 && r.Method == http.MethodDelete:
		s.mu.Lock()
		delete(s.sessions, id)
		s.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	case len(parts) == 2 && r.Method == http.MethodPost:
		switch parts[1] {
		case "imu":
			s.postIMU(w, r, sess)
		case "scan":
			s.postScan(w, r, sess)
		case "tick":
			s.postTick(w, r, sess)
		default:
			httpError(w, http.StatusNotFound, "unknown endpoint "+parts[1])
		}
	default:
		httpError(w, http.StatusMethodNotAllowed, "unsupported method")
	}
}

func (s *Server) getFix(w http.ResponseWriter, sess *session) {
	sess.mu.Lock()
	fix := sess.tk.LastFix()
	sess.mu.Unlock()
	if fix == nil {
		httpError(w, http.StatusNotFound, "no fix yet")
		return
	}
	writeJSON(w, http.StatusOK, s.toResp(*fix))
}

func (s *Server) postIMU(w http.ResponseWriter, r *http.Request, sess *session) {
	var req imuReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	sess.mu.Lock()
	for _, smp := range req.Samples {
		sess.tk.AddIMU(smp)
	}
	sess.mu.Unlock()
	w.WriteHeader(http.StatusAccepted)
}

func (s *Server) postScan(w http.ResponseWriter, r *http.Request, sess *session) {
	var req scanReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if len(req.RSS) != s.numAPs {
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("scan has %d APs, deployment has %d", len(req.RSS), s.numAPs))
		return
	}
	sess.mu.Lock()
	sess.tk.AddScan(req.T, fingerprint.Fingerprint(req.RSS))
	sess.mu.Unlock()
	w.WriteHeader(http.StatusAccepted)
}

func (s *Server) postTick(w http.ResponseWriter, r *http.Request, sess *session) {
	var req tickReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	sess.mu.Lock()
	fix, ok := sess.tk.Tick(req.T)
	sess.mu.Unlock()
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, s.toResp(fix))
}

func (s *Server) toResp(fix tracker.Fix) fixResp {
	pos := s.plan.LocPos(fix.Loc)
	return fixResp{
		T: fix.T, Loc: fix.Loc, X: pos.X, Y: pos.Y,
		Moved: fix.Moved, Candidates: fix.Candidates,
	}
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// Encoding errors after the header is written can only be logged;
	// for these small payloads they do not occur in practice.
	//lint:ignore errdrop the status header is already written, so the error cannot change the response
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
