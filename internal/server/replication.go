// Leader/follower wiring for WAL-shipping replication (internal/replica).
//
// Any durable server serves replication: a connection whose first frame
// is ReplHello (instead of the ingest Hello) is handed to a
// replica.Leader over the server's own WAL and checkpoints, so followers
// attach to the same stream listener phones do. A server booted with
// Options.FollowAddr is a read replica: a replication client replays the
// leader's WAL into the local WAL byte-for-byte (recovery on either side
// folds the same records), the retrainer folds replicated observations
// into RCU snapshots exactly as the leader's does, and ingest answers
// 409 pointing at the leader. Promote flips the role at runtime — the
// replication client stops and ingest opens — with no acked-observation
// loss, because everything the leader acked is already in the local WAL.
//
// Staleness: a follower that cannot reach (or keep up with) its leader
// for longer than Options.ReplLagMax enters the follower-stale rung of
// the degradation ladder (fingerprint-only fixes — the motion DB is
// suspect, exactly like the degraded rung) and climbs back out on its
// own as soon as it catches up.
package server

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"moloc/internal/checkpoint"
	"moloc/internal/motiondb"
	"moloc/internal/replica"
	"moloc/internal/wire"
)

// Replication roles. The zero value is leader so a server without
// FollowAddr behaves exactly as before replication existed.
const (
	roleLeader int32 = iota
	roleFollower
)

// RoleName reports "leader" or "follower" as /v1/healthz exposes it.
func (s *Server) RoleName() string {
	if s.role.Load() == roleFollower {
		return "follower"
	}
	return "leader"
}

// replSource adapts the server's durable store to replica.Source: the
// leader side reads checkpoints and WAL records through the same seams
// the server's own recovery uses.
type replSource struct {
	s *Server
}

func (rs replSource) Snapshot() (*checkpoint.Snapshot, error) {
	snap, _, err := checkpoint.OpenLatest(rs.s.opts.FS, rs.s.store.ckptDir)
	return snap, err
}

func (rs replSource) FirstSeq() uint64 { return rs.s.store.log.FirstSeq() }
func (rs replSource) NextSeq() uint64  { return rs.s.store.log.NextSeq() }

func (rs replSource) CkptSeq() uint64 {
	rt := rs.s.retrain
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.ckptSeq
}

func (rs replSource) ReadWAL(from uint64, max int, fn func(seq uint64, payload []byte) error) (uint64, error) {
	return rs.s.store.log.ReadFrom(from, max, fn)
}

// serveRepl runs the leader side of one replication connection whose
// hello frame already arrived. Dispatched from handleStreamConn; the
// replica.Leader owns the connection from here.
func (s *Server) serveRepl(conn net.Conn, rd *wire.Reader, sc *streamConn, fr wire.Frame) {
	if s.store == nil || s.store.log == nil {
		s.streamFail(sc, fr.Seq, "replication requires durability (-data-dir)")
		return
	}
	lastSeq, window, err := wire.DecodeReplHello(fr.Payload)
	if err != nil {
		s.streamFail(sc, fr.Seq, "bad repl hello: "+err.Error())
		return
	}
	s.met.replConns.Inc()
	ld := replica.NewLeader(replSource{s: s}, replica.LeaderOptions{
		ChunkBytes: s.opts.ReplChunkBytes,
		Now:        s.opts.Now,
	})
	if err := ld.Serve(conn, rd, lastSeq, window, s.done); err != nil {
		s.met.streamErrors.Inc()
	}
}

// replApplier adapts the server to replica.Applier: the follower side
// writes replicated records into the local WAL through the retrainer's
// enqueue path, so queue order, WAL order, and — after the local fold —
// the motion database are all identical to the leader's.
type replApplier struct {
	s *Server

	// obs is the reused decode scratch; Apply runs on the single
	// replication goroutine, so one buffer suffices.
	//
	//moloc:reuse
	obs []motiondb.Observation
}

func (ra *replApplier) LastApplied() uint64 {
	return ra.s.store.log.NextSeq() - 1
}

// InstallSnapshot bootstraps from a leader checkpoint: install it as the
// training state (validating first, exactly like boot recovery), persist
// it locally so the next boot recovers from it, and jump the WAL
// sequence to its coverage. Nothing is acked until the local Save
// completed, so a crash mid-install re-requests the checkpoint from
// scratch — a partial install is never visible.
func (ra *replApplier) InstallSnapshot(ckptSeq uint64, payload []byte) error {
	s := ra.s
	// Discard un-folded pre-snapshot observations first: records at or
	// below ckptSeq are already folded into the incoming checkpoint, and
	// the restore below replaces the builder they would have fed.
	rt := s.retrain
	rt.mu.Lock()
	rt.pending = rt.pending[:0]
	rt.mu.Unlock()
	if err := s.installCheckpoint(payload); err != nil {
		return fmt.Errorf("server: replicated checkpoint rejected: %w", err)
	}
	if err := checkpoint.Save(s.opts.FS, s.store.ckptDir, ckptSeq, payload); err != nil {
		s.met.checkpointErrors.Inc()
		return fmt.Errorf("server: persist replicated checkpoint: %w", err)
	}
	s.met.checkpointWrites.Inc()
	if err := checkpoint.Prune(s.opts.FS, s.store.ckptDir, s.opts.CheckpointRetain); err != nil {
		s.met.checkpointErrors.Inc()
	}
	rt.mu.Lock()
	rt.ckptSeq = ckptSeq
	if rt.lastSeq < ckptSeq {
		rt.lastSeq = ckptSeq
	}
	rt.mu.Unlock()
	s.store.log.EnsureSeqAtLeast(ckptSeq)
	s.met.replSnapshots.Inc()
	return nil
}

// Apply appends one replicated WAL record locally. The payload goes in
// verbatim (the follower's WAL is byte-identical to the shipped range of
// the leader's); the decoded observations feed the retrainer the same
// way the leader's ingest fed them, minus the validation drops the
// leader's replay would also make.
func (ra *replApplier) Apply(seq uint64, payload []byte) error {
	s := ra.s
	next := s.store.log.NextSeq()
	if seq < next {
		return nil // duplicate from at-least-once redelivery
	}
	if seq > next {
		return fmt.Errorf("server: replication gap: got seq %d, expected %d", seq, next)
	}
	// Decode exactly as WAL replay does: binary batches self-identify by
	// the wire magic, anything else is the legacy JSON encoding. A record
	// that decodes but holds invalid observations still appends (the WAL
	// must stay byte-identical); only the fold drops them, as the
	// leader's own replay would.
	numLocs := s.plan.NumLocs()
	valid := ra.obs[:0]
	if wire.IsObsPayload(payload) {
		batch, err := wire.DecodeObservations(payload, ra.obs)
		if err != nil {
			return fmt.Errorf("server: replicated record %d: %w", seq, err)
		}
		ra.obs = batch
		for _, o := range batch {
			if validateObservation(o, numLocs) != nil {
				s.met.walReplaySkipped.Inc()
				continue
			}
			valid = append(valid, o)
		}
	}
	for {
		wseq, ok, err := s.retrain.enqueueStream(s.store, payload, valid)
		if err != nil {
			s.met.walAppendErrors.Inc()
			s.setState(stateDegraded)
			return fmt.Errorf("server: replicated append: %w", err)
		}
		if ok {
			if wseq != seq {
				return fmt.Errorf("server: replicated record %d landed at local seq %d", seq, wseq)
			}
			s.met.replApplied.Inc()
			s.met.replAppliedObs.Add(int64(len(valid)))
			return nil
		}
		// Queue full: the retrainer drains it shortly; backpressure here
		// simply slows the replication stream down.
		if s.waitDone(2 * time.Millisecond) {
			return errors.New("server: shutting down")
		}
	}
}

// Commit waits for the covering fsync over everything applied so far and
// returns the durable horizon — the sequence the follower acks. Same
// //moloc:durable discipline as the ingest stream: an acked record
// survives follower kill -9.
func (ra *replApplier) Commit() (uint64, error) {
	s := ra.s
	applied := s.store.log.NextSeq() - 1
	if s.group != nil {
		if err := s.group.WaitDurable(applied); err != nil {
			s.met.walAppendErrors.Inc()
			s.setState(stateDegraded)
			return 0, err
		}
	}
	return applied, nil
}

// ReplicationStatus reports the follower's replication position (the
// zero Status on a server that never followed). Exposed for healthz,
// benchmarks, and fleet tooling.
func (s *Server) ReplicationStatus() replica.Status {
	if s.follower == nil {
		return replica.Status{}
	}
	return s.follower.Status()
}

// runFollower drives the replication client until promotion or Close.
func (s *Server) runFollower() {
	defer s.wg.Done()
	s.follower.Run(s.replStop)
}

// stopReplication stops the replication client exactly once; both
// Promote and Close route through it.
func (s *Server) stopReplication() {
	if s.replStop == nil {
		return
	}
	s.replStopOnce.Do(func() { close(s.replStop) })
}

// Promote turns this follower into a leader: the replication client
// stops, ingest opens, and the follower-stale rung clears. It reports
// whether this call performed the promotion (false when the server
// already is the leader), so the admin endpoint is idempotent.
func (s *Server) Promote() bool {
	if !s.role.CompareAndSwap(roleFollower, roleLeader) {
		return false
	}
	s.stopReplication()
	s.casState(stateFollowerStale, stateOK)
	s.met.promotions.Inc()
	return true
}

// handlePromote is POST /v1/admin/promote. Safe to repeat: a promoted
// (or born-leader) server answers 200 with promoted=false.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	promoted := s.Promote()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"role":     s.RoleName(),
		"promoted": promoted,
	})
}

// replMonitor watches replication lag on a follower and moves the
// ladder between ok and follower-stale. It samples at a quarter of the
// staleness window (clamped to [50ms, 1s]) so both entry and recovery
// land well within one window.
func (s *Server) replMonitor() {
	defer s.wg.Done()
	interval := s.opts.ReplLagMax / 4
	if interval < 50*time.Millisecond {
		interval = 50 * time.Millisecond
	}
	if interval > time.Second {
		interval = time.Second
	}
	for !s.waitDone(interval) {
		s.updateStaleness()
	}
}

// updateStaleness applies the staleness rule once: a follower whose last
// caught-up instant (or, before first contact, whose boot) is more than
// ReplLagMax ago is stale. Only the ok<->follower-stale edges are
// touched — degraded/recovering are owned by the durability layer.
func (s *Server) updateStaleness() {
	if s.role.Load() != roleFollower {
		return
	}
	ref := s.follower.Status().LastCaughtUp
	if ref.IsZero() {
		ref = s.replStart
	}
	if s.opts.Now().Sub(ref) > s.opts.ReplLagMax {
		s.casState(stateOK, stateFollowerStale)
	} else {
		s.casState(stateFollowerStale, stateOK)
	}
}
