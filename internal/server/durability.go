// Crash-safe durability and the degradation ladder.
//
// With Options.DataDir set, the ingest→retrain→serve loop survives
// kill -9 without losing an acknowledged observation: POST
// /v1/observations batches are appended to a WAL (internal/wal) before
// the 202 goes out, every retrain publishes an atomic checkpoint of the
// full training state — the motion DB plus the builder's per-pair
// sample accumulators, since entries are fit on cumulative samples —
// and recovery folds newest-valid-checkpoint + WAL tail back together
// (internal/checkpoint).
//
// When durability breaks instead of the process — checkpoint corrupt at
// boot, WAL disk returning EIO — the server degrades rather than dying:
// the ladder walks ok → degraded-fingerprint-only → recovering → ok.
// Degraded sessions keep emitting fixes on the paper's pure fingerprint
// path (Eq. 2–4, tracker.ModeFingerprint); ingestion answers 503 so no
// batch is acknowledged that could be lost; and the first retrain that
// lands a durable checkpoint again climbs back to ok. The state is
// surfaced in /v1/healthz, /v1/metricsz, and each fix's "mode" tag.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"

	"moloc/internal/checkpoint"
	"moloc/internal/motiondb"
	"moloc/internal/wal"
	"moloc/internal/wire"
)

// Degradation-ladder states. The zero value is healthy so a server
// without durability never shows anything but "ok".
const (
	stateOK int32 = iota
	stateDegraded
	stateRecovering
	// stateFollowerStale is the replication rung (replication.go): a
	// follower trailing its leader beyond Options.ReplLagMax serves
	// fingerprint-only fixes — its motion DB is as suspect as a degraded
	// server's — and recovers on its own when it catches back up.
	stateFollowerStale
)

// stateName maps ladder states to the strings the API exposes.
func stateName(st int32) string {
	switch st {
	case stateDegraded:
		return "degraded-fingerprint-only"
	case stateRecovering:
		return "recovering"
	case stateFollowerStale:
		return "follower-stale"
	}
	return "ok"
}

// ServingState returns the degradation-ladder position as exposed by
// /v1/healthz: "ok", "degraded-fingerprint-only", or "recovering".
func (s *Server) ServingState() string { return stateName(s.state.Load()) }

// setState moves the ladder, counting each transition by target state.
func (s *Server) setState(st int32) {
	if s.state.Swap(st) != st {
		s.met.reg.Counter("state_transitions{to=" + stateName(st) + "}").Inc()
	}
}

// casState moves the ladder only from a specific rung, so independent
// subsystems (durability here, the replication monitor in
// replication.go) can each clear the rung they own without clobbering
// the other's. Reports whether the transition happened.
func (s *Server) casState(from, to int32) bool {
	if !s.state.CompareAndSwap(from, to) {
		return false
	}
	s.met.reg.Counter("state_transitions{to=" + stateName(to) + "}").Inc()
	return true
}

// fingerprintOnly reports whether sessions should skip motion matching
// this tick. Anything but ok qualifies: in degraded the motion DB is
// suspect, and in recovering it is mid-rebuild.
func (s *Server) fingerprintOnly() bool { return s.state.Load() != stateOK }

// errWALUnavailable fails ingestion when the WAL never opened (boot
// found the log directory unusable); acknowledging a batch that cannot
// be made durable would silently drop it on the next crash.
var errWALUnavailable = errors.New("server: observation log unavailable")

// durableStore bundles the durability handles. log is nil when the WAL
// failed to open — ingestion then refuses batches while serving
// continues degraded.
type durableStore struct {
	log     *wal.Log
	ckptDir string
}

// ckptEnvelope is the checkpoint payload: the motion DB and the
// builder's accumulator state, serialized by internal/motiondb. Both
// are needed for bit-identical recovery — the DB alone would lose every
// pair still below MinSamples.
type ckptEnvelope struct {
	DB      json.RawMessage `json:"db"`
	Builder json.RawMessage `json:"builder"`
}

// openDurability recovers persisted state from DataDir and opens the
// WAL for appending. It never refuses boot: every failure mode lands in
// the degraded state with serving still up, because a localization
// outage is strictly worse than serving fingerprint-only fixes.
// Called from NewWithOptions before any request can arrive, so it may
// touch retrainer state through the locked helpers without contention.
func (s *Server) openDurability() {
	o := s.opts
	s.setState(stateRecovering)
	s.store = &durableStore{ckptDir: filepath.Join(o.DataDir, "checkpoints")}
	degraded := false

	// Newest valid checkpoint, if any. A corrupt candidate is skipped by
	// Latest; its presence still means acknowledged training data may be
	// gone (the WAL below it was truncated), so the server boots degraded
	// until a fresh retrain checkpoints successfully.
	ckptSeq := uint64(0)
	payload, seq, cst, err := checkpoint.Latest(o.FS, s.store.ckptDir)
	s.met.checkpointCorrupt.Add(int64(cst.CorruptSkipped))
	switch {
	case err == nil:
		if ierr := s.installCheckpoint(payload); ierr != nil {
			s.met.checkpointErrors.Inc()
			degraded = true
		} else {
			ckptSeq = seq
		}
	case errors.Is(err, checkpoint.ErrNoCheckpoint):
		degraded = degraded || cst.CorruptSkipped > 0
	default:
		degraded = true
	}

	// Open the WAL, replaying the records past the checkpoint's coverage
	// into the pending queue. Torn tails are truncated by wal.Open; a
	// record that fails decoding or validation (possible only through
	// corruption that beat the CRC) is skipped and counted.
	numLocs := s.plan.NumLocs()
	replayed := 0
	log, err := wal.Open(filepath.Join(o.DataDir, "wal"), wal.Options{
		FS:           o.FS,
		SegmentBytes: o.WALSegmentBytes,
		Policy:       o.FsyncPolicy,
		SyncEvery:    o.FsyncInterval,
	}, func(seq uint64, payload []byte) error {
		if seq <= ckptSeq {
			return nil // already folded into the checkpoint
		}
		// The WAL holds two payload encodings: binary batches from the
		// stream plane (self-identified by wire.ObsMagic, which no JSON
		// document can start with) and legacy JSON from the HTTP path.
		var batch []motiondb.Observation
		if wire.IsObsPayload(payload) {
			b, derr := wire.DecodeObservations(payload, nil)
			if derr != nil {
				s.met.walReplaySkipped.Inc()
				return nil
			}
			batch = b
		} else if err := json.Unmarshal(payload, &batch); err != nil {
			s.met.walReplaySkipped.Inc()
			return nil
		}
		for _, ob := range batch {
			if validateObservation(ob, numLocs) != nil {
				s.met.walReplaySkipped.Inc()
				continue
			}
			replayed++
		}
		if !s.retrain.enqueueReplay(batch, numLocs, seq) {
			s.met.observationsDropped.Add(int64(len(batch)))
		}
		return nil
	})
	if err != nil {
		degraded = true
	} else {
		st := log.OpenStats()
		s.met.walTornTruncations.Add(int64(st.Truncations))
		s.met.walReplayed.Add(int64(replayed))
		log.EnsureSeqAtLeast(ckptSeq)
		s.store.log = log
		// The group committer serves the streaming plane: appends go in
		// with AppendNoSync and acks wait on its covering fsync.
		s.group = wal.NewGroupCommitter(log)
	}
	s.retrain.initSeqs(ckptSeq)

	// Fold the replayed tail and land a fresh checkpoint. Success here
	// (or nothing to do on a clean boot) clears recovering; any failure
	// leaves the ladder degraded.
	if _, err := s.RetrainNow(); err != nil {
		s.met.retrainErrors.Inc()
		degraded = true
	}
	if degraded {
		s.setState(stateDegraded)
	} else {
		s.setState(stateOK)
	}
}

// installCheckpoint decodes a checkpoint payload and installs it as the
// training state: the retrainer's DB and builder are replaced and the
// compiled view is published. An incompatible payload (different
// deployment, wrong location count) is rejected so a copied-over data
// directory cannot silently serve another site's statistics.
func (s *Server) installCheckpoint(payload []byte) error {
	var env ckptEnvelope
	if err := json.Unmarshal(payload, &env); err != nil {
		return fmt.Errorf("server: checkpoint envelope: %w", err)
	}
	db, err := motiondb.Decode(env.DB)
	if err != nil {
		return fmt.Errorf("server: checkpoint db: %w", err)
	}
	if db.NumLocs() != s.plan.NumLocs() {
		return fmt.Errorf("server: checkpoint has %d locations, plan has %d",
			db.NumLocs(), s.plan.NumLocs())
	}
	cmp, err := db.Compile(s.retrain.alpha, s.retrain.beta)
	if err != nil {
		return fmt.Errorf("server: compile checkpoint db: %w", err)
	}
	if err := s.retrain.restore(db, env.Builder); err != nil {
		return err
	}
	s.snap.Store(cmp)
	return nil
}

// closeStore syncs and closes the WAL on shutdown. The group committer
// goes first so no fsync races the closing file (its waiters were
// already drained when Close tore down the stream connections).
func (s *Server) closeStore() {
	if s.group != nil {
		s.group.Close()
	}
	if s.store == nil || s.store.log == nil {
		return
	}
	if err := s.store.log.Close(); err != nil {
		s.met.walAppendErrors.Inc()
	}
}

// checkpointStateLocked publishes a checkpoint of the current training
// state covering the WAL through rt.lastSeq, then prunes the WAL
// segments and old checkpoints it supersedes. Caller holds rt.mu.
func (s *Server) checkpointStateLocked(rt *retrainer) error {
	dbBytes, err := rt.db.Encode()
	if err != nil {
		return err
	}
	bldBytes, err := rt.builder.EncodeState()
	if err != nil {
		return err
	}
	payload, err := json.Marshal(ckptEnvelope{DB: dbBytes, Builder: bldBytes})
	if err != nil {
		return fmt.Errorf("server: marshal checkpoint: %w", err)
	}
	if err := checkpoint.Save(s.opts.FS, s.store.ckptDir, rt.lastSeq, payload); err != nil {
		return err
	}
	s.met.checkpointWrites.Inc()
	// Truncation and pruning are space reclamation, not correctness: a
	// failure leaves extra files behind and is only counted.
	if s.store.log != nil {
		if _, err := s.store.log.TruncateThrough(rt.lastSeq); err != nil {
			s.met.walAppendErrors.Inc()
		}
	}
	if err := checkpoint.Prune(s.opts.FS, s.store.ckptDir, s.opts.CheckpointRetain); err != nil {
		s.met.checkpointErrors.Inc()
	}
	return nil
}
