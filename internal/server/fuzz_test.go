package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// fuzzServer builds one shared server for the handler fuzzer; building
// a deployment per fuzz case would drown the fuzzer in setup.
var (
	fuzzSrvOnce sync.Once
	fuzzSrv     *httptest.Server
)

func fuzzHandler(t *testing.T) *httptest.Server {
	fuzzSrvOnce.Do(func() {
		srv, _, err := newTestServer()
		if err != nil {
			return
		}
		fuzzSrv = httptest.NewServer(srv.Handler())
	})
	if fuzzSrv == nil {
		t.Skip("server unavailable")
	}
	return fuzzSrv
}

// FuzzHandleSession throws arbitrary methods, paths, and bodies at the
// session router: whatever arrives, the server must answer with an HTTP
// status (never panic or hang).
func FuzzHandleSession(f *testing.F) {
	f.Add("POST", "/v1/sessions", `{"height_m":1.7,"weight_kg":70}`)
	f.Add("POST", "/v1/sessions/s1/imu", `{"samples":[{"t":1,"accel":9.8}]}`)
	f.Add("POST", "/v1/sessions/s1/scan", `{"t":1,"rss":[1,2,3]}`)
	f.Add("GET", "/v1/sessions/zzz", "")
	f.Add("DELETE", "/v1/sessions/s1", "")
	f.Add("PUT", "/v1/sessions/s1/tick", `{`)
	f.Add("POST", "/v1/sessions//imu", `null`)
	f.Fuzz(func(t *testing.T, method, path, body string) {
		if len(path) > 200 || len(body) > 4096 {
			return
		}
		ts := fuzzHandler(t)
		req, err := http.NewRequest(method, ts.URL+"/"+path, bytes.NewReader([]byte(body)))
		if err != nil {
			return // unrepresentable method/path; not the server's fault
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("transport error: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode < 200 || resp.StatusCode > 599 {
			t.Fatalf("implausible status %d", resp.StatusCode)
		}
	})
}
