package server

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"moloc/internal/tracker"
)

// TestInstrumentRecoversPanic: a panicking handler answers 500 and
// bumps panics_recovered instead of killing the process; the routes
// around it keep working.
func TestInstrumentRecoversPanic(t *testing.T) {
	srv, _ := testServer(t)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /boom", srv.instrument("boom", func(http.ResponseWriter, *http.Request) {
		panic("handler bug")
	}))
	ts := httptest.NewServer(mux)
	defer ts.Close()

	for i := 1; i <= 2; i++ {
		resp, err := http.Get(ts.URL + "/boom")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("panic request %d: status %d, want 500", i, resp.StatusCode)
		}
		if got := srv.met.panicsRecovered.Value(); got != int64(i) {
			t.Fatalf("panics_recovered = %d, want %d", got, i)
		}
	}
}

// TestInstrumentPanicAfterWriteLeavesResponse: once the handler has
// written, the recovery must not stomp a second status on top.
func TestInstrumentPanicAfterWriteLeavesResponse(t *testing.T) {
	srv, _ := testServer(t)
	h := srv.instrument("late", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		panic("after the header")
	})
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest(http.MethodGet, "/late", nil))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("status = %d, want the handler's 202", rec.Code)
	}
	if got := srv.met.panicsRecovered.Value(); got != 1 {
		t.Fatalf("panics_recovered = %d, want 1", got)
	}
}

// TestRunShardedRecoversPanic: a panic on a pool worker must not kill
// the process or wedge the worker — the caller gets a 500 and the same
// session keeps serving.
func TestRunShardedRecoversPanic(t *testing.T) {
	srv, _ := testServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	id := createSession(t, ts)
	ss, _ := srv.reg.get(id)

	rec := httptest.NewRecorder()
	if srv.runSharded(rec, ss, func(*tracker.Tracker) { panic("tracker bug") }) {
		t.Fatal("runSharded reported success for a panicking fn")
	}
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	if got := srv.met.panicsRecovered.Value(); got != 1 {
		t.Fatalf("panics_recovered = %d, want 1", got)
	}

	// The worker survived; the session still works.
	ran := false
	rec2 := httptest.NewRecorder()
	if !srv.runSharded(rec2, ss, func(*tracker.Tracker) { ran = true }) || !ran {
		t.Fatal("worker did not serve the session after the panic")
	}
}
