// Request middleware: per-route instrumentation (counters + latency
// histograms, internal/obs) and body-hardened JSON decoding
// (http.MaxBytesReader). Kept apart from the handlers so the serving
// logic in server.go stays about sessions, not plumbing.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/metrics"
	"sync"
	"time"

	"moloc/internal/obs"
)

// serverMetrics bundles the server's metric handles. The named fields
// are the hot-path metrics looked up once at construction; per-route
// request counters and latency histograms are created on first use in
// the registry.
type serverMetrics struct {
	reg *obs.Registry

	sessionsCreated  *obs.Counter
	sessionsDeleted  *obs.Counter
	sessionsExpired  *obs.Counter
	sessionsRejected *obs.Counter
	tickSeconds      *obs.Histogram
	fixSeconds       *obs.Histogram
	tickAllocBytes   *obs.Histogram
	candidateSetSize *obs.Histogram

	// Online-training metrics (retrain.go).
	observationsIn      *obs.Counter
	observationsDropped *obs.Counter
	retrains            *obs.Counter
	retrainDirtyEdges   *obs.Counter
	retrainFullCompiles *obs.Counter
	retrainErrors       *obs.Counter
	retrainSeconds      *obs.Histogram
}

func newServerMetrics() *serverMetrics {
	reg := obs.NewRegistry()
	return &serverMetrics{
		reg:              reg,
		sessionsCreated:  reg.Counter("sessions_created"),
		sessionsDeleted:  reg.Counter("sessions_deleted"),
		sessionsExpired:  reg.Counter("sessions_expired"),
		sessionsRejected: reg.Counter("sessions_rejected"),
		tickSeconds:      reg.Histogram("tick_seconds", obs.LatencyBuckets),
		fixSeconds:       reg.Histogram("fix_seconds", obs.LatencyBuckets),
		tickAllocBytes:   reg.Histogram("tick_alloc_bytes", obs.BytesBuckets),
		candidateSetSize: reg.Histogram("candidate_set_size", obs.SizeBuckets),

		observationsIn:      reg.Counter("observations_in"),
		observationsDropped: reg.Counter("observations_dropped"),
		retrains:            reg.Counter("retrains"),
		retrainDirtyEdges:   reg.Counter("retrain_dirty_edges"),
		retrainFullCompiles: reg.Counter("retrain_full_compiles"),
		retrainErrors:       reg.Counter("retrain_errors"),
		retrainSeconds:      reg.Histogram("retrain_seconds", obs.LatencyBuckets),
	}
}

// allocSamples recycles the runtime/metrics sample buffers used to
// measure per-tick heap allocation, so the measurement itself stays
// allocation-free.
var allocSamples = sync.Pool{
	New: func() interface{} {
		s := make([]metrics.Sample, 1)
		s[0].Name = "/gc/heap/allocs:bytes"
		return &s
	},
}

// heapAllocBytes reads the process's cumulative heap-allocation
// counter. Deltas around a code region approximate its allocation
// volume; concurrent goroutines add noise, which is acceptable for a
// histogram whose job is to catch the fast path regressing from the
// zero bucket.
func heapAllocBytes() uint64 {
	sp := allocSamples.Get().(*[]metrics.Sample)
	metrics.Read(*sp)
	v := (*sp)[0].Value.Uint64()
	allocSamples.Put(sp)
	return v
}

// request records one served request.
func (m *serverMetrics) request(route string, status int, d time.Duration) {
	m.reg.Counter(fmt.Sprintf("requests{route=%s,status=%d}", route, status)).Inc()
	m.reg.Histogram("latency_seconds{route="+route+"}", obs.LatencyBuckets).Observe(d.Seconds())
}

// statusWriter captures the response status for instrumentation.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with request counting and latency
// recording under the given route label.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(sw, r)
		s.met.request(route, sw.status, time.Since(start))
	}
}

// decodeJSON decodes a body-capped JSON request into v, answering 413
// for oversized bodies and 400 for malformed JSON. It reports whether
// the handler should proceed.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds the %d-byte cap", maxErr.Limit))
			return false
		}
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// Encoding errors after the header is written can only be logged;
	// for these small payloads they do not occur in practice.
	//lint:ignore errdrop the status header is already written, so the error cannot change the response
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
