// Request middleware: per-route instrumentation (counters + latency
// histograms, internal/obs) and body-hardened JSON decoding
// (http.MaxBytesReader). Kept apart from the handlers so the serving
// logic in server.go stays about sessions, not plumbing.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime/metrics"
	"sync"
	"time"

	"moloc/internal/obs"
)

// serverMetrics bundles the server's metric handles. The named fields
// are the hot-path metrics looked up once at construction; per-route
// request counters and latency histograms are created on first use in
// the registry.
type serverMetrics struct {
	reg *obs.Registry

	sessionsCreated  *obs.Counter
	sessionsDeleted  *obs.Counter
	sessionsExpired  *obs.Counter
	sessionsRejected *obs.Counter
	tickSeconds      *obs.Histogram
	fixSeconds       *obs.Histogram
	tickAllocBytes   *obs.Histogram
	candidateSetSize *obs.Histogram

	// Online-training metrics (retrain.go).
	observationsIn      *obs.Counter
	observationsDropped *obs.Counter
	retrains            *obs.Counter
	retrainDirtyEdges   *obs.Counter
	retrainFullCompiles *obs.Counter
	retrainErrors       *obs.Counter
	retrainSeconds      *obs.Histogram

	// Robustness metrics: the panic-recovery middleware and the
	// durability layer (durability.go).
	panicsRecovered    *obs.Counter
	walAppends         *obs.Counter
	walAppendErrors    *obs.Counter
	walReplayed        *obs.Counter
	walReplaySkipped   *obs.Counter
	walTornTruncations *obs.Counter
	checkpointWrites   *obs.Counter
	checkpointErrors   *obs.Counter
	checkpointCorrupt  *obs.Counter
	fixesMoLoc         *obs.Counter
	fixesFingerprint   *obs.Counter

	// Streaming-plane metrics (stream.go).
	streamConns   *obs.Counter
	streamResumes *obs.Counter
	streamFrames  *obs.Counter
	streamAcks    *obs.Counter
	streamErrors  *obs.Counter

	// Replication metrics (replication.go): leader-side connection count,
	// follower-side apply progress, and role promotions.
	replConns      *obs.Counter
	replApplied    *obs.Counter
	replAppliedObs *obs.Counter
	replSnapshots  *obs.Counter
	promotions     *obs.Counter

	// Server-paced tick-wheel metrics (wheel.go). pacedTicks versus
	// pacedSnapshotLoads is the batching ratio: how many session ticks
	// each (worker, slot) snapshot load amortized over.
	pacedSessions      *obs.Counter
	pacedTicks         *obs.Counter
	pacedSnapshotLoads *obs.Counter
	pacedPushes        *obs.Counter
	pacedPushErrors    *obs.Counter
	poolShed           *obs.Counter
	pacedFixSeconds    *obs.Histogram
}

func newServerMetrics() *serverMetrics {
	reg := obs.NewRegistry()
	return &serverMetrics{
		reg:              reg,
		sessionsCreated:  reg.Counter("sessions_created"),
		sessionsDeleted:  reg.Counter("sessions_deleted"),
		sessionsExpired:  reg.Counter("sessions_expired"),
		sessionsRejected: reg.Counter("sessions_rejected"),
		tickSeconds:      reg.Histogram("tick_seconds", obs.LatencyBuckets),
		fixSeconds:       reg.Histogram("fix_seconds", obs.LatencyBuckets),
		tickAllocBytes:   reg.Histogram("tick_alloc_bytes", obs.BytesBuckets),
		candidateSetSize: reg.Histogram("candidate_set_size", obs.SizeBuckets),

		observationsIn:      reg.Counter("observations_in"),
		observationsDropped: reg.Counter("observations_dropped"),
		retrains:            reg.Counter("retrains"),
		retrainDirtyEdges:   reg.Counter("retrain_dirty_edges"),
		retrainFullCompiles: reg.Counter("retrain_full_compiles"),
		retrainErrors:       reg.Counter("retrain_errors"),
		retrainSeconds:      reg.Histogram("retrain_seconds", obs.LatencyBuckets),

		panicsRecovered:    reg.Counter("panics_recovered"),
		walAppends:         reg.Counter("wal_appends"),
		walAppendErrors:    reg.Counter("wal_append_errors"),
		walReplayed:        reg.Counter("wal_replayed_observations"),
		walReplaySkipped:   reg.Counter("wal_replay_skipped"),
		walTornTruncations: reg.Counter("wal_torn_truncations"),
		checkpointWrites:   reg.Counter("checkpoint_writes"),
		checkpointErrors:   reg.Counter("checkpoint_errors"),
		checkpointCorrupt:  reg.Counter("checkpoint_corrupt_skipped"),
		fixesMoLoc:         reg.Counter("fixes{mode=moloc}"),
		fixesFingerprint:   reg.Counter("fixes{mode=fingerprint}"),

		streamConns:   reg.Counter("stream_conns"),
		streamResumes: reg.Counter("stream_resumes"),
		streamFrames:  reg.Counter("stream_frames"),
		streamAcks:    reg.Counter("stream_acks"),
		streamErrors:  reg.Counter("stream_errors"),

		replConns:      reg.Counter("repl_conns"),
		replApplied:    reg.Counter("repl_applied_records"),
		replAppliedObs: reg.Counter("repl_applied_observations"),
		replSnapshots:  reg.Counter("repl_snapshots_installed"),
		promotions:     reg.Counter("promotions"),

		pacedSessions:      reg.Counter("paced_sessions"),
		pacedTicks:         reg.Counter("paced_ticks"),
		pacedSnapshotLoads: reg.Counter("paced_snapshot_loads"),
		pacedPushes:        reg.Counter("paced_fixes_pushed"),
		pacedPushErrors:    reg.Counter("paced_push_errors"),
		poolShed:           reg.Counter("pool_shed_total"),
		pacedFixSeconds:    reg.Histogram("paced_fix_seconds", obs.LatencyBuckets),
	}
}

// allocSamples recycles the runtime/metrics sample buffers used to
// measure per-tick heap allocation, so the measurement itself stays
// allocation-free.
var allocSamples = sync.Pool{
	New: func() interface{} {
		s := make([]metrics.Sample, 1)
		s[0].Name = "/gc/heap/allocs:bytes"
		return &s
	},
}

// heapAllocBytes reads the process's cumulative heap-allocation
// counter. Deltas around a code region approximate its allocation
// volume; concurrent goroutines add noise, which is acceptable for a
// histogram whose job is to catch the fast path regressing from the
// zero bucket.
func heapAllocBytes() uint64 {
	sp := allocSamples.Get().(*[]metrics.Sample)
	metrics.Read(*sp)
	v := (*sp)[0].Value.Uint64()
	allocSamples.Put(sp)
	return v
}

// request records one served request.
func (m *serverMetrics) request(route string, status int, d time.Duration) {
	m.reg.Counter(fmt.Sprintf("requests{route=%s,status=%d}", route, status)).Inc()
	m.reg.Histogram("latency_seconds{route="+route+"}", obs.LatencyBuckets).Observe(d.Seconds())
}

// statusWriter captures the response status for instrumentation, and
// whether anything was written — the panic-recovery middleware may only
// substitute a 500 while the response is still untouched.
type statusWriter struct {
	http.ResponseWriter
	status      int
	wroteHeader bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.wroteHeader = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	w.wroteHeader = true // implicit 200 on first write
	return w.ResponseWriter.Write(p)
}

// instrument wraps a handler with request counting, latency recording,
// and panic recovery: a panicking handler answers 500 (when the
// response is still unwritten) and bumps panics_recovered instead of
// tearing down the whole process — one malformed request must not take
// every session's serving path with it.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		defer func() {
			if rec := recover(); rec != nil {
				s.met.panicsRecovered.Inc()
				if !sw.wroteHeader {
					httpError(sw, http.StatusInternalServerError, "internal error")
				}
			}
			s.met.request(route, sw.status, time.Since(start))
		}()
		h(sw, r)
	}
}

// readBody reads the full body-capped request body into buf, reusing
// its capacity (//moloc:reuse) — the hot-ingest alternative to
// decodeJSON, whose per-request json.Decoder is most of that path's
// allocations. It answers 413 for oversized bodies and 400 for read
// failures, reporting whether the handler should proceed.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request, buf []byte) ([]byte, bool) {
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	if buf == nil {
		buf = make([]byte, 0, 4096)
	}
	buf = buf[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := body.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, true
		}
		if err != nil {
			var maxErr *http.MaxBytesError
			if errors.As(err, &maxErr) {
				httpError(w, http.StatusRequestEntityTooLarge,
					fmt.Sprintf("request body exceeds the %d-byte cap", maxErr.Limit))
			} else {
				httpError(w, http.StatusBadRequest, "read body: "+err.Error())
			}
			return buf, false
		}
	}
}

// decodeJSON decodes a body-capped JSON request into v, answering 413
// for oversized bodies and 400 for malformed JSON. It reports whether
// the handler should proceed.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds the %d-byte cap", maxErr.Limit))
			return false
		}
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// Encoding errors after the header is written can only be logged;
	// for these small payloads they do not occur in practice.
	//lint:ignore errdrop the status header is already written, so the error cannot change the response
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
