// Binary streaming ingest: the server side of internal/wire. A phone
// (or fleet pipeline) opens one persistent connection to the dedicated
// stream listener (molocd -stream-addr), hellos a resumable stream ID,
// and pipelines observation batches — each one appended to the WAL
// without its own fsync (wal.AppendNoSync) and acknowledged only after
// the group committer's covering fsync. The handler drains every frame
// already buffered on the connection before committing, so one fsync —
// and one ack frame — covers an entire burst; across connections the
// group committer amortizes further. Backpressure is credit-based: each
// ack advertises how many frames the server is willing to buffer,
// derived from the retrain queue's headroom, instead of the HTTP path's
// 429 shedding.
//
// Durability contract (same //moloc:durable invariant as the HTTP
// path): an acked frame's batch is in the WAL with a completed covering
// fsync under -fsync always, so kill -9 after an ack can never lose it.
// Within a live stream session frames are deduplicated by sequence
// number (exactly-once into the queue); after a server restart the
// stream registry is empty and the client resends its unacked tail
// (at-least-once into the database, never a loss).
package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"moloc/internal/fingerprint"
	"moloc/internal/motiondb"
	"moloc/internal/sensors"
	"moloc/internal/tracker"
	"moloc/internal/wire"
)

// streamConn serializes all writes on one stream connection. Two
// parties write to a bound connection — the connection's own frame loop
// (acks, tick replies, errors) and the tick wheel's fix pusher running
// on a pool worker (wheel.go) — and wire.Writer is not goroutine-safe,
// so every write goes through this wrapper and flushes under its lock
// (a frame never sits half-buffered where another writer could
// interleave with it).
type streamConn struct {
	mu sync.Mutex
	wr *wire.Writer
}

func newStreamConn(conn net.Conn) *streamConn {
	return &streamConn{wr: wire.NewWriter(conn)}
}

func (sc *streamConn) writeFrame(typ uint8, seq uint64, payload []byte) error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.wr.WriteFrame(typ, seq, payload)
	return sc.wr.Flush()
}

func (sc *streamConn) writeAck(seq uint64, window uint32) error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.wr.WriteAck(seq, window)
	return sc.wr.Flush()
}

func (sc *streamConn) writeError(seq uint64, msg string) error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.wr.WriteError(seq, msg)
	return sc.wr.Flush()
}

// streamSession is the server-side resume state of one stream ID: the
// highest frame sequence acknowledged durable, for dedup and the
// hello-ack resume point. It outlives connections (reconnects resume
// it) and is pruned by the session sweeper once idle.
type streamSession struct {
	id string

	mu         sync.Mutex
	lastAcked  uint64
	lastActive time.Time
	conns      int
}

func (st *streamSession) acked() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.lastAcked
}

func (st *streamSession) setAcked(seq uint64, now time.Time) {
	st.mu.Lock()
	if seq > st.lastAcked {
		st.lastAcked = seq
	}
	st.lastActive = now
	st.mu.Unlock()
}

// idle reports whether the stream has no live connection and has been
// inactive past ttl.
func (st *streamSession) idle(ttl time.Duration, now time.Time) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.conns == 0 && now.Sub(st.lastActive) >= ttl
}

// streamPlane is the streaming plane's registry: listeners and
// connections tracked for shutdown, plus the resumable per-stream ack
// state. It lives inside Server as a value with its own mutex so the
// serving path's s.mu never contends with accept/teardown traffic.
type streamPlane struct {
	mu       sync.Mutex
	closed   bool
	lns      map[net.Listener]struct{}
	conns    map[net.Conn]struct{}
	sessions map[string]*streamSession
	wg       sync.WaitGroup
}

func (sp *streamPlane) init() {
	sp.mu.Lock()
	sp.lns = make(map[net.Listener]struct{})
	sp.conns = make(map[net.Conn]struct{})
	sp.sessions = make(map[string]*streamSession)
	sp.mu.Unlock()
}

// sessionFor resolves (or creates) the stream session for id, attaching
// this connection. resumed reports whether the ID was already known —
// i.e. the client is reconnecting with resume.
func (sp *streamPlane) sessionFor(id string, now time.Time) (st *streamSession, resumed bool) {
	sp.mu.Lock()
	st, resumed = sp.sessions[id]
	if st == nil {
		st = &streamSession{id: id, lastActive: now}
		sp.sessions[id] = st
	}
	sp.mu.Unlock()
	st.mu.Lock()
	st.conns++
	st.lastActive = now
	st.mu.Unlock()
	return st, resumed
}

// release detaches a connection from its stream session.
func (sp *streamPlane) release(st *streamSession) {
	st.mu.Lock()
	st.conns--
	st.mu.Unlock()
}

// sweep drops stream sessions idle beyond ttl (their resume state is
// only worth keeping while a client might come back). Called from the
// server's sweepOnce.
func (sp *streamPlane) sweep(ttl time.Duration, now time.Time) int {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	pruned := 0
	for id, st := range sp.sessions {
		if st.idle(ttl, now) {
			delete(sp.sessions, id)
			pruned++
		}
	}
	return pruned
}

// register adds an accept listener, refusing when the plane is already
// shut down.
func (sp *streamPlane) register(ln net.Listener) bool {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.closed {
		return false
	}
	sp.lns[ln] = struct{}{}
	return true
}

func (sp *streamPlane) unregister(ln net.Listener) {
	sp.mu.Lock()
	delete(sp.lns, ln)
	sp.mu.Unlock()
}

// track admits one accepted connection into the shutdown set and
// reserves its handler in the waitgroup; false means the plane closed
// while the accept was in flight and the caller must drop the conn.
func (sp *streamPlane) track(conn net.Conn) bool {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.closed {
		return false
	}
	sp.conns[conn] = struct{}{}
	sp.wg.Add(1)
	return true
}

// done removes a finished connection from the shutdown set and retires
// its handler's waitgroup slot.
func (sp *streamPlane) done(conn net.Conn) {
	sp.mu.Lock()
	delete(sp.conns, conn)
	sp.mu.Unlock()
	sp.wg.Done()
}

// isClosed reports whether the plane has begun shutdown.
func (sp *streamPlane) isClosed() bool {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.closed
}

// closeAll tears down the streaming plane: stop accepting, close every
// live connection, and join the handlers.
func (sp *streamPlane) closeAll() {
	sp.mu.Lock()
	sp.closed = true
	for ln := range sp.lns {
		//lint:ignore errdrop the listener is being torn down; nothing can act on the error
		_ = ln.Close()
	}
	for conn := range sp.conns {
		//lint:ignore errdrop the handler sees the reset and exits; the close error is moot
		_ = conn.Close()
	}
	sp.mu.Unlock()
	sp.wg.Wait()
}

// streamWindow derives the credit window from the retrain queue's
// headroom: full batches the queue can still absorb, capped by
// Options.StreamWindow and floored at 1 so a loaded server slows
// clients down rather than wedging them (a stalled enqueue blocks in
// acceptStreamBatch, which is what the window is trying to prevent
// getting deep).
func (s *Server) streamWindow() uint32 {
	w := (s.opts.ObsQueueCap - s.retrain.pendingLen()) / s.opts.MaxObsBatch
	if w < 1 {
		w = 1
	}
	if w > s.opts.StreamWindow {
		w = s.opts.StreamWindow
	}
	return uint32(w)
}

// ServeStreams accepts stream connections on ln until the listener
// closes (Close closes every registered listener). It blocks like
// http.Serve; run it on its own goroutine.
func (s *Server) ServeStreams(ln net.Listener) error {
	if !s.stream.register(ln) {
		//lint:ignore errdrop refusing a post-shutdown listener; its close error changes nothing
		_ = ln.Close()
		return errors.New("server: shutting down")
	}
	defer s.stream.unregister(ln)
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.stream.isClosed() {
				return nil
			}
			return err
		}
		if !s.stream.track(conn) {
			//lint:ignore errdrop shutdown raced the accept; the conn is abandoned either way
			_ = conn.Close()
			return nil
		}
		go s.handleStreamConn(conn)
	}
}

// closeStreams tears down the streaming plane. Called by Close before
// the WAL is closed so no handler can append to a closed log.
func (s *Server) closeStreams() {
	s.stream.closeAll()
}

// handleStreamConn owns one connection: hello handshake, then the
// drain-and-commit frame loop.
func (s *Server) handleStreamConn(conn net.Conn) {
	defer s.stream.done(conn)
	defer conn.Close()
	s.met.streamConns.Inc()

	rd := wire.NewReader(conn, wire.DefaultMaxPayload)
	sc := newStreamConn(conn)

	fr, err := rd.ReadFrame()
	if err != nil {
		s.met.streamErrors.Inc()
		return
	}
	if fr.Type == wire.FrameReplHello {
		// A follower is attaching: hand the connection to the replication
		// service (replication.go) — same listener, different protocol.
		s.serveRepl(conn, rd, sc, fr)
		return
	}
	if fr.Type != wire.FrameHello {
		s.streamFail(sc, fr.Seq, "expected hello frame")
		return
	}
	streamID, sessionID, err := wire.DecodeHello(fr.Payload)
	if err != nil || streamID == "" {
		s.streamFail(sc, fr.Seq, "bad hello: missing stream id")
		return
	}
	var ss *session
	if sessionID != "" {
		ss, _ = s.reg.get(sessionID)
		if ss == nil {
			s.streamFail(sc, fr.Seq, "unknown session "+sessionID)
			return
		}
		// A paced session's server-driven fixes push to the stream that
		// scoped it (last hello wins); unbind on hangup so the wheel
		// stops writing into a dead connection.
		if ss.paced {
			ss.bindPush(sc)
			defer ss.unbindPush(sc)
		}
	}
	now := s.opts.Now()
	st, resumed := s.stream.sessionFor(streamID, now)
	defer s.stream.release(st)
	if resumed {
		s.met.streamResumes.Inc()
	}
	// The hello-ack's sequence is the resume point: the client drops
	// every pending frame at or below it and resends the rest.
	if err := sc.writeFrame(wire.FrameHelloAck, st.acked(), wire.AppendWindow(nil, s.streamWindow())); err != nil {
		s.met.streamErrors.Inc()
		return
	}
	if err := s.serveStreamFrames(rd, sc, st, ss); err != nil {
		s.met.streamErrors.Inc()
	}
}

// streamFail answers a protocol violation with an error frame and gives
// up on the connection.
func (s *Server) streamFail(sc *streamConn, seq uint64, msg string) {
	s.met.streamErrors.Inc()
	//lint:ignore errdrop the connection is being abandoned either way
	_ = sc.writeError(seq, msg)
}

// streamScratch is the per-connection reused decode state: observation,
// IMU, and scan slices frames decode into. One connection serves one
// frame at a time, so a single set suffices and steady-state frames
// allocate nothing.
//
type streamScratch struct {
	//moloc:reuse
	obs []motiondb.Observation
	//moloc:reuse
	imu []sensors.Sample
	//moloc:reuse
	rss []float64
}

// serveStreamFrames is the connection's frame loop, and the streaming
// twin of handleObservations' durability contract: acks are released
// (commitStreamAcks → wire.Writer.WriteAck) only after the batches they
// cover were appended to the WAL (acceptStreamBatch → wal.AppendNoSync)
// and the covering fsync completed (GroupCommitter.WaitDurable). The
// drain-then-commit shape — accept every fully buffered frame, then
// commit once — is what batches a burst under a single fsync.
//
//moloc:durable
func (s *Server) serveStreamFrames(rd *wire.Reader, sc *streamConn, st *streamSession, ss *session) error {
	var (
		scratch    streamScratch
		ackSeq     uint64 // highest frame sequence to acknowledge at the next commit
		ackWALSeq  uint64 // WAL sequence whose durability must cover that ack
		connExpect uint64 // next expected obs frame sequence on this connection
	)
	for {
		fr, err := rd.ReadFrame()
		if err != nil {
			// EOF and reset are how clients hang up; only mid-frame
			// garbage is a protocol error, and either way the connection
			// is done. Unacked-but-appended batches are not lost: they
			// replay from the WAL, and the client resends them on resume
			// (dedup via st.lastAcked).
			return nil
		}
		s.met.streamFrames.Inc()
		switch fr.Type {
		case wire.FrameObsBatch:
			// Same write fence as the HTTP 409: a replica's WAL only ever
			// holds what the leader shipped.
			if s.role.Load() == roleFollower {
				err := errors.New("read replica: send observation frames to the leader at " + s.opts.FollowAddr)
				s.streamFail(sc, fr.Seq, err.Error())
				return err
			}
			accepted, err := s.acceptStreamBatch(st, fr, &scratch, &connExpect)
			if err != nil {
				s.streamFail(sc, fr.Seq, err.Error())
				return err
			}
			if accepted > ackWALSeq {
				ackWALSeq = accepted
			}
			if fr.Seq > ackSeq {
				ackSeq = fr.Seq
			}
			if dup := st.acked(); ackSeq < dup {
				ackSeq = dup // duplicate of an acked frame: re-ack
			}
		case wire.FrameIMUBatch:
			if err := s.streamIMU(ss, fr, &scratch); err != nil {
				s.streamFail(sc, fr.Seq, err.Error())
				return err
			}
		case wire.FrameScan:
			if err := s.streamScan(ss, fr, &scratch); err != nil {
				s.streamFail(sc, fr.Seq, err.Error())
				return err
			}
		case wire.FrameTick:
			if err := s.streamTick(ss, sc, fr); err != nil {
				s.streamFail(sc, fr.Seq, err.Error())
				return err
			}
		default:
			err := fmt.Errorf("unexpected frame type %d", fr.Type)
			s.streamFail(sc, fr.Seq, err.Error())
			return err
		}
		// Drain-then-commit: only when no complete frame is already
		// buffered does the covering fsync run and the cumulative ack go
		// out — one ack (and at most one fsync wait) per burst.
		if ackSeq > 0 && !rd.FrameBuffered() {
			if err := s.commitStreamAcks(sc, st, ackSeq, ackWALSeq); err != nil {
				return err
			}
			ackSeq, ackWALSeq = 0, 0
		}
	}
}

// acceptStreamBatch decodes, validates, and durably enqueues one
// observation-batch frame. The frame's payload bytes become the WAL
// record payload unchanged (no re-encode); the append itself skips the
// fsync (wal.AppendNoSync), which commitStreamAcks waits on. Returns
// the WAL sequence to cover (0 for duplicates or with durability off).
// Invalid observations inside a batch are dropped and counted, same as
// WAL replay — a poison observation must not wedge the stream's resend
// loop. A full queue blocks here (backpressure), shedding only at
// server shutdown.
func (s *Server) acceptStreamBatch(st *streamSession, fr wire.Frame, scratch *streamScratch, connExpect *uint64) (uint64, error) {
	if fr.Seq <= st.acked() {
		return 0, nil // duplicate of an acknowledged frame; caller re-acks
	}
	if *connExpect != 0 && fr.Seq != *connExpect {
		return 0, fmt.Errorf("frame sequence gap: got %d, expected %d", fr.Seq, *connExpect)
	}
	obs, err := wire.DecodeObservations(fr.Payload, scratch.obs)
	if err != nil {
		return 0, fmt.Errorf("observation batch %d: %w", fr.Seq, err)
	}
	scratch.obs = obs
	if len(obs) > s.opts.MaxObsBatch {
		return 0, fmt.Errorf("batch of %d observations exceeds the %d cap", len(obs), s.opts.MaxObsBatch)
	}
	numLocs := s.plan.NumLocs()
	valid := obs[:0]
	droppedHere := 0
	for _, o := range obs {
		if validateObservation(o, numLocs) != nil {
			droppedHere++
			continue
		}
		valid = append(valid, o)
	}
	if droppedHere > 0 {
		s.met.observationsDropped.Add(int64(droppedHere))
	}
	for {
		seq, ok, err := s.retrain.enqueueStream(s.store, fr.Payload, valid)
		if err != nil {
			s.met.walAppendErrors.Inc()
			s.setState(stateDegraded)
			return 0, fmt.Errorf("observation log unavailable: %w", err)
		}
		if ok {
			*connExpect = fr.Seq + 1
			if s.store != nil {
				s.met.walAppends.Inc()
			}
			s.met.observationsIn.Add(int64(len(valid)))
			return seq, nil
		}
		// Queue full: hold the frame (credit already throttles the
		// client; this is the backstop) until a retrain drains it or the
		// server shuts down.
		if s.waitDone(2 * time.Millisecond) {
			return 0, errors.New("server shutting down")
		}
	}
}

// commitStreamAcks waits for the covering fsync and releases the
// cumulative ack. Per the //moloc:durable contract this is the only
// place stream acks are written, and it runs strictly after the
// covered appends (lexically and dynamically).
func (s *Server) commitStreamAcks(sc *streamConn, st *streamSession, ackSeq, ackWALSeq uint64) error {
	if s.group != nil && ackWALSeq > 0 {
		if err := s.group.WaitDurable(ackWALSeq); err != nil {
			// The covering fsync failed: the frames must not be acked.
			// Degrade exactly as the HTTP path does on an append error.
			s.met.walAppendErrors.Inc()
			s.setState(stateDegraded)
			return err
		}
	}
	now := s.opts.Now()
	st.setAcked(ackSeq, now)
	s.met.streamAcks.Inc()
	return sc.writeAck(ackSeq, s.streamWindow())
}

// streamIMU feeds an IMU-batch frame to the scoped tracking session via
// the sharded worker pool (same queueing discipline as the HTTP path).
func (s *Server) streamIMU(ss *session, fr wire.Frame, scratch *streamScratch) error {
	if ss == nil {
		return errors.New("imu frame on a stream with no tracking session")
	}
	samples, err := wire.DecodeIMU(fr.Payload, scratch.imu)
	if err != nil {
		return fmt.Errorf("imu frame %d: %w", fr.Seq, err)
	}
	scratch.imu = samples
	if len(samples) > s.opts.MaxIMUBatch {
		return fmt.Errorf("imu batch of %d samples exceeds the %d-sample cap", len(samples), s.opts.MaxIMUBatch)
	}
	return s.runStreamSharded(ss, func(tk *tracker.Tracker) {
		for _, smp := range samples {
			tk.AddIMU(smp)
		}
	})
}

// streamScan feeds one scan frame to the scoped tracking session.
func (s *Server) streamScan(ss *session, fr wire.Frame, scratch *streamScratch) error {
	if ss == nil {
		return errors.New("scan frame on a stream with no tracking session")
	}
	t, rss, err := wire.DecodeScan(fr.Payload, scratch.rss)
	if err != nil {
		return fmt.Errorf("scan frame %d: %w", fr.Seq, err)
	}
	scratch.rss = rss
	if len(rss) != s.numAPs {
		return fmt.Errorf("scan has %d APs, deployment has %d", len(rss), s.numAPs)
	}
	return s.runStreamSharded(ss, func(tk *tracker.Tracker) {
		tk.AddScan(t, fingerprint.Fingerprint(rss))
	})
}

// streamTick advances the scoped session and answers FrameFix or
// FrameNoFix with the tick frame's sequence.
func (s *Server) streamTick(ss *session, sc *streamConn, fr wire.Frame) error {
	if ss == nil {
		return errors.New("tick frame on a stream with no tracking session")
	}
	t, err := wire.DecodeTick(fr.Payload)
	if err != nil {
		return err
	}
	var (
		fix    tracker.Fix
		gotFix bool
	)
	fpOnly := s.fingerprintOnly()
	if err := s.runStreamSharded(ss, func(tk *tracker.Tracker) {
		tk.SetFingerprintOnly(fpOnly)
		fix, gotFix = tk.Tick(t)
	}); err != nil {
		return err
	}
	if !gotFix {
		return sc.writeFrame(wire.FrameNoFix, fr.Seq, nil)
	}
	if fix.Mode == tracker.ModeFingerprint {
		s.met.fixesFingerprint.Inc()
	} else {
		s.met.fixesMoLoc.Inc()
	}
	return sc.writeFrame(wire.FrameFix, fr.Seq, wire.AppendFix(nil, fix.T, fix.Loc, fix.Moved))
}

// runStreamSharded is runSharded for the streaming plane: same worker
// pool, same panic recovery, error return instead of HTTP status.
func (s *Server) runStreamSharded(ss *session, fn func(tk *tracker.Tracker)) error {
	now := s.opts.Now()
	alive := false
	panicked := true
	if !s.pool.run(ss.id, func() {
		defer func() {
			if !panicked {
				return
			}
			if rec := recover(); rec != nil {
				s.met.panicsRecovered.Inc()
			}
		}()
		alive = ss.withTracker(now, fn)
		panicked = false
	}) {
		return errors.New("server shutting down")
	}
	if panicked {
		return errors.New("internal error")
	}
	if !alive {
		return errors.New("session expired")
	}
	return nil
}
