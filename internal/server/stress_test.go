package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"moloc/internal/sensors"
	"moloc/internal/stats"
)

// TestSessionStress hammers one Server from many goroutines with
// interleaved create / imu / scan / tick / get / delete operations on a
// *shared* pool of sessions, so the race build (`make race`) exercises
// the server map lock and the per-session locks against each other —
// in particular tick-vs-delete and tick-vs-tick on the same session,
// which the per-client concurrency test never produces.
//
// Requests go straight through ServeHTTP (no TCP) to maximize
// interleavings per second.
func TestSessionStress(t *testing.T) {
	srv, _ := testServer(t)
	handler := srv.Handler()

	const (
		workers = 12
		iters   = 120
	)

	// pool is the shared session-id pool; workers add, use, and delete
	// ids concurrently.
	var (
		poolMu sync.Mutex
		pool   []string
	)
	pickSession := func(rng *stats.RNG) string {
		poolMu.Lock()
		defer poolMu.Unlock()
		if len(pool) == 0 {
			return ""
		}
		return pool[rng.Intn(len(pool))]
	}
	removeSession := func(rng *stats.RNG) string {
		poolMu.Lock()
		defer poolMu.Unlock()
		if len(pool) == 0 {
			return ""
		}
		i := rng.Intn(len(pool))
		id := pool[i]
		pool[i] = pool[len(pool)-1]
		pool = pool[:len(pool)-1]
		return id
	}

	do := func(method, path string, body interface{}) *httptest.ResponseRecorder {
		var rd *bytes.Reader
		if body != nil {
			data, err := json.Marshal(body)
			if err != nil {
				t.Error(err)
				return nil
			}
			rd = bytes.NewReader(data)
		} else {
			rd = bytes.NewReader(nil)
		}
		req := httptest.NewRequest(method, path, rd)
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		return rec
	}

	// Seed the pool so deletes race with traffic from the start.
	for i := 0; i < workers; i++ {
		rec := do(http.MethodPost, "/v1/sessions", createReq{HeightM: 1.7, WeightKg: 70})
		if rec == nil || rec.Code != http.StatusCreated {
			t.Fatalf("seed create failed: %v", rec)
		}
		var out createResp
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatal(err)
		}
		pool = append(pool, out.SessionID)
	}

	rss := make([]float64, srv.numAPs)
	for i := range rss {
		rss[i] = -60
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := stats.NewRNG(int64(1000 + g))
			for i := 0; i < iters; i++ {
				// Sessions may vanish underneath us; 404 is expected,
				// anything 5xx (or a tracker panic) is a bug.
				check := func(rec *httptest.ResponseRecorder, op string) bool {
					if rec == nil {
						return false
					}
					if rec.Code >= 500 {
						errs <- fmt.Errorf("worker %d op %s: status %d body %s",
							g, op, rec.Code, rec.Body.String())
						return false
					}
					return true
				}
				tSec := float64(i) * 0.3
				switch op := rng.Intn(10); {
				case op == 0: // create and share a new session
					rec := do(http.MethodPost, "/v1/sessions", createReq{HeightM: 1.6, WeightKg: 60})
					if !check(rec, "create") {
						return
					}
					if rec.Code == http.StatusCreated {
						var out createResp
						if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
							errs <- err
							return
						}
						poolMu.Lock()
						pool = append(pool, out.SessionID)
						poolMu.Unlock()
					}
				case op == 1: // delete a shared session mid-traffic
					if id := removeSession(rng); id != "" {
						if !check(do(http.MethodDelete, "/v1/sessions/"+id, nil), "delete") {
							return
						}
					}
				case op <= 4: // stream IMU samples
					if id := pickSession(rng); id != "" {
						smp := sensors.Sample{T: tSec, Accel: 9.8 + rng.Norm(0, 1), Compass: rng.Uniform(0, 360)}
						if !check(do(http.MethodPost, "/v1/sessions/"+id+"/imu",
							imuReq{Samples: []sensors.Sample{smp}}), "imu") {
							return
						}
					}
				case op <= 6: // post a scan
					if id := pickSession(rng); id != "" {
						if !check(do(http.MethodPost, "/v1/sessions/"+id+"/scan",
							scanReq{T: tSec, RSS: rss}), "scan") {
							return
						}
					}
				case op <= 8: // advance time; fixes may or may not emerge
					if id := pickSession(rng); id != "" {
						if !check(do(http.MethodPost, "/v1/sessions/"+id+"/tick",
							tickReq{T: tSec}), "tick") {
							return
						}
					}
				default: // read the last fix and the health page
					if id := pickSession(rng); id != "" {
						if !check(do(http.MethodGet, "/v1/sessions/"+id, nil), "get") {
							return
						}
					}
					if !check(do(http.MethodGet, "/v1/healthz", nil), "health") {
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The surviving pool and the server must agree once traffic stops.
	poolMu.Lock()
	want := len(pool)
	poolMu.Unlock()
	if got := srv.NumSessions(); got != want {
		t.Errorf("server reports %d sessions, pool holds %d", got, want)
	}
}

// TestServerSweeperStress races the TTL sweeper against concurrent
// create/tick/delete traffic on shared sessions: with an aggressive
// sub-millisecond TTL, every handler can observe a session evicted
// between lookup and use. Run under `make race`, this exercises the
// two-phase eviction (mark under the session lock, then unmap) —
// expired sessions must turn into clean 404s, never 5xx or races.
func TestServerSweeperStress(t *testing.T) {
	srv, _ := testServer(t)
	srv.opts = Options{
		SessionTTL:    500 * time.Microsecond,
		SweepInterval: 200 * time.Microsecond,
	}.withDefaults()
	srv.Start()
	defer srv.Close()
	handler := srv.Handler()

	const (
		workers = 8
		iters   = 150
	)
	var (
		poolMu sync.Mutex
		pool   []string
	)
	do := func(method, path string, body interface{}) *httptest.ResponseRecorder {
		data, err := json.Marshal(body)
		if err != nil {
			t.Error(err)
			return nil
		}
		req := httptest.NewRequest(method, path, bytes.NewReader(data))
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		return rec
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := stats.NewRNG(int64(9000 + g))
			for i := 0; i < iters; i++ {
				var rec *httptest.ResponseRecorder
				switch rng.Intn(4) {
				case 0:
					rec = do(http.MethodPost, "/v1/sessions", createReq{HeightM: 1.7, WeightKg: 70})
					if rec != nil && rec.Code == http.StatusCreated {
						var out createResp
						if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
							errs <- err
							return
						}
						poolMu.Lock()
						pool = append(pool, out.SessionID)
						poolMu.Unlock()
					}
				case 1:
					poolMu.Lock()
					var id string
					if len(pool) > 0 {
						id = pool[rng.Intn(len(pool))]
					}
					poolMu.Unlock()
					if id != "" {
						rec = do(http.MethodDelete, "/v1/sessions/"+id, nil)
					}
				default:
					poolMu.Lock()
					var id string
					if len(pool) > 0 {
						id = pool[rng.Intn(len(pool))]
					}
					poolMu.Unlock()
					if id != "" {
						rec = do(http.MethodPost, "/v1/sessions/"+id+"/tick",
							tickReq{T: float64(i) * 0.5})
					}
				}
				// Sessions evaporate underneath every operation: 404 (and
				// 429 at the cap) are expected; 5xx or a panic is the bug.
				if rec != nil && rec.Code >= 500 {
					errs <- fmt.Errorf("worker %d iter %d: status %d body %s",
						g, i, rec.Code, rec.Body.String())
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Everything idles out eventually; metrics saw the evictions.
	deadline := time.Now().Add(5 * time.Second)
	for srv.NumSessions() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := srv.NumSessions(); n != 0 {
		t.Errorf("%d sessions survived the sweeper", n)
	}
	snap := srv.Metrics().Snapshot()
	if snap.Counters["sessions_expired"] == 0 {
		t.Error("sweeper stress produced no expirations")
	}
}
