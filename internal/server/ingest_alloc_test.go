// Allocation budget of the JSON ingest path: the pooled body/decode/
// payload scratch must hold POST /v1/observations to a handful of
// allocations per batch — the pre-pool handler cost ~189 allocs per
// request, one per observation plus decoder state.
package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"testing"
)

// discardRW is a no-op ResponseWriter so the measurement sees the
// handler's allocations, not a recorder's.
type discardRW struct {
	h      http.Header
	status int
}

func (w *discardRW) Header() http.Header         { return w.h }
func (w *discardRW) Write(p []byte) (int, error) { return len(p), nil }
func (w *discardRW) WriteHeader(c int)           { w.status = c }

func ingestAllocs(t *testing.T, srv *Server) float64 {
	t.Helper()
	pair := firstPair(t, srv.mdb)
	batch := obsNear(srv.plan, pair[0], pair[1], 32)
	data, err := json.Marshal(obsReq{Observations: batch})
	if err != nil {
		t.Fatal(err)
	}
	var rdr bytes.Reader
	u, _ := url.Parse("/v1/observations")
	req := &http.Request{Method: http.MethodPost, URL: u, Proto: "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1}
	w := &discardRW{h: make(http.Header)}
	post := func() {
		rdr.Reset(data)
		req.Body = io.NopCloser(&rdr)
		w.status = 0
		srv.handleObservations(w, req)
		if w.status != http.StatusAccepted {
			t.Fatalf("ingest: status %d", w.status)
		}
		// Keep the queue from filling across thousands of runs.
		srv.retrain.mu.Lock()
		srv.retrain.pending = srv.retrain.pending[:0]
		srv.retrain.mu.Unlock()
	}
	for i := 0; i < 16; i++ {
		post() // warm the scratch pool
	}
	return testing.AllocsPerRun(200, post)
}

func TestIngestAllocBudget(t *testing.T) {
	sys := buildSys(t)
	srv := durableServer(t, sys, Options{})
	defer srv.Close()
	if allocs := ingestAllocs(t, srv); allocs > 50 {
		t.Errorf("JSON ingest = %.1f allocs/op, want well under 50", allocs)
	} else {
		t.Logf("JSON ingest (in-memory): %.1f allocs/op", allocs)
	}
}

func TestIngestAllocBudgetDurable(t *testing.T) {
	sys := buildSys(t)
	srv := durableServer(t, sys, Options{DataDir: t.TempDir()})
	defer srv.Close()
	if allocs := ingestAllocs(t, srv); allocs > 50 {
		t.Errorf("JSON ingest (durable) = %.1f allocs/op, want well under 50", allocs)
	} else {
		t.Logf("JSON ingest (durable): %.1f allocs/op", allocs)
	}
}
