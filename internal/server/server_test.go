package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"moloc/internal/core"
	"moloc/internal/fingerprint"
	"moloc/internal/motion"
	"moloc/internal/motiondb"
	"moloc/internal/sensors"
	"moloc/internal/stats"
	"moloc/internal/trace"
)

// newTestServer builds a server over a small office-hall deployment.
func newTestServer() (*Server, *core.System, error) {
	cfg := core.NewConfig()
	cfg.NumTrainTraces = 50
	cfg.NumTestTraces = 2
	cfg.Trace.NumLegs = 10
	sys, err := core.Build(cfg)
	if err != nil {
		return nil, nil, err
	}
	fdb, err := sys.Survey.BuildDB(fingerprint.Euclidean{}, sys.Model.NumAPs())
	if err != nil {
		return nil, nil, err
	}
	srv, err := New(sys.Plan, fdb, sys.Model.NumAPs(), sys.MDB, sys.Config.Motion)
	if err != nil {
		return nil, nil, err
	}
	return srv, sys, nil
}

// testServer is the testing.T-flavored wrapper around newTestServer.
func testServer(t *testing.T) (*Server, *core.System) {
	t.Helper()
	srv, sys, err := newTestServer()
	if err != nil {
		t.Fatal(err)
	}
	return srv, sys
}

func postJSON(t *testing.T, ts *httptest.Server, path string, body interface{}) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func createSession(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, body := postJSON(t, ts, "/v1/sessions", createReq{HeightM: 1.71, WeightKg: 68})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d body %s", resp.StatusCode, body)
	}
	var out createResp
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.SessionID == "" {
		t.Fatal("empty session id")
	}
	if out.TTLSec <= 0 || out.Expires.IsZero() {
		t.Errorf("create response missing lifecycle fields: %+v", out)
	}
	return out.SessionID
}

func TestNewValidation(t *testing.T) {
	_, sys := testServer(t)
	fdb, _ := sys.Survey.BuildDB(fingerprint.Euclidean{}, 6)
	if _, err := New(sys.Plan, fdb, 0, sys.MDB, sys.Config.Motion); err == nil {
		t.Error("numAPs 0 should be rejected")
	}
	if _, err := New(sys.Plan, fdb, 6, motiondb.New(3), sys.Config.Motion); err == nil {
		t.Error("size mismatch should be rejected")
	}
	if _, err := New(sys.Plan, fdb, 6, sys.MDB, motion.Config{}); err == nil {
		t.Error("invalid motion config should be rejected")
	}
}

func TestHealth(t *testing.T) {
	srv, _ := testServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("health: %d", resp.StatusCode)
	}
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["plan"] != "office-hall" || out["locations"].(float64) != 28 {
		t.Errorf("health payload: %v", out)
	}
}

func TestSessionLifecycle(t *testing.T) {
	srv, _ := testServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	id := createSession(t, ts)
	if srv.NumSessions() != 1 {
		t.Errorf("sessions = %d", srv.NumSessions())
	}

	// No fix yet: the session view reports lifecycle state, null fix.
	resp, err := http.Get(ts.URL + "/v1/sessions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Errorf("session view before data: %d", resp.StatusCode)
	}
	var view sessionResp
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if view.Fix != nil {
		t.Errorf("fix before data: %+v", view.Fix)
	}
	if view.SessionID != id || view.Expires.Before(view.LastActive) {
		t.Errorf("lifecycle fields: %+v", view)
	}

	// Delete.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+id, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("delete: %d", resp.StatusCode)
	}
	if srv.NumSessions() != 0 {
		t.Errorf("sessions after delete = %d", srv.NumSessions())
	}
}

func TestBadRequests(t *testing.T) {
	srv, _ := testServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Bad profile.
	resp, _ := postJSON(t, ts, "/v1/sessions", createReq{HeightM: 0.2, WeightKg: 68})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad profile: %d", resp.StatusCode)
	}
	// Wrong method on /v1/sessions.
	getResp, err := http.Get(ts.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET sessions: %d", getResp.StatusCode)
	}
	// Unknown session.
	resp, _ = postJSON(t, ts, "/v1/sessions/nope/imu", imuReq{})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown session: %d", resp.StatusCode)
	}
	// Scan with wrong AP count.
	id := createSession(t, ts)
	resp, body := postJSON(t, ts, "/v1/sessions/"+id+"/scan", scanReq{T: 1, RSS: []float64{-50}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("short scan: %d %s", resp.StatusCode, body)
	}
	// Malformed JSON.
	raw, err := http.Post(ts.URL+"/v1/sessions/"+id+"/imu", "application/json",
		bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	raw.Body.Close()
	if raw.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: %d", raw.StatusCode)
	}
	// Unknown endpoint under a session.
	resp, _ = postJSON(t, ts, "/v1/sessions/"+id+"/frobnicate", tickReq{})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown endpoint: %d", resp.StatusCode)
	}
}

// TestEndToEndHTTPTracking drives a real walk through the HTTP API and
// checks that fixes arrive and are sane.
func TestEndToEndHTTPTracking(t *testing.T) {
	srv, sys := testServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	id := createSession(t, ts)

	// Generate a short walk and stream it.
	tcfg := trace.NewConfig()
	tcfg.NumLegs = 8
	tcfg.PauseProb = 0
	sg, err := sensors.NewGenerator(sys.Config.Sensors)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := trace.NewGenerator(sys.Plan, sys.Graph, sg, sys.Config.Motion, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	walk := tg.Generate(trace.DefaultUsers()[1], stats.NewRNG(42))
	scanRNG := stats.NewRNG(43)

	fixes := 0
	nextScan := 0.0
	for _, leg := range walk.Legs {
		// Stream the leg's IMU batch.
		resp, _ := postJSON(t, ts, "/v1/sessions/"+id+"/imu", imuReq{Samples: leg.Samples})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("imu: %d", resp.StatusCode)
		}
		for _, s := range leg.Samples {
			if s.T >= nextScan {
				// The user is physically near leg.To at leg end; use the
				// leg's destination position for the scan.
				pos := sys.Plan.LocPos(leg.From).Lerp(sys.Plan.LocPos(leg.To),
					(s.T-leg.T0)/(leg.T1-leg.T0))
				rss := sys.Model.Sample(pos, scanRNG)
				resp, _ := postJSON(t, ts, "/v1/sessions/"+id+"/scan", scanReq{T: s.T, RSS: rss})
				if resp.StatusCode != http.StatusAccepted {
					t.Fatalf("scan: %d", resp.StatusCode)
				}
				nextScan = s.T + 0.5
			}
		}
		resp, body := postJSON(t, ts, "/v1/sessions/"+id+"/tick", tickReq{T: leg.T1})
		switch resp.StatusCode {
		case http.StatusOK:
			var fix fixResp
			if err := json.Unmarshal(body, &fix); err != nil {
				t.Fatalf("fix JSON: %v", err)
			}
			if fix.Loc < 1 || fix.Loc > 28 {
				t.Fatalf("fix out of range: %+v", fix)
			}
			if fix.X < 0 || fix.X > sys.Plan.Width || fix.Y < 0 || fix.Y > sys.Plan.Height {
				t.Fatalf("fix position out of bounds: %+v", fix)
			}
			fixes++
		case http.StatusNoContent:
			// interval not finished; fine
		default:
			t.Fatalf("tick: %d %s", resp.StatusCode, body)
		}
	}
	if fixes < 3 {
		t.Errorf("only %d fixes over %d legs", fixes, len(walk.Legs))
	}
	// The last fix is retrievable.
	resp, err := http.Get(ts.URL + "/v1/sessions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("last fix: %d", resp.StatusCode)
	}
}

// TestConcurrentSessions exercises the server's locking with parallel
// clients.
func TestConcurrentSessions(t *testing.T) {
	srv, sys := testServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			data, _ := json.Marshal(createReq{HeightM: 1.7, WeightKg: 70})
			resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(data))
			if err != nil {
				errs <- err
				return
			}
			var out createResp
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				resp.Body.Close()
				errs <- err
				return
			}
			resp.Body.Close()
			id := out.SessionID
			rng := stats.NewRNG(int64(c))
			for i := 0; i < 20; i++ {
				smp := sensors.Sample{T: float64(i) * 0.1, Accel: 9.8 + rng.Norm(0, 1)}
				body, _ := json.Marshal(imuReq{Samples: []sensors.Sample{smp}})
				resp, err := http.Post(ts.URL+"/v1/sessions/"+id+"/imu",
					"application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
			}
			rss := sys.Model.Sample(sys.Plan.LocPos(1+rng.Intn(28)), rng)
			body, _ := json.Marshal(scanReq{T: 1, RSS: rss})
			resp, err = http.Post(ts.URL+"/v1/sessions/"+id+"/scan",
				"application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			body, _ = json.Marshal(tickReq{T: 10})
			resp, err = http.Post(ts.URL+"/v1/sessions/"+id+"/tick",
				"application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("client %d: tick status %d", c, resp.StatusCode)
			}
			resp.Body.Close()
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if srv.NumSessions() != clients {
		t.Errorf("sessions = %d, want %d", srv.NumSessions(), clients)
	}
}
