package server

import (
	"testing"
	"time"
)

func TestWheelSlotIndex(t *testing.T) {
	w := newTickWheel(8, time.Second, 1)
	for _, sn := range []int64{-17, -1, 0, 7, 8, 63} {
		i := w.slotIndex(sn)
		if i < 0 || i >= 8 {
			t.Errorf("slotIndex(%d) = %d, out of [0,8)", sn, i)
		}
	}
	if w.slotIndex(9) != w.slotIndex(1) {
		t.Error("slot numbers one rotation apart must share a bucket")
	}
	// Fake clocks before the epoch produce negative slot numbers; the
	// index must still be a valid bucket, not a panic or -1.
	if got := w.slotIndex(-1); got != 7 {
		t.Errorf("slotIndex(-1) = %d, want 7", got)
	}
}

func TestWheelCollectDuePartition(t *testing.T) {
	w := newTickWheel(8, time.Second, 1)
	base := time.Unix(1000, 0)
	early := &pacedEntry{due: base.Add(1 * time.Second)}
	late := &pacedEntry{due: base.Add(9 * time.Second)} // same bucket, next rotation
	if w.slotIndex(early.due.UnixNano()/int64(time.Second)) !=
		w.slotIndex(late.due.UnixNano()/int64(time.Second)) {
		t.Fatal("test geometry broken: entries must share a bucket")
	}
	w.schedule(early)
	w.schedule(late)
	idx := w.slotIndex(early.due.UnixNano() / int64(time.Second))

	// At base+2s only the early entry is due; the overflow entry stays
	// for a later rotation. This is the hashed wheel's horizon rule:
	// slot position says when to look, the due check says when to fire.
	due := w.collectDue(idx, base.Add(2*time.Second), nil)
	if len(due) != 1 || due[0] != early {
		t.Fatalf("collectDue at +2s = %v entries, want just the early one", len(due))
	}
	if len(w.slots[idx].entries) != 1 || w.slots[idx].entries[0] != late {
		t.Fatal("overflow entry evicted from its slot before its deadline")
	}
	// The compacted tail must not retain collected entries.
	if tail := w.slots[idx].entries[:2][1]; tail != nil {
		t.Error("collected entry still referenced by the slot's backing array")
	}
	due = w.collectDue(idx, base.Add(10*time.Second), due[:0])
	if len(due) != 1 || due[0] != late {
		t.Fatal("overflow entry did not fire once its rotation arrived")
	}
}

func TestWheelElapsedRange(t *testing.T) {
	w := newTickWheel(8, time.Second, 1)
	base := time.Unix(2000, 0)

	from, to, ok := w.elapsedRange(base)
	if !ok || from != to || from != base.Unix() {
		t.Fatalf("first elapsedRange = (%d, %d, %v), want exactly the current slot", from, to, ok)
	}
	if _, _, ok := w.elapsedRange(base); ok {
		t.Fatal("same instant claimed twice")
	}
	if _, _, ok := w.elapsedRange(base.Add(-5 * time.Second)); ok {
		t.Fatal("time going backwards claimed a slot range")
	}
	from, to, ok = w.elapsedRange(base.Add(3 * time.Second))
	if !ok || from != base.Unix()+1 || to != base.Unix()+3 {
		t.Fatalf("range after +3s = (%d, %d, %v)", from, to, ok)
	}
	// A long stall claims at most one full rotation: older slots would
	// be rescans of buckets the due check already clears on first visit.
	from, to, ok = w.elapsedRange(base.Add(100 * time.Second))
	if !ok || to-from != 7 || to != base.Unix()+100 {
		t.Fatalf("post-stall range = (%d, %d, %v), want one rotation ending now", from, to, ok)
	}
}

func TestWheelAddTracksSize(t *testing.T) {
	w := newTickWheel(8, time.Second, 2)
	now := time.Unix(3000, 0)
	w.add(nil, 3*time.Second, 0, now)
	w.add(nil, 0, 1, now) // non-positive interval coerced to a slot
	if got := w.scheduled(); got != 2 {
		t.Fatalf("scheduled = %d, want 2", got)
	}
	w.drop()
	if got := w.scheduled(); got != 1 {
		t.Fatalf("scheduled = %d after drop, want 1", got)
	}
}

// BenchmarkTickWheelRaw measures the wheel's own bookkeeping (schedule
// + collect, no sessions, no workers): the fixed cost the wheel adds
// per paced session per fire.
func BenchmarkTickWheelRaw(b *testing.B) {
	w := newTickWheel(64, 250*time.Millisecond, 4)
	base := time.Unix(5000, 0)
	const n = 1024
	for i := 0; i < n; i++ {
		w.add(nil, 3*time.Second, i%4, base)
	}
	var due []*pacedEntry
	now := base
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = now.Add(250 * time.Millisecond)
		from, to, ok := w.elapsedRange(now)
		if !ok {
			continue
		}
		for sn := from; sn <= to; sn++ {
			due = w.collectDue(w.slotIndex(sn), now, due[:0])
			for _, e := range due {
				e.due = e.due.Add(e.interval)
				if !e.due.After(now) {
					e.due = now.Add(e.interval)
				}
				w.schedule(e)
			}
		}
	}
}
