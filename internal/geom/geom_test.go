package geom

import (
	"math"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPointDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Pt(1, 2), Pt(1, 2), 0},
		{"unit x", Pt(0, 0), Pt(1, 0), 1},
		{"unit y", Pt(0, 0), Pt(0, 1), 1},
		{"3-4-5", Pt(0, 0), Pt(3, 4), 5},
		{"negative coords", Pt(-1, -1), Pt(2, 3), 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Dist(tt.q); !almostEqual(got, tt.want, eps) {
				t.Errorf("Dist(%v, %v) = %v, want %v", tt.p, tt.q, got, tt.want)
			}
		})
	}
}

func TestBearingTo(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"north", Pt(0, 0), Pt(0, 1), 0},
		{"east", Pt(0, 0), Pt(1, 0), 90},
		{"south", Pt(0, 0), Pt(0, -1), 180},
		{"west", Pt(0, 0), Pt(-1, 0), 270},
		{"northeast", Pt(0, 0), Pt(1, 1), 45},
		{"southwest", Pt(0, 0), Pt(-1, -1), 225},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.BearingTo(tt.q); !almostEqual(got, tt.want, eps) {
				t.Errorf("BearingTo(%v, %v) = %v, want %v", tt.p, tt.q, got, tt.want)
			}
		})
	}
}

func TestFromBearingRoundTrip(t *testing.T) {
	// Walking from p along the bearing to q by the distance between them
	// must land on q.
	f := func(px, py, qx, qy float64) bool {
		p := Pt(math.Mod(px, 100), math.Mod(py, 100))
		q := Pt(math.Mod(qx, 100), math.Mod(qy, 100))
		if p.Dist(q) < 1e-6 {
			return true
		}
		got := p.Add(FromBearing(p.BearingTo(q), p.Dist(q)))
		return got.Dist(q) < 1e-6*(1+p.Dist(q))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVecBearing(t *testing.T) {
	if got := (Vec{DX: 0, DY: 0}).Bearing(); got != 0 {
		t.Errorf("zero vector bearing = %v, want 0", got)
	}
	if got := (Vec{DX: 1, DY: 1}).Bearing(); !almostEqual(got, 45, eps) {
		t.Errorf("(1,1) bearing = %v, want 45", got)
	}
}

func TestLerp(t *testing.T) {
	p, q := Pt(0, 0), Pt(10, 20)
	if got := p.Lerp(q, 0); got != p {
		t.Errorf("Lerp(0) = %v, want %v", got, p)
	}
	if got := p.Lerp(q, 1); got != q {
		t.Errorf("Lerp(1) = %v, want %v", got, q)
	}
	if got := p.Lerp(q, 0.5); got != Pt(5, 10) {
		t.Errorf("Lerp(0.5) = %v, want (5,10)", got)
	}
}

func TestNormalizeDeg(t *testing.T) {
	tests := []struct {
		in, want float64
	}{
		{0, 0}, {360, 0}, {720, 0}, {-360, 0},
		{90, 90}, {-90, 270}, {450, 90}, {-450, 270},
		{359.5, 359.5}, {-0.5, 359.5},
	}
	for _, tt := range tests {
		if got := NormalizeDeg(tt.in); !almostEqual(got, tt.want, eps) {
			t.Errorf("NormalizeDeg(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestNormalizeDegRange(t *testing.T) {
	f := func(d float64) bool {
		if math.IsNaN(d) || math.IsInf(d, 0) {
			return true
		}
		got := NormalizeDeg(d)
		return got >= 0 && got < 360
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAngleDiff(t *testing.T) {
	tests := []struct {
		a, b, want float64
	}{
		{0, 0, 0},
		{10, 350, 20},
		{350, 10, -20},
		{180, 0, -180}, // -180 preferred over +180 by the [-180,180) range
		{90, 270, -180},
		{45, 44, 1},
		{0, 359, 1},
	}
	for _, tt := range tests {
		if got := AngleDiff(tt.a, tt.b); !almostEqual(got, tt.want, eps) {
			t.Errorf("AngleDiff(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestAngleDiffProperties(t *testing.T) {
	// |AngleDiff| is symmetric and bounded by 180.
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		d := AngleDiff(a, b)
		if d < -180 || d >= 180+eps {
			return false
		}
		return almostEqual(AbsAngleDiff(a, b), AbsAngleDiff(b, a), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMirrorBearingInvolution(t *testing.T) {
	// Mirroring twice must restore the original bearing.
	f := func(d float64) bool {
		if math.IsNaN(d) || math.IsInf(d, 0) {
			return true
		}
		d = NormalizeDeg(d)
		return almostEqual(MirrorBearing(MirrorBearing(d)), d, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if got := MirrorBearing(0); got != 180 {
		t.Errorf("MirrorBearing(0) = %v, want 180", got)
	}
	if got := MirrorBearing(270); got != 90 {
		t.Errorf("MirrorBearing(270) = %v, want 90", got)
	}
}

func TestSegmentIntersects(t *testing.T) {
	tests := []struct {
		name string
		s, u Segment
		want bool
	}{
		{"crossing X", Seg(Pt(0, 0), Pt(2, 2)), Seg(Pt(0, 2), Pt(2, 0)), true},
		{"parallel apart", Seg(Pt(0, 0), Pt(2, 0)), Seg(Pt(0, 1), Pt(2, 1)), false},
		{"touching endpoint", Seg(Pt(0, 0), Pt(1, 1)), Seg(Pt(1, 1), Pt(2, 0)), true},
		{"collinear overlapping", Seg(Pt(0, 0), Pt(2, 0)), Seg(Pt(1, 0), Pt(3, 0)), true},
		{"collinear disjoint", Seg(Pt(0, 0), Pt(1, 0)), Seg(Pt(2, 0), Pt(3, 0)), false},
		{"T touch", Seg(Pt(0, 0), Pt(2, 0)), Seg(Pt(1, 0), Pt(1, 1)), true},
		{"near miss", Seg(Pt(0, 0), Pt(2, 0)), Seg(Pt(1, 0.01), Pt(1, 1)), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.s.Intersects(tt.u); got != tt.want {
				t.Errorf("Intersects = %v, want %v", got, tt.want)
			}
			// Intersection is symmetric.
			if got := tt.u.Intersects(tt.s); got != tt.want {
				t.Errorf("Intersects (swapped) = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSegmentDistToPoint(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 0))
	tests := []struct {
		name string
		p    Point
		want float64
	}{
		{"above middle", Pt(5, 3), 3},
		{"beyond A", Pt(-3, 4), 5},
		{"beyond B", Pt(13, 4), 5},
		{"on segment", Pt(5, 0), 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := s.DistToPoint(tt.p); !almostEqual(got, tt.want, eps) {
				t.Errorf("DistToPoint(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
	degenerate := Seg(Pt(1, 1), Pt(1, 1))
	if got := degenerate.DistToPoint(Pt(4, 5)); !almostEqual(got, 5, eps) {
		t.Errorf("degenerate DistToPoint = %v, want 5", got)
	}
}

func TestRect(t *testing.T) {
	r := RectAt(Pt(5, 5), 4, 2) // [3,7] x [4,6]
	if !r.Contains(Pt(5, 5)) || !r.Contains(Pt(3, 4)) || r.Contains(Pt(2.9, 5)) {
		t.Errorf("Contains misbehaves for %+v", r)
	}
	if got := r.Center(); got != Pt(5, 5) {
		t.Errorf("Center = %v, want (5,5)", got)
	}
	if !r.IntersectsSegment(Seg(Pt(0, 5), Pt(10, 5))) {
		t.Error("segment through rect should intersect")
	}
	if !r.IntersectsSegment(Seg(Pt(4, 4.5), Pt(6, 5.5))) {
		t.Error("segment inside rect should intersect")
	}
	if r.IntersectsSegment(Seg(Pt(0, 0), Pt(10, 0))) {
		t.Error("segment below rect should not intersect")
	}
}

func TestSegmentLenMidpoint(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(6, 8))
	if got := s.Len(); !almostEqual(got, 10, eps) {
		t.Errorf("Len = %v, want 10", got)
	}
	if got := s.Midpoint(); got != Pt(3, 4) {
		t.Errorf("Midpoint = %v, want (3,4)", got)
	}
}
