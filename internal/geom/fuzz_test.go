package geom

import (
	"math"
	"testing"
)

// FuzzNormalizeDeg hardens the angle normalizer against arbitrary
// floats: the result is always in [0, 360) for finite input, and the
// function never panics.
func FuzzNormalizeDeg(f *testing.F) {
	for _, seed := range []float64{0, -0.0, 360, -360, 1e308, -1e308, 359.9999999} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, d float64) {
		got := NormalizeDeg(d)
		if math.IsNaN(d) || math.IsInf(d, 0) {
			return // garbage in, anything out — just must not panic
		}
		if got < 0 || got >= 360 {
			t.Fatalf("NormalizeDeg(%v) = %v out of [0,360)", d, got)
		}
	})
}

// FuzzAngleDiff checks the difference stays in [-180, 180) and is
// antisymmetric for finite inputs.
func FuzzAngleDiff(f *testing.F) {
	f.Add(10.0, 350.0)
	f.Add(-720.0, 720.0)
	f.Add(179.9999, -179.9999)
	f.Fuzz(func(t *testing.T, a, b float64) {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return
		}
		d := AngleDiff(a, b)
		if d < -180 || d >= 180 {
			t.Fatalf("AngleDiff(%v,%v) = %v out of range", a, b, d)
		}
		// Antisymmetry up to the -180 edge case.
		rev := AngleDiff(b, a)
		if math.Abs(d) != 180 && math.Abs(d+rev) > 1e-6 {
			t.Fatalf("AngleDiff not antisymmetric: %v vs %v", d, rev)
		}
	})
}

// FuzzSegmentIntersects checks the intersection predicate is symmetric
// and never panics on arbitrary coordinates.
func FuzzSegmentIntersects(f *testing.F) {
	f.Add(0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0, 0.0)
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
	f.Fuzz(func(t *testing.T, ax, ay, bx, by, cx, cy, dx, dy float64) {
		for _, v := range []float64{ax, ay, bx, by, cx, cy, dx, dy} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return
			}
		}
		s := Seg(Pt(ax, ay), Pt(bx, by))
		u := Seg(Pt(cx, cy), Pt(dx, dy))
		if s.Intersects(u) != u.Intersects(s) {
			t.Fatalf("asymmetric intersection for %v and %v", s, u)
		}
	})
}
