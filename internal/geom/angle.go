package geom

import "math"

// NormalizeDeg maps an angle in degrees to the range [0, 360).
func NormalizeDeg(d float64) float64 {
	d = math.Mod(d, 360)
	if d < 0 {
		d += 360
	}
	// math.Mod can return -0; the addition above leaves 360 when d was a
	// tiny negative value that rounded up.
	if d >= 360 {
		d -= 360
	}
	return d
}

// AngleDiff returns the signed minimal difference a-b in degrees,
// normalized to [-180, 180).
func AngleDiff(a, b float64) float64 {
	// Normalize the operands first so the subtraction cannot overflow for
	// extreme inputs.
	d := math.Mod(NormalizeDeg(a)-NormalizeDeg(b), 360)
	if d < -180 {
		d += 360
	}
	if d >= 180 {
		d -= 360
	}
	return d
}

// AbsAngleDiff returns the magnitude of the minimal angular difference
// between a and b, in [0, 180].
func AbsAngleDiff(a, b float64) float64 {
	return math.Abs(AngleDiff(a, b))
}

// MirrorBearing reverses a compass bearing: d + 180° mod 360°.
// The paper uses this to reassemble RLMs under the mutual-reachability
// assumption (Sec. IV-B2).
func MirrorBearing(d float64) float64 {
	return NormalizeDeg(d + 180)
}

// DegToRad converts degrees to radians.
func DegToRad(d float64) float64 { return d * math.Pi / 180 }

// RadToDeg converts radians to degrees.
func RadToDeg(r float64) float64 { return r * 180 / math.Pi }
