// Package geom provides the 2-D geometric primitives used throughout the
// MoLoc reproduction: points, segments, rectangles, bearings in compass
// convention, and the intersection tests needed for line-of-sight and
// wall-counting queries.
//
// Coordinate convention: X grows to the east, Y grows to the north.
// Bearings are measured in degrees clockwise from north, matching the
// digital-compass readings the paper relies on (0° = north, 90° = east).
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the floor plan, in meters.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Pt is shorthand for constructing a Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p translated by the vector v.
func (p Point) Add(v Vec) Point { return Point{X: p.X + v.DX, Y: p.Y + v.DY} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Vec { return Vec{DX: p.X - q.X, DY: p.Y - q.Y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// BearingTo returns the compass bearing from p to q in degrees,
// clockwise from north, normalized to [0, 360).
func (p Point) BearingTo(q Point) float64 {
	// atan2 argument order encodes the compass convention: the angle is
	// measured from the +Y (north) axis toward +X (east).
	return NormalizeDeg(math.Atan2(q.X-p.X, q.Y-p.Y) * 180 / math.Pi)
}

// Lerp returns the point a fraction t of the way from p to q.
// t = 0 yields p, t = 1 yields q; t outside [0, 1] extrapolates.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{X: p.X + (q.X-p.X)*t, Y: p.Y + (q.Y-p.Y)*t}
}

func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Vec is a displacement in meters.
type Vec struct {
	DX float64 `json:"dx"`
	DY float64 `json:"dy"`
}

// FromBearing builds the unit displacement for a compass bearing in
// degrees, scaled to the given length in meters.
func FromBearing(bearingDeg, length float64) Vec {
	rad := bearingDeg * math.Pi / 180
	return Vec{DX: length * math.Sin(rad), DY: length * math.Cos(rad)}
}

// Len returns the Euclidean length of v.
func (v Vec) Len() float64 { return math.Hypot(v.DX, v.DY) }

// Scale returns v scaled by s.
func (v Vec) Scale(s float64) Vec { return Vec{DX: v.DX * s, DY: v.DY * s} }

// Bearing returns the compass bearing of v in degrees, in [0, 360).
// The bearing of a zero vector is 0.
func (v Vec) Bearing() float64 {
	if v.DX == 0 && v.DY == 0 {
		return 0
	}
	return NormalizeDeg(math.Atan2(v.DX, v.DY) * 180 / math.Pi)
}

// Segment is a straight wall or path segment between two points.
type Segment struct {
	A Point `json:"a"`
	B Point `json:"b"`
}

// Seg is shorthand for constructing a Segment.
func Seg(a, b Point) Segment { return Segment{A: a, B: b} }

// Len returns the segment length.
func (s Segment) Len() float64 { return s.A.Dist(s.B) }

// Midpoint returns the segment midpoint.
func (s Segment) Midpoint() Point { return s.A.Lerp(s.B, 0.5) }

// cross returns the z-component of (b-a) × (c-a).
func cross(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// onSegment reports whether point c, known to be collinear with segment
// ab, lies within the segment's bounding box.
func onSegment(a, b, c Point) bool {
	return math.Min(a.X, b.X) <= c.X && c.X <= math.Max(a.X, b.X) &&
		math.Min(a.Y, b.Y) <= c.Y && c.Y <= math.Max(a.Y, b.Y)
}

// Intersects reports whether segments s and t share at least one point,
// including touching endpoints and collinear overlap.
func (s Segment) Intersects(t Segment) bool {
	d1 := cross(t.A, t.B, s.A)
	d2 := cross(t.A, t.B, s.B)
	d3 := cross(s.A, s.B, t.A)
	d4 := cross(s.A, s.B, t.B)

	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	switch {
	case d1 == 0 && onSegment(t.A, t.B, s.A):
		return true
	case d2 == 0 && onSegment(t.A, t.B, s.B):
		return true
	case d3 == 0 && onSegment(s.A, s.B, t.A):
		return true
	case d4 == 0 && onSegment(s.A, s.B, t.B):
		return true
	}
	return false
}

// DistToPoint returns the shortest distance from p to any point on s.
func (s Segment) DistToPoint(p Point) float64 {
	ab := s.B.Sub(s.A)
	l2 := ab.DX*ab.DX + ab.DY*ab.DY
	if l2 == 0 {
		return p.Dist(s.A)
	}
	ap := p.Sub(s.A)
	t := (ap.DX*ab.DX + ap.DY*ab.DY) / l2
	t = math.Max(0, math.Min(1, t))
	return p.Dist(s.A.Add(ab.Scale(t)))
}

// Rect is an axis-aligned rectangle, used for columns, shelves, and other
// floor-plan obstacles.
type Rect struct {
	MinX float64 `json:"min_x"`
	MinY float64 `json:"min_y"`
	MaxX float64 `json:"max_x"`
	MaxY float64 `json:"max_y"`
}

// RectAt builds a Rect from its center point and full width/height.
func RectAt(center Point, w, h float64) Rect {
	return Rect{
		MinX: center.X - w/2, MinY: center.Y - h/2,
		MaxX: center.X + w/2, MaxY: center.Y + h/2,
	}
}

// Contains reports whether p lies inside or on the boundary of r.
func (r Rect) Contains(p Point) bool {
	return r.MinX <= p.X && p.X <= r.MaxX && r.MinY <= p.Y && p.Y <= r.MaxY
}

// Center returns the rectangle's center point.
func (r Rect) Center() Point {
	return Point{X: (r.MinX + r.MaxX) / 2, Y: (r.MinY + r.MaxY) / 2}
}

// Edges returns the four boundary segments of r.
func (r Rect) Edges() [4]Segment {
	a := Point{X: r.MinX, Y: r.MinY}
	b := Point{X: r.MaxX, Y: r.MinY}
	c := Point{X: r.MaxX, Y: r.MaxY}
	d := Point{X: r.MinX, Y: r.MaxY}
	return [4]Segment{Seg(a, b), Seg(b, c), Seg(c, d), Seg(d, a)}
}

// IntersectsSegment reports whether segment s crosses or touches r.
func (r Rect) IntersectsSegment(s Segment) bool {
	if r.Contains(s.A) || r.Contains(s.B) {
		return true
	}
	for _, e := range r.Edges() {
		if e.Intersects(s) {
			return true
		}
	}
	return false
}
