package eval

import (
	"math"
	"testing"

	"moloc/internal/crowd"
	"moloc/internal/fingerprint"
	"moloc/internal/floorplan"
	"moloc/internal/localizer"
)

// scripted is a test localizer that replays a fixed estimate sequence.
type scripted struct {
	estimates []int
	i         int
	resets    int
}

func (s *scripted) Name() string { return "scripted" }

func (s *scripted) Localize(localizer.Observation) int {
	e := s.estimates[s.i]
	s.i++
	return e
}

func (s *scripted) Reset() { s.resets++ }

// fakeData builds a processed trace with the given true visit sequence.
func fakeData(visits []int) *crowd.TraceData {
	td := &crowd.TraceData{
		StartTrue: visits[0],
		StartFP:   fingerprint.Fingerprint{-50},
	}
	for i := 1; i < len(visits); i++ {
		td.Legs = append(td.Legs, crowd.LegData{
			TrueFrom: visits[i-1],
			TrueTo:   visits[i],
			FP:       fingerprint.Fingerprint{-50},
		})
	}
	return td
}

func TestRun(t *testing.T) {
	plan := floorplan.OfficeHall()
	data := []*crowd.TraceData{fakeData([]int{1, 2, 3})}
	loc := &scripted{estimates: []int{1, 9, 3}}
	results := Run(plan, loc, data)
	if loc.resets != 1 {
		t.Errorf("resets = %d, want 1", loc.resets)
	}
	if len(results) != 1 || len(results[0].Results) != 3 {
		t.Fatalf("unexpected result shape: %+v", results)
	}
	r := results[0].Results
	if r[0].Err != 0 || r[2].Err != 0 {
		t.Error("exact estimates should have zero error")
	}
	if r[1].EstLoc != 9 || r[1].TrueLoc != 2 {
		t.Errorf("leg 1 record wrong: %+v", r[1])
	}
	wantErr := plan.LocDist(2, 9)
	if math.Abs(r[1].Err-wantErr) > 1e-9 {
		t.Errorf("leg 1 error = %v, want %v", r[1].Err, wantErr)
	}
	if r[0].Index != 0 || r[1].Index != 1 || r[2].Index != 2 {
		t.Error("indices should count from 0")
	}
}

func TestSummarize(t *testing.T) {
	plan := floorplan.OfficeHall()
	data := []*crowd.TraceData{fakeData([]int{1, 2, 3, 4})}
	loc := &scripted{estimates: []int{1, 2, 10, 4}} // 3 exact, 1 miss
	results := Run(plan, loc, data)
	s := Summarize(results)
	if s.N != 4 {
		t.Fatalf("N = %d", s.N)
	}
	if math.Abs(s.Accuracy-0.75) > 1e-12 {
		t.Errorf("Accuracy = %v, want 0.75", s.Accuracy)
	}
	missErr := plan.LocDist(3, 10)
	if math.Abs(s.MeanErr-missErr/4) > 1e-9 {
		t.Errorf("MeanErr = %v, want %v", s.MeanErr, missErr/4)
	}
	if math.Abs(s.MaxErr-missErr) > 1e-9 {
		t.Errorf("MaxErr = %v, want %v", s.MaxErr, missErr)
	}
	if s.CDF.N() != 4 {
		t.Error("CDF should hold all errors")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Accuracy != 0 || s.MeanErr != 0 {
		t.Errorf("empty summary should be zeros: %+v", s)
	}
}

func TestErrorsOrder(t *testing.T) {
	plan := floorplan.OfficeHall()
	data := []*crowd.TraceData{fakeData([]int{1, 2}), fakeData([]int{5, 6})}
	loc := &scripted{estimates: []int{1, 2, 5, 7}}
	errs := Errors(Run(plan, loc, data))
	if len(errs) != 4 {
		t.Fatalf("errs = %v", errs)
	}
	if errs[0] != 0 || errs[1] != 0 || errs[2] != 0 || errs[3] == 0 {
		t.Errorf("unexpected error pattern: %v", errs)
	}
}

func TestLargeErrorLocs(t *testing.T) {
	plan := floorplan.OfficeHall()
	// Location 2 is consistently estimated as its far twin 15 (12+ m),
	// location 3 is always right.
	data := []*crowd.TraceData{fakeData([]int{2, 3, 2, 3})}
	loc := &scripted{estimates: []int{15, 3, 15, 3}}
	results := Run(plan, loc, data)
	locs := LargeErrorLocs(results, 6, 0.5)
	if len(locs) != 1 || locs[0] != 2 {
		t.Errorf("LargeErrorLocs = %v, want [2]", locs)
	}
	// Higher threshold excludes it.
	if got := LargeErrorLocs(results, 20, 0.5); len(got) != 0 {
		t.Errorf("threshold 20 should yield none, got %v", got)
	}
	// minFrac of 1 requires every attempt to be large.
	if got := LargeErrorLocs(results, 6, 1); len(got) != 1 {
		t.Errorf("all attempts at 2 are large; got %v", got)
	}
}

func TestFilterByTrueLoc(t *testing.T) {
	plan := floorplan.OfficeHall()
	data := []*crowd.TraceData{fakeData([]int{2, 3, 2})}
	loc := &scripted{estimates: []int{15, 3, 2}}
	results := Run(plan, loc, data)
	s := FilterByTrueLoc(results, []int{2})
	if s.N != 2 {
		t.Fatalf("filtered N = %d, want 2", s.N)
	}
	if math.Abs(s.Accuracy-0.5) > 1e-12 {
		t.Errorf("filtered accuracy = %v, want 0.5", s.Accuracy)
	}
	if got := FilterByTrueLoc(results, nil); got.N != 0 {
		t.Error("empty filter should match nothing")
	}
}

func TestConvergenceStats(t *testing.T) {
	plan := floorplan.OfficeHall()
	// Trace A: wrong, wrong, right, right, wrong -> EL=2, subsequent
	// {right, wrong}.
	// Trace B: right initial -> not considered.
	// Trace C: never right -> EL = full length, no subsequent.
	data := []*crowd.TraceData{
		fakeData([]int{1, 2, 3, 4, 5}),
		fakeData([]int{1, 2}),
		fakeData([]int{1, 2, 3}),
	}
	loc := &scripted{estimates: []int{
		9, 10, 3, 4, 12, // trace A
		1, 2, // trace B
		9, 10, 11, // trace C
	}}
	results := Run(plan, loc, data)
	c := ConvergenceStats(results)
	if c.Traces != 2 {
		t.Fatalf("Traces = %d, want 2 (A and C)", c.Traces)
	}
	if c.Converged != 1 {
		t.Errorf("Converged = %d, want 1", c.Converged)
	}
	// EL: A=2, C=3 -> mean 2.5.
	if math.Abs(c.MeanEL-2.5) > 1e-12 {
		t.Errorf("MeanEL = %v, want 2.5", c.MeanEL)
	}
	// Subsequent: A's estimates after index 2: {4 right, 12 wrong}.
	if c.N != 2 {
		t.Fatalf("subsequent N = %d, want 2", c.N)
	}
	if math.Abs(c.Accuracy-0.5) > 1e-12 {
		t.Errorf("subsequent accuracy = %v, want 0.5", c.Accuracy)
	}
	wantMax := plan.LocDist(5, 12)
	if math.Abs(c.MaxErr-wantMax) > 1e-9 {
		t.Errorf("subsequent max = %v, want %v", c.MaxErr, wantMax)
	}
}

func TestConvergenceAllAccurate(t *testing.T) {
	plan := floorplan.OfficeHall()
	data := []*crowd.TraceData{fakeData([]int{1, 2})}
	loc := &scripted{estimates: []int{1, 2}}
	c := ConvergenceStats(Run(plan, loc, data))
	if c.Traces != 0 || c.MeanEL != 0 {
		t.Errorf("no erroneous-initial traces expected: %+v", c)
	}
}
