// Package eval implements the paper's trace-driven evaluation
// methodology (Sec. VI): it replays processed test traces through a
// localizer, measures localization errors against the ground-truth
// reference locations, and computes the aggregate statistics behind
// Figs. 7–8 (error CDFs, overall and at large-error locations) and
// Table I (convergence to accurate localization).
package eval

import (
	"sort"

	"moloc/internal/crowd"
	"moloc/internal/floorplan"
	"moloc/internal/localizer"
	"moloc/internal/stats"
)

// LegResult is one localization attempt: the ground truth, the
// estimate, and the error in meters (0 when the estimate is exact).
type LegResult struct {
	Index   int     `json:"index"` // 0 is the initial fix of the trace
	TrueLoc int     `json:"true_loc"`
	EstLoc  int     `json:"est_loc"`
	Err     float64 `json:"err"`
}

// TraceResult is the localization record of one test trace.
type TraceResult struct {
	Results []LegResult `json:"results"`
}

// Run replays every processed trace through the localizer: the initial
// fingerprint fix first, then one observation per leg (fingerprint at
// arrival plus the leg's RLM). The localizer is Reset between traces.
func Run(plan *floorplan.Plan, loc localizer.Localizer, data []*crowd.TraceData) []TraceResult {
	out := make([]TraceResult, 0, len(data))
	for _, td := range data {
		loc.Reset()
		var tr TraceResult
		est := loc.Localize(localizer.Observation{FP: td.StartFP})
		tr.Results = append(tr.Results, legResult(plan, 0, td.StartTrue, est))
		for i, ld := range td.Legs {
			obs := localizer.Observation{FP: ld.FP, Motion: ld.RLM}
			est = loc.Localize(obs)
			tr.Results = append(tr.Results, legResult(plan, i+1, ld.TrueTo, est))
		}
		out = append(out, tr)
	}
	return out
}

func legResult(plan *floorplan.Plan, idx, truth, est int) LegResult {
	r := LegResult{Index: idx, TrueLoc: truth, EstLoc: est}
	if est != truth {
		r.Err = plan.LocDist(truth, est)
	}
	return r
}

// Errors flattens all localization errors, in trace order.
func Errors(results []TraceResult) []float64 {
	var out []float64
	for _, tr := range results {
		for _, r := range tr.Results {
			out = append(out, r.Err)
		}
	}
	return out
}

// Summary aggregates a result set.
type Summary struct {
	// N is the number of localization attempts.
	N int
	// Accuracy is the fraction of attempts at the exact ground-truth
	// reference location (the paper's "localization accuracy").
	Accuracy float64
	// MeanErr and MaxErr are in meters.
	MeanErr float64
	MaxErr  float64
	// CDF is the empirical error distribution, for the Fig. 7/8 curves.
	CDF *stats.CDF
}

// Summarize computes the Summary of a result set.
func Summarize(results []TraceResult) Summary {
	errs := Errors(results)
	return summarizeErrs(errs)
}

func summarizeErrs(errs []float64) Summary {
	s := Summary{N: len(errs), CDF: stats.NewCDF(errs)}
	if s.N == 0 {
		return s
	}
	exact := 0
	for _, e := range errs {
		if e == 0 {
			exact++
		}
	}
	s.Accuracy = float64(exact) / float64(s.N)
	s.MeanErr = stats.Mean(errs)
	s.MaxErr = stats.Max(errs)
	return s
}

// LargeErrorLocs identifies the reference locations where the given
// (baseline) results show large errors: a location qualifies when at
// least minFrac of the attempts whose ground truth is that location
// erred by more than threshold meters. The paper extracts locations
// where WiFi fingerprinting errs over 6 m (Sec. VI-B3); pairs like
// (2, 15) and (10, 27) in its deployment are fingerprint twins.
func LargeErrorLocs(results []TraceResult, threshold, minFrac float64) []int {
	total := map[int]int{}
	large := map[int]int{}
	for _, tr := range results {
		for _, r := range tr.Results {
			total[r.TrueLoc]++
			if r.Err > threshold {
				large[r.TrueLoc]++
			}
		}
	}
	var out []int
	for loc, n := range total {
		if n > 0 && float64(large[loc])/float64(n) >= minFrac {
			out = append(out, loc)
		}
	}
	sort.Ints(out)
	return out
}

// FilterByTrueLoc keeps only the attempts whose ground truth is in locs
// and summarizes them. Fig. 8 applies this with the large-error
// locations of the WiFi baseline to both methods.
func FilterByTrueLoc(results []TraceResult, locs []int) Summary {
	want := make(map[int]bool, len(locs))
	for _, l := range locs {
		want[l] = true
	}
	var errs []float64
	for _, tr := range results {
		for _, r := range tr.Results {
			if want[r.TrueLoc] {
				errs = append(errs, r.Err)
			}
		}
	}
	return summarizeErrs(errs)
}

// Convergence aggregates the Table I statistics over the traces whose
// initial estimate was wrong: how many erroneous localizations (EL)
// occur before the first accurate one, and how accurate the estimates
// are afterwards.
type Convergence struct {
	// Traces is the number of traces with an erroneous initial estimate.
	Traces int
	// MeanEL is the average number of erroneous localizations before the
	// first accurate one (traces that never converge contribute their
	// full length).
	MeanEL float64
	// Converged is how many of those traces eventually localized
	// accurately at least once.
	Converged int
	// N, Accuracy, MeanErr, MaxErr summarize all estimates after the
	// first accurate one, across the considered traces.
	N        int
	Accuracy float64
	MeanErr  float64
	MaxErr   float64
}

// ConvergenceStats computes Table I's statistics from a result set.
func ConvergenceStats(results []TraceResult) Convergence {
	var c Convergence
	var elSum float64
	var subsequent []float64
	for _, tr := range results {
		if len(tr.Results) == 0 || tr.Results[0].Err == 0 {
			continue // accurate initial estimate; not considered
		}
		c.Traces++
		firstAccurate := -1
		for i, r := range tr.Results {
			if r.Err == 0 {
				firstAccurate = i
				break
			}
		}
		if firstAccurate < 0 {
			elSum += float64(len(tr.Results))
			continue
		}
		c.Converged++
		elSum += float64(firstAccurate)
		for _, r := range tr.Results[firstAccurate+1:] {
			subsequent = append(subsequent, r.Err)
		}
	}
	if c.Traces > 0 {
		c.MeanEL = elSum / float64(c.Traces)
	}
	s := summarizeErrs(subsequent)
	c.N, c.Accuracy, c.MeanErr, c.MaxErr = s.N, s.Accuracy, s.MeanErr, s.MaxErr
	return c
}
