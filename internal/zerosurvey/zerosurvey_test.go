package zerosurvey

import (
	"testing"

	"moloc/internal/core"
	"moloc/internal/fingerprint"
	"moloc/internal/stats"
)

// fixture builds a small system plus prepared unlabeled walks.
func fixture(t *testing.T, numWalks int) (*core.System, []Walk) {
	t.Helper()
	cfg := core.NewConfig()
	cfg.NumTrainTraces = numWalks
	cfg.NumTestTraces = 2
	sys, err := core.Build(cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	walks, err := PrepareWalks(sys.TrainTraces, sys.Survey.MotionEst,
		sys.Config.Motion, stats.NewRNG(5))
	if err != nil {
		t.Fatalf("PrepareWalks: %v", err)
	}
	return sys, walks
}

func TestConfigValidate(t *testing.T) {
	if err := NewConfig().Validate(); err != nil {
		t.Errorf("defaults: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.OffsetBins = 2 },
		func(c *Config) { c.DirSigmaDeg = 0 },
		func(c *Config) { c.OffSigmaM = -1 },
		func(c *Config) { c.Iterations = 0 },
		func(c *Config) { c.EmissionWeight = -1 },
	}
	for i, mutate := range bad {
		c := NewConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestPrepareWalks(t *testing.T) {
	sys, walks := fixture(t, 10)
	if len(walks) != 10 {
		t.Fatalf("walks = %d", len(walks))
	}
	for _, w := range walks {
		if len(w.StartFP) != sys.Model.NumAPs() {
			t.Fatal("start fingerprint width wrong")
		}
		if w.TrueStart < 1 || w.TrueStart > 28 {
			t.Fatal("bad true start")
		}
		for _, leg := range w.Legs {
			if leg.Off <= 0 || leg.Off > 10 {
				t.Fatalf("implausible offset %v", leg.Off)
			}
			if leg.DirRaw < 0 || leg.DirRaw >= 360 {
				t.Fatalf("direction %v out of range", leg.DirRaw)
			}
		}
	}
}

func TestInferErrors(t *testing.T) {
	sys, walks := fixture(t, 4)
	if _, err := Infer(sys.Plan, sys.Graph, nil, NewConfig()); err == nil {
		t.Error("no walks should error")
	}
	bad := NewConfig()
	bad.Iterations = 0
	if _, err := Infer(sys.Plan, sys.Graph, walks, bad); err == nil {
		t.Error("invalid config should error")
	}
}

func TestInferLabelsImproveWithEM(t *testing.T) {
	sys, walks := fixture(t, 60)
	res, err := Infer(sys.Plan, sys.Graph, walks, NewConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LabelAccuracy) != NewConfig().Iterations {
		t.Fatalf("accuracy per iteration missing: %v", res.LabelAccuracy)
	}
	first, last := res.LabelAccuracy[0], res.LabelAccuracy[len(res.LabelAccuracy)-1]
	// Motion-only decoding must beat chance (1/28) decisively, and EM
	// must not make it worse.
	if first < 0.15 {
		t.Errorf("motion-only label accuracy %.2f barely beats chance", first)
	}
	if last < first-0.05 {
		t.Errorf("EM degraded labels: %.2f -> %.2f", first, last)
	}
	// Paths have the right shape.
	for i, p := range res.Paths {
		if len(p) != len(walks[i].Legs)+1 {
			t.Fatalf("path %d length %d, want %d", i, len(p), len(walks[i].Legs)+1)
		}
		for j := 1; j < len(p); j++ {
			if !sys.Graph.Adjacent(p[j-1], p[j]) {
				t.Fatalf("path %d step %d not an aisle: %d-%d", i, j, p[j-1], p[j])
			}
		}
	}
}

func TestBuildRadioMap(t *testing.T) {
	sys, walks := fixture(t, 60)
	res, err := Infer(sys.Plan, sys.Graph, walks, NewConfig())
	if err != nil {
		t.Fatal(err)
	}
	db, holes, err := BuildRadioMap(sys.Plan, res, fingerprint.Euclidean{}, sys.Model.NumAPs())
	if err != nil {
		t.Fatalf("BuildRadioMap: %v", err)
	}
	if db.NumLocs() != 28 {
		t.Errorf("radio map covers %d locations", db.NumLocs())
	}
	if holes > 10 {
		t.Errorf("%d unvisited locations; walks too short?", holes)
	}
}

func TestZeroEffortMapLocalizes(t *testing.T) {
	// The end-to-end claim: a radio map built with no site survey still
	// supports localization clearly above chance.
	sys, walks := fixture(t, 80)
	res, err := Infer(sys.Plan, sys.Graph, walks, NewConfig())
	if err != nil {
		t.Fatal(err)
	}
	db, _, err := BuildRadioMap(sys.Plan, res, fingerprint.Euclidean{}, sys.Model.NumAPs())
	if err != nil {
		t.Fatal(err)
	}
	correct, total := 0, 0
	rng := stats.NewRNG(9)
	for loc := 1; loc <= 28; loc++ {
		for _, fp := range sys.Survey.Test[loc-1] {
			if db.Nearest(fp) == loc {
				correct++
			}
			total++
		}
		_ = rng
	}
	frac := float64(correct) / float64(total)
	if frac < 0.2 {
		t.Errorf("zero-effort map localizes %.2f of held-out scans; chance is %.2f",
			frac, 1.0/28)
	}
}
