// Package zerosurvey builds a fingerprint database without a manual
// site survey, the line of work (WILL, LiFS, Zee) the paper cites and
// defers: "In our current implementation we adopt traditional methods,
// and leave the newly proposed methods for future investigation."
//
// The approach is Zee-flavored label inference over the walk graph:
//
//  1. Unlabeled walks arrive as sequences of (raw compass direction,
//     CSC offset, fingerprint) per leg. The compass carries an unknown
//     constant offset per walk (phone placement + device bias).
//  2. For each walk, a Viterbi decoder finds the location sequence on
//     the walk graph that best explains the motion, jointly searching a
//     discretized grid of placement offsets. Map geometry (aisle
//     bearings and lengths) is the transition model.
//  3. The fingerprints observed at the inferred locations form a radio
//     map. Expectation-maximization then re-decodes every walk with the
//     learned map as the emission model and rebuilds, sharpening the
//     labels over a few iterations.
//
// One simplification is inherited from the evaluation protocol: walks
// are segmented at reference locations (a deployed system would segment
// at detected turns, which coincide with aisle intersections in grid
// buildings).
package zerosurvey

import (
	"fmt"
	"math"

	"moloc/internal/fingerprint"
	"moloc/internal/floorplan"
	"moloc/internal/geom"
	"moloc/internal/motion"
	"moloc/internal/stats"
	"moloc/internal/trace"
)

// Leg is one motion segment of an unlabeled walk.
type Leg struct {
	// DirRaw is the uncalibrated compass mean over the segment, in
	// degrees (true motion direction plus an unknown per-walk offset).
	DirRaw float64
	// Off is the Continuous-Step-Counting offset in meters.
	Off float64
	// FP is the fingerprint scanned at the segment's end.
	FP fingerprint.Fingerprint
	// TrueTo is the ground-truth destination, retained only for
	// evaluating labeling accuracy; inference never reads it.
	TrueTo int
}

// Walk is one unlabeled crowdsourced walk.
type Walk struct {
	// StartFP is the fingerprint scanned before the first segment.
	StartFP fingerprint.Fingerprint
	// TrueStart is ground truth for evaluation only.
	TrueStart int
	Legs      []Leg
}

// Config parameterizes the inference.
type Config struct {
	// OffsetBins is the number of placement-offset hypotheses searched
	// per walk (the offset grid covers [0, 360) degrees).
	OffsetBins int
	// DirSigmaDeg and OffSigmaM are the motion-model spreads used to
	// score a measured segment against an aisle.
	DirSigmaDeg float64
	OffSigmaM   float64
	// Iterations is the number of EM rounds: 1 means motion-only
	// decoding, each further round re-decodes with the learned radio map
	// as the emission model.
	Iterations int
	// EmissionWeight scales the fingerprint emission log-likelihood
	// against the motion score in EM rounds.
	EmissionWeight float64
}

// NewConfig returns defaults that work on grid-like plans.
func NewConfig() Config {
	return Config{
		OffsetBins:     24,
		DirSigmaDeg:    12,
		OffSigmaM:      0.6,
		Iterations:     3,
		EmissionWeight: 0.5,
	}
}

// Validate rejects unusable configuration.
func (c Config) Validate() error {
	if c.OffsetBins < 4 {
		return fmt.Errorf("zerosurvey: need at least 4 offset bins, got %d", c.OffsetBins)
	}
	if c.DirSigmaDeg <= 0 || c.OffSigmaM <= 0 {
		return fmt.Errorf("zerosurvey: motion-model sigmas must be positive")
	}
	if c.Iterations < 1 {
		return fmt.Errorf("zerosurvey: need at least one iteration")
	}
	if c.EmissionWeight < 0 {
		return fmt.Errorf("zerosurvey: emission weight must be non-negative")
	}
	return nil
}

// PrepareWalks converts ground-truth traces into unlabeled walks: raw
// compass means (no placement calibration — that is the point), CSC
// offsets, and fingerprints drawn from the per-location pool at each
// visit. Ground-truth locations are carried along solely for scoring.
func PrepareWalks(traces []*trace.Trace, pool [][]fingerprint.Fingerprint,
	mcfg motion.Config, rng *stats.RNG) ([]Walk, error) {
	walks := make([]Walk, 0, len(traces))
	for _, tr := range traces {
		if tr.Start < 1 || tr.Start > len(pool) {
			return nil, fmt.Errorf("zerosurvey: trace start %d outside pool", tr.Start)
		}
		pick := func(loc int) fingerprint.Fingerprint {
			scans := pool[loc-1]
			return scans[rng.Intn(len(scans))]
		}
		w := Walk{
			StartFP:   pick(tr.Start),
			TrueStart: tr.Start,
		}
		stepLen := motion.StepLength(mcfg, tr.User.HeightM, tr.User.WeightKg)
		for _, leg := range tr.Legs {
			rlm, ok := motion.Extract(mcfg, leg.Samples, leg.T0, leg.T1, stepLen, nil)
			if !ok {
				continue // standing segments carry no relative information
			}
			w.Legs = append(w.Legs, Leg{
				DirRaw: rlm.Dir,
				Off:    rlm.Off,
				FP:     pick(leg.To),
				TrueTo: leg.To,
			})
		}
		if len(w.Legs) > 0 {
			walks = append(walks, w)
		}
	}
	return walks, nil
}

// Result is the inference outcome.
type Result struct {
	// Paths[i] is the inferred location sequence of walk i (start plus
	// one entry per leg).
	Paths [][]int
	// Assignments[loc-1] holds the fingerprints attributed to each
	// location.
	Assignments [][]fingerprint.Fingerprint
	// LabelAccuracy is the fraction of fingerprints attributed to their
	// true location (start and leg arrivals), per EM iteration.
	LabelAccuracy []float64
}

// Infer runs the label inference over unlabeled walks.
func Infer(plan *floorplan.Plan, graph *floorplan.WalkGraph, walks []Walk,
	cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(walks) == 0 {
		return nil, fmt.Errorf("zerosurvey: no walks")
	}
	n := plan.NumLocs()
	res := &Result{}

	var gdb *fingerprint.GaussianDB // nil in the first (motion-only) round
	for iter := 0; iter < cfg.Iterations; iter++ {
		res.Paths = res.Paths[:0]
		res.Assignments = make([][]fingerprint.Fingerprint, n)
		correct, total := 0, 0
		for _, w := range walks {
			path := decodeWalk(plan, graph, w, cfg, gdb)
			res.Paths = append(res.Paths, path)
			res.Assignments[path[0]-1] = append(res.Assignments[path[0]-1], w.StartFP)
			if path[0] == w.TrueStart {
				correct++
			}
			total++
			for i, leg := range w.Legs {
				loc := path[i+1]
				res.Assignments[loc-1] = append(res.Assignments[loc-1], leg.FP)
				if loc == leg.TrueTo {
					correct++
				}
				total++
			}
		}
		res.LabelAccuracy = append(res.LabelAccuracy, float64(correct)/float64(total))

		if iter+1 < cfg.Iterations {
			// Fit the emission model for the next round from locations
			// that received samples.
			var err error
			gdb, err = fitEmission(w0(walks), res.Assignments)
			if err != nil {
				return nil, err
			}
		}
	}
	return res, nil
}

// w0 returns the fingerprint width of the walk set.
func w0(walks []Walk) int { return len(walks[0].StartFP) }

// fitEmission builds a Gaussian emission model over the assignments,
// substituting the global mean for unvisited locations so decoding
// treats them as uninformative rather than impossible.
func fitEmission(numAPs int, assignments [][]fingerprint.Fingerprint) (*fingerprint.GaussianDB, error) {
	// Global pool for the fallback.
	var global []fingerprint.Fingerprint
	for _, scans := range assignments {
		global = append(global, scans...)
	}
	if len(global) == 0 {
		return nil, fmt.Errorf("zerosurvey: no fingerprints assigned")
	}
	filled := make([][]fingerprint.Fingerprint, len(assignments))
	for i, scans := range assignments {
		if len(scans) > 0 {
			filled[i] = scans
			continue
		}
		filled[i] = global
	}
	return fingerprint.NewGaussianDB(numAPs, filled)
}

// decodeWalk finds the best location sequence for one walk: a Viterbi
// pass per placement-offset hypothesis, keeping the best-scoring
// hypothesis.
func decodeWalk(plan *floorplan.Plan, graph *floorplan.WalkGraph, w Walk,
	cfg Config, gdb *fingerprint.GaussianDB) []int {
	bestScore := math.Inf(-1)
	var bestPath []int
	for bin := 0; bin < cfg.OffsetBins; bin++ {
		theta := 360 * float64(bin) / float64(cfg.OffsetBins)
		path, score := viterbi(plan, graph, w, cfg, gdb, theta)
		if score > bestScore {
			bestScore, bestPath = score, path
		}
	}
	return bestPath
}

// viterbi decodes one walk under a fixed placement-offset hypothesis.
func viterbi(plan *floorplan.Plan, graph *floorplan.WalkGraph, w Walk,
	cfg Config, gdb *fingerprint.GaussianDB, theta float64) ([]int, float64) {
	n := plan.NumLocs()
	emit := func(loc int, fp fingerprint.Fingerprint) float64 {
		if gdb == nil {
			return 0
		}
		return cfg.EmissionWeight * gdb.LogLikelihood(loc, fp)
	}

	score := make([]float64, n+1)
	for loc := 1; loc <= n; loc++ {
		score[loc] = emit(loc, w.StartFP)
	}
	back := make([][]int, len(w.Legs))

	for t, leg := range w.Legs {
		dir := geom.NormalizeDeg(leg.DirRaw - theta)
		next := make([]float64, n+1)
		back[t] = make([]int, n+1)
		for loc := 1; loc <= n; loc++ {
			next[loc] = math.Inf(-1)
		}
		for u := 1; u <= n; u++ {
			if math.IsInf(score[u], -1) {
				continue
			}
			for _, e := range graph.Neighbors(u) {
				bearing := plan.LocBearing(u, e.To)
				dd := geom.AngleDiff(dir, bearing)
				move := -0.5*(dd/cfg.DirSigmaDeg)*(dd/cfg.DirSigmaDeg) -
					0.5*((leg.Off-e.Dist)/cfg.OffSigmaM)*((leg.Off-e.Dist)/cfg.OffSigmaM)
				s := score[u] + move + emit(e.To, leg.FP)
				if s > next[e.To] {
					next[e.To] = s
					back[t][e.To] = u
				}
			}
		}
		score = next
	}

	// Read out the best terminal state and trace back.
	bestLoc, bestScore := 1, math.Inf(-1)
	for loc := 1; loc <= n; loc++ {
		if score[loc] > bestScore {
			bestLoc, bestScore = loc, score[loc]
		}
	}
	path := make([]int, len(w.Legs)+1)
	path[len(w.Legs)] = bestLoc
	for t := len(w.Legs) - 1; t >= 0; t-- {
		path[t] = back[t][path[t+1]]
	}
	return path, bestScore
}

// BuildRadioMap turns the final assignments into a deterministic radio
// map usable by the localizers. Locations that never received a
// fingerprint are filled from their nearest assigned neighbor, and the
// number of such holes is reported.
func BuildRadioMap(plan *floorplan.Plan, res *Result,
	metric fingerprint.Metric, numAPs int) (*fingerprint.DB, int, error) {
	holes := 0
	filled := make([][]fingerprint.Fingerprint, len(res.Assignments))
	for i, scans := range res.Assignments {
		if len(scans) > 0 {
			filled[i] = scans
			continue
		}
		holes++
		// Borrow from the geometrically nearest location with samples.
		var nearest int
		bestD := math.Inf(1)
		for j, other := range res.Assignments {
			if len(other) == 0 {
				continue
			}
			if d := plan.LocDist(i+1, j+1); d < bestD {
				bestD, nearest = d, j
			}
		}
		if math.IsInf(bestD, 1) {
			return nil, holes, fmt.Errorf("zerosurvey: no location received any fingerprint")
		}
		filled[i] = res.Assignments[nearest]
	}
	db, err := fingerprint.NewDB(metric, numAPs, filled)
	return db, holes, err
}
